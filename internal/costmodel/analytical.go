package costmodel

import (
	"fmt"
	"math"
	"time"
)

// Strategy identifies one parallelism configuration profiled in the SIB.
type Strategy struct {
	SP int // sequence-parallel degree (number of elastic instances)
	TP int // tensor-parallel degree inside each instance
}

// Key returns the stable map/JSON key, e.g. "sp2tp4".
func (s Strategy) Key() string { return fmt.Sprintf("sp%dtp%d", s.SP, s.TP) }

// GPUs returns the total GPU count of the strategy.
func (s Strategy) GPUs() int { return s.SP * s.TP }

// Coeffs are the paper's Eq 7 prefill-time coefficients:
//
//	T_p(R) = Alpha + Beta·Σ input_len + Gamma·Σ input_len²
//
// in seconds; Alpha captures constant overhead, Beta linear computation
// (FFN, projections, all-reduce volume), Gamma quadratic attention.
type Coeffs struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// Predict evaluates the model for a batch with the given input lengths.
func (c Coeffs) Predict(lens []int) time.Duration {
	var sumLen, sumSq float64
	for _, l := range lens {
		sumLen += float64(l)
		sumSq += float64(l) * float64(l)
	}
	return c.PredictSums(sumLen, sumSq)
}

// PredictSums evaluates the model from precomputed Σlen and Σlen² — the
// O(1) form schedulers use with running sums, instead of rebuilding a
// length slice per candidate batch. Eq 7 depends on the batch only through
// these two sums, so memoizing Predict would cost more than evaluating it.
func (c Coeffs) PredictSums(sumLen, sumSq float64) time.Duration {
	s := c.Alpha + c.Beta*sumLen + c.Gamma*sumSq
	if s < 0 {
		s = 0
	}
	return durSec(s)
}

// DecodeCoeffs model one decoding iteration:
//
//	T_d(B) = Alpha + BetaBS·|B| + GammaKV·Σ kv_len
//
// the decode-phase analogue the global manager uses for scale-up planning.
type DecodeCoeffs struct {
	Alpha   float64 `json:"alpha"`
	BetaBS  float64 `json:"beta_bs"`
	GammaKV float64 `json:"gamma_kv"`
}

// Predict evaluates the decode model.
func (c DecodeCoeffs) Predict(bs, sumKV int) time.Duration {
	s := c.Alpha + c.BetaBS*float64(bs) + c.GammaKV*float64(sumKV)
	if s < 0 {
		s = 0
	}
	return durSec(s)
}

// PrefillSample is one profiled prefill measurement.
type PrefillSample struct {
	Lens     []int         `json:"lens"`
	Measured time.Duration `json:"measured"`
}

// DecodeSample is one profiled decode measurement.
type DecodeSample struct {
	BS       int           `json:"bs"`
	SumKV    int           `json:"sum_kv"`
	Measured time.Duration `json:"measured"`
}

// solveLinear solves a·x = b for small dense systems by Gaussian
// elimination with partial pivoting; a and b are mutated.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-30 {
			return nil, fmt.Errorf("costmodel: singular system (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// fitThreeFeature runs least squares for y ≈ c0 + c1·f1 + c2·f2 over
// samples expressed as feature pairs. Because iteration times span four
// orders of magnitude (tens of milliseconds to seconds), the fit minimizes
// *relative* error — each sample is weighted by 1/y — so short-batch
// predictions stay accurate alongside 500K-token batches (Fig 15 shows
// <10% deviation across the whole range).
func fitThreeFeature(f1, f2, y []float64) (c0, c1, c2 float64, err error) {
	n := len(y)
	if n < 3 {
		return 0, 0, 0, fmt.Errorf("costmodel: need >=3 samples to fit, have %d", n)
	}
	// Normal equations (WX)ᵀ(WX) c = (WX)ᵀ(Wy) with X rows (1, f1, f2) and
	// W = diag(1/y). Features are scaled to unit magnitude first for
	// conditioning (Σlen² reaches 1e12).
	s1, s2 := 1.0, 1.0
	for i := 0; i < n; i++ {
		if math.Abs(f1[i]) > s1 {
			s1 = math.Abs(f1[i])
		}
		if math.Abs(f2[i]) > s2 {
			s2 = math.Abs(f2[i])
		}
	}
	a := [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	b := []float64{0, 0, 0}
	for i := 0; i < n; i++ {
		w := 1.0
		if y[i] > 1e-12 {
			w = 1 / y[i]
		}
		x := []float64{w, w * f1[i] / s1, w * f2[i] / s2}
		for r := 0; r < 3; r++ {
			for k := 0; k < 3; k++ {
				a[r][k] += x[r] * x[k]
			}
			b[r] += x[r] * w * y[i]
		}
	}
	c, err := solveLinear(a, b)
	if err != nil {
		return 0, 0, 0, err
	}
	return c[0], c[1] / s1, c[2] / s2, nil
}

// FitPrefill fits Eq 7 coefficients to profiled samples by least squares,
// "trained by the least square method based on a few profiling results"
// (§5.5).
func FitPrefill(samples []PrefillSample) (Coeffs, error) {
	f1 := make([]float64, len(samples))
	f2 := make([]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		for _, l := range s.Lens {
			f1[i] += float64(l)
			f2[i] += float64(l) * float64(l)
		}
		y[i] = s.Measured.Seconds()
	}
	a, b, g, err := fitThreeFeature(f1, f2, y)
	if err != nil {
		return Coeffs{}, err
	}
	return Coeffs{Alpha: a, Beta: b, Gamma: g}, nil
}

// FitDecode fits the decode-iteration model to profiled samples.
func FitDecode(samples []DecodeSample) (DecodeCoeffs, error) {
	f1 := make([]float64, len(samples))
	f2 := make([]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		f1[i] = float64(s.BS)
		f2[i] = float64(s.SumKV)
		y[i] = s.Measured.Seconds()
	}
	a, b, g, err := fitThreeFeature(f1, f2, y)
	if err != nil {
		return DecodeCoeffs{}, err
	}
	return DecodeCoeffs{Alpha: a, BetaBS: b, GammaKV: g}, nil
}
