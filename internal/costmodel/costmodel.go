// Package costmodel computes simulated iteration times for LLM serving on
// the cluster substrate: a roofline-style physical model (compute FLOPs vs
// memory traffic vs interconnect traffic) calibrated against the anchor
// measurements the paper reports, plus the paper's analytical model (Eq 7)
// with SIB-backed least-squares fitting used by the LoongServe global
// manager at scheduling time.
//
// Two distinct layers live here on purpose:
//
//   - The *ground truth* layer (PrefillIterTime, DecodeIterTime,
//     ChunkIterTime) plays the role of the GPUs: every serving engine in the
//     simulator advances time by these durations.
//   - The *estimator* layer (Coeffs, SIB) plays the role of the paper's
//     §5.5 analytical model: the LoongServe scheduler never reads ground
//     truth directly; it fits T_p(R) = α + β·Σlen + γ·Σlen² from profiled
//     samples and plans with the fit, exactly as the real system does.
//     Fig 15 measures the gap between the two.
package costmodel

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/model"
)

// CostModel computes ground-truth iteration times for one model on one
// hardware generation.
//
// The derived model constants (FLOPs per token, weight bytes, KV bytes) are
// precomputed once: iteration-time methods sit on every engine's hot path,
// where re-deriving them per call is measurable. A CostModel is not safe
// for concurrent use by multiple goroutines; parallel experiment arms each
// build their own.
type CostModel struct {
	M  model.Config
	HW cluster.Hardware

	// Derived constants, filled by derive(). ok guards lazy initialization
	// for zero-value construction; New initializes eagerly.
	derived struct {
		ok             bool
		flopsPerTok    float64 // dense FLOPs per token
		attnPerPair    float64 // attention FLOPs per (q, k) pair
		kvBytesPerTok  float64
		weightBytes    float64
		tpVolumeFactor float64 // 2·Layers·Hidden·BytesParam
		layers         float64
		nvLatSec       float64
		prefillOvhSec  float64
		decodeOvhSec   float64
		chunkOvhSec    float64

		// Single-entry memo of the tp-dependent all-reduce constants; tp is
		// fixed per engine, so this hits on every call after the first. The
		// factored forms are chosen to round identically to the original
		// expression (exact integer factors combine without extra rounding).
		tpMemoTP  int
		tpMemoMul float64 // 2·(tp-1), exact
		tpMemoLat float64 // 2·Layers·ceilLog2(tp)·NVLinkLatency
	}
}

// New returns a cost model; it panics on an invalid model config since that
// is a programming error, not an input error.
func New(m model.Config, hw cluster.Hardware) *CostModel {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	c := &CostModel{M: m, HW: hw}
	c.derive()
	return c
}

// derive precomputes the per-call constants of the iteration-time formulas.
func (c *CostModel) derive() {
	d := &c.derived
	d.flopsPerTok = c.M.FLOPsPerToken()
	d.attnPerPair = c.M.AttnFLOPsPerTokenPair()
	d.kvBytesPerTok = float64(c.M.KVBytesPerToken())
	d.weightBytes = float64(c.M.WeightBytes())
	d.tpVolumeFactor = 2 * float64(c.M.Layers) * float64(c.M.Hidden) * float64(c.M.BytesParam)
	d.layers = float64(c.M.Layers)
	d.nvLatSec = c.HW.NVLinkLatency.Seconds()
	d.prefillOvhSec = c.HW.PrefillOverhead.Seconds()
	d.decodeOvhSec = c.HW.DecodeOverhead.Seconds()
	d.chunkOvhSec = c.HW.ChunkOverhead.Seconds()
	d.ok = true
}

// ensure covers CostModels built as composite literals (tests); New-built
// models take the single predicted branch.
func (c *CostModel) ensure() {
	if !c.derived.ok {
		c.derive()
	}
}

func ceilLog2(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func durSec(s float64) time.Duration { return time.Duration(s * 1e9) }

// weightReadSec returns the time for one instance's GPUs to stream the
// weight replica from HBM once — the memory-bound floor of an iteration.
func (c *CostModel) weightReadSec(tp int) float64 {
	c.ensure()
	return c.derived.weightBytes / (float64(tp) * c.HW.MemBandwidth)
}

// tpCommSec returns tensor-parallel all-reduce time for `tokens` activation
// rows within one instance of tp GPUs over NVLink: two all-reduces per
// layer, ring all-reduce volume 2(tp-1)/tp, plus per-collective latency.
func (c *CostModel) tpCommSec(tokens float64, tp int) float64 {
	if tp <= 1 {
		return 0
	}
	d := &c.derived
	if tp != d.tpMemoTP {
		d.tpMemoTP = tp
		d.tpMemoMul = 2 * float64(tp-1)
		d.tpMemoLat = 2 * d.layers * float64(ceilLog2(tp)) * d.nvLatSec
	}
	bytes := d.tpVolumeFactor * tokens * d.tpMemoMul / float64(tp)
	return bytes/c.HW.NVLinkBandwidth + d.tpMemoLat
}

// PrefillIterTime returns the duration of one prefill iteration for a batch
// of fresh requests with the given input lengths, executed by a parallel
// group of sp instances (tensor parallelism tp inside each), connected by
// link (the group's bottleneck channel, relevant when sp > 1).
//
// Shape properties this reproduces:
//   - long inputs scale nearly linearly with total GPUs (Fig 2 top);
//   - short inputs are dominated by the fixed overhead, so extra GPUs are
//     wasted (Fig 2 top, BS=1 Len=100);
//   - SPxTP combinations match or slightly beat pure TP on long inputs
//     because ring traffic overlaps with attention compute while
//     all-reduce traffic shrinks (Fig 3).
func (c *CostModel) PrefillIterTime(lens []int, sp, tp int, link cluster.Link) time.Duration {
	if len(lens) == 0 {
		return 0
	}
	if sp < 1 || tp < 1 {
		panic(fmt.Sprintf("costmodel: invalid parallelism sp=%d tp=%d", sp, tp))
	}
	c.ensure()
	d := &c.derived
	g := float64(sp * tp)
	var sumLen, sumSq float64
	for _, l := range lens {
		sumLen += float64(l)
		sumSq += float64(l) * float64(l)
	}

	tLin := d.flopsPerTok * sumLen / (g * c.HW.PeakFLOPS * c.HW.MFUPrefill)
	// Causal attention touches len^2/2 pairs; striped attention balances
	// this evenly over instances.
	tAttn := d.attnPerPair * sumSq / 2 / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	tWeights := c.weightReadSec(tp)

	// Sequence-parallel ring: the whole KV volume circulates (sp-1)/sp
	// through each instance, overlapped with attention compute; per-round
	// synchronization latency is not hidden.
	var tRing, ringLat float64
	if sp > 1 {
		ringBytes := sumLen * d.kvBytesPerTok * float64(sp-1) / float64(sp)
		tRing = ringBytes / link.Bandwidth
		ringLat = d.layers * float64(sp-1) * link.Latency.Seconds()
	}
	tTP := c.tpCommSec(sumLen/float64(sp), tp)

	total := d.prefillOvhSec +
		maxf(tLin, tWeights) +
		maxf(tAttn, tRing) +
		tTP + ringLat
	return durSec(total)
}

// DecodeIterTime returns the duration of one decoding iteration: bs
// requests each generating one token, with sumKV total resident KV tokens
// spread over the group, sp instances of tp GPUs, and `masters` master
// instances running the dense (FFN/projection) layers (§4.2).
//
// Shape properties:
//   - small batches are bound by the weight read of a single instance, so
//     decoding scales poorly with more GPUs (Fig 2 bottom);
//   - large batches become compute bound and split across masters, giving
//     multi-master decoding its ~2x win at BS=1024 (Fig 14b);
//   - with one master and a large batch, dense layers serialize on the
//     master — the single-master limitation the paper calls out.
func (c *CostModel) DecodeIterTime(bs, sumKV, sp, tp, masters int, link cluster.Link) time.Duration {
	if bs <= 0 {
		return 0
	}
	if sp < 1 || tp < 1 {
		panic(fmt.Sprintf("costmodel: invalid parallelism sp=%d tp=%d", sp, tp))
	}
	if masters < 1 {
		masters = 1
	}
	if masters > sp {
		masters = sp
	}
	if masters > bs {
		masters = bs
	}
	c.ensure()
	d := &c.derived
	g := float64(sp * tp)

	// Dense layers on master instances, batch split across masters.
	tLin := d.flopsPerTok * float64(bs) / (float64(masters*tp) * c.HW.PeakFLOPS * c.HW.MFUDecode)
	tWeights := c.weightReadSec(tp)

	// Attention: reading resident KV dominates; it is spread over the whole
	// group's HBM.
	tKVRead := float64(sumKV) * d.kvBytesPerTok / (g * c.HW.MemBandwidth)
	tAttnFLOPs := d.attnPerPair * float64(sumKV) / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	tAttn := maxf(tKVRead, tAttnFLOPs)

	// Query/partial-result exchange between instances, overlapped with
	// local attention; per-layer synchronization latency is not hidden.
	var commLat, tCommExcess float64
	if sp > 1 {
		qBytes := d.tpVolumeFactor * float64(bs) * float64(sp-1) / float64(sp)
		tComm := qBytes / link.Bandwidth
		tCommExcess = maxf(0, tComm-tAttn)
		commLat = 2 * d.layers * link.Latency.Seconds()
	}
	tTP := c.tpCommSec(float64(bs)/float64(masters), tp)

	total := d.decodeOvhSec +
		maxf(tLin, tWeights) +
		tAttn + tCommExcess +
		tTP + commLat
	return durSec(total)
}

// ChunkIterTime returns the duration of one chunked-prefill (SplitFuse /
// SARATHI / DeepSpeed-FastGen) iteration on a single instance of tp GPUs:
// `chunk` new prompt tokens attending over ctx already-cached tokens, fused
// with a decode batch of decodeBS requests holding decodeKV cached tokens.
func (c *CostModel) ChunkIterTime(chunk, ctx, decodeBS, decodeKV, tp int) time.Duration {
	c.ensure()
	d := &c.derived
	g := float64(tp)
	newTokens := float64(chunk + decodeBS)
	tLin := d.flopsPerTok * newTokens / (g * c.HW.PeakFLOPS * c.HW.MFUPrefill)
	tWeights := c.weightReadSec(tp)

	// Chunk attention: each of the chunk tokens attends over ctx previous
	// tokens plus the causal half of the chunk itself.
	pairs := float64(chunk)*float64(ctx) + float64(chunk)*float64(chunk)/2
	tAttn := d.attnPerPair * pairs / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	// Decode attention within the fused batch.
	tKVRead := float64(decodeKV) * d.kvBytesPerTok / (g * c.HW.MemBandwidth)

	tTP := c.tpCommSec(newTokens, tp)
	total := d.chunkOvhSec + maxf(tLin, tWeights) + tAttn + tKVRead + tTP
	return durSec(total)
}

// ScaleDownOverhead returns the extra time proactive scale-down adds to a
// prefill iteration: pure bookkeeping (selecting which KV tokens to retain
// while they stream past in the ring), no extra communication (§4.1). It is
// bounded well under the paper's measured <2% (Fig 14a).
func (c *CostModel) ScaleDownOverhead() time.Duration {
	return 200 * time.Microsecond
}

// ReactiveMigrationTime returns the cost of the baseline reactive
// scale-down: after prefill, move `tokens` KV tokens across instances over
// the given link. Proactive migration avoids exactly this.
func (c *CostModel) ReactiveMigrationTime(tokens int, link cluster.Link) time.Duration {
	if tokens <= 0 {
		return 0
	}
	return link.Transfer(int64(tokens) * c.M.KVBytesPerToken())
}
