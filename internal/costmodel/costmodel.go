// Package costmodel computes simulated iteration times for LLM serving on
// the cluster substrate: a roofline-style physical model (compute FLOPs vs
// memory traffic vs interconnect traffic) calibrated against the anchor
// measurements the paper reports, plus the paper's analytical model (Eq 7)
// with SIB-backed least-squares fitting used by the LoongServe global
// manager at scheduling time.
//
// Two distinct layers live here on purpose:
//
//   - The *ground truth* layer (PrefillIterTime, DecodeIterTime,
//     ChunkIterTime) plays the role of the GPUs: every serving engine in the
//     simulator advances time by these durations.
//   - The *estimator* layer (Coeffs, SIB) plays the role of the paper's
//     §5.5 analytical model: the LoongServe scheduler never reads ground
//     truth directly; it fits T_p(R) = α + β·Σlen + γ·Σlen² from profiled
//     samples and plans with the fit, exactly as the real system does.
//     Fig 15 measures the gap between the two.
package costmodel

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/model"
)

// CostModel computes ground-truth iteration times for one model on one
// hardware generation.
type CostModel struct {
	M  model.Config
	HW cluster.Hardware
}

// New returns a cost model; it panics on an invalid model config since that
// is a programming error, not an input error.
func New(m model.Config, hw cluster.Hardware) *CostModel {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &CostModel{M: m, HW: hw}
}

func ceilLog2(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func durSec(s float64) time.Duration { return time.Duration(s * 1e9) }

// weightReadSec returns the time for one instance's GPUs to stream the
// weight replica from HBM once — the memory-bound floor of an iteration.
func (c *CostModel) weightReadSec(tp int) float64 {
	return float64(c.M.WeightBytes()) / (float64(tp) * c.HW.MemBandwidth)
}

// tpCommSec returns tensor-parallel all-reduce time for `tokens` activation
// rows within one instance of tp GPUs over NVLink: two all-reduces per
// layer, ring all-reduce volume 2(tp-1)/tp, plus per-collective latency.
func (c *CostModel) tpCommSec(tokens float64, tp int) float64 {
	if tp <= 1 {
		return 0
	}
	bytes := 2 * float64(c.M.Layers) * tokens * float64(c.M.Hidden) * float64(c.M.BytesParam) *
		2 * float64(tp-1) / float64(tp)
	lat := 2 * float64(c.M.Layers) * float64(ceilLog2(tp)) * c.HW.NVLinkLatency.Seconds()
	return bytes/c.HW.NVLinkBandwidth + lat
}

// PrefillIterTime returns the duration of one prefill iteration for a batch
// of fresh requests with the given input lengths, executed by a parallel
// group of sp instances (tensor parallelism tp inside each), connected by
// link (the group's bottleneck channel, relevant when sp > 1).
//
// Shape properties this reproduces:
//   - long inputs scale nearly linearly with total GPUs (Fig 2 top);
//   - short inputs are dominated by the fixed overhead, so extra GPUs are
//     wasted (Fig 2 top, BS=1 Len=100);
//   - SPxTP combinations match or slightly beat pure TP on long inputs
//     because ring traffic overlaps with attention compute while
//     all-reduce traffic shrinks (Fig 3).
func (c *CostModel) PrefillIterTime(lens []int, sp, tp int, link cluster.Link) time.Duration {
	if len(lens) == 0 {
		return 0
	}
	if sp < 1 || tp < 1 {
		panic(fmt.Sprintf("costmodel: invalid parallelism sp=%d tp=%d", sp, tp))
	}
	g := float64(sp * tp)
	var sumLen, sumSq float64
	for _, l := range lens {
		sumLen += float64(l)
		sumSq += float64(l) * float64(l)
	}

	tLin := c.M.FLOPsPerToken() * sumLen / (g * c.HW.PeakFLOPS * c.HW.MFUPrefill)
	// Causal attention touches len^2/2 pairs; striped attention balances
	// this evenly over instances.
	tAttn := c.M.AttnFLOPsPerTokenPair() * sumSq / 2 / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	tWeights := c.weightReadSec(tp)

	// Sequence-parallel ring: the whole KV volume circulates (sp-1)/sp
	// through each instance, overlapped with attention compute; per-round
	// synchronization latency is not hidden.
	var tRing, ringLat float64
	if sp > 1 {
		ringBytes := sumLen * float64(c.M.KVBytesPerToken()) * float64(sp-1) / float64(sp)
		tRing = ringBytes / link.Bandwidth
		ringLat = float64(c.M.Layers) * float64(sp-1) * link.Latency.Seconds()
	}
	tTP := c.tpCommSec(sumLen/float64(sp), tp)

	total := c.HW.PrefillOverhead.Seconds() +
		maxf(tLin, tWeights) +
		maxf(tAttn, tRing) +
		tTP + ringLat
	return durSec(total)
}

// DecodeIterTime returns the duration of one decoding iteration: bs
// requests each generating one token, with sumKV total resident KV tokens
// spread over the group, sp instances of tp GPUs, and `masters` master
// instances running the dense (FFN/projection) layers (§4.2).
//
// Shape properties:
//   - small batches are bound by the weight read of a single instance, so
//     decoding scales poorly with more GPUs (Fig 2 bottom);
//   - large batches become compute bound and split across masters, giving
//     multi-master decoding its ~2x win at BS=1024 (Fig 14b);
//   - with one master and a large batch, dense layers serialize on the
//     master — the single-master limitation the paper calls out.
func (c *CostModel) DecodeIterTime(bs, sumKV, sp, tp, masters int, link cluster.Link) time.Duration {
	if bs <= 0 {
		return 0
	}
	if sp < 1 || tp < 1 {
		panic(fmt.Sprintf("costmodel: invalid parallelism sp=%d tp=%d", sp, tp))
	}
	if masters < 1 {
		masters = 1
	}
	if masters > sp {
		masters = sp
	}
	if masters > bs {
		masters = bs
	}
	g := float64(sp * tp)

	// Dense layers on master instances, batch split across masters.
	tLin := c.M.FLOPsPerToken() * float64(bs) / (float64(masters*tp) * c.HW.PeakFLOPS * c.HW.MFUDecode)
	tWeights := c.weightReadSec(tp)

	// Attention: reading resident KV dominates; it is spread over the whole
	// group's HBM.
	tKVRead := float64(sumKV) * float64(c.M.KVBytesPerToken()) / (g * c.HW.MemBandwidth)
	tAttnFLOPs := c.M.AttnFLOPsPerTokenPair() * float64(sumKV) / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	tAttn := maxf(tKVRead, tAttnFLOPs)

	// Query/partial-result exchange between instances, overlapped with
	// local attention; per-layer synchronization latency is not hidden.
	var commLat, tCommExcess float64
	if sp > 1 {
		qBytes := 2 * float64(c.M.Layers) * float64(bs) * float64(c.M.Hidden) * float64(c.M.BytesParam) *
			float64(sp-1) / float64(sp)
		tComm := qBytes / link.Bandwidth
		tCommExcess = maxf(0, tComm-tAttn)
		commLat = 2 * float64(c.M.Layers) * link.Latency.Seconds()
	}
	tTP := c.tpCommSec(float64(bs)/float64(masters), tp)

	total := c.HW.DecodeOverhead.Seconds() +
		maxf(tLin, tWeights) +
		tAttn + tCommExcess +
		tTP + commLat
	return durSec(total)
}

// ChunkIterTime returns the duration of one chunked-prefill (SplitFuse /
// SARATHI / DeepSpeed-FastGen) iteration on a single instance of tp GPUs:
// `chunk` new prompt tokens attending over ctx already-cached tokens, fused
// with a decode batch of decodeBS requests holding decodeKV cached tokens.
func (c *CostModel) ChunkIterTime(chunk, ctx, decodeBS, decodeKV, tp int) time.Duration {
	g := float64(tp)
	newTokens := float64(chunk + decodeBS)
	tLin := c.M.FLOPsPerToken() * newTokens / (g * c.HW.PeakFLOPS * c.HW.MFUPrefill)
	tWeights := c.weightReadSec(tp)

	// Chunk attention: each of the chunk tokens attends over ctx previous
	// tokens plus the causal half of the chunk itself.
	pairs := float64(chunk)*float64(ctx) + float64(chunk)*float64(chunk)/2
	tAttn := c.M.AttnFLOPsPerTokenPair() * pairs / (g * c.HW.PeakFLOPS * c.HW.MFUAttention)
	// Decode attention within the fused batch.
	tKVRead := float64(decodeKV) * float64(c.M.KVBytesPerToken()) / (g * c.HW.MemBandwidth)

	tTP := c.tpCommSec(newTokens, tp)
	total := c.HW.ChunkOverhead.Seconds() + maxf(tLin, tWeights) + tAttn + tKVRead + tTP
	return durSec(total)
}

// ScaleDownOverhead returns the extra time proactive scale-down adds to a
// prefill iteration: pure bookkeeping (selecting which KV tokens to retain
// while they stream past in the ring), no extra communication (§4.1). It is
// bounded well under the paper's measured <2% (Fig 14a).
func (c *CostModel) ScaleDownOverhead() time.Duration {
	return 200 * time.Microsecond
}

// ReactiveMigrationTime returns the cost of the baseline reactive
// scale-down: after prefill, move `tokens` KV tokens across instances over
// the given link. Proactive migration avoids exactly this.
func (c *CostModel) ReactiveMigrationTime(tokens int, link cluster.Link) time.Duration {
	if tokens <= 0 {
		return 0
	}
	return link.Transfer(int64(tokens) * c.M.KVBytesPerToken())
}
