package costmodel

import (
	"math"
	"testing"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/model"
)

func newCM() *CostModel {
	return New(model.LWM1MText(), cluster.A800())
}

func nvlink() cluster.Link {
	hw := cluster.A800()
	return cluster.Link{Bandwidth: hw.NVLinkBandwidth, Latency: hw.NVLinkLatency}
}

func ib() cluster.Link {
	hw := cluster.A800()
	return cluster.Link{Bandwidth: hw.IBBandwidth, Latency: hw.IBLatency}
}

// Paper anchor (§2.4 / Fig 2): processing 100K input tokens on 8 GPUs is
// 105.97x slower than processing 1K tokens.
func TestPaperAnchor100KTo1KRatio(t *testing.T) {
	cm := newCM()
	t100k := cm.PrefillIterTime([]int{100_000}, 1, 8, nvlink())
	t1k := cm.PrefillIterTime([]int{1_000}, 1, 8, nvlink())
	ratio := float64(t100k) / float64(t1k)
	if ratio < 85 || ratio > 125 {
		t.Fatalf("100K/1K ratio = %.1f, want ≈106 (t100k=%v t1k=%v)", ratio, t100k, t1k)
	}
}

// Fig 2 (top): long prefills scale nearly linearly with the TP degree;
// short prefills barely benefit.
func TestFig2PrefillScalingShape(t *testing.T) {
	cm := newCM()
	long2 := cm.PrefillIterTime([]int{100_000}, 1, 2, nvlink())
	long8 := cm.PrefillIterTime([]int{100_000}, 1, 8, nvlink())
	speedupLong := float64(long2) / float64(long8)
	if speedupLong < 2.5 {
		t.Fatalf("100K tokens 2->8 GPUs speedup = %.2f, want near-linear (>2.5)", speedupLong)
	}
	short2 := cm.PrefillIterTime([]int{100}, 1, 2, nvlink())
	short8 := cm.PrefillIterTime([]int{100}, 1, 8, nvlink())
	speedupShort := float64(short2) / float64(short8)
	if speedupShort > 1.3 {
		t.Fatalf("100 tokens 2->8 GPUs speedup = %.2f, want ≈1 (overhead bound)", speedupShort)
	}
}

// Fig 2 (bottom): decoding scales poorly with the TP degree — a 4x GPU
// increase buys well under 2x.
func TestFig2DecodeScalingShape(t *testing.T) {
	cm := newCM()
	d2 := cm.DecodeIterTime(16, 16*500, 1, 2, 1, nvlink())
	d8 := cm.DecodeIterTime(16, 16*500, 1, 8, 1, nvlink())
	speedup := float64(d2) / float64(d8)
	if speedup < 1.0 || speedup > 2.2 {
		t.Fatalf("decode 2->8 GPUs speedup = %.2f, want modest (1-2.2)", speedup)
	}
}

// Fig 3: SPxTP hybrids match or beat pure TP on the same GPU count for
// long sequences, and are no worse than ~15% on short ones.
func TestFig3SPvsTPShape(t *testing.T) {
	cm := newCM()
	for _, tc := range []struct {
		lens []int
	}{
		{[]int{500_000}},
		{lensRepeat(50_000, 16)},
	} {
		tp8 := cm.PrefillIterTime(tc.lens, 1, 8, nvlink())
		sp2tp4 := cm.PrefillIterTime(tc.lens, 2, 4, nvlink())
		sp4tp2 := cm.PrefillIterTime(tc.lens, 4, 2, nvlink())
		if float64(sp4tp2) > 1.05*float64(tp8) {
			t.Fatalf("lens %v: SP4TP2 %v should be <= ~TP8 %v", tc.lens[:1], sp4tp2, tp8)
		}
		if float64(sp2tp4) > 1.05*float64(tp8) {
			t.Fatalf("lens %v: SP2TP4 %v should be <= ~TP8 %v", tc.lens[:1], sp2tp4, tp8)
		}
	}
	// Short sequences: hybrids pay ring latency but stay within 15%.
	short := lensRepeat(1_000, 4)
	tp8 := cm.PrefillIterTime(short, 1, 8, nvlink())
	sp4tp2 := cm.PrefillIterTime(short, 4, 2, nvlink())
	if float64(sp4tp2) > 1.15*float64(tp8) {
		t.Fatalf("short batch: SP4TP2 %v much worse than TP8 %v", sp4tp2, tp8)
	}
}

func lensRepeat(l, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = l
	}
	return out
}

// Fig 14b: multi-master decoding gives ~2x at large batch sizes and costs
// <10% at batch size 1.
func TestFig14bMultiMasterShape(t *testing.T) {
	cm := newCM()
	link := nvlink()
	big1 := cm.DecodeIterTime(1024, 1024*10, 4, 2, 1, link)
	big4 := cm.DecodeIterTime(1024, 1024*10, 4, 2, 4, link)
	if gain := float64(big1) / float64(big4); gain < 1.7 {
		t.Fatalf("BS=1024 multi-master gain = %.2f, want ≈2x", gain)
	}
	small1 := cm.DecodeIterTime(1, 200_000, 1, 2, 1, cluster.Link{Bandwidth: cm.HW.MemBandwidth})
	small4 := cm.DecodeIterTime(1, 200_000, 4, 2, 4, link)
	if overhead := float64(small4)/float64(small1) - 1; overhead > 0.12 {
		t.Fatalf("BS=1 scale-up overhead = %.1f%%, want <10%%", overhead*100)
	}
}

// Fig 14a: proactive scale-down overhead is <2% of any realistic prefill.
func TestFig14aScaleDownOverheadTiny(t *testing.T) {
	cm := newCM()
	for _, lens := range [][]int{lensRepeat(10, 1024), lensRepeat(1_000, 64), {200_000}} {
		base := cm.PrefillIterTime(lens, 4, 2, nvlink())
		overhead := float64(cm.ScaleDownOverhead()) / float64(base)
		if overhead > 0.02 {
			t.Fatalf("lens %v: scale-down overhead %.2f%% > 2%%", lens[:1], overhead*100)
		}
	}
}

// Reactive migration of a long request costs far more than a decode step
// (§4.1) — the motivation for proactive migration.
func TestReactiveMigrationDwarfsDecodeStep(t *testing.T) {
	cm := newCM()
	mig := cm.ReactiveMigrationTime(200_000, nvlink())
	dec := cm.DecodeIterTime(8, 8*4096, 1, 2, 1, nvlink())
	if mig < 5*dec {
		t.Fatalf("migration %v should dwarf decode step %v", mig, dec)
	}
}

func TestPrefillMonotonicInLength(t *testing.T) {
	cm := newCM()
	prev := time.Duration(0)
	for _, l := range []int{100, 1_000, 10_000, 100_000, 500_000} {
		d := cm.PrefillIterTime([]int{l}, 2, 4, nvlink())
		if d <= prev {
			t.Fatalf("prefill time not increasing at len %d: %v <= %v", l, d, prev)
		}
		prev = d
	}
}

func TestDecodeMonotonicInBatchAndKV(t *testing.T) {
	cm := newCM()
	if cm.DecodeIterTime(64, 64*1000, 2, 2, 2, nvlink()) <= cm.DecodeIterTime(8, 8*1000, 2, 2, 2, nvlink()) {
		t.Fatal("decode time not increasing in batch size")
	}
	if cm.DecodeIterTime(8, 8*100_000, 2, 2, 2, nvlink()) <= cm.DecodeIterTime(8, 8*100, 2, 2, 2, nvlink()) {
		t.Fatal("decode time not increasing in KV length")
	}
}

func TestEmptyAndZeroInputs(t *testing.T) {
	cm := newCM()
	if cm.PrefillIterTime(nil, 1, 8, nvlink()) != 0 {
		t.Fatal("empty prefill batch should be free")
	}
	if cm.DecodeIterTime(0, 0, 1, 8, 1, nvlink()) != 0 {
		t.Fatal("empty decode batch should be free")
	}
	if cm.ReactiveMigrationTime(0, nvlink()) != 0 {
		t.Fatal("zero-token migration should be free")
	}
}

func TestInvalidParallelismPanics(t *testing.T) {
	cm := newCM()
	defer func() {
		if recover() == nil {
			t.Fatal("sp=0 did not panic")
		}
	}()
	cm.PrefillIterTime([]int{10}, 0, 8, nvlink())
}

func TestIBSlowerThanNVLinkForRing(t *testing.T) {
	cm := newCM()
	lens := []int{400_000}
	intra := cm.PrefillIterTime(lens, 8, 1, nvlink())
	inter := cm.PrefillIterTime(lens, 8, 1, ib())
	if inter < intra {
		t.Fatalf("IB ring %v should not beat NVLink ring %v", inter, intra)
	}
}

func TestChunkIterTime(t *testing.T) {
	cm := newCM()
	// A chunk deep into a long context costs more than the same chunk at
	// the start (attention over the context).
	early := cm.ChunkIterTime(2048, 0, 0, 0, 8)
	late := cm.ChunkIterTime(2048, 200_000, 0, 0, 8)
	if late <= early {
		t.Fatalf("late chunk %v should exceed early chunk %v", late, early)
	}
	// Fusing a decode batch adds time.
	fused := cm.ChunkIterTime(2048, 0, 32, 32*2000, 8)
	if fused <= early {
		t.Fatal("fused decode batch should add time")
	}
	// Chunked prefill of a long input costs more in total than one-shot
	// prefill (the Fig 10 SplitFuse inefficiency).
	var chunked time.Duration
	total := 100_000
	chunk := 2048
	for done := 0; done < total; done += chunk {
		c := chunk
		if done+c > total {
			c = total - done
		}
		chunked += cm.ChunkIterTime(c, done, 0, 0, 8)
	}
	oneShot := cm.PrefillIterTime([]int{total}, 1, 8, nvlink())
	if chunked <= oneShot {
		t.Fatalf("chunked total %v should exceed one-shot %v", chunked, oneShot)
	}
}

// --- analytical model & fitting ---

func TestCoeffsPredict(t *testing.T) {
	c := Coeffs{Alpha: 0.01, Beta: 1e-6, Gamma: 1e-12}
	got := c.Predict([]int{1000, 2000})
	want := 0.01 + 1e-6*3000 + 1e-12*(1e6+4e6)
	if math.Abs(got.Seconds()-want) > 1e-9 {
		t.Fatalf("Predict = %v, want %vs", got, want)
	}
	neg := Coeffs{Alpha: -1}
	if neg.Predict([]int{1}) != 0 {
		t.Fatal("negative prediction should clamp to 0")
	}
}

func TestFitPrefillRecoversExactQuadratic(t *testing.T) {
	truth := Coeffs{Alpha: 0.02, Beta: 2e-7, Gamma: 3e-13}
	var samples []PrefillSample
	for _, l := range []int{100, 1000, 5000, 20_000, 100_000, 300_000} {
		for _, bs := range []int{1, 2, 4} {
			lens := lensRepeat(l, bs)
			samples = append(samples, PrefillSample{Lens: lens, Measured: truth.Predict(lens)})
		}
	}
	got, err := FitPrefill(samples)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Alpha, truth.Alpha) > 1e-5 || relErr(got.Beta, truth.Beta) > 1e-5 || relErr(got.Gamma, truth.Gamma) > 1e-5 {
		t.Fatalf("fit %+v, want %+v", got, truth)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFitPrefillTooFewSamples(t *testing.T) {
	_, err := FitPrefill([]PrefillSample{{Lens: []int{1}, Measured: 1}})
	if err == nil {
		t.Fatal("fit with 1 sample succeeded")
	}
}

func TestFitPrefillSingular(t *testing.T) {
	// All-identical samples make the system singular.
	s := PrefillSample{Lens: []int{100}, Measured: time.Millisecond}
	_, err := FitPrefill([]PrefillSample{s, s, s, s})
	if err == nil {
		t.Fatal("singular fit succeeded")
	}
}

func TestFitDecodeRecoversLinearModel(t *testing.T) {
	truth := DecodeCoeffs{Alpha: 0.004, BetaBS: 2e-5, GammaKV: 3e-9}
	var samples []DecodeSample
	for _, bs := range []int{1, 8, 64, 512} {
		for _, kv := range []int{1000, 50_000, 400_000} {
			samples = append(samples, DecodeSample{BS: bs, SumKV: kv, Measured: truth.Predict(bs, kv)})
		}
	}
	got, err := FitDecode(samples)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Alpha, truth.Alpha) > 1e-5 || relErr(got.BetaBS, truth.BetaBS) > 1e-5 || relErr(got.GammaKV, truth.GammaKV) > 1e-5 {
		t.Fatalf("fit %+v, want %+v", got, truth)
	}
}

// Fig 15: the fitted analytical model predicts ground truth within ~10%
// across strategies SP2TP4, SP4TP2, SP8TP1 for batches up to 512K tokens.
func TestFig15AnalyticalModelAccuracy(t *testing.T) {
	cm := newCM()
	prof := &Profiler{CM: cm, Link: nvlink(), Jitter: 0.01, Seed: 1}
	sib := NewSIB()
	for _, st := range []Strategy{{2, 4}, {4, 2}, {8, 1}} {
		prof.ProfilePrefill(sib, st, DefaultPrefillGrid(512_000))
		coeffs, err := sib.PrefillCoeffs(st)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate on points *between* grid points.
		for _, bs := range []int{1, 2, 4, 8} {
			for _, l := range []int{700, 3000, 30_000, 80_000, 150_000, 400_000} {
				if bs*l > 512_000 {
					continue
				}
				lens := lensRepeat(l, bs)
				pred := coeffs.Predict(lens).Seconds()
				real := cm.PrefillIterTime(lens, st.SP, st.TP, nvlink()).Seconds()
				if dev := relErr(pred, real); dev > 0.15 {
					t.Fatalf("strategy %s bs=%d len=%d: deviation %.1f%% (pred %.3fs real %.3fs)",
						st.Key(), bs, l, dev*100, pred, real)
				}
			}
		}
	}
}

func TestSIBRoundTripJSON(t *testing.T) {
	cm := newCM()
	prof := &Profiler{CM: cm, Link: nvlink(), Jitter: 0.02, Seed: 9}
	sib := NewSIB()
	st := Strategy{SP: 2, TP: 4}
	prof.ProfilePrefill(sib, st, DefaultPrefillGrid(100_000))
	prof.ProfileDecode(sib, st, 1)
	prof.CalibrateThresholds(sib, st)

	path := t.TempDir() + "/sib.json"
	if err := sib.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Prefill[st.Key()]) != len(sib.Prefill[st.Key()]) {
		t.Fatalf("prefill samples %d, want %d", len(loaded.Prefill[st.Key()]), len(sib.Prefill[st.Key()]))
	}
	if loaded.DecodeBSThreshold != sib.DecodeBSThreshold {
		t.Fatal("threshold lost in round trip")
	}
	c1, err := sib.PrefillCoeffs(st)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := loaded.PrefillCoeffs(st)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(c1.Beta, c2.Beta) > 1e-9 {
		t.Fatal("coefficients differ after round trip")
	}
}

func TestSIBStrategiesSorted(t *testing.T) {
	sib := NewSIB()
	sib.AddPrefill(Strategy{4, 2}, PrefillSample{Lens: []int{1}, Measured: 1})
	sib.AddPrefill(Strategy{2, 4}, PrefillSample{Lens: []int{1}, Measured: 1})
	keys := sib.Strategies()
	if len(keys) != 2 || keys[0] != "sp2tp4" || keys[1] != "sp4tp2" {
		t.Fatalf("Strategies() = %v", keys)
	}
}

func TestSIBMissingStrategyErrors(t *testing.T) {
	sib := NewSIB()
	if _, err := sib.PrefillCoeffs(Strategy{2, 2}); err == nil {
		t.Fatal("fit of unprofiled strategy succeeded")
	}
	if _, err := sib.DecodeCoeffs(Strategy{2, 2}); err == nil {
		t.Fatal("decode fit of unprofiled strategy succeeded")
	}
}

func TestCalibrateThresholds(t *testing.T) {
	cm := newCM()
	prof := &Profiler{CM: cm, Link: nvlink(), Seed: 1}
	sib := NewSIB()
	prof.CalibrateThresholds(sib, Strategy{SP: 4, TP: 2})
	if sib.DecodeBSThreshold < 16 || sib.DecodeBSThreshold > 2048 {
		t.Fatalf("decode BS threshold = %d, want a plausible compute-bound point", sib.DecodeBSThreshold)
	}
	if sib.PrefillTippingPoint <= 0 {
		t.Fatal("tipping point not set")
	}
}

func TestProfilerDeterministic(t *testing.T) {
	cm := newCM()
	mk := func() *SIB {
		sib := NewSIB()
		p := &Profiler{CM: cm, Link: nvlink(), Jitter: 0.05, Seed: 33}
		p.ProfilePrefill(sib, Strategy{2, 4}, DefaultPrefillGrid(50_000))
		return sib
	}
	a, b := mk(), mk()
	sa, sb := a.Prefill["sp2tp4"], b.Prefill["sp2tp4"]
	for i := range sa {
		if sa[i].Measured != sb[i].Measured {
			t.Fatal("profiler not deterministic")
		}
	}
}

func TestStrategyKey(t *testing.T) {
	if (Strategy{SP: 4, TP: 2}).Key() != "sp4tp2" {
		t.Fatal("key format changed")
	}
	if (Strategy{SP: 4, TP: 2}).GPUs() != 8 {
		t.Fatal("GPUs wrong")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b := []float64{5, 10, 7}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual against a fresh copy.
	a2 := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b2 := []float64{5, 10, 7}
	for i := range a2 {
		var s float64
		for j := range x {
			s += a2[i][j] * x[j]
		}
		if math.Abs(s-b2[i]) > 1e-9 {
			t.Fatalf("residual row %d: %v vs %v", i, s, b2[i])
		}
	}
}
