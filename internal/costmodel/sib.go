package costmodel

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"loongserve/internal/cluster"
)

// SIB is the Scaling Information Base (§3, §5.5): the store of profiling
// results the global manager trains its analytical models from. The paper
// keeps it in SQLite; stdlib-only, we keep it in memory with JSON
// persistence — the lookup/fit API is the same.
type SIB struct {
	Prefill map[string][]PrefillSample `json:"prefill"`
	Decode  map[string][]DecodeSample  `json:"decode"`

	// PrefillTippingPoint is the profiled upper bound of the iteration time
	// at which a prefill batch stops being memory bound (§5.1): the
	// dispatcher stops growing R_p past it.
	PrefillTippingPoint time.Duration `json:"prefill_tipping_point"`
	// DecodeBSThreshold is the profiled batch size at which decoding turns
	// compute bound (§5.4): the scale-up trigger.
	DecodeBSThreshold int `json:"decode_bs_threshold"`

	// Fit caches are keyed by the Strategy value itself, not its string
	// key: a cache hit must not allocate (PrefillCoeffs sits on the
	// scheduler's per-decision path, and Strategy.Key() formats a string).
	fittedPrefill map[Strategy]Coeffs
	fittedDecode  map[Strategy]DecodeCoeffs
}

// NewSIB returns an empty scaling information base.
func NewSIB() *SIB {
	return &SIB{
		Prefill:       make(map[string][]PrefillSample),
		Decode:        make(map[string][]DecodeSample),
		fittedPrefill: make(map[Strategy]Coeffs),
		fittedDecode:  make(map[Strategy]DecodeCoeffs),
	}
}

// AddPrefill records a prefill profile point and invalidates the fit.
func (s *SIB) AddPrefill(st Strategy, sample PrefillSample) {
	s.Prefill[st.Key()] = append(s.Prefill[st.Key()], sample)
	delete(s.fittedPrefill, st)
}

// AddDecode records a decode profile point and invalidates the fit.
func (s *SIB) AddDecode(st Strategy, sample DecodeSample) {
	s.Decode[st.Key()] = append(s.Decode[st.Key()], sample)
	delete(s.fittedDecode, st)
}

// PrefillCoeffs returns (fitting on demand and caching) the Eq 7
// coefficients for one strategy. The cache-hit path is allocation-free.
func (s *SIB) PrefillCoeffs(st Strategy) (Coeffs, error) {
	if c, ok := s.fittedPrefill[st]; ok {
		return c, nil
	}
	samples := s.Prefill[st.Key()]
	c, err := FitPrefill(samples)
	if err != nil {
		return Coeffs{}, fmt.Errorf("strategy %s: %w", st.Key(), err)
	}
	if s.fittedPrefill == nil {
		s.fittedPrefill = make(map[Strategy]Coeffs)
	}
	s.fittedPrefill[st] = c
	return c, nil
}

// DecodeCoeffs returns the decode model for one strategy. The cache-hit
// path is allocation-free.
func (s *SIB) DecodeCoeffs(st Strategy) (DecodeCoeffs, error) {
	if c, ok := s.fittedDecode[st]; ok {
		return c, nil
	}
	c, err := FitDecode(s.Decode[st.Key()])
	if err != nil {
		return DecodeCoeffs{}, fmt.Errorf("strategy %s: %w", st.Key(), err)
	}
	if s.fittedDecode == nil {
		s.fittedDecode = make(map[Strategy]DecodeCoeffs)
	}
	s.fittedDecode[st] = c
	return c, nil
}

// Strategies returns the profiled prefill strategies, sorted by key.
func (s *SIB) Strategies() []string {
	keys := make([]string, 0, len(s.Prefill))
	for k := range s.Prefill {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Save writes the SIB as JSON.
func (s *SIB) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a SIB from JSON.
func Load(path string) (*SIB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := NewSIB()
	if err := json.Unmarshal(data, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Profiler generates SIB profiles by "running" batches on the ground-truth
// cost model, with small deterministic measurement jitter so the fits face
// realistic residuals (the real system profiles a noisy GPU).
type Profiler struct {
	CM     *CostModel
	Link   cluster.Link
	Jitter float64 // relative, e.g. 0.02 for ±2%
	Seed   int64
}

// jittered perturbs d multiplicatively with deterministic noise.
func (p *Profiler) jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if p.Jitter == 0 {
		return d
	}
	f := 1 + (rng.Float64()*2-1)*p.Jitter
	return time.Duration(float64(d) * f)
}

// DefaultPrefillGrid returns the profiling grid used to fit prefill models:
// batch sizes and per-request lengths covering the paper's Fig 15 ranges.
func DefaultPrefillGrid(maxLen int) [][]int {
	var grid [][]int
	lens := []int{128, 512, 1024, 4096, 10_000, 25_000, 50_000, 100_000, 200_000, 350_000, 512_000}
	for _, bs := range []int{1, 2, 4, 8} {
		for _, l := range lens {
			if l*bs > maxLen {
				continue
			}
			batch := make([]int, bs)
			for i := range batch {
				batch[i] = l
			}
			grid = append(grid, batch)
		}
	}
	return grid
}

// ProfilePrefill runs the grid for one strategy and records samples.
func (p *Profiler) ProfilePrefill(sib *SIB, st Strategy, grid [][]int) {
	rng := rand.New(rand.NewSource(p.Seed + int64(st.SP)*1000 + int64(st.TP)))
	for _, lens := range grid {
		d := p.CM.PrefillIterTime(lens, st.SP, st.TP, p.Link)
		sib.AddPrefill(st, PrefillSample{Lens: append([]int(nil), lens...), Measured: p.jittered(d, rng)})
	}
}

// ProfileDecode runs a decode grid for one strategy.
func (p *Profiler) ProfileDecode(sib *SIB, st Strategy, masters int) {
	rng := rand.New(rand.NewSource(p.Seed + 7_000_000 + int64(st.SP)*1000 + int64(st.TP)))
	for _, bs := range []int{1, 4, 16, 64, 256, 1024} {
		for _, avgKV := range []int{128, 1024, 8192, 65_536} {
			d := p.CM.DecodeIterTime(bs, bs*avgKV, st.SP, st.TP, masters, p.Link)
			sib.AddDecode(st, DecodeSample{BS: bs, SumKV: bs * avgKV, Measured: p.jittered(d, rng)})
		}
	}
}

// CalibrateThresholds profiles the two scalar knobs the scheduler needs:
// the prefill tipping point (iteration time where a batch of typical
// lengths saturates compute) and the decode batch-size threshold (where
// decoding turns compute bound, §5.4: "FFN layers first become the
// computation bottleneck and their complexity is related to the batch
// size").
func (p *Profiler) CalibrateThresholds(sib *SIB, st Strategy) {
	// Decode threshold: smallest batch size whose dense compute time
	// exceeds the weight-read floor — the compute-bound crossing past
	// which splitting dense layers over more masters genuinely pays.
	// Triggering earlier would grab instances from the prefill phase for a
	// few-percent decode gain.
	perReq := p.CM.M.FLOPsPerToken() / (float64(st.TP) * p.CM.HW.PeakFLOPS * p.CM.HW.MFUDecode)
	threshold := int(p.CM.weightReadSec(st.TP)/perReq) + 1
	if threshold < 1 {
		threshold = 1
	}
	sib.DecodeBSThreshold = threshold
	// Tipping point: the iteration time past which a prefill batch is
	// clearly compute bound — the fixed overhead and weight read are well
	// amortized and adding requests only stretches the iteration (§5.1).
	floor := p.CM.HW.PrefillOverhead.Seconds() + p.CM.weightReadSec(st.TP)
	sib.PrefillTippingPoint = durSec(4 * floor)
}
