package costmodel

import (
	"testing"
	"time"
)

// The scheduler consults fitted coefficients on every decision: a cache-hit
// lookup plus a prediction must not allocate (the former string-keyed
// lookup allocated a formatted key per call).
func TestCoeffsLookupHitAllocs(t *testing.T) {
	sib := NewSIB()
	st := Strategy{SP: 4, TP: 2}
	prof := &Profiler{CM: newCM(), Link: nvlink(), Jitter: 0.01, Seed: 1}
	prof.ProfilePrefill(sib, st, DefaultPrefillGrid(512_000))
	prof.ProfileDecode(sib, st, st.SP)
	if _, err := sib.PrefillCoeffs(st); err != nil {
		t.Fatal(err)
	}
	if _, err := sib.DecodeCoeffs(st); err != nil {
		t.Fatal(err)
	}

	var sink time.Duration
	if avg := testing.AllocsPerRun(200, func() {
		c, err := sib.PrefillCoeffs(st)
		if err != nil {
			t.Fatal(err)
		}
		sink = c.PredictSums(50_000, 2.5e9)
	}); avg != 0 {
		t.Fatalf("PrefillCoeffs hit + PredictSums allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		c, err := sib.DecodeCoeffs(st)
		if err != nil {
			t.Fatal(err)
		}
		sink = c.Predict(64, 1_000_000)
	}); avg != 0 {
		t.Fatalf("DecodeCoeffs hit + Predict allocates %.1f objects per call, want 0", avg)
	}
	_ = sink
}

// PredictSums must agree exactly with Predict over the equivalent length
// vector (the scheduler's running sums accumulate in slice order).
func TestPredictSumsMatchesPredict(t *testing.T) {
	c := Coeffs{Alpha: 0.01, Beta: 2e-6, Gamma: 3e-12}
	lens := []int{100, 5_000, 123_456, 7}
	var sumLen, sumSq float64
	for _, l := range lens {
		sumLen += float64(l)
		sumSq += float64(l) * float64(l)
	}
	if got, want := c.PredictSums(sumLen, sumSq), c.Predict(lens); got != want {
		t.Fatalf("PredictSums = %v, Predict = %v", got, want)
	}
}

// The ground-truth iteration times are on every engine's hot path and must
// not allocate.
func TestIterTimeAllocs(t *testing.T) {
	cm := newCM()
	link := nvlink()
	lens := []int{100_000, 50_000, 2_000, 300}
	var sink time.Duration
	if avg := testing.AllocsPerRun(200, func() {
		sink = cm.PrefillIterTime(lens, 4, 2, link)
		sink += cm.DecodeIterTime(128, 128*4096, 4, 2, 4, link)
	}); avg != 0 {
		t.Fatalf("iteration-time methods allocate %.1f objects per call, want 0", avg)
	}
	_ = sink
}
