package fleet

import (
	"fmt"
	"sort"
	"time"

	"loongserve/internal/controlplane"
	"loongserve/internal/kvcache"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// This file makes replica failure a first-class scenario: CrashReplica
// destroys a replica mid-flight and recovers its requests on survivors,
// StallReplica freezes one replica's arrivals (the straggler hedging
// defends against), DropControlCaches wipes one instance's control-plane
// metadata (repaired by the manager's Nak/resend path), and InjectFaults
// stages a deterministic workload.Fault schedule onto the simulator.

// FaultStats accounts the faults a run absorbed.
type FaultStats struct {
	Crashes    int
	Stalls     int
	CacheDrops int
	// Drains counts fault-injected (unplanned-churn) drains; operator
	// drains via DrainReplica directly are not faults and not counted.
	Drains int
	// LinkDegrades counts link-slowdown windows applied.
	LinkDegrades int
	// RecoveredRequests counts in-flight requests re-routed to survivors
	// after their replica crashed (hedge promotions excluded — those never
	// re-prefill).
	RecoveredRequests int
	// Skipped counts scheduled faults that could not fire (e.g. a crash
	// drawn while only one replica was active).
	Skipped int
}

// CrashReplica fails a replica abruptly: no drain, no handoff. Its
// resident KV is destroyed, its engine's remaining simulated events are
// silenced, the control plane removes the dead instance and repairs the
// group membership, and every in-flight request it held is recovered — a
// surviving hedge copy is promoted in place; everything else re-enters
// routing with its original arrival time and re-prefills only what no
// surviving cache still holds. The last active replica cannot crash (the
// gateway invariant that routing always has a destination).
func (g *Gateway) CrashReplica(idx int) error {
	if idx < 0 || idx >= len(g.replicas) {
		return fmt.Errorf("fleet: crash of unknown replica %d", idx)
	}
	rep := g.replicas[idx]
	if rep.state != ReplicaActive {
		return fmt.Errorf("fleet: replica %d is %v, not active", idx, rep.state)
	}
	if g.ActiveReplicas() <= 1 {
		return fmt.Errorf("fleet: cannot crash the last active replica")
	}

	// Snapshot the doomed in-flight set in ID order (pending is a map; the
	// recovery sequence must be deterministic).
	ids := make([]kvcache.RequestID, 0, rep.outReqs)
	for id, fl := range g.pending {
		if fl.rep == rep {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	inFlight := len(ids)
	kvLost := rep.cacheUsed()

	// Hedge copies dying here resolve as losses now, before the crash
	// event — their HedgeLose is attributed to this replica, and no event
	// may follow its crash. A copy whose primary already crashed (it was
	// promoted, it IS the request) is deferred to recovery instead.
	var toRecover []*inflight
	var recoverAs []kvcache.RequestID
	for _, id := range ids {
		fl := g.pending[id]
		if fl.hedgeOf == 0 {
			continue
		}
		delete(g.pending, id)
		if ofl := g.pending[fl.hedgeOf]; ofl != nil {
			ofl.hedgeID = 0 // the primary lives; it just lost its hedge
			g.res.Hedge.Losses++
			g.emitHedgeLose(fl.entry.SessionID, fl.hedgeOf, idx, 0, fl.peerRep)
			g.freeInflight(fl)
		} else {
			toRecover = append(toRecover, fl)
			recoverAs = append(recoverAs, fl.hedgeOf)
		}
	}
	for _, id := range ids {
		fl := g.pending[id]
		if fl == nil || fl.hedgeOf != 0 {
			continue // hedge copies were handled above
		}
		delete(g.pending, id)
		if fl.hedgeID != 0 && g.pending[fl.hedgeID] != nil {
			// A live hedge copy survives on another replica: promote it.
			// It finishes under this primary's identity; no re-prefill,
			// no recovery event — the hedge already was the recovery.
			g.freeInflight(fl)
			continue
		}
		fl.hedgeID = 0
		toRecover = append(toRecover, fl)
		recoverAs = append(recoverAs, id)
	}

	// The crash proper. The gated sink dies with the replica: its engine
	// cannot be cancelled and keeps simulating, but nothing it does from
	// here on reaches the stream or the books.
	rep.state = ReplicaFailed
	rep.retiredAt = g.sim.Now()
	if rep.sink != nil {
		rep.sink.dead = true
	}
	rep.outTokens, rep.outReqs = 0, 0
	g.res.Faults.Crashes++
	g.event("crash", "", idx, "%d in-flight requests, %d cached KV tokens destroyed", inFlight, kvLost)
	g.emitCrash(idx, inFlight, kvLost)

	// Control plane: tear down the dead instance's connection, then repair
	// the group membership around it. Survivors see the epoch advance; the
	// dead member is skipped (it can never ack).
	g.ctl.remove(idx)
	if err := g.ctl.scale(controlplane.ScaleDown, g.activeIDs()); err != nil {
		return fmt.Errorf("fleet: control-plane crash repair: %w", err)
	}

	// The resident KV dies with the process.
	if rep.radix != nil {
		rep.radix.Clear()
	} else {
		for _, ent := range rep.cache.Snapshot() {
			rep.cache.Remove(ent.Key)
		}
	}
	for key, home := range g.sessionHome {
		if home == idx {
			delete(g.sessionHome, key)
		}
	}
	// Ghosts routed here will never report a completion the gateway sees.
	for id, fl := range g.ghosts {
		if fl.rep == rep {
			delete(g.ghosts, id)
			g.freeInflight(fl)
		}
	}

	// Recovery: each doomed request re-enters routing with its original
	// arrival (its latency honestly includes the crash) and re-prefills
	// only the suffix no surviving cache covers.
	for i, fl := range toRecover {
		id := recoverAs[i]
		info := RequestInfo{
			ID:         id,
			InputLen:   fl.fullInput,
			SessionKey: SessionKey(fl.entry.SessionID),
			SharedKey:  GroupKey(fl.entry.PromptGroup),
			PrefixLen:  fl.entry.PrefixLen,
			SharedLen:  fl.entry.SharedLen,
			Blocks:     fl.entry.InputBlocks(),
		}
		salvage := 0
		for _, sv := range g.replicas {
			if sv.state != ReplicaActive {
				continue
			}
			if c := sv.CachedTokens(info); c > salvage {
				salvage = c
			}
		}
		r := &serving.Request{
			ID:        id,
			InputLen:  fl.fullInput,
			OutputLen: fl.output,
			Arrival:   fl.arrival,
			SLOBudget: fl.slo,
		}
		e := fl.entry
		g.res.Faults.RecoveredRequests++
		g.emitRecover(e.SessionID, id, salvage, idx)
		g.freeInflight(fl)
		g.Submit(r, e)
		if nfl := g.pending[id]; nfl != nil {
			// Keep recovered completions out of the hedge TTFT baseline —
			// their first-token time includes the crash they survived.
			nfl.recovered = true
		}
	}
	return nil
}

// StallReplica freezes a replica's request intake for d: arrivals routed to
// it are deferred until the stall lifts (already-admitted work keeps
// running — the model is a transient I/O or scheduling hiccup, not a
// halt). Overlapping stalls extend, never shorten.
func (g *Gateway) StallReplica(idx int, d time.Duration) error {
	if idx < 0 || idx >= len(g.replicas) {
		return fmt.Errorf("fleet: stall of unknown replica %d", idx)
	}
	rep := g.replicas[idx]
	if rep.state != ReplicaActive {
		return fmt.Errorf("fleet: replica %d is %v, not active", idx, rep.state)
	}
	if d <= 0 {
		return nil
	}
	until := g.sim.Now() + simevent.Time(d)
	if until > rep.stalledUntil {
		rep.stalledUntil = until
	}
	g.res.Faults.Stalls++
	g.event("stall", "", idx, "arrivals deferred %v", d.Round(time.Millisecond))
	return nil
}

// DegradeLinks slows every inter-replica transfer — drains, migrations,
// cold-tier fetches — by factor for the next window of simulated time:
// migrationDelay multiplies by factor while the window is open, and since
// policies price migrations through the same function, routing honestly
// avoids the congested link. Overlapping windows keep the larger factor
// and the later deadline.
func (g *Gateway) DegradeLinks(factor float64, window time.Duration) error {
	if factor < 1 {
		return fmt.Errorf("fleet: link-degrade factor %v < 1", factor)
	}
	if window <= 0 || factor == 1 {
		return nil
	}
	if g.sim.Now() >= g.degradeUntil {
		g.degradeFactor = factor // previous window expired: fresh factor
	} else if factor > g.degradeFactor {
		g.degradeFactor = factor
	}
	if until := g.sim.Now() + simevent.Time(window); until > g.degradeUntil {
		g.degradeUntil = until
	}
	g.res.Faults.LinkDegrades++
	g.event("degrade", "", 0, "links %.1fx slower for %v", factor, window.Round(time.Millisecond))
	return nil
}

// DropControlCaches wipes one replica instance's control-plane metadata
// cache, as if its process restarted: the next command it receives draws a
// NakUnknownGroup and the manager's config-resend repair — visible in
// ControlStats as Naks and Resends.
func (g *Gateway) DropControlCaches(idx int) error {
	if idx < 0 || idx >= len(g.replicas) {
		return fmt.Errorf("fleet: cache drop on unknown replica %d", idx)
	}
	if g.replicas[idx].state == ReplicaFailed {
		return fmt.Errorf("fleet: cache drop on crashed replica %d", idx)
	}
	g.ctl.dropCaches(idx)
	g.res.Faults.CacheDrops++
	g.event("cachedrop", "", idx, "control-plane metadata cache wiped")
	return nil
}

// InjectFaults stages a fault schedule onto the gateway's simulator. Each
// fault resolves its abstract Slot against the replicas active at fire
// time, so the schedule composes with any scaling the run performs.
// Unfireable faults (a crash with one active replica left) are counted as
// skipped, never retried.
func InjectFaults(g *Gateway, faults []workload.Fault) {
	for _, f := range faults {
		f := f
		g.sim.Stage(simevent.Time(f.At), func() { g.applyFault(f) })
	}
}

func (g *Gateway) applyFault(f workload.Fault) {
	var actives []int
	for _, rep := range g.replicas {
		if rep.state == ReplicaActive {
			actives = append(actives, rep.index)
		}
	}
	if len(actives) == 0 {
		g.res.Faults.Skipped++
		return
	}
	idx := actives[f.Slot%len(actives)]
	var err error
	switch f.Kind {
	case workload.FaultCrash:
		if len(actives) <= 1 {
			g.res.Faults.Skipped++
			return
		}
		err = g.CrashReplica(idx)
	case workload.FaultStall:
		err = g.StallReplica(idx, f.Stall)
	case workload.FaultCacheDrop:
		err = g.DropControlCaches(idx)
	case workload.FaultDrain:
		if len(actives) <= 2 {
			// A drain leaves the replica unroutable for the rest of the
			// run; keep at least two active so a later crash stays fireable.
			g.res.Faults.Skipped++
			return
		}
		g.res.Faults.Drains++
		err = g.DrainReplica(idx)
	case workload.FaultDegrade:
		err = g.DegradeLinks(f.Factor, f.Window)
	default:
		g.res.Faults.Skipped++
		return
	}
	if err != nil {
		panic(fmt.Sprintf("fleet: fault %s on replica %d: %v", f.Kind, idx, err))
	}
}

// RunSessionsFaults is RunSessionsGroups with a fault schedule injected —
// the chaos-experiment entry point. The Result's Faults/Hedge stats and the
// session feed's completion check together prove no request was lost.
func RunSessionsFaults(scripts []workload.SessionScript, cfg Config, closed bool, faults []workload.Fault) (*Result, error) {
	sim := simevent.New()
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		return nil, err
	}
	InjectFaults(g, faults)
	return runSessions(g, sim, scripts, closed)
}
