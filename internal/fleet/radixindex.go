package fleet

// The index layer of the block-granular prefix cache. A RadixIndex names
// block chains — the hash-consed trie structure of "which block follows
// which" — without owning any KV. Residency layers (RadixCache for a
// replica's HBM, coldTier for the fleet's host-memory pool) hold
// refcounted references into one index, so the same trie can describe
// every copy of a block in the fleet: local HBM at some replica, a peer
// replica's copy, or a cold-tier copy. A block's name disappears only
// when its last copy anywhere is gone.
//
// Standalone caches (no global directory) each own a private index; a
// gateway running the cache directory hands every replica cache and the
// cold tier one shared index. Sharing is pure naming — it never changes
// any holder's eviction or admission behavior, which is what keeps the
// split behaviorally invisible (the golden fleet tables are byte-
// identical with the directory off).

// blockRef is one named block in the index: identity (the chained
// content hash), structure (parent link) and position (block depth).
// Chained hashes make the name self-certifying — a hash identifies its
// entire prefix — so two holders acquiring the same hash are guaranteed
// to mean the same token block under the same parent.
type blockRef struct {
	hash   uint64
	parent *blockRef // nil for depth-0 blocks
	depth  int       // block index: covers tokens [depth*B, (depth+1)*B)
	refs   int       // copies held across residency layers
}

// RadixIndex is the shared naming trie: hash -> blockRef, refcounted by
// the residency layers holding copies.
type RadixIndex struct {
	nodes map[uint64]*blockRef
	// free recycles unnamed refs (linked through parent), so naming churn —
	// blocks evicted everywhere and later recomputed — allocates nothing in
	// steady state. Safe because a pointer to a blockRef is only retained
	// under a held ref, and the parent field is identity-inert (stored for
	// re-naming, never traversed).
	free *blockRef
}

// NewRadixIndex returns an empty index.
func NewRadixIndex() *RadixIndex {
	return &RadixIndex{nodes: make(map[uint64]*blockRef)}
}

// Len returns the number of distinct named blocks (blocks with at least
// one copy somewhere).
func (ix *RadixIndex) Len() int { return len(ix.nodes) }

// lookup returns the ref for hash, nil when no copy exists anywhere.
func (ix *RadixIndex) lookup(hash uint64) *blockRef { return ix.nodes[hash] }

// acquire returns the ref for hash, creating it under parent at the
// given depth when this is the first copy, and counts the caller as one
// holder. parent may be nil for depth-0 blocks.
func (ix *RadixIndex) acquire(hash uint64, parent *blockRef, depth int) *blockRef {
	r := ix.nodes[hash]
	if r == nil {
		if r = ix.free; r != nil {
			ix.free = r.parent
		} else {
			r = &blockRef{}
		}
		r.hash = hash
		r.parent = parent
		r.depth = depth
		ix.nodes[hash] = r
	}
	r.refs++
	return r
}

// release drops one holder of r, unnaming the block when its last copy
// is gone.
func (ix *RadixIndex) release(r *blockRef) {
	r.refs--
	if r.refs <= 0 {
		delete(ix.nodes, r.hash)
		r.hash = 0
		r.depth = 0
		r.refs = 0
		r.parent = ix.free
		ix.free = r
	}
}
