package fleet

import (
	"testing"
)

// The node pools exist so steady-state churn — resident sets turning over
// for hours of simulated time — allocates nothing. These are regression
// tests for that property: AllocsPerRun must report zero for the
// remove/reinsert cycles that dominate long runs.

func TestPrefixCacheSteadyStateZeroAllocs(t *testing.T) {
	c := NewPrefixCache(10_000, false)
	for i := 1; i <= 8; i++ {
		c.Put(PrefixKey(i), 1000)
	}
	key := PrefixKey(3)
	if avg := testing.AllocsPerRun(200, func() {
		c.Remove(key)
		c.Put(key, 1000)
		c.Lookup(key)
	}); avg != 0 {
		t.Fatalf("whole-key remove/put/lookup cycle allocates %.1f per run, want 0", avg)
	}
}

func TestRadixCacheSteadyStateZeroAllocs(t *testing.T) {
	c := NewRadixCache(100_000, 100, false, nil)
	trunk := []uint64{11, 12, 13}
	tail := []uint64{11, 12, 13, 14, 15, 16}
	c.Put(tail)
	if avg := testing.AllocsPerRun(200, func() {
		c.RemoveExclusive(tail)
		c.Put(tail)
		c.Lookup(trunk)
	}); avg != 0 {
		t.Fatalf("radix remove/put/lookup cycle allocates %.1f per run, want 0", avg)
	}
}

func TestRadixIndexSteadyStateZeroAllocs(t *testing.T) {
	ix := NewRadixIndex()
	parent := ix.acquire(21, nil, 0)
	// Warm the free list, then measure the name/unname cycle.
	ix.release(ix.acquire(22, parent, 1))
	if avg := testing.AllocsPerRun(200, func() {
		r := ix.acquire(22, parent, 1)
		ix.release(r)
	}); avg != 0 {
		t.Fatalf("index acquire/release cycle allocates %.1f per run, want 0", avg)
	}
}

func TestLRUListZeroAllocs(t *testing.T) {
	var l lruList
	l.init()
	l.remove(l.pushFront(1, 10)) // warm the pool
	if avg := testing.AllocsPerRun(200, func() {
		e := l.pushFront(2, 20)
		l.moveToFront(e)
		l.remove(e)
	}); avg != 0 {
		t.Fatalf("lru push/move/remove cycle allocates %.1f per run, want 0", avg)
	}
}

// TestShardBufSteadyStateZeroAllocs covers the sharded runner's per-window
// hot path: buffering a replica's output and draining it at the barrier
// must reuse the entry storage.
func TestShardBufSteadyStateZeroAllocs(t *testing.T) {
	buf := &shardBuf{}
	// Warm capacity for the steady per-window entry count.
	for i := 0; i < 16; i++ {
		buf.complete(0, nil)
	}
	buf.reset()
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			buf.complete(1, nil)
		}
		buf.reset()
	}); avg != 0 {
		t.Fatalf("shard buffer fill/reset cycle allocates %.1f per run, want 0", avg)
	}
}
