package fleet

import (
	"reflect"
	"testing"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/model"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// shardRun executes one open-loop session run at the given shard count with
// an obs collector attached, returning the result and the captured stream.
func shardRun(t *testing.T, scripts []workload.SessionScript, cfg Config, shards int, faults []workload.Fault) (*Result, []obs.Event) {
	t.Helper()
	col := &obs.Collector{}
	cfg.Obs = col
	cfg.Shards = shards
	res, err := RunSessionsFaults(scripts, cfg, false, faults)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res, col.Events
}

// requireIdentical asserts two runs are observationally byte-identical:
// records, per-replica stats, lifecycle events, fault/hedge accounting,
// simulator event counts, makespan, and the full obs stream.
func requireIdentical(t *testing.T, label string, a, b *Result, aev, bev []obs.Event) {
	t.Helper()
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatalf("%s: records differ", label)
	}
	if !reflect.DeepEqual(a.Replicas, b.Replicas) {
		t.Fatalf("%s: replica stats differ", label)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("%s: lifecycle events differ", label)
	}
	if a.Faults != b.Faults || a.Hedge != b.Hedge {
		t.Fatalf("%s: fault/hedge accounting differs: %+v/%+v vs %+v/%+v",
			label, a.Faults, a.Hedge, b.Faults, b.Hedge)
	}
	if a.SimEvents != b.SimEvents {
		t.Fatalf("%s: simulator event counts differ: %d vs %d", label, a.SimEvents, b.SimEvents)
	}
	if a.End != b.End {
		t.Fatalf("%s: makespans differ: %v vs %v", label, a.End, b.End)
	}
	if !reflect.DeepEqual(aev, bev) {
		if len(aev) != len(bev) {
			t.Fatalf("%s: obs stream lengths differ: %d vs %d", label, len(aev), len(bev))
		}
		for i := range aev {
			if !reflect.DeepEqual(aev[i], bev[i]) {
				t.Fatalf("%s: obs stream diverges at event %d:\n  %+v\n  %+v", label, i, aev[i], bev[i])
			}
		}
	}
}

// TestShardedMatchesSerial is the tentpole determinism property: for every
// shard count, a sharded run is byte-identical to the serial reference
// (Shards=1 — the same window/barrier algorithm with no parallelism),
// across routing policies, cache modes, the cold tier, and a fault schedule
// with hedging armed. Worker partitioning must be invisible.
func TestShardedMatchesSerial(t *testing.T) {
	scripts := chatScripts(60, 4, 0.3, 17)
	cases := []struct {
		name   string
		mk     func() Config
		faults []workload.Fault
	}{
		{"least-loaded", func() Config {
			return Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 4}}, Policy: NewLeastLoaded()}
		}, nil},
		{"prefix-affinity-radix", func() Config {
			return Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 4}}, Policy: NewPrefixAffinity(), Cache: CacheRadix}
		}, nil},
		{"cold-tier", func() Config {
			return Config{
				Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 4}},
				Policy: NewPrefixAffinity(), Cache: CacheRadix,
				CacheTokens: 40_000, ColdTierTokens: 2_000_000,
			}
		}, nil},
		{"faults-hedged", func() Config {
			return Config{
				Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 4}},
				Policy: NewPrefixAffinity(),
				Hedge:  HedgeConfig{Quantile: 0.9, MinSamples: 10, MinInput: 1},
			}
		}, chaosFaults()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serial, sev := shardRun(t, scripts, c.mk(), 1, c.faults)
			if vs := analyze.Audit(sev); len(vs) != 0 {
				t.Fatalf("serial stream failed audit (%d violations), first: %s", len(vs), vs[0])
			}
			// 7 > replica count exercises the worker clamp.
			for _, n := range []int{2, 4, 7} {
				sharded, shev := shardRun(t, scripts, c.mk(), n, c.faults)
				requireIdentical(t, c.name, serial, sharded, sev, shev)
			}
		})
	}
}

// TestShardedMatchesLegacyRunner: the single-heap runner and the sharded
// runner agree on this workload (no same-instant cross-replica ties, so
// the canonical merge order coincides with heap order). Not a general
// guarantee — the identity contract is between shard counts — but a strong
// cross-implementation check while it holds.
func TestShardedMatchesLegacyRunner(t *testing.T) {
	scripts := chatScripts(40, 3, 0.4, 29)
	mk := func() Config {
		return Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 3}}, Policy: NewPrefixAffinity(), Cache: CacheRadix}
	}
	legacy, lev := shardRun(t, scripts, mk(), 0, nil)
	sharded, shev := shardRun(t, scripts, mk(), 3, nil)
	requireIdentical(t, "legacy-vs-sharded", legacy, sharded, lev, shev)
}

// loongFleetConfig builds a 2-replica fleet of real ESP engines — the
// fusion identity tests need engines that actually fuse.
func loongFleetConfig() Config {
	m := model.LWM1MText()
	hw := cluster.A800()
	kind := NewKind("loong", Spec{
		NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 4, 2)
		},
	})
	return Config{Groups: []ReplicaGroup{{Kind: kind, Count: 2}}, Policy: NewLeastLoaded()}
}

// TestDecodeFusionIdentity: with fusion on, every observable output is
// byte-identical to fusion off — records, stats, obs stream — while the
// simulator fires strictly fewer events. Checked on both runners.
func TestDecodeFusionIdentity(t *testing.T) {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 20
	cfg.SessionRate = 1
	cfg.ThinkMean = 2
	scripts := workload.SessionScripts(cfg, 41)

	for _, shards := range []int{0, 2} {
		run := func(fuse bool) (*Result, []obs.Event) {
			c := loongFleetConfig()
			c.FuseDecode = fuse
			res, ev := shardRun(t, scripts, c, shards, nil)
			return res, ev
		}
		plain, pev := run(false)
		fused, fev := run(true)
		if fused.SimEvents >= plain.SimEvents {
			t.Fatalf("shards=%d: fusion fired %d events, plain %d — no event reduction",
				shards, fused.SimEvents, plain.SimEvents)
		}
		// SimEvents legitimately differ; compare everything else.
		fused.SimEvents = plain.SimEvents
		requireIdentical(t, "fusion", plain, fused, pev, fev)
	}
}

// TestShardedRejectsClosedLoop: the window invariant needs arrival
// lookahead, so closed-loop feeds must be refused, not silently corrupted.
func TestShardedRejectsClosedLoop(t *testing.T) {
	scripts := chatScripts(5, 2, 0.1, 3)
	cfg := Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 2}}, Shards: 2}
	if _, err := RunSessionsGroups(scripts, cfg, true); err == nil {
		t.Fatal("closed-loop sharded run accepted")
	}
}

// TestShardedRejectsProvisioning: sharded fleets are static — mid-run
// scale-up would repartition replicas under the worker pool.
func TestShardedRejectsProvisioning(t *testing.T) {
	sim := simevent.New()
	cfg := Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 2}}, Shards: 2}
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddReplica(time.Second); err == nil {
		t.Fatal("AddReplica accepted on a sharded run")
	}
	if _, err := NewGatewayGroups(Config{Groups: cfg.Groups, Shards: -1}, simevent.New()); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestStreamFeedMatchesEagerFeed: the lazy stream feed replays the same
// workload to the same records and trace as the eager all-at-once feed, on
// both runners — lazy sampling changes memory shape, not behavior.
func TestStreamFeedMatchesEagerFeed(t *testing.T) {
	wcfg := workload.DefaultSessionConfig()
	wcfg.Sessions = 50
	wcfg.SessionRate = 3
	wcfg.ThinkMean = 0.5
	scripts := workload.SessionScripts(wcfg, 13)
	mk := func() Config {
		return Config{Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 3}}, Policy: NewPrefixAffinity(), Cache: CacheRadix}
	}
	eager, err := RunSessionsGroups(scripts, mk(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 3} {
		cfg := mk()
		cfg.Shards = shards
		lazy, err := RunSessionStream(workload.StreamSessions(wcfg, 13), cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(eager.Records, lazy.Records) {
			t.Fatalf("shards=%d: stream feed records differ from eager feed", shards)
		}
		if !reflect.DeepEqual(eager.Trace, lazy.Trace) {
			t.Fatalf("shards=%d: stream feed trace differs from eager feed", shards)
		}
	}
}
