package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"loongserve/internal/obs"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
)

// Sharded single-run execution: conservative time-window synchronization.
//
// The legacy runner advances the gateway and every replica engine on one
// simevent heap, which serializes a 64-replica fleet onto one core. The
// sharded runner gives each replica engine a private heap and exploits the
// fleet's causality structure:
//
//   - Replicas share nothing: an engine event can only read or write its
//     own replica's cluster, pool, cost model and request state.
//   - Every gateway→engine interaction (Arrive, Load) happens inside a
//     gateway event — a route, a hedge launch, a stall release, a fault, a
//     sampler tick — or inside completion replay at the barrier.
//   - With an open-loop feed, every gateway event's timestamp is known
//     before the window opens: arrivals are staged or chained off earlier
//     arrivals, hedge timers arm at delivery, faults are pre-staged, and
//     migration/stall/cold-fetch timers arm at route time. Completion
//     processing schedules no engine-touching events (closed-loop feeds
//     would — their next turn fires think-time after a completion with
//     zero lookahead — which is why sharded runs reject closed loops).
//
// So the next gateway timestamp W is a conservative lower bound on any
// future interaction with any engine: every replica may advance its private
// heap through everything strictly before W, in parallel, with no shared
// state. At the barrier, buffered engine output — completions and obs
// events — replays into the gateway in the canonical merge order
// (time, replica index, per-replica emission order), then the gateway fires
// exactly one event at W with every replica clock synced to W, and the loop
// repeats.
//
// Determinism: the parallel phase touches no shared state and the merge
// order is independent of how replicas are partitioned over workers, so
// every shard count produces byte-identical output to Shards=1 — the same
// argument PR 3's parallel experiment arms made, one level deeper. (The
// legacy runner may order same-instant events across replicas differently —
// by heap sequence instead of replica index — so the identity contract is
// between shard counts of this runner, with Shards=1 as the serial
// reference.)

// timeInf is the advance bound once the gateway has no pending events.
const timeInf = simevent.Time(math.MaxInt64)

// shardEntry is one unit of buffered engine output: an obs event, or a
// request completion (req != nil) to replay through Gateway.complete.
type shardEntry struct {
	at  simevent.Time
	ev  obs.Event
	req *serving.Request
}

// shardBuf collects one replica's engine output during the parallel phase.
// It implements obs.Sink (as the inner sink of the replica's gatedSink, so
// crash gating keeps working unchanged) and receives completions via the
// replica's Env.Complete. Only the replica's worker touches it between
// barriers; only the coordinator touches it at the barrier.
type shardBuf struct {
	entries []shardEntry
}

// Emit implements obs.Sink.
func (b *shardBuf) Emit(e obs.Event) {
	b.entries = append(b.entries, shardEntry{at: e.At, ev: e})
}

func (b *shardBuf) complete(at simevent.Time, r *serving.Request) {
	b.entries = append(b.entries, shardEntry{at: at, req: r})
}

func (b *shardBuf) reset() {
	for i := range b.entries {
		b.entries[i] = shardEntry{}
	}
	b.entries = b.entries[:0]
}

// mergeRef addresses one buffered entry during the barrier merge.
type mergeRef struct {
	at       simevent.Time
	rep, idx int32
}

// shardRunner drives a sharded fleet run.
type shardRunner struct {
	g       *Gateway
	workers int

	advancedTo simevent.Time // replicas have drained strictly below this
	merged     []mergeRef    // barrier merge scratch

	// Worker pool (workers > 1): persistent goroutines, replica i handled
	// by worker i%workers. bound is written by the coordinator before the
	// start signals and read by workers after them (channel happens-before).
	bound  simevent.Time
	start  []chan struct{}
	wg     sync.WaitGroup
	panics []any
}

func newShardRunner(g *Gateway, workers int) *shardRunner {
	if workers > len(g.replicas) {
		workers = len(g.replicas)
	}
	if workers < 1 {
		workers = 1
	}
	return &shardRunner{g: g, workers: workers}
}

// run executes the whole simulation: the sharded replacement for Sim.Run.
func (s *shardRunner) run() {
	if s.workers > 1 && s.start == nil {
		s.start = make([]chan struct{}, s.workers)
		s.panics = make([]any, s.workers)
		for w := range s.start {
			s.start[w] = make(chan struct{}, 1)
			go s.worker(w)
		}
	}
	defer s.stop()
	for {
		bound, ok := s.g.sim.Head()
		if !ok {
			// No gateway work left: drain every replica completely, replay
			// what that produced (which may schedule new gateway events —
			// drain handoff installs do), and finish when nothing surfaced.
			s.advance(timeInf)
			if s.replay() {
				continue
			}
			return
		}
		if bound > s.advancedTo {
			s.advance(bound)
			s.advancedTo = bound
		}
		if s.replay() {
			continue // completions < bound must land before the event at bound
		}
		// Barrier: sync every replica clock to the window bound, then fire
		// exactly one gateway event there. Anything it injects into an
		// engine lands at the engine's present.
		for _, rep := range s.g.replicas {
			rep.env.Sim.AdvanceTo(bound)
		}
		s.g.sim.Step()
	}
}

// advance runs every replica's private heap through all events strictly
// before bound — the parallel phase.
func (s *shardRunner) advance(bound simevent.Time) {
	work := false
	for _, rep := range s.g.replicas {
		if h, ok := rep.env.Sim.Head(); ok && h < bound {
			work = true
			break
		}
	}
	if !work {
		return
	}
	if s.workers <= 1 {
		for _, rep := range s.g.replicas {
			rep.env.Sim.RunBefore(bound)
		}
		return
	}
	s.bound = bound
	s.wg.Add(s.workers)
	for _, ch := range s.start {
		ch <- struct{}{}
	}
	s.wg.Wait()
	for w, p := range s.panics {
		if p != nil {
			s.panics[w] = nil
			panic(p)
		}
	}
}

// worker advances its replica partition each time the coordinator signals.
func (s *shardRunner) worker(w int) {
	for range s.start[w] {
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.panics[w] = p
				}
				s.wg.Done()
			}()
			reps := s.g.replicas
			for i := w; i < len(reps); i += s.workers {
				reps[i].env.Sim.RunBefore(s.bound)
			}
		}()
	}
}

// stop shuts the worker pool down.
func (s *shardRunner) stop() {
	for _, ch := range s.start {
		close(ch)
	}
	s.start = nil
}

// replay drains every replica's buffer into the gateway in the canonical
// (time, replica index, emission order) merge order: obs events re-emit to
// the run's sink, completions process through Gateway.complete with the
// gateway clock advanced to the completion instant. Reports whether
// anything replayed (completion processing can schedule new gateway events,
// so the caller must recompute its window).
func (s *shardRunner) replay() bool {
	merged := s.merged[:0]
	for ri, rep := range s.g.replicas {
		if rep.buf == nil {
			continue
		}
		for ei := range rep.buf.entries {
			merged = append(merged, mergeRef{at: rep.buf.entries[ei].at, rep: int32(ri), idx: int32(ei)})
		}
	}
	s.merged = merged
	if len(merged) == 0 {
		return false
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].at != merged[b].at {
			return merged[a].at < merged[b].at
		}
		if merged[a].rep != merged[b].rep {
			return merged[a].rep < merged[b].rep
		}
		return merged[a].idx < merged[b].idx
	})
	for _, m := range merged {
		rep := s.g.replicas[m.rep]
		en := &rep.buf.entries[m.idx]
		if en.req != nil {
			s.g.sim.AdvanceTo(en.at)
			s.g.complete(rep, en.req)
		} else {
			s.g.obsSink.Emit(en.ev)
		}
	}
	for _, rep := range s.g.replicas {
		if rep.buf != nil {
			rep.buf.reset()
		}
	}
	return true
}

// runLoop runs the gateway's simulation to completion on whichever runner
// the configuration selected.
func (g *Gateway) runLoop() {
	if g.shard != nil {
		g.shard.run()
		return
	}
	g.sim.Run()
}

// pendingWork counts pending events across the gateway heap and — in
// sharded mode — every replica's private heap: the sampler's "is the run
// still alive" signal, equal to Sim.Pending on the legacy single-heap
// runner by construction.
func (g *Gateway) pendingWork() int {
	n := g.sim.Pending()
	if g.shard != nil {
		for _, rep := range g.replicas {
			n += rep.env.Sim.Pending()
		}
	}
	return n
}

func validateSharded(cfg Config) error {
	if cfg.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d", cfg.Shards)
	}
	return nil
}
