package fleet

import (
	"fmt"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// HedgeConfig tunes request hedging (Config.Hedge). Hedging duplicates a
// straggling request — one whose time-to-first-token has already exceeded a
// high quantile of the observed per-token prefill latency, scaled by its
// own input length — to a second replica. The first copy to finish wins;
// the loser cannot be cancelled (engines have no cancel API) and its work
// is charged to the run as HedgeStats.WastedTokens, so the latency win is
// always priced against the throughput it burned.
type HedgeConfig struct {
	// Quantile of the observed per-prefilled-token TTFT distribution that
	// arms the hedge timer: a request unfinished after
	//   Quantile(q) × its effective input length
	// seconds is considered straggling. 0 disables hedging; typical
	// values are 0.95–0.99.
	Quantile float64
	// MinSamples is how many unhedged completions must be observed before
	// the first hedge can launch (the quantile is noise until then).
	// Defaults to 20 when hedging is on.
	MinSamples int
	// MinInput is the smallest full prompt length worth hedging: short
	// prefills finish before a duplicate could help. Defaults to 64.
	MinInput int
}

func (h HedgeConfig) validate() error {
	if h.Quantile < 0 || h.Quantile >= 1 {
		return fmt.Errorf("fleet: hedge quantile %v outside [0, 1)", h.Quantile)
	}
	if h.MinSamples < 0 || h.MinInput < 0 {
		return fmt.Errorf("fleet: negative hedge thresholds")
	}
	return nil
}

func (h HedgeConfig) withDefaults() HedgeConfig {
	if h.Quantile <= 0 {
		return h
	}
	if h.MinSamples == 0 {
		h.MinSamples = 20
	}
	if h.MinInput == 0 {
		h.MinInput = 64
	}
	return h
}

// HedgeStats accounts a run's hedging honestly: every launch resolves as
// exactly one win or loss, and WastedTokens is the losing copies' work —
// prefilled plus decoded tokens the fleet computed for nothing.
type HedgeStats struct {
	Launched int
	Wins     int // hedge copy finished first (or primary crashed)
	Losses   int // primary finished first, or the hedge's replica crashed
	// WastedTokens is the losing copies' effective prefill + output tokens.
	// A copy cancelled before its engine ever received it (stall-deferred)
	// burned nothing and contributes zero.
	WastedTokens int64
}

// hedgeIDBit tags the synthetic request IDs of hedge copies, far above any
// driver-assigned ID (drivers number from 1). The copy's identity is
// primary-ID | hedgeIDBit, so the pair is self-describing and observability
// can strip the bit to attribute both copies to one request.
const hedgeIDBit kvcache.RequestID = 1 << 40

// noteTTFT feeds the per-token TTFT distribution the hedge delay is drawn
// from. Only clean primary completions count: hedged or recovered requests
// would fold the pathology being defended against into the baseline.
func (g *Gateway) noteTTFT(fl *inflight, r *serving.Request) {
	if g.cfg.Hedge.Quantile <= 0 || fl.effInput <= 0 || fl.hedgeOf != 0 || fl.hedgeID != 0 || fl.recovered {
		return
	}
	ttft := time.Duration(r.FirstToken - r.Arrival).Seconds()
	if ttft <= 0 {
		return
	}
	g.hedgeDist.Add(ttft / float64(fl.effInput))
}

// hedgeDelay returns the straggler threshold for a request prefilling
// effInput tokens, or 0 when hedging cannot arm yet (distribution still
// cold). The quantile is memoized per distribution size — completions are
// far more frequent than quantile changes worth reacting to.
func (g *Gateway) hedgeDelay(effInput int) time.Duration {
	h := g.cfg.Hedge
	if g.hedgeDist.N() < h.MinSamples {
		return 0
	}
	if g.hedgeDist.N() != g.hedgeQAtN {
		g.hedgeQ = g.hedgeDist.Quantile(h.Quantile)
		g.hedgeQAtN = g.hedgeDist.N()
	}
	if g.hedgeQ <= 0 {
		return 0
	}
	return time.Duration(g.hedgeQ * float64(effInput) * float64(time.Second))
}

// armHedge schedules the straggler check for a just-delivered primary.
func (g *Gateway) armHedge(id kvcache.RequestID, fl *inflight) {
	h := g.cfg.Hedge
	if h.Quantile <= 0 || fl.hedgeOf != 0 || fl.fullInput < h.MinInput {
		return
	}
	delay := g.hedgeDelay(fl.effInput)
	if delay <= 0 {
		return
	}
	gen := fl.gen
	g.sim.After(delay, func() { g.maybeHedge(id, fl, gen) })
}

// maybeHedge fires when the hedge timer lands: if the primary is still
// unfinished (and not already hedged — recovery re-submission re-arms its
// own timer), duplicate it to the best other active replica.
func (g *Gateway) maybeHedge(id kvcache.RequestID, fl *inflight, gen uint64) {
	if g.pending[id] != fl || fl.gen != gen || fl.hedgeID != 0 {
		return
	}
	if fl.rep.state == ReplicaFailed {
		return // crash recovery owns this request now
	}
	dst := g.migrationTarget(fl.rep)
	if dst == nil {
		return // nowhere to hedge to
	}
	hid := id | hedgeIDBit
	if g.pending[hid] != nil || g.ghosts[hid] != nil {
		return // a previous life of this ID still has a copy in flight
	}
	fl.hedgeID = hid
	hr := &serving.Request{
		ID:        hid,
		InputLen:  fl.fullInput,
		OutputLen: fl.output,
		Arrival:   fl.arrival,
		SLOBudget: fl.slo,
	}
	info := RequestInfo{
		ID:         hid,
		InputLen:   fl.fullInput,
		SessionKey: SessionKey(fl.entry.SessionID),
		SharedKey:  GroupKey(fl.entry.PromptGroup),
		PrefixLen:  fl.entry.PrefixLen,
		SharedLen:  fl.entry.SharedLen,
		Blocks:     fl.entry.InputBlocks(),
	}
	g.res.Hedge.Launched++
	elapsed := time.Duration(g.sim.Now() - fl.arrival)
	g.emitHedgeLaunch(fl.entry.SessionID, id, dst.index, fl.rep.index, fl.fullInput, elapsed)
	g.deliverHedge(dst, hr, fl.entry, info, id, fl.rep.index)
}

// deliverHedge is deliver for a hedge copy: same cache lookup and load
// accounting, plus the linkage back to the primary. Split out so deliver's
// fast path never tests hedge-only conditions.
func (g *Gateway) deliverHedge(rep *replica, r *serving.Request, e workload.Entry, info RequestInfo, primary kvcache.RequestID, primaryRep int) {
	hit := rep.lookup(info)
	full := r.InputLen
	if hit >= full {
		hit = full - 1
	}
	r.InputLen = full - hit
	// The lookup is reported under the primary's identity: the synthetic
	// copy ID never appears in the stream.
	g.emitCache(e.SessionID, primary, rep.index, hit, full)

	fl := g.newInflight()
	*fl = inflight{
		rep: rep, entry: e, fullInput: full, effInput: r.InputLen, hit: hit,
		arrival: r.Arrival, output: r.OutputLen, slo: r.SLOBudget,
		gen: fl.gen, hedgeOf: primary, peerRep: primaryRep,
	}
	g.pending[r.ID] = fl
	rep.outTokens += fl.effInput + r.OutputLen
	rep.outReqs++
	g.arriveOrStall(rep, r, fl)
}

// settleGhost closes the books on a cancelled copy whose engine completion
// finally landed: load accounting settles, nothing else happens. Returns
// true when r was a ghost.
func (g *Gateway) settleGhost(rep *replica, r *serving.Request) bool {
	fl := g.ghosts[r.ID]
	if fl == nil {
		return false
	}
	if fl.rep != rep {
		panic(fmt.Sprintf("fleet: replica %d completed ghost %d owned by replica %d", rep.index, r.ID, fl.rep.index))
	}
	delete(g.ghosts, r.ID)
	rep.outTokens -= fl.effInput + r.OutputLen
	rep.outReqs--
	g.freeInflight(fl)
	g.maybeRetire(rep)
	return true
}

// resolveHedge untangles the hedge pair when either copy finishes first.
// Called from complete before any accounting; it returns the ID the finish
// should be reported as (the primary's, always) — and for a losing copy the
// caller has already been diverted through settleGhost, so by the time we
// are here r is the *winner* of its pair (or was never hedged).
func (g *Gateway) resolveHedge(rep *replica, r *serving.Request, fl *inflight) kvcache.RequestID {
	if fl.hedgeOf != 0 {
		// A hedge copy won (or its primary crashed and this copy was
		// promoted). Cancel the primary if it is still in flight.
		if ofl := g.pending[fl.hedgeOf]; ofl != nil {
			g.res.Hedge.WastedTokens += int64(g.cancelCopy(fl.hedgeOf, ofl))
		}
		g.res.Hedge.Wins++
		g.emitHedgeWin(fl.entry.SessionID, fl.hedgeOf, rep.index, fl.peerRep)
		return fl.hedgeOf
	}
	if fl.hedgeID != 0 {
		// The primary won; the hedge copy is cancelled.
		if hfl := g.pending[fl.hedgeID]; hfl != nil {
			loserRep := hfl.rep.index
			burned := g.cancelCopy(fl.hedgeID, hfl)
			g.res.Hedge.Losses++
			g.res.Hedge.WastedTokens += int64(burned)
			g.emitHedgeLose(fl.entry.SessionID, r.ID, loserRep, burned, rep.index)
		}
		fl.hedgeID = 0
	}
	return r.ID
}

// cancelCopy removes a losing copy from pending and returns the tokens it
// burned. A copy its engine already received becomes a ghost — engines
// cannot cancel, so its load settles when the engine completion lands. A
// copy still deferred behind a stall settles inline: its engine will never
// see it, so it burned nothing and no completion is coming.
func (g *Gateway) cancelCopy(id kvcache.RequestID, fl *inflight) int {
	delete(g.pending, id)
	if fl.delivered {
		g.ghosts[id] = fl
		return fl.effInput + fl.output
	}
	fl.rep.outTokens -= fl.effInput + fl.output
	fl.rep.outReqs--
	rep := fl.rep
	g.freeInflight(fl)
	g.maybeRetire(rep)
	return 0
}

// arriveOrStall hands a request to its replica's engine, deferring the
// arrival while a stall fault holds the replica. The deferral re-checks
// liveness on fire: a crash during the stall means recovery has already
// re-routed the work.
func (g *Gateway) arriveOrStall(rep *replica, r *serving.Request, fl *inflight) {
	if rep.stalledUntil <= g.sim.Now() {
		fl.delivered = true
		rep.engine.Arrive(r)
		return
	}
	remaining := time.Duration(rep.stalledUntil - g.sim.Now())
	id, gen := r.ID, fl.gen
	g.sim.After(remaining, func() {
		if g.pending[id] != fl || fl.gen != gen || rep.state == ReplicaFailed {
			return
		}
		if rep.stalledUntil > g.sim.Now() {
			// The stall was extended meanwhile; defer again.
			g.arriveOrStall(rep, r, fl)
			return
		}
		fl.delivered = true
		rep.engine.Arrive(r)
	})
}

// newInflight returns a recycled or fresh inflight record with its
// generation advanced past every closure that captured a previous life.
func (g *Gateway) newInflight() *inflight {
	var fl *inflight
	if k := len(g.flFree); k > 0 {
		fl = g.flFree[k-1]
		g.flFree[k-1] = nil
		g.flFree = g.flFree[:k-1]
	} else {
		fl = &inflight{}
	}
	fl.gen++
	return fl
}

// freeInflight recycles a record, invalidating outstanding timer guards.
func (g *Gateway) freeInflight(fl *inflight) {
	fl.gen++
	g.flFree = append(g.flFree, fl)
}
