package fleet

import (
	"fmt"
	"sort"
)

// RadixCache models one replica's prefix-KV store at token-block
// granularity. It is the *residency* layer over a RadixIndex: the index
// names block chains (hash-consed trie, see radixindex.go), while this
// cache records which of those blocks have a copy in this replica's HBM
// and carries the per-copy GDSF/TinyLFU state — priority, frequency,
// local child counts — that drives eviction and admission.
//
// Where the whole-key PrefixCache shares KV only between requests carrying
// the same session or prompt-group key, the radix cache shares any common
// token prefix: two sessions with the same system prompt share its blocks,
// a branched conversation shares the trunk's blocks, and a session's own
// turns extend one path block by block.
//
// Eviction drops leaf blocks only (an interior block's KV is useless
// without its prefix — equivalently, a resident block's whole prefix is
// always resident) and is priced by the cost model rather than raw token
// counts: each block's eviction priority is
//
//	priority = clock + frequency * recomputeSeconds(depth) / BlockTokens
//
// — the GDSF (Greedy-Dual-Size-Frequency) rule with the cost model's
// marginal prefill time as the cost term. Deep blocks are expensive to
// recompute (attention grows with context), so at equal frequency the
// cache sheds shallow one-off tails before the deep tails of long hot
// sessions; the rising clock ages stale entries out regardless. Admission
// reuses the TinyLFU frequency sketch at block granularity: when inserting
// a block requires eviction, the block must be at least as popular as the
// victim it displaces.
//
// Like PrefixCache, this is an accounting model, not a byte store, and it
// is fully deterministic: no clocks, no randomness, priority ties broken
// by block hash.
type RadixCache struct {
	capacity    int
	used        int
	blockTokens int
	admission   bool

	index  *RadixIndex           // naming layer; private unless shared by a directory
	blocks map[uint64]*radixNode // residency: hash -> this replica's copy
	pool   nodePool
	leaves leafHeap
	sketch *freqSketch
	clock  float64

	// observer hears residency transitions (the gateway's cache-directory
	// shim). nil for standalone caches — every hook site is a single nil
	// check, so with the directory off the cache behaves exactly as the
	// pre-split implementation.
	observer residencyObserver

	// blockCost returns the seconds needed to recompute `tokens` prefill
	// tokens starting at context offset `start` — the cost model's marginal
	// prefill time. nil prices every block equally (pure frequency+age).
	blockCost func(start, tokens int) float64
	costMemo  map[int]float64 // depth -> seconds

	// Instrumentation, mirroring PrefixCache.
	Hits      int // lookups that matched at least one block
	Misses    int // lookups that matched nothing
	Evicted   int // blocks dropped by capacity pressure
	Rejected  int // block insertions refused by the admission policy
	HitTokens int64
}

// radixNode is this cache's copy of one KV block: residency state only.
// Identity and trie position live on the shared blockRef; parent is the
// local copy of the parent block (always resident — the prefix
// invariant), and kids counts resident children in this cache.
type radixNode struct {
	ref     *blockRef
	parent  *radixNode // nil for depth-0 blocks
	kids    int        // resident children; 0 = leaf, eligible for eviction
	prio    float64    // GDSF priority, refreshed on access
	heapIdx int        // position in the leaf heap; -1 when interior
}

// nodePool recycles radixNodes through an intrusive free list (linked by
// the parent field), so block churn — the eviction/recompute cycle of a
// long run — stops allocating once the working set has been touched.
type nodePool struct{ free *radixNode }

func (p *nodePool) get() *radixNode {
	n := p.free
	if n != nil {
		p.free = n.parent
		n.parent = nil
	} else {
		n = &radixNode{}
	}
	return n
}

func (p *nodePool) put(n *radixNode) {
	n.ref = nil
	n.kids = 0
	n.prio = 0
	n.heapIdx = -1
	n.parent = p.free
	p.free = n
}

// residencyObserver hears block-level residency transitions of one
// cache. Implemented by the gateway's cache-directory shim; the hooks
// fire in the cache's own deterministic operation order. blockDropped's
// evicted flag separates capacity evictions (cold-spill candidates: the
// KV still existed and could be copied out) from removals and wipes
// (the KV left with a migration or died with the replica).
type residencyObserver interface {
	blockAdded(ref *blockRef)
	blockDropped(ref *blockRef, evicted bool)
	cacheCleared(usedTokens, blocks int)
}

// NewRadixCache builds a radix cache holding up to capTokens KV tokens in
// blockTokens-sized blocks, naming its blocks in a private index.
// admission enables TinyLFU admission; blockCost (optional) prices
// eviction in recompute-seconds via the cost model.
func NewRadixCache(capTokens, blockTokens int, admission bool, blockCost func(start, tokens int) float64) *RadixCache {
	return NewRadixCacheIndexed(NewRadixIndex(), capTokens, blockTokens, admission, blockCost)
}

// NewRadixCacheIndexed is NewRadixCache with an explicit (possibly
// shared) naming index — the constructor the gateway uses when a global
// cache directory needs one trie describing every replica's copies.
func NewRadixCacheIndexed(ix *RadixIndex, capTokens, blockTokens int, admission bool, blockCost func(start, tokens int) float64) *RadixCache {
	if capTokens <= 0 {
		panic(fmt.Sprintf("fleet: non-positive cache capacity %d", capTokens))
	}
	if blockTokens <= 0 {
		panic(fmt.Sprintf("fleet: non-positive block size %d", blockTokens))
	}
	if ix == nil {
		panic("fleet: nil radix index")
	}
	return &RadixCache{
		capacity:    capTokens,
		blockTokens: blockTokens,
		admission:   admission,
		index:       ix,
		blocks:      make(map[uint64]*radixNode),
		sketch:      newFreqSketch(4096),
		blockCost:   blockCost,
		costMemo:    make(map[int]float64),
	}
}

// Capacity returns the token capacity.
func (c *RadixCache) Capacity() int { return c.capacity }

// Used returns the resident token count.
func (c *RadixCache) Used() int { return c.used }

// Len returns the resident block count.
func (c *RadixCache) Len() int { return len(c.blocks) }

// BlockTokens returns the block granularity.
func (c *RadixCache) BlockTokens() int { return c.blockTokens }

// Index returns the naming index this cache records residency against.
func (c *RadixCache) Index() *RadixIndex { return c.index }

// setObserver attaches the residency observer (nil detaches).
func (c *RadixCache) setObserver(o residencyObserver) { c.observer = o }

// ResidentBlocks returns the hashes of every resident block in ascending
// hash order — the ground-truth enumeration directory coherence tests
// compare against.
func (c *RadixCache) ResidentBlocks() []uint64 {
	out := make([]uint64, 0, len(c.blocks))
	for h := range c.blocks {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchLen returns how many leading blocks of chain are resident. A map
// hit implies the whole prefix is resident: hashes are chained, and blocks
// are only ever inserted under a resident parent and evicted leaf-first.
func (c *RadixCache) matchLen(chain []uint64) int {
	n := 0
	for n < len(chain) {
		if _, ok := c.blocks[chain[n]]; !ok {
			break
		}
		n++
	}
	return n
}

// MatchTokens returns the longest resident prefix of chain, in tokens,
// without touching recency, frequency or hit statistics — the
// side-effect-free probe routing policies use.
func (c *RadixCache) MatchTokens(chain []uint64) int {
	return c.matchLen(chain) * c.blockTokens
}

// Lookup returns the longest resident prefix of chain in tokens and
// records the access: every queried block's frequency is counted (misses
// inform future admission), matched blocks are re-prioritized, and hit
// statistics update.
func (c *RadixCache) Lookup(chain []uint64) int {
	if len(chain) == 0 {
		return 0
	}
	for _, h := range chain {
		c.sketch.touch(PrefixKey(h))
	}
	n := c.matchLen(chain)
	for _, h := range chain[:n] {
		c.refresh(c.blocks[h])
	}
	if n == 0 {
		c.Misses++
		return 0
	}
	c.Hits++
	tokens := n * c.blockTokens
	c.HitTokens += int64(tokens)
	return tokens
}

// depthCost returns the recompute-seconds of the block at the given depth,
// memoized (1 when no cost model is attached: pure frequency+age GDSF).
func (c *RadixCache) depthCost(depth int) float64 {
	if c.blockCost == nil {
		return 1
	}
	if v, ok := c.costMemo[depth]; ok {
		return v
	}
	v := c.blockCost(depth*c.blockTokens, c.blockTokens)
	c.costMemo[depth] = v
	return v
}

// RecomputeSeconds prices recomputing `blocks` blocks starting at block
// offset `fromBlock` on this replica — the recompute side of the cold
// tier's fetch-over-link vs recompute decision.
func (c *RadixCache) RecomputeSeconds(fromBlock, blocks int) float64 {
	s := 0.0
	for i := 0; i < blocks; i++ {
		s += c.depthCost(fromBlock + i)
	}
	return s
}

// refresh recomputes a node's GDSF priority from the current clock and
// sketch frequency, restoring heap order if the node is a leaf.
func (c *RadixCache) refresh(n *radixNode) {
	n.prio = c.clock + float64(c.sketch.estimate(PrefixKey(n.ref.hash)))*c.depthCost(n.ref.depth)/float64(c.blockTokens)
	if n.heapIdx >= 0 {
		c.leaves.fix(n)
	}
}

// victim returns the lowest-priority evictable leaf, skipping `pin` (the
// insertion path's current tip, which must not evict itself). nil when
// nothing is evictable.
func (c *RadixCache) victim(pin *radixNode) *radixNode {
	if len(c.leaves) == 0 {
		return nil
	}
	v := c.leaves[0]
	if v != pin {
		return v
	}
	// The pinned tip is the heap minimum: peek under it.
	c.leaves.remove(v)
	var next *radixNode
	if len(c.leaves) > 0 {
		next = c.leaves[0]
	}
	c.leaves.push(v)
	return next
}

// evict drops a leaf block, promoting its parent to leaf when this was the
// parent's last child. The GDSF clock advances to the victim's priority,
// so future insertions and refreshes outrank blocks that have not been
// touched since — this is what ages stale blocks out.
func (c *RadixCache) evict(v *radixNode) {
	if v.prio > c.clock {
		c.clock = v.prio
	}
	c.leaves.remove(v)
	delete(c.blocks, v.ref.hash)
	c.used -= c.blockTokens
	c.Evicted++
	if p := v.parent; p != nil {
		p.kids--
		if p.kids == 0 {
			c.leaves.push(p)
		}
	}
	if c.observer != nil {
		c.observer.blockDropped(v.ref, true)
	}
	c.index.release(v.ref)
	c.pool.put(v)
}

// insert adds one block under parent (nil for depth 0), assuming capacity
// has been made available.
func (c *RadixCache) insert(hash uint64, parent *radixNode, depth int) *radixNode {
	var pref *blockRef
	if parent != nil {
		pref = parent.ref
	}
	n := c.pool.get()
	n.ref = c.index.acquire(hash, pref, depth)
	n.parent = parent
	n.heapIdx = -1
	c.blocks[hash] = n
	c.used += c.blockTokens
	if parent != nil {
		if parent.kids == 0 {
			c.leaves.remove(parent)
		}
		parent.kids++
	}
	c.refresh(n) // sets prio
	c.leaves.push(n)
	if c.observer != nil {
		c.observer.blockAdded(n.ref)
	}
	return n
}

// extend walks chain, refreshing the resident prefix and inserting the
// missing suffix block by block. admit applies the TinyLFU filter to each
// block whose insertion requires eviction; Install passes admit=false
// (migrated KV physically arrived — residency is a fact, not a bet).
// maxBlocks bounds how much of the chain is inserted (-1 = all). Insertion
// stops early when a block is rejected or nothing evictable remains:
// deeper blocks are useless without their prefix.
func (c *RadixCache) extend(chain []uint64, admit bool, maxBlocks int) {
	if maxBlocks < 0 || maxBlocks > len(chain) {
		maxBlocks = len(chain)
	}
	n := c.matchLen(chain)
	var tip *radixNode
	if n > 0 {
		tip = c.blocks[chain[n-1]]
		for _, h := range chain[:n] {
			c.refresh(c.blocks[h])
		}
	}
	for i := n; i < maxBlocks; i++ {
		for c.used+c.blockTokens > c.capacity {
			v := c.victim(tip)
			if v == nil {
				return // the path itself fills the cache
			}
			if admit && c.admission && c.sketch.estimate(PrefixKey(chain[i])) < c.sketch.estimate(PrefixKey(v.ref.hash)) {
				c.Rejected++
				return
			}
			c.evict(v)
		}
		tip = c.insert(chain[i], tip, i)
	}
}

// Put inserts (or extends to) the chain after a completion produced its
// KV, subject to the admission filter under capacity pressure.
func (c *RadixCache) Put(chain []uint64) {
	c.extend(chain, true, -1)
}

// Install inserts up to limitTokens of the chain, bypassing admission: the
// KV arrived over the interconnect (a migration landing or a cold-tier
// fetch). Capacity is still enforced against resident victims.
func (c *RadixCache) Install(chain []uint64, limitTokens int) {
	c.extend(chain, false, limitTokens/c.blockTokens)
}

// RemoveExclusive deletes the deepest blocks of chain's resident prefix
// that no other path shares — the session-private tail a migration
// physically moves — and returns the tokens freed. Shared interior blocks
// (system prompts, branch trunks) stay: they are replicated, not owned.
// Like PrefixCache.Remove, this models KV leaving the replica, so the
// Evicted counter is untouched.
func (c *RadixCache) RemoveExclusive(chain []uint64) int {
	n := c.matchLen(chain)
	freed := 0
	for i := n - 1; i >= 0; i-- {
		v := c.blocks[chain[i]]
		if v.kids > 0 {
			break
		}
		c.leaves.remove(v)
		delete(c.blocks, v.ref.hash)
		c.used -= c.blockTokens
		freed += c.blockTokens
		if p := v.parent; p != nil {
			p.kids--
			if p.kids == 0 {
				c.leaves.push(p)
			}
		}
		if c.observer != nil {
			c.observer.blockDropped(v.ref, false)
		}
		c.index.release(v.ref)
		c.pool.put(v)
	}
	return freed
}

// Clear drops every resident block (a draining replica's KV dies with it).
// The observer hears one bulk cacheCleared instead of per-block drops:
// map iteration order is not deterministic, and a wipe is one fact, not
// len(blocks) facts.
func (c *RadixCache) Clear() {
	if c.observer != nil && len(c.blocks) > 0 {
		c.observer.cacheCleared(c.used, len(c.blocks))
	}
	for _, n := range c.blocks {
		c.index.release(n.ref)
		c.pool.put(n)
	}
	c.blocks = make(map[uint64]*radixNode)
	c.leaves = c.leaves[:0]
	c.used = 0
}

// leafHeap is a hand-rolled indexed binary min-heap over leaf blocks,
// ordered by (priority, hash) — the hash tie-break keeps eviction order
// deterministic. The cold tier reuses it as a flat GDSF heap over its
// own copies.
type leafHeap []*radixNode

func leafLess(a, b *radixNode) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.ref.hash < b.ref.hash
}

func (h *leafHeap) push(n *radixNode) {
	*h = append(*h, n)
	n.heapIdx = len(*h) - 1
	h.up(n.heapIdx)
}

func (h *leafHeap) remove(n *radixNode) {
	i := n.heapIdx
	if i < 0 {
		return
	}
	s := *h
	last := len(s) - 1
	if i != last {
		s[i] = s[last]
		s[i].heapIdx = i
	}
	*h = s[:last]
	n.heapIdx = -1
	if i < last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

// fix restores heap order after n's priority changed in place.
func (h *leafHeap) fix(n *radixNode) {
	if !h.up(n.heapIdx) {
		h.down(n.heapIdx)
	}
}

func (h *leafHeap) up(i int) bool {
	s := *h
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !leafLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		s[i].heapIdx, s[p].heapIdx = i, p
		i = p
		moved = true
	}
	return moved
}

func (h *leafHeap) down(i int) {
	s := *h
	for {
		l := 2*i + 1
		if l >= len(s) {
			return
		}
		m := l
		if r := l + 1; r < len(s) && leafLess(s[r], s[l]) {
			m = r
		}
		if !leafLess(s[m], s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		s[i].heapIdx, s[m].heapIdx = i, m
		i = m
	}
}
