package fleet

// coldTier is the fleet-shared host-memory KV pool: a flat residency
// layer over the gateway's shared RadixIndex holding copies of blocks the
// replicas evicted for capacity. Where a replica's RadixCache must keep
// whole prefixes resident (its KV feeds attention directly), the cold
// tier is a staging store — any block can be held alone, and a fetch
// splices a contiguous cold run onto whatever prefix the destination
// already has. Blocks enter only through capacity evictions (spill is a
// copy-out of KV that physically existed; migration departures and
// crash/drain wipes have nothing left to copy), leave only through its
// own GDSF eviction, and are copied — never moved — to replicas on fetch.
//
// Eviction reuses the replica cache's machinery verbatim: the leafHeap
// over (GDSF priority, hash), the TinyLFU sketch for admission under
// pressure, and the cost model's recompute-seconds as the GDSF cost term
// (priced at the reference replica kind — host memory is fleet-shared, so
// there is no single "local" kind). Determinism matches RadixCache: no
// clocks, no randomness, hash tie-breaks.
type coldTier struct {
	g           *Gateway
	capacity    int
	used        int
	blockTokens int
	index       *RadixIndex
	blocks      map[uint64]*radixNode
	pool        nodePool
	heap        leafHeap
	sketch      *freqSketch
	clock       float64
	blockCost   func(start, tokens int) float64
	costMemo    map[int]float64

	stats ColdStats
}

// ColdStats summarizes cold-tier activity for a run.
type ColdStats struct {
	Spilled       int   // blocks copied in from capacity evictions
	Rejected      int   // spills refused by the admission filter
	Evicted       int   // blocks dropped by cold-tier capacity pressure
	Fetches       int   // cold-fetch operations (one per request served)
	FetchedTokens int64 // tokens copied to replicas by fetches
}

// newColdTier builds the pool over the gateway's shared index. capTokens
// is the host-memory budget in KV tokens; blockCost prices eviction at
// the reference replica kind.
func newColdTier(g *Gateway, ix *RadixIndex, capTokens, blockTokens int, blockCost func(start, tokens int) float64) *coldTier {
	return &coldTier{
		g:           g,
		capacity:    capTokens,
		blockTokens: blockTokens,
		index:       ix,
		blocks:      make(map[uint64]*radixNode),
		sketch:      newFreqSketch(4096),
		blockCost:   blockCost,
		costMemo:    make(map[int]float64),
	}
}

// Used returns the resident cold tokens.
func (ct *coldTier) Used() int { return ct.used }

// ResidentBlocks returns every cold block hash, ascending — ground truth
// for the directory-coherence property test at location DirCold.
func (ct *coldTier) ResidentBlocks() []uint64 {
	out := make([]uint64, 0, len(ct.blocks))
	for h := range ct.blocks {
		out = append(out, h)
	}
	for i := 1; i < len(out); i++ { // insertion sort; spill sets are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (ct *coldTier) depthCost(depth int) float64 {
	if ct.blockCost == nil {
		return 1
	}
	if v, ok := ct.costMemo[depth]; ok {
		return v
	}
	v := ct.blockCost(depth*ct.blockTokens, ct.blockTokens)
	ct.costMemo[depth] = v
	return v
}

func (ct *coldTier) refresh(n *radixNode) {
	n.prio = ct.clock + float64(ct.sketch.estimate(PrefixKey(n.ref.hash)))*ct.depthCost(n.ref.depth)/float64(ct.blockTokens)
	if n.heapIdx >= 0 {
		ct.heap.fix(n)
	}
}

// spill copies one capacity-evicted block into the pool. Called from the
// directory shim *before* the evicting cache releases its index ref, so
// the acquire below extends the block's name rather than re-creating it.
// Duplicate spills (another replica already spilled this block) just
// re-prioritize the existing copy.
func (ct *coldTier) spill(srcRep int, ref *blockRef) {
	ct.sketch.touch(PrefixKey(ref.hash))
	if n, ok := ct.blocks[ref.hash]; ok {
		ct.refresh(n)
		return
	}
	for ct.used+ct.blockTokens > ct.capacity {
		v := ct.heap[0]
		if ct.sketch.estimate(PrefixKey(ref.hash)) < ct.sketch.estimate(PrefixKey(v.ref.hash)) {
			ct.stats.Rejected++
			return
		}
		ct.evict(v)
	}
	n := ct.pool.get()
	n.ref = ct.index.acquire(ref.hash, ref.parent, ref.depth)
	n.heapIdx = -1
	ct.blocks[ref.hash] = n
	ct.used += ct.blockTokens
	ct.refresh(n)
	ct.heap.push(n)
	ct.stats.Spilled++
	ct.g.dir.Set(ref.hash, DirCold, ct.blockTokens)
	ct.g.emitColdSpill(srcRep, ct.blockTokens, ct.used, len(ct.blocks))
}

// evict drops the given cold copy, advancing the GDSF clock like the
// replica caches do, and retracts it from the directory.
func (ct *coldTier) evict(v *radixNode) {
	if v.prio > ct.clock {
		ct.clock = v.prio
	}
	ct.heap.remove(v)
	delete(ct.blocks, v.ref.hash)
	ct.used -= ct.blockTokens
	ct.stats.Evicted++
	hash := v.ref.hash
	ct.index.release(v.ref)
	ct.pool.put(v)
	ct.g.dir.Set(hash, DirCold, 0)
	ct.g.emitDirUpdate(DirCold, -ct.blockTokens, ct.g.dir.LocTokens(DirCold), "cold-evict")
}

// run returns how many consecutive blocks of chain starting at block
// index `from` are cold-resident — the contiguous run a fetch could
// splice onto a replica's resident prefix of length `from`.
func (ct *coldTier) run(chain []uint64, from int) int {
	k := 0
	for from+k < len(chain) {
		if _, ok := ct.blocks[chain[from+k]]; !ok {
			break
		}
		k++
	}
	return k
}

// touchRun records a fetch of chain[from:from+k]: the copies stay cold
// (a fetch is a copy), but their frequency and priority rise so the hot
// shared prefixes the fleet keeps re-fetching outlive one-off tails.
func (ct *coldTier) touchRun(chain []uint64, from, k int) {
	for i := from; i < from+k; i++ {
		ct.sketch.touch(PrefixKey(chain[i]))
		if n, ok := ct.blocks[chain[i]]; ok {
			ct.refresh(n)
		}
	}
	ct.stats.Fetches++
	ct.stats.FetchedTokens += int64(k * ct.blockTokens)
}

// coldSpill is the gateway-side entry the directory shim calls on a
// replica's capacity eviction.
func (g *Gateway) coldSpill(src *replica, ref *blockRef) {
	g.cold.spill(src.index, ref)
}
