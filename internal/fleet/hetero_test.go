package fleet_test

import (
	"reflect"
	"strings"
	"testing"

	"loongserve/internal/baselines"
	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// Small test kinds: a 4-GPU ESP node (long-context capable, KV shards
// across two TP=2 instances) and a single-GPU continuous-batching node.
func loongKind(t *testing.T) *fleet.ReplicaKind {
	t.Helper()
	m := model.LWM1MText()
	hw := cluster.A800()
	return fleet.NewKind("loong", fleet.Spec{
		NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 4, 2)
		},
	})
}

func cheapKind(t *testing.T) *fleet.ReplicaKind {
	t.Helper()
	m := model.LWM1MText()
	hw := cluster.A800()
	return fleet.NewKind("cheap", fleet.Spec{
		NewEngine: func() serving.Engine { return baselines.NewVLLM(1) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 1, 1)
		},
	})
}

// mixedWorkload is a chat+long-document session mix sized for fast tests.
func mixedWorkload(sessions int) workload.SessionConfig {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = sessions
	cfg.SessionRate = 2
	cfg.MinTurns, cfg.MaxTurns = 2, 4
	cfg.ThinkMean = 2
	cfg.LongFrac = 0.2
	cfg.LongDocTokens = 30_000
	cfg.LongDocMax = 80_000
	return cfg
}

// TestKindResolveDerivesCapability checks the capability sheet is read off
// the built artifacts, including the engine's KV-sharding envelope.
func TestKindResolveDerivesCapability(t *testing.T) {
	lk, ck := loongKind(t), cheapKind(t)
	if err := lk.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Resolve(); err != nil {
		t.Fatal(err)
	}
	if lk.Nodes != 1 || lk.GPUs != 4 || lk.CostUnits != 4 {
		t.Fatalf("loong sheet: %+v", lk.Capability())
	}
	if ck.Nodes != 1 || ck.GPUs != 1 || ck.CostUnits != 1 {
		t.Fatalf("cheap sheet: %+v", ck.Capability())
	}
	// The ESP engine reports the whole pool as its envelope; the
	// continuous-batching engine is bounded by its single instance.
	if lk.MaxContext != lk.KVCapacity {
		t.Fatalf("loong MaxContext %d != KVCapacity %d", lk.MaxContext, lk.KVCapacity)
	}
	if ck.MaxContext != ck.KVCapacity {
		t.Fatalf("cheap MaxContext %d != KVCapacity %d (one instance is the whole pool)", ck.MaxContext, ck.KVCapacity)
	}
	if lk.MaxContext <= ck.MaxContext {
		t.Fatalf("loong envelope %d not above cheap %d", lk.MaxContext, ck.MaxContext)
	}
	if lk.PrefillRate <= ck.PrefillRate {
		t.Fatalf("prefill rates: loong %v <= cheap %v", lk.PrefillRate, ck.PrefillRate)
	}
}

// TestHomogeneousShimMatchesGroups: the legacy Spec+Replicas entry point
// must produce bit-identical results to the explicit single-kind
// composition it synthesizes.
func TestHomogeneousShimMatchesGroups(t *testing.T) {
	trace := sessionTrace()
	legacy, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 3, Policy: fleet.NewPrefixAffinity()})
	if err != nil {
		t.Fatal(err)
	}
	m := model.LWM1MText()
	hw := cluster.A800()
	kind := fleet.NewKind("default", fleet.Spec{
		NewEngine: func() serving.Engine { return baselines.NewVLLM(8) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 8, 8)
		},
	})
	grouped, err := fleet.RunGroups(trace, fleet.Config{
		Groups: []fleet.ReplicaGroup{{Kind: kind, Count: 3}},
		Policy: fleet.NewPrefixAffinity(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Records, grouped.Records) {
		t.Fatal("records differ between the Spec shim and the explicit composition")
	}
	if !reflect.DeepEqual(legacy.Replicas, grouped.Replicas) {
		t.Fatalf("replica stats differ:\nlegacy  %+v\ngrouped %+v", legacy.Replicas, grouped.Replicas)
	}
}

// TestHeteroDeterminism is the -mix reproducibility property: a
// heterogeneous closed-loop run under capability routing is bit-identical
// across repetitions, for several seeds.
func TestHeteroDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		scripts := workload.SessionScripts(mixedWorkload(40), seed)
		run := func() *fleet.Result {
			lk, ck := loongKind(t), cheapKind(t)
			res, err := fleet.RunSessionsGroups(scripts, fleet.Config{
				Groups:   []fleet.ReplicaGroup{{Kind: lk, Count: 1}, {Kind: ck, Count: 3}},
				SLOKind:  lk,
				Policy:   fleet.NewCapabilityAffinity(),
				SLOScale: 5,
			}, true)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Records, b.Records) {
			t.Fatalf("seed %d: records differ between identical runs", seed)
		}
		if !reflect.DeepEqual(a.Replicas, b.Replicas) {
			t.Fatalf("seed %d: replica stats differ", seed)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("seed %d: scale events differ", seed)
		}
		if a.CostUnitSeconds != b.CostUnitSeconds {
			t.Fatalf("seed %d: cost-unit seconds differ", seed)
		}
	}
}

// TestHeteroCompletesAndRoutesByCapability: long prompts land on the
// long-context kind, chat spreads over the cheap kind, and every request
// completes with its trace-specified lengths.
func TestHeteroCompletesAndRoutesByCapability(t *testing.T) {
	lk, ck := loongKind(t), cheapKind(t)
	scripts := workload.SessionScripts(mixedWorkload(60), 42)
	res, err := fleet.RunSessionsGroups(scripts, fleet.Config{
		Groups:   []fleet.ReplicaGroup{{Kind: lk, Count: 1}, {Kind: ck, Count: 3}},
		SLOKind:  lk,
		Policy:   fleet.NewCapabilityAffinity(),
		SLOScale: 5,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != workload.NumRequests(scripts) {
		t.Fatalf("%d of %d completed", len(res.Records), workload.NumRequests(scripts))
	}
	if res.Replicas[0].Kind != "loong" || res.Replicas[1].Kind != "cheap" {
		t.Fatalf("replica kinds: %q, %q", res.Replicas[0].Kind, res.Replicas[1].Kind)
	}
	// Every prompt beyond the cheap kind's comfortable envelope must have
	// been routed to the loong replica.
	comfort := int(fleet.DefaultCapabilityHeadroom * float64(ck.MaxContext))
	longReqs := 0
	for i, tr := range res.Trace {
		if tr.InputLen > comfort {
			longReqs++
			_ = i
		}
	}
	if longReqs == 0 {
		t.Fatal("workload produced no over-envelope prompts; test is vacuous")
	}
	// The loong replica's input tokens must dominate the long share: no
	// over-envelope prompt fits elsewhere, so its stats carry them all.
	var longTokens int64
	for _, tr := range res.Trace {
		if tr.InputLen > comfort {
			longTokens += int64(tr.InputLen)
		}
	}
	if res.Replicas[0].InputTokens < longTokens {
		t.Fatalf("loong replica saw %d input tokens, long share alone is %d", res.Replicas[0].InputTokens, longTokens)
	}
	// Chat must not have dogpiled: every cheap replica served something.
	for i, rs := range res.Replicas[1:] {
		if rs.Requests == 0 {
			t.Errorf("cheap replica %d served nothing", i+1)
		}
	}
}

// TestStreamMetricsEquivalence: the StreamMetrics flag must not change any
// metric the run reports — only whether records are retained.
func TestStreamMetricsEquivalence(t *testing.T) {
	trace := sessionTrace()
	full, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 3, Policy: fleet.NewPrefixAffinity()})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 3, Policy: fleet.NewPrefixAffinity(), StreamMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Records != nil {
		t.Fatalf("streamed run retained %d records", len(streamed.Records))
	}
	if streamed.Acc == nil || streamed.Acc.N() != len(full.Records) {
		t.Fatal("streamed run has no (or short) accumulator")
	}
	// This trace is under the accumulator's exact-quantile limit, so the
	// summaries must agree exactly, as must goodput at any size.
	if got, want := streamed.Summary(), metrics.Summarize(full.Records); got != want {
		t.Fatalf("summaries differ:\nstreamed %+v\nfull     %+v", got, want)
	}
	if got, want := streamed.Goodput(), metrics.Goodput(full.Records); got != want {
		t.Fatalf("goodput differs: %v vs %v", got, want)
	}
	if streamed.GoodputPerCostUnit() != full.GoodputPerCostUnit() {
		t.Fatal("cost-normalized goodput differs under streaming")
	}

	// Session-driven streaming runs must not rebuild the O(requests)
	// footprint through Result.Trace either.
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 12
	scripts := workload.SessionScripts(cfg, 9)
	sres, err := fleet.RunSessions(vllmSpec(t), scripts, fleet.Config{Replicas: 2, StreamMetrics: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Trace != nil {
		t.Fatalf("streamed session run retained a %d-entry trace", len(sres.Trace))
	}
	if sres.Acc == nil || sres.Acc.N() != workload.NumRequests(scripts) {
		t.Fatal("streamed session run lost records")
	}
}

// TestParseMix covers the CLI composition parser and its error messages.
func TestParseMix(t *testing.T) {
	lk, ck := loongKind(t), cheapKind(t)
	known := []*fleet.ReplicaKind{lk, ck}

	groups, err := fleet.ParseMix("loong:2,cheap:3", known)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Kind != lk || groups[0].Count != 2 || groups[1].Kind != ck || groups[1].Count != 3 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups, err = fleet.ParseMix("cheap", known); err != nil || groups[0].Count != 1 {
		t.Fatalf("bare kind: %+v, %v", groups, err)
	}
	for _, bad := range []string{"", "nope:1", "loong:0", "loong:x", "loong:-2"} {
		if _, err := fleet.ParseMix(bad, known); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// Unknown-kind errors must name the known kinds, like -cache errors.
	_, err = fleet.ParseMix("nope:1", known)
	if err == nil || !strings.Contains(err.Error(), "loong") || !strings.Contains(err.Error(), "cheap") {
		t.Fatalf("error %v does not list known kinds", err)
	}
}

// TestGatewayGroupsValidation covers the composition constructor errors.
func TestGatewayGroupsValidation(t *testing.T) {
	trace := workload.PoissonTrace(workload.ShareGPT(), 5, 5, 1)
	if _, err := fleet.RunGroups(trace, fleet.Config{}); err == nil {
		t.Error("empty composition accepted")
	}
	if _, err := fleet.RunGroups(trace, fleet.Config{Groups: []fleet.ReplicaGroup{{Kind: nil, Count: 1}}}); err == nil {
		t.Error("nil kind accepted")
	}
	lk := loongKind(t)
	if _, err := fleet.RunGroups(trace, fleet.Config{Groups: []fleet.ReplicaGroup{{Kind: lk, Count: 0}}}); err == nil {
		t.Error("zero-replica composition accepted")
	}
	// The legacy entry point refuses a composition (ambiguous intent).
	if _, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 1, Groups: []fleet.ReplicaGroup{{Kind: lk, Count: 1}}}); err == nil {
		t.Error("NewGateway accepted Config.Groups")
	}
}
