package fleet

import (
	"testing"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/kvcache"
	"loongserve/internal/model"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// phaseSum folds one attribution's phases.
func phaseSum(a analyze.Attribution) time.Duration {
	var sum time.Duration
	for p := analyze.Phase(0); p < analyze.NumPhases; p++ {
		sum += a.Phases[p]
	}
	return sum
}

// requireExactAndClean asserts the tentpole's two acceptance properties on
// a finished run's stream: every attribution's phases sum to its
// end-to-end latency exactly, and the auditor finds nothing.
func requireExactAndClean(t *testing.T, events []obs.Event, wantFinished int) *analyze.Report {
	t.Helper()
	rep := analyze.Attribute(events)
	if len(rep.Requests) != wantFinished || rep.Incomplete != 0 {
		t.Fatalf("attributed %d finished + %d incomplete, want %d + 0",
			len(rep.Requests), rep.Incomplete, wantFinished)
	}
	for _, a := range rep.Requests {
		if sum := phaseSum(a); sum != a.E2E() {
			t.Fatalf("request %d: phase sum %v != E2E %v (phases %v)", a.Request, sum, a.E2E(), a.Phases)
		}
	}
	if vs := analyze.Audit(events); len(vs) != 0 {
		t.Fatalf("audit found %d violations on a healthy run, first: %s", len(vs), vs[0])
	}
	return rep
}

// TestAnalyzeFleetAttributionExactAndClean: on plain fleet runs across
// policies, the reconstructed critical paths partition each request's
// latency exactly, agree with the driver's own records, and the stream
// passes the full audit.
func TestAnalyzeFleetAttributionExactAndClean(t *testing.T) {
	for _, pol := range []Policy{NewRoundRobin(), NewPrefixAffinity(), NewMigratingAffinity()} {
		t.Run(pol.Name(), func(t *testing.T) {
			trace := obsTrace()
			col := &obs.Collector{}
			res, err := Run(toySpec(), trace, Config{Replicas: 3, Policy: pol, Obs: col})
			if err != nil {
				t.Fatal(err)
			}
			rep := requireExactAndClean(t, col.Events, len(trace))

			// The stream-derived view must agree with the driver's records:
			// same arrival, same end-to-end latency, same SLO verdict.
			type key struct {
				arr, e2e time.Duration
				miss     bool
			}
			byID := make(map[int64]key, len(res.Records))
			for _, r := range res.Records {
				byID[r.ID] = key{r.Arrival, r.E2E(), !r.MeetsSLO()}
			}
			for _, a := range rep.Requests {
				want, ok := byID[a.Request]
				if !ok {
					t.Fatalf("attributed request %d has no record", a.Request)
				}
				if a.Arrival != want.arr || a.E2E() != want.e2e || a.SLOMiss() != want.miss {
					t.Fatalf("request %d: stream says arrival %v e2e %v miss %v, record says %v %v %v",
						a.Request, a.Arrival, a.E2E(), a.SLOMiss(), want.arr, want.e2e, want.miss)
				}
			}
		})
	}
}

// TestAnalyzeDrainRunClean: a run with a mid-flight drain — lifecycle
// events, drain migrations, handoffs — still audits clean and attributes
// every request.
func TestAnalyzeDrainRunClean(t *testing.T) {
	scripts := chatScripts(30, 6, 0.5, 3)
	col := &obs.Collector{}
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 3, Policy: NewPrefixAffinity(), Obs: col}, sim)
	if err != nil {
		t.Fatal(err)
	}
	feed := FeedSessions(g, scripts, true)
	sim.At(simevent.Time(simevent.FromSeconds(2)), func() {
		if err := g.DrainReplica(1); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	sim.Run()
	g.Finalize()
	if feed.Completed() != feed.Total() {
		t.Fatalf("%d of %d completed", feed.Completed(), feed.Total())
	}
	requireExactAndClean(t, col.Events, feed.Total())
}

// TestAnalyzeHeteroRunClean: a mixed-kind fleet under CapabilityAffinity
// with real engines (so engine-bridged prefill-start events exist and the
// prefill-wait phase is exercised) audits clean with exact attributions.
func TestAnalyzeHeteroRunClean(t *testing.T) {
	m := model.LWM1MText()
	hw := cluster.A800()
	loong := NewKind("loong", Spec{
		NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 4, 2)
		},
	})
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 24
	cfg.SessionRate = 8
	cfg.MinTurns, cfg.MaxTurns = 2, 3
	cfg.ThinkMean = 0.2
	scripts := workload.SessionScripts(cfg, 9)

	col := &obs.Collector{}
	res, err := RunSessionsGroups(scripts, Config{
		Groups: []ReplicaGroup{{Kind: loong, Count: 1}},
		Policy: NewCapabilityAffinity(),
		Obs:    col,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	rep := requireExactAndClean(t, col.Events, len(res.Records))

	counts := obs.Counts(col.Events)
	if counts[obs.KindPrefillStart] == 0 {
		t.Fatal("core-engine run produced no prefill-start events — prefill-wait phase untested")
	}
	var waited int
	for _, a := range rep.Requests {
		if a.Phases[analyze.PhasePrefillWait] > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Fatal("no request attributed any prefill-wait despite engine prefill-start events")
	}
}

// forceMigratePolicy drives the re-enqueue scenario deterministically: the
// first request of a session lands on replica 0; once the session's KV is
// warm there, the next request is migrated to replica 1 — and the policy
// schedules replica 1's drain for the middle of that transfer, forcing the
// gateway's mid-transfer re-enqueue path.
type forceMigratePolicy struct {
	g     *Gateway
	sim   *simevent.Sim
	fired bool
}

func (p *forceMigratePolicy) Name() string { return "ForceMigrate" }

func (p *forceMigratePolicy) Pick(_ RequestInfo, _ []ReplicaView) int { return 0 }

func (p *forceMigratePolicy) PickMigrate(req RequestInfo, reps []ReplicaView, m Migrator) Decision {
	if p.fired || len(reps) < 2 {
		return Decision{Dest: 0, From: -1}
	}
	tokens := reps[0].SessionTokens(req)
	if tokens == 0 {
		return Decision{Dest: 0, From: -1} // first turn: warm replica 0
	}
	p.fired = true
	// The transfer the gateway is about to start takes MigrationSeconds;
	// drain the destination halfway through it.
	half := time.Duration(m.MigrationSeconds(tokens) / 2 * float64(time.Second))
	p.sim.After(half, func() {
		if err := p.g.DrainReplica(1); err != nil {
			panic(err)
		}
	})
	return Decision{Dest: 1, From: 0}
}

// TestAnalyzeReenqueueSingleFinish pins the double-Enqueue semantics the
// auditor and attribution depend on: a request whose migration destination
// drains mid-transfer re-enqueues (a second Enqueue and Route in Counts),
// finishes exactly once, is attributed a positive re-enqueue phase that
// still sums exactly, and the whole stream audits clean.
func TestAnalyzeReenqueueSingleFinish(t *testing.T) {
	sim := simevent.New()
	col := &obs.Collector{}
	pol := &forceMigratePolicy{sim: sim}
	g, err := NewGateway(toySpec(), Config{Replicas: 3, Policy: pol, Obs: col}, sim)
	if err != nil {
		t.Fatal(err)
	}
	pol.g = g

	const session = int64(77)
	submit := func(id int, in, prefix, out int, at time.Duration) {
		e := workload.Entry{InputLen: in, PrefixLen: prefix, OutputLen: out, SessionID: session}
		r := &serving.Request{
			ID: kvcache.RequestID(id), InputLen: in, OutputLen: out,
			Arrival: simevent.Time(at),
		}
		sim.At(simevent.Time(at), func() { g.Submit(r, e) })
	}
	submit(1, 60_000, 0, 100, 0)
	// Second turn well after the first finishes (toyEngine latencies are
	// sub-second); it carries the prior turn's context as its prefix, so
	// replica 0 reports resident session KV and the policy migrates it —
	// triggering the mid-transfer drain.
	submit(2, 80_000, 60_100, 100, 30*time.Second)
	sim.Run()
	g.Finalize()

	if !pol.fired {
		t.Fatal("scenario never reached the migrate decision")
	}
	counts := obs.Counts(col.Events)
	if counts[obs.KindEnqueue] != 3 || counts[obs.KindRoute] != 3 || counts[obs.KindFinish] != 2 {
		t.Fatalf("counts enqueue/route/finish = %d/%d/%d, want 3/3/2 (one re-enqueue, exactly one finish each)",
			counts[obs.KindEnqueue], counts[obs.KindRoute], counts[obs.KindFinish])
	}

	rep := requireExactAndClean(t, col.Events, 2)
	if rep.Reenqueued != 1 {
		t.Fatalf("report counts %d re-enqueued requests, want 1", rep.Reenqueued)
	}
	var a2 *analyze.Attribution
	for i := range rep.Requests {
		if rep.Requests[i].Request == 2 {
			a2 = &rep.Requests[i]
		}
	}
	if a2 == nil {
		t.Fatal("request 2 not attributed")
	}
	if a2.Enqueues != 2 {
		t.Fatalf("request 2 attributed %d enqueues, want 2", a2.Enqueues)
	}
	if a2.Phases[analyze.PhaseReenqueue] <= 0 {
		t.Fatalf("request 2 re-enqueue phase = %v, want > 0 (abandoned transfer time)", a2.Phases[analyze.PhaseReenqueue])
	}
	// The re-routed request must not have landed on the drained replica.
	if a2.Replica == 1 {
		t.Fatal("request 2 finished on the drained replica")
	}
}
