package fleet

import (
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/obs"
	"loongserve/internal/serving"
)

// This file is the gateway's observability surface: the emit helpers the
// request and lifecycle paths call, and the simulated-time telemetry
// sampling loop. Every emitter's first statement is the nil-sink check —
// with observability off the hot paths pay exactly one branch and zero
// allocations per would-be event, which obs_test.go guards with
// AllocsPerRun.

// attachObs wires Config.Obs and Config.Sampler into the gateway. Called
// once from NewGatewayGroups, before replicas are built (so the engine
// sinks attach during construction) and before any event can fire.
func (g *Gateway) attachObs() {
	g.obsSink = g.cfg.Obs
	g.policyLabel = g.policy.Name()
	if g.cfg.Sampler != nil && g.cfg.Sampler.Interval > 0 {
		g.sampler = g.cfg.Sampler
		g.samplerEv = g.sim.NewEvent(g.sampleTick)
		g.sim.ScheduleAfter(g.samplerEv, g.sampler.Interval)
	}
}

// Obs returns the gateway's observability sink (nil when disabled) — the
// stream controllers above the gateway (autoscale) emit their decisions
// into, so the whole deployment shares one event sequence.
func (g *Gateway) Obs() obs.Sink { return g.obsSink }

func (g *Gateway) emitEnqueue(session int64, r *serving.Request) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindEnqueue, Replica: -1, Group: -1,
		Session: session, Request: int64(r.ID),
		Tokens: r.InputLen, A: int64(r.OutputLen), B: int64(r.SLOBudget),
	})
}

func (g *Gateway) emitRoute(session int64, req kvcache.RequestID, dest, from int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindRoute, Replica: dest, Group: -1,
		Session: session, Request: int64(req),
		A: int64(from), Label: g.policyLabel,
	})
}

func (g *Gateway) emitCache(session int64, req kvcache.RequestID, rep, hit, full int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindCacheLookup, Replica: rep, Group: -1,
		Session: session, Request: int64(req),
		Tokens: hit, A: int64(full),
	})
}

// emitFinishID records a completion under an explicit request identity —
// a hedge winner finishes under its primary's ID, not the synthetic copy's.
func (g *Gateway) emitFinishID(rep int, session int64, id kvcache.RequestID, r *serving.Request) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindFinish, Replica: rep, Group: -1,
		Session: session, Request: int64(id),
		Tokens: r.OutputLen, A: int64(r.FirstToken), B: int64(r.Arrival),
	})
}

// emitMigrate records one KV transfer. cause must be a string literal
// ("drain", "handoff", "route") — labels are never formatted. The session
// identity comes from the obsSessions reverse map, maintained only while a
// sink is attached (PrefixKey is a hash; it cannot be inverted).
func (g *Gateway) emitMigrate(key PrefixKey, src, dst, tokens int, delay time.Duration, cause string) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindMigrate, Replica: src, Group: -1,
		Session: g.obsSessions[key],
		Tokens:  tokens, A: int64(dst), B: int64(delay), Label: cause,
	})
}

// emitLifecycle mirrors a replica lifecycle event ("provision", "active",
// "drain", "retire" — g.event's vocabulary minus "migrate", which
// emitMigrate covers with richer detail) into the sink.
func (g *Gateway) emitLifecycle(kind string, rep int) {
	if g.obsSink == nil {
		return
	}
	var k obs.Kind
	switch kind {
	case "provision":
		k = obs.KindProvision
	case "active":
		k = obs.KindActivate
	case "drain":
		k = obs.KindDrain
	case "retire":
		k = obs.KindRetire
	default:
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: k, Replica: rep, Group: -1,
		Label: g.replicas[rep].kind.Name,
	})
}

// emitCrash records a replica failure: the in-flight requests killed and
// resident prefix-KV destroyed with it. Every event attributed to the
// replica after this one is a stream defect (the auditor's
// event-after-crash invariant).
func (g *Gateway) emitCrash(rep, inFlight, kvLost int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindCrash, Replica: rep, Group: -1,
		Tokens: inFlight, A: int64(kvLost), Label: g.replicas[rep].kind.Name,
	})
}

// emitRecover records one crashed request's rescue, immediately before its
// recovery re-enqueue: salvaged = session KV tokens still warm on a
// survivor (the re-prefill is only the unshared suffix).
func (g *Gateway) emitRecover(session int64, req kvcache.RequestID, salvaged, crashedRep int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindRecover, Replica: -1, Group: -1,
		Session: session, Request: int64(req),
		Tokens: salvaged, A: int64(crashedRep),
	})
}

// emitHedgeLaunch records a straggler's duplicate submission. The event is
// attributed to the hedge destination; the request identity is the
// primary's (the hedge copy's synthetic ID never appears in the stream).
func (g *Gateway) emitHedgeLaunch(session int64, req kvcache.RequestID, dst, primary, input int, elapsed time.Duration) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindHedgeLaunch, Replica: dst, Group: -1,
		Session: session, Request: int64(req),
		Tokens: input, A: int64(primary), B: int64(elapsed),
	})
}

func (g *Gateway) emitHedgeWin(session int64, req kvcache.RequestID, winner, loser int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindHedgeWin, Replica: winner, Group: -1,
		Session: session, Request: int64(req), A: int64(loser),
	})
}

func (g *Gateway) emitHedgeLose(session int64, req kvcache.RequestID, loser, burned, winner int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindHedgeLose, Replica: loser, Group: -1,
		Session: session, Request: int64(req),
		Tokens: burned, A: int64(winner),
	})
}

// emitDirUpdate records one global-cache-directory change: loc gained or
// lost delta resident tokens, leaving total. label must be a static
// string ("add", "remove", "wipe", "cold-evict"). loc -1 is the cold
// tier; a wipe is the one event legally attributed to a crashed replica
// after its crash (the auditor exempts negative directory deltas).
func (g *Gateway) emitDirUpdate(loc, delta, total int, label string) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindDirectoryUpdate, Replica: loc, Group: -1,
		Tokens: delta, A: int64(total), Label: label,
	})
}

// emitContentRoute records a directory-driven routing decision: the
// overlap tokens the policy claimed were resident at dest, and the load
// state it weighed them against.
func (g *Gateway) emitContentRoute(session int64, req kvcache.RequestID, dest, claim, queue, eligible int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindContentRoute, Replica: dest, Group: -1,
		Session: session, Request: int64(req),
		Tokens: claim, A: int64(queue), B: int64(eligible),
	})
}

// emitColdSpill records one block copied from a replica's capacity
// eviction into the cold tier.
func (g *Gateway) emitColdSpill(rep, tokens, coldUsed, coldBlocks int) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindColdSpill, Replica: rep, Group: -1,
		Tokens: tokens, A: int64(coldUsed), B: int64(coldBlocks),
	})
}

// emitColdFetch records cold KV copied to a replica ahead of a prefill:
// the link time paid and the recompute time it displaced (the fetch only
// happens when the former undercuts the latter).
func (g *Gateway) emitColdFetch(session int64, req kvcache.RequestID, dest, tokens int, linkNS, recomputeNS int64) {
	if g.obsSink == nil {
		return
	}
	g.obsSink.Emit(obs.Event{
		At: g.sim.Now(), Kind: obs.KindColdFetch, Replica: dest, Group: -1,
		Session: session, Request: int64(req),
		Tokens: tokens, A: linkNS, B: recomputeNS,
	})
}

// noteSession records the session-key → session-id mapping emitMigrate
// resolves drain-time transfers through.
func (g *Gateway) noteSession(key PrefixKey, session int64) {
	if g.obsSink == nil || key == 0 {
		return
	}
	if g.obsSessions == nil {
		g.obsSessions = make(map[PrefixKey]int64)
	}
	g.obsSessions[key] = session
}

// sampleTick is the sampler's recurring simulator event: snapshot every
// non-retired replica plus the fleet aggregate, then re-arm — but only
// while other events remain, so sampling never keeps an otherwise-finished
// simulation alive. The event object is owned (simevent.NewEvent), making
// the steady-state loop allocation-free.
func (g *Gateway) sampleTick() {
	now := g.sim.Now()
	fs := obs.FleetSample{At: now, OutstandingReqs: len(g.pending)}
	for _, rep := range g.replicas {
		switch rep.state {
		case ReplicaActive:
			fs.Active++
		case ReplicaWarming:
			fs.Warming++
		case ReplicaDraining:
			fs.Draining++
		case ReplicaRetired:
			fs.Retired++
			continue // retired replicas stop producing per-replica rows
		case ReplicaFailed:
			fs.Failed++
			continue // crashed replicas cost nothing and report nothing
		}
		fs.CostUnits += rep.kind.CostUnits
		sm := obs.Sample{
			At: now, Replica: rep.index, State: int(rep.state),
			QueueDepth:  rep.outReqs,
			OutTokens:   int64(rep.outTokens),
			CacheUsed:   int64(rep.cacheUsed()),
			HitTokens:   rep.stats.HitTokens,
			InputTokens: rep.stats.InputTokens,
			CostUnits:   rep.kind.CostUnits,
		}
		if lr, ok := rep.engine.(serving.LoadReporter); ok {
			ls := lr.Load()
			sm.QueueDepth = ls.Outstanding()
			sm.Queued = ls.Queued
			sm.KVTokens = int64(ls.KVTokens)
		}
		g.sampler.Record(sm)
	}
	g.sampler.RecordFleet(fs)
	if g.pendingWork() > 0 {
		g.sim.ScheduleAfter(g.samplerEv, g.sampler.Interval)
	}
}
