package fleet

// lruNode is one resident whole-key cache entry, intrusively linked into
// its cache's recency list.
type lruNode struct {
	key        PrefixKey
	tokens     int
	prev, next *lruNode
}

// lruList is an intrusive doubly linked recency list with a per-list node
// pool. Compared to container/list it drops the per-entry Element and
// interface-value allocations and recycles nodes through a free list, so
// steady-state insert/evict churn — the resident-set turnover of a
// million-session run — allocates nothing.
type lruList struct {
	root lruNode // sentinel: root.next = front (most recent), root.prev = back
	free *lruNode
	n    int
}

func (l *lruList) init() {
	l.root.next = &l.root
	l.root.prev = &l.root
}

func (l *lruList) len() int { return l.n }

func (l *lruList) front() *lruNode {
	if l.n == 0 {
		return nil
	}
	return l.root.next
}

func (l *lruList) back() *lruNode {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}

// next and prev step through the list, returning nil at either end.
func (l *lruList) next(e *lruNode) *lruNode {
	if e.next == &l.root {
		return nil
	}
	return e.next
}

func (l *lruList) prev(e *lruNode) *lruNode {
	if e.prev == &l.root {
		return nil
	}
	return e.prev
}

// pushFront links a node for key at the front, reusing a pooled node when
// one is free.
func (l *lruList) pushFront(key PrefixKey, tokens int) *lruNode {
	e := l.free
	if e != nil {
		l.free = e.next
	} else {
		e = &lruNode{}
	}
	e.key = key
	e.tokens = tokens
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
	l.n++
	return e
}

func (l *lruList) moveToFront(e *lruNode) {
	if l.root.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
}

// remove unlinks a node and returns it to the pool.
func (l *lruList) remove(e *lruNode) {
	e.prev.next = e.next
	e.next.prev = e.prev
	l.n--
	e.key = 0
	e.tokens = 0
	e.prev = nil
	e.next = l.free
	l.free = e
}
