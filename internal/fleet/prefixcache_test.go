package fleet

import "testing"

func TestPrefixCacheBasics(t *testing.T) {
	c := NewPrefixCache(1000, false)
	k1, k2 := SessionKey(1), SessionKey(2)
	if got := c.Lookup(k1); got != 0 {
		t.Fatalf("cold lookup = %d", got)
	}
	c.Put(k1, 400)
	if got := c.Lookup(k1); got != 400 {
		t.Fatalf("lookup = %d, want 400", got)
	}
	if got := c.Peek(k2); got != 0 {
		t.Fatalf("peek absent = %d", got)
	}
	// Updates grow in place.
	c.Put(k1, 700)
	if got, used := c.Peek(k1), c.Used(); got != 700 || used != 700 {
		t.Fatalf("after grow: tokens %d used %d", got, used)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits %d misses %d", c.Hits, c.Misses)
	}
	// Zero key is inert.
	c.Put(0, 100)
	if got := c.Lookup(0); got != 0 || c.Used() != 700 {
		t.Fatalf("zero key leaked: %d used %d", got, c.Used())
	}
}

func TestPrefixCacheLRUEviction(t *testing.T) {
	c := NewPrefixCache(1000, false)
	c.Put(SessionKey(1), 400)
	c.Put(SessionKey(2), 400)
	c.Lookup(SessionKey(1)) // 1 is now more recent than 2
	c.Put(SessionKey(3), 400)
	if c.Peek(SessionKey(2)) != 0 {
		t.Fatal("LRU victim 2 survived")
	}
	if c.Peek(SessionKey(1)) == 0 || c.Peek(SessionKey(3)) == 0 {
		t.Fatal("wrong entry evicted")
	}
	if c.Evicted != 1 {
		t.Fatalf("Evicted = %d", c.Evicted)
	}
	if c.Used() != 800 || c.Len() != 2 {
		t.Fatalf("used %d len %d", c.Used(), c.Len())
	}
}

func TestPrefixCacheOversizeIgnored(t *testing.T) {
	c := NewPrefixCache(100, false)
	c.Put(SessionKey(1), 101)
	if c.Len() != 0 {
		t.Fatal("oversize entry admitted")
	}
}

func TestPrefixCacheTinyLFUAdmission(t *testing.T) {
	c := NewPrefixCache(1000, true)
	hot := GroupKey(1)
	// Make the resident entry demonstrably popular.
	c.Put(hot, 800)
	for i := 0; i < 10; i++ {
		c.Lookup(hot)
	}
	// A never-seen one-hit wonder must not displace it.
	c.Put(SessionKey(99), 900)
	if c.Peek(hot) == 0 {
		t.Fatal("hot shared prompt evicted by one-hit wonder")
	}
	if c.Peek(SessionKey(99)) != 0 {
		t.Fatal("cold entry admitted over hot victim")
	}
	if c.Rejected != 1 {
		t.Fatalf("Rejected = %d", c.Rejected)
	}
	// Once the newcomer is requested often enough, it wins admission.
	for i := 0; i < 12; i++ {
		c.Lookup(SessionKey(99))
	}
	c.Put(SessionKey(99), 900)
	if c.Peek(SessionKey(99)) == 0 {
		t.Fatal("now-popular entry still rejected")
	}
	if c.Peek(hot) != 0 {
		t.Fatal("victim not displaced")
	}

	// Without admission the same one-hit wonder evicts immediately.
	plain := NewPrefixCache(1000, false)
	plain.Put(hot, 800)
	for i := 0; i < 10; i++ {
		plain.Lookup(hot)
	}
	plain.Put(SessionKey(99), 900)
	if plain.Peek(SessionKey(99)) == 0 {
		t.Fatal("plain LRU should admit unconditionally")
	}
}

func TestPrefixCacheSketchAges(t *testing.T) {
	s := newFreqSketch(16)
	k := PrefixKey(42)
	for i := 0; i < 5; i++ {
		s.touch(k)
	}
	if s.estimate(k) < 5 {
		t.Fatalf("estimate %d after 5 touches", s.estimate(k))
	}
	before := s.estimate(k)
	s.age()
	if got := s.estimate(k); got != before/2 {
		t.Fatalf("aged estimate %d, want %d", got, before/2)
	}
}

func TestKeysDistinctAndStable(t *testing.T) {
	if SessionKey(0) != 0 || GroupKey(0) != 0 {
		t.Fatal("absent keys must be zero")
	}
	if SessionKey(1) == GroupKey(1) {
		t.Fatal("session and group key families collide")
	}
	if SessionKey(1) != SessionKey(1) || SessionKey(1) == SessionKey(2) {
		t.Fatal("session keys not stable/distinct")
	}
}
