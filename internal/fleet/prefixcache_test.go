package fleet

import "testing"

func TestPrefixCacheBasics(t *testing.T) {
	c := NewPrefixCache(1000, false)
	k1, k2 := SessionKey(1), SessionKey(2)
	if got := c.Lookup(k1); got != 0 {
		t.Fatalf("cold lookup = %d", got)
	}
	c.Put(k1, 400)
	if got := c.Lookup(k1); got != 400 {
		t.Fatalf("lookup = %d, want 400", got)
	}
	if got := c.Peek(k2); got != 0 {
		t.Fatalf("peek absent = %d", got)
	}
	// Updates grow in place.
	c.Put(k1, 700)
	if got, used := c.Peek(k1), c.Used(); got != 700 || used != 700 {
		t.Fatalf("after grow: tokens %d used %d", got, used)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits %d misses %d", c.Hits, c.Misses)
	}
	// Zero key is inert.
	c.Put(0, 100)
	if got := c.Lookup(0); got != 0 || c.Used() != 700 {
		t.Fatalf("zero key leaked: %d used %d", got, c.Used())
	}
}

func TestPrefixCacheLRUEviction(t *testing.T) {
	c := NewPrefixCache(1000, false)
	c.Put(SessionKey(1), 400)
	c.Put(SessionKey(2), 400)
	c.Lookup(SessionKey(1)) // 1 is now more recent than 2
	c.Put(SessionKey(3), 400)
	if c.Peek(SessionKey(2)) != 0 {
		t.Fatal("LRU victim 2 survived")
	}
	if c.Peek(SessionKey(1)) == 0 || c.Peek(SessionKey(3)) == 0 {
		t.Fatal("wrong entry evicted")
	}
	if c.Evicted != 1 {
		t.Fatalf("Evicted = %d", c.Evicted)
	}
	if c.Used() != 800 || c.Len() != 2 {
		t.Fatalf("used %d len %d", c.Used(), c.Len())
	}
}

func TestPrefixCacheOversizeIgnored(t *testing.T) {
	c := NewPrefixCache(100, false)
	c.Put(SessionKey(1), 101)
	if c.Len() != 0 {
		t.Fatal("oversize entry admitted")
	}
}

func TestPrefixCacheTinyLFUAdmission(t *testing.T) {
	c := NewPrefixCache(1000, true)
	hot := GroupKey(1)
	// Make the resident entry demonstrably popular.
	c.Put(hot, 800)
	for i := 0; i < 10; i++ {
		c.Lookup(hot)
	}
	// A never-seen one-hit wonder must not displace it.
	c.Put(SessionKey(99), 900)
	if c.Peek(hot) == 0 {
		t.Fatal("hot shared prompt evicted by one-hit wonder")
	}
	if c.Peek(SessionKey(99)) != 0 {
		t.Fatal("cold entry admitted over hot victim")
	}
	if c.Rejected != 1 {
		t.Fatalf("Rejected = %d", c.Rejected)
	}
	// Once the newcomer is requested often enough, it wins admission.
	for i := 0; i < 12; i++ {
		c.Lookup(SessionKey(99))
	}
	c.Put(SessionKey(99), 900)
	if c.Peek(SessionKey(99)) == 0 {
		t.Fatal("now-popular entry still rejected")
	}
	if c.Peek(hot) != 0 {
		t.Fatal("victim not displaced")
	}

	// Without admission the same one-hit wonder evicts immediately.
	plain := NewPrefixCache(1000, false)
	plain.Put(hot, 800)
	for i := 0; i < 10; i++ {
		plain.Lookup(hot)
	}
	plain.Put(SessionKey(99), 900)
	if plain.Peek(SessionKey(99)) == 0 {
		t.Fatal("plain LRU should admit unconditionally")
	}
}

func TestPrefixCacheSketchAges(t *testing.T) {
	s := newFreqSketch(16)
	k := PrefixKey(42)
	for i := 0; i < 5; i++ {
		s.touch(k)
	}
	if s.estimate(k) < 5 {
		t.Fatalf("estimate %d after 5 touches", s.estimate(k))
	}
	before := s.estimate(k)
	s.age()
	if got := s.estimate(k); got != before/2 {
		t.Fatalf("aged estimate %d, want %d", got, before/2)
	}
}

func TestKeysDistinctAndStable(t *testing.T) {
	if SessionKey(0) != 0 || GroupKey(0) != 0 {
		t.Fatal("absent keys must be zero")
	}
	if SessionKey(1) == GroupKey(1) {
		t.Fatal("session and group key families collide")
	}
	if SessionKey(1) != SessionKey(1) || SessionKey(1) == SessionKey(2) {
		t.Fatal("session keys not stable/distinct")
	}
}

// TestKeyFamiliesNoCollisionOnWideIDs is the regression test for the
// OR-ed family tag: ids with bits in the tag range (>= 2^48, or any
// negative id, whose sign extension fills the high bits) used to clobber
// the tag, letting the two families collide. The id pairs below collide
// exactly under the historical `tag | uint64(id)` scheme — each id carries
// the *other* family's tag, so OR-ing produced the same word on both sides.
func TestKeyFamiliesNoCollisionOnWideIDs(t *testing.T) {
	pairs := []struct {
		session int64
		group   int
	}{
		{session: int64(groupKeyTag | 7), group: int(sessionKeyTag | 7)},
		{session: -1, group: -1}, // all-ones: OR with any tag is a no-op
		{session: -42, group: -42},
	}
	for _, p := range pairs {
		if SessionKey(p.session) == GroupKey(p.group) {
			t.Fatalf("SessionKey(%#x) == GroupKey(%#x)", p.session, p.group)
		}
	}
	// Wide ids must stay distinct within a family too: under the OR scheme
	// SessionKey(tag|x) and SessionKey(x) were the same key.
	if SessionKey(int64(sessionKeyTag|9)) == SessionKey(9) {
		t.Fatal("session ids differing only in tag-range bits collide")
	}
	if GroupKey(int(groupKeyTag|9)) == GroupKey(9) {
		t.Fatal("group ids differing only in tag-range bits collide")
	}
}

// TestPutNeverShrinks is the out-of-order-completion regression test: turn
// k's completion can land after turn k+1 already grew the entry (open-loop
// arrivals do not wait for completions), and the stale smaller Put must not
// discard KV the later turn produced. Install already guarded this; Put
// did not.
func TestPutNeverShrinks(t *testing.T) {
	c := NewPrefixCache(10_000, false)
	k := SessionKey(1)
	c.Put(k, 400)  // turn 0 completes
	c.Put(k, 1000) // turn 1 completes, entry grows
	c.Put(k, 700)  // turn 0's *retry sibling* — a stale, smaller completion
	if got := c.Peek(k); got != 1000 {
		t.Fatalf("stale completion shrank entry to %d, want 1000", got)
	}
	if c.Used() != 1000 {
		t.Fatalf("used %d out of sync, want 1000", c.Used())
	}
	// The stale Put still refreshes recency: k survives pressure from a
	// newer insertion over an entry touched even earlier.
	c.Put(SessionKey(2), 8000)
	c.Put(k, 500) // stale size, fresh touch
	c.Put(SessionKey(3), 9000)
	if c.Peek(k) != 1000 {
		t.Fatal("recency-refreshed entry evicted before the older one")
	}
}

// TestPutOversizeTouchesRecency is the outgrown-hot-session regression
// test: a resident session whose context exceeds the whole cache used to
// return early — neither resized nor moved to front — so the most recently
// used entry silently became the LRU victim. The fix touches recency and
// caps the stored size at capacity.
func TestPutOversizeTouchesRecency(t *testing.T) {
	c := NewPrefixCache(1000, false)
	hot, cold := SessionKey(1), SessionKey(2)
	c.Put(hot, 600)
	c.Put(cold, 300)
	// The hot session outgrows the cache. It must become MRU with its
	// stored size capped, evicting the colder entry to fit.
	c.Put(hot, 1200)
	if got := c.Peek(hot); got != 1000 {
		t.Fatalf("outgrown entry stored %d tokens, want capacity 1000", got)
	}
	if c.Peek(cold) != 0 {
		t.Fatal("colder entry survived the capped growth")
	}
	if c.Used() != 1000 {
		t.Fatalf("used %d, want 1000", c.Used())
	}
	// The capped entry is live: the next turn's lookup hits it.
	if got := c.Lookup(hot); got != 1000 {
		t.Fatalf("lookup after capped growth = %d, want 1000", got)
	}
	// Under the old early return the entry stayed at its pre-growth size
	// and LRU position, so this interleaving evicted the hot session; now
	// the hot entry owns the cache and the newcomer is the one that must
	// fight for admission.
	c.Put(SessionKey(3), 100)
	if c.Peek(SessionKey(3)) == 0 {
		t.Fatal("plain LRU should admit the newcomer")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d exceeds capacity", c.Used())
	}
}
