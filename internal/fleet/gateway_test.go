package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/kvcache"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// toyEngine is a deterministic single-server engine for gateway unit
// tests: requests are served FIFO, one at a time, prefill costing 1us per
// input token and decode 20us per output token. It keeps the tests fast
// and the arithmetic of queueing/drain scenarios exact, with no dependence
// on the baselines package (which imports fleet).
type toyEngine struct {
	env       *serving.Env
	busyUntil simevent.Time
	inflight  int
}

func (e *toyEngine) Name() string { return "toy" }

func (e *toyEngine) Init(env *serving.Env) error {
	e.env = env
	return nil
}

func (e *toyEngine) Arrive(r *serving.Request) {
	e.inflight++
	start := e.env.Sim.Now()
	if e.busyUntil > start {
		start = e.busyUntil
	}
	prefill := time.Duration(r.InputLen) * time.Microsecond
	decode := time.Duration(r.OutputLen) * 20 * time.Microsecond
	first := simevent.Time(start).Add(prefill)
	finish := first.Add(decode)
	e.busyUntil = finish
	e.env.Sim.At(finish, func() {
		r.Phase = serving.Finished
		r.Generated = r.OutputLen
		r.FirstToken = first
		r.Finish = finish
		e.inflight--
		e.env.Complete(r)
	})
}

func (e *toyEngine) Load() serving.LoadStats {
	return serving.LoadStats{Running: e.inflight}
}

// toySpec builds a fleet of toy replicas on the paper's cluster shape.
func toySpec() Spec {
	m := model.LWM1MText()
	hw := cluster.A800()
	return Spec{
		NewEngine: func() serving.Engine { return &toyEngine{} },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 8, 8)
		},
	}
}

// chatScripts builds a small deterministic session workload.
func chatScripts(sessions int, rate, think float64, seed int64) []workload.SessionScript {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = sessions
	cfg.SessionRate = rate
	cfg.ThinkMean = think
	return workload.SessionScripts(cfg, seed)
}

// joinTurns indexes a session run's records by (session, turn) via the
// emitted trace (request ID i+1 = trace index i).
func joinTurns(t *testing.T, res *Result) map[int64]map[int]struct {
	arrival, finish time.Duration
} {
	t.Helper()
	out := make(map[int64]map[int]struct{ arrival, finish time.Duration })
	for _, rec := range res.Records {
		i := int(rec.ID) - 1
		if i < 0 || i >= len(res.Trace) {
			t.Fatalf("record ID %d outside emitted trace (%d requests)", rec.ID, len(res.Trace))
		}
		e := res.Trace[i]
		if e.InputLen != rec.InputLen || e.OutputLen != rec.OutputLen {
			t.Fatalf("record %d lengths (%d,%d) disagree with trace (%d,%d)",
				rec.ID, rec.InputLen, rec.OutputLen, e.InputLen, e.OutputLen)
		}
		m := out[e.SessionID]
		if m == nil {
			m = make(map[int]struct{ arrival, finish time.Duration })
			out[e.SessionID] = m
		}
		m[e.Turn] = struct{ arrival, finish time.Duration }{rec.Arrival, rec.Finish}
	}
	return out
}

// TestClosedLoopNeverOutrunsCompletion is the closed-loop contract: turn
// k+1 is never emitted before turn k completes, per session, even when the
// fleet is saturated. The same workload open-loop does outrun completions
// under the same load — that contrast is what closed-loop mode exists for.
func TestClosedLoopNeverOutrunsCompletion(t *testing.T) {
	scripts := chatScripts(40, 8, 0.01, 3) // fast arrivals, near-zero think: saturating
	cfg := Config{Replicas: 2, Policy: NewPrefixAffinity()}

	closed, err := RunSessions(toySpec(), scripts, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(closed.Records) != workload.NumRequests(scripts) {
		t.Fatalf("closed loop completed %d of %d", len(closed.Records), workload.NumRequests(scripts))
	}
	for sid, turns := range joinTurns(t, closed) {
		for k := 1; ; k++ {
			cur, ok := turns[k]
			if !ok {
				break
			}
			prev, ok := turns[k-1]
			if !ok {
				t.Fatalf("session %d turn %d exists without turn %d", sid, k, k-1)
			}
			if cur.arrival < prev.finish {
				t.Fatalf("session %d turn %d arrived at %v before turn %d finished at %v",
					sid, k, cur.arrival, k-1, prev.finish)
			}
		}
	}

	open, err := RunSessions(toySpec(), scripts, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	outran := false
	for _, turns := range joinTurns(t, open) {
		for k := 1; ; k++ {
			cur, ok := turns[k]
			if !ok {
				break
			}
			if cur.arrival < turns[k-1].finish {
				outran = true
			}
		}
	}
	if !outran {
		t.Fatal("open-loop run never outran a completion; the load is too light to distinguish the modes")
	}
}

// TestOpenLoopFeedMatchesStaticTrace: driving scripts open-loop through
// the feed must serve exactly the requests SessionTrace materializes.
func TestOpenLoopFeedMatchesStaticTrace(t *testing.T) {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 24
	scripts := workload.SessionScripts(cfg, 5)
	static := workload.SessionTrace(cfg, 5)

	res, err := RunSessions(toySpec(), scripts, Config{Replicas: 2, Policy: NewRoundRobin()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(static) {
		t.Fatalf("feed emitted %d requests, static trace has %d", len(res.Trace), len(static))
	}
	// Same requests at the same times. Arrivals are compared with a small
	// tolerance: the feed accumulates think times event by event, the
	// static trace in one float sum, so the two round differently at
	// nanosecond scale. Entries are unique per (session, turn).
	type turnKey struct {
		sid  int64
		turn int
	}
	want := make(map[turnKey]workload.TimedRequest, len(static))
	for _, tr := range static {
		want[turnKey{tr.SessionID, tr.Turn}] = tr
	}
	for _, tr := range res.Trace {
		k := turnKey{tr.SessionID, tr.Turn}
		w, ok := want[k]
		if !ok {
			t.Fatalf("feed emitted %+v not present in static trace", tr.Entry)
		}
		if !reflect.DeepEqual(tr.Entry, w.Entry) {
			t.Fatalf("feed emitted %+v, static trace has %+v", tr.Entry, w.Entry)
		}
		if d := tr.Arrival - w.Arrival; d < -2*time.Microsecond || d > 2*time.Microsecond {
			t.Fatalf("turn %+v arrived at %v, static trace says %v", tr.Entry, tr.Arrival, w.Arrival)
		}
		delete(want, k)
	}
}

// TestDrainMigratesLiveSessions is the drain property test: draining a
// replica under concurrent arrivals loses no session, duplicates no
// session, and preserves exact token counts for sessions that were idle at
// drain time. Randomized over seeds and drain times, deterministic per
// seed.
func TestDrainMigratesLiveSessions(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			scripts := chatScripts(30, 6, 0.5, seed)
			sim := simevent.New()
			g, err := NewGateway(toySpec(), Config{Replicas: 3, Policy: NewPrefixAffinity()}, sim)
			if err != nil {
				t.Fatal(err)
			}
			feed := FeedSessions(g, scripts, true)

			// Drain replica `victim` at a random time inside the arrival
			// window, while requests are in flight and more are arriving.
			victim := rng.Intn(3)
			drainAt := simevent.FromSeconds(1 + rng.Float64()*3)
			var preDrain map[int64]int  // sessionID -> tokens resident on victim
			var soleCopy map[int64]bool // victim held the only copy
			sim.At(simevent.Time(drainAt), func() {
				preDrain = make(map[int64]int)
				soleCopy = make(map[int64]bool)
				for _, s := range scripts {
					locs := g.SessionLocations(s.ID)
					if c, on := locs[victim]; on {
						preDrain[s.ID] = c
						soleCopy[s.ID] = len(locs) == 1
					}
				}
				if err := g.DrainReplica(victim); err != nil {
					t.Errorf("drain: %v", err)
				}
			})
			sim.Run()

			if feed.Completed() != feed.Total() {
				t.Fatalf("%d of %d requests completed after drain", feed.Completed(), feed.Total())
			}
			res := g.Finalize()
			lastFinish := make(map[int64]time.Duration)
			for _, rec := range res.Records {
				if rec.FirstToken < rec.Arrival || rec.Finish < rec.FirstToken {
					t.Fatalf("request %d has an inverted timeline after drain: %+v", rec.ID, rec)
				}
				sid := feed.Trace[rec.ID-1].SessionID
				if rec.Finish > lastFinish[sid] {
					lastFinish[sid] = rec.Finish
				}
			}

			// The victim retired empty.
			if st := g.replicas[victim].state; st != ReplicaRetired {
				t.Fatalf("victim replica is %v, want retired", st)
			}
			if n := g.replicas[victim].cache.Len(); n != 0 {
				t.Fatalf("victim cache still holds %d entries", n)
			}
			if g.replicas[victim].outReqs != 0 || g.replicas[victim].migrationsOut != 0 {
				t.Fatal("victim retired with outstanding work")
			}

			// No session the victim held is lost: its KV (or a fresher,
			// larger version carried by an in-flight handoff or later turn)
			// survives on a replica that is not the victim. Sessions that
			// were entirely finished before the drain — no in-flight
			// request, no later turn — are the pure-migration cases: their
			// sole copy must land on exactly one survivor with exactly the
			// token count it had. (Sessions served by several replicas over
			// their lifetime may hold extra stale short-prefix copies;
			// that is routing history, not drain behavior.)
			strong := 0
			for sid, tokens := range preDrain {
				locs := g.SessionLocations(sid)
				if len(locs) == 0 {
					t.Fatalf("session %d lost in drain (had %d tokens)", sid, tokens)
				}
				if _, still := locs[victim]; still {
					t.Fatalf("session %d still on drained replica", sid)
				}
				best := 0
				for _, got := range locs {
					if got > best {
						best = got
					}
				}
				if best < tokens {
					t.Fatalf("session %d shrank in drain: %d -> %d", sid, tokens, best)
				}
				if soleCopy[sid] && lastFinish[sid] < drainAt {
					strong++
					if len(locs) != 1 {
						t.Fatalf("idle sole-copy session %d duplicated by drain: %v", sid, locs)
					}
					if best != tokens {
						t.Fatalf("idle session %d migrated with %d tokens, had %d", sid, best, tokens)
					}
				}
			}
			if len(preDrain) == 0 {
				t.Skip("victim held no sessions at drain time (unlucky draw)")
			}
			t.Logf("victim held %d sessions, %d verified as exact sole-copy migrations", len(preDrain), strong)
			if res.Migrations.Count == 0 || res.Migrations.Tokens == 0 {
				t.Fatal("drain reported no migrations despite resident sessions")
			}
			if res.Migrations.Time <= 0 {
				t.Fatal("migrations took zero link time")
			}
			// Drain events present and ordered: drain before retire.
			var drainT, retireT time.Duration = -1, -1
			for _, ev := range res.Events {
				if ev.Replica == victim && ev.Kind == "drain" {
					drainT = ev.At
				}
				if ev.Replica == victim && ev.Kind == "retire" {
					retireT = ev.At
				}
			}
			if drainT < 0 || retireT < 0 || retireT < drainT {
				t.Fatalf("drain/retire events missing or inverted: drain %v retire %v", drainT, retireT)
			}
			// Retired replicas stop accruing replica-seconds.
			if res.ReplicaSeconds >= 3*res.End.Seconds() {
				t.Fatalf("replica-seconds %.3f not reduced by retirement (end %.3fs)", res.ReplicaSeconds, res.End.Seconds())
			}
		})
	}
}

// TestAddReplicaWarmup: a provisioned replica takes no traffic until its
// warm-up elapses, then serves; it accrues replica-seconds from
// provisioning.
func TestAddReplicaWarmup(t *testing.T) {
	scripts := chatScripts(30, 10, 0.2, 9)
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 1, Policy: NewLeastLoaded()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	feed := FeedSessions(g, scripts, true)

	const warmup = 2 * time.Second
	provisionAt := simevent.FromSeconds(1)
	sim.At(simevent.Time(provisionAt), func() {
		idx, err := g.AddReplica(warmup)
		if err != nil {
			t.Errorf("AddReplica: %v", err)
		}
		if idx != 1 {
			t.Errorf("new replica index %d, want 1", idx)
		}
		if g.replicas[1].state != ReplicaWarming {
			t.Errorf("new replica state %v, want warming", g.replicas[1].state)
		}
		if g.ActiveReplicas() != 1 || g.ProvisionedReplicas() != 2 {
			t.Errorf("active %d provisioned %d, want 1/2", g.ActiveReplicas(), g.ProvisionedReplicas())
		}
	})
	// Just before activation: still no traffic on the warming replica.
	sim.At(simevent.Time(provisionAt+warmup-time.Millisecond), func() {
		if g.replicas[1].stats.Requests != 0 {
			t.Error("warming replica served traffic before activation")
		}
	})
	sim.Run()

	if feed.Completed() != feed.Total() {
		t.Fatalf("%d of %d completed", feed.Completed(), feed.Total())
	}
	if g.replicas[1].state != ReplicaActive {
		t.Fatalf("replica 1 state %v after warm-up", g.replicas[1].state)
	}
	if g.replicas[1].stats.Requests == 0 {
		t.Fatal("activated replica served nothing despite load")
	}
	res := g.Finalize()
	// Replica 1 is charged from provisioning (t=1s) to the end.
	want := res.End.Seconds() + (res.End - provisionAt).Seconds()
	if diff := res.ReplicaSeconds - want; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("replica-seconds %.6f, want %.6f", res.ReplicaSeconds, want)
	}
	var sawProvision, sawActive bool
	for _, ev := range res.Events {
		if ev.Replica == 1 && ev.Kind == "provision" {
			sawProvision = true
		}
		if ev.Replica == 1 && ev.Kind == "active" {
			if !sawProvision {
				t.Fatal("active event before provision event")
			}
			sawActive = true
			if got := ev.At - provisionAt; got != warmup {
				t.Fatalf("activation after %v, want %v", got, warmup)
			}
		}
	}
	if !sawProvision || !sawActive {
		t.Fatal("provision/active events missing")
	}
}

// TestDrainGuards covers the drain error paths.
func TestDrainGuards(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewLeastLoaded()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.DrainReplica(5); err == nil {
		t.Error("drain of unknown replica accepted")
	}
	if err := g.DrainReplica(1); err != nil {
		t.Errorf("drain of idle replica failed: %v", err)
	}
	if err := g.DrainReplica(1); err == nil {
		t.Error("double drain accepted")
	}
	if err := g.DrainReplica(0); err == nil {
		t.Error("drain of last active replica accepted")
	}
}

// TestRoutedMigrationMovesHotSession: when a session's home replica is
// buried under unrelated load, MigratingAffinity moves its KV to the idle
// replica instead of recomputing — visible as a "route" migration and a
// relocated cache entry.
func TestRoutedMigrationMovesHotSession(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewMigratingAffinity()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	id := int64(1)

	// Turn 0: lands somewhere, warms that replica.
	submit := func(reqID int, e workload.Entry, at time.Duration) {
		r := &serving.Request{
			ID: kvcache.RequestID(reqID), InputLen: e.InputLen, OutputLen: e.OutputLen,
			Arrival: simevent.Time(at),
		}
		sim.At(simevent.Time(at), func() { g.Submit(r, e) })
	}
	turn0 := workload.Entry{InputLen: 30_000, OutputLen: 100, SessionID: id, Turn: 0, PrefixLen: 0}
	submit(1, turn0, 0)

	var home int
	sim.At(simevent.Time(time.Second), func() {
		locs := g.SessionLocations(id)
		if len(locs) != 1 {
			t.Errorf("session resident on %d replicas, want 1", len(locs))
			return
		}
		for i := range locs {
			home = i
		}
		// Bury the home replica under stateless load, then resubmit the
		// session: the policy should migrate it to the idle replica.
		flood := workload.Entry{InputLen: 500_000, OutputLen: 1000}
		r := &serving.Request{ID: 2, InputLen: flood.InputLen, OutputLen: flood.OutputLen, Arrival: sim.Now()}
		g.replicas[home].outTokens += 2_000_000 // synthetic backlog, settled below
		g.Submit(r, flood)
		_ = r
	})
	turn1 := workload.Entry{InputLen: 30_400, OutputLen: 100, SessionID: id, Turn: 1, PrefixLen: 30_100}
	submit(3, turn1, 2*time.Second)
	sim.At(simevent.Time(3*time.Second), func() {
		g.replicas[home].outTokens -= 2_000_000 // let the run drain cleanly
	})
	sim.Run()

	res := g.Finalize()
	if g.Completed() != 3 {
		t.Fatalf("%d of 3 requests completed", g.Completed())
	}
	routed := 0
	for _, ev := range res.Events {
		if ev.Kind == "migrate" {
			routed++
		}
	}
	if routed == 0 || res.Migrations.Count == 0 {
		t.Fatal("no routed migration despite hard affinity/load conflict")
	}
	locs := g.SessionLocations(id)
	if len(locs) != 1 {
		t.Fatalf("session on %d replicas after migration, want 1", len(locs))
	}
	if _, still := locs[home]; still {
		t.Fatalf("session still on overloaded home %d: %v", home, locs)
	}
}
