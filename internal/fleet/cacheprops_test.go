package fleet

import (
	"math/rand"
	"testing"

	"loongserve/internal/workload"
)

// checkPrefixCacheInvariants verifies the whole-key cache's structural
// invariants: token accounting matches the resident set, capacity is never
// exceeded, and the entries map and LRU list describe the same entries.
func checkPrefixCacheInvariants(t *testing.T, c *PrefixCache, step int) {
	t.Helper()
	sum, n := 0, 0
	for el := c.lru.front(); el != nil; el = c.lru.next(el) {
		if el.tokens <= 0 {
			t.Fatalf("step %d: resident entry %x has %d tokens", step, el.key, el.tokens)
		}
		if got, ok := c.entries[el.key]; !ok || got != el {
			t.Fatalf("step %d: list entry %x not (or wrongly) indexed in map", step, el.key)
		}
		sum += el.tokens
		n++
	}
	if sum != c.used {
		t.Fatalf("step %d: used %d != sum of resident tokens %d", step, c.used, sum)
	}
	if c.used > c.capacity {
		t.Fatalf("step %d: used %d exceeds capacity %d", step, c.used, c.capacity)
	}
	if n != len(c.entries) || n != c.lru.len() {
		t.Fatalf("step %d: %d list entries, %d map entries, list len %d", step, n, len(c.entries), c.lru.len())
	}
}

// TestPrefixCacheInvariantsUnderRandomOps drives the whole-key cache
// through random Put/Install/Remove/Lookup/Peek sequences — admission on
// and off — checking invariants after every operation. Deterministic per
// seed.
func TestPrefixCacheInvariantsUnderRandomOps(t *testing.T) {
	for _, admission := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			c := NewPrefixCache(5000, admission)
			for step := 0; step < 4000; step++ {
				key := SessionKey(int64(rng.Intn(24))) // includes the inert zero key
				if rng.Intn(3) == 0 {
					key = GroupKey(rng.Intn(8))
				}
				tokens := rng.Intn(6500) - 200 // includes <= 0 and > capacity
				switch rng.Intn(5) {
				case 0:
					c.Put(key, tokens)
				case 1:
					c.Install(key, tokens)
				case 2:
					c.Remove(key)
				case 3:
					c.Lookup(key)
				case 4:
					c.Peek(key)
				}
				checkPrefixCacheInvariants(t, c, step)
			}
		}
	}
}

// checkRadixCacheInvariants verifies the radix cache's structural
// invariants: block accounting, capacity, parent residency and child
// counts, and exact agreement between the leaf set and the eviction heap.
func checkRadixCacheInvariants(t *testing.T, c *RadixCache, step int) {
	t.Helper()
	if c.used != len(c.blocks)*c.blockTokens {
		t.Fatalf("step %d: used %d != %d blocks x %d", step, c.used, len(c.blocks), c.blockTokens)
	}
	if c.used > c.capacity {
		t.Fatalf("step %d: used %d exceeds capacity %d", step, c.used, c.capacity)
	}
	kids := make(map[*radixNode]int)
	for h, n := range c.blocks {
		if n.ref.hash != h {
			t.Fatalf("step %d: node indexed under %x claims hash %x", step, h, n.ref.hash)
		}
		if got := c.index.lookup(h); got == nil || got != n.ref {
			t.Fatalf("step %d: resident block %x not named by the index", step, h)
		}
		if n.parent != nil {
			if c.blocks[n.parent.ref.hash] != n.parent {
				t.Fatalf("step %d: node %x has non-resident parent %x", step, h, n.parent.ref.hash)
			}
			if n.ref.depth != n.parent.ref.depth+1 {
				t.Fatalf("step %d: node %x depth %d under parent depth %d", step, h, n.ref.depth, n.parent.ref.depth)
			}
			if n.ref.parent != n.parent.ref {
				t.Fatalf("step %d: node %x residency parent disagrees with index parent", step, h)
			}
			kids[n.parent]++
		} else if n.ref.depth != 0 {
			t.Fatalf("step %d: parentless node %x at depth %d", step, h, n.ref.depth)
		}
	}
	leaves := 0
	for _, n := range c.blocks {
		if got := kids[n]; got != n.kids {
			t.Fatalf("step %d: node %x kids %d, actual children %d", step, n.ref.hash, n.kids, got)
		}
		if n.kids == 0 {
			leaves++
			if n.heapIdx < 0 || n.heapIdx >= len(c.leaves) || c.leaves[n.heapIdx] != n {
				t.Fatalf("step %d: leaf %x not in heap (idx %d)", step, n.ref.hash, n.heapIdx)
			}
		} else if n.heapIdx != -1 {
			t.Fatalf("step %d: interior node %x still in heap at %d", step, n.ref.hash, n.heapIdx)
		}
	}
	if leaves != len(c.leaves) {
		t.Fatalf("step %d: %d leaves, heap holds %d", step, leaves, len(c.leaves))
	}
	for i := 1; i < len(c.leaves); i++ {
		if leafLess(c.leaves[i], c.leaves[(i-1)/2]) {
			t.Fatalf("step %d: heap order violated at %d", step, i)
		}
	}
}

// TestRadixCacheInvariantsUnderRandomOps drives the radix cache through
// random Put/Install/RemoveExclusive/Lookup/MatchTokens sequences over
// realistically shaped chains — generated from a branching session
// workload, so they share system prompts and trunk prefixes — checking
// invariants after every operation. Deterministic per seed.
func TestRadixCacheInvariantsUnderRandomOps(t *testing.T) {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 16
	cfg.BranchFactor = 4
	cfg.BranchTurns = 2
	var chains [][]uint64
	for _, s := range workload.SessionScripts(cfg, 3) {
		for turn := range s.Turns {
			e := s.Entry(turn)
			chains = append(chains, e.Blocks, e.InputBlocks())
		}
	}
	cost := func(start, tokens int) float64 { return float64(start + tokens) }
	for _, admission := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			c := NewRadixCache(20*workload.BlockTokens, workload.BlockTokens, admission, cost)
			for step := 0; step < 3000; step++ {
				chain := chains[rng.Intn(len(chains))]
				if rng.Intn(16) == 0 {
					chain = nil // empty chains must be inert
				}
				switch rng.Intn(5) {
				case 0:
					c.Put(chain)
				case 1:
					c.Install(chain, rng.Intn(24*workload.BlockTokens))
				case 2:
					c.RemoveExclusive(chain)
				case 3:
					c.Lookup(chain)
				case 4:
					c.MatchTokens(chain)
				}
				checkRadixCacheInvariants(t, c, step)
			}
		}
	}
}
