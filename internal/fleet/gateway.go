package fleet

import (
	"fmt"
	"sort"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/controlplane"
	"loongserve/internal/costmodel"
	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// ReplicaState is a replica's lifecycle position. Replicas are born
// warming (provisioned but not yet routable — model loading, cache
// warm-up), serve traffic while active, stop accepting arrivals while
// draining (in-flight requests finish, resident session KV migrates to
// survivors), and are retired once empty. Retired replicas stop accruing
// replica-seconds. Failed is the abnormal exit: a crash destroys the
// replica's resident KV and kills its in-flight work with no drain — the
// gateway recovers affected requests on survivors (see CrashReplica).
type ReplicaState int

// Replica lifecycle states, in order.
const (
	ReplicaWarming ReplicaState = iota
	ReplicaActive
	ReplicaDraining
	ReplicaRetired
	ReplicaFailed
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaWarming:
		return "warming"
	case ReplicaActive:
		return "active"
	case ReplicaDraining:
		return "draining"
	case ReplicaRetired:
		return "retired"
	case ReplicaFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ReplicaInfo is the control-plane view of one replica, consumed by
// autoscaling controllers.
type ReplicaInfo struct {
	State ReplicaState
	// Kind names the replica's kind; CostUnits and MaxContext mirror the
	// kind's capability sheet, so kind-aware controllers can weigh
	// drain victims without a kind lookup.
	Kind              string
	CostUnits         float64
	MaxContext        int
	OutstandingTokens int // gateway-accounted in-flight prompt+output tokens
	OutstandingReqs   int
	QueueDepth        int // engine-reported total in-flight when available
	// QueuedReqs is the engine's admission queue: arrived requests not yet
	// admitted into any batch (serving.LoadReporter's Queued). A useful
	// overload signal for engines that admit serially — but beware that
	// admission-eager engines (vLLM-style continuous batching) keep this
	// near zero even under heavy load, which is why the default autoscale
	// controller keys on QueueDepth instead. Engines without LoadReporter
	// fall back to the gateway's outstanding count.
	QueuedReqs int
	CacheUsed  int // resident prefix-KV tokens
}

// replica is one engine plus its private environment, cache and the
// gateway's load accounting. It implements ReplicaView. Exactly one of
// cache (whole-key mode) and radix (radix mode) is non-nil.
type replica struct {
	index  int
	kind   *ReplicaKind
	engine serving.Engine
	env    *serving.Env
	cache  *PrefixCache
	radix  *RadixCache

	state         ReplicaState
	provisionedAt simevent.Time
	retiredAt     simevent.Time // also the crash instant for Failed replicas
	migrationsOut int           // KV transfers still in flight off this replica
	migInTokens   int           // KV tokens in flight toward this replica (drain targeting)

	// stalledUntil defers engine arrivals while a stall fault is active —
	// the straggler model request hedging is measured against.
	stalledUntil simevent.Time
	// sink is the engine's gated obs sink: crashing the replica flips it
	// dead so the still-simulating engine's ghost events never reach the
	// stream. Nil when observability is off or the engine is not Traceable.
	sink *gatedSink
	// buf collects this replica's completions and obs events during a
	// sharded run's parallel phase, for ordered replay at the next barrier
	// (shard.go). Nil on the legacy single-heap runner.
	buf *shardBuf

	outTokens int // routed prompt+output tokens not yet completed
	outReqs   int
	stats     ReplicaStats
}

// OutstandingTokens implements ReplicaView.
func (rep *replica) OutstandingTokens() int { return rep.outTokens }

// Index implements DirectoryLocator: the replica's stable fleet index,
// which is also its global-cache-directory location. The active-views
// slice a policy sees is compacted — after a crash or drain, slice
// position i is NOT replica i — so directory reads must go through this.
func (rep *replica) Index() int { return rep.index }

// Capability implements ReplicaView: the replica kind's derived sheet.
func (rep *replica) Capability() ReplicaCapability { return rep.kind.Capability() }

// QueueDepth implements ReplicaView: engine-reported when available.
func (rep *replica) QueueDepth() int {
	if lr, ok := rep.engine.(serving.LoadReporter); ok {
		return lr.Load().Outstanding()
	}
	return rep.outReqs
}

// CachedTokens implements ReplicaView: the usable hit, side-effect free.
// In radix mode the chain match is inherently bounded by what previous
// completions inserted, so no PrefixLen clamp is needed; shared system
// prompts and branched trunks are covered structurally by the chain.
func (rep *replica) CachedTokens(req RequestInfo) int {
	if rep.radix != nil {
		return min(req.InputLen, rep.radix.MatchTokens(req.Blocks))
	}
	if req.SessionKey != 0 {
		if c := rep.cache.Peek(req.SessionKey); c > 0 {
			return min(req.PrefixLen, c)
		}
	}
	if req.SharedKey != 0 {
		if c := rep.cache.Peek(req.SharedKey); c > 0 {
			return min(req.SharedLen, c)
		}
	}
	return 0
}

// SessionTokens implements ReplicaView: the session-private resident KV,
// which is what a migration could move (shared prompts are excluded — they
// are replicated, not owned). The radix analogue subtracts the blocks
// fully covered by the shared system prompt from the matched path; blocks
// shared with a branch sibling count as owned by both, a deliberate
// approximation (either branch moving them re-installs them for both).
func (rep *replica) SessionTokens(req RequestInfo) int {
	if req.SessionKey == 0 {
		return 0
	}
	if rep.radix != nil {
		shared := req.SharedLen / rep.radix.BlockTokens() * rep.radix.BlockTokens()
		return max(0, rep.radix.MatchTokens(req.Blocks)-shared)
	}
	return min(req.PrefixLen, rep.cache.Peek(req.SessionKey))
}

// lookup is CachedTokens with the access recorded (recency, frequency,
// hit counters) — called once, on the replica the policy picked.
func (rep *replica) lookup(req RequestInfo) int {
	if rep.radix != nil {
		return min(req.InputLen, rep.radix.Lookup(req.Blocks))
	}
	if req.SessionKey != 0 {
		if c := rep.cache.Lookup(req.SessionKey); c > 0 {
			return min(req.PrefixLen, c)
		}
	}
	if req.SharedKey != 0 {
		if c := rep.cache.Lookup(req.SharedKey); c > 0 {
			return min(req.SharedLen, c)
		}
	}
	return 0
}

// cacheUsed/cacheLen/cacheEvicted/cacheRejected dispatch the accounting
// reads over whichever cache implementation the replica runs.
func (rep *replica) cacheUsed() int {
	if rep.radix != nil {
		return rep.radix.Used()
	}
	return rep.cache.Used()
}

func (rep *replica) cacheLen() int {
	if rep.radix != nil {
		return rep.radix.Len()
	}
	return rep.cache.Len()
}

func (rep *replica) cacheEvicted() int {
	if rep.radix != nil {
		return rep.radix.Evicted
	}
	return rep.cache.Evicted
}

func (rep *replica) cacheRejected() int {
	if rep.radix != nil {
		return rep.radix.Rejected
	}
	return rep.cache.Rejected
}

// inflight tracks one routed, unfinished request.
type inflight struct {
	rep       *replica
	entry     workload.Entry
	fullInput int
	effInput  int
	hit       int

	// Original request parameters, retained so crash recovery and hedging
	// can clone the request without the driver's help.
	arrival simevent.Time
	output  int
	slo     time.Duration

	// gen increments on every reuse of this record; deferred closures
	// (hedge timers, stall deferrals) capture it so a recycled record never
	// satisfies a stale guard.
	gen uint64

	// Hedge linkage. A primary with a launched copy carries the copy's ID
	// in hedgeID; the copy carries its primary's ID in hedgeOf (0 = this is
	// a primary) and the primary's replica index in peerRep.
	hedgeID kvcache.RequestID
	hedgeOf kvcache.RequestID
	peerRep int

	// recovered marks a crash-recovery re-submission: its completion is
	// kept out of the hedge TTFT baseline (best effort — the flag rides the
	// direct-delivery path only).
	recovered bool

	// delivered flips when the engine actually receives the request
	// (arriveOrStall may defer it through a stall). A cancelled copy that
	// never reached its engine settles its load inline instead of
	// ghosting — there will never be an engine completion to settle it.
	delivered bool
}

// gatedSink forwards engine events until the replica dies. All access is
// on the simulation goroutine.
type gatedSink struct {
	sink obs.Sink
	dead bool
}

// Emit implements obs.Sink.
func (s *gatedSink) Emit(e obs.Event) {
	if !s.dead {
		s.sink.Emit(e)
	}
}

// Gateway is an elastic multi-replica front end on one discrete-event
// clock: it routes requests through a Policy over the currently active
// replicas, provisions new replicas (AddReplica) with a warm-up delay, and
// drains replicas (DrainReplica) by migrating their live sessions' KV to
// survivors over the inter-node link. All state changes happen on
// simulator events, so runs are deterministic.
type Gateway struct {
	sim    *simevent.Sim
	cfg    Config
	policy Policy

	// defaultKind is the kind AddReplica provisions (the first group's);
	// kinds tracks every distinct kind that has built a replica, so event
	// details mention kinds exactly when the fleet is heterogeneous.
	defaultKind *ReplicaKind
	kinds       map[*ReplicaKind]bool

	replicas []*replica
	pending  map[kvcache.RequestID]*inflight

	// ctl is the control plane: replica lifecycle changes (activation,
	// drains, crash repair) travel as typed controlplane messages between
	// the fleet manager and each replica's instance server, so epochs,
	// acks/naks and metadata-cache resends are exercised by every run.
	ctl *fleetControl

	// ghosts holds cancelled inflights — hedge losers whose engines run to
	// completion regardless (engines cannot cancel). Their completions
	// settle load accounting and are otherwise dropped.
	ghosts map[kvcache.RequestID]*inflight

	// Hedging state: the distribution of observed TTFT seconds per
	// prefilled token, and a memoized quantile of it (recomputed only when
	// the sample count changed).
	hedgeDist   metrics.Dist
	hedgeQ      float64
	hedgeQAtN   int

	// sessionHome tracks, per session cache key, the replica that currently
	// owns (or is about to receive) the session's KV — the gateway's routing
	// table for migration handoffs.
	sessionHome map[PrefixKey]int

	// sessionChain tracks, per session cache key, the longest block-hash
	// chain any completion of the session has produced — the tree path a
	// radix-mode migration or drain moves. Unused in whole-key mode.
	sessionChain map[PrefixKey][]uint64

	// Global cache directory and cold KV tier (directory.go, coldtier.go).
	// dir is non-nil when Config.Directory (or ColdTierTokens) is set —
	// every replica cache then carries a dirShim observer keeping it
	// coherent. sharedIndex is the fleet-wide naming trie in radix mode
	// (replica caches and the cold tier refcount into one index); cold is
	// the host-memory spill pool, nil when off.
	dir         *CacheDirectory
	sharedIndex *RadixIndex
	cold        *coldTier

	// Link-degradation fault window (DegradeLinks): while sim time is
	// before degradeUntil, every link transfer — drains, migrations, cold
	// fetches — costs degradeFactor times its nominal delay, and policies
	// pricing migrations see the same inflated cost.
	degradeUntil  simevent.Time
	degradeFactor float64

	res *Result
	// Reference configuration: the first group's kind prices migrations
	// and (unless Config.SLOKind overrides) SLO budgets, exactly as
	// replica 0 always has for homogeneous fleets.
	cm0         *costmodel.CostModel
	refGPUs     int          // reference kind's GPUs (SLO reference config)
	refKVCap    int          // reference kind's KV pool capacity, token slots
	sloKind     *ReplicaKind // budget reference (Config.SLOKind or first group's kind)
	interLink   cluster.Link // replica-to-replica channel (inter-node IB)
	prefillRate float64      // tokens/s the reference kind prefills at, for migrate-vs-recompute

	completed int

	// Hot-path scratch and memoization. activeScratch/viewScratch are
	// rebuilt by every Submit (and only used synchronously within it);
	// flFree recycles inflight records; sloCache memoizes the per-(in, out)
	// SLO budget, which repeats across session turns of similar shape.
	activeScratch []*replica
	viewScratch   []ReplicaView
	flFree        []*inflight
	sloCache      map[[2]int]time.Duration

	// OnComplete, when set, is invoked after the gateway's own accounting
	// for every finished request — the hook closed-loop session drivers use
	// to schedule the next turn.
	OnComplete func(e workload.Entry, rec metrics.Record)

	// Observability (obs.go). obsSink/sampler mirror Config.Obs/Sampler;
	// policyLabel caches the policy name so route events never format;
	// samplerEv is the owned recurring sampling event; obsSessions maps
	// session cache keys back to workload session ids for migrate events
	// (maintained only while a sink is attached).
	obsSink     obs.Sink
	policyLabel string
	sampler     *obs.Sampler
	samplerEv   *simevent.Event
	obsSessions map[PrefixKey]int64

	// shard is the sharded multi-core runner (shard.go), non-nil when
	// Config.Shards > 0. Every replica then owns a private simevent heap
	// (rep.env.Sim != g.sim) and the fleet is static: AddReplica and
	// closed-loop feeds are rejected.
	shard *shardRunner
}

// NewGateway builds a gateway with cfg.Replicas active replicas cloned
// from spec — the homogeneous shim over NewGatewayGroups, bit-identical to
// the pre-composition gateway.
func NewGateway(spec Spec, cfg Config, sim *simevent.Sim) (*Gateway, error) {
	if cfg.Groups != nil {
		return nil, fmt.Errorf("fleet: NewGateway takes a Spec, not Config.Groups (use NewGatewayGroups)")
	}
	if cfg.Replicas <= 0 {
		return nil, fmt.Errorf("fleet: non-positive replica count %d", cfg.Replicas)
	}
	if spec.NewEngine == nil || spec.NewCluster == nil {
		return nil, fmt.Errorf("fleet: Spec needs NewEngine and NewCluster")
	}
	cfg.Groups = []ReplicaGroup{{Kind: NewKind("default", spec), Count: cfg.Replicas}}
	return NewGatewayGroups(cfg, sim)
}

// NewGatewayGroups builds a gateway from the fleet composition cfg.Groups:
// for each group, Count active replicas of Kind, in group order. The
// caller owns the simulator: schedule arrivals via Submit and run it to
// completion, then call Finalize. The first group's kind is the reference
// configuration for migration pricing and (unless cfg.SLOKind overrides)
// SLO budgets.
func NewGatewayGroups(cfg Config, sim *simevent.Sim) (*Gateway, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("fleet: empty fleet composition")
	}
	total := 0
	for i, gr := range cfg.Groups {
		if gr.Kind == nil {
			return nil, fmt.Errorf("fleet: group %d has no kind", i)
		}
		if gr.Kind.Name == "" {
			return nil, fmt.Errorf("fleet: group %d kind has no name", i)
		}
		if gr.Count < 0 {
			return nil, fmt.Errorf("fleet: group %d (%s) has negative count %d", i, gr.Kind.Name, gr.Count)
		}
		total += gr.Count
	}
	if total <= 0 {
		return nil, fmt.Errorf("fleet: composition provisions no replicas")
	}
	if cfg.Policy == nil {
		cfg.Policy = NewLeastLoaded()
	}
	if cfg.SLOScale == 0 {
		cfg.SLOScale = serving.DefaultRunConfig().SLOScale
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200_000_000
	}
	switch cfg.Cache {
	case "", CacheWholeKey, CacheRadix:
	default:
		return nil, fmt.Errorf("fleet: unknown cache %q (want %q or %q)", cfg.Cache, CacheWholeKey, CacheRadix)
	}
	if err := cfg.Hedge.validate(); err != nil {
		return nil, err
	}
	cfg.Hedge = cfg.Hedge.withDefaults()
	if cfg.ColdTierTokens < 0 {
		return nil, fmt.Errorf("fleet: negative cold-tier capacity %d", cfg.ColdTierTokens)
	}
	if cfg.ColdTierTokens > 0 {
		if cfg.Cache != CacheRadix {
			return nil, fmt.Errorf("fleet: the cold KV tier requires the radix cache (Cache=%q)", CacheRadix)
		}
		cfg.Directory = true // spills register at DirCold; fetches route off it
	}
	if err := validateSharded(cfg); err != nil {
		return nil, err
	}
	sim.MaxEvents = cfg.MaxEvents

	g := &Gateway{
		sim:          sim,
		cfg:          cfg,
		policy:       cfg.Policy,
		defaultKind:  cfg.Groups[0].Kind,
		kinds:        make(map[*ReplicaKind]bool),
		pending:      make(map[kvcache.RequestID]*inflight),
		ghosts:       make(map[kvcache.RequestID]*inflight),
		sessionHome:  make(map[PrefixKey]int),
		sessionChain: make(map[PrefixKey][]uint64),
		res:          &Result{Policy: cfg.Policy.Name()},
		sloCache:     make(map[[2]int]time.Duration),
		ctl:          newFleetControl(),
	}
	if cfg.StreamMetrics {
		g.res.Acc = &metrics.Accumulator{}
	}
	g.attachObs()
	if cfg.Directory {
		// The directory (and in radix mode the shared naming index) must
		// exist before any replica builds: newReplica wires each cache's
		// observer shim at construction.
		g.dir = NewCacheDirectory(workload.BlockTokens)
		if cfg.Cache == CacheRadix {
			g.sharedIndex = NewRadixIndex()
		}
		if da, ok := g.policy.(DirectoryAware); ok {
			da.AttachDirectory(g.dir)
		}
	}
	for _, gr := range cfg.Groups {
		for i := 0; i < gr.Count; i++ {
			rep, err := g.newReplica(gr.Kind)
			if err != nil {
				g.ctl.close()
				return nil, err
			}
			rep.state = ReplicaActive
		}
	}
	if cfg.Shards > 0 {
		g.shard = newShardRunner(g, cfg.Shards)
	}
	// The initial composition is the control-plane group's epoch-1
	// membership (construction is not a lifecycle *change*; every scale-up,
	// drain and crash repair after this travels as a ScalePlan).
	if err := g.ctl.createGroup(g.activeIDs()); err != nil {
		g.ctl.close()
		return nil, fmt.Errorf("fleet: control-plane group creation: %w", err)
	}
	// The reference kind may have provisioned no replica yet (a zero-count
	// first group under autoscaling); resolve it — and the SLO override —
	// by probe so pricing is available before the first scale-up.
	if err := g.defaultKind.Resolve(); err != nil {
		g.ctl.close()
		return nil, err
	}
	g.sloKind = g.defaultKind
	if cfg.SLOKind != nil {
		if err := cfg.SLOKind.Resolve(); err != nil {
			g.ctl.close()
			return nil, err
		}
		g.sloKind = cfg.SLOKind
	}
	ref := g.defaultKind
	g.cm0 = ref.cm
	g.refGPUs = ref.GPUs
	g.refKVCap = ref.KVCapacity
	g.interLink = ref.ibLink
	g.prefillRate = ref.PrefillRate
	if cfg.ColdTierTokens > 0 {
		// Cold-tier eviction is priced at the reference kind: host memory
		// is fleet-shared, so there is no single "local" replica to price
		// against, and homogeneous fleets make the choice exact.
		coldCost := func(start, tokens int) float64 {
			full := ref.cm.PrefillIterTime([]int{start + tokens}, 1, ref.GPUs, ref.nvlink)
			if start == 0 {
				return full.Seconds()
			}
			return (full - ref.cm.PrefillIterTime([]int{start}, 1, ref.GPUs, ref.nvlink)).Seconds()
		}
		g.cold = newColdTier(g, g.sharedIndex, cfg.ColdTierTokens, workload.BlockTokens, coldCost)
	}
	return g, nil
}

// hetero reports whether more than one distinct kind has built replicas —
// the switch that adds kind names to lifecycle event details.
func (g *Gateway) hetero() bool { return len(g.kinds) > 1 }

// newReplica constructs and registers the next replica of the given kind
// (initially warming; the caller or activation event flips it active). The
// first replica of a kind also resolves the kind's capability sheet.
func (g *Gateway) newReplica(kind *ReplicaKind) (*replica, error) {
	i := len(g.replicas)
	if kind.Spec.NewEngine == nil || kind.Spec.NewCluster == nil {
		return nil, fmt.Errorf("fleet: kind %q needs NewEngine and NewCluster", kind.Name)
	}
	c, err := kind.Spec.NewCluster()
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d cluster: %w", i, err)
	}
	cacheCap := g.cfg.CacheTokens
	if cacheCap == 0 {
		for _, inst := range c.Instances {
			cacheCap += inst.KVCapacity
		}
	}
	rep := &replica{
		index:         i,
		kind:          kind,
		engine:        kind.Spec.NewEngine(),
		state:         ReplicaWarming,
		provisionedAt: g.sim.Now(),
	}
	rep.stats.Kind = kind.Name
	rep.env = &serving.Env{
		Sim:     g.sim,
		Cluster: c,
		CM:      costmodel.New(c.Model, c.HW),
		Pool:    c.NewPool(),
	}
	if g.cfg.Cache == CacheRadix {
		// Eviction is priced by the replica's own cost model: a block at
		// context offset `start` costs the marginal prefill time of its
		// tokens on the replica's reference configuration — deep blocks are
		// dearer per KV token freed than shallow ones.
		cm := rep.env.CM
		gpus := 0
		for _, inst := range c.Instances {
			gpus += inst.TP
		}
		nvlink := cluster.Link{Bandwidth: c.HW.NVLinkBandwidth, Latency: c.HW.NVLinkLatency}
		cost := func(start, tokens int) float64 {
			full := cm.PrefillIterTime([]int{start + tokens}, 1, gpus, nvlink)
			if start == 0 {
				return full.Seconds()
			}
			return (full - cm.PrefillIterTime([]int{start}, 1, gpus, nvlink)).Seconds()
		}
		if g.sharedIndex != nil {
			rep.radix = NewRadixCacheIndexed(g.sharedIndex, cacheCap, workload.BlockTokens, !g.cfg.NoAdmission, cost)
		} else {
			rep.radix = NewRadixCache(cacheCap, workload.BlockTokens, !g.cfg.NoAdmission, cost)
		}
		if g.dir != nil {
			rep.radix.setObserver(&dirShim{g: g, rep: rep})
		}
	} else {
		rep.cache = NewPrefixCache(cacheCap, !g.cfg.NoAdmission)
		if g.dir != nil {
			rep.cache.setObserver(&dirShim{g: g, rep: rep})
		}
	}
	if g.cfg.Shards > 0 {
		// Sharded runner: the engine lives on a private heap and reports
		// completions (and, below, obs events) into the replica's barrier
		// buffer instead of straight into the gateway.
		rs := simevent.New()
		rs.MaxEvents = g.cfg.MaxEvents
		rep.env.Sim = rs
		rep.buf = &shardBuf{}
		rep.env.Complete = func(r *serving.Request) { rep.buf.complete(rs.Now(), r) }
	} else {
		rep.env.Complete = func(r *serving.Request) { g.complete(rep, r) }
	}
	if g.cfg.FuseDecode {
		if df, ok := rep.engine.(serving.DecodeFuser); ok {
			df.SetDecodeFusion(true)
		}
	}
	if g.obsSink != nil {
		// Engines that can mirror their elastic events pick up the fleet's
		// sink with this replica's attribution, before Init so nothing is
		// missed. The gate lets a crash silence the engine's remaining
		// simulated events without an engine-side cancel API.
		if tr, ok := rep.engine.(serving.Traceable); ok {
			inner := g.obsSink
			if rep.buf != nil {
				inner = rep.buf
			}
			rep.sink = &gatedSink{sink: inner}
			tr.AttachObsSink(rep.sink, rep.index)
		}
	}
	if err := rep.engine.Init(rep.env); err != nil {
		return nil, fmt.Errorf("fleet: replica %d init: %w", i, err)
	}
	kind.resolveFrom(c, rep.env.CM, rep.engine)
	g.kinds[kind] = true
	g.replicas = append(g.replicas, rep)
	g.ctl.register(rep)
	return rep, nil
}

// PolicyName returns the routing policy's name.
func (g *Gateway) PolicyName() string { return g.policy.Name() }

// Completed returns the number of finished requests.
func (g *Gateway) Completed() int { return g.completed }

// ReplicaKVCapacity returns one replica's KV pool capacity in token slots —
// the natural unit for queue-pressure thresholds.
func (g *Gateway) ReplicaKVCapacity() int { return g.refKVCap }

// SLOBudget returns the latency budget the gateway assigns a request, on
// the single-replica reference configuration (0 when SLOs are disabled).
// Budgets depend only on (in, out), which repeat heavily across session
// turns, so the unloaded-latency evaluation is memoized.
func (g *Gateway) SLOBudget(in, out int) time.Duration {
	if g.cfg.SLOScale <= 0 {
		return 0
	}
	key := [2]int{in, out}
	if d, ok := g.sloCache[key]; ok {
		return d
	}
	d := g.sloKind.SLOBudget(in, out, g.cfg.SLOScale)
	g.sloCache[key] = d
	return d
}

// MigrationTokenCost implements Migrator: the prefill-token-equivalent
// cost of moving n KV tokens between replicas — transfer time over the
// inter-node link, expressed in tokens the replica could have prefilled in
// that time. A MigrationAware policy migrates when the load gap exceeds
// this cost.
func (g *Gateway) MigrationTokenCost(n int) float64 {
	if n <= 0 {
		return 0
	}
	return g.migrationDelay(n).Seconds() * g.prefillRate
}

// MigrationSeconds implements Migrator: the link time to move n KV tokens
// between replicas, in seconds — the denomination capability-aware
// policies score in (their replica speeds differ, so a token-equivalent on
// the reference kind would be ambiguous).
func (g *Gateway) MigrationSeconds(n int) float64 {
	if n <= 0 {
		return 0
	}
	return g.migrationDelay(n).Seconds()
}

// migrationDelay returns the link time to move n KV tokens between two
// replicas (distinct nodes, so the InfiniBand channel), inflated by any
// active link-degradation fault window. Pricing through the same function
// policies consult means a degraded link honestly discourages migrations
// and cold fetches for as long as it lasts.
func (g *Gateway) migrationDelay(n int) time.Duration {
	d := g.cm0.ReactiveMigrationTime(n, g.interLink)
	if g.degradeFactor > 1 && g.sim.Now() < g.degradeUntil {
		d = time.Duration(float64(d) * g.degradeFactor)
	}
	return d
}

// ReplicaInfos returns the control-plane snapshot of every replica ever
// provisioned (retired ones included, so indices are stable).
func (g *Gateway) ReplicaInfos() []ReplicaInfo {
	out := make([]ReplicaInfo, len(g.replicas))
	for i, rep := range g.replicas {
		queued := rep.outReqs
		if lr, ok := rep.engine.(serving.LoadReporter); ok {
			queued = lr.Load().Queued
		}
		out[i] = ReplicaInfo{
			State:             rep.state,
			Kind:              rep.kind.Name,
			CostUnits:         rep.kind.CostUnits,
			MaxContext:        rep.kind.MaxContext,
			OutstandingTokens: rep.outTokens,
			OutstandingReqs:   rep.outReqs,
			QueueDepth:        rep.QueueDepth(),
			QueuedReqs:        queued,
			CacheUsed:         rep.cacheUsed(),
		}
	}
	return out
}

// ActiveReplicas returns the count of replicas currently taking traffic.
func (g *Gateway) ActiveReplicas() int {
	n := 0
	for _, rep := range g.replicas {
		if rep.state == ReplicaActive {
			n++
		}
	}
	return n
}

// ProvisionedReplicas returns the count of replicas currently accruing
// cost: warming, active or draining. Failed replicas, like retired ones,
// have stopped costing anything.
func (g *Gateway) ProvisionedReplicas() int {
	n := 0
	for _, rep := range g.replicas {
		if rep.state != ReplicaRetired && rep.state != ReplicaFailed {
			n++
		}
	}
	return n
}

// activeIDs returns the control-plane instance IDs (replica indices) of
// the currently active replicas, index-ordered.
func (g *Gateway) activeIDs() []kvcache.InstanceID {
	ids := make([]kvcache.InstanceID, 0, len(g.replicas))
	for _, rep := range g.replicas {
		if rep.state == ReplicaActive {
			ids = append(ids, kvcache.InstanceID(rep.index))
		}
	}
	return ids
}

// ControlStats returns the control-plane manager's protocol counters —
// configs pushed, commands, naks, cache-miss resends — the assertion
// surface proving lifecycle changes really travel the wire.
func (g *Gateway) ControlStats() controlplane.Stats { return g.ctl.stats() }

func (g *Gateway) event(kind, cause string, rep int, format string, args ...any) {
	g.res.Events = append(g.res.Events, ScaleEvent{
		At:          time.Duration(g.sim.Now()),
		Kind:        kind,
		Replica:     rep,
		ReplicaKind: g.replicas[rep].kind.Name,
		Cause:       cause,
		Detail:      fmt.Sprintf(format, args...),
	})
	g.emitLifecycle(kind, rep)
}

// AddReplica provisions a new replica of the fleet's default kind (the
// first group's). It joins the routable set after the warm-up delay (model
// load, cache init); it accrues replica-seconds from now. Returns the new
// replica's index.
func (g *Gateway) AddReplica(warmup time.Duration) (int, error) {
	return g.AddReplicaKind(g.defaultKind, warmup)
}

// AddReplicaKind provisions a new replica of the given kind — the
// scale-up primitive of kind-picking autoscalers. The kind need not be
// part of the initial composition.
func (g *Gateway) AddReplicaKind(kind *ReplicaKind, warmup time.Duration) (int, error) {
	if kind == nil {
		return 0, fmt.Errorf("fleet: AddReplicaKind with nil kind")
	}
	if g.shard != nil {
		// Mid-run provisioning would change the replica partition under the
		// worker pool; sharded runs are static fleets by contract.
		return 0, fmt.Errorf("fleet: AddReplica is unsupported on a sharded run (Shards=%d)", g.cfg.Shards)
	}
	rep, err := g.newReplica(kind)
	if err != nil {
		return 0, err
	}
	if g.hetero() {
		g.event("provision", "", rep.index, "kind %s, warm-up %v", kind.Name, warmup)
	} else {
		g.event("provision", "", rep.index, "warm-up %v", warmup)
	}
	if warmup <= 0 {
		g.activate(rep)
	} else {
		g.sim.After(warmup, func() { g.activate(rep) })
	}
	return rep.index, nil
}

// activate flips a warming replica into the routable set, by scaling the
// control-plane group up to include it. The replica's own instance server
// applies the ScalePlan (its handler flips the state); a new instance
// first receives the group config through the metadata-cache push, so
// every activation exercises the config/ack path.
func (g *Gateway) activate(rep *replica) {
	if rep.state != ReplicaWarming {
		return
	}
	members := append(g.activeIDs(), kvcache.InstanceID(rep.index))
	if err := g.ctl.scale(controlplane.ScaleUp, members); err != nil {
		panic(fmt.Sprintf("fleet: control-plane scale-up of replica %d: %v", rep.index, err))
	}
	if rep.state != ReplicaActive {
		panic(fmt.Sprintf("fleet: replica %d is %v after control-plane scale-up", rep.index, rep.state))
	}
	g.event("active", "", rep.index, "serving")
}

// activeSet returns the currently routable replicas, index-ordered, in a
// scratch slice valid until the next Submit or lifecycle change.
func (g *Gateway) activeSet() []*replica {
	out := g.activeScratch[:0]
	for _, rep := range g.replicas {
		if rep.state == ReplicaActive {
			out = append(out, rep)
		}
	}
	g.activeScratch = out
	return out
}

// migrationTarget picks the surviving replica to receive migrated KV: the
// active replica with the least outstanding work, in-flight migrations
// included (so a long drain spreads its sessions instead of dogpiling the
// first target). Ties go to the lowest index. Nil when nothing is active.
func (g *Gateway) migrationTarget(exclude *replica) *replica {
	var best *replica
	for _, rep := range g.replicas {
		if rep.state != ReplicaActive || rep == exclude {
			continue
		}
		if best == nil || rep.outTokens+rep.migInTokens < best.outTokens+best.migInTokens {
			best = rep
		}
	}
	return best
}

// transferSession moves `tokens` KV tokens of session key from src toward
// dst, arriving after `delay`: the session is re-homed immediately (so
// subsequent routing and completions aim at dst), the destination cache is
// installed when the transfer lands. In radix mode `chain` is the tree
// path being moved (nil in whole-key mode) and the install replays it as a
// subtree: shared ancestor blocks the destination already holds are
// deduplicated structurally, missing ones are installed alongside the
// session-private tail. The install is skipped if the session re-homed
// again meanwhile or a fresher (larger) entry already landed.
func (g *Gateway) transferSession(key PrefixKey, chain []uint64, tokens int, src, dst *replica, delay time.Duration, kind string) {
	g.sessionHome[key] = dst.index
	src.migrationsOut++
	dst.migInTokens += tokens
	g.res.Migrations.Count++
	g.res.Migrations.Tokens += int64(tokens)
	g.res.Migrations.Time += g.migrationDelay(tokens)
	g.event("migrate", kind, src.index, "%s: %d KV tokens -> replica %d (link %v)", kind, tokens, dst.index, g.migrationDelay(tokens).Round(time.Microsecond))
	g.emitMigrate(key, src.index, dst.index, tokens, g.migrationDelay(tokens), kind)
	g.sim.After(delay, func() {
		// Install only when the destination still wants it: the session may
		// have re-homed meanwhile, a fresher completion may already have
		// grown the entry, or the destination may itself have begun
		// draining (its cache dies with it — dropping the copy just costs
		// a recompute later, it loses no session).
		if g.sessionHome[key] == dst.index && dst.state == ReplicaActive {
			if dst.radix != nil {
				if dst.radix.MatchTokens(chain) < tokens {
					dst.radix.Install(chain, tokens)
				}
			} else if dst.cache.Peek(key) < tokens {
				dst.cache.Install(key, tokens)
			}
		}
		src.migrationsOut--
		dst.migInTokens -= tokens
		g.maybeRetire(src)
		g.maybeRetire(dst)
	})
}

// DrainReplica begins removing a replica from the fleet: it immediately
// leaves the routable set, every resident session it owns migrates its KV
// to a surviving replica over the inter-node link (transfers serialize on
// the drain link — the paper's reactive-migration cost, paid once at
// scale-in instead of per-request), shared-prompt entries are dropped
// (they are recomputable and usually replicated), and in-flight requests
// run to completion with their freshly produced session KV handed off the
// same way. The replica retires — and stops accruing replica-seconds —
// once it is empty.
func (g *Gateway) DrainReplica(idx int) error {
	if idx < 0 || idx >= len(g.replicas) {
		return fmt.Errorf("fleet: drain of unknown replica %d", idx)
	}
	rep := g.replicas[idx]
	if rep.state != ReplicaActive {
		return fmt.Errorf("fleet: replica %d is %v, not active", idx, rep.state)
	}
	if g.ActiveReplicas() <= 1 {
		return fmt.Errorf("fleet: cannot drain the last active replica")
	}
	// The drain is a control-plane scale-down: the departing replica sees
	// itself absent from the new membership and flips to draining; the
	// group epoch advances for the survivors.
	members := make([]kvcache.InstanceID, 0, len(g.replicas))
	for _, id := range g.activeIDs() {
		if int(id) != idx {
			members = append(members, id)
		}
	}
	if err := g.ctl.scale(controlplane.ScaleDown, members); err != nil {
		return fmt.Errorf("fleet: control-plane scale-down of replica %d: %w", idx, err)
	}
	if rep.state != ReplicaDraining {
		return fmt.Errorf("fleet: replica %d is %v after control-plane scale-down", idx, rep.state)
	}
	g.event("drain", "", idx, "%d in-flight requests, %d cached tokens", rep.outReqs, rep.cacheUsed())

	var delay time.Duration
	if rep.radix != nil {
		// Radix drain: every session homed here moves its resident tree
		// path — the session-private tail is physically removed, shared
		// ancestors ride along and are deduplicated at the destination.
		// sessionHome is iterated in sorted key order so transfer order
		// (and the serialized link delays) replays identically.
		keys := make([]PrefixKey, 0, len(g.sessionHome))
		for key, home := range g.sessionHome {
			if home == idx {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			chain := g.sessionChain[key]
			tokens := rep.radix.MatchTokens(chain)
			if tokens == 0 {
				continue
			}
			rep.radix.RemoveExclusive(chain)
			dst := g.migrationTarget(rep)
			if dst == nil {
				continue // unreachable: >= 1 active replica guaranteed above
			}
			delay += g.migrationDelay(tokens)
			g.transferSession(key, chain, tokens, rep, dst, delay, "drain")
		}
		// Whatever remains — shared prompts, stale short copies — dies with
		// the replica; it is recomputable or replicated elsewhere.
		rep.radix.Clear()
	} else {
		for _, ent := range rep.cache.Snapshot() {
			home, owned := g.sessionHome[ent.Key]
			rep.cache.Remove(ent.Key)
			if !owned || home != idx {
				// Shared prompt-group entries and stale session copies: dropped,
				// not moved — the authoritative KV lives elsewhere or is cheap to
				// recompute from the prompt text.
				continue
			}
			dst := g.migrationTarget(rep)
			if dst == nil {
				continue // unreachable: >= 1 active replica guaranteed above
			}
			delay += g.migrationDelay(ent.Tokens)
			g.transferSession(ent.Key, nil, ent.Tokens, rep, dst, delay, "drain")
		}
	}
	g.maybeRetire(rep)
	return nil
}

// maybeRetire finishes a drain once the replica is empty: no in-flight
// requests, no outbound KV transfers, and no KV (with its deferred
// request) still in flight toward it — retiring under an inbound transfer
// would let a "dead" replica serve work off the books.
func (g *Gateway) maybeRetire(rep *replica) {
	if rep.state != ReplicaDraining || rep.outReqs != 0 || rep.migrationsOut != 0 || rep.migInTokens != 0 {
		return
	}
	rep.state = ReplicaRetired
	rep.retiredAt = g.sim.Now()
	g.event("retire", "", rep.index, "drained")
}

// Submit routes one request. The request's Arrival must equal the current
// simulated time (drivers schedule Submit on arrival events). At least one
// replica is always active: the gateway is born with active replicas and
// DrainReplica refuses to drain the last one.
func (g *Gateway) Submit(r *serving.Request, e workload.Entry) {
	if g.pending[r.ID] != nil {
		panic(fmt.Sprintf("fleet: duplicate request ID %d", r.ID))
	}
	active := g.activeSet()
	if len(active) == 0 {
		panic("fleet: no active replica (gateway invariant violated)")
	}
	info := RequestInfo{
		ID:         r.ID,
		InputLen:   r.InputLen,
		SessionKey: SessionKey(e.SessionID),
		SharedKey:  GroupKey(e.PromptGroup),
		PrefixLen:  e.PrefixLen,
		SharedLen:  e.SharedLen,
		Blocks:     e.InputBlocks(),
	}
	g.emitEnqueue(e.SessionID, r)
	g.noteSession(info.SessionKey, e.SessionID)
	views := g.viewScratch[:0]
	for _, rep := range active {
		views = append(views, rep)
	}
	g.viewScratch = views

	idx, from := 0, -1
	if ma, ok := g.policy.(MigrationAware); ok {
		d := ma.PickMigrate(info, views, g)
		idx, from = d.Dest, d.From
	} else {
		idx = g.policy.Pick(info, views)
	}
	if idx < 0 || idx >= len(active) {
		panic(fmt.Sprintf("fleet: policy %s picked replica %d of %d", g.policy.Name(), idx, len(active)))
	}
	rep := active[idx]
	if g.obsSink != nil {
		src := -1
		if from >= 0 && from < len(active) && from != idx {
			src = active[from].index
		}
		g.emitRoute(e.SessionID, r.ID, rep.index, src)
		if ca, ok := g.policy.(*ContentAffinity); ok && g.dir != nil {
			claim, queue, eligible := ca.LastPick()
			g.emitContentRoute(e.SessionID, r.ID, rep.index, claim, queue, eligible)
		}
	}

	if from >= 0 && from < len(active) && from != idx && info.SessionKey != 0 {
		// The policy chose migrate-over-recompute: move the session's KV to
		// the destination, then deliver the request there — it prefills only
		// the unseen suffix, having paid link time instead of recompute.
		src := active[from]
		var tokens int
		var chain []uint64
		if src.radix != nil {
			chain = g.sessionChain[info.SessionKey]
			if tokens = src.radix.MatchTokens(chain); tokens > 0 {
				src.radix.RemoveExclusive(chain)
			}
		} else if tokens = src.cache.Peek(info.SessionKey); tokens > 0 {
			src.cache.Remove(info.SessionKey)
		}
		if tokens > 0 {
			delay := g.migrationDelay(tokens)
			g.transferSession(info.SessionKey, chain, tokens, src, rep, delay, "route")
			g.sim.After(delay, func() {
				if rep.state != ReplicaActive {
					// The destination began draining mid-transfer: take a
					// fresh routing decision instead of delivering to a
					// replica that no longer accepts arrivals.
					g.Submit(r, e)
					return
				}
				g.deliverMaybeFetch(rep, r, e, info)
			})
			return
		}
	}
	g.deliverMaybeFetch(rep, r, e, info)
}

// deliverMaybeFetch consults the cold tier before delivery: when the
// destination's resident prefix extends by a contiguous cold run and the
// link transfer undercuts the recompute it displaces, the blocks are
// copied over the interconnect first and the request delivers when they
// land. The comparison uses the destination's own cost model for the
// recompute side and the (possibly degraded) migration link for the
// transfer side, so a DegradeLinks window genuinely tilts the decision
// toward recompute. Hedge copies bypass this path — a straggler rescue
// must not queue behind a link transfer.
func (g *Gateway) deliverMaybeFetch(rep *replica, r *serving.Request, e workload.Entry, info RequestInfo) {
	if g.cold == nil || rep.radix == nil || len(info.Blocks) == 0 {
		g.deliver(rep, r, e, info)
		return
	}
	chain := info.Blocks
	n := rep.radix.MatchTokens(chain) / workload.BlockTokens
	k := g.cold.run(chain, n)
	if k == 0 {
		g.deliver(rep, r, e, info)
		return
	}
	link := g.migrationDelay(k * workload.BlockTokens)
	recompute := rep.radix.RecomputeSeconds(n, k)
	if link.Seconds() >= recompute {
		g.deliver(rep, r, e, info)
		return
	}
	g.cold.touchRun(chain, n, k)
	g.emitColdFetch(e.SessionID, r.ID, rep.index, k*workload.BlockTokens, int64(link), int64(recompute*1e9))
	g.sim.After(link, func() {
		if rep.state != ReplicaActive {
			// The destination drained or crashed while the blocks were in
			// flight: re-route from scratch (the request never became
			// pending, so this is a legal re-submission).
			g.Submit(r, e)
			return
		}
		rep.radix.Install(chain[:n+k], (n+k)*workload.BlockTokens)
		g.deliver(rep, r, e, info)
	})
}

// deliver hands a routed request to its replica's engine, applying the
// prefix-cache prefill discount and recording gateway accounting.
func (g *Gateway) deliver(rep *replica, r *serving.Request, e workload.Entry, info RequestInfo) {
	hit := rep.lookup(info)
	full := r.InputLen
	if hit >= full {
		hit = full - 1 // at least one token must be prefilled
	}
	r.InputLen = full - hit
	g.emitCache(e.SessionID, r.ID, rep.index, hit, full)

	fl := g.newInflight()
	*fl = inflight{
		rep: rep, entry: e, fullInput: full, effInput: r.InputLen, hit: hit,
		arrival: r.Arrival, output: r.OutputLen, slo: r.SLOBudget, gen: fl.gen,
	}
	g.pending[r.ID] = fl
	rep.outTokens += fl.effInput + r.OutputLen
	rep.outReqs++
	rep.stats.Requests++
	rep.stats.InputTokens += int64(full)
	rep.stats.PrefixTokens += int64(e.PrefixLen)
	if hit > 0 {
		rep.stats.HitRequests++
		rep.stats.HitTokens += int64(hit)
	}
	g.armHedge(r.ID, fl)
	g.arriveOrStall(rep, r, fl)
}

// complete is every replica's completion sink: it settles gateway
// accounting, refreshes the prefix cache (or hands the session KV to a
// survivor when the serving replica is draining), and emits the record.
func (g *Gateway) complete(rep *replica, r *serving.Request) {
	if rep.state == ReplicaFailed {
		// The replica crashed; its engine keeps simulating (there is no
		// cancel API) but its completions are fictions — the gateway already
		// recovered or promoted every request it held.
		return
	}
	if g.settleGhost(rep, r) {
		return
	}
	fl := g.pending[r.ID]
	if fl == nil || fl.rep != rep {
		panic(fmt.Sprintf("fleet: replica %d completed unknown request %d", rep.index, r.ID))
	}
	delete(g.pending, r.ID)
	rep.outTokens -= fl.effInput + r.OutputLen
	rep.outReqs--
	// fl stays live through the rest of this function, then recycles.
	defer func() { g.freeInflight(fl) }()

	// The TTFT baseline must fold only never-hedged completions, so sample
	// before the hedge pair resolves (which clears the linkage).
	g.noteTTFT(fl, r)
	// If this request was half of a hedge pair, settle it: the other copy
	// becomes a ghost, and the finish reports under the primary's identity.
	finishID := g.resolveHedge(rep, r, fl)

	// Finish is emitted before the session-KV bookkeeping below so the
	// stream reads causally: a drain-time "handoff" migration moves KV the
	// finished request just produced, and auditors bound migrated tokens by
	// the session context the Finish established. Same timestamp either
	// way — only intra-instant order changes.
	g.emitFinishID(rep.index, fl.entry.SessionID, finishID, r)

	if fl.entry.SessionID != 0 {
		key := SessionKey(fl.entry.SessionID)
		if rep.radix != nil {
			chain := fl.entry.Blocks
			if len(chain) > len(g.sessionChain[key]) {
				// Longest-chain-wins mirrors Put's never-shrink rule: a
				// stale out-of-order completion must not truncate the path
				// a later turn already established.
				g.sessionChain[key] = chain
			}
			tokens := len(chain) * workload.BlockTokens
			if rep.state == ReplicaActive {
				rep.radix.Put(chain)
				if rep.radix.MatchTokens(chain) > 0 {
					g.sessionHome[key] = rep.index
				}
			} else if dst := g.completionTarget(key, rep); dst != nil && tokens > 0 {
				g.transferSession(key, chain, tokens, rep, dst, g.migrationDelay(tokens), "handoff")
			}
		} else {
			tokens := fl.fullInput + r.OutputLen
			if rep.state == ReplicaActive {
				// The finished conversation context is now reusable KV here.
				rep.cache.Put(key, tokens)
				if rep.cache.Peek(key) > 0 {
					g.sessionHome[key] = rep.index
				}
			} else if dst := g.completionTarget(key, rep); dst != nil {
				// Draining: the freshly produced KV rides the drain link to the
				// session's new home so the next turn finds it warm.
				g.transferSession(key, nil, tokens, rep, dst, g.migrationDelay(tokens), "handoff")
			}
		}
	}
	if fl.entry.PromptGroup != 0 && rep.state == ReplicaActive && rep.radix == nil {
		// Whole-key mode replicates the shared prompt as its own entry; in
		// radix mode the system-prompt blocks are the head of every
		// session chain and were inserted by the session Put above.
		rep.cache.Put(GroupKey(fl.entry.PromptGroup), fl.entry.SharedLen)
	}

	rec := r.Record()
	rec.ID = int64(finishID)
	rec.InputLen = fl.fullInput
	if g.res.Acc != nil {
		g.res.Acc.Add(rec)
	} else {
		g.res.Records = append(g.res.Records, rec)
	}
	g.completed++
	g.maybeRetire(rep)
	if g.OnComplete != nil {
		g.OnComplete(fl.entry, rec)
	}
}

// completionTarget picks where a draining replica's finished session KV
// should land: the session's migrated home when it is still active,
// otherwise the least-loaded survivor.
func (g *Gateway) completionTarget(key PrefixKey, from *replica) *replica {
	if h, ok := g.sessionHome[key]; ok && h != from.index && g.replicas[h].state == ReplicaActive {
		return g.replicas[h]
	}
	return g.migrationTarget(from)
}

// SessionLocations returns every replica index holding a resident copy of
// the session's KV entry, with resident token counts — the introspection
// surface drain verification and tests use. In radix mode a "copy" is the
// resident prefix of the session's longest known chain (shared head blocks
// included, matching what a whole-key entry would hold).
func (g *Gateway) SessionLocations(sessionID int64) map[int]int {
	out := make(map[int]int)
	key := SessionKey(sessionID)
	chain := g.sessionChain[key]
	for i, rep := range g.replicas {
		if rep.radix != nil {
			if c := rep.radix.MatchTokens(chain); c > 0 {
				out[i] = c
			}
		} else if c := rep.cache.Peek(key); c > 0 {
			out[i] = c
		}
	}
	return out
}

// Finalize assembles the run's Result: per-replica stats, replica-seconds
// and the makespan. Call after the simulator has run to completion.
func (g *Gateway) Finalize() *Result {
	g.ctl.close()
	end := g.sim.Now()
	fired := g.sim.Fired()
	if g.shard != nil {
		// Replica heaps are private in sharded mode: the makespan is the
		// latest clock anywhere (ghost engines keep draining past the last
		// gateway event, exactly as they do on the shared heap) and the event
		// count sums every heap.
		for _, rep := range g.replicas {
			if t := rep.env.Sim.Now(); t > end {
				end = t
			}
			fired += rep.env.Sim.Fired()
		}
	}
	g.res.End = time.Duration(end)
	g.res.SimEvents = fired
	g.res.Replicas = make([]ReplicaStats, len(g.replicas))
	g.res.ReplicaSeconds = 0
	for i, rep := range g.replicas {
		rep.stats.CacheEntries = rep.cacheLen()
		rep.stats.CacheEvicted = rep.cacheEvicted()
		rep.stats.CacheRejected = rep.cacheRejected()
		g.res.Replicas[i] = rep.stats
		stop := end
		if rep.state == ReplicaRetired || rep.state == ReplicaFailed {
			stop = rep.retiredAt // retirement or crash instant
		}
		secs := (time.Duration(stop) - time.Duration(rep.provisionedAt)).Seconds()
		g.res.ReplicaSeconds += secs
		g.res.CostUnitSeconds += secs * rep.kind.CostUnits
	}
	if g.cold != nil {
		g.res.Cold = g.cold.stats
	}
	return g.res
}

// OutstandingInputLens returns the full prompt lengths of every routed,
// unfinished request, ascending — the queue's length mix a kind-picking
// autoscaler prices candidate kinds against. Sorted so the snapshot is
// deterministic (pending is a map).
func (g *Gateway) OutstandingInputLens() []int {
	lens := make([]int, 0, len(g.pending))
	for _, fl := range g.pending {
		lens = append(lens, fl.fullInput)
	}
	sort.Ints(lens)
	return lens
}
