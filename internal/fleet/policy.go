package fleet

import (
	"fmt"
	"math/rand"

	"loongserve/internal/kvcache"
)

// RequestInfo is what a routing policy may see about an arriving request:
// identity, prompt length, and the prefix-reuse structure. Output length
// is deliberately absent — a real router does not know it.
type RequestInfo struct {
	ID       kvcache.RequestID
	InputLen int

	SessionKey PrefixKey // 0 = stateless
	SharedKey  PrefixKey // 0 = no shared system prompt
	PrefixLen  int       // head tokens reusable under SessionKey
	SharedLen  int       // head tokens reusable under SharedKey

	// Blocks is the input-covering block-hash chain (workload.Entry's
	// chain cut at the input boundary) — the lookup key of radix-mode
	// prefix caches. nil for stateless requests and whole-key-mode runs
	// may ignore it.
	Blocks []uint64
}

// ReplicaCapability is the static capability sheet of one replica, derived
// from its kind's cluster, engine and cost model (see ReplicaKind) — what
// distinguishes replicas in a heterogeneous fleet beyond their load.
type ReplicaCapability struct {
	Kind string // kind name
	GPUs int
	// CostUnits is the relative cost of keeping the replica alive per
	// second (GPU-seconds by derivation).
	CostUnits float64
	// KVCapacity is the replica's total KV pool in token slots.
	KVCapacity int
	// MaxContext is the largest single sequence the replica's engine can
	// hold — its long-context envelope.
	MaxContext int
	// PrefillRate is tokens/second at the reference 8K prefill, the
	// speed term of capability-aware scores.
	PrefillRate float64
}

// ReplicaView is a policy's read-only window onto one replica.
type ReplicaView interface {
	// OutstandingTokens is the gateway-accounted in-flight token load
	// (prompt + budgeted output of every routed, unfinished request).
	OutstandingTokens() int
	// QueueDepth is the in-flight request count; engines implementing
	// serving.LoadReporter report their internal queue, others fall back
	// to gateway accounting.
	QueueDepth() int
	// CachedTokens is the prefix-cache hit the replica would serve for
	// req right now (0 = cold).
	CachedTokens(req RequestInfo) int
	// SessionTokens is the resident KV belonging to req's own session on
	// this replica — the portion a migration could physically move. Shared
	// system-prompt entries are excluded: they are replicated, not owned.
	SessionTokens(req RequestInfo) int
	// Capability is the replica's static capability sheet. Homogeneous
	// fleets return the same sheet for every replica, which makes every
	// capability-aware score degenerate to its load-and-affinity terms.
	Capability() ReplicaCapability
}

// Policy picks a replica for each arriving request. Implementations must
// be deterministic given the same call sequence; any randomness comes from
// an explicit seed.
type Policy interface {
	Name() string
	Pick(req RequestInfo, replicas []ReplicaView) int
}

// RoundRobin cycles through replicas in order — the zero-information
// baseline.
type RoundRobin struct{ next int }

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "RoundRobin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ RequestInfo, replicas []ReplicaView) int {
	i := p.next % len(replicas)
	p.next++
	return i
}

// LeastLoaded routes to the replica with the fewest outstanding tokens —
// the generalization of the ad-hoc least-loaded router the multi-node
// baselines used.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-outstanding-tokens policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (p *LeastLoaded) Name() string { return "LeastLoaded" }

// Pick implements Policy: lowest outstanding tokens, ties to the lowest
// index (matching the historical baselines router exactly).
func (p *LeastLoaded) Pick(_ RequestInfo, replicas []ReplicaView) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		if replicas[i].OutstandingTokens() < replicas[best].OutstandingTokens() {
			best = i
		}
	}
	return best
}

// PowerOfTwoChoices samples two replicas with a seeded RNG and routes to
// the less loaded — load balancing with O(1) state queries and
// near-least-loaded tail behavior (the classic Mitzenmacher result).
type PowerOfTwoChoices struct{ rng *rand.Rand }

// NewPowerOfTwoChoices returns the policy; seed fixes the sampling stream.
func NewPowerOfTwoChoices(seed int64) *PowerOfTwoChoices {
	return &PowerOfTwoChoices{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *PowerOfTwoChoices) Name() string { return "PowerOfTwoChoices" }

// Pick implements Policy.
func (p *PowerOfTwoChoices) Pick(_ RequestInfo, replicas []ReplicaView) int {
	n := len(replicas)
	if n == 1 {
		return 0
	}
	a := p.rng.Intn(n)
	b := p.rng.Intn(n - 1)
	if b >= a {
		b++ // sample without replacement
	}
	if replicas[b].OutstandingTokens() < replicas[a].OutstandingTokens() {
		return b
	}
	return a
}

// PrefixAffinity scores every replica by the work routing there would
// cost: the prefill tokens the replica must actually compute (prompt minus
// its prefix-cache hit) plus its current outstanding load, weighted by
// LoadWeight. New sessions hash to a stable home replica so that the turns
// and sibling sessions that follow find warm caches, but a sufficiently
// loaded home loses to a cold, idle replica — the cache-affinity-vs-load
// balance the arodland/loadbalance simulation studies.
type PrefixAffinity struct {
	// LoadWeight converts outstanding tokens into score units relative to
	// prefill tokens. 1.0 treats a queued token and a cold prefill token
	// as equally costly; higher values favor load balance over affinity.
	LoadWeight float64
}

// NewPrefixAffinity returns the policy with LoadWeight 1.
func NewPrefixAffinity() *PrefixAffinity { return &PrefixAffinity{LoadWeight: 1} }

// Name implements Policy.
func (p *PrefixAffinity) Name() string { return "PrefixAffinity" }

// homeIndex hashes the request's stickiest available key to a replica.
func (p *PrefixAffinity) homeIndex(req RequestInfo, n int) int {
	key := req.SessionKey
	if key == 0 {
		key = req.SharedKey
	}
	if key == 0 {
		return -1
	}
	return int(mix64(uint64(key)) % uint64(n))
}

// Pick implements Policy.
func (p *PrefixAffinity) Pick(req RequestInfo, replicas []ReplicaView) int {
	n := len(replicas)
	home := p.homeIndex(req, n)
	best, bestScore := -1, 0.0
	for i, r := range replicas {
		miss := req.InputLen - r.CachedTokens(req)
		if miss < 0 {
			miss = 0
		}
		score := float64(miss) + p.LoadWeight*float64(r.OutstandingTokens())
		// The hashed home wins ties (cold caches, equal load), which is
		// what plants a new session — and its whole prompt group — on a
		// stable replica instead of wherever index order says.
		if best == -1 || score < bestScore || (score == bestScore && i == home) {
			best, bestScore = i, score
		}
	}
	return best
}

// Migrator is the gateway-side cost oracle handed to MigrationAware
// policies: it converts a KV transfer into the prefill-token units policy
// scores are denominated in.
type Migrator interface {
	// MigrationTokenCost returns the prefill-token-equivalent cost of
	// moving n KV tokens between two replicas over the fleet interconnect.
	MigrationTokenCost(n int) float64
	// MigrationSeconds returns the same transfer priced in link seconds —
	// the denomination capability-aware policies use, since replicas of
	// different kinds turn seconds into tokens at different rates.
	MigrationSeconds(n int) float64
}

// Decision is a MigrationAware policy's verdict for one request: the
// destination replica, and optionally a source replica whose copy of the
// request's session KV should be migrated to the destination first
// (From == -1 routes without migration).
type Decision struct {
	Dest int
	From int
}

// MigrationAware policies may resolve the affinity-vs-load conflict with a
// third option beyond "stay on the warm replica" and "recompute cold":
// physically move the session's KV to a less-loaded replica when the link
// transfer is cheaper than the recompute it avoids. The gateway executes
// the migration before delivering the request.
type MigrationAware interface {
	Policy
	PickMigrate(req RequestInfo, replicas []ReplicaView, m Migrator) Decision
}

// MigratingAffinity is PrefixAffinity extended with the migrate-vs-
// recompute decision: it scores every replica as PrefixAffinity does, and
// additionally scores migrating the session's KV from its warmest holder
// to each other replica — the transfer priced by the gateway's cost model
// (Migrator) in prefill-token equivalents. Migration wins exactly when the
// load gap between the warm home and an idle replica exceeds the link
// cost, which is LoongServe's multi-replica analogue of choosing KV
// movement over recomputation.
type MigratingAffinity struct {
	PrefixAffinity
}

// NewMigratingAffinity returns the policy with LoadWeight 1.
func NewMigratingAffinity() *MigratingAffinity {
	return &MigratingAffinity{PrefixAffinity{LoadWeight: 1}}
}

// Name implements Policy.
func (p *MigratingAffinity) Name() string { return "MigratingAffinity" }

// PickMigrate implements MigrationAware.
func (p *MigratingAffinity) PickMigrate(req RequestInfo, replicas []ReplicaView, m Migrator) Decision {
	n := len(replicas)
	home := p.homeIndex(req, n)
	best, bestScore := -1, 0.0
	for i, r := range replicas {
		miss := req.InputLen - r.CachedTokens(req)
		if miss < 0 {
			miss = 0
		}
		score := float64(miss) + p.LoadWeight*float64(r.OutstandingTokens())
		if best == -1 || score < bestScore || (score == bestScore && i == home) {
			best, bestScore = i, score
		}
	}
	if req.SessionKey == 0 || n < 2 {
		return Decision{Dest: best, From: -1}
	}
	// The migration source is the replica holding the most of this
	// session's KV; nothing to move if the session is cold everywhere.
	src, cached := -1, 0
	for i, r := range replicas {
		if c := r.SessionTokens(req); c > cached {
			src, cached = i, c
		}
	}
	if src < 0 || src == best {
		return Decision{Dest: best, From: -1}
	}
	migCost := m.MigrationTokenCost(cached)
	miss := req.InputLen - cached
	if miss < 0 {
		miss = 0
	}
	migBest, migBestScore := -1, 0.0
	for i, r := range replicas {
		if i == src {
			continue
		}
		s := float64(miss) + migCost + p.LoadWeight*float64(r.OutstandingTokens())
		if migBest == -1 || s < migBestScore {
			migBest, migBestScore = i, s
		}
	}
	// Hysteresis: a move must beat staying by more than its own transfer
	// cost, or marginal load differences make sessions ping-pong between
	// replicas (each bounce paying the link for nothing).
	if migBest >= 0 && migBestScore+migCost < bestScore {
		return Decision{Dest: migBest, From: src}
	}
	return Decision{Dest: best, From: -1}
}

// DefaultCapabilityHeadroom is the fraction of a replica's MaxContext a
// request's prompt may comfortably occupy before CapabilityAffinity stops
// routing there: a session needs room to grow across turns and to coexist
// with other residents, so a prompt at, say, 80% of a small replica's
// whole pool belongs on a longer-context kind even though it would
// technically fit.
const DefaultCapabilityHeadroom = 0.5

// CapabilityAffinity is heterogeneity-aware routing: every replica is
// scored by the *cost* of serving the request there — predicted service
// seconds (the prefill miss plus queued work, at the replica kind's
// cost-model prefill rate) weighted by the kind's provisioning cost. Long
// prompts flow to long-context kinds because small kinds are ineligible
// (the prompt would not comfortably fit their KV envelope) or slow; short
// prompts flow to cheap kinds because a short request takes nearly the
// same time anywhere and the cheap replica's seconds cost less; prefix
// affinity and load balance fall out of the same score (a warm cache
// shrinks the miss, a deep queue grows the wait), with the hashed session
// home breaking cold ties exactly as PrefixAffinity does. It composes the
// MigratingAffinity decision: session KV migrates to a capability-eligible
// replica when the link seconds beat the recompute they avoid.
//
// On a homogeneous fleet every replica shares one capability sheet, so the
// score reduces to (miss + LoadWeight*outstanding) times a constant —
// PrefixAffinity's ordering exactly.
type CapabilityAffinity struct {
	// LoadWeight converts outstanding tokens into score units relative to
	// prefill tokens, as in PrefixAffinity.
	LoadWeight float64
	// Headroom is the comfortable fraction of MaxContext
	// (DefaultCapabilityHeadroom when 0).
	Headroom float64
}

// NewCapabilityAffinity returns the policy with LoadWeight 1 and the
// default headroom.
func NewCapabilityAffinity() *CapabilityAffinity {
	return &CapabilityAffinity{LoadWeight: 1, Headroom: DefaultCapabilityHeadroom}
}

// Name implements Policy.
func (p *CapabilityAffinity) Name() string { return "CapabilityAffinity" }

// headroom returns the effective comfort fraction.
func (p *CapabilityAffinity) headroom() float64 {
	if p.Headroom > 0 {
		return p.Headroom
	}
	return DefaultCapabilityHeadroom
}

// eligible reports whether the request's prompt comfortably fits the
// replica's context envelope.
func (p *CapabilityAffinity) eligible(req RequestInfo, c ReplicaCapability) bool {
	return float64(req.InputLen) <= p.headroom()*float64(c.MaxContext)
}

// score prices serving the request on r: cost-weighted seconds of the
// prefill miss plus queued work, plus extraSeconds (a pending migration's
// link time).
func (p *CapabilityAffinity) score(miss int, r ReplicaView, extraSeconds float64) float64 {
	c := r.Capability()
	rate := c.PrefillRate
	if rate <= 0 {
		rate = 1
	}
	t := (float64(miss)+p.LoadWeight*float64(r.OutstandingTokens()))/rate + extraSeconds
	return t * c.CostUnits
}

// homeIndex hashes the request's stickiest key to a replica, as
// PrefixAffinity does.
func (p *CapabilityAffinity) homeIndex(req RequestInfo, n int) int {
	key := req.SessionKey
	if key == 0 {
		key = req.SharedKey
	}
	if key == 0 {
		return -1
	}
	return int(mix64(uint64(key)) % uint64(n))
}

// pick scores the eligible replicas (all of them when none is eligible —
// then the most capable wins outright) and returns the winner plus its
// score.
func (p *CapabilityAffinity) pick(req RequestInfo, replicas []ReplicaView) (int, float64) {
	n := len(replicas)
	anyEligible := false
	for _, r := range replicas {
		if p.eligible(req, r.Capability()) {
			anyEligible = true
			break
		}
	}
	if !anyEligible {
		// Nothing fits comfortably: fall back to the largest context
		// envelope — the replica class that fails least badly — and
		// balance by score within it, so a homogeneous fleet of small
		// replicas spreads its oversize tail instead of dogpiling one.
		best, bestScore := 0, p.score(missTokens(req, replicas[0]), replicas[0], 0)
		for i := 1; i < n; i++ {
			bm, im := replicas[best].Capability().MaxContext, replicas[i].Capability().MaxContext
			if im < bm {
				continue
			}
			score := p.score(missTokens(req, replicas[i]), replicas[i], 0)
			if im > bm || score < bestScore {
				best, bestScore = i, score
			}
		}
		return best, bestScore
	}
	home := p.homeIndex(req, n)
	best, bestScore := -1, 0.0
	for i, r := range replicas {
		if !p.eligible(req, r.Capability()) {
			continue
		}
		score := p.score(missTokens(req, r), r, 0)
		if best == -1 || score < bestScore || (score == bestScore && i == home) {
			best, bestScore = i, score
		}
	}
	return best, bestScore
}

// missTokens is the prefill the replica would actually compute.
func missTokens(req RequestInfo, r ReplicaView) int {
	miss := req.InputLen - r.CachedTokens(req)
	if miss < 0 {
		return 0
	}
	return miss
}

// Pick implements Policy.
func (p *CapabilityAffinity) Pick(req RequestInfo, replicas []ReplicaView) int {
	best, _ := p.pick(req, replicas)
	return best
}

// PickMigrate implements MigrationAware: as MigratingAffinity, but scores
// in cost-weighted seconds and only migrates onto capability-eligible
// replicas.
func (p *CapabilityAffinity) PickMigrate(req RequestInfo, replicas []ReplicaView, m Migrator) Decision {
	best, bestScore := p.pick(req, replicas)
	n := len(replicas)
	if req.SessionKey == 0 || n < 2 {
		return Decision{Dest: best, From: -1}
	}
	src, cached := -1, 0
	for i, r := range replicas {
		if c := r.SessionTokens(req); c > cached {
			src, cached = i, c
		}
	}
	if src < 0 || src == best {
		return Decision{Dest: best, From: -1}
	}
	migSec := m.MigrationSeconds(cached)
	miss := req.InputLen - cached
	if miss < 0 {
		miss = 0
	}
	migBest, migBestScore, migBestSec := -1, 0.0, 0.0
	for i, r := range replicas {
		if i == src || !p.eligible(req, r.Capability()) {
			continue
		}
		s := p.score(miss, r, migSec)
		if migBest == -1 || s < migBestScore {
			migBest, migBestScore = i, s
			migBestSec = migSec * r.Capability().CostUnits
		}
	}
	// Hysteresis, as MigratingAffinity: the move must beat staying by more
	// than its own (cost-weighted) transfer time, or sessions ping-pong.
	if migBest >= 0 && migBestScore+migBestSec < bestScore {
		return Decision{Dest: migBest, From: src}
	}
	return Decision{Dest: best, From: -1}
}

// ModuloHash routes every request by hashing its stickiest key modulo the
// replica count — the classic consistent-bucket baseline: perfect session
// stickiness, zero load awareness, and a reshuffle of every home whenever
// the active set changes size. It is the degenerate endpoint of
// cache-aware routing (affinity with no load term) and the natural
// baseline for the cache-directory experiment.
type ModuloHash struct{}

// NewModuloHash returns the policy.
func NewModuloHash() *ModuloHash { return &ModuloHash{} }

// Name implements Policy.
func (p *ModuloHash) Name() string { return "ModuloHash" }

// Pick implements Policy.
func (p *ModuloHash) Pick(req RequestInfo, replicas []ReplicaView) int {
	key := uint64(req.SessionKey)
	if key == 0 {
		key = uint64(req.SharedKey)
	}
	if key == 0 {
		key = uint64(req.ID) // stateless: spread by request identity
	}
	return int(mix64(key) % uint64(len(replicas)))
}

// DirectoryAware policies route off the gateway's global cache directory
// instead of probing every replica's cache. The gateway attaches its
// directory when Config.Directory is on; unattached (directory off), the
// policy falls back to the per-replica CachedTokens probe so it still
// functions standalone.
type DirectoryAware interface {
	Policy
	AttachDirectory(*CacheDirectory)
}

// DirectoryLocator is implemented by replica views that know their stable
// fleet index — the global cache directory's location key. Directory-aware
// policies must read the directory through it: the active-views slice they
// are handed compacts over crashed and drained replicas, so a view's slice
// position is not its directory location once the fleet has churned.
type DirectoryLocator interface {
	Index() int
}

// ContentAffinity is cache-content-aware routing over the global cache
// directory: each replica is scored by the prefill miss the directory
// says it would really compute — the request's block chain matched
// against the replica's directory-resident blocks — plus its outstanding
// load, the whole estimate inflated by queue depth (a deep queue delays
// the prefill no matter how warm the cache is). Replicas whose context
// envelope the prompt would not comfortably fit are ineligible, as in
// CapabilityAffinity. Ties break to the larger overlap, then to the
// hashed session home.
//
// The contrast with PrefixAffinity is the information source:
// PrefixAffinity probes every replica's cache omnisciently per request,
// while ContentAffinity reads one gateway-side structure maintained by
// residency events — the deployable version — and therefore also prices
// partial overlaps (branch trunks, shared system prompts) that whole-key
// probes undervalue, and composes with the cold tier (a directory hit at
// DirCold becomes a fetch instead of a recompute).
type ContentAffinity struct {
	// LoadWeight converts outstanding tokens into score units relative to
	// prefill tokens, as in PrefixAffinity.
	LoadWeight float64
	// QueueBias inflates a replica's score per queued request
	// (multiplicative: score *= 1 + QueueBias*depth).
	QueueBias float64
	// Headroom is the comfortable fraction of MaxContext
	// (DefaultCapabilityHeadroom when 0).
	Headroom float64

	dir *CacheDirectory

	// Last-pick explanation, read by the gateway's content-route emitter:
	// the overlap tokens claimed at the chosen replica, its queue depth at
	// pick time, and how many replicas were eligible.
	lastClaim    int
	lastQueue    int
	lastEligible int
}

// NewContentAffinity returns the policy with LoadWeight 0.4, QueueBias 0
// and the default headroom. The low load weight is deliberate: directory
// overlap is the signal this policy exists to exploit, so load only breaks
// near-ties rather than dragging requests off their warm replicas; at
// LoadWeight 1 the policy converges on PrefixAffinity's placements and the
// directory buys nothing.
func NewContentAffinity() *ContentAffinity {
	return &ContentAffinity{LoadWeight: 0.4, Headroom: DefaultCapabilityHeadroom}
}

// Name implements Policy.
func (p *ContentAffinity) Name() string { return "ContentAffinity" }

// AttachDirectory implements DirectoryAware.
func (p *ContentAffinity) AttachDirectory(d *CacheDirectory) { p.dir = d }

// LastPick returns the explanation of the most recent Pick.
func (p *ContentAffinity) LastPick() (claim, queue, eligible int) {
	return p.lastClaim, p.lastQueue, p.lastEligible
}

func (p *ContentAffinity) headroom() float64 {
	if p.Headroom > 0 {
		return p.Headroom
	}
	return DefaultCapabilityHeadroom
}

// overlap is the directory's resident-prefix claim for req at view slot i,
// falling back to the live cache probe when no directory is attached. The
// directory location is the view's stable fleet index (DirectoryLocator),
// not i: the active-views slice compacts over crashed and drained
// replicas, so slot i can be a different replica than location i.
func (p *ContentAffinity) overlap(req RequestInfo, i int, r ReplicaView) int {
	if p.dir == nil {
		return r.CachedTokens(req)
	}
	loc := i
	if dl, ok := r.(DirectoryLocator); ok {
		loc = dl.Index()
	}
	if len(req.Blocks) > 0 {
		o := p.dir.ChainOverlap(req.Blocks, loc)
		if o > req.InputLen {
			o = req.InputLen
		}
		return o
	}
	// Whole-key mode: the directory stores entry keys; the usable overlap
	// is capped by the reusable prefix length, mirroring replica.lookup.
	best := 0
	if req.SessionKey != 0 {
		if t := p.dir.Tokens(uint64(req.SessionKey), loc); t > 0 {
			if t > req.PrefixLen {
				t = req.PrefixLen
			}
			best = t
		}
	}
	if req.SharedKey != 0 {
		if t := p.dir.Tokens(uint64(req.SharedKey), loc); t > 0 {
			if t > req.SharedLen {
				t = req.SharedLen
			}
			if t > best {
				best = t
			}
		}
	}
	return best
}

// score prices serving req on r given its directory overlap.
func (p *ContentAffinity) score(req RequestInfo, r ReplicaView, overlap int) float64 {
	miss := req.InputLen - overlap
	if miss < 0 {
		miss = 0
	}
	s := float64(miss) + p.LoadWeight*float64(r.OutstandingTokens())
	return s * (1 + p.QueueBias*float64(r.QueueDepth()))
}

// homeIndex hashes the request's stickiest key, as PrefixAffinity does.
func (p *ContentAffinity) homeIndex(req RequestInfo, n int) int {
	key := req.SessionKey
	if key == 0 {
		key = req.SharedKey
	}
	if key == 0 {
		return -1
	}
	return int(mix64(uint64(key)) % uint64(n))
}

// Pick implements Policy.
func (p *ContentAffinity) Pick(req RequestInfo, replicas []ReplicaView) int {
	n := len(replicas)
	head := p.headroom()
	eligible := 0
	for _, r := range replicas {
		if float64(req.InputLen) <= head*float64(r.Capability().MaxContext) {
			eligible++
		}
	}
	home := p.homeIndex(req, n)
	best, bestScore, bestOverlap := -1, 0.0, 0
	for i, r := range replicas {
		// When nothing fits comfortably every replica stays a candidate —
		// the request must land somewhere.
		if eligible > 0 && float64(req.InputLen) > head*float64(r.Capability().MaxContext) {
			continue
		}
		o := p.overlap(req, i, r)
		score := p.score(req, r, o)
		better := best == -1 || score < bestScore
		if !better && score == bestScore {
			better = o > bestOverlap || (o == bestOverlap && i == home)
		}
		if better {
			best, bestScore, bestOverlap = i, score, o
		}
	}
	p.lastClaim = bestOverlap
	p.lastQueue = replicas[best].QueueDepth()
	if eligible == 0 {
		eligible = n
	}
	p.lastEligible = eligible
	return best
}

// ByName returns a fresh policy instance for a CLI-facing name.
func ByName(name string, seed int64) (Policy, error) {
	switch name {
	case "roundrobin", "rr":
		return NewRoundRobin(), nil
	case "leastloaded", "ll":
		return NewLeastLoaded(), nil
	case "p2c", "poweroftwo":
		return NewPowerOfTwoChoices(seed), nil
	case "affinity", "prefix":
		return NewPrefixAffinity(), nil
	case "migrate", "migrating":
		return NewMigratingAffinity(), nil
	case "capability", "cap":
		return NewCapabilityAffinity(), nil
	case "content", "directory":
		return NewContentAffinity(), nil
	case "modulo", "hash":
		return NewModuloHash(), nil
	}
	return nil, fmt.Errorf("fleet: unknown policy %q (want roundrobin, leastloaded, p2c, affinity, migrate, capability, content or modulo)", name)
}

// AllPolicies returns one fresh instance of every load/affinity policy, in
// presentation order. CapabilityAffinity is deliberately not included: on
// the homogeneous fleets this set is compared on it reduces to
// PrefixAffinity's ordering, so the historical comparison tables keep
// their exact rows; heterogeneous comparisons add it explicitly.
// ContentAffinity and ModuloHash are likewise excluded for the same
// table-stability reason — the cache-directory experiment compares them
// explicitly.
func AllPolicies(seed int64) []Policy {
	return []Policy{
		NewRoundRobin(),
		NewLeastLoaded(),
		NewPowerOfTwoChoices(seed),
		NewPrefixAffinity(),
		NewMigratingAffinity(),
	}
}
