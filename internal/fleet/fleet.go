// Package fleet scales serving out: a gateway fronts N independently
// simulated engine replicas — LoongServe cores or any baseline — and
// routes arrivals through pluggable policies. Each replica owns a full
// cluster, KV pool and engine; replicas share nothing but the
// discrete-event clock, exactly the deployment shape of a production
// fleet behind a load balancer.
//
// The gateway additionally models per-replica prefix-KV reuse: a
// token-capacity LRU cache with TinyLFU-style admission (prefixcache.go)
// remembers which conversation contexts and shared system prompts each
// replica has served, and a cache hit discounts the prefill the replica
// must simulate to just the unseen suffix. This creates the tension the
// routing policies trade off: sticking a session to its warm replica
// minimizes recomputation, spreading minimizes queueing — the same
// cache-affinity-vs-load balance studied by the arodland/loadbalance
// simulation, here measured in KV tokens on the paper's cost model.
package fleet

import (
	"fmt"

	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// Spec describes how to build one replica. NewCluster and NewEngine are
// called once per replica; every replica must get fresh instances (the
// gateway gives each its own environment and KV pool).
type Spec struct {
	NewEngine  func() serving.Engine
	NewCluster func() (*cluster.Cluster, error)
}

// Config controls a fleet run.
type Config struct {
	Replicas int
	// Policy routes arrivals; nil defaults to LeastLoaded.
	Policy Policy
	// CacheTokens is each replica's prefix-cache capacity in KV tokens;
	// 0 sizes it to the replica's KV pool capacity.
	CacheTokens int
	// NoAdmission disables the TinyLFU admission filter (plain LRU).
	NoAdmission bool
	// SLOScale is the latency budget multiplier (0 = the paper's 25).
	SLOScale float64
	// MaxEvents bounds the simulation as a divergence backstop.
	MaxEvents uint64
}

// ReplicaStats is the per-replica accounting of one run.
type ReplicaStats struct {
	Requests      int
	HitRequests   int   // requests served with a nonzero prefix-cache hit
	HitTokens     int64 // prompt tokens served from cache
	PrefixTokens  int64 // prompt tokens that were reusable in principle
	InputTokens   int64 // full prompt tokens routed here
	CacheEntries  int   // resident entries at end of run
	CacheEvicted  int
	CacheRejected int
}

// Result is the outcome of a fleet run.
type Result struct {
	Policy   string
	Records  []metrics.Record
	Replicas []ReplicaStats
}

// TokenHitRatio returns cache-served prompt tokens over reusable prompt
// tokens — the prefix-cache effectiveness measure the routing policies
// compete on. 0 when the trace has no reusable prefixes.
func (r *Result) TokenHitRatio() float64 {
	var hit, reusable int64
	for _, rs := range r.Replicas {
		hit += rs.HitTokens
		reusable += rs.PrefixTokens
	}
	if reusable == 0 {
		return 0
	}
	return float64(hit) / float64(reusable)
}

// HitRequestRatio returns the fraction of session requests that found any
// warm prefix.
func (r *Result) HitRequestRatio() float64 {
	hit, total := 0, 0
	for _, rs := range r.Replicas {
		hit += rs.HitRequests
		total += rs.Requests
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// ComputeSavedTokens returns the prefill tokens the fleet did not have to
// recompute thanks to prefix reuse.
func (r *Result) ComputeSavedTokens() int64 {
	var hit int64
	for _, rs := range r.Replicas {
		hit += rs.HitTokens
	}
	return hit
}

// replica is one engine plus its private environment, cache and the
// gateway's load accounting. It implements ReplicaView.
type replica struct {
	index  int
	engine serving.Engine
	env    *serving.Env
	cache  *PrefixCache

	outTokens int // routed prompt+output tokens not yet completed
	outReqs   int
	stats     ReplicaStats
}

// OutstandingTokens implements ReplicaView.
func (rep *replica) OutstandingTokens() int { return rep.outTokens }

// QueueDepth implements ReplicaView: engine-reported when available.
func (rep *replica) QueueDepth() int {
	if lr, ok := rep.engine.(serving.LoadReporter); ok {
		return lr.Load().Outstanding()
	}
	return rep.outReqs
}

// CachedTokens implements ReplicaView: the usable hit, side-effect free.
func (rep *replica) CachedTokens(req RequestInfo) int {
	if req.SessionKey != 0 {
		if c := rep.cache.Peek(req.SessionKey); c > 0 {
			return min(req.PrefixLen, c)
		}
	}
	if req.SharedKey != 0 {
		if c := rep.cache.Peek(req.SharedKey); c > 0 {
			return min(req.SharedLen, c)
		}
	}
	return 0
}

// lookup is CachedTokens with the access recorded (recency, frequency,
// hit counters) — called once, on the replica the policy picked.
func (rep *replica) lookup(req RequestInfo) int {
	if req.SessionKey != 0 {
		if c := rep.cache.Lookup(req.SessionKey); c > 0 {
			return min(req.PrefixLen, c)
		}
	}
	if req.SharedKey != 0 {
		if c := rep.cache.Lookup(req.SharedKey); c > 0 {
			return min(req.SharedLen, c)
		}
	}
	return 0
}

// inflight tracks one routed, unfinished request.
type inflight struct {
	rep       *replica
	entry     workload.Entry
	fullInput int
	effInput  int
	hit       int
}

// Run replays a trace against a fleet of cfg.Replicas engine replicas
// routed by cfg.Policy, all advancing on one discrete-event clock.
// Completion records report each request's full prompt length (so
// normalized input latency reflects what the client submitted), while the
// engines simulate only the cache-missed suffix of each prompt — the
// prefill discount of prefix reuse. Deterministic in the trace and policy.
func Run(spec Spec, trace []workload.TimedRequest, cfg Config) (res *Result, err error) {
	if cfg.Replicas <= 0 {
		return nil, fmt.Errorf("fleet: non-positive replica count %d", cfg.Replicas)
	}
	if spec.NewEngine == nil || spec.NewCluster == nil {
		return nil, fmt.Errorf("fleet: Spec needs NewEngine and NewCluster")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewLeastLoaded()
	}
	if cfg.SLOScale == 0 {
		cfg.SLOScale = serving.DefaultRunConfig().SLOScale
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200_000_000
	}

	sim := simevent.New()
	sim.MaxEvents = cfg.MaxEvents
	res = &Result{Policy: policy.Name()}

	pending := make(map[kvcache.RequestID]*inflight)
	replicas := make([]*replica, cfg.Replicas)
	views := make([]ReplicaView, cfg.Replicas)
	totalGPUs := 0
	for i := range replicas {
		c, cerr := spec.NewCluster()
		if cerr != nil {
			return nil, fmt.Errorf("fleet: replica %d cluster: %w", i, cerr)
		}
		cacheCap := cfg.CacheTokens
		if cacheCap == 0 {
			for _, inst := range c.Instances {
				cacheCap += inst.KVCapacity
			}
		}
		rep := &replica{
			index:  i,
			engine: spec.NewEngine(),
			cache:  NewPrefixCache(cacheCap, !cfg.NoAdmission),
		}
		rep.env = &serving.Env{
			Sim:     sim,
			Cluster: c,
			CM:      costmodel.New(c.Model, c.HW),
			Pool:    c.NewPool(),
		}
		rep.env.Complete = func(r *serving.Request) {
			fl := pending[r.ID]
			if fl == nil || fl.rep != rep {
				panic(fmt.Sprintf("fleet: replica %d completed unknown request %d", rep.index, r.ID))
			}
			delete(pending, r.ID)
			rep.outTokens -= fl.effInput + r.OutputLen
			rep.outReqs--
			// The finished conversation context is now reusable KV on
			// this replica; so is the shared system prompt it embeds.
			if fl.entry.SessionID != 0 {
				rep.cache.Put(SessionKey(fl.entry.SessionID), fl.fullInput+r.OutputLen)
			}
			if fl.entry.PromptGroup != 0 {
				rep.cache.Put(GroupKey(fl.entry.PromptGroup), fl.entry.SharedLen)
			}
			rec := r.Record()
			rec.InputLen = fl.fullInput
			res.Records = append(res.Records, rec)
		}
		if ierr := rep.engine.Init(rep.env); ierr != nil {
			return nil, fmt.Errorf("fleet: replica %d init: %w", i, ierr)
		}
		if i == 0 {
			for _, inst := range c.Instances {
				totalGPUs += inst.TP
			}
		}
		replicas[i] = rep
		views[i] = rep
	}
	cm0 := replicas[0].env.CM

	route := func(r *serving.Request, e workload.Entry) {
		info := RequestInfo{
			ID:         r.ID,
			InputLen:   r.InputLen,
			SessionKey: SessionKey(e.SessionID),
			SharedKey:  GroupKey(e.PromptGroup),
			PrefixLen:  e.PrefixLen,
			SharedLen:  e.SharedLen,
		}
		idx := policy.Pick(info, views)
		if idx < 0 || idx >= len(replicas) {
			panic(fmt.Sprintf("fleet: policy %s picked replica %d of %d", policy.Name(), idx, len(replicas)))
		}
		rep := replicas[idx]
		hit := rep.lookup(info)
		full := r.InputLen
		if hit >= full {
			hit = full - 1 // at least one token must be prefilled
		}
		r.InputLen = full - hit

		fl := &inflight{rep: rep, entry: e, fullInput: full, effInput: r.InputLen, hit: hit}
		pending[r.ID] = fl
		rep.outTokens += fl.effInput + r.OutputLen
		rep.outReqs++
		rep.stats.Requests++
		rep.stats.InputTokens += int64(full)
		rep.stats.PrefixTokens += int64(e.PrefixLen)
		if hit > 0 {
			rep.stats.HitRequests++
			rep.stats.HitTokens += int64(hit)
		}
		rep.engine.Arrive(r)
	}

	for i, tr := range trace {
		r := &serving.Request{
			ID:        kvcache.RequestID(i + 1),
			InputLen:  tr.InputLen,
			OutputLen: tr.OutputLen,
			Arrival:   simevent.Time(tr.Arrival),
		}
		if cfg.SLOScale > 0 {
			r.SLOBudget = serving.SLOBudget(cm0, totalGPUs, tr.InputLen, tr.OutputLen, cfg.SLOScale)
		}
		entry := tr.Entry
		sim.At(r.Arrival, func() { route(r, entry) })
	}

	defer func() {
		if p := recover(); p != nil {
			if oom, ok := p.(*serving.ErrOOM); ok {
				err = oom
				res = nil
				return
			}
			panic(p)
		}
	}()
	sim.Run()

	if len(res.Records) != len(trace) {
		return nil, fmt.Errorf("fleet: %d of %d requests completed (policy %s)", len(res.Records), len(trace), policy.Name())
	}
	res.Replicas = make([]ReplicaStats, len(replicas))
	for i, rep := range replicas {
		rep.stats.CacheEntries = rep.cache.Len()
		rep.stats.CacheEvicted = rep.cache.Evicted
		rep.stats.CacheRejected = rep.cache.Rejected
		res.Replicas[i] = rep.stats
	}
	return res, nil
}
