// Package fleet scales serving out: a gateway fronts N independently
// simulated engine replicas — LoongServe cores or any baseline — and
// routes arrivals through pluggable policies. Each replica owns a full
// cluster, KV pool and engine; replicas share nothing but the
// discrete-event clock, exactly the deployment shape of a production
// fleet behind a load balancer.
//
// The gateway additionally models per-replica prefix-KV reuse, with two
// selectable implementations (Config.Cache). The default-for-CLIs radix
// cache (radixcache.go) indexes KV at token-block granularity over
// content-addressed block-hash chains: any shared token prefix — a system
// prompt, a branched conversation trunk, a session's own history — is
// shared block-for-block, and eviction drops leaf blocks priced by the
// cost model's recompute time (GDSF) with TinyLFU admission. The legacy
// whole-key cache (prefixcache.go), a token-capacity LRU keyed by whole
// session/prompt-group identities, stays reachable for honest
// comparisons. Either way, a cache hit discounts the prefill the replica
// must simulate to just the unseen suffix. This creates the tension the
// routing policies trade off: sticking a session to its warm replica
// minimizes recomputation, spreading minimizes queueing — the same
// cache-affinity-vs-load balance studied by the arodland/loadbalance
// simulation, here measured in KV tokens on the paper's cost model.
//
// The fleet is elastic (gateway.go): replicas can be provisioned at
// runtime (with a warm-up delay before they take traffic) and drained —
// new arrivals stop, in-flight requests finish, and every live session's
// KV migrates to a surviving replica over the inter-node link at the cost
// model's transfer time instead of being dropped and recomputed. The same
// link-vs-recompute tradeoff is available to routing: a MigrationAware
// policy may move a session's KV off its overloaded home replica when the
// transfer is cheaper than recomputing the prefix cold (policy.go). The
// autoscale package closes the loop, growing and shrinking the fleet from
// queue pressure.
//
// Failure is a first-class scenario (faults.go): CrashReplica destroys a
// replica and its resident KV mid-flight — every in-flight request it
// held is recovered onto survivors, re-prefilling only the suffix no
// surviving cache still covers, while the control plane repairs the
// group membership around the dead instance; StallReplica freezes one
// replica's intake (the straggler pathology); DropControlCaches wipes an
// instance's control-plane metadata, exercising the manager's Nak/resend
// repair. Config.Hedge arms request hedging (hedge.go): a request still
// waiting for its first token past a learned TTFT quantile is duplicated
// onto a second replica, the first finisher wins, and the loser's tokens
// are charged honestly to Result.Hedge. InjectFaults stages a seeded
// workload.Fault schedule onto the simulator; RunSessionsFaults is the
// chaos-experiment entry point, whose closed-loop completion check is
// itself the proof that no request was lost.
package fleet

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// Spec describes how to build one replica. NewCluster and NewEngine are
// called once per replica; every replica must get fresh instances (the
// gateway gives each its own environment and KV pool). A Spec is the
// anonymous building block; a named Spec with a derived capability sheet
// is a ReplicaKind (kind.go), and a fleet mixes kinds through
// Config.Groups.
type Spec struct {
	NewEngine  func() serving.Engine
	NewCluster func() (*cluster.Cluster, error)
}

// Prefix-cache implementations selectable via Config.Cache.
const (
	// CacheWholeKey is the legacy per-session/per-group LRU: one entry per
	// whole cache key, no sharing between distinct keys.
	CacheWholeKey = "wholekey"
	// CacheRadix is the token-block radix cache: block-hash chains share
	// any common token prefix, eviction drops leaf blocks priced by the
	// cost model's recompute time (see RadixCache).
	CacheRadix = "radix"
)

// Config controls a fleet run.
//
// The fleet's composition comes from Groups — a list of (ReplicaKind,
// Count) slices, heterogeneous at will. The legacy homogeneous form
// (Replicas clones of one Spec passed to NewGateway/Run) is kept as a
// thin shim over a single-kind composition and behaves bit-identically to
// the pre-composition gateway.
type Config struct {
	// Groups is the fleet composition for the heterogeneous entry points
	// (NewGatewayGroups, RunGroups, RunSessionsGroups). Must be empty for
	// the legacy Spec-based entry points, which synthesize it.
	Groups []ReplicaGroup

	// Replicas is the legacy homogeneous replica count, consumed with the
	// Spec argument of NewGateway/Run/RunSessions.
	//
	// Deprecated: new callers should express the fleet as Groups; Replicas
	// remains supported as a single-kind composition.
	Replicas int

	// SLOKind, when set, pins every request's latency budget to this
	// kind's reference configuration instead of the first group's — so
	// arms of a heterogeneous comparison (whose first kinds differ) still
	// judge requests against one shared SLO.
	SLOKind *ReplicaKind

	// Policy routes arrivals; nil defaults to LeastLoaded.
	Policy Policy
	// Cache selects the prefix-cache implementation: CacheWholeKey (the
	// default, "") or CacheRadix. The whole-key cache stays reachable so
	// radix-vs-wholekey comparisons run the exact legacy behavior.
	Cache string
	// CacheTokens is each replica's prefix-cache capacity in KV tokens;
	// 0 sizes it to the replica's KV pool capacity.
	CacheTokens int
	// NoAdmission disables the TinyLFU admission filter (plain LRU).
	NoAdmission bool
	// Directory maintains the gateway-side global cache directory: every
	// replica cache reports residency transitions through an observer
	// shim, DirectoryAware policies (ContentAffinity) route off the
	// resulting map, and in radix mode all replicas share one naming
	// index. Off (the default), caches behave bit-identically to the
	// pre-directory implementation.
	Directory bool
	// ColdTierTokens, when positive, provisions the fleet-shared
	// host-memory cold KV tier: capacity-evicted radix blocks spill there
	// and are fetched back over the interconnect when the link time beats
	// the recompute it displaces. Requires CacheRadix; implies Directory.
	ColdTierTokens int
	// StreamMetrics folds completion records into a metrics.Accumulator
	// (constant memory) instead of retaining every Record: Result.Records
	// stays nil, Result.Acc carries the streamed summary, and session
	// drivers skip Result.Trace for the same reason (nothing remains to
	// join it to). For million-request traces the record slice is the
	// next memory ceiling after the staged timeline removed the event
	// heap's.
	StreamMetrics bool
	// SLOScale is the latency budget multiplier (0 = the paper's 25).
	SLOScale float64
	// MaxEvents bounds the simulation as a divergence backstop.
	MaxEvents uint64

	// Shards switches the run onto the sharded multi-core runner (shard.go):
	// every replica engine advances on its own private simevent heap between
	// gateway-event barriers, with replicas partitioned round-robin over
	// Shards worker goroutines. Shards == 1 runs the identical barrier
	// algorithm inline — the serial reference the determinism tests compare
	// against; any N produces byte-identical output to it by construction.
	// 0 keeps the legacy single-heap runner. Sharded runs require an
	// open-loop feed and a static fleet (no autoscaling driver).
	Shards int
	// FuseDecode enables decode-iteration fusion on every replica engine
	// implementing serving.DecodeFuser. Fusion is observationally exact —
	// records, traces, obs streams and audits are unchanged; only simulator
	// event counts drop (see core/fuse.go for the proof).
	FuseDecode bool

	// Hedge enables request hedging: a long prefill still unfinished after a
	// quantile-derived delay is duplicated to a second replica, first
	// finisher wins, and the loser's work is charged to the run honestly
	// (see HedgeConfig and Result.Hedge). The zero value disables hedging.
	Hedge HedgeConfig

	// Obs, when non-nil, receives the run's observability event stream:
	// request-lifecycle events (enqueue, route, cache lookup, migrate,
	// finish), replica lifecycle, and — for engines implementing
	// serving.Traceable — engine elastic events with replica attribution.
	// Nil means observability is off; the hot paths then pay exactly one
	// nil check per would-be event (see the AllocsPerRun guards in
	// obs_test.go).
	Obs obs.Sink
	// Sampler, when non-nil with a positive Interval, is driven by the
	// gateway every Interval of simulated time, recording per-replica and
	// fleet-level telemetry time series. Sampling stops by itself when the
	// simulation has no further events.
	Sampler *obs.Sampler
}

// ReplicaStats is the per-replica accounting of one run.
type ReplicaStats struct {
	Kind          string // replica kind name ("default" for Spec-built fleets)
	Requests      int
	HitRequests   int   // requests served with a nonzero prefix-cache hit
	HitTokens     int64 // prompt tokens served from cache
	PrefixTokens  int64 // prompt tokens that were reusable in principle
	InputTokens   int64 // full prompt tokens routed here
	CacheEntries  int   // resident entries at end of run
	CacheEvicted  int
	CacheRejected int
}

// MigrationStats aggregates the KV transfers a run performed: drain
// evacuations, in-flight handoffs and policy-directed (routed) moves.
type MigrationStats struct {
	Count  int
	Tokens int64
	Time   time.Duration // total link-transfer time
}

// ScaleEvent is one fleet-elasticity event, timestamped in simulated time.
type ScaleEvent struct {
	At      time.Duration
	Kind    string // "provision", "active", "drain", "migrate", "retire", "crash", "stall", "cachedrop", "degrade"
	Replica int
	// ReplicaKind names the kind of the replica the event concerns.
	ReplicaKind string
	// Cause sub-classifies migrate events: "drain" (scale-in evacuation),
	// "handoff" (in-flight completion on a draining replica) or "route"
	// (policy-directed rebalancing). Empty for lifecycle events.
	Cause  string
	Detail string
}

// RoutedMigration reports whether the event is a policy-directed
// rebalancing migration — the frequent kind timelines usually aggregate.
func (e ScaleEvent) RoutedMigration() bool {
	return e.Kind == "migrate" && e.Cause == "route"
}

func (e ScaleEvent) String() string {
	return fmt.Sprintf("%10v  %-9s replica %d  %s", e.At.Round(time.Millisecond), e.Kind, e.Replica, e.Detail)
}

// Result is the outcome of a fleet run.
type Result struct {
	Policy string
	// Records holds every completion record; nil when the run streamed
	// metrics (Config.StreamMetrics), in which case Acc carries the
	// equivalent online summary.
	Records  []metrics.Record
	Acc      *metrics.Accumulator
	Replicas []ReplicaStats

	// Elasticity accounting (zero-valued for static runs that never scale).
	Events     []ScaleEvent
	Migrations MigrationStats
	// Fault-tolerance accounting (zero-valued for runs without injected
	// faults or hedging).
	Faults FaultStats
	Hedge  HedgeStats
	// Cold is the cold-KV-tier accounting (zero-valued unless
	// Config.ColdTierTokens provisioned one).
	Cold ColdStats
	// SimEvents is the number of discrete events the run's simulator fired
	// — the wall-clock-free work measure behind events/sec in BENCH_SIM.
	SimEvents uint64
	// ReplicaSeconds integrates provisioned replica count over the run:
	// every replica is charged from provisioning until retirement (or run
	// end) — warm-up and drain time included, exactly what a cluster bill
	// would charge. The cost denominator of cost-normalized goodput.
	ReplicaSeconds float64
	// CostUnitSeconds integrates provisioned *cost units* (GPU-seconds by
	// derivation — see ReplicaKind.CostUnits) over the run. For a
	// homogeneous fleet this is ReplicaSeconds times the kind's cost; for
	// a heterogeneous fleet it is the honest denominator ReplicaSeconds no
	// longer is, because replicas of different kinds cost different
	// amounts to keep alive.
	CostUnitSeconds float64
	// End is the simulated makespan (time of the last event).
	End time.Duration

	// Trace is the emitted request sequence, index i corresponding to
	// request ID i+1. Set by RunSessions (where arrivals are generated
	// during the run); nil for trace-replay Run and for streaming runs
	// (Config.StreamMetrics), which retain neither records nor trace.
	Trace []workload.TimedRequest
}

// TokenHitRatio returns cache-served prompt tokens over reusable prompt
// tokens — the prefix-cache effectiveness measure the routing policies
// compete on. 0 when the trace has no reusable prefixes.
func (r *Result) TokenHitRatio() float64 {
	var hit, reusable int64
	for _, rs := range r.Replicas {
		hit += rs.HitTokens
		reusable += rs.PrefixTokens
	}
	if reusable == 0 {
		return 0
	}
	return float64(hit) / float64(reusable)
}

// HitRequestRatio returns the fraction of session requests that found any
// warm prefix.
func (r *Result) HitRequestRatio() float64 {
	hit, total := 0, 0
	for _, rs := range r.Replicas {
		hit += rs.HitRequests
		total += rs.Requests
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// ComputeSavedTokens returns the prefill tokens the fleet did not have to
// recompute thanks to prefix reuse.
func (r *Result) ComputeSavedTokens() int64 {
	var hit int64
	for _, rs := range r.Replicas {
		hit += rs.HitTokens
	}
	return hit
}

// MeanReplicas returns the time-averaged provisioned replica count — the
// cost of the run in replicas. For a static fleet this is simply N.
func (r *Result) MeanReplicas() float64 {
	if r.End <= 0 {
		return float64(len(r.Replicas))
	}
	return r.ReplicaSeconds / r.End.Seconds()
}

// MeanCostUnits returns the time-averaged provisioned cost units — the
// heterogeneous analogue of MeanReplicas.
func (r *Result) MeanCostUnits() float64 {
	if r.End <= 0 {
		return 0
	}
	return r.CostUnitSeconds / r.End.Seconds()
}

// Goodput returns the run's SLO-met requests per second over the arrival
// window, from retained records or the streamed accumulator.
func (r *Result) Goodput() float64 {
	if r.Acc != nil {
		return r.Acc.Goodput()
	}
	return metrics.Goodput(r.Records)
}

// Summary returns the run's metric summary, from retained records or the
// streamed accumulator (see metrics.Accumulator for quantile accuracy).
func (r *Result) Summary() metrics.Summary {
	if r.Acc != nil {
		return r.Acc.Summary()
	}
	return metrics.Summarize(r.Records)
}

// GoodputPerReplica returns cost-normalized goodput: SLO-met requests per
// second, per provisioned replica. Honest only for homogeneous fleets —
// every replica is charged the same regardless of its kind; heterogeneous
// comparisons should use GoodputPerCostUnit.
func (r *Result) GoodputPerReplica() float64 {
	mean := r.MeanReplicas()
	if mean == 0 {
		return 0
	}
	return r.Goodput() / mean
}

// GoodputPerCostUnit returns goodput per provisioned cost unit (GPU by
// derivation): the re-normalization that makes homogeneous and
// heterogeneous fleets — and fleets of different node sizes — comparable
// on one axis. A 2-GPU replica held for a second costs a quarter of an
// 8-GPU replica held for a second, exactly as a cluster bill would say.
func (r *Result) GoodputPerCostUnit() float64 {
	mean := r.MeanCostUnits()
	if mean == 0 {
		return 0
	}
	return r.Goodput() / mean
}

// Run replays a trace against a static fleet of cfg.Replicas engine
// replicas routed by cfg.Policy, all advancing on one discrete-event
// clock. Completion records report each request's full prompt length (so
// normalized input latency reflects what the client submitted), while the
// engines simulate only the cache-missed suffix of each prompt — the
// prefill discount of prefix reuse. Deterministic in the trace and policy.
//
// Run is the homogeneous shim over RunGroups: cfg.Replicas clones of spec
// as a single anonymous kind, bit-identical to the pre-composition fleet.
func Run(spec Spec, trace []workload.TimedRequest, cfg Config) (*Result, error) {
	sim := simevent.New()
	g, err := NewGateway(spec, cfg, sim)
	if err != nil {
		return nil, err
	}
	return runTrace(g, sim, trace)
}

// RunGroups replays a trace against a static heterogeneous fleet built
// from cfg.Groups — the composition-first spelling of Run.
func RunGroups(trace []workload.TimedRequest, cfg Config) (*Result, error) {
	sim := simevent.New()
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		return nil, err
	}
	return runTrace(g, sim, trace)
}

// runTrace stages a static trace's arrivals, runs the simulator to
// completion and finalizes, converting engine OOM panics to errors.
func runTrace(g *Gateway, sim *simevent.Sim, trace []workload.TimedRequest) (res *Result, err error) {
	for i, tr := range trace {
		r := &serving.Request{
			ID:        kvcache.RequestID(i + 1),
			InputLen:  tr.InputLen,
			OutputLen: tr.OutputLen,
			Arrival:   simevent.Time(tr.Arrival),
		}
		r.SLOBudget = g.SLOBudget(tr.InputLen, tr.OutputLen)
		entry := tr.Entry
		sim.Stage(r.Arrival, func() { g.Submit(r, entry) })
	}

	defer func() {
		if p := recover(); p != nil {
			if oom, ok := p.(*serving.ErrOOM); ok {
				err = oom
				res = nil
				return
			}
			panic(p)
		}
	}()
	g.runLoop()

	if g.Completed() != len(trace) {
		return nil, fmt.Errorf("fleet: %d of %d requests completed (policy %s)", g.Completed(), len(trace), g.PolicyName())
	}
	return g.Finalize(), nil
}
