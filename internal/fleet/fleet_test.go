package fleet_test

import (
	"testing"

	"loongserve/internal/baselines"
	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// vllmSpec builds a fleet of single-node vLLM (TP=8) replicas.
func vllmSpec(t *testing.T) fleet.Spec {
	t.Helper()
	m := model.LWM1MText()
	hw := cluster.A800()
	return fleet.Spec{
		NewEngine: func() serving.Engine { return baselines.NewVLLM(8) },
		NewCluster: func() (*cluster.Cluster, error) {
			return cluster.New(m, hw, 1, 8, 8)
		},
	}
}

func sessionTrace() []workload.TimedRequest {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 48
	cfg.SessionRate = 3
	return workload.SessionTrace(cfg, 42)
}

// TestSingleReplicaMatchesServingRun is the results-preservation anchor:
// a one-replica fleet must reproduce a direct serving.Run record-for-
// record (same completion order, same timestamps), under every policy.
func TestSingleReplicaMatchesServingRun(t *testing.T) {
	m := model.LWM1MText()
	hw := cluster.A800()
	trace := workload.PoissonTrace(workload.ShareGPT(), 20, 60, 9)

	c, err := cluster.New(m, hw, 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serving.Run(baselines.NewVLLM(8), c, costmodel.New(m, hw), trace, serving.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, policy := range fleet.AllPolicies(3) {
		res, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 1, Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if len(res.Records) != len(want) {
			t.Fatalf("%s: %d records, want %d", policy.Name(), len(res.Records), len(want))
		}
		for i := range want {
			if res.Records[i] != want[i] {
				t.Fatalf("%s: record %d differs:\nfleet   %+v\ndirect  %+v", policy.Name(), i, res.Records[i], want[i])
			}
		}
	}
}

// TestPoliciesPreservePerRequestResults checks that on a multi-replica
// fleet every policy completes every request with the lengths the trace
// specified — routing moves requests, it must not alter them.
func TestPoliciesPreservePerRequestResults(t *testing.T) {
	trace := sessionTrace()
	for _, policy := range fleet.AllPolicies(5) {
		res, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 4, Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		if len(res.Records) != len(trace) {
			t.Fatalf("%s: %d of %d completed", policy.Name(), len(res.Records), len(trace))
		}
		byID := make(map[int64]metrics.Record, len(res.Records))
		for _, rec := range res.Records {
			byID[rec.ID] = rec
		}
		for i, tr := range trace {
			rec, ok := byID[int64(i+1)]
			if !ok {
				t.Fatalf("%s: request %d missing", policy.Name(), i+1)
			}
			if rec.InputLen != tr.InputLen || rec.OutputLen != tr.OutputLen {
				t.Fatalf("%s: request %d lengths (%d,%d), trace (%d,%d)",
					policy.Name(), i+1, rec.InputLen, rec.OutputLen, tr.InputLen, tr.OutputLen)
			}
			if rec.FirstToken < rec.Arrival || rec.Finish < rec.FirstToken {
				t.Fatalf("%s: request %d has an inverted timeline %+v", policy.Name(), i+1, rec)
			}
		}
	}
}

// TestPrefixAffinityBeatsRoundRobinHitRatio is the headline acceptance
// property: on a multi-turn session trace over four replicas, affinity
// routing achieves a strictly higher prefix-cache token hit ratio than
// round-robin. Both runs are fully deterministic (seed 42).
func TestPrefixAffinityBeatsRoundRobinHitRatio(t *testing.T) {
	trace := sessionTrace()

	rr, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 4, Policy: fleet.NewRoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	aff, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 4, Policy: fleet.NewPrefixAffinity()})
	if err != nil {
		t.Fatal(err)
	}

	rrHit, affHit := rr.TokenHitRatio(), aff.TokenHitRatio()
	t.Logf("token hit ratio: RoundRobin %.3f, PrefixAffinity %.3f", rrHit, affHit)
	if affHit <= rrHit {
		t.Fatalf("PrefixAffinity hit ratio %.3f not strictly above RoundRobin %.3f", affHit, rrHit)
	}
	if affHit < 0.60 {
		t.Fatalf("PrefixAffinity hit ratio %.3f below 0.60 on a warm session trace", affHit)
	}
	if aff.ComputeSavedTokens() <= rr.ComputeSavedTokens() {
		t.Fatalf("affinity saved %d tokens, round-robin %d", aff.ComputeSavedTokens(), rr.ComputeSavedTokens())
	}

	// The saved prefill must show up as lower client-observed TTFT.
	sr, sa := metrics.Summarize(rr.Records), metrics.Summarize(aff.Records)
	if sa.MeanInput >= sr.MeanInput {
		t.Errorf("affinity normalized input latency %.5f not below round-robin %.5f", sa.MeanInput, sr.MeanInput)
	}
}

// TestFleetDeterminism re-runs one configuration and expects identical
// records and stats.
func TestFleetDeterminism(t *testing.T) {
	trace := sessionTrace()
	run := func() *fleet.Result {
		res, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 3, Policy: fleet.NewPrefixAffinity()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
	for i := range a.Replicas {
		if a.Replicas[i] != b.Replicas[i] {
			t.Fatalf("replica %d stats differ: %+v vs %+v", i, a.Replicas[i], b.Replicas[i])
		}
	}
}

// TestFleetSpreadsLoad sanity-checks that the load-aware policies use all
// replicas of a busy fleet.
func TestFleetSpreadsLoad(t *testing.T) {
	trace := sessionTrace()
	for _, policy := range []fleet.Policy{fleet.NewLeastLoaded(), fleet.NewPowerOfTwoChoices(1), fleet.NewPrefixAffinity()} {
		res, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 4, Policy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		for i, rs := range res.Replicas {
			if rs.Requests == 0 {
				t.Errorf("%s: replica %d served nothing", policy.Name(), i)
			}
		}
	}
}

// TestFleetOOMPropagates mirrors serving.Run's contract: an unservable
// request aborts the run with *serving.ErrOOM.
func TestFleetOOMPropagates(t *testing.T) {
	m := model.LWM1MText()
	hw := cluster.A800()
	capTokens, err := cluster.KVCapacityTokens(m, hw, 8)
	if err != nil {
		t.Fatal(err)
	}
	trace := []workload.TimedRequest{{Entry: workload.Entry{InputLen: capTokens + 10, OutputLen: 8}}}
	_, err = fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 2, Policy: fleet.NewLeastLoaded()})
	if _, ok := err.(*serving.ErrOOM); !ok {
		t.Fatalf("err = %v, want *serving.ErrOOM", err)
	}
}

// TestFleetConfigValidation covers the constructor error paths.
func TestFleetConfigValidation(t *testing.T) {
	trace := workload.PoissonTrace(workload.ShareGPT(), 5, 5, 1)
	if _, err := fleet.Run(vllmSpec(t), trace, fleet.Config{Replicas: 0}); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := fleet.Run(fleet.Spec{}, trace, fleet.Config{Replicas: 1}); err == nil {
		t.Error("empty spec accepted")
	}
}
