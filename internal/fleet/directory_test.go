package fleet

import (
	"math/rand"
	"testing"
	"time"

	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/workload"
)

// The directory-coherence property: after ANY sequence of cache
// operations, the gateway's global cache directory and the caches' own
// enumeration describe exactly the same resident sets, per location. The
// directory has no refresh path — it is only ever updated by the
// residency observers — so this is the invariant that proves the shim
// wiring is complete (no cache mutation escapes it).

// checkDirectoryCoherenceRadix compares one radix cache's ground truth
// against the directory's view of its location.
func checkDirectoryCoherenceRadix(t *testing.T, dir *CacheDirectory, c *RadixCache, loc, step int) {
	t.Helper()
	want := c.ResidentBlocks()
	got := dir.LocBlocks(loc)
	if len(want) != len(got) {
		t.Fatalf("step %d: loc %d holds %d blocks, directory lists %d", step, loc, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d: loc %d block %d: cache %x, directory %x", step, loc, i, want[i], got[i])
		}
	}
	if dir.LocTokens(loc) != c.used {
		t.Fatalf("step %d: loc %d used %d, directory claims %d", step, loc, c.used, dir.LocTokens(loc))
	}
}

// TestDirectoryCoherenceRadixUnderRandomOps drives a small fleet of
// observer-wired radix caches — sharing one index, spilling capacity
// evictions into a cold tier — through random put/install/remove/wipe
// sequences (wipes model crash and drain KV destruction), checking after
// every operation that the directory matches each cache's enumeration and
// the cold tier's. Deterministic per seed.
func TestDirectoryCoherenceRadixUnderRandomOps(t *testing.T) {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 16
	cfg.BranchFactor = 4
	cfg.BranchTurns = 2
	var chains [][]uint64
	for _, s := range workload.SessionScripts(cfg, 3) {
		for turn := range s.Turns {
			e := s.Entry(turn)
			chains = append(chains, e.Blocks, e.InputBlocks())
		}
	}
	cost := func(start, tokens int) float64 { return float64(start + tokens) }
	for _, admission := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := &Gateway{dir: NewCacheDirectory(workload.BlockTokens)}
			ix := NewRadixIndex()
			const nCaches = 3
			caches := make([]*RadixCache, nCaches)
			for i := range caches {
				caches[i] = NewRadixCacheIndexed(ix, 12*workload.BlockTokens, workload.BlockTokens, admission, cost)
				caches[i].setObserver(&dirShim{g: g, rep: &replica{index: i}})
			}
			g.cold = newColdTier(g, ix, 8*workload.BlockTokens, workload.BlockTokens, cost)
			for step := 0; step < 3000; step++ {
				c := caches[rng.Intn(nCaches)]
				chain := chains[rng.Intn(len(chains))]
				switch rng.Intn(8) {
				case 0, 1, 2:
					c.Put(chain)
				case 3, 4:
					c.Install(chain, rng.Intn(16*workload.BlockTokens))
				case 5:
					c.RemoveExclusive(chain) // migration departure: no spill
				case 6:
					c.Lookup(chain)
				case 7:
					if rng.Intn(20) == 0 {
						c.Clear() // crash/drain wipe: no spill, bulk retract
					}
				}
				for i, cc := range caches {
					checkDirectoryCoherenceRadix(t, g.dir, cc, i, step)
				}
				coldWant := g.cold.ResidentBlocks()
				coldGot := g.dir.LocBlocks(DirCold)
				if len(coldWant) != len(coldGot) {
					t.Fatalf("step %d: cold tier holds %d blocks, directory lists %d", step, len(coldWant), len(coldGot))
				}
				for i := range coldWant {
					if coldWant[i] != coldGot[i] {
						t.Fatalf("step %d: cold block %d: tier %x, directory %x", step, i, coldWant[i], coldGot[i])
					}
				}
				if g.dir.LocTokens(DirCold) != g.cold.used {
					t.Fatalf("step %d: cold used %d, directory claims %d", step, g.cold.used, g.dir.LocTokens(DirCold))
				}
			}
			if g.cold.stats.Spilled == 0 {
				t.Fatal("random ops never exercised a cold spill; workload too small")
			}
		}
	}
}

// TestDirectoryCoherencePrefixUnderRandomOps is the whole-key analogue:
// observer-wired PrefixCaches under random Put/Install/Remove/wipe
// sequences, directory view compared entry-by-entry against Snapshot.
func TestDirectoryCoherencePrefixUnderRandomOps(t *testing.T) {
	for _, admission := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := &Gateway{dir: NewCacheDirectory(workload.BlockTokens)}
			const nCaches = 3
			caches := make([]*PrefixCache, nCaches)
			for i := range caches {
				caches[i] = NewPrefixCache(5000, admission)
				caches[i].setObserver(&dirShim{g: g, rep: &replica{index: i}})
			}
			for step := 0; step < 3000; step++ {
				i := rng.Intn(nCaches)
				c := caches[i]
				key := SessionKey(int64(rng.Intn(24)))
				if rng.Intn(3) == 0 {
					key = GroupKey(rng.Intn(8))
				}
				tokens := rng.Intn(6500) - 200
				switch rng.Intn(6) {
				case 0, 1:
					c.Put(key, tokens)
				case 2:
					c.Install(key, tokens)
				case 3:
					c.Remove(key)
				case 4:
					c.Lookup(key)
				case 5:
					if rng.Intn(20) == 0 {
						// A crash wipe in whole-key mode removes entry by entry.
						for _, ent := range c.Snapshot() {
							c.Remove(ent.Key)
						}
					}
				}
				for j, cc := range caches {
					snap := cc.Snapshot()
					if len(snap) != len(g.dir.LocBlocks(j)) {
						t.Fatalf("step %d: loc %d holds %d entries, directory lists %d",
							step, j, len(snap), len(g.dir.LocBlocks(j)))
					}
					sum := 0
					for _, ent := range snap {
						if got := g.dir.Tokens(uint64(ent.Key), j); got != ent.Tokens {
							t.Fatalf("step %d: loc %d entry %x: cache %d tokens, directory %d",
								step, j, ent.Key, ent.Tokens, got)
						}
						sum += ent.Tokens
					}
					if g.dir.LocTokens(j) != sum {
						t.Fatalf("step %d: loc %d used %d, directory claims %d", step, j, sum, g.dir.LocTokens(j))
					}
				}
			}
		}
	}
}

// TestFleetDirectoryChaosAuditsClean is the end-to-end coherence check: a
// session workload under content routing with the directory and cold tier
// on — absorbing a stall, a drain, a link-degradation window and a crash —
// completes every request and emits a stream the full invariant auditor
// passes, directory/content-route/cold kinds included.
func TestFleetDirectoryChaosAuditsClean(t *testing.T) {
	scripts := chatScripts(50, 8, 0.2, 7)
	col := &obs.Collector{}
	cfg := chaosConfig(col)
	cfg.Policy = NewContentAffinity()
	cfg.Cache = CacheRadix
	cfg.CacheTokens = 4 * workload.BlockTokens // tiny: force spills
	cfg.ColdTierTokens = 16 * workload.BlockTokens
	faults := []workload.Fault{
		{At: 400 * time.Millisecond, Kind: workload.FaultStall, Slot: 1, Stall: 300 * time.Millisecond},
		{At: 600 * time.Millisecond, Kind: workload.FaultDegrade, Slot: 0, Window: 2 * time.Second, Factor: 8},
		{At: 800 * time.Millisecond, Kind: workload.FaultDrain, Slot: 2},
		{At: 1500 * time.Millisecond, Kind: workload.FaultCrash, Slot: 0},
	}
	res, err := RunSessionsFaults(scripts, cfg, true, faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Crashes == 0 || res.Faults.Drains == 0 || res.Faults.LinkDegrades == 0 {
		t.Fatalf("chaos run absorbed too few faults: %+v", res.Faults)
	}
	if res.Cold.Spilled == 0 {
		t.Fatalf("cold tier saw no spills at a %d-token replica cache: %+v", cfg.CacheTokens, res.Cold)
	}
	kinds := make(map[obs.Kind]int)
	for _, e := range col.Events {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindDirectoryUpdate, obs.KindContentRoute, obs.KindColdSpill} {
		if kinds[k] == 0 {
			t.Fatalf("stream carries no %s events; kinds seen: %v", k, kinds)
		}
	}
	if vs := analyze.Audit(col.Events); len(vs) != 0 {
		t.Fatalf("directory chaos stream failed audit (%d violations), first: %s", len(vs), vs[0])
	}
}
