package fleet

import "sort"

// The gateway-side global cache directory: which KV blocks (or whole-key
// prefix entries) have a resident copy at which location. Locations are
// replica indices plus the distinguished DirCold cold tier. The directory
// is kept coherent by residency observers wired into every replica cache
// — inserts, capacity evictions, migration removals, drain wipes and
// crash wipes all land here through the same cache operations that change
// ground truth, so the directory never has a second code path to drift
// from. ContentAffinity routes on it; the cold tier registers its copies
// in it; coherence is property-tested against cache enumeration after
// random op sequences.

// DirCold is the directory location of the fleet-shared host-memory cold
// tier (replica locations are their indices, >= 0).
const DirCold = -1

// CacheDirectory maps block/entry hashes to the locations holding a copy
// and the resident token count of each copy (always the block size in
// radix mode; whole-key entries vary). All reads used for routing are
// keyed lookups — deterministic regardless of map iteration order.
type CacheDirectory struct {
	blockTokens int
	byHash      map[uint64]map[int]int // hash -> location -> tokens
	byLoc       map[int]map[uint64]int // location -> hash -> tokens
	locTokens   map[int]int            // location -> total resident tokens
}

// NewCacheDirectory builds an empty directory. blockTokens is the radix
// block granularity used by ChainOverlap (irrelevant in whole-key mode).
func NewCacheDirectory(blockTokens int) *CacheDirectory {
	return &CacheDirectory{
		blockTokens: blockTokens,
		byHash:      make(map[uint64]map[int]int),
		byLoc:       make(map[int]map[uint64]int),
		locTokens:   make(map[int]int),
	}
}

// Set records that loc holds tokens of hash (tokens <= 0 deletes the
// copy). Returns the signed token delta the operation applied at loc.
func (d *CacheDirectory) Set(hash uint64, loc, tokens int) int {
	prev := 0
	if m := d.byHash[hash]; m != nil {
		prev = m[loc]
	}
	if tokens <= 0 {
		if prev == 0 {
			return 0
		}
		delete(d.byHash[hash], loc)
		if len(d.byHash[hash]) == 0 {
			delete(d.byHash, hash)
		}
		delete(d.byLoc[loc], hash)
		if len(d.byLoc[loc]) == 0 {
			delete(d.byLoc, loc)
		}
		d.locTokens[loc] -= prev
		return -prev
	}
	if d.byHash[hash] == nil {
		d.byHash[hash] = make(map[int]int, 2)
	}
	d.byHash[hash][loc] = tokens
	if d.byLoc[loc] == nil {
		d.byLoc[loc] = make(map[uint64]int)
	}
	d.byLoc[loc][hash] = tokens
	d.locTokens[loc] += tokens - prev
	return tokens - prev
}

// Tokens returns the resident token count of hash at loc (0 = no copy).
func (d *CacheDirectory) Tokens(hash uint64, loc int) int {
	if m := d.byHash[hash]; m != nil {
		return m[loc]
	}
	return 0
}

// LocTokens returns the total resident tokens the directory attributes to
// loc.
func (d *CacheDirectory) LocTokens(loc int) int { return d.locTokens[loc] }

// LocBlocks returns every hash with a copy at loc, ascending — the
// enumeration coherence tests compare against a cache's ResidentBlocks.
func (d *CacheDirectory) LocBlocks(loc int) []uint64 {
	m := d.byLoc[loc]
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropLoc wipes every copy at loc (a crash or drain wiped the replica's
// KV wholesale) and returns the tokens dropped.
func (d *CacheDirectory) DropLoc(loc int) int {
	m := d.byLoc[loc]
	for h := range m {
		hm := d.byHash[h]
		delete(hm, loc)
		if len(hm) == 0 {
			delete(d.byHash, h)
		}
	}
	delete(d.byLoc, loc)
	dropped := d.locTokens[loc]
	delete(d.locTokens, loc)
	return dropped
}

// ChainOverlap returns the longest directory-resident prefix of chain at
// loc, in tokens — the real-residency overlap ContentAffinity scores by.
func (d *CacheDirectory) ChainOverlap(chain []uint64, loc int) int {
	n := 0
	for n < len(chain) {
		if d.Tokens(chain[n], loc) == 0 {
			break
		}
		n++
	}
	return n * d.blockTokens
}

// ColdRun returns how many consecutive blocks of chain starting at block
// index `from` have a cold-tier copy — the contiguous run a cold fetch
// could splice onto a replica's resident prefix.
func (d *CacheDirectory) ColdRun(chain []uint64, from int) int {
	k := 0
	for from+k < len(chain) {
		if d.Tokens(chain[from+k], DirCold) == 0 {
			break
		}
		k++
	}
	return k
}

// Stats returns the number of distinct hashes known and total copies held.
func (d *CacheDirectory) Stats() (hashes, copies int) {
	hashes = len(d.byHash)
	for _, m := range d.byHash {
		copies += len(m)
	}
	return hashes, copies
}

// dirShim wires one replica's cache into the gateway's directory (and, on
// capacity evictions in radix mode, into the cold tier). It implements
// both residencyObserver (radix) and prefixObserver (whole-key); the
// hooks fire inside deterministic cache-operation order, so the emitted
// directory-update events replay identically.
type dirShim struct {
	g   *Gateway
	rep *replica
}

// blockAdded implements residencyObserver.
func (s *dirShim) blockAdded(ref *blockRef) {
	d := s.g.dir
	delta := d.Set(ref.hash, s.rep.index, d.blockTokens)
	if delta != 0 {
		s.g.emitDirUpdate(s.rep.index, delta, d.LocTokens(s.rep.index), "add")
	}
}

// blockDropped implements residencyObserver. Capacity evictions offer the
// block to the cold tier: the KV still physically existed at eviction
// time, so spilling it to host memory is a copy-out, not an invention.
// Removals (migration departures) and wipes never spill — that KV left or
// died.
func (s *dirShim) blockDropped(ref *blockRef, evicted bool) {
	d := s.g.dir
	if delta := d.Set(ref.hash, s.rep.index, 0); delta != 0 {
		s.g.emitDirUpdate(s.rep.index, delta, d.LocTokens(s.rep.index), "remove")
	}
	if evicted && s.g.cold != nil {
		s.g.coldSpill(s.rep, ref)
	}
}

// cacheCleared implements residencyObserver: one bulk wipe fact, not
// len(blocks) per-block drops (map iteration order would be
// nondeterministic, and wiped KV is never spillable).
func (s *dirShim) cacheCleared(usedTokens, blocks int) {
	dropped := s.g.dir.DropLoc(s.rep.index)
	if dropped != 0 {
		s.g.emitDirUpdate(s.rep.index, -dropped, 0, "wipe")
	}
}

// entryChanged implements prefixObserver (whole-key mode): the entry at
// key now holds `tokens` resident tokens at this replica (0 = gone).
func (s *dirShim) entryChanged(key PrefixKey, tokens int, evicted bool) {
	d := s.g.dir
	delta := d.Set(uint64(key), s.rep.index, tokens)
	if delta == 0 {
		return
	}
	label := "add"
	if delta < 0 {
		label = "remove"
	}
	s.g.emitDirUpdate(s.rep.index, delta, d.LocTokens(s.rep.index), label)
}
