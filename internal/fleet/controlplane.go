package fleet

import (
	"fmt"
	"sync"

	"loongserve/internal/controlplane"
	"loongserve/internal/kvcache"
)

// fleetGroup is the control-plane group ID for the gateway's single elastic
// group: all active replicas are its members, and every lifecycle change
// (activation, drain, crash repair) advances its epoch with a ScalePlan.
const fleetGroup controlplane.GroupID = 1

// fleetControl is the gateway's control plane: one controlplane.Manager on
// the fleet side, one controlplane.InstanceServer per replica, connected by
// in-process pipes carrying the real wire encoding. Replica lifecycle
// transitions are not direct field writes — they are the instance servers'
// reaction to ScalePlans, so epochs, acks/naks and metadata-cache resends
// are exercised by every fleet run, and fault injection (DropCaches,
// RemoveInstance) perturbs exactly the state a real deployment would lose.
//
// Concurrency: each instance server runs on its own goroutine, but the sim
// goroutine blocks inside Manager.Scale until every member has acked, and
// the ack rides the same pipe the handler's state write preceded — so
// replica state read after scale() returns is happens-after the handler's
// write, with no extra locking.
type fleetControl struct {
	mgr     *controlplane.Manager
	servers []*controlplane.InstanceServer
	wg      sync.WaitGroup
	closed  bool
}

func newFleetControl() *fleetControl {
	return &fleetControl{mgr: controlplane.NewManager()}
}

// register wires a new replica into the control plane: a pipe pair, the
// manager-side registration, and the replica's instance server with a
// lifecycle handler that flips the replica's state on ScalePlans.
func (fc *fleetControl) register(rep *replica) {
	mc, ic := controlplane.Pipe()
	fc.mgr.AddInstance(kvcache.InstanceID(rep.index), mc)
	srv := controlplane.NewInstanceServer(kvcache.InstanceID(rep.index), ic, &lifecycleHandler{rep: rep})
	fc.servers = append(fc.servers, srv)
	fc.wg.Add(1)
	go func() {
		defer fc.wg.Done()
		if err := srv.Serve(); err != nil {
			panic(fmt.Sprintf("fleet: instance server %d: %v", rep.index, err))
		}
	}()
}

// createGroup installs the initial membership at epoch 1.
func (fc *fleetControl) createGroup(members []kvcache.InstanceID) error {
	return fc.mgr.CreateGroup(fleetGroup, members, 1)
}

// scale advances the group to a new membership; blocks until every
// reachable member acked the plan.
func (fc *fleetControl) scale(kind controlplane.ScaleKind, members []kvcache.InstanceID) error {
	return fc.mgr.Scale(fleetGroup, kind, members)
}

// remove tears down a crashed replica's connection: the manager stops
// commanding it, and its serve loop exits on EOF.
func (fc *fleetControl) remove(idx int) {
	fc.mgr.RemoveInstance(kvcache.InstanceID(idx))
}

// dropCaches wipes one instance's ESP metadata cache (the partial-failure
// fault): the next command it receives draws a NakUnknownGroup and the
// manager's config-resend path.
func (fc *fleetControl) dropCaches(idx int) {
	fc.servers[idx].DropCaches()
}

func (fc *fleetControl) stats() controlplane.Stats { return fc.mgr.Stats() }

// close shuts every connection down and waits for the serve loops to exit.
// Idempotent: Finalize and constructor error paths both call it.
func (fc *fleetControl) close() {
	if fc.closed {
		return
	}
	fc.closed = true
	fc.mgr.Close()
	fc.wg.Wait()
}

// lifecycleHandler reacts to control-plane messages on behalf of one
// replica. Only ScalePlans matter to the lifecycle: a plan listing the
// replica activates a warming one, a plan omitting it drains an active one.
// Data-plane commands (prefill/decode/release) are accepted unexercised —
// the fleet's per-request path stays on the engine fast path.
type lifecycleHandler struct {
	controlplane.NopHandler
	rep *replica
}

// Scale implements controlplane.Handler.
func (h *lifecycleHandler) Scale(cfg *controlplane.GroupConfig, plan *controlplane.ScalePlan) error {
	member := false
	for _, id := range plan.Members {
		if int(id) == h.rep.index {
			member = true
			break
		}
	}
	switch {
	case member && h.rep.state == ReplicaWarming:
		h.rep.state = ReplicaActive
	case !member && h.rep.state == ReplicaActive:
		h.rep.state = ReplicaDraining
	}
	return nil
}
