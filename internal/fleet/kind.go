package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
)

// ReplicaKind is one provisionable replica type of a heterogeneous fleet:
// a name, the Spec that builds an instance of it, and a derived capability
// sheet. The sheet is measured from the kind's own cluster, engine and
// cost model — node count, GPU class, KV capacity, the longest sequence
// the engine can hold, prefill speed and provisioning cost are read off
// the artifacts the Spec constructs, never hand-typed — so a kind cannot
// advertise a capability its replicas do not have.
//
// Kinds are compared by identity: the same *ReplicaKind in two groups
// means the same type of replica. A resolved kind is immutable and safe to
// share across gateways and experiment arms.
type ReplicaKind struct {
	Name string
	Spec Spec

	// Derived by Resolve (or by the first gateway that provisions the
	// kind). Read-only afterwards.

	// Nodes and GPUs describe the hardware footprint of one replica.
	Nodes int
	GPUs  int
	// KVCapacity is the replica's total KV pool in token slots.
	KVCapacity int
	// MaxContext is the largest single sequence (input + output KV) one
	// replica can hold: the engine's own serving envelope
	// (serving.CapabilityReporter) when it reports one, otherwise the
	// largest single-instance pool — the conservative no-KV-sharding bound.
	MaxContext int
	// CostUnits is the relative provisioning cost of keeping one replica
	// alive for one second, in GPU-seconds — the denominator of
	// cost-normalized goodput. Derived as the replica's GPU count.
	CostUnits float64
	// PrefillRate is the tokens/second one replica prefills at the
	// reference 8K-token prompt, from the kind's cost model — the exchange
	// rate capability-aware scores use.
	PrefillRate float64

	cm       *costmodel.CostModel
	nvlink   cluster.Link
	ibLink   cluster.Link
	resolved bool
}

// NewKind wraps a Spec as a named replica kind. The capability sheet is
// filled by Resolve (explicitly, or implicitly by the first gateway that
// builds a replica of the kind).
func NewKind(name string, spec Spec) *ReplicaKind {
	return &ReplicaKind{Name: name, Spec: spec}
}

// Resolve derives the kind's capability sheet by building one probe
// replica — cluster, pool and engine — and reading the facts off it. The
// probe never simulates; it exists only to be measured. Idempotent.
func (k *ReplicaKind) Resolve() error {
	if k.resolved {
		return nil
	}
	if k.Spec.NewEngine == nil || k.Spec.NewCluster == nil {
		return fmt.Errorf("fleet: kind %q needs NewEngine and NewCluster", k.Name)
	}
	c, err := k.Spec.NewCluster()
	if err != nil {
		return fmt.Errorf("fleet: kind %q cluster: %w", k.Name, err)
	}
	eng := k.Spec.NewEngine()
	env := &serving.Env{
		Sim:      simevent.New(),
		Cluster:  c,
		CM:       costmodel.New(c.Model, c.HW),
		Pool:     c.NewPool(),
		Complete: func(*serving.Request) {},
	}
	if err := eng.Init(env); err != nil {
		return fmt.Errorf("fleet: kind %q probe init: %w", k.Name, err)
	}
	k.resolveFrom(c, env.CM, eng)
	return nil
}

// resolveFrom fills the capability sheet from an already-built replica's
// cluster, cost model and initialized engine.
func (k *ReplicaKind) resolveFrom(c *cluster.Cluster, cm *costmodel.CostModel, eng serving.Engine) {
	if k.resolved {
		return
	}
	nodes := make(map[cluster.NodeID]bool)
	maxInstance := 0
	for _, inst := range c.Instances {
		nodes[inst.Node] = true
		k.GPUs += inst.TP
		k.KVCapacity += inst.KVCapacity
		if inst.KVCapacity > maxInstance {
			maxInstance = inst.KVCapacity
		}
	}
	k.Nodes = len(nodes)
	k.CostUnits = float64(k.GPUs)
	k.MaxContext = maxInstance
	if cr, ok := eng.(serving.CapabilityReporter); ok {
		k.MaxContext = cr.Capability().MaxSeqTokens
	}
	k.cm = cm
	k.nvlink = cluster.Link{Bandwidth: c.HW.NVLinkBandwidth, Latency: c.HW.NVLinkLatency}
	k.ibLink = cluster.Link{Bandwidth: c.HW.IBBandwidth, Latency: c.HW.IBLatency}
	// The same calibration the gateway has always used for the
	// migrate-vs-recompute exchange rate, now per kind.
	const refLen = 8192
	k.PrefillRate = refLen / k.cm.PrefillIterTime([]int{refLen}, 1, k.GPUs, k.nvlink).Seconds()
	k.resolved = true
}

// PrefillSeconds predicts the time one replica of this kind needs to
// prefill an n-token prompt, from the kind's cost model — the pricing
// primitive behind capability-aware routing and kind-picking autoscaling.
// The kind must be resolved.
func (k *ReplicaKind) PrefillSeconds(n int) float64 {
	if n <= 0 {
		return 0
	}
	return k.cm.PrefillIterTime([]int{n}, 1, k.GPUs, k.nvlink).Seconds()
}

// SLOBudget returns the latency budget for an (in, out) request on this
// kind's reference configuration — used when a heterogeneous run pins all
// arms' budgets to one kind (Config.SLOKind).
func (k *ReplicaKind) SLOBudget(in, out int, scale float64) time.Duration {
	return serving.SLOBudget(k.cm, k.GPUs, in, out, scale)
}

// Capability returns the policy-facing capability descriptor of one
// replica of this kind.
func (k *ReplicaKind) Capability() ReplicaCapability {
	return ReplicaCapability{
		Kind:        k.Name,
		GPUs:        k.GPUs,
		CostUnits:   k.CostUnits,
		KVCapacity:  k.KVCapacity,
		MaxContext:  k.MaxContext,
		PrefillRate: k.PrefillRate,
	}
}

// ReplicaGroup is one slice of a heterogeneous fleet composition: Count
// replicas of Kind.
type ReplicaGroup struct {
	Kind  *ReplicaKind
	Count int
}

// ParseMix parses a CLI composition like "loong:2,contbatch:4" against a
// set of known kinds, returning one group per mention. Errors name the
// known kinds, mirroring the -cache validation style.
func ParseMix(mix string, known []*ReplicaKind) ([]ReplicaGroup, error) {
	names := make([]string, len(known))
	byName := make(map[string]*ReplicaKind, len(known))
	for i, k := range known {
		names[i] = k.Name
		byName[k.Name] = k
	}
	var groups []ReplicaGroup
	for _, part := range strings.Split(mix, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, ":")
		count := 1
		if hasCount {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fleet: bad replica count %q in %q (want kind:count)", countStr, part)
			}
			count = n
		}
		k, found := byName[name]
		if !found {
			return nil, fmt.Errorf("fleet: unknown replica kind %q (known kinds: %s)", name, strings.Join(names, ", "))
		}
		groups = append(groups, ReplicaGroup{Kind: k, Count: count})
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("fleet: empty composition %q (known kinds: %s)", mix, strings.Join(names, ", "))
	}
	return groups, nil
}
