package fleet

import (
	"testing"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

const rcB = 256 // block size used throughout these tests

func rc(capBlocks int, admission bool, cost func(start, tokens int) float64) *RadixCache {
	return NewRadixCache(capBlocks*rcB, rcB, admission, cost)
}

// ch builds a chain literal (hash values are opaque to the cache; tests
// encode prefix sharing by reusing leading values).
func ch(hashes ...uint64) []uint64 { return hashes }

func TestRadixCacheBasics(t *testing.T) {
	c := rc(8, false, nil)
	if got := c.Lookup(ch(1, 2, 3)); got != 0 {
		t.Fatalf("cold lookup = %d", got)
	}
	c.Put(ch(1, 2, 3))
	if got := c.Lookup(ch(1, 2, 3)); got != 3*rcB {
		t.Fatalf("lookup = %d, want %d", got, 3*rcB)
	}
	// A longer chain matches only its resident prefix.
	if got := c.MatchTokens(ch(1, 2, 3, 4, 5)); got != 3*rcB {
		t.Fatalf("prefix match = %d, want %d", got, 3*rcB)
	}
	// A diverging chain matches through the shared prefix.
	if got := c.MatchTokens(ch(1, 2, 9)); got != 2*rcB {
		t.Fatalf("diverged match = %d, want %d", got, 2*rcB)
	}
	// Extending a path adds only the new blocks.
	c.Put(ch(1, 2, 3, 4))
	if c.Len() != 4 || c.Used() != 4*rcB {
		t.Fatalf("len %d used %d after extension", c.Len(), c.Used())
	}
	// A sibling branch shares the common prefix physically.
	c.Put(ch(1, 2, 30, 31))
	if c.Len() != 6 {
		t.Fatalf("len %d after branch, want 6 (blocks 1,2 shared)", c.Len())
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits %d misses %d", c.Hits, c.Misses)
	}
	// Empty chains are inert.
	c.Put(nil)
	if got := c.Lookup(nil); got != 0 || c.Len() != 6 {
		t.Fatalf("nil chain leaked: %d len %d", got, c.Len())
	}
}

// TestRadixCacheLeafOnlyEviction: capacity pressure drops leaves, never
// interior blocks — a resident block's whole prefix stays resident.
func TestRadixCacheLeafOnlyEviction(t *testing.T) {
	c := rc(4, false, nil)
	c.Put(ch(1, 2, 3, 4)) // full
	c.Put(ch(1, 2, 50))   // needs one eviction; only leaf is 4
	if c.MatchTokens(ch(1, 2, 3, 4)) != 3*rcB {
		t.Fatal("eviction removed a non-leaf or the wrong leaf")
	}
	if c.MatchTokens(ch(1, 2, 50)) != 3*rcB {
		t.Fatal("new branch not inserted")
	}
	if c.Evicted != 1 || c.Used() != 4*rcB {
		t.Fatalf("evicted %d used %d", c.Evicted, c.Used())
	}
	// Invariant sweep: every resident block's parent chain is resident.
	for h, n := range c.blocks {
		for p := n.parent; p != nil; p = p.parent {
			if c.blocks[p.ref.hash] != p {
				t.Fatalf("block %x has a non-resident ancestor", h)
			}
		}
	}
}

// TestRadixCacheCostPricedEviction: with the cost model attached, the
// cheap-to-recompute shallow leaf is evicted before the expensive deep
// leaf; with flat pricing the hash tie-break picks the other victim. The
// contrast is the point — eviction order is a cost-model decision, not a
// token-count one.
func TestRadixCacheCostPricedEviction(t *testing.T) {
	deepCost := func(start, tokens int) float64 { return float64(start + tokens) }
	c := rc(4, false, deepCost)
	c.Put(ch(5, 6, 7)) // deep path: leaf 7 at depth 2 (expensive)
	c.Put(ch(9))       // shallow path: leaf 9 at depth 0 (cheap)
	c.Lookup(ch(5, 6, 7))
	c.Lookup(ch(9)) // equal recency and frequency
	c.Put(ch(21))   // forces one eviction
	if c.MatchTokens(ch(9)) != 0 {
		t.Fatal("cost-priced eviction kept the cheap shallow leaf")
	}
	if c.MatchTokens(ch(5, 6, 7)) != 3*rcB {
		t.Fatal("cost-priced eviction dropped the expensive deep path")
	}

	// Same sequence with flat pricing: priorities tie, the lower hash
	// (leaf 7) loses instead.
	f := rc(4, false, nil)
	f.Put(ch(5, 6, 7))
	f.Put(ch(9))
	f.Lookup(ch(5, 6, 7))
	f.Lookup(ch(9))
	f.Put(ch(21))
	if f.MatchTokens(ch(5, 6, 7)) != 2*rcB {
		t.Fatalf("flat pricing: deep leaf survived (match %d)", f.MatchTokens(ch(5, 6, 7)))
	}
	if f.MatchTokens(ch(9)) != rcB {
		t.Fatal("flat pricing: shallow leaf evicted despite tie-break")
	}
}

// TestRadixCacheClockAgesStaleBlocks pins the GDSF aging rule: eviction
// advances the clock to the victim's priority, so a once-hot block that is
// never touched again is eventually outranked by a stream of moderately
// used newcomers. With a frozen clock the stale block would be immortal
// (newcomers would forever evict each other instead).
func TestRadixCacheClockAgesStaleBlocks(t *testing.T) {
	c := rc(3, false, nil)
	c.Put(ch(1, 2))
	for i := 0; i < 20; i++ {
		c.Lookup(ch(1, 2)) // hot once; never touched again below
	}
	for i := 0; i < 50; i++ {
		k := uint64(100 + i)
		for j := 0; j < 8; j++ {
			c.Lookup(ch(k))
		}
		c.Put(ch(k))
		if c.MatchTokens(ch(1, 2)) < 2*rcB {
			return // the stale tail aged out
		}
	}
	t.Fatal("stale hot path never evicted: GDSF clock is not advancing")
}

// TestRadixCacheAdmission: TinyLFU at block granularity — a never-seen
// block cannot displace a frequently requested one, until it earns the
// frequency itself.
func TestRadixCacheAdmission(t *testing.T) {
	c := rc(2, true, nil)
	c.Put(ch(1, 2))
	for i := 0; i < 10; i++ {
		c.Lookup(ch(1, 2))
	}
	c.Put(ch(30)) // one-hit wonder: must be rejected
	if c.MatchTokens(ch(30)) != 0 {
		t.Fatal("cold block admitted over hot victim")
	}
	if c.Rejected != 1 {
		t.Fatalf("Rejected = %d", c.Rejected)
	}
	if c.MatchTokens(ch(1, 2)) != 2*rcB {
		t.Fatal("hot path damaged by rejected insertion")
	}
	for i := 0; i < 12; i++ {
		c.Lookup(ch(30))
	}
	c.Put(ch(30))
	if c.MatchTokens(ch(30)) != rcB {
		t.Fatal("now-popular block still rejected")
	}
	// Without admission the same newcomer evicts immediately.
	p := rc(2, false, nil)
	p.Put(ch(1, 2))
	for i := 0; i < 10; i++ {
		p.Lookup(ch(1, 2))
	}
	p.Put(ch(30))
	if p.MatchTokens(ch(30)) != rcB {
		t.Fatal("plain cache should admit unconditionally")
	}
}

// TestRadixCacheRemoveExclusive: removal takes only the session-private
// tail; blocks shared with a sibling branch stay resident.
func TestRadixCacheRemoveExclusive(t *testing.T) {
	c := rc(8, false, nil)
	c.Put(ch(1, 2, 10, 11))
	c.Put(ch(1, 2, 20))
	if freed := c.RemoveExclusive(ch(1, 2, 10, 11)); freed != 2*rcB {
		t.Fatalf("freed %d, want %d (only the exclusive tail)", freed, 2*rcB)
	}
	if c.MatchTokens(ch(1, 2, 20)) != 3*rcB {
		t.Fatal("sibling branch lost shared blocks")
	}
	// Removing the last branch takes the whole path.
	if freed := c.RemoveExclusive(ch(1, 2, 20)); freed != 3*rcB {
		t.Fatalf("freed %d, want %d", freed, 3*rcB)
	}
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("len %d used %d after full removal", c.Len(), c.Used())
	}
	if c.Evicted != 0 {
		t.Fatal("RemoveExclusive counted as eviction")
	}
}

// TestRadixCacheInstallBypassesAdmission: migrated KV lands even when the
// admission filter would reject a Put of the same blocks.
func TestRadixCacheInstallBypassesAdmission(t *testing.T) {
	c := rc(2, true, nil)
	c.Put(ch(1, 2))
	for i := 0; i < 10; i++ {
		c.Lookup(ch(1, 2))
	}
	c.Install(ch(40, 41), 2*rcB)
	if c.MatchTokens(ch(40, 41)) != 2*rcB {
		t.Fatal("install rejected by admission")
	}
	if c.Used() != 2*rcB {
		t.Fatalf("used %d, want %d", c.Used(), 2*rcB)
	}
	// The token limit truncates the installed path.
	d := rc(8, false, nil)
	d.Install(ch(1, 2, 3, 4), 2*rcB)
	if d.MatchTokens(ch(1, 2, 3, 4)) != 2*rcB {
		t.Fatalf("limited install landed %d tokens", d.MatchTokens(ch(1, 2, 3, 4)))
	}
}

// radixSpec is toySpec with the gateway in radix-cache mode (helper for
// the gateway-level tests below).
func radixConfig(replicas int, p Policy) Config {
	return Config{Replicas: replicas, Policy: p, Cache: CacheRadix}
}

// TestRadixGatewayCrossSessionSharing is the tentpole behavior at gateway
// level: a second session whose prompt shares a block prefix with a
// finished first session gets a prefix-cache hit the whole-key cache can
// never give (distinct session keys, no shared group entry).
func TestRadixGatewayCrossSessionSharing(t *testing.T) {
	run := func(cache string) *Result {
		sim := simevent.New()
		g, err := NewGateway(toySpec(), Config{Replicas: 1, Policy: NewPrefixAffinity(), Cache: cache}, sim)
		if err != nil {
			t.Fatal(err)
		}
		// Session 1: 1000 input + 200 output = 4 blocks [1,2,3,4].
		e1 := workload.Entry{InputLen: 1000, OutputLen: 200, SessionID: 1, Blocks: ch(1, 2, 3, 4)}
		r1 := &serving.Request{ID: 1, InputLen: e1.InputLen, OutputLen: e1.OutputLen}
		sim.At(0, func() { g.Submit(r1, e1) })
		// Session 2 arrives later, sharing the first three blocks (e.g. a
		// branch of session 1): input 1100 = 4 input blocks [1,2,3,40].
		e2 := workload.Entry{InputLen: 1100, OutputLen: 100, SessionID: 2, PrefixLen: 900,
			Blocks: ch(1, 2, 3, 40)}
		r2 := &serving.Request{ID: 2, InputLen: e2.InputLen, OutputLen: e2.OutputLen,
			Arrival: simevent.Time(time.Second)}
		sim.At(simevent.Time(time.Second), func() { g.Submit(r2, e2) })
		sim.Run()
		if g.Completed() != 2 {
			t.Fatalf("%d of 2 completed", g.Completed())
		}
		return g.Finalize()
	}

	radix := run(CacheRadix)
	rs := radix.Replicas[0]
	if rs.HitRequests != 1 || rs.HitTokens != 3*rcB {
		t.Fatalf("radix: %d hit requests, %d hit tokens; want 1 and %d", rs.HitRequests, rs.HitTokens, 3*rcB)
	}
	whole := run(CacheWholeKey)
	ws := whole.Replicas[0]
	if ws.HitTokens != 0 {
		t.Fatalf("whole-key cache hit %d tokens across distinct sessions", ws.HitTokens)
	}
}

// TestRadixGatewayDrainMovesSubtrees: draining a radix-mode replica moves
// each homed session's tree path to a survivor — the session stays
// resident fleet-wide with its token count intact, and the drained replica
// retires empty.
func TestRadixGatewayDrainMovesSubtrees(t *testing.T) {
	sim := simevent.New()
	// LeastLoaded ties to the lowest index, so serially submitted requests
	// against an idle fleet all land on replica 0 — deterministic setup.
	g, err := NewGateway(toySpec(), radixConfig(2, NewLeastLoaded()), sim)
	if err != nil {
		t.Fatal(err)
	}
	// Two sessions sharing a 2-block trunk, plus private tails. The second
	// arrives after the first completes, so both sit idle on replica 0.
	entries := []workload.Entry{
		{InputLen: 900, OutputLen: 200, SessionID: 1, Blocks: ch(1, 2, 3, 4)},
		{InputLen: 800, OutputLen: 300, SessionID: 2, Blocks: ch(1, 2, 30, 31)},
	}
	for i, e := range entries {
		e := e
		at := simevent.Time(time.Duration(i) * time.Second)
		r := &serving.Request{ID: kvcache.RequestID(i + 1), InputLen: e.InputLen, OutputLen: e.OutputLen, Arrival: at}
		sim.At(at, func() { g.Submit(r, e) })
	}
	var victims []int
	sim.At(simevent.Time(2*time.Second), func() {
		// Find where the sessions landed; drain that replica.
		locs := g.SessionLocations(1)
		if len(locs) != 1 {
			t.Errorf("session 1 on %d replicas before drain", len(locs))
			return
		}
		for idx := range locs {
			victims = append(victims, idx)
			if err := g.DrainReplica(idx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}
	})
	sim.Run()

	if len(victims) != 1 {
		t.Fatal("drain never ran")
	}
	victim := victims[0]
	if st := g.replicas[victim].state; st != ReplicaRetired {
		t.Fatalf("victim is %v, want retired", st)
	}
	if n := g.replicas[victim].radix.Len(); n != 0 {
		t.Fatalf("victim cache still holds %d blocks", n)
	}
	for sid, wantTokens := range map[int64]int{1: 4 * rcB, 2: 4 * rcB} {
		locs := g.SessionLocations(sid)
		if len(locs) != 1 {
			t.Fatalf("session %d on %d replicas after drain: %v", sid, len(locs), locs)
		}
		for idx, got := range locs {
			if idx == victim {
				t.Fatalf("session %d still on drained replica", sid)
			}
			if got != wantTokens {
				t.Fatalf("session %d migrated with %d tokens, want %d", sid, got, wantTokens)
			}
		}
	}
	res := g.Finalize()
	if res.Migrations.Count != 2 {
		t.Fatalf("migrations = %d, want 2 (one per homed session)", res.Migrations.Count)
	}
	// The shared trunk rides along with each path but is stored once at the
	// destination: 2 shared + 2 + 2 private = 6 blocks resident.
	var survivor *replica
	for _, rep := range g.replicas {
		if rep.index != victim {
			survivor = rep
		}
	}
	if survivor.radix.Len() != 6 {
		t.Fatalf("survivor holds %d blocks, want 6 (shared trunk deduplicated)", survivor.radix.Len())
	}
}

// TestRadixGatewaySessionWorkload runs a real multi-turn session workload
// end to end in radix mode: every request completes, later turns hit the
// cache, and two identical runs produce identical records and stats.
func TestRadixGatewaySessionWorkload(t *testing.T) {
	scripts := chatScripts(30, 5, 0.5, 21)
	run := func() *Result {
		res, err := RunSessions(toySpec(), scripts, radixConfig(2, NewPrefixAffinity()), true)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.TokenHitRatio() < 0.5 {
		t.Fatalf("radix token hit ratio %.3f below 0.5 on a warm session trace", a.TokenHitRatio())
	}
	b := run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical radix runs", i)
		}
	}
	for i := range a.Replicas {
		if a.Replicas[i] != b.Replicas[i] {
			t.Fatalf("replica %d stats differ: %+v vs %+v", i, a.Replicas[i], b.Replicas[i])
		}
	}
}

// TestGatewayRejectsUnknownCache covers the config error path.
func TestGatewayRejectsUnknownCache(t *testing.T) {
	sim := simevent.New()
	if _, err := NewGateway(toySpec(), Config{Replicas: 1, Cache: "quantum"}, sim); err == nil {
		t.Fatal("unknown cache kind accepted")
	}
}
