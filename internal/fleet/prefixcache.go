package fleet

import (
	"fmt"
)

// PrefixKey identifies a reusable KV prefix. Two key families exist:
// per-session keys (the conversation so far) and per-prompt-group keys
// (a system prompt shared by many sessions). Zero is the absent key.
type PrefixKey uint64

// Family tags separating the two key spaces. They are XOR-mixed with the
// already-hashed id rather than OR-ed onto the raw id: OR-ing a tag into
// the high bits silently clobbers it for ids >= 2^48 (and for every
// negative id, whose two's-complement form fills the high bits), at which
// point SessionKey(a) and GroupKey(b) can collide for distinct identities.
const (
	sessionKeyTag = 0x5e55_0000_0000_0000
	groupKeyTag   = 0x6702_0000_0000_0000
)

// SessionKey returns the cache key for a session's accumulated context.
func SessionKey(sessionID int64) PrefixKey {
	if sessionID == 0 {
		return 0
	}
	return PrefixKey(mix64(sessionKeyTag ^ mix64(uint64(sessionID))))
}

// GroupKey returns the cache key for a shared system prompt family.
func GroupKey(group int) PrefixKey {
	if group == 0 {
		return 0
	}
	return PrefixKey(mix64(groupKeyTag ^ mix64(uint64(group))))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed hash used
// for cache keys, sketch rows and replica home selection. Deterministic by
// construction — routing decisions must replay identically across runs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// freqSketch is a 4-row count-min sketch with 8-bit saturating counters
// and periodic halving (the TinyLFU aging mechanism), sized to the
// configured number of counters rounded up to a power of two. It estimates
// how often a prefix key has been requested, which the admission policy
// compares between an incoming entry and the eviction victim.
type freqSketch struct {
	rows  [4][]uint8
	mask  uint64
	incrs int
	reset int
}

func newFreqSketch(counters int) *freqSketch {
	if counters < 16 {
		counters = 16
	}
	w := 1
	for w < counters {
		w <<= 1
	}
	s := &freqSketch{mask: uint64(w - 1), reset: 8 * w}
	for i := range s.rows {
		s.rows[i] = make([]uint8, w)
	}
	return s
}

func (s *freqSketch) index(key PrefixKey, row int) uint64 {
	return mix64(uint64(key)+uint64(row)*0xa24b_1f2c_9d38_e57b) & s.mask
}

// touch records one access and ages the sketch when due.
func (s *freqSketch) touch(key PrefixKey) {
	for i := range s.rows {
		idx := s.index(key, i)
		if s.rows[i][idx] < 255 {
			s.rows[i][idx]++
		}
	}
	s.incrs++
	if s.incrs >= s.reset {
		s.age()
	}
}

// estimate returns the minimum counter over the rows.
func (s *freqSketch) estimate(key PrefixKey) int {
	est := 255
	for i := range s.rows {
		if v := int(s.rows[i][s.index(key, i)]); v < est {
			est = v
		}
	}
	return est
}

// age halves every counter so stale popularity decays.
func (s *freqSketch) age() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] >>= 1
		}
	}
	s.incrs = 0
}

// prefixObserver hears one whole-key cache's resident-set transitions:
// after any mutation, key holds tokens resident tokens (0 = gone).
// evicted marks capacity evictions, mirroring residencyObserver's flag.
type prefixObserver interface {
	entryChanged(key PrefixKey, tokens int, evicted bool)
}

// PrefixCache models one replica's prefix-KV store: a token-capacity LRU
// whose eviction cost is the entry's KV size, with optional TinyLFU-style
// admission — a new prefix only displaces resident ones when the frequency
// sketch estimates it to be at least as popular as the victims it would
// evict. Admission keeps one-shot requests from flushing hot shared
// prompts, the same one-hit-wonder protection go-mcache's cache applies.
//
// The cache is an accounting model, not a byte store: entries carry only
// their token counts. It is deterministic — no clocks, no randomness.
type PrefixCache struct {
	capacity  int
	used      int
	admission bool
	entries   map[PrefixKey]*lruNode
	lru       lruList // front = most recent; nodes pooled on its free list
	sketch    *freqSketch

	// observer hears resident-set transitions (the gateway's cache-
	// directory shim); nil for standalone caches, costing one nil check
	// per mutation and leaving behavior untouched.
	observer prefixObserver

	// Instrumentation.
	Hits      int // lookups that found a resident prefix
	Misses    int // lookups that found nothing
	Evicted   int // entries displaced by capacity pressure
	Rejected  int // insertions refused by the admission policy
	HitTokens int64
}

// NewPrefixCache builds a cache holding up to capTokens KV tokens.
// admission enables the TinyLFU admission filter; without it the cache is
// a plain capacity-cost LRU.
func NewPrefixCache(capTokens int, admission bool) *PrefixCache {
	if capTokens <= 0 {
		panic(fmt.Sprintf("fleet: non-positive cache capacity %d", capTokens))
	}
	c := &PrefixCache{
		capacity:  capTokens,
		admission: admission,
		entries:   make(map[PrefixKey]*lruNode),
		sketch:    newFreqSketch(4096),
	}
	c.lru.init()
	return c
}

// Capacity returns the token capacity.
func (c *PrefixCache) Capacity() int { return c.capacity }

// Used returns the resident token count.
func (c *PrefixCache) Used() int { return c.used }

// Len returns the resident entry count.
func (c *PrefixCache) Len() int { return len(c.entries) }

// setObserver attaches the resident-set observer (nil detaches).
func (c *PrefixCache) setObserver(o prefixObserver) { c.observer = o }

// Peek returns the resident token count for key without touching recency,
// frequency or hit statistics — the side-effect-free probe routing
// policies use to score replicas they may not pick.
func (c *PrefixCache) Peek(key PrefixKey) int {
	if key == 0 {
		return 0
	}
	if el, ok := c.entries[key]; ok {
		return el.tokens
	}
	return 0
}

// Lookup returns the resident token count for key and records the access:
// frequency is counted whether or not the key is resident (misses inform
// future admission), recency and hit statistics only on a hit.
func (c *PrefixCache) Lookup(key PrefixKey) int {
	if key == 0 {
		return 0
	}
	c.sketch.touch(key)
	el, ok := c.entries[key]
	if !ok {
		c.Misses++
		return 0
	}
	c.lru.moveToFront(el)
	c.Hits++
	c.HitTokens += int64(el.tokens)
	return el.tokens
}

// PrefixEntry is one resident entry, as reported by Snapshot.
type PrefixEntry struct {
	Key    PrefixKey
	Tokens int
}

// Snapshot returns the resident entries in recency order (most recent
// first) — the enumeration a drain uses to evacuate a replica's KV.
func (c *PrefixCache) Snapshot() []PrefixEntry {
	out := make([]PrefixEntry, 0, c.lru.len())
	for el := c.lru.front(); el != nil; el = c.lru.next(el) {
		out = append(out, PrefixEntry{Key: el.key, Tokens: el.tokens})
	}
	return out
}

// Remove deletes key, returning its resident token count (0 when absent).
// It models KV leaving the replica — a migration departure — so the
// Evicted counter is untouched.
func (c *PrefixCache) Remove(key PrefixKey) int {
	el, ok := c.entries[key]
	if !ok {
		return 0
	}
	tokens := el.tokens
	c.lru.remove(el)
	delete(c.entries, key)
	c.used -= tokens
	if c.observer != nil {
		c.observer.entryChanged(key, 0, false)
	}
	return tokens
}

// Install inserts or grows key, bypassing the admission filter: the KV
// physically arrived over the interconnect (a migration landing), so
// residency is a fact, not a caching bet. Capacity is still enforced by
// evicting the LRU tail; entries larger than the whole cache are ignored,
// and Install never shrinks an entry a fresher completion already grew.
func (c *PrefixCache) Install(key PrefixKey, tokens int) {
	if key == 0 || tokens <= 0 || tokens > c.capacity {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.lru.moveToFront(el)
		if el.tokens >= tokens {
			return
		}
		c.used += tokens - el.tokens
		el.tokens = tokens
		if c.observer != nil {
			c.observer.entryChanged(key, tokens, false)
		}
		c.evictOver(el)
		return
	}
	el := c.lru.pushFront(key, tokens)
	c.entries[key] = el
	c.used += tokens
	if c.observer != nil {
		c.observer.entryChanged(key, tokens, false)
	}
	c.evictOver(el)
}

// Put inserts or updates key at the given token size. Updates always
// succeed (the prefix is already resident and just grew — its KV was
// produced by the request that extends it) but never shrink: completions
// can land out of order under open-loop arrivals, and a stale smaller
// completion must not discard KV a later turn already produced. A resident
// entry is always touched for recency — including when the session has
// outgrown the whole cache, in which case its stored size is capped at
// capacity instead of leaving the hot entry stale at the LRU tail.
// Insertions of new keys pass the admission filter when eviction is
// required; new entries larger than the whole cache are ignored.
func (c *PrefixCache) Put(key PrefixKey, tokens int) {
	if key == 0 || tokens <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.lru.moveToFront(el)
		if tokens > c.capacity {
			tokens = c.capacity
		}
		if tokens > el.tokens {
			c.used += tokens - el.tokens
			el.tokens = tokens
			if c.observer != nil {
				c.observer.entryChanged(key, tokens, false)
			}
			c.evictOver(el)
		}
		return
	}
	if tokens > c.capacity {
		return
	}
	if c.admission && c.used+tokens > c.capacity && !c.admit(key, tokens) {
		c.Rejected++
		return
	}
	el := c.lru.pushFront(key, tokens)
	c.entries[key] = el
	c.used += tokens
	if c.observer != nil {
		c.observer.entryChanged(key, tokens, false)
	}
	c.evictOver(el)
}

// admit decides whether a new entry of the given size may displace the
// cold tail: its estimated frequency must be at least that of every victim
// the insertion would evict (TinyLFU admission, generalized to
// variable-cost entries).
func (c *PrefixCache) admit(key PrefixKey, tokens int) bool {
	candidate := c.sketch.estimate(key)
	need := c.used + tokens - c.capacity
	for el := c.lru.back(); el != nil && need > 0; el = c.lru.prev(el) {
		if candidate < c.sketch.estimate(el.key) {
			return false
		}
		need -= el.tokens
	}
	return true
}

// evictOver drops LRU-tail entries (never keep, the just-inserted element)
// until the cache fits its capacity.
func (c *PrefixCache) evictOver(keep *lruNode) {
	for c.used > c.capacity {
		el := c.lru.back()
		if el == nil {
			return
		}
		if el == keep {
			el = c.lru.prev(el)
			if el == nil {
				return
			}
		}
		key, tokens := el.key, el.tokens
		c.lru.remove(el)
		delete(c.entries, key)
		c.used -= tokens
		c.Evicted++
		if c.observer != nil {
			c.observer.entryChanged(key, 0, true)
		}
	}
}
