package fleet

import "testing"

// fakeReplica is a scriptable ReplicaView for policy unit tests.
type fakeReplica struct {
	tokens  int
	depth   int
	cached  int
	session int // session-owned portion of cached (0 = none movable)
}

func (f *fakeReplica) OutstandingTokens() int        { return f.tokens }
func (f *fakeReplica) QueueDepth() int               { return f.depth }
func (f *fakeReplica) CachedTokens(RequestInfo) int  { return f.cached }
func (f *fakeReplica) SessionTokens(RequestInfo) int { return f.session }

func views(fs ...*fakeReplica) []ReplicaView {
	out := make([]ReplicaView, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	vs := views(&fakeReplica{}, &fakeReplica{}, &fakeReplica{})
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Pick(RequestInfo{}, vs); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksMinTieLowestIndex(t *testing.T) {
	p := NewLeastLoaded()
	if got := p.Pick(RequestInfo{}, views(&fakeReplica{tokens: 5}, &fakeReplica{tokens: 3}, &fakeReplica{tokens: 9})); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := p.Pick(RequestInfo{}, views(&fakeReplica{tokens: 3}, &fakeReplica{tokens: 3})); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestPowerOfTwoChoices(t *testing.T) {
	// Deterministic in seed.
	a := NewPowerOfTwoChoices(11)
	b := NewPowerOfTwoChoices(11)
	vs := views(&fakeReplica{tokens: 4}, &fakeReplica{tokens: 1}, &fakeReplica{tokens: 7}, &fakeReplica{tokens: 2})
	for i := 0; i < 50; i++ {
		if got, want := a.Pick(RequestInfo{}, vs), b.Pick(RequestInfo{}, vs); got != want {
			t.Fatalf("pick %d diverged: %d vs %d", i, got, want)
		}
	}
	// Single replica short-circuits.
	if got := a.Pick(RequestInfo{}, views(&fakeReplica{})); got != 0 {
		t.Fatalf("single-replica pick = %d", got)
	}
	// The heaviest replica must never win a pairwise comparison it is in:
	// over many picks with distinct loads, index 2 (load 7) shows up only
	// if both samples land on it — never, since sampling is without
	// replacement.
	p := NewPowerOfTwoChoices(7)
	for i := 0; i < 500; i++ {
		if got := p.Pick(RequestInfo{}, vs); got == 2 {
			t.Fatal("power-of-two picked the strictly heaviest of its pair")
		}
	}
}

func TestPrefixAffinityPrefersWarmReplica(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}
	// Replica 2 holds the session's prefix; equal load elsewhere.
	vs := views(&fakeReplica{tokens: 100}, &fakeReplica{tokens: 100}, &fakeReplica{tokens: 100, cached: 3500})
	if got := p.Pick(req, vs); got != 2 {
		t.Fatalf("pick = %d, want warm replica 2", got)
	}
}

func TestPrefixAffinitySpillsWhenHomeOverloaded(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}
	// The warm replica's queue exceeds what the cache hit saves: the
	// policy must spill to the idle cold replica.
	vs := views(&fakeReplica{tokens: 0}, &fakeReplica{tokens: 10_000, cached: 3500})
	if got := p.Pick(req, vs); got != 0 {
		t.Fatalf("pick = %d, want cold idle replica 0", got)
	}
}

func TestPrefixAffinityHomeIsStable(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 1000, SessionKey: SessionKey(7), PrefixLen: 0}
	vs := views(&fakeReplica{}, &fakeReplica{}, &fakeReplica{}, &fakeReplica{})
	first := p.Pick(req, vs)
	for i := 0; i < 10; i++ {
		if got := p.Pick(req, vs); got != first {
			t.Fatalf("cold home drifted: %d then %d", first, got)
		}
	}
	// Different sessions spread over replicas rather than piling on one.
	seen := map[int]bool{}
	for s := int64(1); s <= 64; s++ {
		seen[p.Pick(RequestInfo{InputLen: 1000, SessionKey: SessionKey(s)}, vs)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("64 cold sessions landed on only %d of 4 replicas", len(seen))
	}
	// Stateless requests with equal everything fall back to index 0.
	if got := p.Pick(RequestInfo{InputLen: 1000}, vs); got != 0 {
		t.Fatalf("stateless cold pick = %d", got)
	}
}

func TestByNameAndAllPolicies(t *testing.T) {
	for _, name := range []string{"roundrobin", "rr", "leastloaded", "ll", "p2c", "poweroftwo", "affinity", "prefix", "migrate", "migrating"} {
		p, err := ByName(name, 1)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
	all := AllPolicies(1)
	if len(all) != 5 {
		t.Fatalf("AllPolicies returned %d policies", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		names[p.Name()] = true
	}
	if len(names) != len(all) {
		t.Fatalf("policy names not distinct: %v", names)
	}
}

// fixedMigrator prices every transfer at a constant token cost.
type fixedMigrator struct{ cost float64 }

func (m fixedMigrator) MigrationTokenCost(int) float64 { return m.cost }

func TestMigratingAffinityDecisions(t *testing.T) {
	p := NewMigratingAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}

	// Warm home lightly loaded: stay, no migration.
	vs := views(&fakeReplica{tokens: 100, cached: 3500, session: 3500}, &fakeReplica{tokens: 0})
	d := p.PickMigrate(req, vs, fixedMigrator{cost: 500})
	if d.Dest != 0 || d.From != -1 {
		t.Fatalf("lightly loaded home: got %+v, want stay on 0", d)
	}

	// Warm home badly overloaded, cheap link: migrate the KV to the idle
	// replica instead of recomputing 3500 tokens there.
	vs = views(&fakeReplica{tokens: 50_000, cached: 3500, session: 3500}, &fakeReplica{tokens: 0})
	d = p.PickMigrate(req, vs, fixedMigrator{cost: 500})
	if d.Dest != 1 || d.From != 0 {
		t.Fatalf("overloaded home, cheap link: got %+v, want migrate 0->1", d)
	}

	// Same overload but the link costs more than the recompute it saves:
	// spill cold, no migration.
	d = p.PickMigrate(req, vs, fixedMigrator{cost: 10_000})
	if d.Dest != 1 || d.From != -1 {
		t.Fatalf("expensive link: got %+v, want cold spill to 1", d)
	}

	// Stateless requests never migrate.
	d = p.PickMigrate(RequestInfo{InputLen: 1000}, vs, fixedMigrator{})
	if d.From != -1 {
		t.Fatalf("stateless request migrated: %+v", d)
	}

	// Single replica short-circuits.
	d = p.PickMigrate(req, views(&fakeReplica{cached: 3500, session: 3500}), fixedMigrator{})
	if d.Dest != 0 || d.From != -1 {
		t.Fatalf("single replica: %+v", d)
	}
}
