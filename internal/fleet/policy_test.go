package fleet

import "testing"

// fakeReplica is a scriptable ReplicaView for policy unit tests. The zero
// value reports a generous uniform capability so capability-blind tests
// behave as on a homogeneous fleet.
type fakeReplica struct {
	tokens  int
	depth   int
	cached  int
	session int // session-owned portion of cached (0 = none movable)
	cap     ReplicaCapability
}

func (f *fakeReplica) OutstandingTokens() int        { return f.tokens }
func (f *fakeReplica) QueueDepth() int               { return f.depth }
func (f *fakeReplica) CachedTokens(RequestInfo) int  { return f.cached }
func (f *fakeReplica) SessionTokens(RequestInfo) int { return f.session }

func (f *fakeReplica) Capability() ReplicaCapability {
	if f.cap.MaxContext == 0 {
		return ReplicaCapability{Kind: "fake", GPUs: 8, CostUnits: 8, KVCapacity: 1 << 20, MaxContext: 1 << 20, PrefillRate: 50_000}
	}
	return f.cap
}

func views(fs ...*fakeReplica) []ReplicaView {
	out := make([]ReplicaView, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	vs := views(&fakeReplica{}, &fakeReplica{}, &fakeReplica{})
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Pick(RequestInfo{}, vs); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksMinTieLowestIndex(t *testing.T) {
	p := NewLeastLoaded()
	if got := p.Pick(RequestInfo{}, views(&fakeReplica{tokens: 5}, &fakeReplica{tokens: 3}, &fakeReplica{tokens: 9})); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := p.Pick(RequestInfo{}, views(&fakeReplica{tokens: 3}, &fakeReplica{tokens: 3})); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestPowerOfTwoChoices(t *testing.T) {
	// Deterministic in seed.
	a := NewPowerOfTwoChoices(11)
	b := NewPowerOfTwoChoices(11)
	vs := views(&fakeReplica{tokens: 4}, &fakeReplica{tokens: 1}, &fakeReplica{tokens: 7}, &fakeReplica{tokens: 2})
	for i := 0; i < 50; i++ {
		if got, want := a.Pick(RequestInfo{}, vs), b.Pick(RequestInfo{}, vs); got != want {
			t.Fatalf("pick %d diverged: %d vs %d", i, got, want)
		}
	}
	// Single replica short-circuits.
	if got := a.Pick(RequestInfo{}, views(&fakeReplica{})); got != 0 {
		t.Fatalf("single-replica pick = %d", got)
	}
	// The heaviest replica must never win a pairwise comparison it is in:
	// over many picks with distinct loads, index 2 (load 7) shows up only
	// if both samples land on it — never, since sampling is without
	// replacement.
	p := NewPowerOfTwoChoices(7)
	for i := 0; i < 500; i++ {
		if got := p.Pick(RequestInfo{}, vs); got == 2 {
			t.Fatal("power-of-two picked the strictly heaviest of its pair")
		}
	}
}

func TestPrefixAffinityPrefersWarmReplica(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}
	// Replica 2 holds the session's prefix; equal load elsewhere.
	vs := views(&fakeReplica{tokens: 100}, &fakeReplica{tokens: 100}, &fakeReplica{tokens: 100, cached: 3500})
	if got := p.Pick(req, vs); got != 2 {
		t.Fatalf("pick = %d, want warm replica 2", got)
	}
}

func TestPrefixAffinitySpillsWhenHomeOverloaded(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}
	// The warm replica's queue exceeds what the cache hit saves: the
	// policy must spill to the idle cold replica.
	vs := views(&fakeReplica{tokens: 0}, &fakeReplica{tokens: 10_000, cached: 3500})
	if got := p.Pick(req, vs); got != 0 {
		t.Fatalf("pick = %d, want cold idle replica 0", got)
	}
}

func TestPrefixAffinityHomeIsStable(t *testing.T) {
	p := NewPrefixAffinity()
	req := RequestInfo{InputLen: 1000, SessionKey: SessionKey(7), PrefixLen: 0}
	vs := views(&fakeReplica{}, &fakeReplica{}, &fakeReplica{}, &fakeReplica{})
	first := p.Pick(req, vs)
	for i := 0; i < 10; i++ {
		if got := p.Pick(req, vs); got != first {
			t.Fatalf("cold home drifted: %d then %d", first, got)
		}
	}
	// Different sessions spread over replicas rather than piling on one.
	seen := map[int]bool{}
	for s := int64(1); s <= 64; s++ {
		seen[p.Pick(RequestInfo{InputLen: 1000, SessionKey: SessionKey(s)}, vs)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("64 cold sessions landed on only %d of 4 replicas", len(seen))
	}
	// Stateless requests with equal everything fall back to index 0.
	if got := p.Pick(RequestInfo{InputLen: 1000}, vs); got != 0 {
		t.Fatalf("stateless cold pick = %d", got)
	}
}

func TestByNameAndAllPolicies(t *testing.T) {
	for _, name := range []string{"roundrobin", "rr", "leastloaded", "ll", "p2c", "poweroftwo", "affinity", "prefix", "migrate", "migrating"} {
		p, err := ByName(name, 1)
		if err != nil || p == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
	all := AllPolicies(1)
	if len(all) != 5 {
		t.Fatalf("AllPolicies returned %d policies", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		names[p.Name()] = true
	}
	if len(names) != len(all) {
		t.Fatalf("policy names not distinct: %v", names)
	}
}

// fixedMigrator prices every transfer at a constant token cost (and the
// equivalent seconds at a 10K-token/s reference rate).
type fixedMigrator struct{ cost float64 }

func (m fixedMigrator) MigrationTokenCost(int) float64 { return m.cost }
func (m fixedMigrator) MigrationSeconds(int) float64   { return m.cost / 10_000 }

func TestMigratingAffinityDecisions(t *testing.T) {
	p := NewMigratingAffinity()
	req := RequestInfo{InputLen: 4000, SessionKey: SessionKey(5), PrefixLen: 3500}

	// Warm home lightly loaded: stay, no migration.
	vs := views(&fakeReplica{tokens: 100, cached: 3500, session: 3500}, &fakeReplica{tokens: 0})
	d := p.PickMigrate(req, vs, fixedMigrator{cost: 500})
	if d.Dest != 0 || d.From != -1 {
		t.Fatalf("lightly loaded home: got %+v, want stay on 0", d)
	}

	// Warm home badly overloaded, cheap link: migrate the KV to the idle
	// replica instead of recomputing 3500 tokens there.
	vs = views(&fakeReplica{tokens: 50_000, cached: 3500, session: 3500}, &fakeReplica{tokens: 0})
	d = p.PickMigrate(req, vs, fixedMigrator{cost: 500})
	if d.Dest != 1 || d.From != 0 {
		t.Fatalf("overloaded home, cheap link: got %+v, want migrate 0->1", d)
	}

	// Same overload but the link costs more than the recompute it saves:
	// spill cold, no migration.
	d = p.PickMigrate(req, vs, fixedMigrator{cost: 10_000})
	if d.Dest != 1 || d.From != -1 {
		t.Fatalf("expensive link: got %+v, want cold spill to 1", d)
	}

	// Stateless requests never migrate.
	d = p.PickMigrate(RequestInfo{InputLen: 1000}, vs, fixedMigrator{})
	if d.From != -1 {
		t.Fatalf("stateless request migrated: %+v", d)
	}

	// Single replica short-circuits.
	d = p.PickMigrate(req, views(&fakeReplica{cached: 3500, session: 3500}), fixedMigrator{})
	if d.Dest != 0 || d.From != -1 {
		t.Fatalf("single replica: %+v", d)
	}
}

// heteroViews builds one "big" (long-context, expensive, fast) and two
// "small" (cheap, slow, bounded-context) fake replicas.
func heteroViews(bigLoad, smallLoad1, smallLoad2 int) []ReplicaView {
	big := ReplicaCapability{Kind: "big", GPUs: 8, CostUnits: 8, KVCapacity: 900_000, MaxContext: 900_000, PrefillRate: 40_000}
	small := ReplicaCapability{Kind: "small", GPUs: 1, CostUnits: 1, KVCapacity: 100_000, MaxContext: 100_000, PrefillRate: 9_000}
	return views(
		&fakeReplica{tokens: bigLoad, cap: big},
		&fakeReplica{tokens: smallLoad1, cap: small},
		&fakeReplica{tokens: smallLoad2, cap: small},
	)
}

func TestCapabilityAffinityRoutesLongToBig(t *testing.T) {
	p := NewCapabilityAffinity()
	// 80K prompt: beyond half the small kind's envelope, only the big
	// replica is eligible — even when it is the more loaded one.
	req := RequestInfo{InputLen: 80_000}
	if got := p.Pick(req, heteroViews(50_000, 0, 0)); got != 0 {
		t.Fatalf("long prompt routed to replica %d, want big 0", got)
	}
}

func TestCapabilityAffinityRoutesShortToCheap(t *testing.T) {
	p := NewCapabilityAffinity()
	// A chat prompt fits everywhere; idle everywhere: the cheap replica's
	// cost-weighted seconds win (2K/9K*1 << 2K/40K*8).
	req := RequestInfo{InputLen: 2_000}
	if got := p.Pick(req, heteroViews(0, 0, 0)); got == 0 {
		t.Fatal("idle fleet: chat prompt routed to the expensive replica")
	}
}

func TestCapabilityAffinitySpillsUnderLoad(t *testing.T) {
	p := NewCapabilityAffinity()
	// Both small replicas deeply queued: the big replica's expensive
	// seconds become the cheaper option.
	req := RequestInfo{InputLen: 2_000}
	if got := p.Pick(req, heteroViews(0, 500_000, 500_000)); got != 0 {
		t.Fatalf("overloaded cheap fleet: pick = %d, want big 0", got)
	}
}

func TestCapabilityAffinityFallbackMostCapable(t *testing.T) {
	p := NewCapabilityAffinity()
	// Nothing is comfortable (the prompt exceeds every envelope's
	// headroom): the largest envelope wins, load-balancing ties.
	small := ReplicaCapability{Kind: "small", GPUs: 1, CostUnits: 1, KVCapacity: 100_000, MaxContext: 100_000, PrefillRate: 9_000}
	vs := views(
		&fakeReplica{tokens: 90_000, cap: small},
		&fakeReplica{tokens: 10, cap: small},
		&fakeReplica{tokens: 50_000, cap: small},
	)
	if got := p.Pick(RequestInfo{InputLen: 95_000}, vs); got != 1 {
		t.Fatalf("fallback pick = %d, want least-loaded 1", got)
	}
}

func TestCapabilityAffinityHomogeneousMatchesPrefixAffinity(t *testing.T) {
	// On uniform capabilities the capability score is a monotone function
	// of PrefixAffinity's, so the two policies must agree pick for pick.
	ca, pa := NewCapabilityAffinity(), NewPrefixAffinity()
	for s := int64(1); s <= 32; s++ {
		req := RequestInfo{InputLen: 1000 + int(s)*100, SessionKey: SessionKey(s), PrefixLen: 500}
		vs := views(
			&fakeReplica{tokens: int(s) * 37 % 900},
			&fakeReplica{tokens: int(s) * 53 % 900, cached: 500, session: 500},
			&fakeReplica{tokens: int(s) * 71 % 900},
		)
		if got, want := ca.Pick(req, vs), pa.Pick(req, vs); got != want {
			t.Fatalf("session %d: capability picked %d, prefix-affinity %d", s, got, want)
		}
	}
}

func TestCapabilityAffinityMigration(t *testing.T) {
	p := NewCapabilityAffinity()
	req := RequestInfo{InputLen: 4_000, SessionKey: SessionKey(5), PrefixLen: 3_500}
	big := ReplicaCapability{Kind: "big", GPUs: 8, CostUnits: 8, KVCapacity: 900_000, MaxContext: 900_000, PrefillRate: 40_000}
	small := ReplicaCapability{Kind: "small", GPUs: 1, CostUnits: 1, KVCapacity: 100_000, MaxContext: 100_000, PrefillRate: 9_000}

	// Warm on an overloaded small replica, idle small sibling, cheap link:
	// migrate the session sideways instead of recomputing cold.
	vs := views(
		&fakeReplica{tokens: 0, cap: big},
		&fakeReplica{tokens: 80_000, cached: 3_500, session: 3_500, cap: small},
		&fakeReplica{tokens: 0, cap: small},
	)
	d := p.PickMigrate(req, vs, fixedMigrator{cost: 200})
	if d.From != 1 || d.Dest == 1 {
		t.Fatalf("overloaded warm small: got %+v, want migration off 1", d)
	}

	// Same situation, ruinously expensive link: spill cold, no migration.
	d = p.PickMigrate(req, vs, fixedMigrator{cost: 500_000})
	if d.From != -1 {
		t.Fatalf("expensive link: got %+v, want no migration", d)
	}

	// A long session never migrates onto an ineligible small replica.
	long := RequestInfo{InputLen: 80_000, SessionKey: SessionKey(9), PrefixLen: 70_000}
	vs = views(
		&fakeReplica{tokens: 600_000, cached: 70_000, session: 70_000, cap: big},
		&fakeReplica{tokens: 0, cap: small},
		&fakeReplica{tokens: 0, cap: small},
	)
	d = p.PickMigrate(long, vs, fixedMigrator{cost: 100})
	if d.Dest != 0 || d.From != -1 {
		t.Fatalf("long session: got %+v, want stay on big 0", d)
	}
}

func TestByNameCapability(t *testing.T) {
	for _, name := range []string{"capability", "cap"} {
		p, err := ByName(name, 1)
		if err != nil || p.Name() != "CapabilityAffinity" {
			t.Fatalf("ByName(%q) = %v, %v", name, p, err)
		}
	}
}
