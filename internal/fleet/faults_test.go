package fleet

import (
	"reflect"
	"testing"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// submitAt schedules a direct stateless submission, the fault tests'
// workhorse: toyEngine arithmetic (1us/input token prefill, 20us/output
// token decode, FIFO) keeps every timeline exact.
func submitAt(sim *simevent.Sim, g *Gateway, id int, e workload.Entry, at time.Duration) {
	r := &serving.Request{
		ID: kvcache.RequestID(id), InputLen: e.InputLen, OutputLen: e.OutputLen,
		Arrival: simevent.Time(at),
	}
	sim.At(simevent.Time(at), func() { g.Submit(r, e) })
}

// TestCrashRecoversInFlightRequests is the headline crash property: a
// replica dying mid-flight loses no request — everything it held re-enters
// routing and completes on the survivors.
func TestCrashRecoversInFlightRequests(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 3, Policy: NewRoundRobin()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	// 30 requests at t=0, round-robin 10 per replica, 300us each FIFO:
	// replica 0 finishes its queue at 3ms. Crash it at 1ms — exactly 3 of
	// its requests have finished, 7 are doomed.
	for i := 1; i <= 30; i++ {
		submitAt(sim, g, i, workload.Entry{InputLen: 100, OutputLen: 10}, 0)
	}
	sim.At(simevent.Time(time.Millisecond), func() {
		if err := g.CrashReplica(0); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sim.Run()

	if g.Completed() != 30 {
		t.Fatalf("%d of 30 requests completed after crash", g.Completed())
	}
	if g.replicas[0].state != ReplicaFailed {
		t.Fatalf("crashed replica state %v, want failed", g.replicas[0].state)
	}
	if g.ActiveReplicas() != 2 || g.ProvisionedReplicas() != 2 {
		t.Fatalf("active %d provisioned %d after crash, want 2/2", g.ActiveReplicas(), g.ProvisionedReplicas())
	}
	res := g.Finalize()
	if res.Faults.Crashes != 1 || res.Faults.RecoveredRequests != 7 {
		t.Fatalf("fault stats %+v, want 1 crash, 7 recovered", res.Faults)
	}
	seen := make(map[int64]bool)
	for _, rec := range res.Records {
		if seen[rec.ID] {
			t.Fatalf("request %d finished twice", rec.ID)
		}
		seen[rec.ID] = true
		if rec.FirstToken < rec.Arrival || rec.Finish < rec.FirstToken {
			t.Fatalf("request %d has an inverted timeline: %+v", rec.ID, rec)
		}
	}
	if len(seen) != 30 {
		t.Fatalf("%d distinct records, want 30", len(seen))
	}
	var sawCrash bool
	for _, ev := range res.Events {
		if ev.Kind == "crash" && ev.Replica == 0 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("no crash scale-event recorded")
	}
}

// TestCrashRefusals: the crash API rejects targets that would corrupt the
// run — unknown indices, non-active replicas, and the last active replica
// (routing must always have a destination).
func TestCrashRefusals(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewRoundRobin()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CrashReplica(-1); err == nil {
		t.Fatal("crash of replica -1 accepted")
	}
	if err := g.CrashReplica(5); err == nil {
		t.Fatal("crash of unknown replica accepted")
	}
	if err := g.CrashReplica(0); err != nil {
		t.Fatalf("first crash refused: %v", err)
	}
	if err := g.CrashReplica(0); err == nil {
		t.Fatal("second crash of the same replica accepted")
	}
	if err := g.CrashReplica(1); err == nil {
		t.Fatal("crash of the last active replica accepted")
	}
	if err := g.StallReplica(0, time.Second); err == nil {
		t.Fatal("stall of a crashed replica accepted")
	}
	if err := g.DropControlCaches(0); err == nil {
		t.Fatal("cache drop on a crashed replica accepted")
	}
}

// TestCrashRecoverySalvagesSurvivingKV: recovery re-prefills only the
// suffix no surviving cache covers. A shared prompt group warmed on both
// replicas means the rescued request salvages the full shared prefix —
// visible as the Recover event's token count.
func TestCrashRecoverySalvagesSurvivingKV(t *testing.T) {
	col := &obs.Collector{}
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewRoundRobin(), Obs: col}, sim)
	if err != nil {
		t.Fatal(err)
	}
	shared := workload.Entry{InputLen: 1000, OutputLen: 10, PromptGroup: 5, SharedLen: 800}
	// Warm the group on both replicas (round-robin), finishing at 1.2ms.
	submitAt(sim, g, 1, shared, 0)
	submitAt(sim, g, 2, shared, 0)
	// The victim request lands on replica 0 at 2ms (hit 800, 200us
	// prefill remaining) and dies with it at 2.1ms.
	submitAt(sim, g, 3, shared, 2*time.Millisecond)
	sim.At(simevent.Time(2*time.Millisecond+100*time.Microsecond), func() {
		if err := g.CrashReplica(0); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	sim.Run()

	if g.Completed() != 3 {
		t.Fatalf("%d of 3 completed", g.Completed())
	}
	g.Finalize()
	var recovers []obs.Event
	for _, e := range col.Events {
		if e.Kind == obs.KindRecover {
			recovers = append(recovers, e)
		}
	}
	if len(recovers) != 1 {
		t.Fatalf("%d recover events, want 1", len(recovers))
	}
	if recovers[0].Tokens != 800 {
		t.Fatalf("recovery salvaged %d tokens, want the 800 shared on the survivor", recovers[0].Tokens)
	}
	if recovers[0].A != 0 {
		t.Fatalf("recover names crashed replica %d, want 0", recovers[0].A)
	}
	if vs := analyze.Audit(col.Events); len(vs) != 0 {
		t.Fatalf("crash/recover stream failed audit: %v", vs)
	}
}

// TestHedgeDuplicatesStragglerExactly is the hedging contract on exact toy
// arithmetic: five clean completions calibrate the per-token TTFT baseline
// at 1us/token, a stall then pins the primary, the hedge fires after
// quantile x input = 2ms, and the copy wins on the healthy replica — the
// record carries the primary's ID and the copy's fast timeline, and the
// never-delivered primary burns nothing.
func TestHedgeDuplicatesStragglerExactly(t *testing.T) {
	col := &obs.Collector{}
	sim := simevent.New()
	cfg := Config{
		Replicas: 2, Policy: NewLeastLoaded(), Obs: col,
		Hedge: HedgeConfig{Quantile: 0.5, MinSamples: 5, MinInput: 1},
	}
	g, err := NewGateway(toySpec(), cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration: 5 spaced-out requests, each done before the next
	// arrives, all tie-broken onto replica 0. TTFT = 1000us for 1000
	// input tokens -> every baseline sample is exactly 1us/token.
	for i := 1; i <= 5; i++ {
		submitAt(sim, g, i, workload.Entry{InputLen: 1000, OutputLen: 10}, time.Duration(i-1)*2*time.Millisecond)
	}
	// Freeze replica 0 before the straggler arrives.
	sim.At(simevent.Time(19*time.Millisecond), func() {
		if err := g.StallReplica(0, 100*time.Millisecond); err != nil {
			t.Errorf("stall: %v", err)
		}
	})
	// The straggler: 2000 input tokens at t=20ms, routed to the (idle but
	// stalled) replica 0. Hedge delay = q50(1us/token) x 2000 = 2ms, so
	// the copy launches at 22ms on replica 1 and first-tokens at 24ms.
	submitAt(sim, g, 6, workload.Entry{InputLen: 2000, OutputLen: 10}, 20*time.Millisecond)
	sim.Run()

	if g.Completed() != 6 {
		t.Fatalf("%d of 6 completed", g.Completed())
	}
	res := g.Finalize()
	if res.Hedge.Launched != 1 || res.Hedge.Wins != 1 || res.Hedge.Losses != 0 {
		t.Fatalf("hedge stats %+v, want exactly one launched-and-won", res.Hedge)
	}
	if res.Hedge.WastedTokens != 0 {
		t.Fatalf("wasted %d tokens, want 0 (the stalled primary never reached its engine)", res.Hedge.WastedTokens)
	}
	if res.Faults.Stalls != 1 {
		t.Fatalf("stall stats %+v, want 1 stall", res.Faults)
	}
	var straggler *struct {
		first, finish time.Duration
	}
	for _, rec := range res.Records {
		if rec.ID == 6 {
			straggler = &struct{ first, finish time.Duration }{rec.FirstToken, rec.Finish}
		}
		if rec.ID > 6 {
			t.Fatalf("synthetic hedge ID %d leaked into the records", rec.ID)
		}
	}
	if straggler == nil {
		t.Fatal("straggler's record missing")
	}
	if straggler.first != 24*time.Millisecond {
		t.Fatalf("straggler first token at %v, want 24ms (launch 22ms + 2000us prefill)", straggler.first)
	}
	if straggler.finish != 24*time.Millisecond+200*time.Microsecond {
		t.Fatalf("straggler finish at %v, want 24.2ms", straggler.finish)
	}
	counts := obs.Counts(col.Events)
	if counts[obs.KindHedgeLaunch] != 1 || counts[obs.KindHedgeWin] != 1 || counts[obs.KindHedgeLose] != 0 {
		t.Fatalf("hedge events launch/win/lose = %d/%d/%d, want 1/1/0",
			counts[obs.KindHedgeLaunch], counts[obs.KindHedgeWin], counts[obs.KindHedgeLose])
	}
	if vs := analyze.Audit(col.Events); len(vs) != 0 {
		t.Fatalf("hedged stream failed audit: %v", vs)
	}
}

// TestControlPlaneLifecycleStats is the tentpole's re-homing acceptance
// test: every lifecycle transition rides the typed control plane, so the
// manager's wire stats move in lockstep with gateway operations — configs
// on construction and scale-up, commands on every membership change, and
// the Nak/resend repair when an instance's metadata cache is wiped.
func TestControlPlaneLifecycleStats(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewRoundRobin()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ControlStats()
	if st.ConfigsSent != 2 {
		t.Fatalf("configs sent at construction = %d, want 2 (one per member)", st.ConfigsSent)
	}
	if st.Naks != 0 || st.Resends != 0 {
		t.Fatalf("fresh control plane already repaired something: %+v", st)
	}

	sim.At(0, func() {
		if _, err := g.AddReplica(10 * time.Millisecond); err != nil {
			t.Errorf("add: %v", err)
		}
	})
	sim.At(simevent.Time(20*time.Millisecond), func() {
		if err := g.DropControlCaches(1); err != nil {
			t.Errorf("cache drop: %v", err)
		}
	})
	sim.At(simevent.Time(21*time.Millisecond), func() {
		if err := g.DrainReplica(2); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	sim.Run()

	if g.replicas[2].state != ReplicaRetired {
		t.Fatalf("drained replica state %v, want retired", g.replicas[2].state)
	}
	st = g.ControlStats()
	if st.ConfigsSent <= 2 {
		t.Fatalf("scale-up pushed no configs: %+v", st)
	}
	if st.Commands < 3 {
		t.Fatalf("membership changes sent %d commands, want >= 3 scale plans", st.Commands)
	}
	if st.Naks < 1 || st.Resends < 1 {
		t.Fatalf("cache drop drew no Nak/resend repair: %+v", st)
	}
	g.Finalize()
}

// chaosConfig builds a fresh 4-replica hedged config (policies carry
// internal state, so each run needs its own instance).
func chaosConfig(col *obs.Collector) Config {
	cfg := Config{
		Groups: []ReplicaGroup{{Kind: NewKind("toy", toySpec()), Count: 4}},
		Policy: NewPrefixAffinity(),
		Hedge:  HedgeConfig{Quantile: 0.9, MinSamples: 10, MinInput: 1},
	}
	if col != nil {
		cfg.Obs = col
	}
	return cfg
}

func chaosFaults() []workload.Fault {
	return []workload.Fault{
		{At: 500 * time.Millisecond, Kind: workload.FaultStall, Slot: 1, Stall: 300 * time.Millisecond},
		{At: 800 * time.Millisecond, Kind: workload.FaultCacheDrop, Slot: 2},
		{At: time.Second, Kind: workload.FaultCrash, Slot: 0},
		{At: 1800 * time.Millisecond, Kind: workload.FaultStall, Slot: 0, Stall: 200 * time.Millisecond},
		{At: 2500 * time.Millisecond, Kind: workload.FaultCrash, Slot: 1},
	}
}

// TestFaultScheduleDeterminism: the same scripts, config and fault
// schedule replay to byte-identical records and fault/hedge accounting —
// the property the chaos experiment's serial-vs-parallel check rests on.
func TestFaultScheduleDeterminism(t *testing.T) {
	scripts := chatScripts(40, 6, 0.3, 11)
	run := func() *Result {
		res, err := RunSessionsFaults(scripts, chaosConfig(nil), true, chaosFaults())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("identical chaos runs produced different records")
	}
	if a.Faults != b.Faults || a.Hedge != b.Hedge {
		t.Fatalf("identical chaos runs diverged: %+v/%+v vs %+v/%+v", a.Faults, a.Hedge, b.Faults, b.Hedge)
	}
	if a.Faults.Crashes != 2 {
		t.Fatalf("fault stats %+v, want both scheduled crashes fired", a.Faults)
	}

	// The generator itself is deterministic by seed.
	rates := workload.FaultRates{CrashPerMin: 2, StallPerMin: 4, CacheDropPerMin: 3}
	f1 := workload.GenFaults(9, rates, time.Minute)
	f2 := workload.GenFaults(9, rates, time.Minute)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("GenFaults not deterministic by seed")
	}
	if len(f1) == 0 {
		t.Fatal("GenFaults produced an empty schedule at nonzero rates")
	}
}

// TestChaosRunAuditsClean is the end-to-end fault story: a session
// workload under crashes, stalls and control-cache drops — with hedging
// armed — completes every request and emits a stream the full invariant
// auditor passes, new fault/hedge kinds included.
func TestChaosRunAuditsClean(t *testing.T) {
	scripts := chatScripts(50, 8, 0.2, 7)
	col := &obs.Collector{}
	res, err := RunSessionsFaults(scripts, chaosConfig(col), true, chaosFaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Crashes == 0 {
		t.Fatalf("chaos run absorbed no crashes: %+v", res.Faults)
	}
	if vs := analyze.Audit(col.Events); len(vs) != 0 {
		t.Fatalf("chaos stream failed audit (%d violations), first: %s", len(vs), vs[0])
	}
}
