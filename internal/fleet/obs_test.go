package fleet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"loongserve/internal/obs"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// obsTrace is the canonical session workload for observability tests.
func obsTrace() []workload.TimedRequest {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = 24
	cfg.SessionRate = 4
	return workload.SessionTrace(cfg, 42)
}

// TestObsRequestLifecycle: with a sink attached, every request contributes
// its full event chain — exactly one enqueue, route, cache lookup and
// finish — with consistent kind-specific fields.
func TestObsRequestLifecycle(t *testing.T) {
	trace := obsTrace()
	col := &obs.Collector{}
	res, err := Run(toySpec(), trace, Config{Replicas: 3, Policy: NewPrefixAffinity(), Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(trace) {
		t.Fatalf("completed %d of %d", len(res.Records), len(trace))
	}

	counts := obs.Counts(col.Events)
	for _, k := range []obs.Kind{obs.KindEnqueue, obs.KindRoute, obs.KindCacheLookup, obs.KindFinish} {
		if counts[k] != len(trace) {
			t.Fatalf("%v events: %d, want one per request (%d); all counts %v", k, counts[k], len(trace), counts)
		}
	}

	var last simevent.Time = -1
	for _, e := range col.Events {
		if e.At < last {
			t.Fatalf("event stream not chronological at %v", e.At)
		}
		last = e.At
		switch e.Kind {
		case obs.KindEnqueue:
			if e.Replica != -1 || e.Tokens <= 0 || e.A <= 0 {
				t.Fatalf("malformed enqueue: %+v", e)
			}
		case obs.KindRoute:
			if e.Replica < 0 || e.Replica >= 3 || e.Label != "PrefixAffinity" {
				t.Fatalf("malformed route: %+v", e)
			}
		case obs.KindCacheLookup:
			if e.Tokens < 0 || int64(e.Tokens) > e.A {
				t.Fatalf("cache hit %d exceeds input %d: %+v", e.Tokens, e.A, e)
			}
		case obs.KindFinish:
			// B = arrival, A = first token, At = finish: a valid timeline.
			if e.B > e.A || e.A > int64(e.At) {
				t.Fatalf("finish event with inverted timeline: %+v", e)
			}
			if e.Session == 0 || e.Request == 0 {
				t.Fatalf("finish without attribution: %+v", e)
			}
		}
	}
}

// TestObsOffPreservesResults: attaching a sink must observe, not perturb —
// records with and without observability are identical.
func TestObsOffPreservesResults(t *testing.T) {
	trace := obsTrace()
	plain, err := Run(toySpec(), trace, Config{Replicas: 3, Policy: NewPrefixAffinity()})
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	sampler := &obs.Sampler{Interval: 500 * time.Millisecond}
	observed, err := Run(toySpec(), trace, Config{Replicas: 3, Policy: NewPrefixAffinity(), Obs: col, Sampler: sampler})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != len(observed.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(plain.Records), len(observed.Records))
	}
	for i := range plain.Records {
		if plain.Records[i] != observed.Records[i] {
			t.Fatalf("record %d differs with observability on:\noff %+v\non  %+v", i, plain.Records[i], observed.Records[i])
		}
	}
}

// TestObsDrainEmitsLifecycleAndMigrates: draining a replica mid-run shows
// up as drain + retire lifecycle events and session-attributed migrate
// events with the "drain" cause.
func TestObsDrainEmitsLifecycleAndMigrates(t *testing.T) {
	scripts := chatScripts(30, 6, 0.5, 3)
	col := &obs.Collector{}
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 3, Policy: NewPrefixAffinity(), Obs: col}, sim)
	if err != nil {
		t.Fatal(err)
	}
	feed := FeedSessions(g, scripts, true)
	sim.At(simevent.Time(simevent.FromSeconds(2)), func() {
		if err := g.DrainReplica(1); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	sim.Run()
	if feed.Completed() != feed.Total() {
		t.Fatalf("%d of %d completed", feed.Completed(), feed.Total())
	}
	g.Finalize()

	counts := obs.Counts(col.Events)
	if counts[obs.KindDrain] != 1 || counts[obs.KindRetire] != 1 {
		t.Fatalf("drain/retire events %d/%d, want 1/1 (counts %v)", counts[obs.KindDrain], counts[obs.KindRetire], counts)
	}
	if counts[obs.KindMigrate] == 0 {
		t.Fatalf("no migrate events from a drain that evacuated sessions (counts %v)", counts)
	}
	attributed := 0
	for _, e := range col.Events {
		if e.Kind != obs.KindMigrate {
			continue
		}
		if e.Replica != 1 {
			t.Fatalf("migrate not attributed to the drained replica: %+v", e)
		}
		if e.Label != "drain" && e.Label != "handoff" {
			t.Fatalf("migrate with unexpected cause %q", e.Label)
		}
		if e.Tokens <= 0 || e.A < 0 || e.A == 1 {
			t.Fatalf("malformed migrate: %+v", e)
		}
		if e.Session != 0 {
			attributed++
		}
	}
	if attributed == 0 {
		t.Fatal("no migrate event carried a session identity (obsSessions map not populated)")
	}
}

// TestObsNilSinkEmitsAllocFree is the zero-overhead guard: with no sink
// attached, every emit helper on the gateway's request path costs zero
// allocations (one branch and out).
func TestObsNilSinkEmitsAllocFree(t *testing.T) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewRoundRobin()}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if g.obsSink != nil {
		t.Fatal("sink attached without Config.Obs")
	}
	r := &serving.Request{ID: 1, InputLen: 100, OutputLen: 20}
	allocs := testing.AllocsPerRun(1000, func() {
		g.emitEnqueue(7, r)
		g.emitRoute(7, r.ID, 1, -1)
		g.emitCache(7, r.ID, 1, 50, 100)
		g.emitFinishID(1, 7, r.ID, r)
		g.emitMigrate(PrefixKey(99), 0, 1, 500, time.Millisecond, "drain")
		g.emitLifecycle("drain", 1)
		g.noteSession(PrefixKey(99), 7)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink emit path allocates %.1f per round, want 0", allocs)
	}
}

// BenchmarkObsNilSinkEmit is the wall-clock companion of the AllocsPerRun
// guard: the whole disabled emit chain per request must stay in the
// low-nanosecond range (a handful of predicted branches).
func BenchmarkObsNilSinkEmit(b *testing.B) {
	sim := simevent.New()
	g, err := NewGateway(toySpec(), Config{Replicas: 2, Policy: NewRoundRobin()}, sim)
	if err != nil {
		b.Fatal(err)
	}
	r := &serving.Request{ID: 1, InputLen: 100, OutputLen: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.emitEnqueue(7, r)
		g.emitRoute(7, r.ID, 1, -1)
		g.emitCache(7, r.ID, 1, 50, 100)
		g.emitFinishID(1, 7, r.ID, r)
	}
}

// TestObsSamplerCadence: the sampler ticks every Interval of simulated
// time, produces one fleet row per tick plus one row per active replica,
// and stops on its own when the run drains (fleet.Run returning at all is
// the liveness half of the property).
func TestObsSamplerCadence(t *testing.T) {
	trace := obsTrace()
	interval := 250 * time.Millisecond
	sampler := &obs.Sampler{Interval: interval}
	res, err := Run(toySpec(), trace, Config{Replicas: 2, Policy: NewRoundRobin(), Sampler: sampler})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(trace) {
		t.Fatalf("completed %d of %d", len(res.Records), len(trace))
	}
	fleetRows := sampler.FleetSamples()
	if len(fleetRows) < 2 {
		t.Fatalf("only %d fleet samples", len(fleetRows))
	}
	for i := 1; i < len(fleetRows); i++ {
		if got := time.Duration(fleetRows[i].At - fleetRows[i-1].At); got != interval {
			t.Fatalf("fleet samples %d→%d spaced %v, want %v", i-1, i, got, interval)
		}
	}
	// A static 2-replica fleet: every tick sees 2 active replicas and emits
	// 2 per-replica rows.
	if got, want := sampler.Len(), 2*len(fleetRows); got != want {
		t.Fatalf("%d per-replica samples for %d ticks, want %d", got, len(fleetRows), want)
	}
	for _, fs := range fleetRows {
		if fs.Active != 2 || fs.CostUnits <= 0 {
			t.Fatalf("malformed fleet sample: %+v", fs)
		}
	}
	// Sampling must not outlive the run by more than the natural tail: the
	// final tick is at most one interval past the last completion.
	lastFinish := time.Duration(0)
	for _, rec := range res.Records {
		if rec.Finish > lastFinish {
			lastFinish = rec.Finish
		}
	}
	if tail := time.Duration(fleetRows[len(fleetRows)-1].At) - lastFinish; tail > interval {
		t.Fatalf("sampler kept the simulation alive %v past the last completion", tail)
	}
}

// TestObsExportDeterministicAcrossArms is the acceptance determinism
// property: the same configuration run serially and inside concurrent
// goroutines (as the bench harness runs policy arms) yields byte-identical
// Chrome trace exports.
func TestObsExportDeterministicAcrossArms(t *testing.T) {
	trace := obsTrace()
	export := func() []byte {
		col := &obs.Collector{}
		sampler := &obs.Sampler{Interval: 500 * time.Millisecond}
		res, err := Run(toySpec(), trace, Config{Replicas: 3, Policy: NewPrefixAffinity(), Obs: col, Sampler: sampler})
		if err != nil {
			t.Error(err)
			return nil
		}
		kinds := make([]string, len(res.Replicas))
		for i, rs := range res.Replicas {
			kinds[i] = rs.Kind
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, col.Events, sampler, obs.ChromeOptions{ReplicaKinds: kinds, Policy: "PrefixAffinity"}); err != nil {
			t.Error(err)
			return nil
		}
		return buf.Bytes()
	}

	serial := export()
	if err := obs.ValidateChromeTrace(serial); err != nil {
		t.Fatalf("serial export invalid: %v", err)
	}

	const arms = 4
	parallel := make([][]byte, arms)
	var wg sync.WaitGroup
	for i := 0; i < arms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parallel[i] = export()
		}(i)
	}
	wg.Wait()
	for i, p := range parallel {
		if !bytes.Equal(serial, p) {
			t.Fatalf("parallel arm %d exported different bytes than the serial run", i)
		}
	}
}

// TestObsRoutedMigrationAttribution: policy-directed migrations (the
// migrating-affinity policy rebalancing a hot session) appear with the
// "route" cause and a migration-source route event.
func TestObsRoutedMigrationAttribution(t *testing.T) {
	scripts := chatScripts(20, 8, 0.2, 7)
	col := &obs.Collector{}
	res, err := RunSessions(toySpec(), scripts, Config{Replicas: 3, Policy: NewMigratingAffinity(), Obs: col}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	wantMigrates := res.Migrations.Count
	counts := obs.Counts(col.Events)
	if counts[obs.KindMigrate] != wantMigrates {
		t.Fatalf("obs saw %d migrates, run accounted %d", counts[obs.KindMigrate], wantMigrates)
	}
}
