package fleet

import (
	"fmt"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// SessionFeed drives a session-script workload through a gateway, emitting
// each conversation's turns as simulator events. In open-loop mode turn
// t+1 fires Think seconds after turn t's arrival (the static-trace
// semantics); in closed-loop mode it fires Think seconds after turn t
// *completes*, so an overloaded fleet sees its own backpressure — the next
// turn cannot arrive while the previous one is still queued, which is what
// makes saturation measurements honest.
type SessionFeed struct {
	g       *Gateway
	scripts []workload.SessionScript
	byID    map[int64]*workload.SessionScript
	closed  bool

	total     int
	emitted   int
	completed int

	// Trace records every emitted request in submission order; index i
	// corresponds to request ID i+1, so records can be joined back to
	// (session, turn) identities.
	Trace []workload.TimedRequest
}

// FeedSessions schedules a session workload onto a gateway and takes over
// its OnComplete hook. Call before running the simulator.
func FeedSessions(g *Gateway, scripts []workload.SessionScript, closed bool) *SessionFeed {
	f := &SessionFeed{
		g:       g,
		scripts: scripts,
		byID:    make(map[int64]*workload.SessionScript, len(scripts)),
		closed:  closed,
		total:   workload.NumRequests(scripts),
	}
	for i := range scripts {
		s := &scripts[i]
		f.byID[s.ID] = s
		if len(s.Turns) == 0 {
			continue
		}
		start := simevent.Time(simevent.FromSeconds(s.Start))
		g.sim.Stage(start, func() { f.emit(s, 0) })
	}
	g.OnComplete = f.onComplete
	return f
}

// Total returns the number of requests the feed will emit.
func (f *SessionFeed) Total() int { return f.total }

// Completed returns the number of finished requests.
func (f *SessionFeed) Completed() int { return f.completed }

// emit submits turn t of script s at the current simulated time and, in
// open-loop mode, chains the next turn's arrival off this one.
func (f *SessionFeed) emit(s *workload.SessionScript, t int) {
	e := s.Entry(t)
	f.emitted++
	id := kvcache.RequestID(f.emitted)
	now := f.g.sim.Now()
	if !f.g.cfg.StreamMetrics {
		// Streaming runs drop the trace too: retaining one TimedRequest
		// (with its block-hash chain) per emitted request would rebuild
		// the O(requests) footprint the flag exists to remove, and with
		// Records gone there is nothing to join the trace back to.
		f.Trace = append(f.Trace, workload.TimedRequest{Entry: e, Arrival: time.Duration(now)})
	}
	r := &serving.Request{
		ID:        id,
		InputLen:  e.InputLen,
		OutputLen: e.OutputLen,
		Arrival:   now,
		SLOBudget: f.g.SLOBudget(e.InputLen, e.OutputLen),
	}
	f.g.Submit(r, e)
	if !f.closed && t+1 < len(s.Turns) {
		f.g.sim.After(simevent.FromSeconds(s.Turns[t].Think), func() { f.emit(s, t+1) })
	}
}

// onComplete is the gateway completion hook: in closed-loop mode the
// session's next turn triggers its think time from here.
func (f *SessionFeed) onComplete(e workload.Entry, _ metrics.Record) {
	f.completed++
	if !f.closed || e.SessionID == 0 {
		return
	}
	s, ok := f.byID[e.SessionID]
	if !ok {
		return
	}
	if t := e.Turn; t+1 < len(s.Turns) {
		f.g.sim.After(simevent.FromSeconds(s.Turns[t].Think), func() { f.emit(s, t+1) })
	}
}

// RunSessions replays a session-script workload against a static fleet,
// open- or closed-loop per cfg.ClosedLoop on the workload config that
// produced the scripts (passed explicitly here as `closed`). The returned
// Result carries the emitted Trace so callers can join records back to
// session turns.
func RunSessions(spec Spec, scripts []workload.SessionScript, cfg Config, closed bool) (*Result, error) {
	sim := simevent.New()
	g, err := NewGateway(spec, cfg, sim)
	if err != nil {
		return nil, err
	}
	return runSessions(g, sim, scripts, closed)
}

// RunSessionsGroups replays a session-script workload against a static
// heterogeneous fleet built from cfg.Groups — the composition-first
// spelling of RunSessions.
func RunSessionsGroups(scripts []workload.SessionScript, cfg Config, closed bool) (*Result, error) {
	sim := simevent.New()
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		return nil, err
	}
	return runSessions(g, sim, scripts, closed)
}

// runSessions feeds the scripts, runs the simulator to completion and
// finalizes, converting engine OOM panics to errors.
func runSessions(g *Gateway, sim *simevent.Sim, scripts []workload.SessionScript, closed bool) (res *Result, err error) {
	feed := FeedSessions(g, scripts, closed)

	defer func() {
		if p := recover(); p != nil {
			if oom, ok := p.(*serving.ErrOOM); ok {
				err = oom
				res = nil
				return
			}
			panic(p)
		}
	}()
	sim.Run()

	if feed.Completed() != feed.Total() {
		return nil, fmt.Errorf("fleet: %d of %d session requests completed (policy %s)",
			feed.Completed(), feed.Total(), g.PolicyName())
	}
	res = g.Finalize()
	res.Trace = feed.Trace
	return res, nil
}
