package fleet

import (
	"fmt"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/serving"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// SessionFeed drives a session-script workload through a gateway, emitting
// each conversation's turns as simulator events. In open-loop mode turn
// t+1 fires Think seconds after turn t's arrival (the static-trace
// semantics); in closed-loop mode it fires Think seconds after turn t
// *completes*, so an overloaded fleet sees its own backpressure — the next
// turn cannot arrive while the previous one is still queued, which is what
// makes saturation measurements honest.
type SessionFeed struct {
	g       *Gateway
	scripts []workload.SessionScript
	byID    map[int64]*workload.SessionScript
	closed  bool

	total     int
	emitted   int
	completed int

	// Trace records every emitted request in submission order; index i
	// corresponds to request ID i+1, so records can be joined back to
	// (session, turn) identities.
	Trace []workload.TimedRequest
}

// FeedSessions schedules a session workload onto a gateway and takes over
// its OnComplete hook. Call before running the simulator.
func FeedSessions(g *Gateway, scripts []workload.SessionScript, closed bool) *SessionFeed {
	f := &SessionFeed{
		g:       g,
		scripts: scripts,
		byID:    make(map[int64]*workload.SessionScript, len(scripts)),
		closed:  closed,
		total:   workload.NumRequests(scripts),
	}
	for i := range scripts {
		s := &scripts[i]
		f.byID[s.ID] = s
		if len(s.Turns) == 0 {
			continue
		}
		start := simevent.Time(simevent.FromSeconds(s.Start))
		g.sim.Stage(start, func() { f.emit(s, 0) })
	}
	g.OnComplete = f.onComplete
	return f
}

// Total returns the number of requests the feed will emit.
func (f *SessionFeed) Total() int { return f.total }

// Completed returns the number of finished requests.
func (f *SessionFeed) Completed() int { return f.completed }

// emit submits turn t of script s at the current simulated time and, in
// open-loop mode, chains the next turn's arrival off this one.
func (f *SessionFeed) emit(s *workload.SessionScript, t int) {
	e := s.Entry(t)
	f.emitted++
	id := kvcache.RequestID(f.emitted)
	now := f.g.sim.Now()
	if !f.g.cfg.StreamMetrics {
		// Streaming runs drop the trace too: retaining one TimedRequest
		// (with its block-hash chain) per emitted request would rebuild
		// the O(requests) footprint the flag exists to remove, and with
		// Records gone there is nothing to join the trace back to.
		f.Trace = append(f.Trace, workload.TimedRequest{Entry: e, Arrival: time.Duration(now)})
	}
	r := &serving.Request{
		ID:        id,
		InputLen:  e.InputLen,
		OutputLen: e.OutputLen,
		Arrival:   now,
		SLOBudget: f.g.SLOBudget(e.InputLen, e.OutputLen),
	}
	f.g.Submit(r, e)
	if !f.closed && t+1 < len(s.Turns) {
		f.g.sim.After(simevent.FromSeconds(s.Turns[t].Think), func() { f.emit(s, t+1) })
	}
}

// onComplete is the gateway completion hook: in closed-loop mode the
// session's next turn triggers its think time from here.
func (f *SessionFeed) onComplete(e workload.Entry, _ metrics.Record) {
	f.completed++
	if !f.closed || e.SessionID == 0 {
		return
	}
	s, ok := f.byID[e.SessionID]
	if !ok {
		return
	}
	if t := e.Turn; t+1 < len(s.Turns) {
		f.g.sim.After(simevent.FromSeconds(s.Turns[t].Think), func() { f.emit(s, t+1) })
	}
}

// StreamFeed drives a lazily sampled session workload (workload.StreamSessions)
// through a gateway, open-loop. It pulls one branching family from the
// stream at a time and schedules the next session's start when the current
// one starts — sound because the sampler's Start times are non-decreasing —
// so memory holds only the live sessions plus one family, never the whole
// workload. With Config.StreamMetrics set, a day-long million-session run
// is O(live sessions) resident.
type StreamFeed struct {
	g      *Gateway
	stream *workload.SessionStream
	family []workload.SessionScript
	idx    int

	total     int // turns of every session pulled so far
	emitted   int
	completed int

	// Trace mirrors SessionFeed.Trace (dropped under StreamMetrics).
	Trace []workload.TimedRequest
}

// FeedSessionStream schedules a lazy session workload onto a gateway and
// takes over its OnComplete hook. Call before running the simulator.
func FeedSessionStream(g *Gateway, stream *workload.SessionStream) *StreamFeed {
	f := &StreamFeed{g: g, stream: stream}
	g.OnComplete = func(workload.Entry, metrics.Record) { f.completed++ }
	f.scheduleNext()
	return f
}

// Total returns the number of requests of every session pulled so far; once
// the simulation drains it equals the whole workload's request count.
func (f *StreamFeed) Total() int { return f.total }

// Completed returns the number of finished requests.
func (f *StreamFeed) Completed() int { return f.completed }

// scheduleNext arms the start of the next unstarted session, pulling the
// next family from the stream when the current one is exhausted.
func (f *StreamFeed) scheduleNext() {
	if f.idx == len(f.family) {
		f.family = f.stream.Next()
		f.idx = 0
		if len(f.family) == 0 {
			return // stream exhausted
		}
		for i := range f.family {
			f.total += len(f.family[i].Turns)
		}
	}
	s := &f.family[f.idx]
	f.idx++
	f.g.sim.At(simevent.Time(simevent.FromSeconds(s.Start)), func() {
		if len(s.Turns) > 0 {
			f.emit(s, 0)
		}
		f.scheduleNext()
	})
}

// emit submits turn t of script s now and chains the next turn open-loop.
func (f *StreamFeed) emit(s *workload.SessionScript, t int) {
	e := s.Entry(t)
	f.emitted++
	id := kvcache.RequestID(f.emitted)
	now := f.g.sim.Now()
	if !f.g.cfg.StreamMetrics {
		f.Trace = append(f.Trace, workload.TimedRequest{Entry: e, Arrival: time.Duration(now)})
	}
	r := &serving.Request{
		ID:        id,
		InputLen:  e.InputLen,
		OutputLen: e.OutputLen,
		Arrival:   now,
		SLOBudget: f.g.SLOBudget(e.InputLen, e.OutputLen),
	}
	f.g.Submit(r, e)
	if t+1 < len(s.Turns) {
		f.g.sim.After(simevent.FromSeconds(s.Turns[t].Think), func() { f.emit(s, t+1) })
	}
}

// RunSessionStream replays a lazily sampled open-loop session workload
// against a fleet built from cfg.Groups — the streaming counterpart of
// RunSessionsGroups(…, closed=false), and the entry point sized for
// day-long million-session traces (pair with Config.StreamMetrics and, for
// multi-core execution, Config.Shards).
func RunSessionStream(stream *workload.SessionStream, cfg Config) (res *Result, err error) {
	sim := simevent.New()
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		return nil, err
	}
	feed := FeedSessionStream(g, stream)

	defer func() {
		if p := recover(); p != nil {
			if oom, ok := p.(*serving.ErrOOM); ok {
				err = oom
				res = nil
				return
			}
			panic(p)
		}
	}()
	g.runLoop()

	if feed.Completed() != feed.Total() {
		return nil, fmt.Errorf("fleet: %d of %d streamed session requests completed (policy %s)",
			feed.Completed(), feed.Total(), g.PolicyName())
	}
	res = g.Finalize()
	res.Trace = feed.Trace
	return res, nil
}

// RunSessions replays a session-script workload against a static fleet,
// open- or closed-loop per cfg.ClosedLoop on the workload config that
// produced the scripts (passed explicitly here as `closed`). The returned
// Result carries the emitted Trace so callers can join records back to
// session turns.
func RunSessions(spec Spec, scripts []workload.SessionScript, cfg Config, closed bool) (*Result, error) {
	sim := simevent.New()
	g, err := NewGateway(spec, cfg, sim)
	if err != nil {
		return nil, err
	}
	return runSessions(g, sim, scripts, closed)
}

// RunSessionsGroups replays a session-script workload against a static
// heterogeneous fleet built from cfg.Groups — the composition-first
// spelling of RunSessions.
func RunSessionsGroups(scripts []workload.SessionScript, cfg Config, closed bool) (*Result, error) {
	sim := simevent.New()
	g, err := NewGatewayGroups(cfg, sim)
	if err != nil {
		return nil, err
	}
	return runSessions(g, sim, scripts, closed)
}

// runSessions feeds the scripts, runs the simulator to completion and
// finalizes, converting engine OOM panics to errors.
func runSessions(g *Gateway, sim *simevent.Sim, scripts []workload.SessionScript, closed bool) (res *Result, err error) {
	if g.shard != nil && closed {
		// A closed-loop feed schedules the next turn at completion time with
		// zero lookahead, so no gateway timestamp bounds future engine
		// interactions — the window invariant the sharded runner rests on.
		return nil, fmt.Errorf("fleet: closed-loop session feeds cannot run sharded (Shards=%d); use an open-loop feed or Shards=0", g.cfg.Shards)
	}
	feed := FeedSessions(g, scripts, closed)

	defer func() {
		if p := recover(); p != nil {
			if oom, ok := p.(*serving.ErrOOM); ok {
				err = oom
				res = nil
				return
			}
			panic(p)
		}
	}()
	g.runLoop()

	if feed.Completed() != feed.Total() {
		return nil, fmt.Errorf("fleet: %d of %d session requests completed (policy %s)",
			feed.Completed(), feed.Total(), g.PolicyName())
	}
	res = g.Finalize()
	res.Trace = feed.Trace
	return res, nil
}
