// Package tensor provides the minimal dense linear algebra used by the
// functional transformer layer: float32 matrices, matrix multiplication,
// row-wise softmax, and the numerically stable online-softmax accumulator
// that underlies Flash-Attention-style partial attention merging.
//
// The package is deliberately small: the functional layer exists to verify
// the *dataflow* of elastic sequence parallelism (token permutation, ring
// key-value circulation, partial-attention reduction), not to be a fast
// BLAS. Everything is row-major float32.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SliceRows returns a deep copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d) of %d rows", lo, hi, m.Rows))
	}
	c := NewMatrix(hi-lo, m.Cols)
	copy(c.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return c
}

// GatherRows returns a new matrix whose row i is m's row idx[i].
func (m *Matrix) GatherRows(idx []int) *Matrix {
	c := NewMatrix(len(idx), m.Cols)
	for i, j := range idx {
		copy(c.Row(i), m.Row(j))
	}
	return c
}

// AppendRows appends all rows of other (same Cols) to m, returning m.
func (m *Matrix) AppendRows(other *Matrix) *Matrix {
	if other.Rows == 0 {
		return m
	}
	if m.Cols == 0 && m.Rows == 0 {
		m.Cols = other.Cols
	}
	if other.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AppendRows cols %d != %d", other.Cols, m.Cols))
	}
	m.Data = append(m.Data, other.Data...)
	m.Rows += other.Rows
	return m
}

// MatMul computes a @ b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT computes a @ bᵀ, i.e. out[i][j] = dot(a.Row(i), b.Row(j)).
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT %dx%d @ (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot of lengths %d and %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Scale multiplies every element in place and returns m.
func (m *Matrix) Scale(f float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= f
	}
	return m
}

// Add accumulates other into m element-wise and returns m.
func (m *Matrix) Add(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: add %dx%d + %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
	return m
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Matrix) SoftmaxRows() *Matrix {
	for i := 0; i < m.Rows; i++ {
		SoftmaxInPlace(m.Row(i))
	}
	return m
}

// SoftmaxInPlace applies a numerically stable softmax to v. Entries equal to
// NegInf become exactly zero.
func SoftmaxInPlace(v []float32) {
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(float64(max), -1) {
		// All entries masked; define softmax as all zeros.
		for i := range v {
			v[i] = 0
		}
		return
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - max)))
		v[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// NegInf is the mask value for disallowed attention positions.
var NegInf = float32(math.Inf(-1))

// MaxAbsDiff returns the largest absolute element-wise difference between
// two matrices of identical shape.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: diff %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// RandMatrix returns a matrix with i.i.d. uniform entries in [-scale, scale],
// drawn from rng. Used for deterministic synthetic weights and activations.
func RandMatrix(rng *rand.Rand, rows, cols int, scale float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// OnlineSoftmax is the streaming softmax-weighted-sum accumulator used to
// merge partial attention results (the core trick behind Flash-Attention,
// Flash-Decoding and striped/ring attention). It maintains, for one query
// row, the running maximum m, the running denominator l = Σ exp(score-m),
// and the running weighted value sum acc = Σ exp(score-m)·v. Partial states
// computed over disjoint key subsets merge associatively, which is exactly
// what lets LoongServe instances compute local attention and reduce on a
// master instance.
type OnlineSoftmax struct {
	Max   float32
	Denom float32
	Acc   []float32
}

// NewOnlineSoftmax returns an empty accumulator for value dimension dim.
func NewOnlineSoftmax(dim int) *OnlineSoftmax {
	return &OnlineSoftmax{Max: NegInf, Acc: make([]float32, dim)}
}

// Update folds one (score, value) pair into the accumulator.
func (o *OnlineSoftmax) Update(score float32, value []float32) {
	if len(value) != len(o.Acc) {
		panic(fmt.Sprintf("tensor: online softmax value dim %d, want %d", len(value), len(o.Acc)))
	}
	if math.IsInf(float64(score), -1) {
		return // masked position contributes nothing
	}
	if score <= o.Max {
		w := float32(math.Exp(float64(score - o.Max)))
		o.Denom += w
		for i, v := range value {
			o.Acc[i] += w * v
		}
		return
	}
	// New maximum: rescale the existing state.
	scale := float32(math.Exp(float64(o.Max - score)))
	if math.IsInf(float64(o.Max), -1) {
		scale = 0
	}
	o.Denom = o.Denom*scale + 1
	for i := range o.Acc {
		o.Acc[i] = o.Acc[i]*scale + value[i]
	}
	o.Max = score
}

// Merge folds another partial accumulator (over a disjoint key set) into o.
func (o *OnlineSoftmax) Merge(other *OnlineSoftmax) {
	if len(other.Acc) != len(o.Acc) {
		panic(fmt.Sprintf("tensor: online softmax merge dim %d, want %d", len(other.Acc), len(o.Acc)))
	}
	if math.IsInf(float64(other.Max), -1) || other.Denom == 0 {
		return
	}
	if math.IsInf(float64(o.Max), -1) || o.Denom == 0 {
		o.Max = other.Max
		o.Denom = other.Denom
		copy(o.Acc, other.Acc)
		return
	}
	m := o.Max
	if other.Max > m {
		m = other.Max
	}
	ws := float32(math.Exp(float64(o.Max - m)))
	wo := float32(math.Exp(float64(other.Max - m)))
	o.Denom = o.Denom*ws + other.Denom*wo
	for i := range o.Acc {
		o.Acc[i] = o.Acc[i]*ws + other.Acc[i]*wo
	}
	o.Max = m
}

// Result returns the normalized weighted sum. With no unmasked updates it
// returns the zero vector.
func (o *OnlineSoftmax) Result() []float32 {
	out := make([]float32, len(o.Acc))
	if o.Denom == 0 {
		return out
	}
	inv := 1 / o.Denom
	for i, v := range o.Acc {
		out[i] = v * inv
	}
	return out
}

// Clone returns a deep copy of the accumulator.
func (o *OnlineSoftmax) Clone() *OnlineSoftmax {
	c := &OnlineSoftmax{Max: o.Max, Denom: o.Denom, Acc: make([]float32, len(o.Acc))}
	copy(c.Acc, o.Acc)
	return c
}
