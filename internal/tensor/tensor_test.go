package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestNegativeDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set failed")
	}
	r := m.Row(2)
	r[0] = 7
	if m.At(2, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float32{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("SliceRows wrong: %+v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 2 {
		t.Fatal("SliceRows shares storage")
	}
}

func TestSliceRowsBoundsPanic(t *testing.T) {
	m := NewMatrix(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range slice")
		}
	}()
	m.SliceRows(0, 3)
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float32{{0}, {10}, {20}, {30}})
	g := m.GatherRows([]int{3, 1, 1})
	want := []float32{30, 10, 10}
	for i, w := range want {
		if g.At(i, 0) != w {
			t.Fatalf("gather[%d] = %v, want %v", i, g.At(i, 0), w)
		}
	}
}

func TestAppendRows(t *testing.T) {
	m := NewMatrix(0, 0)
	m.AppendRows(FromRows([][]float32{{1, 2}}))
	m.AppendRows(FromRows([][]float32{{3, 4}, {5, 6}}))
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("AppendRows wrong: %+v", m)
	}
}

func TestAppendRowsMismatchPanics(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on col mismatch")
		}
	}()
	m.AppendRows(FromRows([][]float32{{1, 2, 3}}))
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("matmul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandMatrix(rng, 4, 6, 1)
	b := RandMatrix(rng, 5, 6, 1)
	bt := NewMatrix(6, 5)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got := MatMulT(a, b)
	want := MatMul(a, bt)
	if d := MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("MatMulT diff %g", d)
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestScaleAndAdd(t *testing.T) {
	m := FromRows([][]float32{{1, 2}}).Scale(3)
	if m.At(0, 1) != 6 {
		t.Fatal("scale failed")
	}
	m.Add(FromRows([][]float32{{1, 1}}))
	if m.At(0, 0) != 4 {
		t.Fatal("add failed")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandMatrix(rng, 5, 9, 10)
	m.SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 {
				t.Fatal("negative softmax entry")
			}
			sum += float64(v)
		}
		if !almostEqual(sum, 1, 1e-4) {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStabilityLargeValues(t *testing.T) {
	v := []float32{1000, 1001, 1002}
	SoftmaxInPlace(v)
	var sum float64
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatal("softmax overflowed")
		}
		sum += float64(x)
	}
	if !almostEqual(sum, 1, 1e-4) {
		t.Fatalf("sum %v", sum)
	}
}

func TestSoftmaxAllMaskedIsZero(t *testing.T) {
	v := []float32{NegInf, NegInf}
	SoftmaxInPlace(v)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("masked softmax = %v, want zeros", v)
	}
}

func TestSoftmaxMaskedEntriesZero(t *testing.T) {
	v := []float32{0, NegInf, 0}
	SoftmaxInPlace(v)
	if v[1] != 0 {
		t.Fatalf("masked entry %v", v[1])
	}
	if !almostEqual(float64(v[0]), 0.5, 1e-5) {
		t.Fatalf("unmasked entry %v, want 0.5", v[0])
	}
}

func TestSoftmaxEmptyNoop(t *testing.T) {
	SoftmaxInPlace(nil) // must not panic
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{1.5, 2}})
	if d := MaxAbsDiff(a, b); !almostEqual(d, 0.5, 1e-6) {
		t.Fatalf("diff %v", d)
	}
}

func TestRandMatrixDeterministic(t *testing.T) {
	a := RandMatrix(rand.New(rand.NewSource(7)), 3, 3, 1)
	b := RandMatrix(rand.New(rand.NewSource(7)), 3, 3, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed produced different matrices")
	}
	for _, v := range a.Data {
		if v < -1 || v > 1 {
			t.Fatalf("entry %v out of scale", v)
		}
	}
}

// --- OnlineSoftmax ---

// reference computes softmax-weighted sum directly.
func referenceAttention(scores []float32, values [][]float32) []float32 {
	s := append([]float32(nil), scores...)
	SoftmaxInPlace(s)
	dim := len(values[0])
	out := make([]float32, dim)
	for i, w := range s {
		for j := 0; j < dim; j++ {
			out[j] += w * values[i][j]
		}
	}
	return out
}

func TestOnlineSoftmaxMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scores := make([]float32, 17)
	values := make([][]float32, 17)
	for i := range scores {
		scores[i] = rng.Float32()*20 - 10
		values[i] = []float32{rng.Float32(), rng.Float32(), rng.Float32()}
	}
	o := NewOnlineSoftmax(3)
	for i := range scores {
		o.Update(scores[i], values[i])
	}
	want := referenceAttention(scores, values)
	got := o.Result()
	for j := range want {
		if !almostEqual(float64(got[j]), float64(want[j]), 1e-4) {
			t.Fatalf("dim %d: got %v want %v", j, got[j], want[j])
		}
	}
}

func TestOnlineSoftmaxIgnoresMasked(t *testing.T) {
	o := NewOnlineSoftmax(1)
	o.Update(NegInf, []float32{100})
	o.Update(0, []float32{5})
	got := o.Result()
	if !almostEqual(float64(got[0]), 5, 1e-5) {
		t.Fatalf("got %v, want 5", got[0])
	}
}

func TestOnlineSoftmaxEmptyResultZero(t *testing.T) {
	o := NewOnlineSoftmax(2)
	r := o.Result()
	if r[0] != 0 || r[1] != 0 {
		t.Fatalf("empty result %v", r)
	}
}

func TestOnlineSoftmaxMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 24
	scores := make([]float32, n)
	values := make([][]float32, n)
	for i := range scores {
		scores[i] = rng.Float32()*30 - 15
		values[i] = []float32{rng.Float32() * 4, rng.Float32() * 4}
	}
	// Sequential over all.
	all := NewOnlineSoftmax(2)
	for i := range scores {
		all.Update(scores[i], values[i])
	}
	// Split into 3 partials merged together.
	parts := []*OnlineSoftmax{NewOnlineSoftmax(2), NewOnlineSoftmax(2), NewOnlineSoftmax(2)}
	for i := range scores {
		parts[i%3].Update(scores[i], values[i])
	}
	merged := NewOnlineSoftmax(2)
	for _, p := range parts {
		merged.Merge(p)
	}
	a, b := all.Result(), merged.Result()
	for j := range a {
		if !almostEqual(float64(a[j]), float64(b[j]), 1e-4) {
			t.Fatalf("merge mismatch dim %d: %v vs %v", j, a[j], b[j])
		}
	}
}

func TestOnlineSoftmaxMergeEmptySides(t *testing.T) {
	a := NewOnlineSoftmax(1)
	a.Update(1, []float32{2})
	empty := NewOnlineSoftmax(1)
	// empty into full
	full := a.Clone()
	full.Merge(empty)
	if !almostEqual(float64(full.Result()[0]), 2, 1e-6) {
		t.Fatal("merging empty changed result")
	}
	// full into empty
	e2 := NewOnlineSoftmax(1)
	e2.Merge(a)
	if !almostEqual(float64(e2.Result()[0]), 2, 1e-6) {
		t.Fatal("merging into empty lost state")
	}
}

// Property: merging any partition of updates equals sequential updates.
func TestPropertyOnlineSoftmaxPartitionInvariance(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		k := int(kRaw%4) + 1
		scores := make([]float32, n)
		values := make([][]float32, n)
		for i := range scores {
			scores[i] = rng.Float32()*40 - 20
			values[i] = []float32{rng.Float32(), rng.Float32()}
		}
		seq := NewOnlineSoftmax(2)
		parts := make([]*OnlineSoftmax, k)
		for i := range parts {
			parts[i] = NewOnlineSoftmax(2)
		}
		for i := range scores {
			seq.Update(scores[i], values[i])
			parts[rng.Intn(k)].Update(scores[i], values[i])
		}
		merged := NewOnlineSoftmax(2)
		for _, p := range parts {
			merged.Merge(p)
		}
		a, b := seq.Result(), merged.Result()
		for j := range a {
			if !almostEqual(float64(a[j]), float64(b[j]), 2e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is commutative within tolerance.
func TestPropertyOnlineSoftmaxMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *OnlineSoftmax {
			o := NewOnlineSoftmax(2)
			for i := 0; i < rng.Intn(10)+1; i++ {
				o.Update(rng.Float32()*20-10, []float32{rng.Float32(), rng.Float32()})
			}
			return o
		}
		x, y := mk(), mk()
		xy := x.Clone()
		xy.Merge(y)
		yx := y.Clone()
		yx.Merge(x)
		a, b := xy.Result(), yx.Result()
		for j := range a {
			if !almostEqual(float64(a[j]), float64(b[j]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
