package cluster

import (
	"testing"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/model"
)

func testCluster(t *testing.T, nodes, gpus, tp int) *Cluster {
	t.Helper()
	c, err := New(model.LWM1MText(), A800(), nodes, gpus, tp)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewLayout(t *testing.T) {
	c := testCluster(t, 1, 8, 2)
	if c.NumInstances() != 4 {
		t.Fatalf("instances = %d, want 4", c.NumInstances())
	}
	for i, inst := range c.Instances {
		if int(inst.ID) != i || inst.Node != 0 || inst.TP != 2 {
			t.Fatalf("instance %d = %+v", i, inst)
		}
	}
}

func TestNewMultiNodeLayout(t *testing.T) {
	c := testCluster(t, 2, 8, 2)
	if c.NumInstances() != 8 {
		t.Fatalf("instances = %d, want 8", c.NumInstances())
	}
	if c.Instances[3].Node != 0 || c.Instances[4].Node != 1 {
		t.Fatalf("node layout wrong: %v %v", c.Instances[3].Node, c.Instances[4].Node)
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	m := model.LWM1MText()
	if _, err := New(m, A800(), 1, 8, 3); err == nil {
		t.Fatal("tp=3 into 8 GPUs accepted")
	}
	if _, err := New(m, A800(), 0, 8, 2); err == nil {
		t.Fatal("zero nodes accepted")
	}
	// A single GPU cannot hold 13.5 GB weights + 12 GB reserve in... it can
	// (80 GB); but a tiny HBM cannot.
	hw := A800()
	hw.HBMBytes = 10e9
	if _, err := New(m, hw, 1, 8, 1); err == nil {
		t.Fatal("model exceeding HBM accepted")
	}
}

// Calibration anchors derived in DESIGN.md: a TP=2 instance holds ~233K KV
// tokens, a TP=4 instance ~493K (just below LV-Eval's longest request of
// 497.3K — the DistServe OOM in Fig 10), and a TP=8 instance ~1.01M.
func TestKVCapacityAnchors(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	cases := []struct {
		tp       int
		min, max int
	}{
		{2, 220_000, 245_000},
		{4, 480_000, 497_000},
		{8, 980_000, 1_030_000},
	}
	for _, tc := range cases {
		got, err := KVCapacityTokens(m, hw, tc.tp)
		if err != nil {
			t.Fatal(err)
		}
		if got < tc.min || got > tc.max {
			t.Fatalf("tp=%d capacity = %d tokens, want in [%d, %d]", tc.tp, got, tc.min, tc.max)
		}
	}
	// The DistServe-critical property: TP=4 capacity is *less* than the
	// longest LV-Eval request, TP=8 is more.
	c4, _ := KVCapacityTokens(m, hw, 4)
	c8, _ := KVCapacityTokens(m, hw, 8)
	const lvEvalMax = 497_300
	if c4 >= lvEvalMax {
		t.Fatalf("TP=4 capacity %d should be < %d (DistServe OOM anchor)", c4, lvEvalMax)
	}
	if c8 <= lvEvalMax {
		t.Fatalf("TP=8 capacity %d should be > %d", c8, lvEvalMax)
	}
}

func TestCapacitiesAndPool(t *testing.T) {
	c := testCluster(t, 1, 8, 2)
	caps := c.Capacities()
	if len(caps) != 4 {
		t.Fatalf("capacities len %d", len(caps))
	}
	pool := c.NewPool()
	if pool.TotalCapacity() != 4*c.Instances[0].KVCapacity {
		t.Fatalf("pool capacity %d", pool.TotalCapacity())
	}
}

func TestLinkBetween(t *testing.T) {
	c := testCluster(t, 2, 8, 2)
	hw := c.HW
	intra := c.LinkBetween(0, 1)
	if intra.Bandwidth != hw.NVLinkBandwidth || intra.Latency != hw.NVLinkLatency {
		t.Fatalf("intra-node link %+v", intra)
	}
	inter := c.LinkBetween(0, 5)
	if inter.Bandwidth != hw.IBBandwidth || inter.Latency != hw.IBLatency {
		t.Fatalf("inter-node link %+v", inter)
	}
	self := c.LinkBetween(2, 2)
	if self.Latency != 0 {
		t.Fatalf("self link has latency %v", self.Latency)
	}
}

func TestGroupLinkBottleneck(t *testing.T) {
	c := testCluster(t, 2, 8, 2)
	// All on node 0: NVLink.
	l := c.GroupLink([]kvcache.InstanceID{0, 1, 2})
	if l.Bandwidth != c.HW.NVLinkBandwidth {
		t.Fatalf("intra-node group got %v", l.Bandwidth)
	}
	// Spanning nodes: IB is the bottleneck.
	l = c.GroupLink([]kvcache.InstanceID{0, 1, 4, 5})
	if l.Bandwidth != c.HW.IBBandwidth || l.Latency != c.HW.IBLatency {
		t.Fatalf("cross-node group got %+v", l)
	}
	// Singleton and empty groups are free.
	if c.GroupLink([]kvcache.InstanceID{3}).Latency != 0 {
		t.Fatal("singleton group has latency")
	}
	if c.GroupLink(nil).Latency != 0 {
		t.Fatal("empty group has latency")
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{Bandwidth: 100e9, Latency: 10 * time.Microsecond}
	got := l.Transfer(100e9)
	want := time.Second + 10*time.Microsecond
	if got != want {
		t.Fatalf("Transfer = %v, want %v", got, want)
	}
	if l.Transfer(0) != 0 {
		t.Fatal("zero-byte transfer should be free")
	}
}

// Paper anchor (§4.1): migrating the KV cache of a single long request
// takes *seconds*, far longer than a decoding step. A 1M-token request at
// 400 GB/s NVLink moves 512 GB ≈ 1.3 s.
func TestPaperAnchorMigrationSeconds(t *testing.T) {
	c := testCluster(t, 1, 8, 2)
	d := c.MigrationTime(1<<20, 0, 1)
	if d < 900*time.Millisecond || d > 2*time.Second {
		t.Fatalf("1M-token migration = %v, want ≈1.3s", d)
	}
	// And a 100K-token L-Eval-scale request still takes >100ms.
	d = c.MigrationTime(100_000, 0, 1)
	if d < 100*time.Millisecond {
		t.Fatalf("100K-token migration = %v, want >100ms", d)
	}
	if c.MigrationTime(100, 2, 2) != 0 {
		t.Fatal("self-migration should be free")
	}
	if c.MigrationTime(0, 0, 1) != 0 {
		t.Fatal("zero-token migration should be free")
	}
}

func TestInstanceLookup(t *testing.T) {
	c := testCluster(t, 1, 8, 4)
	if c.Instance(1) == nil || c.Instance(1).TP != 4 {
		t.Fatal("Instance(1) lookup failed")
	}
	if c.Instance(99) != nil || c.Instance(-1) != nil {
		t.Fatal("out-of-range lookup returned instance")
	}
}

func TestKVCapacityScalesWithTP(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	prev := 0
	for _, tp := range []int{1, 2, 4, 8} {
		cap, err := KVCapacityTokens(m, hw, tp)
		if err != nil {
			t.Fatalf("tp=%d: %v", tp, err)
		}
		if cap <= prev {
			t.Errorf("tp=%d capacity %d not larger than tp/2's %d", tp, cap, prev)
		}
		// Doubling TP more than doubles free HBM (the weight replica is
		// amortized over more GPUs), so capacity grows superlinearly.
		if prev > 0 && cap < 2*prev {
			t.Errorf("tp=%d capacity %d < 2x tp/2's %d: weight amortization lost", tp, cap, prev)
		}
		prev = cap
	}
}

func TestKVCapacityRejectsTooSmallHBM(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	hw.HBMBytes = m.WeightBytes() / 2 // one GPU cannot even hold the weights
	if _, err := KVCapacityTokens(m, hw, 1); err == nil {
		t.Error("undersized HBM accepted")
	}
}

func TestLinkTransferEdgeCases(t *testing.T) {
	l := Link{Bandwidth: 1e9, Latency: time.Millisecond}
	if d := l.Transfer(0); d != 0 {
		t.Errorf("Transfer(0) = %v", d)
	}
	if d := l.Transfer(-5); d != 0 {
		t.Errorf("Transfer(-5) = %v", d)
	}
	// 1 GB over 1 GB/s = 1s + 1ms latency.
	if d := l.Transfer(1e9); d != time.Second+time.Millisecond {
		t.Errorf("Transfer(1GB) = %v", d)
	}
	// Latency dominates small transfers.
	if d := l.Transfer(1); d < time.Millisecond {
		t.Errorf("Transfer(1B) = %v ignored latency", d)
	}
}

func TestGroupLinkSpanningNodesHitsIB(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	c, err := New(m, hw, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Instances 0-3 on node 0, 4-7 on node 1.
	intra := c.GroupLink([]kvcache.InstanceID{0, 1, 2})
	if intra.Bandwidth != hw.NVLinkBandwidth {
		t.Errorf("intra-node group bottleneck = %g, want NVLink %g", intra.Bandwidth, hw.NVLinkBandwidth)
	}
	cross := c.GroupLink([]kvcache.InstanceID{0, 1, 4})
	if cross.Bandwidth != hw.IBBandwidth {
		t.Errorf("cross-node group bottleneck = %g, want IB %g", cross.Bandwidth, hw.IBBandwidth)
	}
	if cross.Latency != hw.IBLatency {
		t.Errorf("cross-node group latency = %v, want %v", cross.Latency, hw.IBLatency)
	}
	solo := c.GroupLink([]kvcache.InstanceID{3})
	if solo.Latency != 0 {
		t.Errorf("single-instance group latency = %v", solo.Latency)
	}
}

func TestMigrationTimeProperties(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	c, err := New(m, hw, 2, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.MigrationTime(1000, 2, 2); d != 0 {
		t.Errorf("self-migration = %v", d)
	}
	if d := c.MigrationTime(0, 0, 1); d != 0 {
		t.Errorf("zero-token migration = %v", d)
	}
	intra := c.MigrationTime(100_000, 0, 1)
	cross := c.MigrationTime(100_000, 0, 4)
	if cross <= intra {
		t.Errorf("cross-node migration %v <= intra-node %v", cross, intra)
	}
	// Monotone in token count.
	if c.MigrationTime(200_000, 0, 1) <= intra {
		t.Error("migration time not monotone in tokens")
	}
}

func TestInstanceLayoutNodeAssignment(t *testing.T) {
	m := model.LWM1MText()
	hw := A800()
	c, err := New(m, hw, 3, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInstances() != 6 {
		t.Fatalf("3 nodes x 8 GPUs / TP=4 = %d instances, want 6", c.NumInstances())
	}
	for i, inst := range c.Instances {
		if want := NodeID(i / 2); inst.Node != want {
			t.Errorf("instance %d on node %d, want %d", i, inst.Node, want)
		}
		if inst.TP != 4 {
			t.Errorf("instance %d TP = %d", i, inst.TP)
		}
	}
	if c.Instance(kvcache.InstanceID(99)) != nil {
		t.Error("out-of-range lookup returned an instance")
	}
	if c.Instance(kvcache.InstanceID(-1)) != nil {
		t.Error("negative lookup returned an instance")
	}
}
