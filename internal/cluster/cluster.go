// Package cluster models the hardware substrate the paper evaluates on:
// servers with eight NVIDIA A800-80GB GPUs, 400 GB/s NVLink between GPUs in
// a node, and four 200 Gbps InfiniBand NICs between nodes.
//
// The cluster is organized as the paper's §4 prescribes: the unit of
// execution is the *elastic instance*, a group of TP GPUs holding one full
// replica of the model weights under tensor parallelism. Elastic sequence
// parallelism then composes instances into parallel groups at iteration
// granularity; this package provides the static facts (capacities, link
// bandwidths, transfer times) that the cost model and schedulers consume.
package cluster

import (
	"fmt"
	"time"

	"loongserve/internal/kvcache"
	"loongserve/internal/model"
)

// Hardware describes one GPU type and the interconnects around it.
type Hardware struct {
	Name string

	// Per-GPU compute and memory.
	PeakFLOPS    float64 // dense fp16/bf16 peak, FLOP/s
	MFUPrefill   float64 // achieved fraction of peak for prefill GEMMs
	MFUAttention float64 // achieved fraction of peak for attention kernels
	MFUDecode    float64 // achieved fraction of peak for decode GEMMs
	MemBandwidth float64 // HBM bandwidth, bytes/s
	HBMBytes     int64   // HBM capacity, bytes

	// Memory reserved per GPU for activations, workspaces and allocator
	// slack; everything left after weights goes to the KV cache pool.
	ActReserveBytes int64

	// Interconnect.
	NVLinkBandwidth float64       // intra-node GPU-GPU, bytes/s
	NVLinkLatency   time.Duration // per message
	IBBandwidth     float64       // inter-node per node pair, bytes/s
	IBLatency       time.Duration // per message

	// Fixed per-iteration serving-stack overheads (kernel launches,
	// scheduler RPC, tokenization hand-off). These are what make short
	// prefills scale poorly with more GPUs (Fig 2, top). Fused
	// chunk+decode iterations (SplitFuse) run a leaner path than full
	// prefills but heavier than pure decodes.
	PrefillOverhead time.Duration
	DecodeOverhead  time.Duration
	ChunkOverhead   time.Duration
}

// A800 returns the testbed hardware of the paper's §7.1: A800-80GB GPUs,
// 400 GB/s NVLink, 4x200 Gbps InfiniBand. Efficiency factors and fixed
// overheads are calibrated so the paper's anchor measurements hold (see
// costmodel tests): a 100K-token prefill on 8 GPUs is ~106x slower than a
// 1K-token prefill (Fig 2), and decoding is dominated by the weight read at
// small batch sizes.
func A800() Hardware {
	return Hardware{
		Name:            "A800-80GB",
		PeakFLOPS:       312e12,
		MFUPrefill:      0.50,
		MFUAttention:    0.40,
		MFUDecode:       0.45,
		MemBandwidth:    2.0e12,
		HBMBytes:        80e9,
		ActReserveBytes: 12e9,
		NVLinkBandwidth: 400e9,
		NVLinkLatency:   5 * time.Microsecond,
		IBBandwidth:     100e9, // 4 x 200 Gbps aggregated
		IBLatency:       15 * time.Microsecond,
		PrefillOverhead: 25 * time.Millisecond,
		DecodeOverhead:  3 * time.Millisecond,
		ChunkOverhead:   8 * time.Millisecond,
	}
}

// NodeID identifies a server.
type NodeID int

// Instance is an elastic instance: TP GPUs on one node holding a full
// replica of the model weights.
type Instance struct {
	ID   kvcache.InstanceID
	Node NodeID
	TP   int
	// KVCapacity is the KV-cache pool size of this instance in token slots.
	KVCapacity int
}

// Link describes the effective channel between two instances.
type Link struct {
	Bandwidth float64 // bytes/s
	Latency   time.Duration
}

// Transfer returns the time to move n bytes over the link.
func (l Link) Transfer(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + time.Duration(float64(bytes)/l.Bandwidth*1e9)
}

// Cluster is a set of elastic instances over one or more nodes.
type Cluster struct {
	HW          Hardware
	Model       model.Config
	GPUsPerNode int
	Instances   []*Instance
}

// New lays out nodes*gpusPerNode GPUs into elastic instances of tp GPUs
// each, filling node by node. It fails when tp does not divide gpusPerNode
// or when a single instance cannot hold the model weights.
func New(m model.Config, hw Hardware, nodes, gpusPerNode, tp int) (*Cluster, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 || gpusPerNode <= 0 || tp <= 0 {
		return nil, fmt.Errorf("cluster: non-positive shape nodes=%d gpus=%d tp=%d", nodes, gpusPerNode, tp)
	}
	if gpusPerNode%tp != 0 {
		return nil, fmt.Errorf("cluster: tp=%d does not divide gpusPerNode=%d", tp, gpusPerNode)
	}
	cap, err := KVCapacityTokens(m, hw, tp)
	if err != nil {
		return nil, err
	}
	c := &Cluster{HW: hw, Model: m, GPUsPerNode: gpusPerNode}
	id := kvcache.InstanceID(0)
	for n := 0; n < nodes; n++ {
		for i := 0; i < gpusPerNode/tp; i++ {
			c.Instances = append(c.Instances, &Instance{ID: id, Node: NodeID(n), TP: tp, KVCapacity: cap})
			id++
		}
	}
	return c, nil
}

// KVCapacityTokens returns the KV pool capacity (token slots) of one
// elastic instance with tp GPUs: HBM minus one weight replica minus the
// per-GPU activation reserve, divided by the per-token KV footprint.
func KVCapacityTokens(m model.Config, hw Hardware, tp int) (int, error) {
	total := int64(tp) * hw.HBMBytes
	free := total - m.WeightBytes() - int64(tp)*hw.ActReserveBytes
	if free <= 0 {
		return 0, fmt.Errorf("cluster: %d x %s cannot hold %s weights (%d GB) plus reserve",
			tp, hw.Name, m.Name, m.WeightBytes()/1e9)
	}
	return int(free / m.KVBytesPerToken()), nil
}

// NumInstances returns the instance count.
func (c *Cluster) NumInstances() int { return len(c.Instances) }

// Instance returns the instance with the given ID, or nil.
func (c *Cluster) Instance(id kvcache.InstanceID) *Instance {
	i := int(id)
	if i < 0 || i >= len(c.Instances) {
		return nil
	}
	return c.Instances[i]
}

// Capacities returns the per-instance KV capacities keyed by instance ID,
// in the form kvcache.NewDistributedPool consumes.
func (c *Cluster) Capacities() map[kvcache.InstanceID]int {
	out := make(map[kvcache.InstanceID]int, len(c.Instances))
	for _, inst := range c.Instances {
		out[inst.ID] = inst.KVCapacity
	}
	return out
}

// NewPool builds the unified distributed KV cache pool over all instances.
func (c *Cluster) NewPool() *kvcache.DistributedPool {
	return kvcache.NewDistributedPool(c.Capacities())
}

// LinkBetween returns the channel between two instances: NVLink within a
// node, InfiniBand across nodes. An instance to itself has infinite
// bandwidth and zero latency.
func (c *Cluster) LinkBetween(a, b kvcache.InstanceID) Link {
	ia, ib := c.Instance(a), c.Instance(b)
	if ia == nil || ib == nil {
		panic(fmt.Sprintf("cluster: unknown instance %d or %d", a, b))
	}
	if a == b {
		return Link{Bandwidth: c.HW.MemBandwidth, Latency: 0}
	}
	if ia.Node == ib.Node {
		return Link{Bandwidth: c.HW.NVLinkBandwidth, Latency: c.HW.NVLinkLatency}
	}
	return Link{Bandwidth: c.HW.IBBandwidth, Latency: c.HW.IBLatency}
}

// GroupLink returns the bottleneck link of a parallel group: the lowest
// bandwidth and highest latency over the ring a sequence-parallel group
// forms. Groups of zero or one instance communicate for free.
func (c *Cluster) GroupLink(ids []kvcache.InstanceID) Link {
	if len(ids) <= 1 {
		return Link{Bandwidth: c.HW.MemBandwidth, Latency: 0}
	}
	worst := Link{Bandwidth: c.HW.NVLinkBandwidth, Latency: 0}
	for i := range ids {
		next := ids[(i+1)%len(ids)]
		l := c.LinkBetween(ids[i], next)
		if l.Bandwidth < worst.Bandwidth {
			worst.Bandwidth = l.Bandwidth
		}
		if l.Latency > worst.Latency {
			worst.Latency = l.Latency
		}
	}
	return worst
}

// MigrationTime returns the time to move n KV tokens from instance a to b:
// the reactive-migration cost the paper's proactive mechanism avoids.
func (c *Cluster) MigrationTime(tokens int, a, b kvcache.InstanceID) time.Duration {
	if tokens <= 0 || a == b {
		return 0
	}
	return c.LinkBetween(a, b).Transfer(int64(tokens) * c.Model.KVBytesPerToken())
}
