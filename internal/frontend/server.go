package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"loongserve/internal/token"
)

// CompletionRequest is the accepted subset of the OpenAI completions API.
type CompletionRequest struct {
	Model       string  `json:"model"`
	Prompt      string  `json:"prompt"`
	MaxTokens   *int    `json:"max_tokens,omitempty"`
	Temperature float64 `json:"temperature,omitempty"`
	Stream      bool    `json:"stream,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// Choice is one completion alternative (this server always returns one).
type Choice struct {
	Text         string `json:"text"`
	Index        int    `json:"index"`
	FinishReason string `json:"finish_reason,omitempty"`
}

// Usage reports token accounting for one request.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// CompletionResponse is the buffered (non-stream) reply; stream chunks use
// the same shape with partial Text and omitted Usage.
type CompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   *Usage   `json:"usage,omitempty"`
}

// APIError is the error envelope.
type APIError struct {
	Message string `json:"message"`
	Type    string `json:"type"`
	Code    string `json:"code,omitempty"`
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// ModelInfo describes one entry of /v1/models.
type ModelInfo struct {
	ID      string `json:"id"`
	Object  string `json:"object"`
	Created int64  `json:"created"`
	OwnedBy string `json:"owned_by"`
}

// Server is the HTTP front end. Construct with NewServer and mount via
// Handler.
type Server struct {
	gen   Generator
	tok   *token.Tokenizer
	model string
	// Now is the clock used for "created" stamps; overridable in tests.
	Now func() time.Time
	// DefaultMaxTokens applies when max_tokens is omitted (OpenAI
	// defaults to 16).
	DefaultMaxTokens int

	nextID atomic.Int64
}

// NewServer wires a Generator and tokenizer behind the API.
func NewServer(gen Generator, tok *token.Tokenizer, modelName string) *Server {
	return &Server{
		gen:              gen,
		tok:              tok,
		model:            modelName,
		Now:              time.Now,
		DefaultMaxTokens: 16,
	}
}

// Handler returns the routable HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/completions", s.handleCompletions)
	mux.HandleFunc("/v1/chat/completions", s.handleChat)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, typ, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: APIError{
		Message: fmt.Sprintf(format, args...),
		Type:    typ,
		Code:    code,
	}})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "method_not_allowed",
			"%s not allowed on /v1/models", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"object": "list",
		"data": []ModelInfo{{
			ID:      s.model,
			Object:  "model",
			Created: s.Now().Unix(),
			OwnedBy: "loongserve",
		}},
	})
}

func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "method_not_allowed",
			"%s not allowed on /v1/completions", r.Method)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "read_error", "reading body: %v", err)
		return
	}
	var req CompletionRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_json", "parsing request: %v", err)
		return
	}
	if req.Model != "" && req.Model != s.model {
		writeError(w, http.StatusNotFound, "invalid_request_error", "model_not_found",
			"model %q not found (serving %q)", req.Model, s.model)
		return
	}
	maxTokens := s.DefaultMaxTokens
	if req.MaxTokens != nil {
		maxTokens = *req.MaxTokens
	}
	if maxTokens < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_max_tokens",
			"max_tokens must be non-negative, got %d", maxTokens)
		return
	}
	if req.Temperature < 0 || req.Temperature > 2 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_temperature",
			"temperature must be in [0, 2], got %g", req.Temperature)
		return
	}
	prompt := s.tok.Encode(req.Prompt)
	if len(prompt)+maxTokens > s.gen.MaxContext() {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "context_length_exceeded",
			"prompt of %d tokens + max_tokens %d exceeds the %d-token context window",
			len(prompt), maxTokens, s.gen.MaxContext())
		return
	}

	id := fmt.Sprintf("cmpl-%d", s.nextID.Add(1))
	created := s.Now().Unix()
	seed := req.Seed
	if seed == 0 {
		seed = s.nextID.Load()
	}

	if req.Stream {
		s.streamCompletion(w, r.Context(), id, created, prompt, maxTokens, req.Temperature, seed)
		return
	}

	var sb strings.Builder
	completion := 0
	finish, err := s.gen.Generate(r.Context(), prompt, maxTokens, req.Temperature, seed, func(tid int) error {
		text, err := s.tok.Decode([]int{tid})
		if err != nil {
			return err
		}
		sb.WriteString(text)
		completion++
		return nil
	})
	if err != nil {
		var overflow *ErrContextOverflow
		if errors.As(err, &overflow) {
			writeError(w, http.StatusBadRequest, "invalid_request_error", "context_length_exceeded", "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "server_error", "generation_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CompletionResponse{
		ID:      id,
		Object:  "text_completion",
		Created: created,
		Model:   s.model,
		Choices: []Choice{{Text: sb.String(), Index: 0, FinishReason: finish}},
		Usage: &Usage{
			PromptTokens:     len(prompt),
			CompletionTokens: completion,
			TotalTokens:      len(prompt) + completion,
		},
	})
}

// streamCompletion writes Server-Sent Events: one chunk per token, a final
// chunk carrying the finish reason, then "[DONE]".
func (s *Server) streamCompletion(w http.ResponseWriter, ctx context.Context, id string, created int64, prompt []int, maxTokens int, temperature float64, seed int64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "no_flush",
			"response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeChunk := func(c CompletionResponse) error {
		b, err := json.Marshal(c)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	finish, err := s.gen.Generate(ctx, prompt, maxTokens, temperature, seed, func(tid int) error {
		text, err := s.tok.Decode([]int{tid})
		if err != nil {
			return err
		}
		return writeChunk(CompletionResponse{
			ID:      id,
			Object:  "text_completion",
			Created: created,
			Model:   s.model,
			Choices: []Choice{{Text: text, Index: 0}},
		})
	})
	if err != nil {
		// Headers are gone; surface the failure as a terminal SSE event.
		_ = writeChunk(CompletionResponse{
			ID:      id,
			Object:  "text_completion",
			Created: created,
			Model:   s.model,
			Choices: []Choice{{Index: 0, FinishReason: "error"}},
		})
	} else {
		_ = writeChunk(CompletionResponse{
			ID:      id,
			Object:  "text_completion",
			Created: created,
			Model:   s.model,
			Choices: []Choice{{Index: 0, FinishReason: finish}},
		})
	}
	_, _ = io.WriteString(w, "data: [DONE]\n\n")
	flusher.Flush()
}
