package frontend

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"loongserve/internal/token"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tok := token.Default()
	lm := NewLM(tok, LMOptions{Instances: 2, MaxContext: 128})
	s := NewServer(lm, tok, "loongserve-tiny-lm")
	s.Now = func() time.Time { return time.Unix(1718000000, 0) }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeCompletion(t *testing.T, resp *http.Response) CompletionResponse {
	t.Helper()
	var cr CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decoding completion: %v", err)
	}
	return cr
}

func decodeError(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return env.Error
}

func intp(v int) *int { return &v }

func TestCompletionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
		Prompt:    "the decoding phase",
		MaxTokens: intp(8),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	cr := decodeCompletion(t, resp)
	if cr.Object != "text_completion" {
		t.Errorf("object = %q", cr.Object)
	}
	if cr.Model != "loongserve-tiny-lm" {
		t.Errorf("model = %q", cr.Model)
	}
	if !strings.HasPrefix(cr.ID, "cmpl-") {
		t.Errorf("id = %q", cr.ID)
	}
	if cr.Created != 1718000000 {
		t.Errorf("created = %d", cr.Created)
	}
	if len(cr.Choices) != 1 {
		t.Fatalf("choices = %d", len(cr.Choices))
	}
	c := cr.Choices[0]
	if c.FinishReason != "length" && c.FinishReason != "stop" {
		t.Errorf("finish_reason = %q", c.FinishReason)
	}
	if cr.Usage == nil {
		t.Fatal("usage missing")
	}
	wantPrompt := len(token.Default().Encode("the decoding phase"))
	if cr.Usage.PromptTokens != wantPrompt {
		t.Errorf("prompt_tokens = %d, want %d", cr.Usage.PromptTokens, wantPrompt)
	}
	if cr.Usage.CompletionTokens == 0 || cr.Usage.CompletionTokens > 8 {
		t.Errorf("completion_tokens = %d", cr.Usage.CompletionTokens)
	}
	if cr.Usage.TotalTokens != cr.Usage.PromptTokens+cr.Usage.CompletionTokens {
		t.Errorf("total != prompt + completion")
	}
}

func TestCompletionDeterministicAtZeroTemperature(t *testing.T) {
	_, ts := newTestServer(t)
	get := func() string {
		resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
			Prompt:    "elastic scaling",
			MaxTokens: intp(6),
		})
		return decodeCompletion(t, resp).Choices[0].Text
	}
	if a, b := get(), get(); a != b {
		t.Errorf("greedy completions differ: %q vs %q", a, b)
	}
}

func TestCompletionDefaultMaxTokens(t *testing.T) {
	s, ts := newTestServer(t)
	s.DefaultMaxTokens = 3
	resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{Prompt: "hi"})
	cr := decodeCompletion(t, resp)
	if cr.Usage.CompletionTokens > 3 {
		t.Errorf("completion_tokens = %d with default cap 3", cr.Usage.CompletionTokens)
	}
}

func TestCompletionValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"bad json", `{"prompt": `, http.StatusBadRequest, "invalid_json"},
		{"unknown field", `{"prompt":"x","best_of":4}`, http.StatusBadRequest, "invalid_json"},
		{"negative max_tokens", `{"prompt":"x","max_tokens":-1}`, http.StatusBadRequest, "invalid_max_tokens"},
		{"bad temperature", `{"prompt":"x","temperature":3.5}`, http.StatusBadRequest, "invalid_temperature"},
		{"wrong model", `{"prompt":"x","model":"gpt-17"}`, http.StatusNotFound, "model_not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if e := decodeError(t, resp); e.Code != tc.wantErr {
				t.Errorf("error code = %q, want %q", e.Code, tc.wantErr)
			}
		})
	}
}

func TestCompletionContextLengthExceeded(t *testing.T) {
	_, ts := newTestServer(t) // window 128
	long := strings.Repeat("zq ", 200)
	resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
		Prompt:    long,
		MaxTokens: intp(10),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "context_length_exceeded" {
		t.Errorf("error code = %q", e.Code)
	}
}

func TestCompletionMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/completions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/completions = %d, want 405", resp.StatusCode)
	}
}

// readSSE parses "data:" events until [DONE].
func readSSE(t *testing.T, body io.Reader) []CompletionResponse {
	t.Helper()
	var chunks []CompletionResponse
	sc := bufio.NewScanner(body)
	done := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		if payload == "[DONE]" {
			done = true
			break
		}
		var cr CompletionResponse
		if err := json.Unmarshal([]byte(payload), &cr); err != nil {
			t.Fatalf("chunk %q: %v", payload, err)
		}
		chunks = append(chunks, cr)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning SSE: %v", err)
	}
	if !done {
		t.Fatal("stream ended without [DONE]")
	}
	return chunks
}

func TestCompletionStreaming(t *testing.T) {
	_, ts := newTestServer(t)

	// Buffered reference.
	ref := decodeCompletion(t, postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
		Prompt:    "stream me",
		MaxTokens: intp(6),
	}))

	resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
		Prompt:    "stream me",
		MaxTokens: intp(6),
		Stream:    true,
	})
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	chunks := readSSE(t, resp.Body)
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks, want >= 2 (tokens + finish)", len(chunks))
	}
	var sb strings.Builder
	for _, c := range chunks[:len(chunks)-1] {
		sb.WriteString(c.Choices[0].Text)
	}
	last := chunks[len(chunks)-1]
	if last.Choices[0].FinishReason == "" {
		t.Error("final chunk missing finish_reason")
	}
	if sb.String() != ref.Choices[0].Text {
		t.Errorf("streamed text %q != buffered %q", sb.String(), ref.Choices[0].Text)
	}
	if last.Choices[0].FinishReason != ref.Choices[0].FinishReason {
		t.Errorf("streamed finish %q != buffered %q", last.Choices[0].FinishReason, ref.Choices[0].FinishReason)
	}
}

func TestConcurrentCompletions(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(CompletionRequest{
				Prompt:    fmt.Sprintf("request %d", i),
				MaxTokens: intp(4),
			})
			resp, err := http.Post(ts.URL+"/v1/completions", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var cr CompletionResponse
			errs[i] = json.NewDecoder(resp.Body).Decode(&cr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Object string      `json:"object"`
		Data   []ModelInfo `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Object != "list" || len(list.Data) != 1 {
		t.Fatalf("models list = %+v", list)
	}
	if list.Data[0].ID != "loongserve-tiny-lm" || list.Data[0].OwnedBy != "loongserve" {
		t.Errorf("model info = %+v", list.Data[0])
	}
	if resp2, _ := http.Post(ts.URL+"/v1/models", "application/json", nil); resp2.StatusCode != http.StatusMethodNotAllowed {
		resp2.Body.Close()
		t.Errorf("POST /v1/models = %d, want 405", resp2.StatusCode)
	} else {
		resp2.Body.Close()
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestSeededSamplingOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	get := func(seed int64) string {
		resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
			Prompt:      "sampled",
			MaxTokens:   intp(6),
			Temperature: 0.9,
			Seed:        seed,
		})
		return decodeCompletion(t, resp).Choices[0].Text
	}
	if a, b := get(7), get(7); a != b {
		t.Errorf("same seed produced %q and %q", a, b)
	}
}
