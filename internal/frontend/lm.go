// Package frontend implements the OpenAI-style HTTP API in front of the
// functional ESP runtime (§6: "The front end of LoongServe is similar to
// OpenAI API. Users send requests to LoongServe based on the front-end
// API"). It wires a byte-level BPE tokenizer and a tiny language model
// running real striped-prefill / multi-master-decode math into an HTTP
// server with both buffered and streaming (SSE) completions.
package frontend

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"loongserve/internal/kvcache"
	"loongserve/internal/model"
	"loongserve/internal/seqparallel"
	"loongserve/internal/tensor"
	"loongserve/internal/token"
)

// Generator produces completion tokens for prompts. Implementations must
// be safe for concurrent use.
type Generator interface {
	// MaxContext returns the model's context window in tokens.
	MaxContext() int
	// Generate produces up to maxTokens continuation tokens for the
	// prompt, calling emit after each. A non-nil error from emit aborts
	// generation (client hung up). The returned finish reason is "stop"
	// (EOS sampled) or "length" (maxTokens reached).
	Generate(ctx context.Context, prompt []int, maxTokens int, temperature float64, seed int64, emit func(id int) error) (string, error)
}

// ErrContextOverflow reports a prompt + completion budget exceeding the
// model context window.
type ErrContextOverflow struct {
	Prompt, MaxTokens, Window int
}

func (e *ErrContextOverflow) Error() string {
	return fmt.Sprintf("frontend: prompt of %d tokens + max_tokens %d exceeds the %d-token context window",
		e.Prompt, e.MaxTokens, e.Window)
}

// LM is a Generator backed by the functional ESP runtime: prompts prefill
// with striped sequence parallelism across the group, and completion
// tokens decode with rotating multi-master assignment. The transformer
// math is real (tiny weights); the point is that the front end exercises
// the exact code paths §4 describes.
type LM struct {
	Tok *token.Tokenizer

	cfg   model.Config
	group *seqparallel.Group
	embed *tensor.Matrix // TotalSize x Hidden, tied input/output embedding

	mu     sync.Mutex // the functional group is single-threaded
	nextID kvcache.RequestID
}

// LMOptions configures NewLM.
type LMOptions struct {
	// Instances is the ESP group size (DoP). Default 2.
	Instances int
	// Seed makes weights and embeddings deterministic. Default 1.
	Seed int64
	// MaxContext overrides the model's context window. Default 512.
	MaxContext int
}

// NewLM builds the tiny serving model. All state is deterministic in
// opts.Seed.
func NewLM(tok *token.Tokenizer, opts LMOptions) *LM {
	if opts.Instances <= 0 {
		opts.Instances = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxContext <= 0 {
		opts.MaxContext = 512
	}
	cfg := model.TinyGQA()
	cfg.Name = "loongserve-tiny-lm"
	cfg.VocabSize = tok.TotalSize()
	cfg.MaxContext = opts.MaxContext

	w := model.NewWeights(cfg, opts.Seed)
	insts := make([]*seqparallel.Instance, opts.Instances)
	for i := range insts {
		insts[i] = seqparallel.NewInstance(kvcache.InstanceID(i), w)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7919))
	return &LM{
		Tok:   tok,
		cfg:   cfg,
		group: seqparallel.NewGroup(cfg, insts),
		embed: tensor.RandMatrix(rng, tok.TotalSize(), cfg.Hidden, 0.08),
	}
}

// MaxContext implements Generator.
func (lm *LM) MaxContext() int { return lm.cfg.MaxContext }

// DoP returns the ESP group size serving completions.
func (lm *LM) DoP() int { return lm.group.DoP() }

// embedRow returns the 1 x Hidden embedding of one token.
func (lm *LM) embedRow(id int) *tensor.Matrix {
	out := tensor.NewMatrix(1, lm.cfg.Hidden)
	copy(out.Row(0), lm.embed.Row(id))
	return out
}

// sample picks the next token from logits: argmax at temperature 0,
// softmax sampling otherwise.
func sample(logits []float32, temperature float64, rng *rand.Rand) int {
	if temperature <= 0 {
		best := 0
		for i, v := range logits {
			if v > logits[best] {
				best = i
			}
		}
		return best
	}
	// Temperature-scaled softmax sampling in float64 for stability.
	maxL := float64(logits[0])
	for _, v := range logits[1:] {
		if float64(v) > maxL {
			maxL = float64(v)
		}
	}
	var sum float64
	probs := make([]float64, len(logits))
	for i, v := range logits {
		p := math.Exp((float64(v) - maxL) / temperature)
		probs[i] = p
		sum += p
	}
	x := rng.Float64() * sum
	for i, p := range probs {
		x -= p
		if x <= 0 {
			return i
		}
	}
	return len(logits) - 1
}

// Generate implements Generator. The prompt prefills once across the
// group; each completion token decodes with its master rotating over the
// instances, so KV for the generated suffix spreads across the group
// exactly as multi-master decoding distributes it (§4.2).
func (lm *LM) Generate(ctx context.Context, prompt []int, maxTokens int, temperature float64, seed int64, emit func(id int) error) (string, error) {
	if maxTokens < 0 {
		return "", fmt.Errorf("frontend: negative maxTokens %d", maxTokens)
	}
	if len(prompt)+maxTokens > lm.cfg.MaxContext {
		return "", &ErrContextOverflow{Prompt: len(prompt), MaxTokens: maxTokens, Window: lm.cfg.MaxContext}
	}
	for _, id := range prompt {
		if id < 0 || id >= lm.Tok.TotalSize() {
			return "", fmt.Errorf("frontend: prompt token %d outside vocabulary", id)
		}
	}

	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.nextID++
	rid := lm.nextID
	defer func() {
		for _, in := range lm.group.Instances {
			in.DropRequest(rid)
		}
	}()

	// Empty prompts anchor on BOS so the prefill has at least one token.
	ids := prompt
	if len(ids) == 0 {
		ids = []int{lm.Tok.BOS()}
	}
	x := tensor.NewMatrix(len(ids), lm.cfg.Hidden)
	for i, id := range ids {
		copy(x.Row(i), lm.embed.Row(id))
	}
	positions := make([]int, len(ids))
	for i := range positions {
		positions[i] = i
	}
	hidden, err := lm.group.Prefill(rid, x, positions, seqparallel.UniformPlan(len(ids), lm.group.DoP()))
	if err != nil {
		return "", fmt.Errorf("frontend: prefill: %w", err)
	}

	rng := rand.New(rand.NewSource(seed))
	last := hidden.SliceRows(hidden.Rows-1, hidden.Rows)
	produced := 0
	for produced < maxTokens {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		logits := tensor.MatMulT(last, lm.embed)
		next := sample(logits.Row(0), temperature, rng)
		if err := emit(next); err != nil {
			return "", err
		}
		produced++
		if next == lm.Tok.EOS() {
			return "stop", nil
		}
		if produced == maxTokens {
			break
		}
		outs, err := lm.group.DecodeStep([]seqparallel.DecodeRequest{{
			ID:     rid,
			X:      lm.embedRow(next),
			Pos:    len(ids) + produced - 1,
			Master: (len(ids) + produced) % lm.group.DoP(),
		}})
		if err != nil {
			return "", fmt.Errorf("frontend: decode: %w", err)
		}
		last = outs[0]
	}
	return "length", nil
}
