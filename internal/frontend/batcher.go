package frontend

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"loongserve/internal/kvcache"
	"loongserve/internal/seqparallel"
	"loongserve/internal/tensor"
)

// Batcher aggregates concurrent Generate calls into shared decode
// iterations — iteration-level continuous batching (Orca-style) over the
// functional ESP runtime. New requests join the running batch at the next
// iteration boundary; every iteration runs one multi-master DecodeStep for
// all active requests, with mastership spread round-robin so generated KV
// distributes across the group exactly as §4.2 describes.
//
// Batcher implements Generator, so it drops into Server in place of the
// serialized LM.
type Batcher struct {
	lm *LM

	mu     sync.Mutex
	joinCh chan *batchEntry
	quit   chan struct{}
	once   sync.Once

	// pending counts Generate calls that have committed to joining (between
	// their validation and the joinCh hand-off). The engine loop refuses to
	// start an iteration while a committed joiner is in flight, so calls
	// that arrive together share decode iterations instead of racing the
	// loop's iteration boundary.
	pending atomic.Int32

	// MaxBatchObserved is instrumentation: the largest decode batch any
	// iteration ran (tests assert batching actually happens).
	maxBatch int
	iters    int
}

// batchEntry is one in-flight generation inside the batcher.
type batchEntry struct {
	ctx         context.Context
	prompt      []int
	maxTokens   int
	temperature float64
	rng         *rand.Rand
	emit        func(int) error

	// loop-owned state
	rid       kvcache.RequestID
	baseLen   int // prefill token count
	produced  int
	last      *tensor.Matrix
	nextInput int // token to feed into the next decode iteration

	finish string
	err    error
	done   chan struct{}
}

// NewBatcher wraps an LM with continuous batching. The LM must not be
// used directly while the batcher owns it (the engine loop is the sole
// group driver). Close releases the engine goroutine.
func NewBatcher(lm *LM) *Batcher {
	b := &Batcher{
		lm:     lm,
		joinCh: make(chan *batchEntry),
		quit:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// Close stops the engine loop. In-flight generations finish with an error.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.quit) })
}

// MaxContext implements Generator.
func (b *Batcher) MaxContext() int { return b.lm.MaxContext() }

// Stats returns (iterations run, largest decode batch observed).
func (b *Batcher) Stats() (iters, maxBatch int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.iters, b.maxBatch
}

// Generate implements Generator. Unlike LM.Generate, concurrent calls
// share decode iterations instead of serializing whole generations.
func (b *Batcher) Generate(ctx context.Context, prompt []int, maxTokens int, temperature float64, seed int64, emit func(id int) error) (string, error) {
	if maxTokens < 0 {
		return "", fmt.Errorf("frontend: negative maxTokens %d", maxTokens)
	}
	if len(prompt)+maxTokens > b.lm.cfg.MaxContext {
		return "", &ErrContextOverflow{Prompt: len(prompt), MaxTokens: maxTokens, Window: b.lm.cfg.MaxContext}
	}
	for _, id := range prompt {
		if id < 0 || id >= b.lm.Tok.TotalSize() {
			return "", fmt.Errorf("frontend: prompt token %d outside vocabulary", id)
		}
	}
	e := &batchEntry{
		ctx:         ctx,
		prompt:      prompt,
		maxTokens:   maxTokens,
		temperature: temperature,
		rng:         rand.New(rand.NewSource(seed)),
		emit:        emit,
		done:        make(chan struct{}),
	}
	b.pending.Add(1)
	select {
	case b.joinCh <- e:
	case <-b.quit:
		b.pending.Add(-1)
		return "", fmt.Errorf("frontend: batcher closed")
	case <-ctx.Done():
		b.pending.Add(-1)
		return "", ctx.Err()
	}
	select {
	case <-e.done:
		return e.finish, e.err
	case <-b.quit:
		return "", fmt.Errorf("frontend: batcher closed")
	}
}

// retire completes an entry and drops its KV from every instance.
func (b *Batcher) retire(e *batchEntry, finish string, err error) {
	for _, in := range b.lm.group.Instances {
		in.DropRequest(e.rid)
	}
	e.finish, e.err = finish, err
	close(e.done)
}

// admit prefills a newly joined entry and emits its first token. Returns
// false when the entry finished immediately (maxTokens 0, EOS first, emit
// failure).
func (b *Batcher) admit(e *batchEntry) bool {
	lm := b.lm
	lm.nextID++
	e.rid = lm.nextID

	ids := e.prompt
	if len(ids) == 0 {
		ids = []int{lm.Tok.BOS()}
	}
	e.baseLen = len(ids)
	x := tensor.NewMatrix(len(ids), lm.cfg.Hidden)
	for i, id := range ids {
		copy(x.Row(i), lm.embed.Row(id))
	}
	positions := make([]int, len(ids))
	for i := range positions {
		positions[i] = i
	}
	hidden, err := lm.group.Prefill(e.rid, x, positions, seqparallel.UniformPlan(len(ids), lm.group.DoP()))
	if err != nil {
		b.retire(e, "", fmt.Errorf("frontend: prefill: %w", err))
		return false
	}
	e.last = hidden.SliceRows(hidden.Rows-1, hidden.Rows)
	return b.step(e) // sample and emit the first token
}

// step samples the next token from e.last, emits it, and reports whether
// the entry stays active (needs another decode iteration).
func (b *Batcher) step(e *batchEntry) bool {
	if e.produced >= e.maxTokens {
		b.retire(e, "length", nil)
		return false
	}
	if err := e.ctx.Err(); err != nil {
		b.retire(e, "", err)
		return false
	}
	logits := tensor.MatMulT(e.last, b.lm.embed)
	next := sample(logits.Row(0), e.temperature, e.rng)
	if err := e.emit(next); err != nil {
		b.retire(e, "", err)
		return false
	}
	e.produced++
	if next == b.lm.Tok.EOS() {
		b.retire(e, "stop", nil)
		return false
	}
	if e.produced == e.maxTokens {
		b.retire(e, "length", nil)
		return false
	}
	e.nextInput = next
	return true
}

// loop is the engine: admit joiners at iteration boundaries, run one
// shared multi-master decode step per iteration, sample/emit per request.
func (b *Batcher) loop() {
	var active []*batchEntry
	for {
		// Block for the first joiner when idle; otherwise drain joiners
		// non-blocking (they wait for the iteration boundary).
		if len(active) == 0 {
			select {
			case e := <-b.joinCh:
				b.pending.Add(-1)
				if b.admit(e) {
					active = append(active, e)
				}
			case <-b.quit:
				return
			}
			continue
		}
		// Iteration boundary: admit every call that has already committed
		// to joining (pending counts callers between their commit and the
		// joinCh hand-off), and yield to the scheduler at least once so
		// runnable callers that have not reached their commit yet get a
		// scheduling round to do so. Without the yield a fast engine loop
		// monopolizes its processor — generations finish inside one
		// preemption quantum — and concurrent Generate calls trickle in
		// one per generation instead of sharing decode iterations.
		yielded := false
		for {
			select {
			case e := <-b.joinCh:
				b.pending.Add(-1)
				if b.admit(e) {
					active = append(active, e)
				}
				continue
			case <-b.quit:
				return
			default:
			}
			if b.pending.Load() > 0 || !yielded {
				yielded = true
				runtime.Gosched()
				continue
			}
			break
		}
		if len(active) == 0 {
			continue
		}

		// One shared decode iteration for every active request.
		batch := make([]seqparallel.DecodeRequest, len(active))
		for i, e := range active {
			batch[i] = seqparallel.DecodeRequest{
				ID:     e.rid,
				X:      b.lm.embedRow(e.nextInput),
				Pos:    e.baseLen + e.produced - 1,
				Master: (e.baseLen + e.produced) % b.lm.group.DoP(),
			}
		}
		b.mu.Lock()
		b.iters++
		if len(batch) > b.maxBatch {
			b.maxBatch = len(batch)
		}
		b.mu.Unlock()
		outs, err := b.lm.group.DecodeStep(batch)
		if err != nil {
			for _, e := range active {
				b.retire(e, "", fmt.Errorf("frontend: decode: %w", err))
			}
			active = nil
			continue
		}
		next := active[:0]
		for i, e := range active {
			e.last = outs[i]
			if b.step(e) {
				next = append(next, e)
			}
		}
		active = next
	}
}
