package frontend

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"loongserve/internal/token"
)

func newBatcher(t *testing.T, instances int) *Batcher {
	t.Helper()
	lm := NewLM(token.Default(), LMOptions{Instances: instances, MaxContext: 256})
	b := NewBatcher(lm)
	t.Cleanup(b.Close)
	return b
}

func generate(t *testing.T, g Generator, prompt string, maxTokens int) ([]int, string) {
	t.Helper()
	tok := token.Default()
	var ids []int
	finish, err := g.Generate(context.Background(), tok.Encode(prompt), maxTokens, 0, 1, func(id int) error {
		ids = append(ids, id)
		return nil
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ids, finish
}

func TestBatcherMatchesSerialLM(t *testing.T) {
	// A single request through the batcher must reproduce the serial
	// LM's greedy output token-for-token (same weights, same math).
	serial := NewLM(token.Default(), LMOptions{Instances: 2, MaxContext: 256})
	want, wantFinish := collect(t, serial, "the decoding phase", 10, 0, 1)

	b := newBatcher(t, 2)
	got, gotFinish := generate(t, b, "the decoding phase", 10)
	if gotFinish != wantFinish {
		t.Errorf("finish %q != serial %q", gotFinish, wantFinish)
	}
	if len(got) != len(want) {
		t.Fatalf("%d tokens != serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: %d != serial %d", i, got[i], want[i])
		}
	}
}

func TestBatcherConcurrentRequestsMatchSerial(t *testing.T) {
	const n = 6
	prompts := make([]string, n)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("request %d about the prefill phase", i)
	}
	// Serial references, one at a time.
	serial := NewLM(token.Default(), LMOptions{Instances: 2, MaxContext: 256})
	want := make([][]int, n)
	for i, p := range prompts {
		want[i], _ = collect(t, serial, p, 8, 0, 1)
	}

	b := newBatcher(t, 2)
	got := make([][]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range prompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tok := token.Default()
			_, errs[i] = b.Generate(context.Background(), tok.Encode(prompts[i]), 8, 0, 1, func(id int) error {
				got[i] = append(got[i], id)
				return nil
			})
		}(i)
	}
	wg.Wait()
	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens, serial %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d: %d != serial %d — batching changed results",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBatcherActuallyBatches(t *testing.T) {
	b := newBatcher(t, 2)
	const n = 5
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			tok := token.Default()
			_, err := b.Generate(context.Background(), tok.Encode(fmt.Sprintf("p%d", i)), 12, 0, 1, func(int) error { return nil })
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	iters, maxBatch := b.Stats()
	if maxBatch < 2 {
		t.Errorf("max decode batch = %d; continuous batching never batched", maxBatch)
	}
	// Shared iterations: total iterations must be well under n
	// generations x 12 tokens each run separately.
	if iters >= n*12 {
		t.Errorf("ran %d iterations for %d requests x 12 tokens: no sharing", iters, n)
	}
}

func TestBatcherKVCleanup(t *testing.T) {
	b := newBatcher(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			generate(t, b, fmt.Sprintf("cleanup %d", i), 5)
		}(i)
	}
	wg.Wait()
	for i, in := range b.lm.group.Instances {
		if len(in.KV) != 0 {
			t.Errorf("instance %d retains %d KV caches", i, len(in.KV))
		}
	}
}

func TestBatcherValidation(t *testing.T) {
	b := newBatcher(t, 2)
	if _, err := b.Generate(context.Background(), nil, -1, 0, 1, func(int) error { return nil }); err == nil {
		t.Error("negative maxTokens accepted")
	}
	if _, err := b.Generate(context.Background(), []int{-2}, 1, 0, 1, func(int) error { return nil }); err == nil {
		t.Error("bad prompt token accepted")
	}
	long := make([]int, 300)
	_, err := b.Generate(context.Background(), long, 10, 0, 1, func(int) error { return nil })
	var overflow *ErrContextOverflow
	if !errors.As(err, &overflow) {
		t.Errorf("err = %v, want ErrContextOverflow", err)
	}
}

func TestBatcherEmitErrorAbortsOnlyThatRequest(t *testing.T) {
	b := newBatcher(t, 2)
	boom := fmt.Errorf("client gone")
	var wg sync.WaitGroup
	var badErr, goodErr error
	var goodTokens int
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, badErr = b.Generate(context.Background(), token.Default().Encode("doomed"), 10, 0, 1,
			func(int) error { return boom })
	}()
	go func() {
		defer wg.Done()
		_, goodErr = b.Generate(context.Background(), token.Default().Encode("fine"), 10, 0, 1,
			func(int) error { goodTokens++; return nil })
	}()
	wg.Wait()
	if !errors.Is(badErr, boom) {
		t.Errorf("doomed request err = %v", badErr)
	}
	if goodErr != nil {
		t.Errorf("healthy request err = %v", goodErr)
	}
	if goodTokens == 0 {
		t.Error("healthy request produced nothing")
	}
}

func TestBatcherContextCancellation(t *testing.T) {
	b := newBatcher(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	_, err := b.Generate(ctx, token.Default().Encode("cancel me"), 50, 0, 1, func(int) error {
		emitted++
		if emitted == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted > 3 {
		t.Errorf("ran %d tokens past cancellation", emitted)
	}
}

func TestBatcherClosedRejectsNewWork(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{Instances: 2, MaxContext: 256})
	b := NewBatcher(lm)
	b.Close()
	// Close twice is fine.
	b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := b.Generate(context.Background(), token.Default().Encode("x"), 4, 0, 1, func(int) error { return nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("closed batcher accepted work")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Generate blocked forever on a closed batcher")
	}
}

func TestBatcherBehindHTTPServer(t *testing.T) {
	tok := token.Default()
	lm := NewLM(tok, LMOptions{Instances: 2, MaxContext: 128})
	b := NewBatcher(lm)
	t.Cleanup(b.Close)
	s := NewServer(b, tok, "loongserve-tiny-lm")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	status := make([]int, 6)
	for i := range status {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/completions", CompletionRequest{
				Prompt:    fmt.Sprintf("concurrent %d", i),
				MaxTokens: intp(5),
			})
			status[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, st := range status {
		if st != http.StatusOK {
			t.Errorf("request %d: status %d", i, st)
		}
	}
	if _, maxBatch := b.Stats(); maxBatch < 2 {
		t.Logf("max batch %d (timing-dependent; not asserted)", maxBatch)
	}
}
