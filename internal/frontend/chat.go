package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ChatMessage is one turn of a chat conversation.
type ChatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatRequest is the accepted subset of the OpenAI chat completions API.
type ChatRequest struct {
	Model       string        `json:"model"`
	Messages    []ChatMessage `json:"messages"`
	MaxTokens   *int          `json:"max_tokens,omitempty"`
	Temperature float64       `json:"temperature,omitempty"`
	Seed        int64         `json:"seed,omitempty"`
	Stream      bool          `json:"stream,omitempty"`
}

// ChatDelta is the incremental message fragment carried by stream chunks.
type ChatDelta struct {
	Role    string `json:"role,omitempty"`
	Content string `json:"content,omitempty"`
}

// ChatStreamChoice is one alternative inside a stream chunk.
type ChatStreamChoice struct {
	Index        int       `json:"index"`
	Delta        ChatDelta `json:"delta"`
	FinishReason string    `json:"finish_reason,omitempty"`
}

// ChatStreamChunk is one SSE event of a streamed chat completion.
type ChatStreamChunk struct {
	ID      string             `json:"id"`
	Object  string             `json:"object"`
	Created int64              `json:"created"`
	Model   string             `json:"model"`
	Choices []ChatStreamChoice `json:"choices"`
}

// ChatChoice is one chat completion alternative.
type ChatChoice struct {
	Index        int         `json:"index"`
	Message      ChatMessage `json:"message"`
	FinishReason string      `json:"finish_reason"`
}

// ChatResponse is the chat completion reply.
type ChatResponse struct {
	ID      string       `json:"id"`
	Object  string       `json:"object"`
	Created int64        `json:"created"`
	Model   string       `json:"model"`
	Choices []ChatChoice `json:"choices"`
	Usage   *Usage       `json:"usage,omitempty"`
}

// validRoles for chat turns.
var validRoles = map[string]bool{"system": true, "user": true, "assistant": true}

// flattenChat renders a conversation into the plain-text prompt format the
// base model consumes: one "role: content" line per turn plus a trailing
// "assistant:" cue.
func flattenChat(msgs []ChatMessage) string {
	var sb strings.Builder
	for _, m := range msgs {
		sb.WriteString(m.Role)
		sb.WriteString(": ")
		sb.WriteString(m.Content)
		sb.WriteString("\n")
	}
	sb.WriteString("assistant:")
	return sb.String()
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "method_not_allowed",
			"%s not allowed on /v1/chat/completions", r.Method)
		return
	}
	var req ChatRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_json", "parsing request: %v", err)
		return
	}
	if req.Model != "" && req.Model != s.model {
		writeError(w, http.StatusNotFound, "invalid_request_error", "model_not_found",
			"model %q not found (serving %q)", req.Model, s.model)
		return
	}
	if len(req.Messages) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_messages",
			"messages must not be empty")
		return
	}
	for i, m := range req.Messages {
		if !validRoles[m.Role] {
			writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_role",
				"messages[%d].role %q is not one of system/user/assistant", i, m.Role)
			return
		}
	}
	maxTokens := s.DefaultMaxTokens
	if req.MaxTokens != nil {
		maxTokens = *req.MaxTokens
	}
	if maxTokens < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_max_tokens",
			"max_tokens must be non-negative, got %d", maxTokens)
		return
	}
	if req.Temperature < 0 || req.Temperature > 2 {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "invalid_temperature",
			"temperature must be in [0, 2], got %g", req.Temperature)
		return
	}

	prompt := s.tok.Encode(flattenChat(req.Messages))
	if len(prompt)+maxTokens > s.gen.MaxContext() {
		writeError(w, http.StatusBadRequest, "invalid_request_error", "context_length_exceeded",
			"conversation of %d tokens + max_tokens %d exceeds the %d-token context window",
			len(prompt), maxTokens, s.gen.MaxContext())
		return
	}

	id := fmt.Sprintf("chatcmpl-%d", s.nextID.Add(1))
	created := s.Now().Unix()
	seed := req.Seed
	if seed == 0 {
		seed = s.nextID.Load()
	}

	if req.Stream {
		s.streamChat(w, r.Context(), id, created, prompt, maxTokens, req.Temperature, seed)
		return
	}

	var sb strings.Builder
	completion := 0
	finish, err := s.gen.Generate(r.Context(), prompt, maxTokens, req.Temperature, seed, func(tid int) error {
		text, err := s.tok.Decode([]int{tid})
		if err != nil {
			return err
		}
		sb.WriteString(text)
		completion++
		return nil
	})
	if err != nil {
		var overflow *ErrContextOverflow
		if errors.As(err, &overflow) {
			writeError(w, http.StatusBadRequest, "invalid_request_error", "context_length_exceeded", "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "server_error", "generation_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ChatResponse{
		ID:      id,
		Object:  "chat.completion",
		Created: created,
		Model:   s.model,
		Choices: []ChatChoice{{
			Index:        0,
			Message:      ChatMessage{Role: "assistant", Content: sb.String()},
			FinishReason: finish,
		}},
		Usage: &Usage{
			PromptTokens:     len(prompt),
			CompletionTokens: completion,
			TotalTokens:      len(prompt) + completion,
		},
	})
}

// streamChat writes chat.completion.chunk SSE events: a role-opening
// delta, one content delta per token, a finish chunk, then "[DONE]".
func (s *Server) streamChat(w http.ResponseWriter, ctx context.Context, id string, created int64, prompt []int, maxTokens int, temperature float64, seed int64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "server_error", "no_flush",
			"response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeChunk := func(c ChatStreamChunk) error {
		b, err := json.Marshal(c)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}
	chunk := func(delta ChatDelta, finish string) ChatStreamChunk {
		return ChatStreamChunk{
			ID:      id,
			Object:  "chat.completion.chunk",
			Created: created,
			Model:   s.model,
			Choices: []ChatStreamChoice{{Index: 0, Delta: delta, FinishReason: finish}},
		}
	}

	// Opening chunk announces the assistant role (OpenAI convention).
	if err := writeChunk(chunk(ChatDelta{Role: "assistant"}, "")); err != nil {
		return
	}
	finish, err := s.gen.Generate(ctx, prompt, maxTokens, temperature, seed, func(tid int) error {
		text, err := s.tok.Decode([]int{tid})
		if err != nil {
			return err
		}
		return writeChunk(chunk(ChatDelta{Content: text}, ""))
	})
	if err != nil {
		_ = writeChunk(chunk(ChatDelta{}, "error"))
	} else {
		_ = writeChunk(chunk(ChatDelta{}, finish))
	}
	_, _ = io.WriteString(w, "data: [DONE]\n\n")
	flusher.Flush()
}
