package frontend

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"loongserve/internal/token"
)

func collect(t *testing.T, lm *LM, prompt string, maxTokens int, temperature float64, seed int64) ([]int, string) {
	t.Helper()
	var ids []int
	finish, err := lm.Generate(context.Background(), lm.Tok.Encode(prompt), maxTokens, temperature, seed,
		func(id int) error {
			ids = append(ids, id)
			return nil
		})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ids, finish
}

func TestLMDeterministicGreedy(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{Instances: 2})
	a, fa := collect(t, lm, "the prefill phase", 8, 0, 1)
	b, fb := collect(t, lm, "the prefill phase", 8, 0, 99) // seed ignored at T=0
	if fa != fb {
		t.Errorf("finish reasons differ: %q vs %q", fa, fb)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy decoding diverged at token %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLMDoPInvariance(t *testing.T) {
	// The same prompt must produce the same greedy completion whatever
	// the ESP group size — elastic parallelism never changes results
	// (the paper's "same accuracy as the original implementations", §6).
	var ref []int
	for _, dop := range []int{1, 2, 4} {
		lm := NewLM(token.Default(), LMOptions{Instances: dop})
		ids, _ := collect(t, lm, "elastic sequence parallelism", 10, 0, 1)
		if ref == nil {
			ref = ids
			continue
		}
		if len(ids) != len(ref) {
			t.Fatalf("DoP %d produced %d tokens, DoP 1 produced %d", dop, len(ids), len(ref))
		}
		for i := range ids {
			if ids[i] != ref[i] {
				t.Fatalf("DoP %d diverged from DoP 1 at token %d", dop, i)
			}
		}
	}
}

func TestLMRespectsMaxTokens(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	for _, n := range []int{0, 1, 5} {
		ids, finish := collect(t, lm, "hello", n, 0, 1)
		if len(ids) > n {
			t.Errorf("maxTokens %d produced %d tokens", n, len(ids))
		}
		if n == 0 && finish != "length" {
			t.Errorf("maxTokens 0 finish = %q, want length", finish)
		}
	}
}

func TestLMEmptyPrompt(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	ids, finish := collect(t, lm, "", 4, 0, 1)
	if len(ids) == 0 {
		t.Error("empty prompt produced no tokens")
	}
	if finish != "length" && finish != "stop" {
		t.Errorf("finish = %q", finish)
	}
}

func TestLMContextOverflow(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{MaxContext: 32})
	long := make([]int, 30)
	_, err := lm.Generate(context.Background(), long, 10, 0, 1, func(int) error { return nil })
	var overflow *ErrContextOverflow
	if !errors.As(err, &overflow) {
		t.Fatalf("err = %v, want ErrContextOverflow", err)
	}
	if overflow.Prompt != 30 || overflow.MaxTokens != 10 || overflow.Window != 32 {
		t.Errorf("overflow detail = %+v", overflow)
	}
	// Exactly at the window is fine.
	if _, err := lm.Generate(context.Background(), long[:22], 10, 0, 1, func(int) error { return nil }); err != nil {
		t.Errorf("prompt+max == window rejected: %v", err)
	}
}

func TestLMInvalidTokens(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	if _, err := lm.Generate(context.Background(), []int{-1}, 1, 0, 1, func(int) error { return nil }); err == nil {
		t.Error("negative prompt token accepted")
	}
	if _, err := lm.Generate(context.Background(), []int{lm.Tok.TotalSize()}, 1, 0, 1, func(int) error { return nil }); err == nil {
		t.Error("out-of-vocab prompt token accepted")
	}
	if _, err := lm.Generate(context.Background(), nil, -1, 0, 1, func(int) error { return nil }); err == nil {
		t.Error("negative maxTokens accepted")
	}
}

func TestLMEmitErrorAborts(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	boom := fmt.Errorf("client hung up")
	calls := 0
	_, err := lm.Generate(context.Background(), lm.Tok.Encode("hi"), 10, 0, 1, func(int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if calls != 1 {
		t.Errorf("generation continued after emit error: %d calls", calls)
	}
}

func TestLMContextCancellation(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	_, err := lm.Generate(ctx, lm.Tok.Encode("hello world"), 50, 0, 1, func(int) error {
		emitted++
		if emitted == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted > 3 {
		t.Errorf("generation ran %d tokens past cancellation", emitted)
	}
}

func TestLMTemperatureSamplingSeeded(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{})
	a, _ := collect(t, lm, "sampling test", 8, 0.8, 42)
	b, _ := collect(t, lm, "sampling test", 8, 0.8, 42)
	if len(a) != len(b) {
		t.Fatalf("same seed produced different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Different seeds should (overwhelmingly) differ somewhere across a
	// few draws; retry a couple of seeds to avoid flakiness.
	differs := false
	for seed := int64(43); seed < 46 && !differs; seed++ {
		c, _ := collect(t, lm, "sampling test", 8, 0.8, seed)
		for i := range a {
			if i < len(c) && c[i] != a[i] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("three different seeds reproduced the seed-42 sample exactly")
	}
}

func TestLMKVCleanupBetweenRequests(t *testing.T) {
	lm := NewLM(token.Default(), LMOptions{Instances: 2})
	for i := 0; i < 5; i++ {
		collect(t, lm, "cleanup check", 4, 0, 1)
	}
	for i, in := range lm.group.Instances {
		if n := len(in.KV); n != 0 {
			t.Errorf("instance %d retains %d KV caches after all requests finished", i, n)
		}
	}
}

func TestSampleGreedyPicksArgmax(t *testing.T) {
	logits := []float32{0.1, 2.5, -1, 2.4}
	if got := sample(logits, 0, nil); got != 1 {
		t.Errorf("sample(T=0) = %d, want 1", got)
	}
}
