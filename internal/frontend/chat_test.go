package frontend

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"loongserve/internal/token"
)

func decodeChat(t *testing.T, resp *http.Response) ChatResponse {
	t.Helper()
	var cr ChatResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decoding chat completion: %v", err)
	}
	return cr
}

func TestChatCompletionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/chat/completions", ChatRequest{
		Messages: []ChatMessage{
			{Role: "system", Content: "you are a serving system"},
			{Role: "user", Content: "hello"},
		},
		MaxTokens: intp(6),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	cr := decodeChat(t, resp)
	if cr.Object != "chat.completion" {
		t.Errorf("object = %q", cr.Object)
	}
	if !strings.HasPrefix(cr.ID, "chatcmpl-") {
		t.Errorf("id = %q", cr.ID)
	}
	if len(cr.Choices) != 1 {
		t.Fatalf("choices = %d", len(cr.Choices))
	}
	c := cr.Choices[0]
	if c.Message.Role != "assistant" {
		t.Errorf("role = %q", c.Message.Role)
	}
	if c.FinishReason != "length" && c.FinishReason != "stop" {
		t.Errorf("finish_reason = %q", c.FinishReason)
	}
	if cr.Usage == nil || cr.Usage.CompletionTokens == 0 {
		t.Errorf("usage = %+v", cr.Usage)
	}
	// The prompt accounting must cover the flattened conversation.
	want := len(token.Default().Encode(flattenChat([]ChatMessage{
		{Role: "system", Content: "you are a serving system"},
		{Role: "user", Content: "hello"},
	})))
	if cr.Usage.PromptTokens != want {
		t.Errorf("prompt_tokens = %d, want %d", cr.Usage.PromptTokens, want)
	}
}

func TestChatValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"no messages", `{"messages":[]}`, http.StatusBadRequest, "invalid_messages"},
		{"bad role", `{"messages":[{"role":"robot","content":"x"}]}`, http.StatusBadRequest, "invalid_role"},
		{"bad json", `{"messages": [`, http.StatusBadRequest, "invalid_json"},
		{"unknown field", `{"messages":[{"role":"user","content":"x"}],"tools":[]}`, http.StatusBadRequest, "invalid_json"},
		{"negative max_tokens", `{"messages":[{"role":"user","content":"x"}],"max_tokens":-2}`, http.StatusBadRequest, "invalid_max_tokens"},
		{"wrong model", `{"messages":[{"role":"user","content":"x"}],"model":"nope"}`, http.StatusNotFound, "model_not_found"},
		{"bad temperature", `{"messages":[{"role":"user","content":"x"}],"temperature":-1}`, http.StatusBadRequest, "invalid_temperature"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/chat/completions", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if e := decodeError(t, resp); e.Code != tc.wantErr {
				t.Errorf("error code = %q, want %q", e.Code, tc.wantErr)
			}
		})
	}
}

func TestChatContextLengthExceeded(t *testing.T) {
	_, ts := newTestServer(t) // window 128
	resp := postJSON(t, ts.URL+"/v1/chat/completions", ChatRequest{
		Messages:  []ChatMessage{{Role: "user", Content: strings.Repeat("zq ", 300)}},
		MaxTokens: intp(4),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "context_length_exceeded" {
		t.Errorf("error code = %q", e.Code)
	}
}

func TestChatDeterministicAtZeroTemperature(t *testing.T) {
	_, ts := newTestServer(t)
	get := func() string {
		resp := postJSON(t, ts.URL+"/v1/chat/completions", ChatRequest{
			Messages:  []ChatMessage{{Role: "user", Content: "what is elastic sequence parallelism"}},
			MaxTokens: intp(6),
		})
		return decodeChat(t, resp).Choices[0].Message.Content
	}
	if a, b := get(), get(); a != b {
		t.Errorf("greedy chat completions differ: %q vs %q", a, b)
	}
}

func TestFlattenChat(t *testing.T) {
	got := flattenChat([]ChatMessage{
		{Role: "system", Content: "be brief"},
		{Role: "user", Content: "hi"},
		{Role: "assistant", Content: "hello"},
		{Role: "user", Content: "bye"},
	})
	want := "system: be brief\nuser: hi\nassistant: hello\nuser: bye\nassistant:"
	if got != want {
		t.Errorf("flattenChat = %q, want %q", got, want)
	}
}

func TestChatMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/chat/completions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/chat/completions = %d, want 405", resp.StatusCode)
	}
}

// readChatSSE parses chat.completion.chunk events until [DONE].
func readChatSSE(t *testing.T, body io.Reader) []ChatStreamChunk {
	t.Helper()
	var chunks []ChatStreamChunk
	sc := bufio.NewScanner(body)
	done := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		if payload == "[DONE]" {
			done = true
			break
		}
		var c ChatStreamChunk
		if err := json.Unmarshal([]byte(payload), &c); err != nil {
			t.Fatalf("chunk %q: %v", payload, err)
		}
		chunks = append(chunks, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning SSE: %v", err)
	}
	if !done {
		t.Fatal("stream ended without [DONE]")
	}
	return chunks
}

func TestChatStreaming(t *testing.T) {
	_, ts := newTestServer(t)
	msgs := []ChatMessage{{Role: "user", Content: "stream a chat"}}

	// Buffered reference.
	ref := decodeChat(t, postJSON(t, ts.URL+"/v1/chat/completions", ChatRequest{
		Messages:  msgs,
		MaxTokens: intp(6),
	}))

	resp := postJSON(t, ts.URL+"/v1/chat/completions", ChatRequest{
		Messages:  msgs,
		MaxTokens: intp(6),
		Stream:    true,
	})
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	chunks := readChatSSE(t, resp.Body)
	if len(chunks) < 3 {
		t.Fatalf("got %d chunks, want >= 3 (role + tokens + finish)", len(chunks))
	}
	if chunks[0].Choices[0].Delta.Role != "assistant" {
		t.Errorf("opening chunk role = %q", chunks[0].Choices[0].Delta.Role)
	}
	if chunks[0].Object != "chat.completion.chunk" {
		t.Errorf("object = %q", chunks[0].Object)
	}
	var sb strings.Builder
	for _, c := range chunks[1 : len(chunks)-1] {
		sb.WriteString(c.Choices[0].Delta.Content)
	}
	last := chunks[len(chunks)-1]
	if last.Choices[0].FinishReason == "" {
		t.Error("final chunk missing finish_reason")
	}
	if sb.String() != ref.Choices[0].Message.Content {
		t.Errorf("streamed %q != buffered %q", sb.String(), ref.Choices[0].Message.Content)
	}
	if last.Choices[0].FinishReason != ref.Choices[0].FinishReason {
		t.Errorf("streamed finish %q != buffered %q",
			last.Choices[0].FinishReason, ref.Choices[0].FinishReason)
	}
}
