// Package simevent provides a deterministic discrete-event simulation
// kernel. Time is measured in integer nanoseconds; events scheduled for the
// same instant fire in the order they were scheduled, which makes every
// simulation bit-reproducible for a fixed input.
//
// The kernel is intentionally minimal: a clock, a priority queue of events,
// and a run loop. Higher layers (cluster, serving engines) own all state and
// register callbacks.
package simevent

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulated timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a simulated time span in nanoseconds.
type Duration = time.Duration

// Common duration constructors, re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Seconds converts a simulated timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the timestamp advanced by d, saturating on overflow.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return Time(1<<63 - 1)
	}
	return s
}

func (t Time) String() string {
	return time.Duration(t).String()
}

// FromSeconds converts floating-point seconds into a Duration.
func FromSeconds(s float64) Duration {
	return time.Duration(s * 1e9)
}

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 when popped or cancelled
	cancel bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the time the event is (was) scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use; all event callbacks run on the goroutine that calls Run.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	stopped bool
	// MaxEvents bounds the run loop as a safety net against runaway
	// simulations; zero means no bound.
	MaxEvents uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// now) panics: it indicates a logic error in the caller, and silently
// clamping would mask causality bugs.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simevent: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("simevent: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time. Negative d panics.
func (s *Sim) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simevent: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		e.cancel = true
		return
	}
	e.cancel = true
	heap.Remove(&s.queue, e.index)
	e.index = -1
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It returns false when the
// queue is empty.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue empties, Stop is called, or MaxEvents
// is exceeded (in which case it panics, because exceeding the budget means
// the simulation diverged).
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped {
		if s.MaxEvents > 0 && s.fired >= s.MaxEvents {
			panic(fmt.Sprintf("simevent: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now))
		}
		if !s.Step() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and advancing the clock to deadline.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		// Peek.
		next := s.queue[0]
		if next.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
