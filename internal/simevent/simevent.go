// Package simevent provides a deterministic discrete-event simulation
// kernel. Time is measured in integer nanoseconds; events scheduled for the
// same instant fire in the order they were scheduled, which makes every
// simulation bit-reproducible for a fixed input.
//
// The kernel is intentionally minimal: a clock, a priority queue of events,
// and a run loop. Higher layers (cluster, serving engines) own all state and
// register callbacks.
//
// The kernel is built for hot loops. The queue is a hand-rolled 4-ary heap
// (no container/heap interface dispatch), fired events return to a free
// list, and callers that schedule in a tight cycle can hold a caller-owned
// reusable event (NewEvent + ScheduleAfter) so a steady-state simulation
// runs without allocating. The queue invariant is simple: every queued
// event is live. Cancel removes from the heap immediately — there are no
// tombstones, and Step never skips dead entries.
package simevent

import (
	"fmt"
	"sort"
	"time"
)

// Time is a simulated timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a simulated time span in nanoseconds.
type Duration = time.Duration

// Common duration constructors, re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Seconds converts a simulated timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the timestamp advanced by d, saturating on overflow.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return Time(1<<63 - 1)
	}
	return s
}

func (t Time) String() string {
	return time.Duration(t).String()
}

// FromSeconds converts floating-point seconds into a Duration.
func FromSeconds(s float64) Duration {
	return time.Duration(s * 1e9)
}

// Event is a scheduled callback.
//
// Handles returned by At/After belong to the kernel: they may be used with
// Cancel while the event is pending, but once the event fires the kernel
// recycles the object through its free list, so a fired handle must be
// dropped (cancelling it is a no-op only until the object is reused).
// Cancelled events are never recycled, so a cancelled handle stays valid
// indefinitely. Caller-owned events from NewEvent are never recycled.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap position, -1 when not queued
	cancel bool
	owned  bool // caller-owned reusable event: never enters the free list
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// At returns the time the event is (was) scheduled for.
func (e *Event) At() Time { return e.at }

// stagedEvent is one entry of the bulk-loaded timeline: an arrival-style
// event that never needs cancellation and therefore never touches the heap.
type stagedEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// Sim is a discrete-event simulator instance. It is not safe for concurrent
// use; all event callbacks run on the goroutine that calls Run.
type Sim struct {
	now     Time
	seq     uint64
	queue   []*Event // 4-ary min-heap on (at, seq)
	free    []*Event // recycled events
	fired   uint64
	stopped bool

	// The staged timeline: drivers preload whole workload traces here
	// (Stage), keeping thousands of future arrivals out of the heap so
	// dynamic-event push/pop costs O(log active) instead of O(log trace).
	// Entries fire in exactly the order they would have from the heap:
	// seqs come from the same counter and the merge in Step compares the
	// same (at, seq) key.
	stage      []stagedEvent
	stageIdx   int
	stageDirty bool

	// MaxEvents bounds the run loop as a safety net against runaway
	// simulations; zero means no bound.
	MaxEvents uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events queued (heap and staged timeline).
// Cancelled events leave the queue immediately, so every pending event will
// fire.
func (s *Sim) Pending() int { return len(s.queue) + len(s.stage) - s.stageIdx }

// less orders the heap: earliest time first, scheduling order breaking
// ties. (at, seq) pairs are unique, so the order is total and the firing
// sequence is independent of heap layout.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from position i toward the root.
func (s *Sim) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = e
	e.index = i
}

// siftDown restores the heap property from position i toward the leaves.
func (s *Sim) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(q[c], q[min]) {
				min = c
			}
		}
		if !less(q[min], e) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = e
	e.index = i
}

// push enqueues a fully initialized event.
func (s *Sim) push(e *Event) {
	e.index = len(s.queue)
	s.queue = append(s.queue, e)
	s.siftUp(e.index)
}

// pop removes and returns the earliest event.
func (s *Sim) pop() *Event {
	q := s.queue
	e := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].index = 0
	q[last] = nil
	s.queue = q[:last]
	if last > 1 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i.
func (s *Sim) remove(i int) {
	q := s.queue
	last := len(q) - 1
	e := q[i]
	if i != last {
		q[i] = q[last]
		q[i].index = i
	}
	q[last] = nil
	s.queue = q[:last]
	if i < last {
		s.siftDown(i)
		s.siftUp(i)
	}
	e.index = -1
}

// alloc takes an event from the free list, or makes one.
func (s *Sim) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Event{index: -1}
}

// recycle returns a fired kernel-owned event to the free list.
func (s *Sim) recycle(e *Event) {
	e.fn = nil
	e.cancel = false
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// now) panics: it indicates a logic error in the caller, and silently
// clamping would mask causality bugs.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simevent: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("simevent: nil event function")
	}
	e := s.alloc()
	e.at = t
	e.seq = s.seq
	e.fn = fn
	e.cancel = false
	e.owned = false
	s.seq++
	s.push(e)
	return e
}

// After schedules fn to run d after the current time. Negative d panics.
func (s *Sim) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simevent: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Stage schedules fn to run at absolute time t on the staged timeline:
// semantically identical to At — same seq counter, same (at, seq) firing
// order against every other event — but without a heap entry or a Cancel
// handle. Drivers use it to preload whole traces: a million arrivals cost
// one sorted array instead of a million-deep heap.
func (s *Sim) Stage(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simevent: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("simevent: nil event function")
	}
	if n := len(s.stage); n > s.stageIdx && t < s.stage[n-1].at {
		s.stageDirty = true // out-of-order staging: sort before consuming
	}
	s.stage = append(s.stage, stagedEvent{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// stageHead returns the next staged entry, sorting the unconsumed suffix
// first if staging happened out of time order. (at, seq) keys are unique,
// so the sorted order is the exact global firing order.
func (s *Sim) stageHead() *stagedEvent {
	if s.stageIdx >= len(s.stage) {
		return nil
	}
	if s.stageDirty {
		rest := s.stage[s.stageIdx:]
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].at != rest[j].at {
				return rest[i].at < rest[j].at
			}
			return rest[i].seq < rest[j].seq
		})
		s.stageDirty = false
	}
	return &s.stage[s.stageIdx]
}

// NewEvent returns an unscheduled caller-owned event bound to fn. Owned
// events are armed with ScheduleAt/ScheduleAfter, may be re-armed after
// every firing (typically from fn itself), and never enter the kernel's
// free list — a scheduler that drives its iteration loop through one owned
// event per batch runs allocation-free in steady state.
func (s *Sim) NewEvent(fn func()) *Event {
	if fn == nil {
		panic("simevent: nil event function")
	}
	return &Event{fn: fn, index: -1, owned: true}
}

// ScheduleAt arms an event (from NewEvent) to fire at absolute time t. The
// event must not already be queued; re-arming happens after it fires or is
// cancelled.
func (s *Sim) ScheduleAt(e *Event, t Time) {
	if e == nil || e.fn == nil {
		panic("simevent: ScheduleAt on nil or unbound event")
	}
	if e.index >= 0 {
		panic(fmt.Sprintf("simevent: event already scheduled for %v", e.at))
	}
	if t < s.now {
		panic(fmt.Sprintf("simevent: schedule at %v before now %v", t, s.now))
	}
	e.at = t
	e.seq = s.seq
	e.cancel = false
	s.seq++
	s.push(e)
}

// ScheduleAfter arms an event to fire d after the current time.
func (s *Sim) ScheduleAfter(e *Event, d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simevent: negative delay %v", d))
	}
	s.ScheduleAt(e, s.now.Add(d))
}

// Cancel prevents a pending event from firing, removing it from the queue
// immediately. Cancelling nil, an already-cancelled event, or an event
// that already fired is a no-op — but see Event: a kernel-owned handle
// (from At/After) is only trustworthy for Cancel until its event fires.
func (s *Sim) Cancel(e *Event) {
	if e == nil {
		return
	}
	if e.cancel || e.index < 0 {
		e.cancel = true
		return
	}
	e.cancel = true
	s.remove(e.index)
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// Step executes the single earliest pending event — merging the heap and
// the staged timeline on their shared (at, seq) key. It returns false when
// both are empty.
func (s *Sim) Step() bool {
	st := s.stageHead()
	if st != nil && (len(s.queue) == 0 || st.at < s.queue[0].at ||
		(st.at == s.queue[0].at && st.seq < s.queue[0].seq)) {
		s.stageIdx++
		s.now = st.at
		s.fired++
		fn := st.fn
		st.fn = nil // release the closure as soon as it has fired
		if s.stageIdx == len(s.stage) {
			s.stage = s.stage[:0]
			s.stageIdx = 0
		}
		fn()
		return true
	}
	if len(s.queue) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.fired++
	fn := e.fn
	if !e.owned {
		// Recycle before firing: a callback chain that schedules its
		// successor reuses this very object, so the whole chain costs one
		// allocation total.
		s.recycle(e)
	}
	fn()
	return true
}

// Run executes events until the queue empties, Stop is called, or MaxEvents
// is exceeded (in which case it panics, because exceeding the budget means
// the simulation diverged).
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped {
		if s.MaxEvents > 0 && s.fired >= s.MaxEvents {
			panic(fmt.Sprintf("simevent: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now))
		}
		if !s.Step() {
			return
		}
	}
}

// Head reports the timestamp of the earliest pending event across the heap
// and the staged timeline; ok=false when nothing is pending. The sharded
// fleet runner uses gateway Head as the conservative window bound its
// replica shards may advance toward.
func (s *Sim) Head() (Time, bool) {
	st := s.stageHead()
	if len(s.queue) == 0 {
		if st == nil {
			return 0, false
		}
		return st.at, true
	}
	if st != nil && st.at < s.queue[0].at {
		return st.at, true
	}
	return s.queue[0].at, true
}

// RunBefore executes events with timestamps strictly less than bound,
// leaving later events queued. Unlike RunUntil it does not move the clock
// to the bound: a shard that drained its window calls AdvanceTo once the
// coordinator knows no earlier work remains anywhere in the fleet.
func (s *Sim) RunBefore(bound Time) {
	for {
		if s.MaxEvents > 0 && s.fired >= s.MaxEvents {
			panic(fmt.Sprintf("simevent: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now))
		}
		t, ok := s.Head()
		if !ok || t >= bound {
			return
		}
		s.Step()
	}
}

// AdvanceTo moves the clock forward to t without firing anything — the
// barrier primitive of conservative time-window synchronization: after a
// window closes, every shard adopts the bound as its local now so work
// the coordinator injects at the bound lands in its present, not its past.
// Skipping over a pending event panics (it would reorder causality);
// t <= now is a no-op.
func (s *Sim) AdvanceTo(t Time) {
	if t <= s.now {
		return
	}
	if h, ok := s.Head(); ok && h < t {
		panic(fmt.Sprintf("simevent: AdvanceTo(%v) would skip an event at %v", t, h))
	}
	s.now = t
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued and advancing the clock to deadline.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		hasNext := false
		var next Time
		if st := s.stageHead(); st != nil {
			next, hasNext = st.at, true
		}
		if len(s.queue) > 0 && (!hasNext || s.queue[0].at < next) {
			next, hasNext = s.queue[0].at, true
		}
		if !hasNext || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
