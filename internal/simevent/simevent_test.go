package simevent

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewSimStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(300, func() { got = append(got, 3) })
	s.At(100, func() { got = append(got, 1) })
	s.At(200, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 300 {
		t.Fatalf("final Now() = %v, want 300", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(42, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestAfterAdvancesRelative(t *testing.T) {
	s := New()
	var at Time
	s.After(5*Millisecond, func() {
		at = s.Now()
		s.After(2*Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != Time(7*Millisecond) {
		t.Fatalf("nested After fired at %v, want 7ms", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	s.At(1, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	fired := false
	var e2 *Event
	s.At(1, func() { s.Cancel(e2) })
	e2 = s.At(2, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run()
	s.Cancel(e) // must not panic
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
}

func TestRunResumesAfterStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 4; i++ {
		s.At(Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	s.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4 after resume", count)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(12)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("got %v, want [5 10]", got)
	}
	if s.Now() != 12 {
		t.Fatalf("Now() = %v, want 12", s.Now())
	}
	s.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events did not fire: %v", got)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := New()
	s.RunUntil(99)
	if s.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", s.Now())
	}
}

func TestMaxEventsPanics(t *testing.T) {
	s := New()
	s.MaxEvents = 10
	var reschedule func()
	reschedule = func() { s.After(1, reschedule) }
	s.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not panic")
		}
	}()
	s.Run()
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(1, recurse)
		}
	}
	s.After(1, recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestFiredCounts(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestTimeSecondsAndFromSeconds(t *testing.T) {
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("FromSeconds(0.25) = %v, want 250ms", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	huge := Time(1<<63 - 10)
	got := huge.Add(Duration(100))
	if got != Time(1<<63-1) {
		t.Fatalf("Add overflow = %v, want saturation", got)
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	s := New()
	s.Cancel(nil) // must not panic
	s.At(1, func() {})
	s.Cancel(nil)
	s.Run()
	if s.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", s.Fired())
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s := New()
	e := s.At(10, func() {})
	s.At(20, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Cancel(e)
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d after Cancel, want 1 (no tombstones)", s.Pending())
	}
	s.Cancel(e) // double cancel: no-op
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d after double Cancel, want 1", s.Pending())
	}
}

func TestOwnedEventRearms(t *testing.T) {
	s := New()
	count := 0
	var e *Event
	e = s.NewEvent(func() {
		count++
		if count < 5 {
			s.ScheduleAfter(e, 3)
		}
	})
	s.ScheduleAt(e, 1)
	s.Run()
	if count != 5 {
		t.Fatalf("owned event fired %d times, want 5", count)
	}
	if s.Now() != 13 {
		t.Fatalf("Now() = %v, want 13", s.Now())
	}
}

func TestOwnedEventDoubleArmPanics(t *testing.T) {
	s := New()
	e := s.NewEvent(func() {})
	s.ScheduleAt(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double arm did not panic")
		}
	}()
	s.ScheduleAt(e, 2)
}

func TestOwnedEventCancelAndRearm(t *testing.T) {
	s := New()
	fired := 0
	e := s.NewEvent(func() { fired++ })
	s.ScheduleAt(e, 1)
	s.Cancel(e)
	s.Run()
	if fired != 0 {
		t.Fatal("cancelled owned event fired")
	}
	s.ScheduleAt(e, 2) // re-arm after cancel
	s.Run()
	if fired != 1 {
		t.Fatalf("re-armed owned event fired %d times, want 1", fired)
	}
}

// The self-rescheduling chain is the hot pattern of every engine's
// iteration loop; with the free list (kernel events) or an owned event it
// must run allocation-free in steady state.
func TestSteadyStateAllocs(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { s.After(1, tick) }
	s.After(1, tick)
	s.Step() // prime the free list
	if avg := testing.AllocsPerRun(200, func() { s.Step() }); avg != 0 {
		t.Fatalf("After/Step chain allocates %.1f objects per event, want 0", avg)
	}

	s2 := New()
	var e *Event
	e = s2.NewEvent(func() { s2.ScheduleAfter(e, 1) })
	s2.ScheduleAfter(e, 1)
	s2.Step()
	if avg := testing.AllocsPerRun(200, func() { s2.Step() }); avg != 0 {
		t.Fatalf("owned event loop allocates %.1f objects per event, want 0", avg)
	}
}

// Property: cancelling a random subset leaves exactly the survivors firing,
// in order — exercising mid-heap removal.
func TestPropertyCancelRandom(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%64) + 2
		var fired []int
		events := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			events[i] = s.At(Time(rng.Intn(50)), func() { fired = append(fired, i) })
		}
		keep := map[int]bool{}
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				s.Cancel(events[i])
			} else {
				keep[i] = true
			}
		}
		if s.Pending() != len(keep) {
			return false
		}
		s.Run()
		if len(fired) != len(keep) {
			return false
		}
		sorted := sort.SliceIsSorted(fired, func(a, b int) bool {
			ea, eb := events[fired[a]], events[fired[b]]
			if ea.At() != eb.At() {
				return ea.At() < eb.At()
			}
			return fired[a] < fired[b]
		})
		for _, i := range fired {
			if !keep[i] {
				return false
			}
		}
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of random (time, id) pairs, events fire sorted by
// time with scheduling order breaking ties.
func TestPropertyOrderingRandom(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type rec struct {
			at  Time
			seq int
		}
		var scheduled []rec
		var fired []rec
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			at := Time(rng.Intn(50))
			r := rec{at, i}
			scheduled = append(scheduled, r)
			s.At(at, func() { fired = append(fired, r) })
		}
		s.Run()
		sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].at < scheduled[j].at })
		if len(fired) != len(scheduled) {
			return false
		}
		for i := range fired {
			if fired[i] != scheduled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — running the same random workload twice produces
// identical firing sequences.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var log []Time
		var add func(depth int)
		add = func(depth int) {
			log = append(log, s.Now())
			if depth < 3 {
				k := rng.Intn(3)
				for i := 0; i < k; i++ {
					s.After(Duration(rng.Intn(1000)), func() { add(depth + 1) })
				}
			}
		}
		for i := 0; i < 10; i++ {
			s.At(Time(rng.Intn(100)), func() { add(0) })
		}
		s.Run()
		return log
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
