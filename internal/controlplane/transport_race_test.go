package controlplane

import (
	"io"
	"sync"
	"testing"
)

// TestPipeConcurrentSendRecvClose hammers a pipe pair with senders,
// receivers and a mid-flight Close from a third goroutine — the scenario a
// crashing replica creates when the manager tears its connection down while
// commands are still in flight. Run under -race this is the regression
// test for the Close semantics audit: every goroutine must terminate (no
// deadlock against the 64-deep buffer), Sends after the close must error,
// and Recvs must drain what was queued and then report io.EOF.
func TestPipeConcurrentSendRecvClose(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		a, b := Pipe()

		var wg sync.WaitGroup
		const senders, perSender = 4, 100 // 400 > 64: senders must block, then unblock at close

		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					// Errors are expected once the close lands; what
					// matters is that Send always returns.
					if err := a.Send(&Ack{Seq: uint64(s*perSender + i), Instance: 1}); err != nil {
						return
					}
				}
			}(s)
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := b.Recv(); err != nil {
					if err != io.EOF {
						t.Errorf("Recv: %v, want io.EOF", err)
					}
					return
				}
			}
		}()

		// Close from a third party racing both directions. Alternate which
		// side closes so both done-channel paths get exercised.
		if iter%2 == 0 {
			a.Close()
		} else {
			b.Close()
		}
		wg.Wait()

		if err := a.Send(&Ack{}); err == nil {
			t.Fatal("Send after close succeeded")
		}
		if _, err := b.Recv(); err != io.EOF {
			t.Fatalf("Recv after drain = %v, want io.EOF", err)
		}
		a.Close() // double Close must stay idempotent
		b.Close()
	}
}

// TestPipeCloseDuringBlockedSend: a sender parked on the full 64-deep
// buffer must unblock with an error when either side closes, not deadlock.
func TestPipeCloseDuringBlockedSend(t *testing.T) {
	for _, closer := range []string{"self", "peer"} {
		t.Run(closer, func(t *testing.T) {
			a, b := Pipe()
			// Fill the buffer so the next Send blocks.
			for i := 0; i < 64; i++ {
				if err := a.Send(&Ack{Seq: uint64(i)}); err != nil {
					t.Fatalf("fill Send %d: %v", i, err)
				}
			}
			errc := make(chan error, 1)
			go func() { errc <- a.Send(&Ack{Seq: 64}) }()
			if closer == "self" {
				a.Close()
			} else {
				b.Close()
			}
			if err := <-errc; err == nil {
				t.Fatal("blocked Send returned nil after close")
			}
		})
	}
}

// TestPipeSendAfterCloseNeverDelivers: once Close returns, no later Send
// may slip a message into the buffer for the peer to read — the priority
// done-check in Send guards this even though the buffer has room.
func TestPipeSendAfterCloseNeverDelivers(t *testing.T) {
	a, b := Pipe()
	a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Send(&Ack{Seq: uint64(i)}); err == nil {
			t.Fatal("Send on closed pipe succeeded")
		}
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("peer Recv = %v, want io.EOF (no ghost messages)", err)
	}
}
