package controlplane

import (
	"fmt"
	"sort"
	"sync"

	"loongserve/internal/kvcache"
)

// Stats counts manager-side protocol traffic, letting tests and operators
// verify the metadata cache is doing its job (configs are sent once per
// epoch per member, not once per command).
type Stats struct {
	ConfigsSent int // GroupConfig messages pushed
	Commands    int // prefill/decode/scale/release messages pushed
	Resends     int // commands retried after a cache-miss Nak
	Naks        int // Naks received (all codes)
}

// Manager is the global manager's control-plane endpoint: one Conn per
// elastic instance, an authoritative view of every group's membership, and
// a record of which instances have which metadata cached.
type Manager struct {
	mu     sync.Mutex
	conns  map[kvcache.InstanceID]Conn
	locks  map[kvcache.InstanceID]*sync.Mutex // serializes send+recv pairs per conn
	groups map[GroupID]*GroupConfig
	known  map[kvcache.InstanceID]map[GroupID]Epoch
	seq    uint64
	stats  Stats
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		conns:  make(map[kvcache.InstanceID]Conn),
		locks:  make(map[kvcache.InstanceID]*sync.Mutex),
		groups: make(map[GroupID]*GroupConfig),
		known:  make(map[kvcache.InstanceID]map[GroupID]Epoch),
	}
}

// AddInstance registers the connection to one elastic instance.
func (m *Manager) AddInstance(id kvcache.InstanceID, c Conn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.conns[id] = c
	m.locks[id] = &sync.Mutex{}
	m.known[id] = make(map[GroupID]Epoch)
}

// RemoveInstance deregisters a failed (or decommissioned) instance,
// closing its connection. The instance cannot be commanded any more —
// dead instances never ack — so subsequent group pushes skip it; group
// memberships that still list it must be repaired with Scale. Removing an
// unknown instance is a no-op.
func (m *Manager) RemoveInstance(id kvcache.InstanceID) {
	m.mu.Lock()
	c := m.conns[id]
	delete(m.conns, id)
	delete(m.locks, id)
	delete(m.known, id)
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// instLock returns the per-connection lock; operations on disjoint groups
// proceed concurrently, while two commands to the same instance serialize
// so request/reply pairs never interleave on one conn.
func (m *Manager) instLock(id kvcache.InstanceID) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.locks[id]
}

// Stats returns a snapshot of the traffic counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Group returns the authoritative config for a group, or nil.
func (m *Manager) Group(id GroupID) *GroupConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[id]
}

// Close shuts every instance connection down.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, c := range m.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *Manager) nextSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return m.seq
}

// CreateGroup installs a new parallel group at epoch 1 on its members.
func (m *Manager) CreateGroup(id GroupID, members []kvcache.InstanceID, tp int) error {
	cfg := &GroupConfig{
		Group:     Epoched{ID: id, Epoch: 1},
		Instances: append([]kvcache.InstanceID(nil), members...),
		TP:        tp,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	if _, ok := m.groups[id]; ok {
		m.mu.Unlock()
		return fmt.Errorf("controlplane: group %d already exists", id)
	}
	for _, inst := range members {
		if _, ok := m.conns[inst]; !ok {
			m.mu.Unlock()
			return fmt.Errorf("controlplane: group %d references unknown instance %d", id, inst)
		}
	}
	m.groups[id] = cfg
	m.mu.Unlock()
	return m.pushConfigs(cfg, members)
}

// pushConfigs sends cfg to every listed instance that does not already
// cache its epoch, and waits for acks. Instances with no registered
// connection (crashed, RemoveInstance'd) are skipped — a dead instance
// cannot cache anything, and failing the whole push would wedge the
// survivors.
func (m *Manager) pushConfigs(cfg *GroupConfig, members []kvcache.InstanceID) error {
	var stale []kvcache.InstanceID
	m.mu.Lock()
	for _, inst := range members {
		if m.conns[inst] == nil {
			continue
		}
		if m.known[inst][cfg.Group.ID] != cfg.Group.Epoch {
			stale = append(stale, inst)
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(stale))
	for i, inst := range stale {
		wg.Add(1)
		go func(i int, inst kvcache.InstanceID) {
			defer wg.Done()
			lk := m.instLock(inst)
			if lk == nil { // removed since the stale scan: dead, skip
				return
			}
			lk.Lock()
			defer lk.Unlock()
			errs[i] = m.sendConfig(inst, cfg)
		}(i, inst)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sendConfig pushes one config to one instance and awaits the ack. The
// caller must hold the instance lock (command does; pushConfigs locks
// explicitly via sendConfigLocked).
func (m *Manager) sendConfig(inst kvcache.InstanceID, cfg *GroupConfig) error {
	m.mu.Lock()
	conn := m.conns[inst]
	m.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("controlplane: no connection to instance %d", inst)
	}
	msg := &GroupConfig{
		Group:     cfg.Group,
		Seq:       m.nextSeq(),
		Instances: cfg.Instances,
		TP:        cfg.TP,
	}
	if err := conn.Send(msg); err != nil {
		return err
	}
	m.mu.Lock()
	m.stats.ConfigsSent++
	m.mu.Unlock()
	reply, err := conn.Recv()
	if err != nil {
		return err
	}
	switch r := reply.(type) {
	case *Ack:
		if r.Seq != msg.Seq {
			return fmt.Errorf("controlplane: instance %d acked seq %d, want %d", inst, r.Seq, msg.Seq)
		}
		m.mu.Lock()
		m.known[inst][cfg.Group.ID] = cfg.Group.Epoch
		m.mu.Unlock()
		return nil
	case *Nak:
		m.mu.Lock()
		m.stats.Naks++
		m.mu.Unlock()
		return fmt.Errorf("controlplane: instance %d rejected config %v: %v", inst, cfg.Group, r.Code)
	}
	return fmt.Errorf("controlplane: instance %d sent unexpected %v", inst, reply.Type())
}

// command sends msg to one instance, handling the cache-miss Nak by
// resending the group config and retrying once.
func (m *Manager) command(inst kvcache.InstanceID, cfg *GroupConfig, msg Message, seq uint64) error {
	m.mu.Lock()
	conn, lk := m.conns[inst], m.locks[inst]
	m.mu.Unlock()
	if conn == nil || lk == nil {
		return fmt.Errorf("controlplane: no connection to instance %d", inst)
	}
	lk.Lock()
	defer lk.Unlock()
	for attempt := 0; ; attempt++ {
		if err := conn.Send(msg); err != nil {
			return err
		}
		m.mu.Lock()
		m.stats.Commands++
		if attempt > 0 {
			m.stats.Resends++
		}
		m.mu.Unlock()
		reply, err := conn.Recv()
		if err != nil {
			return err
		}
		switch r := reply.(type) {
		case *Ack:
			if r.Seq != seq {
				return fmt.Errorf("controlplane: instance %d acked seq %d, want %d", inst, r.Seq, seq)
			}
			return nil
		case *Nak:
			m.mu.Lock()
			m.stats.Naks++
			m.mu.Unlock()
			if r.Code == NakUnknownGroup && attempt == 0 {
				// Cache miss (e.g. instance restart): resend the
				// metadata and retry the command once.
				if err := m.sendConfig(inst, cfg); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("controlplane: instance %d rejected seq %d: %v", inst, seq, r.Code)
		default:
			return fmt.Errorf("controlplane: instance %d sent unexpected %v", inst, reply.Type())
		}
	}
}

// broadcast sends msg to every member concurrently and collects the first
// error. Members with no registered connection (crashed instances removed
// via RemoveInstance) are skipped: the fleet survives a member's death,
// and the caller repairs the membership with Scale.
func (m *Manager) broadcast(cfg *GroupConfig, members []kvcache.InstanceID, msg Message, seq uint64) error {
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	for i, inst := range members {
		m.mu.Lock()
		alive := m.conns[inst] != nil
		m.mu.Unlock()
		if !alive {
			continue
		}
		wg.Add(1)
		go func(i int, inst kvcache.InstanceID) {
			defer wg.Done()
			errs[i] = m.command(inst, cfg, msg, seq)
		}(i, inst)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lookupGroup fetches the authoritative config.
func (m *Manager) lookupGroup(id GroupID) (*GroupConfig, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg, ok := m.groups[id]
	if !ok {
		return nil, fmt.Errorf("controlplane: unknown group %d", id)
	}
	return cfg, nil
}

// Prefill runs one striped prefill iteration on the group.
func (m *Manager) Prefill(id GroupID, reqs []RequestSpec, retention []int32) error {
	cfg, err := m.lookupGroup(id)
	if err != nil {
		return err
	}
	cmd := &PrefillCommand{Group: cfg.Group, Seq: m.nextSeq(), Requests: reqs, Retention: retention}
	if err := cmd.Validate(len(cfg.Instances)); err != nil {
		return err
	}
	if err := m.pushConfigs(cfg, cfg.Instances); err != nil {
		return err
	}
	return m.broadcast(cfg, cfg.Instances, cmd, cmd.Seq)
}

// Decode runs one decoding iteration on the group.
func (m *Manager) Decode(id GroupID, reqs []RequestSpec, masters []int32) error {
	cfg, err := m.lookupGroup(id)
	if err != nil {
		return err
	}
	cmd := &DecodeCommand{Group: cfg.Group, Seq: m.nextSeq(), Requests: reqs, Masters: masters}
	if err := cmd.Validate(len(cfg.Instances)); err != nil {
		return err
	}
	if err := m.pushConfigs(cfg, cfg.Instances); err != nil {
		return err
	}
	return m.broadcast(cfg, cfg.Instances, cmd, cmd.Seq)
}

// Release frees finished requests on the group.
func (m *Manager) Release(id GroupID, reqs []kvcache.RequestID) error {
	cfg, err := m.lookupGroup(id)
	if err != nil {
		return err
	}
	cmd := &ReleaseCommand{Group: cfg.Group, Seq: m.nextSeq(), Requests: reqs}
	if err := m.pushConfigs(cfg, cfg.Instances); err != nil {
		return err
	}
	return m.broadcast(cfg, cfg.Instances, cmd, cmd.Seq)
}

// Scale changes the group membership. The plan goes to the union of old
// and new members — departing instances must drop their metadata, joining
// instances learn the group (via the cache-miss path if they never saw it).
// On success the authoritative epoch advances.
func (m *Manager) Scale(id GroupID, kind ScaleKind, newMembers []kvcache.InstanceID) error {
	cfg, err := m.lookupGroup(id)
	if err != nil {
		return err
	}
	plan := &ScalePlan{
		Group:    cfg.Group,
		Seq:      m.nextSeq(),
		Kind:     kind,
		NewEpoch: cfg.Group.Epoch + 1,
		Members:  append([]kvcache.InstanceID(nil), newMembers...),
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	for _, inst := range newMembers {
		if _, ok := m.conns[inst]; !ok {
			m.mu.Unlock()
			return fmt.Errorf("controlplane: scale references unknown instance %d", inst)
		}
	}
	m.mu.Unlock()

	union := unionIDs(cfg.Instances, newMembers)
	// Old members that never cached the group (should not happen, but an
	// instance may have restarted) are handled by the Nak path.
	if err := m.pushConfigs(cfg, union); err != nil {
		return err
	}
	if err := m.broadcast(cfg, union, plan, plan.Seq); err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	newCfg := &GroupConfig{
		Group:     Epoched{ID: id, Epoch: plan.NewEpoch},
		Instances: plan.Members,
		TP:        cfg.TP,
	}
	m.groups[id] = newCfg
	inNew := make(map[kvcache.InstanceID]bool, len(plan.Members))
	for _, inst := range plan.Members {
		inNew[inst] = true
	}
	for _, inst := range union {
		if inNew[inst] {
			m.known[inst][id] = plan.NewEpoch
		} else {
			delete(m.known[inst], id)
		}
	}
	return nil
}

// DissolveGroup removes a group from the manager and instructs members to
// forget it by scaling it down to a single survivor and releasing nothing;
// in practice the serving engine releases all requests first. The manager
// simply drops its authoritative state.
func (m *Manager) DissolveGroup(id GroupID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.groups, id)
	for _, k := range m.known {
		delete(k, id)
	}
}

func unionIDs(a, b []kvcache.InstanceID) []kvcache.InstanceID {
	set := make(map[kvcache.InstanceID]bool, len(a)+len(b))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		set[id] = true
	}
	out := make([]kvcache.InstanceID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
