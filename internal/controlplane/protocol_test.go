package controlplane

import (
	"strings"
	"sync"
	"testing"

	"loongserve/internal/kvcache"
)

// testCluster wires a manager to n mirror instances over pipes and runs
// each instance server in a goroutine.
type testCluster struct {
	m       *Manager
	mirrors []*MirrorHandler
	servers []*InstanceServer
	conns   []Conn // manager-side handles, for restart tests
	wg      sync.WaitGroup
}

func newTestCluster(t *testing.T, n, capacity int) *testCluster {
	t.Helper()
	tc := &testCluster{m: NewManager()}
	for i := 0; i < n; i++ {
		mc, ic := Pipe()
		mir := NewMirrorHandler(kvcache.InstanceID(i), capacity)
		srv := NewInstanceServer(kvcache.InstanceID(i), ic, mir)
		tc.m.AddInstance(kvcache.InstanceID(i), mc)
		tc.mirrors = append(tc.mirrors, mir)
		tc.servers = append(tc.servers, srv)
		tc.conns = append(tc.conns, ic)
		tc.wg.Add(1)
		go func(s *InstanceServer) {
			defer tc.wg.Done()
			if err := s.Serve(); err != nil {
				t.Errorf("instance %d: %v", s.ID, err)
			}
		}(srv)
	}
	t.Cleanup(func() {
		tc.m.Close()
		tc.wg.Wait()
	})
	return tc
}

func ids(ns ...int) []kvcache.InstanceID {
	out := make([]kvcache.InstanceID, len(ns))
	for i, n := range ns {
		out[i] = kvcache.InstanceID(n)
	}
	return out
}

func TestProtocolLifecycle(t *testing.T) {
	tc := newTestCluster(t, 4, 1000)

	// Fig 6 lifecycle: prefill at DoP 4 with a proactive scale-down plan
	// retaining everything on instances 0 and 1, scale down, decode with
	// two masters, scale up, decode more, release.
	if err := tc.m.CreateGroup(1, ids(0, 1, 2, 3), 2); err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}

	// 12 tokens across two requests; first 8 retained on ring pos 0,
	// last 4 on ring pos 1 (token-granularity placement, §4.1).
	plan := make([]int32, 12)
	for i := 8; i < 12; i++ {
		plan[i] = 1
	}
	reqs := []RequestSpec{{ID: 100, Len: 7}, {ID: 101, Len: 5}}
	if err := tc.m.Prefill(1, reqs, plan); err != nil {
		t.Fatalf("Prefill: %v", err)
	}
	// Request 100 holds tokens 0-6: 7 on pos 0. Request 101 holds tokens
	// 7-11: 1 on pos 0, 4 on pos 1.
	if got := tc.mirrors[0].Pool.Held(100); got != 7 {
		t.Errorf("instance 0 holds %d tokens of r100, want 7", got)
	}
	if got := tc.mirrors[0].Pool.Held(101); got != 1 {
		t.Errorf("instance 0 holds %d tokens of r101, want 1", got)
	}
	if got := tc.mirrors[1].Pool.Held(101); got != 4 {
		t.Errorf("instance 1 holds %d tokens of r101, want 4", got)
	}
	for _, i := range []int{2, 3} {
		if got := tc.mirrors[i].Pool.Used(); got != 0 {
			t.Errorf("instance %d holds %d tokens after proactive scale-down, want 0", i, got)
		}
	}

	// Scale down to the two retaining instances.
	if err := tc.m.Scale(1, ScaleDown, ids(0, 1)); err != nil {
		t.Fatalf("Scale down: %v", err)
	}
	if ep, ok := tc.servers[0].CachedEpoch(1); !ok || ep != 2 {
		t.Errorf("instance 0 cached epoch = %d,%v; want 2,true", ep, ok)
	}
	if _, ok := tc.servers[3].CachedEpoch(1); ok {
		t.Error("instance 3 still caches the group after leaving")
	}

	// Three decode iterations, masters split across the two survivors.
	for i := 0; i < 3; i++ {
		dec := []RequestSpec{{ID: 100, Len: 7 + i}, {ID: 101, Len: 5 + i}}
		if err := tc.m.Decode(1, dec, []int32{0, 1}); err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
	}
	if got := tc.mirrors[0].Pool.Held(100); got != 10 {
		t.Errorf("instance 0 holds %d tokens of r100 after 3 decodes, want 10", got)
	}
	if got := tc.mirrors[1].Pool.Held(101); got != 7 {
		t.Errorf("instance 1 holds %d tokens of r101 after 3 decodes, want 7", got)
	}

	// Scale up adds instance 2 back; nothing migrates.
	if err := tc.m.Scale(1, ScaleUp, ids(0, 1, 2)); err != nil {
		t.Fatalf("Scale up: %v", err)
	}
	if got := tc.mirrors[2].Pool.Used(); got != 0 {
		t.Errorf("scale-up migrated %d tokens onto instance 2, want 0", got)
	}
	// New master lands on the fresh instance.
	if err := tc.m.Decode(1, []RequestSpec{{ID: 100, Len: 10}, {ID: 101, Len: 7}}, []int32{2, 2}); err != nil {
		t.Fatalf("Decode after scale-up: %v", err)
	}
	if got := tc.mirrors[2].Pool.Used(); got != 2 {
		t.Errorf("instance 2 holds %d tokens after mastering 2 requests, want 2", got)
	}

	// Release both requests everywhere.
	if err := tc.m.Release(1, []kvcache.RequestID{100, 101}); err != nil {
		t.Fatalf("Release: %v", err)
	}
	for i, mir := range tc.mirrors {
		if got := mir.Pool.Used(); got != 0 {
			t.Errorf("instance %d still holds %d tokens after release", i, got)
		}
	}
}

func TestProtocolMetadataCachedAcrossCommands(t *testing.T) {
	tc := newTestCluster(t, 4, 10_000)
	if err := tc.m.CreateGroup(1, ids(0, 1, 2, 3), 2); err != nil {
		t.Fatal(err)
	}
	const iters = 50
	reqs := []RequestSpec{{ID: 1, Len: 16}}
	if err := tc.m.Prefill(1, reqs, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if err := tc.m.Decode(1, []RequestSpec{{ID: 1, Len: 16 + i}}, []int32{0}); err != nil {
			t.Fatal(err)
		}
	}
	st := tc.m.Stats()
	if st.ConfigsSent != 4 {
		t.Errorf("ConfigsSent = %d, want 4 (once per member; commands reuse the cache)", st.ConfigsSent)
	}
	if want := (iters + 1) * 4; st.Commands != want {
		t.Errorf("Commands = %d, want %d", st.Commands, want)
	}
	if st.Naks != 0 || st.Resends != 0 {
		t.Errorf("unexpected Naks=%d Resends=%d on the happy path", st.Naks, st.Resends)
	}
}

func TestProtocolCacheMissRecovery(t *testing.T) {
	tc := newTestCluster(t, 2, 1000)
	if err := tc.m.CreateGroup(1, ids(0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Prefill(1, []RequestSpec{{ID: 1, Len: 4}}, nil); err != nil {
		t.Fatal(err)
	}

	// Simulate an instance restart losing its metadata cache: clear the
	// live server's cache while the manager still believes the instance
	// holds epoch 1.
	srv := tc.servers[1]
	srv.mu.Lock()
	srv.cache = make(map[GroupID]*GroupConfig)
	srv.mu.Unlock()

	// Next command hits the cleared cache, gets NakUnknownGroup, and the
	// manager recovers by resending the config.
	if err := tc.m.Decode(1, []RequestSpec{{ID: 1, Len: 4}}, []int32{1}); err != nil {
		t.Fatalf("Decode after instance restart: %v", err)
	}
	st := tc.m.Stats()
	if st.Naks != 1 {
		t.Errorf("Naks = %d, want 1 (one cache miss)", st.Naks)
	}
	if st.Resends != 1 {
		t.Errorf("Resends = %d, want 1", st.Resends)
	}
	if got := tc.mirrors[1].Pool.Held(1); got != 1+2 {
		// 2 tokens from the uniform prefill of 4 over 2 instances, +1
		// from the mastered decode.
		t.Errorf("instance 1 holds %d tokens, want 3", got)
	}
}

func TestProtocolScaleValidation(t *testing.T) {
	tc := newTestCluster(t, 3, 100)
	if err := tc.m.CreateGroup(1, ids(0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Scale(1, ScaleUp, ids(0, 1, 9)); err == nil {
		t.Error("scale onto unknown instance accepted")
	}
	if err := tc.m.Scale(99, ScaleUp, ids(0, 1, 2)); err == nil {
		t.Error("scale of unknown group accepted")
	}
	if err := tc.m.Prefill(99, []RequestSpec{{ID: 1, Len: 1}}, nil); err == nil {
		t.Error("prefill of unknown group accepted")
	}
	// Manager-side validation rejects malformed retention before sending.
	if err := tc.m.Prefill(1, []RequestSpec{{ID: 1, Len: 4}}, []int32{0, 0, 0, 7}); err == nil {
		t.Error("out-of-group retention accepted")
	}
	if st := tc.m.Stats(); st.Commands != 0 {
		t.Errorf("invalid commands reached the wire: %d", st.Commands)
	}
}

func TestProtocolDuplicateGroup(t *testing.T) {
	tc := newTestCluster(t, 2, 100)
	if err := tc.m.CreateGroup(1, ids(0, 1), 1); err != nil {
		t.Fatal(err)
	}
	err := tc.m.CreateGroup(1, ids(0), 1)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate group error = %v", err)
	}
}

func TestProtocolTwoGroupsDisjointInstances(t *testing.T) {
	tc := newTestCluster(t, 4, 1000)
	if err := tc.m.CreateGroup(1, ids(0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.CreateGroup(2, ids(2, 3), 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = tc.m.Prefill(1, []RequestSpec{{ID: 1, Len: 10}}, nil)
	}()
	go func() {
		defer wg.Done()
		errs[1] = tc.m.Prefill(2, []RequestSpec{{ID: 2, Len: 10}}, nil)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent prefill %d: %v", i+1, err)
		}
	}
	if got := tc.mirrors[0].Pool.Held(1) + tc.mirrors[1].Pool.Held(1); got != 10 {
		t.Errorf("group 1 retained %d tokens of r1, want 10", got)
	}
	if got := tc.mirrors[2].Pool.Held(2) + tc.mirrors[3].Pool.Held(2); got != 10 {
		t.Errorf("group 2 retained %d tokens of r2, want 10", got)
	}
}

func TestProtocolOverTCP(t *testing.T) {
	// The same lifecycle as TestProtocolLifecycle's core, over loopback
	// TCP with framed messages.
	l, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 3
	m := NewManager()
	mirrors := make([]*MirrorHandler, n)
	var wg sync.WaitGroup

	accepted := make(chan Conn, n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < n; i++ {
		mc, err := Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		ic := <-accepted
		mirrors[i] = NewMirrorHandler(kvcache.InstanceID(i), 10_000)
		srv := NewInstanceServer(kvcache.InstanceID(i), ic, mirrors[i])
		m.AddInstance(kvcache.InstanceID(i), mc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = srv.Serve() // exits with a transport error after Close
		}()
	}
	defer func() {
		m.Close()
		wg.Wait()
	}()

	if err := m.CreateGroup(1, ids(0, 1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Prefill(1, []RequestSpec{{ID: 1, Len: 9}}, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, mir := range mirrors {
		total += mir.Pool.Held(1)
	}
	if total != 9 {
		t.Errorf("cluster retains %d tokens, want 9", total)
	}
	if err := m.Scale(1, ScaleDown, ids(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Decode(1, []RequestSpec{{ID: 1, Len: 9}}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1, []kvcache.RequestID{1}); err != nil {
		t.Fatal(err)
	}
	if got := mirrors[0].Pool.Used(); got != 0 {
		t.Errorf("instance 0 holds %d tokens after release", got)
	}
}
