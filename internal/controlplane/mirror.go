package controlplane

import (
	"fmt"
	"sync"

	"loongserve/internal/kvcache"
)

// MirrorHandler is a Handler that mirrors the KV-cache accounting an
// elastic instance would perform: prefill retention plans allocate tokens
// into the local pool, multi-master decoding allocates one token per
// mastered request, releases free them, and elastic scaling allocates
// nothing — the executable form of the paper's zero-overhead scaling claim
// (§4). End-to-end tests drive a manager against mirror instances and
// check the distributed accounting stays consistent with the global view.
type MirrorHandler struct {
	ID   kvcache.InstanceID
	Pool *kvcache.Pool

	mu       sync.Mutex
	prefills int
	decodes  int
	scales   int
	releases int
}

// NewMirrorHandler builds a mirror over a token pool with the given
// capacity.
func NewMirrorHandler(id kvcache.InstanceID, capacity int) *MirrorHandler {
	return &MirrorHandler{ID: id, Pool: kvcache.NewPool(id, capacity)}
}

// Counts returns (prefills, decodes, scales, releases) executed.
func (h *MirrorHandler) Counts() (int, int, int, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.prefills, h.decodes, h.scales, h.releases
}

// ringPos finds the handler's position in the group ring.
func (h *MirrorHandler) ringPos(cfg *GroupConfig) (int, error) {
	for i, id := range cfg.Instances {
		if id == h.ID {
			return i, nil
		}
	}
	return -1, fmt.Errorf("controlplane: instance %d not in group %v", h.ID, cfg.Group)
}

// Prefill implements Handler: allocate every token the retention plan pins
// to this instance. An empty plan means uniform striping (token t stays at
// ring position t mod sp).
func (h *MirrorHandler) Prefill(cfg *GroupConfig, cmd *PrefillCommand) error {
	me, err := h.ringPos(cfg)
	if err != nil {
		return err
	}
	sp := len(cfg.Instances)
	off := 0
	for _, r := range cmd.Requests {
		mine := 0
		for t := off; t < off+r.Len; t++ {
			pos := t % sp
			if len(cmd.Retention) > 0 {
				pos = int(cmd.Retention[t])
			}
			if pos == me {
				mine++
			}
		}
		off += r.Len
		if mine > 0 {
			if err := h.Pool.Alloc(r.ID, mine); err != nil {
				return err
			}
		}
	}
	h.mu.Lock()
	h.prefills++
	h.mu.Unlock()
	return nil
}

// Decode implements Handler: the master of each request stores its newly
// generated KV token locally (§4.2).
func (h *MirrorHandler) Decode(cfg *GroupConfig, cmd *DecodeCommand) error {
	me, err := h.ringPos(cfg)
	if err != nil {
		return err
	}
	for i, r := range cmd.Requests {
		if int(cmd.Masters[i]) != me {
			continue
		}
		if err := h.Pool.Alloc(r.ID, 1); err != nil {
			return err
		}
	}
	h.mu.Lock()
	h.decodes++
	h.mu.Unlock()
	return nil
}

// Scale implements Handler: membership changes move no KV tensors.
func (h *MirrorHandler) Scale(cfg *GroupConfig, plan *ScalePlan) error {
	h.mu.Lock()
	h.scales++
	h.mu.Unlock()
	return nil
}

// Release implements Handler: free everything the finished requests hold
// here.
func (h *MirrorHandler) Release(cfg *GroupConfig, cmd *ReleaseCommand) error {
	for _, id := range cmd.Requests {
		h.Pool.ReleaseAll(id)
	}
	h.mu.Lock()
	h.releases++
	h.mu.Unlock()
	return nil
}
