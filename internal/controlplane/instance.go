package controlplane

import (
	"fmt"
	"io"
	"sync"

	"loongserve/internal/kvcache"
)

// Handler executes control-plane commands against the local execution
// engine. The GroupConfig passed to each method is the instance's cached
// metadata for the command's group at the command's epoch — handlers never
// see a command whose group reference missed the cache.
type Handler interface {
	// Prefill runs one striped prefill iteration, retaining KV tokens per
	// the proactive scale-down plan (§4.1).
	Prefill(cfg *GroupConfig, cmd *PrefillCommand) error
	// Decode runs one decoding iteration under the multi-master
	// assignment (§4.2).
	Decode(cfg *GroupConfig, cmd *DecodeCommand) error
	// Scale applies an elastic scaling plan. cfg is the pre-scaling
	// config; the server updates its cache after Scale returns nil.
	Scale(cfg *GroupConfig, plan *ScalePlan) error
	// Release frees finished requests' KV tokens.
	Release(cfg *GroupConfig, cmd *ReleaseCommand) error
}

// InstanceServer is the control-plane endpoint living on each elastic
// instance's rank 0. It maintains the ESP metadata cache and answers the
// manager's commands.
type InstanceServer struct {
	ID      kvcache.InstanceID
	conn    Conn
	handler Handler

	mu    sync.Mutex
	cache map[GroupID]*GroupConfig
}

// NewInstanceServer builds a server for one instance over conn.
func NewInstanceServer(id kvcache.InstanceID, conn Conn, h Handler) *InstanceServer {
	return &InstanceServer{
		ID:      id,
		conn:    conn,
		handler: h,
		cache:   make(map[GroupID]*GroupConfig),
	}
}

// CachedEpoch reports the cached epoch for a group, or false when the group
// is unknown.
func (s *InstanceServer) CachedEpoch(g GroupID) (Epoch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, ok := s.cache[g]
	if !ok {
		return 0, false
	}
	return cfg.Group.Epoch, true
}

// DropCaches discards the instance's entire ESP metadata cache, as if the
// process restarted and lost its in-memory state. The next command
// referencing any group is answered with NakUnknownGroup, forcing the
// manager down the config-resend path — this is the fault-injection hook
// behind the fleet's "cachedrop" fault kind.
func (s *InstanceServer) DropCaches() {
	s.mu.Lock()
	s.cache = make(map[GroupID]*GroupConfig)
	s.mu.Unlock()
}

// Serve processes commands until the connection closes. It returns nil on
// clean shutdown (manager closed the channel) and the first transport error
// otherwise.
func (s *InstanceServer) Serve() error {
	for {
		msg, err := s.conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if err := s.dispatch(msg); err != nil {
			return err
		}
	}
}

// lookup resolves a group reference against the cache.
func (s *InstanceServer) lookup(ref Epoched) (*GroupConfig, NakCode, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, ok := s.cache[ref.ID]
	if !ok {
		return nil, NakUnknownGroup, false
	}
	switch {
	case cfg.Group.Epoch == ref.Epoch:
		return cfg, 0, true
	case cfg.Group.Epoch > ref.Epoch:
		return nil, NakStaleEpoch, false
	default:
		// The manager is ahead of us: behave like a cache miss so it
		// resends the config.
		return nil, NakUnknownGroup, false
	}
}

func (s *InstanceServer) ack(seq uint64) error {
	return s.conn.Send(&Ack{Seq: seq, Instance: s.ID})
}

func (s *InstanceServer) nak(seq uint64, code NakCode, ref Epoched) error {
	return s.conn.Send(&Nak{Seq: seq, Instance: s.ID, Code: code, Group: ref})
}

func (s *InstanceServer) dispatch(msg Message) error {
	switch m := msg.(type) {
	case *GroupConfig:
		if err := m.Validate(); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		s.mu.Lock()
		cur, ok := s.cache[m.Group.ID]
		if ok && cur.Group.Epoch > m.Group.Epoch {
			s.mu.Unlock()
			return s.nak(m.Seq, NakStaleEpoch, m.Group)
		}
		s.cache[m.Group.ID] = m
		s.mu.Unlock()
		return s.ack(m.Seq)

	case *PrefillCommand:
		cfg, code, ok := s.lookup(m.Group)
		if !ok {
			return s.nak(m.Seq, code, m.Group)
		}
		if err := m.Validate(len(cfg.Instances)); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		if err := s.handler.Prefill(cfg, m); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		return s.ack(m.Seq)

	case *DecodeCommand:
		cfg, code, ok := s.lookup(m.Group)
		if !ok {
			return s.nak(m.Seq, code, m.Group)
		}
		if err := m.Validate(len(cfg.Instances)); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		if err := s.handler.Decode(cfg, m); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		return s.ack(m.Seq)

	case *ScalePlan:
		cfg, code, ok := s.lookup(m.Group)
		if !ok {
			return s.nak(m.Seq, code, m.Group)
		}
		if err := m.Validate(); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		if err := s.handler.Scale(cfg, m); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		// Update the cached metadata in place: this is the common-case
		// path that avoids a GroupConfig resend after every scaling.
		s.mu.Lock()
		member := false
		for _, id := range m.Members {
			if id == s.ID {
				member = true
				break
			}
		}
		if member {
			s.cache[m.Group.ID] = &GroupConfig{
				Group:     Epoched{ID: m.Group.ID, Epoch: m.NewEpoch},
				Instances: m.Members,
				TP:        cfg.TP,
			}
		} else {
			// We left the group; drop the metadata so a stale
			// reference later is answered with unknown-group.
			delete(s.cache, m.Group.ID)
		}
		s.mu.Unlock()
		return s.ack(m.Seq)

	case *ReleaseCommand:
		cfg, code, ok := s.lookup(m.Group)
		if !ok {
			return s.nak(m.Seq, code, m.Group)
		}
		if err := s.handler.Release(cfg, m); err != nil {
			return s.nak(m.Seq, NakBadPayload, m.Group)
		}
		return s.ack(m.Seq)
	}
	return fmt.Errorf("controlplane: instance %d received unexpected %v", s.ID, msg.Type())
}

// NopHandler accepts every command without side effects; useful for
// protocol-only tests.
type NopHandler struct{}

// Prefill implements Handler.
func (NopHandler) Prefill(*GroupConfig, *PrefillCommand) error { return nil }

// Decode implements Handler.
func (NopHandler) Decode(*GroupConfig, *DecodeCommand) error { return nil }

// Scale implements Handler.
func (NopHandler) Scale(*GroupConfig, *ScalePlan) error { return nil }

// Release implements Handler.
func (NopHandler) Release(*GroupConfig, *ReleaseCommand) error { return nil }
