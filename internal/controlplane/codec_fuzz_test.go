package controlplane

import (
	"reflect"
	"testing"

	"loongserve/internal/kvcache"
)

// fuzzSeedMessages is the corpus of valid wire messages: one of every
// type, with field shapes that exercise the delta-ID, RLE and raw plan
// encoders. Truncations of these are seeded too, so the fuzzer starts at
// the interesting boundaries instead of rediscovering the framing.
func fuzzSeedMessages() []Message {
	return []Message{
		&GroupConfig{Group: Epoched{ID: 7, Epoch: 3}, Seq: 42,
			Instances: []kvcache.InstanceID{2, 0, 5, 1}, TP: 2},
		&PrefillCommand{Group: Epoched{ID: 7, Epoch: 3}, Seq: 43,
			Requests:  []RequestSpec{{ID: 100, Len: 4}, {ID: 101, Len: 3}},
			Retention: []int32{0, 1, 0, 1, 1, 1, 0}},
		&PrefillCommand{Group: Epoched{ID: 1, Epoch: 1}, Seq: 44,
			Requests:  []RequestSpec{{ID: 9, Len: 64}},
			Retention: []int32{0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		&DecodeCommand{Group: Epoched{ID: 7, Epoch: 4}, Seq: 45,
			Requests: []RequestSpec{{ID: 100, Len: 11}, {ID: 300, Len: 9}},
			Masters:  []int32{0, 1}},
		&ScalePlan{Group: Epoched{ID: 7, Epoch: 4}, Seq: 46, Kind: ScaleUp,
			NewEpoch: 5, Members: []kvcache.InstanceID{0, 1, 2, 3, 6}},
		&ReleaseCommand{Group: Epoched{ID: 7, Epoch: 6}, Seq: 48,
			Requests: []kvcache.RequestID{100, 101, 300}},
		&Ack{Seq: 48, Instance: 3},
		&Nak{Seq: 48, Instance: 3, Code: NakStaleEpoch, Group: Epoched{ID: 7, Epoch: 2}},
	}
}

// FuzzDecode is the codec hardening gate: Decode over arbitrary bytes —
// malformed, truncated, oversized, bit-flipped — must either return an
// error or a message that survives a re-encode round trip. It must never
// panic; a panic here is a remotely triggerable crash of an instance's
// rank-0 control loop.
func FuzzDecode(f *testing.F) {
	for _, msg := range fuzzSeedMessages() {
		b, err := Encode(nil, msg)
		if err != nil {
			f.Fatalf("seed Encode(%v): %v", msg.Type(), err)
		}
		f.Add(b)
		// Seed truncation boundaries and a corrupted type byte.
		f.Add(b[:len(b)/2])
		f.Add(b[:1])
		if len(b) > 1 {
			bad := append([]byte(nil), b...)
			bad[0] ^= 0x40
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data) // must not panic
		if err != nil {
			return
		}
		// A successfully decoded message must re-encode (the manager's
		// resend path relies on this) and decode back to the same value.
		b2, err := Encode(nil, msg)
		if err != nil {
			t.Fatalf("re-Encode of decoded %v: %v", msg.Type(), err)
		}
		msg2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-Decode of %v: %v", msg.Type(), err)
		}
		if !reflect.DeepEqual(normalize(msg), normalize(msg2)) {
			t.Fatalf("unstable round trip:\n first %+v\nsecond %+v", msg, msg2)
		}
	})
}
