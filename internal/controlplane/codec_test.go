package controlplane

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"loongserve/internal/kvcache"
)

func mustEncode(t *testing.T, msg Message) []byte {
	t.Helper()
	b, err := Encode(nil, msg)
	if err != nil {
		t.Fatalf("Encode(%v): %v", msg.Type(), err)
	}
	return b
}

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	b := mustEncode(t, msg)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%v): %v", msg.Type(), err)
	}
	return got
}

func TestCodecRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&GroupConfig{
			Group:     Epoched{ID: 7, Epoch: 3},
			Seq:       42,
			Instances: []kvcache.InstanceID{2, 0, 5, 1},
			TP:        2,
		},
		&PrefillCommand{
			Group:     Epoched{ID: 7, Epoch: 3},
			Seq:       43,
			Requests:  []RequestSpec{{ID: 100, Len: 4}, {ID: 101, Len: 3}},
			Retention: []int32{0, 1, 0, 1, 1, 1, 0},
		},
		&PrefillCommand{ // empty plan = uniform striping
			Group:    Epoched{ID: 1, Epoch: 1},
			Seq:      44,
			Requests: []RequestSpec{{ID: 9, Len: 1024}},
		},
		&DecodeCommand{
			Group:    Epoched{ID: 7, Epoch: 4},
			Seq:      45,
			Requests: []RequestSpec{{ID: 100, Len: 11}, {ID: 101, Len: 7}, {ID: 300, Len: 9}},
			Masters:  []int32{0, 1, 0},
		},
		&ScalePlan{
			Group:    Epoched{ID: 7, Epoch: 4},
			Seq:      46,
			Kind:     ScaleUp,
			NewEpoch: 5,
			Members:  []kvcache.InstanceID{0, 1, 2, 3, 6},
		},
		&ScalePlan{
			Group:    Epoched{ID: 7, Epoch: 5},
			Seq:      47,
			Kind:     ScaleDown,
			NewEpoch: 6,
			Members:  []kvcache.InstanceID{1},
		},
		&ReleaseCommand{
			Group:    Epoched{ID: 7, Epoch: 6},
			Seq:      48,
			Requests: []kvcache.RequestID{100, 101, 300},
		},
		&Ack{Seq: 48, Instance: 3},
		&Nak{Seq: 48, Instance: 3, Code: NakStaleEpoch, Group: Epoched{ID: 7, Epoch: 2}},
	}
	for _, want := range msgs {
		got := roundTrip(t, want)
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", want.Type(), got, want)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares semantics, not
// allocation details.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *PrefillCommand:
		c := *v
		if len(c.Retention) == 0 {
			c.Retention = nil
		}
		if len(c.Requests) == 0 {
			c.Requests = nil
		}
		return &c
	case *DecodeCommand:
		c := *v
		if len(c.Masters) == 0 {
			c.Masters = nil
		}
		if len(c.Requests) == 0 {
			c.Requests = nil
		}
		return &c
	case *ReleaseCommand:
		c := *v
		if len(c.Requests) == 0 {
			c.Requests = nil
		}
		return &c
	}
	return m
}

func TestCodecEncodeAppends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	b, err := Encode(prefix, &Ack{Seq: 1, Instance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xde || b[1] != 0xad {
		t.Fatalf("Encode clobbered prefix: %x", b[:2])
	}
	if _, err := Decode(b[2:]); err != nil {
		t.Fatalf("Decode after prefix: %v", err)
	}
}

func TestCodecQuickGroupConfig(t *testing.T) {
	f := func(id uint32, epoch uint32, seq uint64, rawIDs []int16, tp uint8) bool {
		if len(rawIDs) == 0 || tp == 0 {
			return true
		}
		seen := map[kvcache.InstanceID]bool{}
		var ids []kvcache.InstanceID
		for _, r := range rawIDs {
			v := kvcache.InstanceID(r)
			if v < 0 {
				v = -v
			}
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
		msg := &GroupConfig{
			Group:     Epoched{ID: GroupID(id), Epoch: Epoch(epoch)},
			Seq:       seq,
			Instances: ids,
			TP:        int(tp),
		}
		b, err := Encode(nil, msg)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodecQuickPrefill(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(6)
		reqs := make([]RequestSpec, n)
		total := 0
		id := int64(rng.Intn(1000))
		for i := range reqs {
			id += int64(1 + rng.Intn(50))
			reqs[i] = RequestSpec{ID: kvcache.RequestID(id), Len: 1 + rng.Intn(40)}
			total += reqs[i].Len
		}
		var plan []int32
		if rng.Intn(3) > 0 {
			plan = make([]int32, total)
			sp := 1 + rng.Intn(8)
			for t := range plan {
				switch rng.Intn(3) {
				case 0:
					plan[t] = int32(t % sp) // striped
				case 1:
					plan[t] = int32(sp - 1) // constant run
				default:
					plan[t] = int32(rng.Intn(sp))
				}
			}
		}
		msg := &PrefillCommand{
			Group:     Epoched{ID: GroupID(rng.Uint32()), Epoch: Epoch(rng.Uint32())},
			Seq:       rng.Uint64(),
			Requests:  reqs,
			Retention: plan,
		}
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(normalize(got), normalize(Message(msg))) {
			t.Fatalf("iter %d: got %+v want %+v", iter, got, msg)
		}
	}
}

func TestCodecTruncationNeverPanics(t *testing.T) {
	full := mustEncode(t, &PrefillCommand{
		Group:     Epoched{ID: 3, Epoch: 9},
		Seq:       77,
		Requests:  []RequestSpec{{ID: 5, Len: 6}, {ID: 8, Len: 2}},
		Retention: []int32{0, 0, 0, 1, 1, 1, 2, 2},
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("Decode of %d/%d-byte prefix succeeded", cut, len(full))
		}
	}
	// Trailing garbage must also fail.
	if _, err := Decode(append(append([]byte(nil), full...), 0x01)); err == nil {
		t.Error("Decode with trailing byte succeeded")
	}
}

func TestCodecUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0x63}); err == nil {
		t.Fatal("unknown type accepted")
	} else if _, ok := err.(*ErrUnknownType); !ok {
		t.Fatalf("want ErrUnknownType, got %T: %v", err, err)
	}
}

func TestCodecMalformedRLE(t *testing.T) {
	// Hand-build a prefill whose RLE run overruns the declared length.
	b := []byte{byte(MsgPrefill)}
	b = appendEpoched(b, Epoched{ID: 1, Epoch: 1})
	b = appendUvarint(b, 1)                            // seq
	b = appendSpecs(b, []RequestSpec{{ID: 1, Len: 4}}) // 4 tokens
	b = appendUvarint(b, 4)                            // plan length 4
	b = append(b, planRLE)
	b = appendUvarint(b, 1) // one run
	b = appendUvarint(b, 0) // value 0
	b = appendUvarint(b, 9) // run length 9 > 4
	if _, err := Decode(b); err == nil {
		t.Fatal("overrunning RLE run accepted")
	}
	// Zero-length run.
	b = b[:len(b)-1]
	b = appendUvarint(b, 0)
	if _, err := Decode(b); err == nil {
		t.Fatal("zero-length RLE run accepted")
	}
}

func TestCodecRetentionRLEWins(t *testing.T) {
	// A scale-down plan (contiguous runs, Fig 7) must encode far smaller
	// than one varint per token.
	const tokens = 100_000
	plan := make([]int32, tokens)
	for t := range plan {
		if t >= tokens/2 {
			plan[t] = 1
		}
	}
	msg := &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Requests:  []RequestSpec{{ID: 1, Len: tokens}},
		Retention: plan,
	}
	b := mustEncode(t, msg)
	if len(b) > 64 {
		t.Errorf("contiguous 100K-token plan encoded to %d bytes, want <=64 (RLE)", len(b))
	}
	got := roundTrip(t, msg).(*PrefillCommand)
	if !reflect.DeepEqual(got.Retention, plan) {
		t.Error("RLE plan did not round trip")
	}
}

func TestCodecStripedPlanStaysRaw(t *testing.T) {
	// A striped plan alternates every token; RLE would double the size,
	// so the codec must pick raw — and still beat fixed 4-byte int32s.
	const tokens = 4096
	plan := make([]int32, tokens)
	for t := range plan {
		plan[t] = int32(t % 4)
	}
	msg := &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Requests:  []RequestSpec{{ID: 1, Len: tokens}},
		Retention: plan,
	}
	b := mustEncode(t, msg)
	if len(b) >= tokens*4 {
		t.Errorf("striped plan encoded to %d bytes, want < %d (4 bytes/token)", len(b), tokens*4)
	}
	got := roundTrip(t, msg).(*PrefillCommand)
	if !reflect.DeepEqual(got.Retention, plan) {
		t.Error("raw plan did not round trip")
	}
}

func TestCodecDeltaIDsCompact(t *testing.T) {
	// 64 sequential instance IDs should cost ~1 byte each after the
	// count, not a full varint of the absolute value.
	ids := make([]kvcache.InstanceID, 64)
	for i := range ids {
		ids[i] = kvcache.InstanceID(1000 + i)
	}
	cfg := &GroupConfig{Group: Epoched{ID: 1, Epoch: 1}, Instances: ids, TP: 1}
	b := mustEncode(t, cfg)
	if len(b) > 64+2*8 {
		t.Errorf("64 sequential IDs encoded to %d bytes", len(b))
	}
}

func TestValidateGroupConfig(t *testing.T) {
	base := func() *GroupConfig {
		return &GroupConfig{
			Group:     Epoched{ID: 1, Epoch: 1},
			Instances: []kvcache.InstanceID{0, 1},
			TP:        2,
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := base()
	c.Instances = nil
	if c.Validate() == nil {
		t.Error("empty membership accepted")
	}
	c = base()
	c.TP = 0
	if c.Validate() == nil {
		t.Error("TP=0 accepted")
	}
	c = base()
	c.Instances = []kvcache.InstanceID{0, 1, 0}
	if c.Validate() == nil {
		t.Error("duplicate member accepted")
	}
}

func TestValidatePrefill(t *testing.T) {
	ok := &PrefillCommand{
		Requests:  []RequestSpec{{ID: 1, Len: 3}},
		Retention: []int32{0, 1, 1},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid prefill rejected: %v", err)
	}
	bad := &PrefillCommand{Requests: []RequestSpec{{ID: 1, Len: 3}}, Retention: []int32{0, 1}}
	if bad.Validate(2) == nil {
		t.Error("short retention plan accepted")
	}
	bad = &PrefillCommand{Requests: []RequestSpec{{ID: 1, Len: 3}}, Retention: []int32{0, 1, 2}}
	if bad.Validate(2) == nil {
		t.Error("out-of-group retention accepted")
	}
	bad = &PrefillCommand{Requests: []RequestSpec{{ID: 1, Len: 0}}}
	if bad.Validate(2) == nil {
		t.Error("zero-length request accepted")
	}
	bad = &PrefillCommand{}
	if bad.Validate(2) == nil {
		t.Error("empty prefill accepted")
	}
}

func TestValidateDecode(t *testing.T) {
	ok := &DecodeCommand{
		Requests: []RequestSpec{{ID: 1, Len: 5}, {ID: 2, Len: 9}},
		Masters:  []int32{0, 1},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid decode rejected: %v", err)
	}
	bad := &DecodeCommand{Requests: []RequestSpec{{ID: 1, Len: 5}}, Masters: []int32{0, 1}}
	if bad.Validate(2) == nil {
		t.Error("master/request length mismatch accepted")
	}
	bad = &DecodeCommand{Requests: []RequestSpec{{ID: 1, Len: 5}}, Masters: []int32{4}}
	if bad.Validate(2) == nil {
		t.Error("out-of-group master accepted")
	}
}

func TestValidateScalePlan(t *testing.T) {
	ok := &ScalePlan{
		Group:    Epoched{ID: 1, Epoch: 3},
		Kind:     ScaleDown,
		NewEpoch: 4,
		Members:  []kvcache.InstanceID{0},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := *ok
	bad.NewEpoch = 3
	if bad.Validate() == nil {
		t.Error("non-advancing epoch accepted")
	}
	bad = *ok
	bad.Members = nil
	if bad.Validate() == nil {
		t.Error("empty membership accepted")
	}
	bad = *ok
	bad.Kind = ScaleKind(99)
	if bad.Validate() == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, tc := range []struct {
		v    fmt.Stringer
		want string
	}{
		{MsgPrefill, "prefill"},
		{MsgDecode, "decode"},
		{MsgScale, "scale"},
		{MsgGroupConfig, "group-config"},
		{MsgRelease, "release"},
		{MsgAck, "ack"},
		{MsgNak, "nak"},
		{NakUnknownGroup, "unknown-group"},
		{NakStaleEpoch, "stale-epoch"},
		{NakBadPayload, "bad-payload"},
		{ScaleDown, "scale-down"},
		{ScaleUp, "scale-up"},
		{Epoched{ID: 4, Epoch: 9}, "g4@9"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if MsgType(200).String() == "" || NakCode(200).String() == "" || ScaleKind(200).String() == "" {
		t.Error("unknown enum values must still print")
	}
}
