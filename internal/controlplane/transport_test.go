package controlplane

import (
	"io"
	"reflect"
	"sync"
	"testing"

	"loongserve/internal/kvcache"
)

func testConnPair(t *testing.T, kind string) (Conn, Conn, func()) {
	t.Helper()
	switch kind {
	case "pipe":
		a, b := Pipe()
		return a, b, func() { a.Close(); b.Close() }
	case "tcp":
		l, err := Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		type res struct {
			c   Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := l.Accept()
			ch <- res{c, err}
		}()
		a, err := Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		r := <-ch
		if r.err != nil {
			t.Fatalf("Accept: %v", r.err)
		}
		return a, r.c, func() { a.Close(); r.c.Close(); l.Close() }
	}
	t.Fatalf("unknown conn kind %q", kind)
	return nil, nil, nil
}

func TestTransportRoundTrip(t *testing.T) {
	for _, kind := range []string{"pipe", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			a, b, cleanup := testConnPair(t, kind)
			defer cleanup()

			want := &DecodeCommand{
				Group:    Epoched{ID: 2, Epoch: 8},
				Seq:      5,
				Requests: []RequestSpec{{ID: 10, Len: 100}, {ID: 12, Len: 50}},
				Masters:  []int32{1, 0},
			}
			if err := a.Send(want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if !reflect.DeepEqual(got, Message(want)) {
				t.Errorf("got %+v, want %+v", got, want)
			}

			// And the reverse direction.
			if err := b.Send(&Ack{Seq: 5, Instance: 1}); err != nil {
				t.Fatalf("reply Send: %v", err)
			}
			reply, err := a.Recv()
			if err != nil {
				t.Fatalf("reply Recv: %v", err)
			}
			if ack, ok := reply.(*Ack); !ok || ack.Seq != 5 {
				t.Errorf("reply = %+v, want Ack seq 5", reply)
			}
		})
	}
}

func TestTransportOrderingUnderBurst(t *testing.T) {
	for _, kind := range []string{"pipe", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			a, b, cleanup := testConnPair(t, kind)
			defer cleanup()

			const n = 200
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := a.Send(&Ack{Seq: uint64(i), Instance: 0}); err != nil {
						t.Errorf("Send %d: %v", i, err)
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				msg, err := b.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				ack := msg.(*Ack)
				if ack.Seq != uint64(i) {
					t.Fatalf("message %d arrived with seq %d: reordered", i, ack.Seq)
				}
			}
			wg.Wait()
		})
	}
}

func TestTransportLargeMessage(t *testing.T) {
	// A 500K-token retention plan (the paper's longest LV-Eval requests)
	// must cross the framed transport intact.
	plan := make([]int32, 500_000)
	for i := range plan {
		plan[i] = int32(i % 8)
	}
	msg := &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Requests:  []RequestSpec{{ID: 1, Len: len(plan)}},
		Retention: plan,
	}
	for _, kind := range []string{"pipe", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			a, b, cleanup := testConnPair(t, kind)
			defer cleanup()
			errc := make(chan error, 1)
			go func() { errc <- a.Send(msg) }()
			got, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if err := <-errc; err != nil {
				t.Fatalf("Send: %v", err)
			}
			pc := got.(*PrefillCommand)
			if len(pc.Retention) != len(plan) {
				t.Fatalf("retention came back with %d tokens, want %d", len(pc.Retention), len(plan))
			}
			for i := range plan {
				if pc.Retention[i] != plan[i] {
					t.Fatalf("retention[%d] = %d, want %d", i, pc.Retention[i], plan[i])
				}
			}
		})
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("Recv after peer close = %v, want io.EOF", err)
	}
	if err := a.Send(&Ack{}); err == nil {
		t.Error("Send on closed pipe succeeded")
	}
}

func TestPipeDrainsQueuedBeforeEOF(t *testing.T) {
	a, b := Pipe()
	if err := a.Send(&Ack{Seq: 9, Instance: 1}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	msg, err := b.Recv()
	if err != nil {
		t.Fatalf("queued message lost at close: %v", err)
	}
	if msg.(*Ack).Seq != 9 {
		t.Errorf("got seq %d, want 9", msg.(*Ack).Seq)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("second Recv = %v, want io.EOF", err)
	}
}

func TestNetConnCloseUnblocksRecv(t *testing.T) {
	a, b, cleanup := testConnPair(t, "tcp")
	defer cleanup()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv after close returned nil error")
	}
}

func TestNetConnConcurrentSendsDoNotInterleave(t *testing.T) {
	a, b, cleanup := testConnPair(t, "tcp")
	defer cleanup()

	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				msg := &ReleaseCommand{
					Group:    Epoched{ID: GroupID(g + 1), Epoch: 1},
					Seq:      uint64(i),
					Requests: []kvcache.RequestID{kvcache.RequestID(g*1000 + i)},
				}
				if err := a.Send(msg); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(g)
	}
	got := 0
	for got < 4*n {
		msg, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv after %d messages: %v", got, err)
		}
		rc, ok := msg.(*ReleaseCommand)
		if !ok {
			t.Fatalf("frame corrupted: got %T", msg)
		}
		wantReq := kvcache.RequestID(int(rc.Group.ID-1)*1000) + kvcache.RequestID(rc.Seq)
		if rc.Requests[0] != wantReq {
			t.Fatalf("frame corrupted: group %d seq %d carries request %d",
				rc.Group.ID, rc.Seq, rc.Requests[0])
		}
		got++
	}
	wg.Wait()
}
