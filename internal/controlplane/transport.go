package controlplane

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn is a reliable, ordered, message-oriented duplex channel between the
// global manager and one elastic instance (rank 0). The paper runs this
// over Ray RPC; tests and single-process deployments use Pipe, while
// multi-process deployments use the TCP framing below.
type Conn interface {
	// Send transmits one encoded message.
	Send(msg Message) error
	// Recv blocks for the next message. It returns io.EOF after Close.
	Recv() (Message, error)
	// Close releases the channel; pending Recvs unblock with io.EOF.
	Close() error
}

// maxFrame bounds a single message on the TCP transport. Even a 1M-token
// retention plan encodes in well under 8 MiB.
const maxFrame = 16 << 20

// --- in-process pipe -------------------------------------------------------

type pipeConn struct {
	out chan<- []byte
	in  <-chan []byte

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	peer   *pipeConn
}

// Pipe returns a connected pair of in-process Conns. Messages are encoded
// through the wire codec even in-process so tests exercise exactly the
// bytes the TCP transport would carry.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &pipeConn{out: ab, in: ba, done: make(chan struct{})}
	b := &pipeConn{out: ba, in: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *pipeConn) Send(msg Message) error {
	buf, err := Encode(nil, msg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("controlplane: send on closed pipe")
	}
	// Check the done channels before the blocking select: with buffer room
	// available, the three-way select below would otherwise pick the send
	// arm at random even when a close already happened, letting a message
	// slip into a pipe whose reader has given up.
	select {
	case <-c.done:
		return fmt.Errorf("controlplane: send on closed pipe")
	case <-c.peer.done:
		return fmt.Errorf("controlplane: peer closed")
	default:
	}
	select {
	case c.out <- buf:
		return nil
	case <-c.done:
		return fmt.Errorf("controlplane: send on closed pipe")
	case <-c.peer.done:
		return fmt.Errorf("controlplane: peer closed")
	}
}

func (c *pipeConn) Recv() (Message, error) {
	select {
	case buf := <-c.in:
		return Decode(buf)
	case <-c.done:
		// Drain anything already queued before reporting EOF.
		select {
		case buf := <-c.in:
			return Decode(buf)
		default:
			return nil, io.EOF
		}
	case <-c.peer.done:
		select {
		case buf := <-c.in:
			return Decode(buf)
		default:
			return nil, io.EOF
		}
	}
}

func (c *pipeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// --- framed TCP ------------------------------------------------------------

type netConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	buf []byte
}

// NewNetConn wraps a stream connection with uvarint length framing. It
// works over any net.Conn (TCP, Unix sockets).
func NewNetConn(c net.Conn) Conn {
	return &netConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// Dial connects to a listening instance endpoint.
func Dial(network, addr string) (Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewNetConn(c), nil
}

func (c *netConn) Send(msg Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// Reserve frame header space, encode in place, then patch the header.
	body, err := Encode(c.buf[:0], msg)
	if err != nil {
		return err
	}
	c.buf = body // keep capacity for reuse
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	if _, err := c.c.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = c.c.Write(body)
	return err
}

func (c *netConn) Recv() (Message, error) {
	size, err := binary.ReadUvarint(c.br)
	if err != nil {
		return nil, err
	}
	if size > maxFrame {
		return nil, fmt.Errorf("controlplane: frame of %d bytes exceeds limit %d", size, maxFrame)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(buf)
}

func (c *netConn) Close() error { return c.c.Close() }

// Listener accepts instance connections for a serving deployment.
type Listener struct {
	l net.Listener
}

// Listen opens a control-plane listener.
func Listen(network, addr string) (*Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() net.Addr { return l.l.Addr() }

// Accept waits for the next connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(c), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
