// Package controlplane implements the communication layer between the
// LoongServe global manager and its elastic instances (§6 of the paper).
//
// The paper's implementation uses Ray RPC from the Python global manager to
// instance rank 0, which re-broadcasts over NCCL to the remaining tensor
// parallel ranks; because ESP introduces extra per-iteration RPC parameters
// (group membership, token-granularity KV placement plans, master
// assignments), the message layout is "carefully designed to reduce extra
// serialization overhead" and instances "cache active ESP metadata".
//
// This package reproduces that control path with stdlib primitives:
//
//   - a compact varint/delta binary codec for every per-iteration message
//     (codec.go), with run-length encoding for token retention plans;
//   - an explicit ESP-metadata cache protocol: group membership is sent once
//     per epoch and later commands carry only a (group, epoch) reference,
//     with a NAK/resend path for cache misses (instance.go, manager.go);
//   - two interchangeable transports, an in-process pipe and framed TCP
//     (transport.go), so the same protocol runs in tests and across real
//     sockets.
package controlplane

import (
	"fmt"

	"loongserve/internal/kvcache"
)

// MsgType discriminates wire messages.
type MsgType uint8

// Wire message kinds, in protocol order.
const (
	// MsgGroupConfig installs or replaces a parallel group's membership
	// and epoch in the instance metadata cache.
	MsgGroupConfig MsgType = iota + 1
	// MsgPrefill starts a striped prefill for a batch, carrying the
	// token-granularity retention plan of the proactive scale-down (§4.1).
	MsgPrefill
	// MsgDecode runs one decoding iteration under the multi-master
	// assignment (§4.2).
	MsgDecode
	// MsgScale applies an elastic scaling plan between iterations (§4).
	MsgScale
	// MsgRelease frees a finished request's KV tokens.
	MsgRelease
	// MsgAck acknowledges a command.
	MsgAck
	// MsgNak rejects a command; Code says why (e.g. metadata cache miss).
	MsgNak
)

func (t MsgType) String() string {
	switch t {
	case MsgGroupConfig:
		return "group-config"
	case MsgPrefill:
		return "prefill"
	case MsgDecode:
		return "decode"
	case MsgScale:
		return "scale"
	case MsgRelease:
		return "release"
	case MsgAck:
		return "ack"
	case MsgNak:
		return "nak"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// NakCode classifies command rejections.
type NakCode uint8

// Rejection reasons.
const (
	// NakUnknownGroup: the command referenced a (group, epoch) the
	// instance has not cached; the manager must resend the GroupConfig.
	NakUnknownGroup NakCode = iota + 1
	// NakStaleEpoch: the command's epoch is older than the cached one.
	NakStaleEpoch
	// NakBadPayload: the payload failed validation.
	NakBadPayload
)

func (c NakCode) String() string {
	switch c {
	case NakUnknownGroup:
		return "unknown-group"
	case NakStaleEpoch:
		return "stale-epoch"
	case NakBadPayload:
		return "bad-payload"
	}
	return fmt.Sprintf("nakcode(%d)", uint8(c))
}

// GroupID names a parallel group. IDs are allocated by the global manager
// and reused only after the group dissolves.
type GroupID uint32

// Epoch versions a group's membership. Every elastic scaling operation that
// changes membership bumps the epoch, invalidating cached metadata.
type Epoch uint32

// GroupConfig is the ESP metadata instances cache: the full membership of a
// parallel group at one epoch. Sent only when the epoch changes; all other
// commands reference it by (Group, Epoch).
type GroupConfig struct {
	Group Epoched
	Seq   uint64
	// Instances is the ordered ring membership (§2.3 Figure 1): instance
	// i sends KV tensors to instance (i+1) mod len during striped prefill.
	Instances []kvcache.InstanceID
	// TP is the tensor-parallel degree inside each instance; the wire
	// protocol carries it so rank-0 can fan out to TP-1 local ranks.
	TP int
}

// Epoched is the (group, epoch) reference carried by every group-scoped
// command.
type Epoched struct {
	ID    GroupID
	Epoch Epoch
}

func (e Epoched) String() string { return fmt.Sprintf("g%d@%d", e.ID, e.Epoch) }

// RequestSpec describes one request inside a batch command.
type RequestSpec struct {
	ID  kvcache.RequestID
	Len int // input length (prefill) or resident KV length (decode)
}

// PrefillCommand starts one prefill iteration on a group. Retention is the
// token-granularity proactive scale-down plan: Retention[t] is the position
// (index into the group's instance ring) that must retain token t's KV
// tensors while they circulate (§4.1 Figure 7). An empty plan means uniform
// striped retention (no scale-down).
type PrefillCommand struct {
	Group     Epoched
	Seq       uint64
	Requests  []RequestSpec
	Retention []int32
}

// DecodeCommand runs one decoding iteration. Masters[i] is the ring
// position of the master instance that owns Requests[i] — the instance that
// stores its newly generated KV token and runs its local layers (§4.2).
type DecodeCommand struct {
	Group    Epoched
	Seq      uint64
	Requests []RequestSpec
	Masters  []int32
}

// ScaleKind discriminates elastic scaling plans.
type ScaleKind uint8

// Scaling plan kinds.
const (
	// ScaleDown shrinks the group to a member prefix/subset; KV tensors
	// are already in place thanks to proactive migration, so the plan
	// carries only the survivor set.
	ScaleDown ScaleKind = iota + 1
	// ScaleUp adds instances to the group with no KV migration (§4.2).
	ScaleUp
)

func (k ScaleKind) String() string {
	switch k {
	case ScaleDown:
		return "scale-down"
	case ScaleUp:
		return "scale-up"
	}
	return fmt.Sprintf("scalekind(%d)", uint8(k))
}

// ScalePlan changes a group's membership between iterations. It implicitly
// bumps the group epoch to NewEpoch; instances update their metadata cache
// in place, so no GroupConfig resend is needed for the common case.
type ScalePlan struct {
	Group    Epoched
	Seq      uint64
	Kind     ScaleKind
	NewEpoch Epoch
	// Members is the full post-scaling membership in ring order.
	Members []kvcache.InstanceID
}

// ReleaseCommand frees the KV tokens a set of finished requests hold on the
// receiving instance.
type ReleaseCommand struct {
	Group    Epoched
	Seq      uint64
	Requests []kvcache.RequestID
}

// Ack acknowledges Seq from one instance.
type Ack struct {
	Seq      uint64
	Instance kvcache.InstanceID
}

// Nak rejects Seq from one instance with a reason.
type Nak struct {
	Seq      uint64
	Instance kvcache.InstanceID
	Code     NakCode
	Group    Epoched // the reference that missed, for cache-miss recovery
}

// Message is the union of all wire messages.
type Message interface {
	// Type returns the wire discriminator.
	Type() MsgType
}

// Type implements Message.
func (*GroupConfig) Type() MsgType { return MsgGroupConfig }

// Type implements Message.
func (*PrefillCommand) Type() MsgType { return MsgPrefill }

// Type implements Message.
func (*DecodeCommand) Type() MsgType { return MsgDecode }

// Type implements Message.
func (*ScalePlan) Type() MsgType { return MsgScale }

// Type implements Message.
func (*ReleaseCommand) Type() MsgType { return MsgRelease }

// Type implements Message.
func (*Ack) Type() MsgType { return MsgAck }

// Type implements Message.
func (*Nak) Type() MsgType { return MsgNak }

// Validate checks structural invariants shared by the codec and handlers.
func (c *GroupConfig) Validate() error {
	if len(c.Instances) == 0 {
		return fmt.Errorf("controlplane: group %v has no instances", c.Group)
	}
	if c.TP < 1 {
		return fmt.Errorf("controlplane: group %v has TP=%d < 1", c.Group, c.TP)
	}
	seen := make(map[kvcache.InstanceID]bool, len(c.Instances))
	for _, id := range c.Instances {
		if seen[id] {
			return fmt.Errorf("controlplane: group %v lists instance %d twice", c.Group, id)
		}
		seen[id] = true
	}
	return nil
}

// Validate checks the retention plan targets ring positions that exist.
func (p *PrefillCommand) Validate(groupSize int) error {
	if len(p.Requests) == 0 {
		return fmt.Errorf("controlplane: prefill %d has no requests", p.Seq)
	}
	total := 0
	for _, r := range p.Requests {
		if r.Len <= 0 {
			return fmt.Errorf("controlplane: prefill %d request %d has len %d", p.Seq, r.ID, r.Len)
		}
		total += r.Len
	}
	if len(p.Retention) != 0 && len(p.Retention) != total {
		return fmt.Errorf("controlplane: prefill %d retention covers %d tokens, batch has %d",
			p.Seq, len(p.Retention), total)
	}
	for t, pos := range p.Retention {
		if pos < 0 || int(pos) >= groupSize {
			return fmt.Errorf("controlplane: prefill %d token %d retained at position %d outside group of %d",
				p.Seq, t, pos, groupSize)
		}
	}
	return nil
}

// Validate checks master positions are inside the group.
func (d *DecodeCommand) Validate(groupSize int) error {
	if len(d.Requests) == 0 {
		return fmt.Errorf("controlplane: decode %d has no requests", d.Seq)
	}
	if len(d.Masters) != len(d.Requests) {
		return fmt.Errorf("controlplane: decode %d has %d masters for %d requests",
			d.Seq, len(d.Masters), len(d.Requests))
	}
	for i, m := range d.Masters {
		if m < 0 || int(m) >= groupSize {
			return fmt.Errorf("controlplane: decode %d request %d mastered at position %d outside group of %d",
				d.Seq, d.Requests[i].ID, m, groupSize)
		}
	}
	return nil
}

// Validate checks the plan's shape against its kind.
func (s *ScalePlan) Validate() error {
	if len(s.Members) == 0 {
		return fmt.Errorf("controlplane: scale plan %d leaves group %v empty", s.Seq, s.Group)
	}
	if s.NewEpoch <= s.Group.Epoch {
		return fmt.Errorf("controlplane: scale plan %d does not advance epoch (%d -> %d)",
			s.Seq, s.Group.Epoch, s.NewEpoch)
	}
	switch s.Kind {
	case ScaleDown, ScaleUp:
		return nil
	}
	return fmt.Errorf("controlplane: scale plan %d has unknown kind %d", s.Seq, uint8(s.Kind))
}
