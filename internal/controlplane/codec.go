package controlplane

import (
	"encoding/binary"
	"fmt"
	"math"

	"loongserve/internal/kvcache"
)

// Wire format. Every message is
//
//	uvarint(type) || payload
//
// Payload fields are varints (zig-zag for signed values), ordered as in the
// struct definitions. Sequences of instance or request IDs are
// delta-encoded: ring orderings and FCFS batches are near-sorted, so
// consecutive deltas are small and fit in one varint byte. Retention plans
// choose between raw and run-length encoding per message, whichever is
// smaller: uniform striped plans alternate positions (raw wins), while
// scale-down plans hold long per-instance runs (RLE wins, often by >10x).
//
// The codec never allocates intermediate reflection state (contrast
// encoding/gob, which writes type descriptors per stream); this is the
// "carefully designed RPC parameters" behaviour from §6.

// retention plan encodings (first payload byte of the plan section).
const (
	planRaw uint8 = iota
	planRLE
)

var (
	errShort = fmt.Errorf("controlplane: truncated message")
)

// ErrUnknownType reports an unrecognized wire discriminator.
type ErrUnknownType struct{ T uint64 }

func (e *ErrUnknownType) Error() string {
	return fmt.Sprintf("controlplane: unknown message type %d", e.T)
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func consumeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, b[n:], nil
}

func consumeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, b[n:], nil
}

// appendDeltaIDs writes len(ids) then zig-zag deltas between consecutive
// values.
func appendDeltaIDs(b []byte, ids []kvcache.InstanceID) []byte {
	b = appendUvarint(b, uint64(len(ids)))
	prev := int64(0)
	for _, id := range ids {
		b = appendVarint(b, int64(id)-prev)
		prev = int64(id)
	}
	return b
}

func consumeDeltaIDs(b []byte) ([]kvcache.InstanceID, []byte, error) {
	n, b, err := consumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))+1 { // each ID needs >=1 byte; +1 tolerates n==0
		return nil, nil, errShort
	}
	ids := make([]kvcache.InstanceID, n)
	prev := int64(0)
	for i := range ids {
		var d int64
		d, b, err = consumeVarint(b)
		if err != nil {
			return nil, nil, err
		}
		prev += d
		ids[i] = kvcache.InstanceID(prev)
	}
	return ids, b, nil
}

// appendDeltaReqIDs is appendDeltaIDs for request IDs.
func appendDeltaReqIDs(b []byte, ids []kvcache.RequestID) []byte {
	b = appendUvarint(b, uint64(len(ids)))
	prev := int64(0)
	for _, id := range ids {
		b = appendVarint(b, int64(id)-prev)
		prev = int64(id)
	}
	return b
}

func consumeDeltaReqIDs(b []byte) ([]kvcache.RequestID, []byte, error) {
	n, b, err := consumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))+1 {
		return nil, nil, errShort
	}
	ids := make([]kvcache.RequestID, n)
	prev := int64(0)
	for i := range ids {
		var d int64
		d, b, err = consumeVarint(b)
		if err != nil {
			return nil, nil, err
		}
		prev += d
		ids[i] = kvcache.RequestID(prev)
	}
	return ids, b, nil
}

func appendSpecs(b []byte, specs []RequestSpec) []byte {
	b = appendUvarint(b, uint64(len(specs)))
	prevID := int64(0)
	for _, s := range specs {
		b = appendVarint(b, int64(s.ID)-prevID)
		prevID = int64(s.ID)
		b = appendUvarint(b, uint64(s.Len))
	}
	return b
}

func consumeSpecs(b []byte) ([]RequestSpec, []byte, error) {
	n, b, err := consumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b))/2+1 { // each spec needs >=2 bytes
		return nil, nil, errShort
	}
	specs := make([]RequestSpec, n)
	prevID := int64(0)
	for i := range specs {
		var d int64
		d, b, err = consumeVarint(b)
		if err != nil {
			return nil, nil, err
		}
		prevID += d
		specs[i].ID = kvcache.RequestID(prevID)
		var l uint64
		l, b, err = consumeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if l > math.MaxInt32 {
			return nil, nil, fmt.Errorf("controlplane: request length %d overflows", l)
		}
		specs[i].Len = int(l)
	}
	return specs, b, nil
}

// appendPlan writes a []int32 position plan, choosing raw vs RLE.
func appendPlan(b []byte, plan []int32) []byte {
	b = appendUvarint(b, uint64(len(plan)))
	if len(plan) == 0 {
		return b
	}
	// Count runs to decide the encoding without building both.
	runs := 1
	for i := 1; i < len(plan); i++ {
		if plan[i] != plan[i-1] {
			runs++
		}
	}
	// RLE spends ~2 varints per run; raw spends 1 per element.
	if runs*2 < len(plan) {
		b = append(b, planRLE)
		b = appendUvarint(b, uint64(runs))
		start := 0
		for i := 1; i <= len(plan); i++ {
			if i == len(plan) || plan[i] != plan[start] {
				b = appendUvarint(b, uint64(plan[start]))
				b = appendUvarint(b, uint64(i-start))
				start = i
			}
		}
		return b
	}
	b = append(b, planRaw)
	for _, v := range plan {
		b = appendUvarint(b, uint64(v))
	}
	return b
}

func consumePlan(b []byte) ([]int32, []byte, error) {
	n, b, err := consumeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if n > math.MaxInt32 {
		return nil, nil, fmt.Errorf("controlplane: plan length %d overflows", n)
	}
	if len(b) == 0 {
		return nil, nil, errShort
	}
	mode := b[0]
	b = b[1:]
	plan := make([]int32, 0, n)
	switch mode {
	case planRaw:
		if n > uint64(len(b)) {
			return nil, nil, errShort
		}
		for i := uint64(0); i < n; i++ {
			var v uint64
			v, b, err = consumeUvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if v > math.MaxInt32 {
				return nil, nil, fmt.Errorf("controlplane: plan value %d overflows", v)
			}
			plan = append(plan, int32(v))
		}
	case planRLE:
		var runs uint64
		runs, b, err = consumeUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if runs > uint64(len(b))/2+1 {
			return nil, nil, errShort
		}
		for i := uint64(0); i < runs; i++ {
			var v, l uint64
			v, b, err = consumeUvarint(b)
			if err != nil {
				return nil, nil, err
			}
			l, b, err = consumeUvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if v > math.MaxInt32 || l == 0 || uint64(len(plan))+l > n {
				return nil, nil, fmt.Errorf("controlplane: malformed RLE run (val=%d len=%d have=%d want=%d)",
					v, l, len(plan), n)
			}
			for j := uint64(0); j < l; j++ {
				plan = append(plan, int32(v))
			}
		}
	default:
		return nil, nil, fmt.Errorf("controlplane: unknown plan encoding %d", mode)
	}
	if uint64(len(plan)) != n {
		return nil, nil, fmt.Errorf("controlplane: plan decoded %d of %d values", len(plan), n)
	}
	return plan, b, nil
}

func appendEpoched(b []byte, e Epoched) []byte {
	b = appendUvarint(b, uint64(e.ID))
	b = appendUvarint(b, uint64(e.Epoch))
	return b
}

func consumeEpoched(b []byte) (Epoched, []byte, error) {
	id, b, err := consumeUvarint(b)
	if err != nil {
		return Epoched{}, nil, err
	}
	ep, b, err := consumeUvarint(b)
	if err != nil {
		return Epoched{}, nil, err
	}
	if id > math.MaxUint32 || ep > math.MaxUint32 {
		return Epoched{}, nil, fmt.Errorf("controlplane: group reference (%d,%d) overflows", id, ep)
	}
	return Epoched{ID: GroupID(id), Epoch: Epoch(ep)}, b, nil
}

// Encode serializes msg into the wire format, appending to dst (which may
// be nil).
func Encode(dst []byte, msg Message) ([]byte, error) {
	b := appendUvarint(dst, uint64(msg.Type()))
	switch m := msg.(type) {
	case *GroupConfig:
		b = appendEpoched(b, m.Group)
		b = appendUvarint(b, m.Seq)
		b = appendDeltaIDs(b, m.Instances)
		b = appendUvarint(b, uint64(m.TP))
	case *PrefillCommand:
		b = appendEpoched(b, m.Group)
		b = appendUvarint(b, m.Seq)
		b = appendSpecs(b, m.Requests)
		b = appendPlan(b, m.Retention)
	case *DecodeCommand:
		b = appendEpoched(b, m.Group)
		b = appendUvarint(b, m.Seq)
		b = appendSpecs(b, m.Requests)
		b = appendPlan(b, m.Masters)
	case *ScalePlan:
		b = appendEpoched(b, m.Group)
		b = appendUvarint(b, m.Seq)
		b = append(b, uint8(m.Kind))
		b = appendUvarint(b, uint64(m.NewEpoch))
		b = appendDeltaIDs(b, m.Members)
	case *ReleaseCommand:
		b = appendEpoched(b, m.Group)
		b = appendUvarint(b, m.Seq)
		b = appendDeltaReqIDs(b, m.Requests)
	case *Ack:
		b = appendUvarint(b, m.Seq)
		b = appendVarint(b, int64(m.Instance))
	case *Nak:
		b = appendUvarint(b, m.Seq)
		b = appendVarint(b, int64(m.Instance))
		b = append(b, uint8(m.Code))
		b = appendEpoched(b, m.Group)
	default:
		return nil, fmt.Errorf("controlplane: cannot encode %T", msg)
	}
	return b, nil
}

// Decode parses one message from b. The whole slice must be consumed;
// trailing bytes are a framing error.
func Decode(b []byte) (Message, error) {
	t, b, err := consumeUvarint(b)
	if err != nil {
		return nil, err
	}
	var msg Message
	switch MsgType(t) {
	case MsgGroupConfig:
		m := &GroupConfig{}
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if m.Instances, b, err = consumeDeltaIDs(b); err != nil {
			return nil, err
		}
		var tp uint64
		if tp, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if tp > math.MaxInt32 {
			return nil, fmt.Errorf("controlplane: TP %d overflows", tp)
		}
		m.TP = int(tp)
		msg = m
	case MsgPrefill:
		m := &PrefillCommand{}
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if m.Requests, b, err = consumeSpecs(b); err != nil {
			return nil, err
		}
		if m.Retention, b, err = consumePlan(b); err != nil {
			return nil, err
		}
		msg = m
	case MsgDecode:
		m := &DecodeCommand{}
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if m.Requests, b, err = consumeSpecs(b); err != nil {
			return nil, err
		}
		if m.Masters, b, err = consumePlan(b); err != nil {
			return nil, err
		}
		msg = m
	case MsgScale:
		m := &ScalePlan{}
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if len(b) == 0 {
			return nil, errShort
		}
		m.Kind = ScaleKind(b[0])
		b = b[1:]
		var ep uint64
		if ep, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if ep > math.MaxUint32 {
			return nil, fmt.Errorf("controlplane: epoch %d overflows", ep)
		}
		m.NewEpoch = Epoch(ep)
		if m.Members, b, err = consumeDeltaIDs(b); err != nil {
			return nil, err
		}
		msg = m
	case MsgRelease:
		m := &ReleaseCommand{}
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		if m.Requests, b, err = consumeDeltaReqIDs(b); err != nil {
			return nil, err
		}
		msg = m
	case MsgAck:
		m := &Ack{}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		var id int64
		if id, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		m.Instance = kvcache.InstanceID(id)
		msg = m
	case MsgNak:
		m := &Nak{}
		if m.Seq, b, err = consumeUvarint(b); err != nil {
			return nil, err
		}
		var id int64
		if id, b, err = consumeVarint(b); err != nil {
			return nil, err
		}
		m.Instance = kvcache.InstanceID(id)
		if len(b) == 0 {
			return nil, errShort
		}
		m.Code = NakCode(b[0])
		b = b[1:]
		if m.Group, b, err = consumeEpoched(b); err != nil {
			return nil, err
		}
		msg = m
	default:
		return nil, &ErrUnknownType{T: t}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("controlplane: %d trailing bytes after %v", len(b), msg.Type())
	}
	return msg, nil
}
