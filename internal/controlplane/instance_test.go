package controlplane

import (
	"testing"

	"loongserve/internal/kvcache"
)

// rawInstance runs an InstanceServer over a pipe and hands the test the
// manager-side conn for scripted, message-level protocol checks that the
// Manager's validation would otherwise never let onto the wire.
func rawInstance(t *testing.T, id kvcache.InstanceID, h Handler) Conn {
	t.Helper()
	mc, ic := Pipe()
	srv := NewInstanceServer(id, ic, h)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		mc.Close()
		if err := <-done; err != nil {
			t.Errorf("instance serve: %v", err)
		}
	})
	return mc
}

func rpc(t *testing.T, c Conn, msg Message) Message {
	t.Helper()
	if err := c.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return reply
}

func wantNak(t *testing.T, reply Message, code NakCode) {
	t.Helper()
	nak, ok := reply.(*Nak)
	if !ok {
		t.Fatalf("reply = %T %+v, want Nak", reply, reply)
	}
	if nak.Code != code {
		t.Fatalf("nak code = %v, want %v", nak.Code, code)
	}
}

func TestInstanceNakUnknownGroup(t *testing.T) {
	c := rawInstance(t, 1, NopHandler{})
	reply := rpc(t, c, &DecodeCommand{
		Group:    Epoched{ID: 9, Epoch: 1},
		Seq:      1,
		Requests: []RequestSpec{{ID: 1, Len: 5}},
		Masters:  []int32{0},
	})
	wantNak(t, reply, NakUnknownGroup)
}

func TestInstanceNakStaleEpoch(t *testing.T) {
	c := rawInstance(t, 1, NopHandler{})
	cfg := &GroupConfig{
		Group:     Epoched{ID: 1, Epoch: 5},
		Seq:       1,
		Instances: []kvcache.InstanceID{1},
		TP:        1,
	}
	if _, ok := rpc(t, c, cfg).(*Ack); !ok {
		t.Fatal("config not acked")
	}
	// A command referencing an older epoch is stale.
	reply := rpc(t, c, &DecodeCommand{
		Group:    Epoched{ID: 1, Epoch: 4},
		Seq:      2,
		Requests: []RequestSpec{{ID: 1, Len: 5}},
		Masters:  []int32{0},
	})
	wantNak(t, reply, NakStaleEpoch)
	// A config older than the cached one is rejected too.
	old := &GroupConfig{
		Group:     Epoched{ID: 1, Epoch: 3},
		Seq:       3,
		Instances: []kvcache.InstanceID{1},
		TP:        1,
	}
	wantNak(t, rpc(t, c, old), NakStaleEpoch)
	// A command from the future looks like a cache miss (the manager
	// must resend the config).
	future := &DecodeCommand{
		Group:    Epoched{ID: 1, Epoch: 9},
		Seq:      4,
		Requests: []RequestSpec{{ID: 1, Len: 5}},
		Masters:  []int32{0},
	}
	wantNak(t, rpc(t, c, future), NakUnknownGroup)
}

func TestInstanceNakBadPayload(t *testing.T) {
	c := rawInstance(t, 1, NopHandler{})
	cfg := &GroupConfig{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Instances: []kvcache.InstanceID{1, 2},
		TP:        1,
	}
	if _, ok := rpc(t, c, cfg).(*Ack); !ok {
		t.Fatal("config not acked")
	}
	// Master position outside the 2-instance group.
	reply := rpc(t, c, &DecodeCommand{
		Group:    Epoched{ID: 1, Epoch: 1},
		Seq:      2,
		Requests: []RequestSpec{{ID: 1, Len: 5}},
		Masters:  []int32{7},
	})
	wantNak(t, reply, NakBadPayload)
	// Retention plan out of range.
	reply = rpc(t, c, &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       3,
		Requests:  []RequestSpec{{ID: 1, Len: 2}},
		Retention: []int32{0, 9},
	})
	wantNak(t, reply, NakBadPayload)
	// Malformed config.
	reply = rpc(t, c, &GroupConfig{Group: Epoched{ID: 2, Epoch: 1}, Seq: 4, TP: 0,
		Instances: []kvcache.InstanceID{1}})
	wantNak(t, reply, NakBadPayload)
	// Scale plan that does not advance the epoch.
	reply = rpc(t, c, &ScalePlan{
		Group: Epoched{ID: 1, Epoch: 1}, Seq: 5, Kind: ScaleDown,
		NewEpoch: 1, Members: []kvcache.InstanceID{1},
	})
	wantNak(t, reply, NakBadPayload)
}

// failingHandler rejects everything, exercising the handler-error NAK.
type failingHandler struct{ NopHandler }

func (failingHandler) Prefill(*GroupConfig, *PrefillCommand) error {
	return errTest
}

var errTest = &ErrUnknownType{T: 0} // any error value

func TestInstanceHandlerErrorBecomesNak(t *testing.T) {
	c := rawInstance(t, 1, failingHandler{})
	cfg := &GroupConfig{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Instances: []kvcache.InstanceID{1},
		TP:        1,
	}
	if _, ok := rpc(t, c, cfg).(*Ack); !ok {
		t.Fatal("config not acked")
	}
	reply := rpc(t, c, &PrefillCommand{
		Group:    Epoched{ID: 1, Epoch: 1},
		Seq:      2,
		Requests: []RequestSpec{{ID: 1, Len: 4}},
	})
	wantNak(t, reply, NakBadPayload)
}

func TestNopHandlerAcceptsEverything(t *testing.T) {
	h := NopHandler{}
	if h.Prefill(nil, nil) != nil || h.Decode(nil, nil) != nil ||
		h.Scale(nil, nil) != nil || h.Release(nil, nil) != nil {
		t.Error("NopHandler returned an error")
	}
}

func TestMirrorCounts(t *testing.T) {
	tc := newTestCluster(t, 2, 1000)
	if err := tc.m.CreateGroup(1, ids(0, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Prefill(1, []RequestSpec{{ID: 1, Len: 4}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Decode(1, []RequestSpec{{ID: 1, Len: 4}}, []int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Scale(1, ScaleDown, ids(0)); err != nil {
		t.Fatal(err)
	}
	if err := tc.m.Release(1, []kvcache.RequestID{1}); err != nil {
		t.Fatal(err)
	}
	p, d, s, r := tc.mirrors[0].Counts()
	if p != 1 || d != 1 || s != 1 || r != 1 {
		t.Errorf("counts = %d %d %d %d, want 1 1 1 1", p, d, s, r)
	}
}

func TestManagerGroupAndDissolve(t *testing.T) {
	tc := newTestCluster(t, 2, 100)
	if err := tc.m.CreateGroup(3, ids(0, 1), 2); err != nil {
		t.Fatal(err)
	}
	cfg := tc.m.Group(3)
	if cfg == nil || cfg.TP != 2 || len(cfg.Instances) != 2 {
		t.Fatalf("Group(3) = %+v", cfg)
	}
	if tc.m.Group(99) != nil {
		t.Error("unknown group returned a config")
	}
	tc.m.DissolveGroup(3)
	if tc.m.Group(3) != nil {
		t.Error("dissolved group still visible")
	}
	if err := tc.m.Prefill(3, []RequestSpec{{ID: 1, Len: 1}}, nil); err == nil {
		t.Error("command on dissolved group accepted")
	}
}

func TestErrUnknownTypeMessage(t *testing.T) {
	err := &ErrUnknownType{T: 42}
	if err.Error() == "" {
		t.Error("empty error message")
	}
}

func BenchmarkCodecEncodePrefill100K(b *testing.B) {
	plan := make([]int32, 100_000)
	for i := 50_000; i < len(plan); i++ {
		plan[i] = 1
	}
	msg := &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Requests:  []RequestSpec{{ID: 1, Len: len(plan)}},
		Retention: plan,
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkCodecDecodePrefill100K(b *testing.B) {
	plan := make([]int32, 100_000)
	for i := 50_000; i < len(plan); i++ {
		plan[i] = 1
	}
	msg := &PrefillCommand{
		Group:     Epoched{ID: 1, Epoch: 1},
		Seq:       1,
		Requests:  []RequestSpec{{ID: 1, Len: len(plan)}},
		Retention: plan,
	}
	buf, err := Encode(nil, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeCommandRoundTrip(b *testing.B) {
	reqs := make([]RequestSpec, 64)
	masters := make([]int32, 64)
	for i := range reqs {
		reqs[i] = RequestSpec{ID: kvcache.RequestID(1000 + i), Len: 4000 + i}
		masters[i] = int32(i % 8)
	}
	msg := &DecodeCommand{Group: Epoched{ID: 1, Epoch: 1}, Seq: 1, Requests: reqs, Masters: masters}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := Encode(nil, msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
