package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// eventJSON is the JSONL wire form of an Event. Field order is the struct
// order, so the encoding is deterministic.
type eventJSON struct {
	AtNS    int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Replica int    `json:"replica"`
	Group   int    `json:"group,omitempty"`
	Session int64  `json:"session,omitempty"`
	Request int64  `json:"request,omitempty"`
	Tokens  int    `json:"tokens,omitempty"`
	A       int64  `json:"a,omitempty"`
	B       int64  `json:"b,omitempty"`
	Label   string `json:"label,omitempty"`
}

// WriteEventsJSONL streams the event list as one JSON object per line.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(eventJSON{
			AtNS:    int64(e.At),
			Kind:    e.Kind.String(),
			Replica: e.Replica,
			Group:   e.Group,
			Session: e.Session,
			Request: e.Request,
			Tokens:  e.Tokens,
			A:       e.A,
			B:       e.B,
			Label:   e.Label,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sampleJSON is the JSONL wire form of a per-replica Sample.
type sampleJSON struct {
	AtNS        int64   `json:"at_ns"`
	Replica     int     `json:"replica"`
	State       int     `json:"state"`
	QueueDepth  int     `json:"queue_depth"`
	Queued      int     `json:"queued"`
	OutTokens   int64   `json:"out_tokens"`
	KVTokens    int64   `json:"kv_tokens"`
	CacheUsed   int64   `json:"cache_used"`
	HitTokens   int64   `json:"hit_tokens"`
	InputTokens int64   `json:"input_tokens"`
	CostUnits   float64 `json:"cost_units"`
}

// fleetSampleJSON is the JSONL wire form of a FleetSample; the "fleet"
// marker field distinguishes the two record types in one stream.
type fleetSampleJSON struct {
	AtNS            int64   `json:"at_ns"`
	Fleet           bool    `json:"fleet"`
	Active          int     `json:"active"`
	Warming         int     `json:"warming"`
	Draining        int     `json:"draining"`
	Retired         int     `json:"retired"`
	OutstandingReqs int     `json:"outstanding_reqs"`
	CostUnits       float64 `json:"cost_units"`
}

// WriteSamplesJSONL streams the sampler's retained time series as JSONL:
// per-replica samples first, then fleet samples (marked "fleet":true).
func WriteSamplesJSONL(w io.Writer, s *Sampler) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sm := range s.Samples() {
		if err := enc.Encode(sampleJSON{
			AtNS:        int64(sm.At),
			Replica:     sm.Replica,
			State:       sm.State,
			QueueDepth:  sm.QueueDepth,
			Queued:      sm.Queued,
			OutTokens:   sm.OutTokens,
			KVTokens:    sm.KVTokens,
			CacheUsed:   sm.CacheUsed,
			HitTokens:   sm.HitTokens,
			InputTokens: sm.InputTokens,
			CostUnits:   sm.CostUnits,
		}); err != nil {
			return err
		}
	}
	for _, sm := range s.FleetSamples() {
		if err := enc.Encode(fleetSampleJSON{
			AtNS:            int64(sm.At),
			Fleet:           true,
			Active:          sm.Active,
			Warming:         sm.Warming,
			Draining:        sm.Draining,
			Retired:         sm.Retired,
			OutstandingReqs: sm.OutstandingReqs,
			CostUnits:       sm.CostUnits,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
