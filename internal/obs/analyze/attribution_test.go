package analyze

import (
	"strings"
	"testing"
	"time"

	"loongserve/internal/obs"
	"loongserve/internal/simevent"
)

func at(s float64) simevent.Time { return simevent.Time(float64(time.Second) * s) }

// chain builds the minimal well-formed lifecycle for one request:
// enqueue(t0) → route(t1) → lookup(t2) → finish(t4, first token t3).
func chain(req, session int64, rep int, t0, t1, t2, t3, t4 float64) []obs.Event {
	return []obs.Event{
		{At: at(t0), Kind: obs.KindEnqueue, Replica: -1, Session: session, Request: req, Tokens: 1000, A: 100, B: int64(10 * time.Second)},
		{At: at(t1), Kind: obs.KindRoute, Replica: rep, Session: session, Request: req, Label: "test"},
		{At: at(t2), Kind: obs.KindCacheLookup, Replica: rep, Session: session, Request: req, Tokens: 200, A: 1000},
		{At: at(t4), Kind: obs.KindFinish, Replica: rep, Session: session, Request: req, Tokens: 100, A: int64(at(t3)), B: int64(at(t0))},
	}
}

func TestAttributePhasesPartitionE2E(t *testing.T) {
	// Plain route: enqueue 0, route 0.5, deliver 0.5 (no migration),
	// first token 2.0, finish 5.0.
	ev := chain(1, 7, 2, 0, 0.5, 0.5, 2.0, 5.0)
	rep := Attribute(ev)
	if len(rep.Requests) != 1 || rep.Incomplete != 0 {
		t.Fatalf("got %d attributions, %d incomplete", len(rep.Requests), rep.Incomplete)
	}
	a := rep.Requests[0]
	want := map[Phase]time.Duration{
		PhaseQueue:       500 * time.Millisecond,
		PhaseReenqueue:   0,
		PhaseMigration:   0,
		PhasePrefillWait: 0,
		PhasePrefill:     1500 * time.Millisecond,
		PhaseDecode:      3 * time.Second,
	}
	var sum time.Duration
	for p, d := range want {
		if a.Phases[p] != d {
			t.Errorf("%s = %v, want %v", p, a.Phases[p], d)
		}
		sum += d
	}
	if a.E2E() != 5*time.Second || sum != a.E2E() {
		t.Fatalf("E2E %v, phase sum %v — must both be 5s", a.E2E(), sum)
	}
	if a.Dominant() != PhaseDecode {
		t.Fatalf("dominant = %s, want decode", a.Dominant())
	}
	if a.InputLen != 1000 || a.OutputLen != 100 || a.HitTokens != 200 || a.Enqueues != 1 {
		t.Fatalf("unexpected attribution fields: %+v", a)
	}
}

func TestAttributeMigrationStallAndPrefillWait(t *testing.T) {
	// Routed migration: route at 1.0, delivery at 3.0 (2s link stall),
	// engine prefill-start at 3.5, first token 4.0, finish 6.0.
	ev := []obs.Event{
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Session: 9, Request: 4, Tokens: 512, A: 64},
		{At: at(1.0), Kind: obs.KindRoute, Replica: 1, Session: 9, Request: 4, A: 0},
		{At: at(1.0), Kind: obs.KindMigrate, Replica: 0, Session: 9, Tokens: 0, A: 1, Label: "route"},
		{At: at(3.0), Kind: obs.KindCacheLookup, Replica: 1, Session: 9, Request: 4, Tokens: 0, A: 512},
		{At: at(3.5), Kind: obs.KindPrefillStart, Replica: 1, Group: 0, Tokens: 512},
		{At: at(6.0), Kind: obs.KindFinish, Replica: 1, Session: 9, Request: 4, Tokens: 64, A: int64(at(4.0)), B: 0},
	}
	rep := Attribute(ev)
	if len(rep.Requests) != 1 {
		t.Fatalf("got %d attributions", len(rep.Requests))
	}
	a := rep.Requests[0]
	if a.Phases[PhaseQueue] != time.Second {
		t.Errorf("queue = %v, want 1s", a.Phases[PhaseQueue])
	}
	if a.Phases[PhaseMigration] != 2*time.Second {
		t.Errorf("migration = %v, want 2s", a.Phases[PhaseMigration])
	}
	if a.Phases[PhasePrefillWait] != 500*time.Millisecond {
		t.Errorf("prefill-wait = %v, want 0.5s", a.Phases[PhasePrefillWait])
	}
	if a.Phases[PhasePrefill] != 500*time.Millisecond {
		t.Errorf("prefill = %v, want 0.5s", a.Phases[PhasePrefill])
	}
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		sum += a.Phases[p]
	}
	if sum != a.E2E() {
		t.Fatalf("phase sum %v != E2E %v", sum, a.E2E())
	}
}

func TestAttributeReenqueue(t *testing.T) {
	// Destination drained mid-transfer: enqueue 0, route 0.2, re-enqueue
	// 1.2, second route 1.2, deliver 1.4, first token 2.0, finish 3.0.
	ev := []obs.Event{
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Session: 3, Request: 8, Tokens: 256, A: 32},
		{At: at(0.2), Kind: obs.KindRoute, Replica: 1, Session: 3, Request: 8, A: 0},
		{At: at(1.2), Kind: obs.KindEnqueue, Replica: -1, Session: 3, Request: 8, Tokens: 256, A: 32},
		{At: at(1.2), Kind: obs.KindRoute, Replica: 2, Session: 3, Request: 8},
		{At: at(1.4), Kind: obs.KindCacheLookup, Replica: 2, Session: 3, Request: 8, Tokens: 0, A: 256},
		{At: at(3.0), Kind: obs.KindFinish, Replica: 2, Session: 3, Request: 8, Tokens: 32, A: int64(at(2.0)), B: 0},
	}
	rep := Attribute(ev)
	if len(rep.Requests) != 1 {
		t.Fatalf("got %d attributions", len(rep.Requests))
	}
	a := rep.Requests[0]
	if a.Enqueues != 2 || rep.Reenqueued != 1 {
		t.Fatalf("enqueues = %d (report %d), want 2 (1)", a.Enqueues, rep.Reenqueued)
	}
	if a.Phases[PhaseReenqueue] != time.Second {
		t.Errorf("re-enqueue = %v, want 1s (first route 0.2 → last route 1.2)", a.Phases[PhaseReenqueue])
	}
	if a.Replica != 2 {
		t.Errorf("replica = %d, want the re-routed destination 2", a.Replica)
	}
	var sum time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		sum += a.Phases[p]
	}
	if sum != a.E2E() || a.E2E() != 3*time.Second {
		t.Fatalf("phase sum %v / E2E %v, want 3s both", sum, a.E2E())
	}
}

func TestAttributeIncompleteAndStragglers(t *testing.T) {
	ev := chain(1, 0, 0, 0, 0.1, 0.1, 0.5, 1.0)
	ev = append(ev, chain(2, 0, 0, 0, 0.1, 0.1, 0.5, 4.0)...)
	ev = append(ev, chain(3, 0, 0, 0, 0.1, 0.1, 0.5, 4.0)...)
	// Request 99 never finishes.
	ev = append(ev, obs.Event{At: at(0.2), Kind: obs.KindEnqueue, Replica: -1, Request: 99, Tokens: 10, A: 5})
	rep := Attribute(ev)
	if len(rep.Requests) != 3 || rep.Incomplete != 1 {
		t.Fatalf("got %d finished, %d incomplete; want 3, 1", len(rep.Requests), rep.Incomplete)
	}
	s := rep.Stragglers(2)
	if len(s) != 2 || s[0].Request != 2 || s[1].Request != 3 {
		t.Fatalf("stragglers = %v, want requests 2 then 3 (tie broken by id)", []int64{s[0].Request, s[1].Request})
	}
	if rep.SLOMisses != 0 {
		t.Fatalf("SLO misses = %d, want 0 (10s budgets)", rep.SLOMisses)
	}
}

func TestWriteReportRendersPhases(t *testing.T) {
	rep := Attribute(chain(1, 7, 2, 0, 0.5, 0.5, 2.0, 5.0))
	var b strings.Builder
	if err := WriteReport(&b, rep, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"critical-path attribution: 1 finished", "queue", "prefill", "decode", "stragglers", "end-to-end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
