package analyze

import (
	"fmt"
	"io"
)

// This file is the plain-text surface both CLIs (and the bench harness's
// notes) share: deterministic fixed-width tables, no locale, no wall
// clock — identical runs render identical bytes.

// WriteReport renders the per-phase aggregate table and the top-K
// straggler report.
func WriteReport(w io.Writer, r *Report, topK int) error {
	if _, err := fmt.Fprintf(w, "critical-path attribution: %d finished, %d incomplete, %d re-enqueued, %d SLO misses\n",
		len(r.Requests), r.Incomplete, r.Reenqueued, r.SLOMisses); err != nil {
		return err
	}
	if len(r.Requests) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-13s %10s %10s %10s %10s %10s %7s\n",
		"phase", "mean(s)", "p50(s)", "p90(s)", "p99(s)", "max(s)", "share")
	for p := Phase(0); p < NumPhases; p++ {
		d := &r.PhaseDist[p]
		fmt.Fprintf(w, "%-13s %10.4f %10.4f %10.4f %10.4f %10.4f %6.1f%%\n",
			p, d.Mean(), d.Quantile(0.50), d.Quantile(0.90), d.Quantile(0.99), d.Max(),
			100*r.PhaseShare(p))
	}
	fmt.Fprintf(w, "%-13s %10.4f %10.4f %10.4f %10.4f %10.4f %6.1f%%\n",
		"end-to-end", r.E2EDist.Mean(), r.E2EDist.Quantile(0.50), r.E2EDist.Quantile(0.90),
		r.E2EDist.Quantile(0.99), r.E2EDist.Max(), 100.0)

	if topK <= 0 {
		return nil
	}
	stragglers := r.Stragglers(topK)
	fmt.Fprintf(w, "\nstragglers (top %d by end-to-end latency)\n", len(stragglers))
	fmt.Fprintf(w, "%10s %9s %8s %9s %-13s %7s %7s %5s %4s\n",
		"request", "session", "e2e(s)", "replica", "dominant", "in", "out", "hit", "enq")
	for _, a := range stragglers {
		slo := ""
		if a.SLOMiss() {
			slo = " MISS"
		}
		fmt.Fprintf(w, "%10d %9d %8.3f %9d %-13s %7d %7d %5d %4d%s\n",
			a.Request, a.Session, a.E2E().Seconds(), a.Replica, a.Dominant(),
			a.InputLen, a.OutputLen, a.HitTokens, a.Enqueues, slo)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteRollup renders the fleet window table and the per-kind series.
func WriteRollup(w io.Writer, roll *Rollup) error {
	if len(roll.Fleet) == 0 {
		_, err := fmt.Fprintln(w, "rollup: empty stream")
		return err
	}
	if _, err := fmt.Fprintf(w, "fleet rollup: window %s, span [%.2fs, %.2fs]\n",
		roll.Window, roll.Start.Seconds(), roll.End.Seconds()); err != nil {
		return err
	}
	fmt.Fprintf(w, "%9s %6s %6s %6s %6s %6s %9s %8s %7s\n",
		"start(s)", "enq", "fin", "miss", "burn", "migr", "migr-tok", "outst", "active")
	for _, fw := range roll.Fleet {
		fmt.Fprintf(w, "%9.2f %6d %6d %6d %5.0f%% %6d %9d %8.1f %7.1f\n",
			fw.Start.Seconds(), fw.Enqueued, fw.Finished, fw.SLOMisses, 100*fw.BurnRate,
			fw.Migrations, fw.MigratedTokens, fw.MeanOutstanding, fw.MeanActive)
	}
	for _, ks := range roll.Kinds {
		fmt.Fprintf(w, "\nkind %s (%d replicas)\n", ks.Kind, ks.Replicas)
		fmt.Fprintf(w, "%9s %7s %6s %6s %8s %7s %6s\n",
			"start(s)", "routed", "fin", "miss", "meanq", "maxq", "busy")
		for _, kw := range ks.Windows {
			fmt.Fprintf(w, "%9.2f %7d %6d %6d %8.2f %7d %5.0f%%\n",
				kw.Start.Seconds(), kw.Routed, kw.Finished, kw.SLOMisses,
				kw.MeanQueue, kw.MaxQueue, 100*kw.Busy)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// maxRenderedViolations bounds the audit listing; the verdict line always
// carries the true total.
const maxRenderedViolations = 20

// WriteViolations renders the audit verdict: a single PASS line for a
// clean stream, else the violation count and the first few breaches.
func WriteViolations(w io.Writer, vs []Violation) error {
	if len(vs) == 0 {
		_, err := fmt.Fprintln(w, "audit: PASS (0 violations)")
		return err
	}
	if _, err := fmt.Fprintf(w, "audit: FAIL (%d violations)\n", len(vs)); err != nil {
		return err
	}
	show := vs
	if len(show) > maxRenderedViolations {
		show = show[:maxRenderedViolations]
	}
	for _, v := range show {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if extra := len(vs) - len(show); extra > 0 {
		fmt.Fprintf(w, "  ... and %d more\n", extra)
	}
	return nil
}
