package analyze

import (
	"sort"
	"strings"
	"testing"
	"time"

	"loongserve/internal/obs"
)

// byTime re-sorts a concatenation of chains into collector order (stable,
// so same-instant events keep their lifecycle order).
func byTime(ev []obs.Event) []obs.Event {
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev
}

func TestAuditCleanStream(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev, chain(2, 7, 1, 0.5, 0.6, 0.7, 1.5, 3.0)...)
	if vs := Audit(byTime(ev)); len(vs) != 0 {
		t.Fatalf("clean stream flagged: %v", vs)
	}
}

func TestAuditReenqueueIsLegal(t *testing.T) {
	ev := []obs.Event{
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Session: 3, Request: 8, Tokens: 256, A: 32},
		{At: at(0.2), Kind: obs.KindRoute, Replica: 1, Session: 3, Request: 8},
		{At: at(1.2), Kind: obs.KindEnqueue, Replica: -1, Session: 3, Request: 8, Tokens: 256, A: 32},
		{At: at(1.2), Kind: obs.KindRoute, Replica: 2, Session: 3, Request: 8},
		{At: at(1.4), Kind: obs.KindCacheLookup, Replica: 2, Session: 3, Request: 8, Tokens: 0, A: 256},
		{At: at(3.0), Kind: obs.KindFinish, Replica: 2, Session: 3, Request: 8, Tokens: 32, A: int64(at(2.0)), B: 0},
	}
	if vs := Audit(ev); len(vs) != 0 {
		t.Fatalf("legal re-enqueue flagged: %v", vs)
	}
}

// want exactly one violation of the given kind.
func wantViolation(t *testing.T, vs []Violation, kind ViolationKind) Violation {
	t.Helper()
	if len(vs) != 1 {
		t.Fatalf("got %d violations %v, want exactly one %s", len(vs), vs, kind)
	}
	if vs[0].Kind != kind {
		t.Fatalf("got %s (%s), want %s", vs[0].Kind, vs[0].Detail, kind)
	}
	return vs[0]
}

func TestAuditDroppedFinish(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = ev[:len(ev)-1] // drop the Finish
	v := wantViolation(t, Audit(ev), MissingFinish)
	if v.Request != 1 {
		t.Fatalf("violation names request %d, want 1", v.Request)
	}
}

func TestAuditOutOfOrderRoute(t *testing.T) {
	good := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	// Splice the Route ahead of the Enqueue (same timestamps, so the
	// monotone check stays quiet and the lifecycle check must catch it).
	ev := []obs.Event{good[1], good[0], good[2], good[3]}
	ev[0].At, ev[1].At = at(0), at(0)
	vs := Audit(ev)
	if len(vs) == 0 {
		t.Fatal("out-of-order route not flagged")
	}
	if vs[0].Kind != RouteBeforeEnqueue {
		t.Fatalf("first violation = %s, want %s", vs[0].Kind, RouteBeforeEnqueue)
	}
}

func TestAuditCorruptions(t *testing.T) {
	base := func() []obs.Event { return chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0) }
	cases := []struct {
		name    string
		mutate  func([]obs.Event) []obs.Event
		want    ViolationKind
	}{
		{"duplicate finish", func(ev []obs.Event) []obs.Event {
			return append(ev, ev[len(ev)-1])
		}, DuplicateFinish},
		{"duplicate enqueue while delivered", func(ev []obs.Event) []obs.Event {
			dup := ev[0]
			dup.At = at(1.5)
			return append(ev[:3:3], dup, ev[3])
		}, DuplicateEnqueue},
		{"lookup before route", func(ev []obs.Event) []obs.Event {
			return []obs.Event{ev[0], ev[2], ev[1], ev[3]}
		}, LookupBeforeRoute},
		{"finish without delivery", func(ev []obs.Event) []obs.Event {
			return []obs.Event{ev[0], ev[1], ev[3]}
		}, FinishBeforeDeliver},
		{"non-monotonic time", func(ev []obs.Event) []obs.Event {
			ev[2].At = at(0.05) // lookup timestamped before its route
			return ev
		}, NonMonotonicTime},
		{"cache hit exceeds input", func(ev []obs.Event) []obs.Event {
			ev[2].Tokens = int(ev[2].A) + 1
			return ev
		}, CacheHitExceedsInput},
		{"replica mismatch", func(ev []obs.Event) []obs.Event {
			ev[3].Replica = 5
			return ev
		}, ReplicaMismatch},
		{"arrival mismatch", func(ev []obs.Event) []obs.Event {
			ev[3].B = int64(at(0.01))
			return ev
		}, ArrivalMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := Audit(tc.mutate(base()))
			found := false
			for _, v := range vs {
				if v.Kind == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("corruption not flagged as %s; got %v", tc.want, vs)
			}
		})
	}
}

func TestAuditRetiredReplica(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev,
		obs.Event{At: at(2.5), Kind: obs.KindRetire, Replica: 0, Label: "test"},
	)
	ev = append(ev, chain(2, 7, 0, 3.0, 3.1, 3.2, 3.5, 4.0)...) // routed to retired 0
	vs := Audit(ev)
	found := 0
	for _, v := range vs {
		if v.Kind == EventOnRetiredReplica {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("events on retired replica not flagged; got %v", vs)
	}
}

func TestAuditMigrateExceedsSessionKV(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0) // input 1000, output 100 → ctx 1100
	ev = append(ev, obs.Event{
		At: at(2.5), Kind: obs.KindMigrate, Replica: 0, Session: 7,
		Tokens: 1101, A: 1, Label: "drain",
	})
	wantViolation(t, Audit(ev), MigrateExceedsSessionKV)

	// At exactly the materialized context the move is legal.
	ev[len(ev)-1].Tokens = 1100
	if vs := Audit(ev); len(vs) != 0 {
		t.Fatalf("bound migration flagged: %v", vs)
	}
}

// TestAuditCrashHedgeRecoverClean is the well-formed fault story: request 1
// straggles on replica 0, hedges to replica 1, the hedge wins and finishes
// under the primary identity; replica 0 then crashes with request 2 in
// flight, which is recovered and re-runs on replica 1. Zero violations.
func TestAuditCrashHedgeRecoverClean(t *testing.T) {
	ev := []obs.Event{
		// Request 1: delivered to replica 0, hedged to replica 1, hedge wins.
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 1000, A: 100},
		{At: at(0.1), Kind: obs.KindRoute, Replica: 0, Session: 7, Request: 1},
		{At: at(0.2), Kind: obs.KindCacheLookup, Replica: 0, Session: 7, Request: 1, Tokens: 0, A: 1000},
		{At: at(0.8), Kind: obs.KindHedgeLaunch, Replica: 1, Session: 7, Request: 1, Tokens: 1000, A: 0},
		{At: at(0.8), Kind: obs.KindCacheLookup, Replica: 1, Session: 7, Request: 1, Tokens: 0, A: 1000},
		{At: at(1.5), Kind: obs.KindHedgeWin, Replica: 1, Session: 7, Request: 1, A: 0},
		{At: at(1.5), Kind: obs.KindFinish, Replica: 1, Session: 7, Request: 1, Tokens: 100, A: int64(at(1.4)), B: int64(at(0))},
		// Request 2: in flight on replica 0 when it crashes; recovered onto 1.
		{At: at(1.0), Kind: obs.KindEnqueue, Replica: -1, Session: 8, Request: 2, Tokens: 500, A: 50},
		{At: at(1.1), Kind: obs.KindRoute, Replica: 0, Session: 8, Request: 2},
		{At: at(1.2), Kind: obs.KindCacheLookup, Replica: 0, Session: 8, Request: 2, Tokens: 0, A: 500},
		{At: at(2.0), Kind: obs.KindCrash, Replica: 0, Tokens: 1, A: 800},
		{At: at(2.0), Kind: obs.KindRecover, Replica: -1, Session: 8, Request: 2, Tokens: 0, A: 0},
		{At: at(2.0), Kind: obs.KindEnqueue, Replica: -1, Session: 8, Request: 2, Tokens: 500, A: 50},
		{At: at(2.0), Kind: obs.KindRoute, Replica: 1, Session: 8, Request: 2},
		{At: at(2.1), Kind: obs.KindCacheLookup, Replica: 1, Session: 8, Request: 2, Tokens: 0, A: 500},
		{At: at(3.0), Kind: obs.KindFinish, Replica: 1, Session: 8, Request: 2, Tokens: 50, A: int64(at(2.8)), B: int64(at(1.0))},
	}
	if vs := Audit(byTime(ev)); len(vs) != 0 {
		t.Fatalf("clean crash/hedge/recover stream flagged: %v", vs)
	}
}

func TestAuditEventAfterCrash(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev,
		obs.Event{At: at(2.5), Kind: obs.KindCrash, Replica: 0, Tokens: 0, A: 0},
		// A lifecycle event from the corpse: the gated sink failed.
		obs.Event{At: at(3.0), Kind: obs.KindDrain, Replica: 0},
	)
	v := wantViolation(t, Audit(ev), EventAfterCrash)
	if v.Replica != 0 {
		t.Fatalf("violation names replica %d, want 0", v.Replica)
	}

	// Migration INTO a crashed replica is the same defect.
	ev[len(ev)-1] = obs.Event{At: at(3.0), Kind: obs.KindMigrate, Replica: 1, Session: 7, Tokens: 10, A: 0, Label: "drain"}
	wantViolation(t, Audit(ev), EventAfterCrash)

	// And so is a second crash of the same replica.
	ev[len(ev)-1] = obs.Event{At: at(3.0), Kind: obs.KindCrash, Replica: 0}
	wantViolation(t, Audit(ev), EventAfterCrash)
}

func TestAuditRecoverWithoutCrash(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev, obs.Event{
		At: at(2.5), Kind: obs.KindRecover, Replica: -1, Session: 9, Request: 3, A: 1,
	})
	v := wantViolation(t, Audit(ev), RecoverWithoutCrash)
	if v.Request != 3 {
		t.Fatalf("violation names request %d, want 3", v.Request)
	}
}

func TestAuditDuplicateHedgeWin(t *testing.T) {
	ev := []obs.Event{
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 1000, A: 100},
		{At: at(0.1), Kind: obs.KindRoute, Replica: 0, Session: 7, Request: 1},
		{At: at(0.2), Kind: obs.KindCacheLookup, Replica: 0, Session: 7, Request: 1, Tokens: 0, A: 1000},
		{At: at(0.8), Kind: obs.KindHedgeLaunch, Replica: 1, Session: 7, Request: 1, Tokens: 1000, A: 0},
		{At: at(0.9), Kind: obs.KindCacheLookup, Replica: 1, Session: 7, Request: 1, Tokens: 0, A: 1000},
		{At: at(1.5), Kind: obs.KindHedgeWin, Replica: 1, Session: 7, Request: 1, A: 0},
		{At: at(1.5), Kind: obs.KindHedgeWin, Replica: 1, Session: 7, Request: 1, A: 0},
		{At: at(1.5), Kind: obs.KindFinish, Replica: 1, Session: 7, Request: 1, Tokens: 100, A: int64(at(1.4)), B: int64(at(0))},
	}
	wantViolation(t, Audit(ev), DuplicateHedgeWin)
}

func TestAuditorOnlineMatchesPostHoc(t *testing.T) {
	ev := chain(1, 7, 0, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev, chain(2, 7, 1, 0.5, 0.6, 0.7, 1.5, 3.0)...)
	ev = byTime(ev)
	ev = ev[:len(ev)-1] // drop last Finish
	a := NewAuditor()
	for _, e := range ev {
		a.Emit(e) // online, as a Tee'd Sink would drive it
	}
	online := a.Finalize()
	posthoc := Audit(ev)
	if len(online) != len(posthoc) || len(online) != 1 || online[0].Kind != posthoc[0].Kind {
		t.Fatalf("online %v != post-hoc %v", online, posthoc)
	}
}

// TestAuditDirectoryColdClean is the well-formed cache-directory story:
// blocks become resident, one spills to the cold tier on eviction, a
// content route claims exactly what the directory holds, the cold run is
// fetched back, and a crash wipes the dead replica's entries with a
// negative delta. Zero violations.
func TestAuditDirectoryColdClean(t *testing.T) {
	ev := chain(1, 7, 1, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev, chain(2, 7, 0, 2.1, 2.2, 2.3, 2.5, 2.6)...)
	ev = append(ev,
		obs.Event{At: at(0.3), Kind: obs.KindDirectoryUpdate, Replica: 1, Tokens: 64, A: 64, Label: "add"},
		obs.Event{At: at(0.4), Kind: obs.KindDirectoryUpdate, Replica: 1, Tokens: 64, A: 128, Label: "add"},
		// One block evicted from replica 1: directory retracts, cold gains.
		obs.Event{At: at(0.5), Kind: obs.KindDirectoryUpdate, Replica: 1, Tokens: -64, A: 64, Label: "remove"},
		obs.Event{At: at(0.5), Kind: obs.KindColdSpill, Replica: 1, Tokens: 64, A: 64, B: 1},
		// Routing claims no more than the 64 tokens still resident on 1.
		obs.Event{At: at(0.6), Kind: obs.KindContentRoute, Replica: 1, Session: 7, Request: 5, Tokens: 64, A: 1, B: 2},
		// The cold run is fetched back (a copy; the tier keeps the block).
		obs.Event{At: at(0.7), Kind: obs.KindColdFetch, Replica: 1, Session: 7, Request: 5, Tokens: 64, A: 1000, B: 5000},
		// Replica 0 holds 32 tokens, crashes, and the wipe retracts them.
		obs.Event{At: at(2.7), Kind: obs.KindDirectoryUpdate, Replica: 0, Tokens: 32, A: 32, Label: "add"},
		obs.Event{At: at(2.8), Kind: obs.KindCrash, Replica: 0, Tokens: 0, A: 32},
		obs.Event{At: at(2.8), Kind: obs.KindDirectoryUpdate, Replica: 0, Tokens: -32, A: 0, Label: "wipe"},
	)
	if vs := Audit(byTime(ev)); len(vs) != 0 {
		t.Fatalf("clean directory/cold stream flagged: %v", vs)
	}
}

func TestAuditRouteToNonresident(t *testing.T) {
	ev := chain(1, 7, 1, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev,
		obs.Event{At: at(2.1), Kind: obs.KindDirectoryUpdate, Replica: 1, Tokens: 64, A: 64, Label: "add"},
		// The router claims 65 overlap tokens where only 64 are resident.
		obs.Event{At: at(2.2), Kind: obs.KindContentRoute, Replica: 1, Session: 7, Request: 1, Tokens: 65, A: 0, B: 2},
	)
	v := wantViolation(t, Audit(ev), RouteToNonresident)
	if v.Replica != 1 {
		t.Fatalf("violation names replica %d, want 1", v.Replica)
	}

	// At exactly the resident total the claim is legal.
	ev[len(ev)-1].Tokens = 64
	if vs := Audit(ev); len(vs) != 0 {
		t.Fatalf("bound claim flagged: %v", vs)
	}
}

func TestAuditFetchWithoutSpill(t *testing.T) {
	ev := chain(1, 7, 1, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev,
		obs.Event{At: at(2.1), Kind: obs.KindColdSpill, Replica: 0, Tokens: 64, A: 64, B: 1},
		// A fetch of more than the tier ever received.
		obs.Event{At: at(2.2), Kind: obs.KindColdFetch, Replica: 1, Session: 7, Request: 1, Tokens: 128, A: 1000, B: 5000},
	)
	wantViolation(t, Audit(ev), FetchWithoutSpill)

	// After a cold eviction retracts the block, even the original 64 is gone.
	ev[len(ev)-1].Tokens = 64
	ev = append(ev[:len(ev)-1],
		obs.Event{At: at(2.15), Kind: obs.KindDirectoryUpdate, Replica: -1, Tokens: -64, A: 0, Label: "cold-evict"},
		ev[len(ev)-1])
	wantViolation(t, Audit(ev), FetchWithoutSpill)
}

func TestAuditDirectoryEntryAfterCrash(t *testing.T) {
	ev := chain(1, 7, 1, 0, 0.1, 0.2, 1.0, 2.0)
	ev = append(ev,
		obs.Event{At: at(2.1), Kind: obs.KindDirectoryUpdate, Replica: 0, Tokens: 64, A: 64, Label: "add"},
		obs.Event{At: at(2.2), Kind: obs.KindCrash, Replica: 0, Tokens: 0, A: 64},
		// The mandated wipe is legal even though the replica just crashed...
		obs.Event{At: at(2.2), Kind: obs.KindDirectoryUpdate, Replica: 0, Tokens: -64, A: 0, Label: "wipe"},
		// ...but a positive delta on the corpse is a defect.
		obs.Event{At: at(2.3), Kind: obs.KindDirectoryUpdate, Replica: 0, Tokens: 32, A: 32, Label: "add"},
	)
	v := wantViolation(t, Audit(ev), DirectoryEntryAfterCrash)
	if v.Replica != 0 {
		t.Fatalf("violation names replica %d, want 0", v.Replica)
	}
}

func TestWriteViolations(t *testing.T) {
	var b strings.Builder
	if err := WriteViolations(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PASS") {
		t.Fatalf("clean verdict missing PASS: %q", b.String())
	}
	b.Reset()
	vs := []Violation{{Kind: MissingFinish, Request: 3, Replica: -1, Detail: "x"}}
	if err := WriteViolations(&b, vs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "FAIL (1 violations)") || !strings.Contains(b.String(), "missing-finish") {
		t.Fatalf("verdict missing detail: %q", b.String())
	}
	_ = time.Second
}
