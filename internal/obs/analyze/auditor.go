package analyze

import (
	"fmt"
	"sort"

	"loongserve/internal/obs"
	"loongserve/internal/simevent"
)

// ViolationKind classifies what an Auditor check caught.
type ViolationKind int

const (
	// NonMonotonicTime: an event's timestamp precedes its predecessor's.
	// The Collector retains arrival order and the simulator never runs
	// backwards, so any regression means a reordered or spliced stream.
	NonMonotonicTime ViolationKind = iota
	// RouteBeforeEnqueue: a Route for a request the stream never enqueued
	// (or whose Enqueue appears later) — lifecycle ordering broken.
	RouteBeforeEnqueue
	// LookupBeforeRoute: a CacheLookup for a request with no Route yet.
	LookupBeforeRoute
	// FinishBeforeDeliver: a Finish for a request never delivered to a
	// replica (no CacheLookup), or never seen at all.
	FinishBeforeDeliver
	// DuplicateEnqueue: a second Enqueue for a request that was not in the
	// routed state — re-enqueue is legal only after a Route whose
	// migration destination drained mid-transfer.
	DuplicateEnqueue
	// DuplicateFinish: a second Finish for the same request.
	DuplicateFinish
	// MissingFinish: at Finalize, a request that enqueued but never
	// reached Finish — conservation broken (or the run was truncated).
	MissingFinish
	// EventOnRetiredReplica: any event attributed to (or migrating KV
	// toward) a replica the stream already retired.
	EventOnRetiredReplica
	// ReplicaMismatch: a CacheLookup or Finish on a different replica
	// than the request's last Route chose.
	ReplicaMismatch
	// CacheHitExceedsInput: a CacheLookup reporting more hit tokens than
	// the request's full input length.
	CacheHitExceedsInput
	// MigrateExceedsSessionKV: a session-attributed migration moving more
	// KV tokens than the session has ever materialized (its largest
	// finished context). Checked only once the session has a Finish.
	MigrateExceedsSessionKV
	// ArrivalMismatch: Finish's recorded arrival (B) differs from the
	// request's first Enqueue timestamp — the two books of record for
	// "when did this request arrive" disagree.
	ArrivalMismatch
	// EventAfterCrash: any event attributed to (or migrating KV toward) a
	// replica the stream already crashed. A crash is instant death — unlike
	// a drain there is no tail of legitimate completions, so a single event
	// from the corpse means a silencing (gated-sink) defect.
	EventAfterCrash
	// RecoverWithoutCrash: a Recover event naming a crashed replica (A)
	// that the stream never saw a Crash for — recovery without a cause.
	RecoverWithoutCrash
	// DuplicateHedgeWin: a second HedgeWin for the same request. A hedge
	// pair resolves exactly once; two winners means the same request's
	// output was produced (and counted) twice.
	DuplicateHedgeWin
	// RouteToNonresident: a ContentRoute claiming more directory-resident
	// overlap tokens at its destination than the directory-update deltas
	// have accumulated there — the router promised KV the directory never
	// said was resident.
	RouteToNonresident
	// FetchWithoutSpill: a ColdFetch moving more tokens than the cold
	// tier's spill/evict deltas say it holds — KV fetched from a tier
	// that never received it.
	FetchWithoutSpill
	// DirectoryEntryAfterCrash: a positive directory-update delta on a
	// crashed replica. A crash must wipe the replica's directory entries
	// (the negative bulk delta is the one legal post-crash event); a
	// positive delta resurrects KV on a corpse.
	DirectoryEntryAfterCrash

	numViolationKinds
)

var violationNames = [numViolationKinds]string{
	NonMonotonicTime:        "non-monotonic-time",
	RouteBeforeEnqueue:      "route-before-enqueue",
	LookupBeforeRoute:       "lookup-before-route",
	FinishBeforeDeliver:     "finish-before-deliver",
	DuplicateEnqueue:        "duplicate-enqueue",
	DuplicateFinish:         "duplicate-finish",
	MissingFinish:           "missing-finish",
	EventOnRetiredReplica:   "event-on-retired-replica",
	ReplicaMismatch:         "replica-mismatch",
	CacheHitExceedsInput:    "cache-hit-exceeds-input",
	MigrateExceedsSessionKV: "migrate-exceeds-session-kv",
	ArrivalMismatch:         "arrival-mismatch",
	EventAfterCrash:         "event-after-crash",
	RecoverWithoutCrash:     "recover-without-crash",
	DuplicateHedgeWin:       "duplicate-hedge-win",

	RouteToNonresident:       "route-to-nonresident",
	FetchWithoutSpill:        "fetch-without-spill",
	DirectoryEntryAfterCrash: "directory-entry-after-crash",
}

func (k ViolationKind) String() string {
	if k >= 0 && k < numViolationKinds {
		return violationNames[k]
	}
	return "violation(?)"
}

// Violation is one structured invariant breach.
type Violation struct {
	Kind    ViolationKind
	At      simevent.Time
	Request int64
	Session int64
	Replica int
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%dns req=%d session=%d replica=%d: %s",
		v.Kind, int64(v.At), v.Request, v.Session, v.Replica, v.Detail)
}

// Request lifecycle states the auditor's per-request machine walks:
// enqueued → routed → delivered → finished, with routed → enqueued the
// one legal back-edge (mid-transfer re-enqueue).
type auditState int

const (
	stEnqueued auditState = iota
	stRouted
	stDelivered
	stFinished
)

var auditStateNames = [...]string{"enqueued", "routed", "delivered", "finished"}

type auditReq struct {
	state    auditState
	session  int64
	input    int // full input length
	replica  int // last routed destination
	hedgeTo  int // live hedge copy's replica, -1 when unhedged
	hedgeWon bool
	firstEnq simevent.Time
}

// Auditor is the stream invariant checker. It implements obs.Sink, so it
// runs online (Tee it beside the Collector) at the cost of one state-map
// update per event, or post-hoc over a retained stream via Audit. The
// zero value is not ready — use NewAuditor. Call Finalize once after the
// run to collect end-of-stream (conservation) violations along with
// everything caught inline.
type Auditor struct {
	reqs       map[int64]*auditReq
	sessionCtx map[int64]int64 // session → largest finished context (KV upper bound)
	retired    map[int]bool
	crashed    map[int]bool
	// dirTokens accumulates directory-update deltas per location (replica
	// index; -1 = cold tier) — the auditor's replay of the gateway's
	// global cache directory. Content routes may not claim more than the
	// destination's running total; cold fetches may not move more than
	// the cold tier's.
	dirTokens  map[int]int64
	last       simevent.Time
	seen       int
	violations []Violation
}

// NewAuditor returns an empty auditor ready to receive a stream.
func NewAuditor() *Auditor {
	return &Auditor{
		reqs:       make(map[int64]*auditReq),
		sessionCtx: make(map[int64]int64),
		retired:    make(map[int]bool),
		crashed:    make(map[int]bool),
		dirTokens:  make(map[int]int64),
	}
}

func (a *Auditor) flag(k ViolationKind, e obs.Event, format string, args ...any) {
	a.violations = append(a.violations, Violation{
		Kind: k, At: e.At, Request: e.Request, Session: e.Session,
		Replica: e.Replica, Detail: fmt.Sprintf(format, args...),
	})
}

// Emit implements obs.Sink.
func (a *Auditor) Emit(e obs.Event) {
	if a.seen > 0 && e.At < a.last {
		a.flag(NonMonotonicTime, e, "%s at %dns after event at %dns", e.Kind, int64(e.At), int64(a.last))
	} else {
		a.last = e.At
	}
	a.seen++

	// The retired check covers events that occur ON a replica. Autoscale
	// decisions are gateway-level — their Replica field merely names the
	// drain victim, and an idle victim retires synchronously within the
	// decision's own instant — so they are exempt.
	if e.Kind != obs.KindAutoscale && e.Replica >= 0 && a.retired[e.Replica] {
		a.flag(EventOnRetiredReplica, e, "%s on retired replica %d", e.Kind, e.Replica)
	}

	// The crash check is stricter than the retired one: a crash is an
	// instant, so even same-instant stragglers are defects. Only the Crash
	// event itself (handled in the switch, where a duplicate is flagged),
	// gateway-level Autoscale decisions, and DirectoryUpdate (whose
	// crash-time wipe is mandated coherence — its own case flags the
	// genuinely illegal positive deltas) are exempt.
	if e.Kind != obs.KindCrash && e.Kind != obs.KindAutoscale && e.Kind != obs.KindDirectoryUpdate &&
		e.Replica >= 0 && a.crashed[e.Replica] {
		a.flag(EventAfterCrash, e, "%s on crashed replica %d", e.Kind, e.Replica)
	}

	switch e.Kind {
	case obs.KindEnqueue:
		r := a.reqs[e.Request]
		switch {
		case r == nil:
			a.reqs[e.Request] = &auditReq{
				state: stEnqueued, session: e.Session, input: e.Tokens,
				replica: -1, hedgeTo: -1, firstEnq: e.At,
			}
		case r.state == stRouted:
			// Legal re-enqueue: the routed migration's destination drained
			// mid-transfer and the request re-entered routing.
			r.state = stEnqueued
		default:
			a.flag(DuplicateEnqueue, e, "second enqueue in state %s", auditStateNames[r.state])
		}
	case obs.KindRoute:
		r := a.reqs[e.Request]
		if r == nil {
			a.flag(RouteBeforeEnqueue, e, "route for request never enqueued")
			return
		}
		if r.state != stEnqueued && r.state != stRouted {
			a.flag(RouteBeforeEnqueue, e, "route in state %s", auditStateNames[r.state])
			return
		}
		r.state = stRouted
		r.replica = e.Replica
	case obs.KindCacheLookup:
		r := a.reqs[e.Request]
		if r == nil || r.state == stEnqueued {
			a.flag(LookupBeforeRoute, e, "cache lookup before any route")
			return
		}
		if r.state == stDelivered && r.hedgeTo >= 0 && e.Replica == r.hedgeTo {
			// A hedge copy's lookup on its own destination: the primary is
			// already delivered and stays so.
			if int64(e.Tokens) > e.A {
				a.flag(CacheHitExceedsInput, e, "hit %d tokens of a %d-token input", e.Tokens, e.A)
			}
			return
		}
		if r.state != stRouted {
			a.flag(LookupBeforeRoute, e, "cache lookup in state %s", auditStateNames[r.state])
			return
		}
		if e.Replica != r.replica {
			a.flag(ReplicaMismatch, e, "lookup on replica %d, routed to %d", e.Replica, r.replica)
		}
		if int64(e.Tokens) > e.A {
			a.flag(CacheHitExceedsInput, e, "hit %d tokens of a %d-token input", e.Tokens, e.A)
		}
		r.input = int(e.A)
		r.state = stDelivered
	case obs.KindFinish:
		r := a.reqs[e.Request]
		switch {
		case r == nil:
			a.flag(FinishBeforeDeliver, e, "finish for request never seen")
			return
		case r.state == stFinished:
			a.flag(DuplicateFinish, e, "second finish")
			return
		case r.state != stDelivered:
			a.flag(FinishBeforeDeliver, e, "finish in state %s", auditStateNames[r.state])
			return
		}
		if e.Replica != r.replica && e.Replica != r.hedgeTo {
			a.flag(ReplicaMismatch, e, "finish on replica %d, routed to %d", e.Replica, r.replica)
		}
		if e.B != int64(r.firstEnq) {
			a.flag(ArrivalMismatch, e, "finish records arrival %dns, first enqueue at %dns", e.B, int64(r.firstEnq))
		}
		r.state = stFinished
		if e.Session != 0 {
			if ctx := int64(r.input) + int64(e.Tokens); ctx > a.sessionCtx[e.Session] {
				a.sessionCtx[e.Session] = ctx
			}
		}
	case obs.KindMigrate:
		// Replica here is the source; the destination rides in A.
		if dst := int(e.A); dst >= 0 && a.retired[dst] {
			a.flag(EventOnRetiredReplica, e, "migration into retired replica %d", dst)
		}
		if dst := int(e.A); dst >= 0 && a.crashed[dst] {
			a.flag(EventAfterCrash, e, "migration into crashed replica %d", dst)
		}
		if e.Session != 0 {
			if ctx, ok := a.sessionCtx[e.Session]; ok && int64(e.Tokens) > ctx {
				a.flag(MigrateExceedsSessionKV, e, "moved %d KV tokens, session has materialized at most %d", e.Tokens, ctx)
			}
		}
	case obs.KindRetire:
		a.retired[e.Replica] = true
	case obs.KindCrash:
		if a.crashed[e.Replica] {
			a.flag(EventAfterCrash, e, "second crash of replica %d", e.Replica)
		}
		a.crashed[e.Replica] = true
	case obs.KindRecover:
		// A is the crashed replica the request is being rescued from.
		if !(e.A >= 0 && a.crashed[int(e.A)]) {
			a.flag(RecoverWithoutCrash, e, "recovery from replica %d, which never crashed", e.A)
		}
		if r := a.reqs[e.Request]; r != nil {
			// The rescue re-enters routing: put the machine in the routed
			// state so the recovery Enqueue takes the legal back-edge.
			r.state = stRouted
			r.hedgeTo = -1
		}
	case obs.KindHedgeLaunch:
		if r := a.reqs[e.Request]; r != nil {
			r.hedgeTo = e.Replica
		}
	case obs.KindHedgeWin:
		if r := a.reqs[e.Request]; r != nil {
			if r.hedgeWon {
				a.flag(DuplicateHedgeWin, e, "second hedge win")
			}
			r.hedgeWon = true
		}
	case obs.KindHedgeLose:
		if r := a.reqs[e.Request]; r != nil {
			r.hedgeTo = -1
		}
	case obs.KindDirectoryUpdate:
		// Tokens is a signed delta against one location's directory total.
		// After a crash the directory may only shed entries for that replica
		// (the wipe); any positive delta would mean the gateway is recording
		// new resident content on a dead process.
		if e.Replica >= 0 && a.crashed[e.Replica] && e.Tokens > 0 {
			a.flag(DirectoryEntryAfterCrash, e, "directory gained %d tokens on crashed replica %d", e.Tokens, e.Replica)
		}
		a.dirTokens[e.Replica] += int64(e.Tokens)
	case obs.KindColdSpill:
		// A spill names blocks into the cold tier without a directory-update
		// event (the -1 location's adds are implied; only cold evictions emit
		// negative deltas there). Replay it into the cold total directly.
		a.dirTokens[-1] += int64(e.Tokens)
	case obs.KindContentRoute:
		// Tokens is the overlap the router claimed at the destination; it can
		// never exceed what the directory said was resident there.
		if int64(e.Tokens) > a.dirTokens[e.Replica] {
			a.flag(RouteToNonresident, e, "claimed %d overlap tokens on replica %d, directory holds %d", e.Tokens, e.Replica, a.dirTokens[e.Replica])
		}
	case obs.KindColdFetch:
		// Tokens is the run fetched from the cold tier; the tier can only
		// serve what spills put there (minus what cold evictions removed).
		if int64(e.Tokens) > a.dirTokens[-1] {
			a.flag(FetchWithoutSpill, e, "fetched %d cold tokens, tier holds %d", e.Tokens, a.dirTokens[-1])
		}
	}
}

// Violations returns everything flagged so far, without the end-of-stream
// conservation pass; Finalize runs that pass and returns the full list.
func (a *Auditor) Violations() []Violation { return a.violations }

// Finalize runs the conservation pass — every enqueued request must have
// finished — and returns all violations in detection order (unfinished
// requests sorted by id for determinism). Safe to call once, after the
// stream is complete.
func (a *Auditor) Finalize() []Violation {
	ids := make([]int64, 0)
	for id, r := range a.reqs {
		if r.state != stFinished {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := a.reqs[id]
		a.violations = append(a.violations, Violation{
			Kind: MissingFinish, At: a.last, Request: id, Session: r.session,
			Replica: r.replica,
			Detail:  fmt.Sprintf("request enqueued at %dns never finished (last state %s)", int64(r.firstEnq), auditStateNames[r.state]),
		})
	}
	return a.violations
}

// Audit replays a retained stream through a fresh Auditor and returns the
// finalized violations — the post-hoc entry point.
func Audit(events []obs.Event) []Violation {
	a := NewAuditor()
	for _, e := range events {
		a.Emit(e)
	}
	return a.Finalize()
}
