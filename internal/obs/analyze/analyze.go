// Package analyze is the post-run analysis layer over the obs event
// stream: it turns the raw Enqueue → Route → CacheLookup → (Migrate)* →
// Finish chains (plus the engine-bridged elastic events and the Sampler's
// telemetry rings) into the three derived views long-context serving
// systems are compared by —
//
//   - per-request critical-path attribution: each finished request
//     decomposed into queue wait, re-enqueue penalty, migration stall,
//     prefill wait, prefill and decode, with per-phase fleet aggregates
//     and a top-K straggler report naming each outlier's dominant phase
//     (Attribute, Report, Stragglers);
//
//   - fleet time-series rollups: per-replica, per-kind and fleet-wide
//     utilization, queue depth and SLO burn rate over fixed
//     simulated-time windows, joined from events and sampler rows
//     (Roll, Rollup);
//
//   - an invariant Auditor — an obs.Sink usable online (Tee it next to
//     the Collector) or post-hoc (Audit) — that checks lifecycle
//     ordering, conservation and bounds on the stream and returns
//     structured Violations.
//
// Everything here consumes the stream after (or beside) the run; nothing
// in this package is on the simulation hot path, so it trades the
// emitters' zero-allocation discipline for clarity.
package analyze

import "time"

// Phase indexes one segment of a finished request's critical path. The
// six phases partition the closed interval [first enqueue, finish]
// exactly — Attribution.E2E() equals the sum of the phases by
// construction, with no rounding slack (tested).
type Phase int

const (
	// PhaseQueue: first Enqueue → first Route. Gateway admission delay
	// before the policy saw the request.
	PhaseQueue Phase = iota
	// PhaseReenqueue: first Route → last Route. Non-zero only for
	// requests whose migration destination drained mid-transfer and that
	// therefore re-entered routing; the abandoned transfer time lands
	// here.
	PhaseReenqueue
	// PhaseMigration: last Route → delivery (CacheLookup). The routed
	// migration stall — link time spent moving the session's KV ahead of
	// the request; zero for plain routes, which deliver instantly.
	PhaseMigration
	// PhasePrefillWait: delivery → the engine's prefill-start. The
	// route-to-prefill-start gap: time the request sat in the engine
	// before a parallel group began prefilling it. Engines that do not
	// bridge trace events (vLLM-style ContBatch replicas) report zero
	// here and the wait folds into PhasePrefill.
	PhasePrefillWait
	// PhasePrefill: prefill-start (or delivery) → first token.
	PhasePrefill
	// PhaseDecode: first token → finish.
	PhaseDecode

	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseQueue:       "queue",
	PhaseReenqueue:   "re-enqueue",
	PhaseMigration:   "migration",
	PhasePrefillWait: "prefill-wait",
	PhasePrefill:     "prefill",
	PhaseDecode:      "decode",
}

func (p Phase) String() string {
	if p >= 0 && p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Attribution is one finished request's critical-path decomposition.
type Attribution struct {
	Request int64
	Session int64
	Replica int // serving replica (the last routed destination)

	InputLen  int // full input length (pre-discount)
	OutputLen int
	HitTokens int // prefix-cache hit on the serving replica
	Enqueues  int // 1 for a plain route; +1 per mid-transfer re-route

	SLOBudget time.Duration // 0 = no SLO
	Arrival   time.Duration // first enqueue (== driver arrival)
	Finish    time.Duration

	Phases [NumPhases]time.Duration
}

// E2E returns the end-to-end latency — identical to the sum of Phases.
func (a *Attribution) E2E() time.Duration { return a.Finish - a.Arrival }

// Dominant returns the phase holding the largest share of the request's
// latency (lowest index wins ties, so the answer is deterministic).
func (a *Attribution) Dominant() Phase {
	best := Phase(0)
	for p := Phase(1); p < NumPhases; p++ {
		if a.Phases[p] > a.Phases[best] {
			best = p
		}
	}
	return best
}

// SLOMiss reports whether the request blew its budget, mirroring
// metrics.Record.MeetsSLO (a zero budget never misses).
func (a *Attribution) SLOMiss() bool {
	return a.SLOBudget > 0 && a.E2E() > a.SLOBudget
}
