package analyze

import (
	"strings"
	"testing"
	"time"

	"loongserve/internal/obs"
)

func TestRollWindowsAndBurnRate(t *testing.T) {
	// Two requests: one meets its 1s budget (finish 0.5s after enqueue),
	// one blows it (finish 3s after enqueue, landing in a later window).
	budget := int64(time.Second)
	ev := []obs.Event{
		{At: at(0), Kind: obs.KindEnqueue, Replica: -1, Request: 1, Tokens: 100, A: 10, B: budget},
		{At: at(0.1), Kind: obs.KindRoute, Replica: 0, Request: 1},
		{At: at(0.1), Kind: obs.KindCacheLookup, Replica: 0, Request: 1, A: 100},
		{At: at(0.2), Kind: obs.KindEnqueue, Replica: -1, Request: 2, Tokens: 100, A: 10, B: budget},
		{At: at(0.3), Kind: obs.KindRoute, Replica: 1, Request: 2},
		{At: at(0.3), Kind: obs.KindCacheLookup, Replica: 1, Request: 2, A: 100},
		{At: at(0.5), Kind: obs.KindFinish, Replica: 0, Request: 1, Tokens: 10, A: int64(at(0.3)), B: 0},
		{At: at(2.0), Kind: obs.KindMigrate, Replica: 0, Tokens: 64, A: 1, Label: "drain"},
		{At: at(3.2), Kind: obs.KindFinish, Replica: 1, Request: 2, Tokens: 10, A: int64(at(1.0)), B: int64(at(0.2))},
	}
	roll := Roll(ev, nil, nil, RollupConfig{Window: time.Second, Kinds: []string{"loong", "contbatch"}})
	if roll.Window != time.Second {
		t.Fatalf("window = %v", roll.Window)
	}
	if len(roll.Fleet) != 4 {
		t.Fatalf("fleet windows = %d, want 4 (span 0..3.2s)", len(roll.Fleet))
	}
	w0, w3 := roll.Fleet[0], roll.Fleet[3]
	if w0.Enqueued != 2 || w0.Finished != 1 || w0.SLOMisses != 0 || w0.BurnRate != 0 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w3.Finished != 1 || w3.SLOMisses != 1 || w3.BurnRate != 1 {
		t.Fatalf("window 3 = %+v, want the blown budget accounted there", w3)
	}
	if roll.Fleet[2].Migrations != 1 || roll.Fleet[2].MigratedTokens != 64 {
		t.Fatalf("window 2 migrations = %+v", roll.Fleet[2])
	}
	if len(roll.Replicas) != 2 {
		t.Fatalf("replica series = %d, want 2", len(roll.Replicas))
	}
	if roll.Replicas[1].Windows[3].SLOMisses != 1 || roll.Replicas[1].Windows[0].Routed != 1 {
		t.Fatalf("replica 1 series = %+v", roll.Replicas[1].Windows)
	}
	if len(roll.Kinds) != 2 || roll.Kinds[0].Kind != "loong" || roll.Kinds[1].Kind != "contbatch" {
		t.Fatalf("kinds = %+v", roll.Kinds)
	}
}

func TestRollSamplerJoin(t *testing.T) {
	ev := chain(1, 0, 0, 0, 0.1, 0.1, 0.5, 1.9)
	samples := []obs.Sample{
		{At: at(0.5), Replica: 0, QueueDepth: 2},
		{At: at(0.9), Replica: 0, QueueDepth: 4},
		{At: at(1.5), Replica: 0, QueueDepth: 0},
	}
	fleetSamples := []obs.FleetSample{
		{At: at(0.5), Active: 2, OutstandingReqs: 3},
		{At: at(1.5), Active: 2, OutstandingReqs: 1},
	}
	roll := Roll(ev, samples, fleetSamples, RollupConfig{Window: time.Second})
	if len(roll.Fleet) != 2 {
		t.Fatalf("fleet windows = %d, want 2", len(roll.Fleet))
	}
	if roll.Fleet[0].MeanOutstanding != 3 || roll.Fleet[0].MeanActive != 2 {
		t.Fatalf("fleet window 0 join = %+v", roll.Fleet[0])
	}
	rw0 := roll.Replicas[0].Windows[0]
	if rw0.MeanQueue != 3 || rw0.MaxQueue != 4 || rw0.Busy != 1 || rw0.Samples != 2 {
		t.Fatalf("replica window 0 = %+v", rw0)
	}
	rw1 := roll.Replicas[0].Windows[1]
	if rw1.Busy != 0 || rw1.MeanQueue != 0 {
		t.Fatalf("replica window 1 = %+v, want idle", rw1)
	}
	// Homogeneous fallback kind name.
	if len(roll.Kinds) != 1 || roll.Kinds[0].Kind != "replica" {
		t.Fatalf("kinds = %+v, want single 'replica' bucket", roll.Kinds)
	}
}

func TestRollAutoWindowAndEmpty(t *testing.T) {
	if roll := Roll(nil, nil, nil, RollupConfig{}); len(roll.Fleet) != 0 {
		t.Fatalf("empty stream produced %d windows", len(roll.Fleet))
	}
	// A 0.4s run floors the auto window at 1s: everything in one bucket.
	ev := chain(1, 0, 0, 0, 0.1, 0.1, 0.2, 0.4)
	roll := Roll(ev, nil, nil, RollupConfig{})
	if roll.Window != time.Second || len(roll.Fleet) != 1 {
		t.Fatalf("auto window = %v over %d buckets, want 1s over 1", roll.Window, len(roll.Fleet))
	}
}

func TestWriteRollupRenders(t *testing.T) {
	ev := chain(1, 0, 0, 0, 0.1, 0.1, 0.5, 1.9)
	roll := Roll(ev, []obs.Sample{{At: at(0.5), Replica: 0, QueueDepth: 1}}, nil,
		RollupConfig{Window: time.Second, Kinds: []string{"loong"}})
	var b strings.Builder
	if err := WriteRollup(&b, roll); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fleet rollup", "burn", "kind loong", "busy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rollup output missing %q:\n%s", want, out)
		}
	}
}
