package analyze

import (
	"time"

	"loongserve/internal/obs"
	"loongserve/internal/simevent"
)

// RollupConfig parameterizes Roll.
type RollupConfig struct {
	// Window is the fixed simulated-time bucket width. Zero picks one
	// automatically: the run's span divided into autoWindows buckets,
	// floored at one simulated second.
	Window time.Duration
	// Kinds maps global replica index → replica kind name, enabling the
	// per-kind series. Nil (or a missing index) buckets the replica under
	// kind "" which Roll reports as "replica".
	Kinds []string
}

// autoWindows is the bucket count auto-windowing aims for.
const autoWindows = 12

// FleetWindow is one fleet-wide time bucket.
type FleetWindow struct {
	Start time.Duration

	Enqueued  int // enqueue events (re-enqueues included)
	Finished  int
	SLOMisses int // finished here with E2E over a non-zero budget
	// BurnRate is SLOMisses/Finished for this window (0 when idle): the
	// rate at which the window burned through its error budget.
	BurnRate float64

	Migrations     int
	MigratedTokens int64

	// Sampler joins: means over the fleet samples falling in the window.
	MeanOutstanding float64
	MeanActive      float64
	Samples         int
}

// ReplicaWindow is one replica's (or kind's) time bucket.
type ReplicaWindow struct {
	Start time.Duration

	Routed    int // requests the policy sent here
	Finished  int
	SLOMisses int

	// Sampler joins: queue-depth statistics over this replica's samples
	// in the window. Busy is the fraction of samples with work queued —
	// the utilization proxy a discrete-event replica exposes.
	MeanQueue float64
	MaxQueue  int
	Busy      float64
	Samples   int
}

// ReplicaSeries is one replica's full windowed series.
type ReplicaSeries struct {
	Replica int
	Kind    string
	Windows []ReplicaWindow
}

// KindSeries aggregates every replica of one kind.
type KindSeries struct {
	Kind     string
	Replicas int
	Windows  []ReplicaWindow
}

// Rollup is the fleet time-series view Roll produces.
type Rollup struct {
	Window time.Duration
	Start  time.Duration // first event timestamp (window 0 origin)
	End    time.Duration // last event timestamp

	Fleet    []FleetWindow
	Replicas []ReplicaSeries
	Kinds    []KindSeries
}

// Roll joins the event stream with the sampler's telemetry rings into
// fixed-window time series. samples and fleetSamples may be nil (no
// sampler attached); the event-derived columns still fill in.
func Roll(events []obs.Event, samples []obs.Sample, fleetSamples []obs.FleetSample, cfg RollupConfig) *Rollup {
	r := &Rollup{}
	if len(events) == 0 {
		return r
	}
	r.Start = time.Duration(events[0].At)
	r.End = time.Duration(events[len(events)-1].At)
	for _, s := range samples {
		if t := time.Duration(s.At); t > r.End {
			r.End = t
		}
	}
	r.Window = cfg.Window
	if r.Window <= 0 {
		r.Window = (r.End - r.Start) / autoWindows
		if r.Window < time.Second {
			r.Window = time.Second
		}
	}
	n := int((r.End-r.Start)/r.Window) + 1
	r.Fleet = make([]FleetWindow, n)
	for i := range r.Fleet {
		r.Fleet[i].Start = r.Start + time.Duration(i)*r.Window
	}
	win := func(at simevent.Time) int {
		i := int((time.Duration(at) - r.Start) / r.Window)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}

	// Replica series are sized lazily as indices appear (replicas can be
	// provisioned mid-run by the autoscaler).
	var reps []*ReplicaSeries
	repAt := func(idx int) *ReplicaSeries {
		for len(reps) <= idx {
			rs := &ReplicaSeries{Replica: len(reps), Windows: make([]ReplicaWindow, n)}
			for i := range rs.Windows {
				rs.Windows[i].Start = r.Fleet[i].Start
			}
			if k := len(reps); k < len(cfg.Kinds) {
				rs.Kind = cfg.Kinds[k]
			}
			reps = append(reps, rs)
		}
		return reps[idx]
	}

	// Pass 1: events. Budgets ride on Enqueue.B; misses land in the
	// window (and on the replica) where the request finished.
	budgets := make(map[int64]int64)
	arrivals := make(map[int64]simevent.Time)
	for _, e := range events {
		switch e.Kind {
		case obs.KindEnqueue:
			w := win(e.At)
			r.Fleet[w].Enqueued++
			if _, seen := arrivals[e.Request]; !seen {
				arrivals[e.Request] = e.At
				budgets[e.Request] = e.B
			}
		case obs.KindRoute:
			if e.Replica >= 0 {
				repAt(e.Replica).Windows[win(e.At)].Routed++
			}
		case obs.KindMigrate:
			w := win(e.At)
			r.Fleet[w].Migrations++
			r.Fleet[w].MigratedTokens += int64(e.Tokens)
		case obs.KindFinish:
			w := win(e.At)
			r.Fleet[w].Finished++
			miss := false
			if b := budgets[e.Request]; b > 0 {
				if arr, ok := arrivals[e.Request]; ok && int64(e.At-arr) > b {
					miss = true
				}
			}
			if miss {
				r.Fleet[w].SLOMisses++
			}
			if e.Replica >= 0 {
				rw := &repAt(e.Replica).Windows[w]
				rw.Finished++
				if miss {
					rw.SLOMisses++
				}
			}
			delete(arrivals, e.Request)
			delete(budgets, e.Request)
		}
	}

	// Pass 2: sampler joins.
	for _, s := range fleetSamples {
		w := &r.Fleet[win(s.At)]
		w.MeanOutstanding += float64(s.OutstandingReqs)
		w.MeanActive += float64(s.Active)
		w.Samples++
	}
	for i := range r.Fleet {
		w := &r.Fleet[i]
		if w.Samples > 0 {
			w.MeanOutstanding /= float64(w.Samples)
			w.MeanActive /= float64(w.Samples)
		}
		if w.Finished > 0 {
			w.BurnRate = float64(w.SLOMisses) / float64(w.Finished)
		}
	}
	busy := make([][]int, 0)
	for _, s := range samples {
		if s.Replica < 0 {
			continue
		}
		rw := &repAt(s.Replica).Windows[win(s.At)]
		rw.MeanQueue += float64(s.QueueDepth)
		if s.QueueDepth > rw.MaxQueue {
			rw.MaxQueue = s.QueueDepth
		}
		for len(busy) <= s.Replica {
			busy = append(busy, make([]int, n))
		}
		if s.QueueDepth > 0 {
			busy[s.Replica][win(s.At)]++
		}
		rw.Samples++
	}
	for ri, rs := range reps {
		for i := range rs.Windows {
			w := &rs.Windows[i]
			if w.Samples > 0 {
				w.MeanQueue /= float64(w.Samples)
				if ri < len(busy) {
					w.Busy = float64(busy[ri][i]) / float64(w.Samples)
				}
			}
		}
	}

	for _, rs := range reps {
		r.Replicas = append(r.Replicas, *rs)
	}
	r.Kinds = rollKinds(r.Replicas, n, r.Fleet)
	return r
}

// rollKinds merges replica series sharing a kind name, preserving first-
// appearance order so homogeneous fleets collapse to one deterministic
// row group.
func rollKinds(reps []ReplicaSeries, n int, fleet []FleetWindow) []KindSeries {
	order := make([]string, 0, 4)
	byKind := make(map[string]*KindSeries)
	for _, rs := range reps {
		kind := rs.Kind
		if kind == "" {
			kind = "replica"
		}
		ks := byKind[kind]
		if ks == nil {
			ks = &KindSeries{Kind: kind, Windows: make([]ReplicaWindow, n)}
			for i := range ks.Windows {
				ks.Windows[i].Start = fleet[i].Start
			}
			byKind[kind] = ks
			order = append(order, kind)
		}
		ks.Replicas++
		for i := range rs.Windows {
			src, dst := &rs.Windows[i], &ks.Windows[i]
			dst.Routed += src.Routed
			dst.Finished += src.Finished
			dst.SLOMisses += src.SLOMisses
			// Sample-weighted merge keeps MeanQueue and Busy true means
			// over the kind's pooled samples.
			if src.Samples > 0 {
				tot := dst.Samples + src.Samples
				dst.MeanQueue = (dst.MeanQueue*float64(dst.Samples) + src.MeanQueue*float64(src.Samples)) / float64(tot)
				dst.Busy = (dst.Busy*float64(dst.Samples) + src.Busy*float64(src.Samples)) / float64(tot)
				dst.Samples = tot
			}
			if src.MaxQueue > dst.MaxQueue {
				dst.MaxQueue = src.MaxQueue
			}
		}
	}
	out := make([]KindSeries, 0, len(order))
	for _, k := range order {
		out = append(out, *byKind[k])
	}
	return out
}
