package analyze

import (
	"sort"
	"time"

	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/simevent"
)

// Report aggregates a run's attributions: every finished request in
// stream order, a streaming metrics.Dist per phase (seconds), and the
// counts the conservation story needs.
type Report struct {
	Requests []Attribution

	// PhaseDist folds each finished request's phase durations in seconds;
	// E2EDist folds the end-to-end latencies.
	PhaseDist [NumPhases]metrics.Dist
	E2EDist   metrics.Dist

	// Incomplete counts requests that enqueued but never finished —
	// expected only when a run was truncated, and exactly what the
	// Auditor's MissingFinish flags.
	Incomplete int
	// SLOMisses counts finished requests that blew a non-zero budget.
	SLOMisses int
	// Reenqueued counts finished requests with more than one Enqueue.
	Reenqueued int
}

// reqTrack is the per-request reconstruction state Attribute walks the
// stream with.
type reqTrack struct {
	session    int64
	input      int // full input length (Enqueue.Tokens)
	slo        int64
	firstEnq   simevent.Time
	firstRoute simevent.Time
	lastRoute  simevent.Time
	deliver    simevent.Time
	replica    int
	hit        int
	enqueues   int
	routes     int
	delivered  bool
}

// Attribute reconstructs per-request critical paths from an event stream
// in collector (arrival) order. Events outside the request lifecycle —
// replica lifecycle, autoscale, migrations, engine events — shape the
// phase boundaries but produce no attributions of their own. Requests
// still in flight at the end of the stream are counted, not attributed.
func Attribute(events []obs.Event) *Report {
	rep := &Report{}
	reqs := make(map[int64]*reqTrack)
	// Engine prefill-starts per replica, in stream (= time) order; the
	// prefill-wait heuristic binary-searches these.
	starts := make(map[int][]simevent.Time)

	for _, e := range events {
		switch e.Kind {
		case obs.KindEnqueue:
			t := reqs[e.Request]
			if t == nil {
				t = &reqTrack{firstEnq: e.At, session: e.Session}
				reqs[e.Request] = t
			}
			t.enqueues++
			t.input = e.Tokens
			t.slo = e.B
		case obs.KindRoute:
			t := reqs[e.Request]
			if t == nil {
				continue // corrupt stream; the Auditor owns flagging this
			}
			if t.routes == 0 {
				t.firstRoute = e.At
			}
			t.routes++
			t.lastRoute = e.At
			t.replica = e.Replica
		case obs.KindCacheLookup:
			t := reqs[e.Request]
			if t == nil {
				continue
			}
			t.deliver = e.At
			t.delivered = true
			t.hit = e.Tokens
			t.input = int(e.A) // authoritative full input at delivery
		case obs.KindPrefillStart:
			if e.Replica >= 0 {
				starts[e.Replica] = append(starts[e.Replica], e.At)
			}
		case obs.KindFinish:
			t := reqs[e.Request]
			if t == nil || !t.delivered || t.routes == 0 {
				continue
			}
			a := attributeOne(t, e, starts[t.replica])
			rep.Requests = append(rep.Requests, a)
			rep.E2EDist.Add(a.E2E().Seconds())
			for p := Phase(0); p < NumPhases; p++ {
				rep.PhaseDist[p].Add(a.Phases[p].Seconds())
			}
			if a.SLOMiss() {
				rep.SLOMisses++
			}
			if a.Enqueues > 1 {
				rep.Reenqueued++
			}
			delete(reqs, e.Request)
		}
	}
	rep.Incomplete = len(reqs)
	return rep
}

// attributeOne slices one finished request's [firstEnq, finish] interval
// into the six phases. Each boundary is clamped to be monotone, so the
// phases are non-negative and sum to E2E exactly even on streams where a
// boundary event is missing or degenerate.
func attributeOne(t *reqTrack, fin obs.Event, repStarts []simevent.Time) Attribution {
	a := Attribution{
		Request:   fin.Request,
		Session:   fin.Session,
		Replica:   fin.Replica,
		InputLen:  t.input,
		OutputLen: fin.Tokens,
		HitTokens: t.hit,
		Enqueues:  t.enqueues,
		SLOBudget: time.Duration(t.slo),
		Arrival:   time.Duration(t.firstEnq),
		Finish:    time.Duration(fin.At),
	}
	firstToken := time.Duration(fin.A) // Finish.A = first-token timestamp
	tEnq := time.Duration(t.firstEnq)
	tR1 := clamp(time.Duration(t.firstRoute), tEnq, a.Finish)
	tRn := clamp(time.Duration(t.lastRoute), tR1, a.Finish)
	tDel := clamp(time.Duration(t.deliver), tRn, a.Finish)
	tFT := clamp(firstToken, tDel, a.Finish)

	// Prefill wait: the first engine prefill-start on the serving replica
	// inside [delivery, first token]. Engines that don't bridge trace
	// events contribute no starts and the wait is zero.
	tPS := tDel
	if i := sort.Search(len(repStarts), func(i int) bool {
		return time.Duration(repStarts[i]) >= tDel
	}); i < len(repStarts) && time.Duration(repStarts[i]) <= tFT {
		tPS = time.Duration(repStarts[i])
	}

	a.Phases[PhaseQueue] = tR1 - tEnq
	a.Phases[PhaseReenqueue] = tRn - tR1
	a.Phases[PhaseMigration] = tDel - tRn
	a.Phases[PhasePrefillWait] = tPS - tDel
	a.Phases[PhasePrefill] = tFT - tPS
	a.Phases[PhaseDecode] = a.Finish - tFT
	return a
}

func clamp(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stragglers returns the k slowest finished requests by end-to-end
// latency, slowest first; ties break on request id so the report is
// deterministic across runs.
func (r *Report) Stragglers(k int) []Attribution {
	out := append([]Attribution(nil), r.Requests...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].E2E() != out[j].E2E() {
			return out[i].E2E() > out[j].E2E()
		}
		return out[i].Request < out[j].Request
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// PhaseShare returns phase p's share of total attributed latency across
// all finished requests (0 when nothing finished).
func (r *Report) PhaseShare(p Phase) float64 {
	total := r.E2EDist.Sum()
	if total <= 0 {
		return 0
	}
	return r.PhaseDist[p].Sum() / total
}
