package obs

import (
	"strings"
	"testing"

	"loongserve/internal/simevent"
)

// TestKindStrings: every kind has a distinct non-empty name, and the
// engine-kind predicate splits the enum where documented.
func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if Kind(numKinds).String() != "kind(20)" && !strings.HasPrefix(Kind(numKinds).String(), "kind(") {
		t.Fatalf("out-of-range kind should render as kind(N), got %q", Kind(numKinds).String())
	}
	if KindFinish.EngineKind() {
		t.Fatal("finish is a gateway kind")
	}
	if !KindPrefillStart.EngineKind() || !KindEngineEvent.EngineKind() {
		t.Fatal("engine kinds misclassified")
	}
}

// TestCollectorAndCounts: arrival order is retained, Reset keeps capacity,
// and Counts tallies per kind.
func TestCollectorAndCounts(t *testing.T) {
	var c Collector
	c.Emit(Event{At: 1, Kind: KindEnqueue, Request: 1})
	c.Emit(Event{At: 2, Kind: KindRoute, Request: 1, Replica: 0})
	c.Emit(Event{At: 3, Kind: KindRoute, Request: 2, Replica: 1})
	if len(c.Events) != 3 || c.Events[0].Kind != KindEnqueue || c.Events[2].Replica != 1 {
		t.Fatalf("collector lost order: %+v", c.Events)
	}
	counts := Counts(c.Events)
	if counts[KindEnqueue] != 1 || counts[KindRoute] != 2 {
		t.Fatalf("counts = %v", counts)
	}

	c.Reset()
	if len(c.Events) != 0 || cap(c.Events) < 3 {
		t.Fatalf("reset should keep capacity: len=%d cap=%d", len(c.Events), cap(c.Events))
	}
}

// TestCollectorEmitAllocFree: once the backing array is warm, Emit does not
// allocate — the Event is a value type and append reuses capacity.
func TestCollectorEmitAllocFree(t *testing.T) {
	var c Collector
	for i := 0; i < 64; i++ {
		c.Emit(Event{At: simevent.Time(i), Kind: KindRoute, Label: "static"})
	}
	c.Reset()
	i := 0
	allocs := testing.AllocsPerRun(64, func() {
		if i == 64 {
			c.Reset()
			i = 0
		}
		c.Emit(Event{At: simevent.Time(i), Kind: KindRoute, Label: "static"})
		i++
	})
	if allocs != 0 {
		t.Fatalf("warmed Collector.Emit allocates %.1f per call, want 0", allocs)
	}
}

// TestTee fans out in order.
func TestTee(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	tee := Tee{a, b}
	tee.Emit(Event{Kind: KindFinish, Request: 9})
	if len(a.Events) != 1 || len(b.Events) != 1 || a.Events[0].Request != 9 {
		t.Fatalf("tee did not fan out: a=%v b=%v", a.Events, b.Events)
	}
}

// TestTimeline renders every event kind without panicking, one line per
// event, with replica attribution and kind names present.
func TestTimeline(t *testing.T) {
	events := []Event{
		{At: 1e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 100, A: 20},
		{At: 2e9, Kind: KindRoute, Replica: 2, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 3e9, Kind: KindCacheLookup, Replica: 2, Session: 7, Request: 1, Tokens: 50, A: 100},
		{At: 4e9, Kind: KindMigrate, Replica: 2, A: 0, Tokens: 500, B: 1e6, Label: "drain"},
		{At: 5e9, Kind: KindFinish, Replica: 2, Session: 7, Request: 1, Tokens: 20, A: 35e8, B: 1e9},
		{At: 6e9, Kind: KindAutoscale, Replica: -1, Tokens: 4, A: 2, B: 1, Label: "scale-up"},
		{At: 7e9, Kind: KindProvision, Replica: 3, Label: "gpu-large"},
		{At: 8e9, Kind: KindPrefillStart, Replica: 2, Group: 1, Tokens: 100, A: 4, B: 2},
	}
	var sb strings.Builder
	Timeline(&sb, events)
	out := sb.String()
	if got := strings.Count(out, "\n"); got != len(events) {
		t.Fatalf("timeline has %d lines, want %d:\n%s", got, len(events), out)
	}
	for _, want := range []string{"enqueue", "route", "cache-lookup", "migrate", "finish", "autoscale", "provision", "prefill-start", "r2", "fleet", "affinity", "gpu-large"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// teeProbe records the interleaving Tee produces: which sink saw which
// event, in global order.
type teeProbe struct {
	id  int
	log *[]int // appended with id on every Emit
}

func (p *teeProbe) Emit(Event) { *p.log = append(*p.log, p.id) }

// TestTeeEmitOrdering pins the documented guarantee: Tee delivers each
// event to every sink in slice order, completing one event's fan-out
// before the next event begins — sinks never observe reordered streams.
func TestTeeEmitOrdering(t *testing.T) {
	var log []int
	tee := Tee{&teeProbe{0, &log}, &teeProbe{1, &log}, &teeProbe{2, &log}}
	const events = 5
	for i := 0; i < events; i++ {
		tee.Emit(Event{At: simevent.Time(i), Kind: KindEnqueue})
	}
	if len(log) != 3*events {
		t.Fatalf("fan-out delivered %d emits, want %d", len(log), 3*events)
	}
	for i, id := range log {
		if id != i%3 {
			t.Fatalf("delivery %d went to sink %d, want sink %d (in-order fan-out)", i, id, i%3)
		}
	}
}

// TestCollectorResetReusesBacking pins Reset's documented guarantee: the
// backing array survives, so a reused collector re-fills to its previous
// high-water mark without allocating and without changing identity.
func TestCollectorResetReusesBacking(t *testing.T) {
	var c Collector
	const n = 128
	for i := 0; i < n; i++ {
		c.Emit(Event{At: simevent.Time(i), Kind: KindRoute, Label: "static"})
	}
	before := &c.Events[0]
	c.Reset()
	if len(c.Events) != 0 || cap(c.Events) < n {
		t.Fatalf("reset: len=%d cap=%d, want 0 and >= %d", len(c.Events), cap(c.Events), n)
	}
	allocs := testing.AllocsPerRun(8, func() {
		c.Reset()
		for i := 0; i < n; i++ {
			c.Emit(Event{At: simevent.Time(i), Kind: KindRoute, Label: "static"})
		}
	})
	if allocs != 0 {
		t.Fatalf("reset-and-refill cycle allocates %.1f, want 0", allocs)
	}
	if &c.Events[0] != before {
		t.Fatal("reset-and-refill moved the backing array — reuse guarantee broken")
	}
}

// TestKindByName: the name → kind lookup inverts String for every kind
// and rejects unknowns.
func TestKindByName(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Fatal("unknown name accepted")
	}
}
