package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"loongserve/internal/simevent"
)

// ChromeOptions parameterizes the Chrome trace-event export.
type ChromeOptions struct {
	// ReplicaKinds names each global replica index's kind; replica tracks
	// are labeled "replica N (kind)". Indices beyond the slice fall back to
	// "replica N".
	ReplicaKinds []string
	// Policy is recorded in the trace's otherData block.
	Policy string
}

// Track layout of the exported trace. One process per replica plus one for
// the gateway and one holding a thread per session, so Perfetto shows
// per-replica and per-session swim lanes side by side.
const (
	chromePIDGateway     = 1
	chromePIDSessions    = 2
	chromePIDReplicaBase = 10

	chromeTIDAutoscaler = 1 // gateway pid
	chromeTIDRouter     = 2 // gateway pid: stateless request instants

	chromeTIDLifecycle  = 1 // replica pid
	chromeTIDMigrations = 2 // replica pid
	chromeTIDEngine     = 3 // replica pid
	chromeTIDRequests   = 4 // replica pid: stateless request spans
)

// WriteChromeTrace renders the event stream (and, when non-nil, the
// sampler's time series as counter tracks) as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// The JSON is written by hand, field order fixed and map iteration sorted,
// so the output is byte-identical for identical inputs regardless of how
// the run that produced them was executed — the property the serial-vs-
// parallel determinism guard asserts.
func WriteChromeTrace(w io.Writer, events []Event, sampler *Sampler, opts ChromeOptions) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}

	// Pre-scan: how many replicas appear, and which sessions.
	nReplicas := len(opts.ReplicaKinds)
	sessions := map[int64]bool{}
	grow := func(r int) {
		if r+1 > nReplicas {
			nReplicas = r + 1
		}
	}
	for _, e := range events {
		if e.Replica >= 0 {
			grow(e.Replica)
		}
		if e.Kind == KindMigrate && e.A >= 0 {
			grow(int(e.A))
		}
		if e.Session != 0 {
			sessions[e.Session] = true
		}
	}
	if sampler != nil {
		for _, s := range sampler.Samples() {
			grow(s.Replica)
		}
	}
	sessionIDs := make([]int64, 0, len(sessions))
	for id := range sessions {
		sessionIDs = append(sessionIDs, id)
	}
	sort.Slice(sessionIDs, func(i, j int) bool { return sessionIDs[i] < sessionIDs[j] })

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"loongserve-obs\",\"policy\":%s},\"traceEvents\":[\n",
		quote(opts.Policy))

	// Metadata: process and thread names, in a fixed order.
	cw.meta(chromePIDGateway, 0, "process_name", "gateway")
	cw.meta(chromePIDGateway, 0, "process_sort_index", "0")
	cw.meta(chromePIDGateway, chromeTIDAutoscaler, "thread_name", "autoscaler")
	cw.meta(chromePIDGateway, chromeTIDRouter, "thread_name", "router")
	if len(sessionIDs) > 0 {
		cw.meta(chromePIDSessions, 0, "process_name", "sessions")
		cw.meta(chromePIDSessions, 0, "process_sort_index", "1")
		for _, id := range sessionIDs {
			cw.meta(chromePIDSessions, id, "thread_name", fmt.Sprintf("session %d", id))
		}
	}
	for r := 0; r < nReplicas; r++ {
		name := fmt.Sprintf("replica %d", r)
		if r < len(opts.ReplicaKinds) && opts.ReplicaKinds[r] != "" {
			name = fmt.Sprintf("replica %d (%s)", r, opts.ReplicaKinds[r])
		}
		pid := chromePIDReplicaBase + int64(r)
		cw.meta(pid, 0, "process_name", name)
		cw.meta(pid, 0, "process_sort_index", strconv.Itoa(2+r))
		cw.meta(pid, chromeTIDLifecycle, "thread_name", "lifecycle")
		cw.meta(pid, chromeTIDMigrations, "thread_name", "migrations")
		cw.meta(pid, chromeTIDEngine, "thread_name", "engine")
		cw.meta(pid, chromeTIDRequests, "thread_name", "requests")
	}

	for _, e := range events {
		cw.event(e)
	}
	if sampler != nil {
		for _, s := range sampler.Samples() {
			pid := chromePIDReplicaBase + int64(s.Replica)
			cw.counter(pid, s.At, "load", argList{
				{"queue_depth", float64(s.QueueDepth)},
				{"queued", float64(s.Queued)},
			})
			cw.counter(pid, s.At, "tokens", argList{
				{"outstanding", float64(s.OutTokens)},
				{"kv", float64(s.KVTokens)},
				{"cache", float64(s.CacheUsed)},
			})
			cw.counter(pid, s.At, "cache_hit_rate", argList{
				{"rate", s.HitRate()},
			})
		}
		for _, s := range sampler.FleetSamples() {
			cw.counter(chromePIDGateway, s.At, "replicas", argList{
				{"active", float64(s.Active)},
				{"warming", float64(s.Warming)},
				{"draining", float64(s.Draining)},
			})
			cw.counter(chromePIDGateway, s.At, "fleet", argList{
				{"outstanding_reqs", float64(s.OutstandingReqs)},
				{"cost_units", s.CostUnits},
			})
		}
	}

	bw.WriteString("\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// argList is an ordered set of numeric args — ordered so the rendering is
// deterministic (a map would iterate randomly).
type argList []struct {
	k string
	v float64
}

// chromeWriter emits trace-event objects, comma-separating them.
type chromeWriter struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (cw *chromeWriter) begin() {
	if cw.wrote {
		cw.w.WriteString(",\n")
	}
	cw.wrote = true
}

// ts renders a nanosecond timestamp as trace-event microseconds.
func ts(at int64) string {
	return fmt.Sprintf("%d.%03d", at/1000, at%1000)
}

func (cw *chromeWriter) meta(pid, tid int64, name, value string) {
	cw.begin()
	fmt.Fprintf(cw.w, "{\"name\":%s,\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
		quote(name), pid, tid, quote(value))
}

func (cw *chromeWriter) instant(pid, tid int64, at int64, name string, args argList) {
	cw.begin()
	fmt.Fprintf(cw.w, "{\"name\":%s,\"ph\":\"i\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"s\":\"t\"",
		quote(name), ts(at), pid, tid)
	cw.args(args)
	cw.w.WriteString("}")
}

func (cw *chromeWriter) span(pid, tid int64, start, dur int64, name string, args argList) {
	if dur < 0 {
		dur = 0
	}
	cw.begin()
	fmt.Fprintf(cw.w, "{\"name\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d",
		quote(name), ts(start), ts(dur), pid, tid)
	cw.args(args)
	cw.w.WriteString("}")
}

func (cw *chromeWriter) counter(pid int64, at simevent.Time, name string, args argList) {
	cw.begin()
	fmt.Fprintf(cw.w, "{\"name\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":0",
		quote(name), ts(int64(at)), pid)
	cw.args(args)
	cw.w.WriteString("}")
}

func (cw *chromeWriter) args(args argList) {
	if len(args) == 0 {
		return
	}
	cw.w.WriteString(",\"args\":{")
	for i, a := range args {
		if i > 0 {
			cw.w.WriteString(",")
		}
		cw.w.WriteString(quote(a.k))
		cw.w.WriteString(":")
		cw.w.WriteString(num(a.v))
	}
	cw.w.WriteString("}")
}

// event dispatches one Event to its track.
func (cw *chromeWriter) event(e Event) {
	at := int64(e.At)
	switch e.Kind {
	case KindEnqueue:
		if e.Session != 0 {
			cw.instant(chromePIDSessions, e.Session, at, "enqueue", argList{
				{"req", float64(e.Request)}, {"in", float64(e.Tokens)}, {"out", float64(e.A)},
			})
		} else {
			cw.instant(chromePIDGateway, chromeTIDRouter, at, "enqueue", argList{
				{"req", float64(e.Request)}, {"in", float64(e.Tokens)}, {"out", float64(e.A)},
			})
		}
	case KindRoute:
		args := argList{
			{"req", float64(e.Request)}, {"replica", float64(e.Replica)}, {"from", float64(e.A)},
		}
		if e.Session != 0 {
			cw.instant(chromePIDSessions, e.Session, at, "route", args)
		} else {
			cw.instant(chromePIDGateway, chromeTIDRouter, at, "route", args)
		}
	case KindCacheLookup:
		args := argList{
			{"req", float64(e.Request)}, {"hit", float64(e.Tokens)}, {"input", float64(e.A)},
		}
		name := "cache-hit"
		if e.Tokens == 0 {
			name = "cache-miss"
		}
		if e.Session != 0 {
			cw.instant(chromePIDSessions, e.Session, at, name, args)
		} else {
			pid := chromePIDReplicaBase + int64(e.Replica)
			cw.instant(pid, chromeTIDRequests, at, name, args)
		}
	case KindMigrate:
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.span(pid, chromeTIDMigrations, at, e.B, "migrate:"+e.Label, argList{
			{"dest", float64(e.A)}, {"tokens", float64(e.Tokens)},
		})
	case KindFinish:
		first, arrival := e.A, e.B
		args := argList{
			{"req", float64(e.Request)}, {"replica", float64(e.Replica)}, {"out", float64(e.Tokens)},
		}
		pid, tid := int64(chromePIDSessions), e.Session
		if e.Session == 0 {
			pid, tid = chromePIDReplicaBase+int64(e.Replica), chromeTIDRequests
		}
		cw.span(pid, tid, arrival, first-arrival, "prefill", args)
		cw.span(pid, tid, first, at-first, "decode", args)
	case KindProvision, KindActivate, KindDrain, KindRetire:
		pid := chromePIDReplicaBase + int64(e.Replica)
		var args argList
		if e.Label != "" {
			// Kind names are numeric-only args elsewhere; encode the replica
			// kind as a dedicated instant name instead of a string arg so the
			// args block stays uniformly numeric.
			cw.instant(pid, chromeTIDLifecycle, at, e.Kind.String()+":"+e.Label, args)
			return
		}
		cw.instant(pid, chromeTIDLifecycle, at, e.Kind.String(), args)
	case KindAutoscale:
		cw.instant(chromePIDGateway, chromeTIDAutoscaler, at, e.Label, argList{
			{"replica", float64(e.Replica)}, {"outstanding", float64(e.Tokens)},
			{"active", float64(e.A)}, {"warming", float64(e.B)},
		})
	case KindCrash:
		pid := chromePIDReplicaBase + int64(e.Replica)
		name := "crash"
		if e.Label != "" {
			name = "crash:" + e.Label
		}
		cw.instant(pid, chromeTIDLifecycle, at, name, argList{
			{"inflight", float64(e.Tokens)}, {"kv_lost", float64(e.A)},
		})
	case KindRecover:
		args := argList{
			{"req", float64(e.Request)}, {"salvaged", float64(e.Tokens)}, {"from", float64(e.A)},
		}
		if e.Session != 0 {
			cw.instant(chromePIDSessions, e.Session, at, "recover", args)
		} else {
			cw.instant(chromePIDGateway, chromeTIDRouter, at, "recover", args)
		}
	case KindHedgeLaunch:
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.instant(pid, chromeTIDRequests, at, "hedge-launch", argList{
			{"req", float64(e.Request)}, {"in", float64(e.Tokens)},
			{"primary", float64(e.A)}, {"elapsed_ns", float64(e.B)},
		})
	case KindHedgeWin, KindHedgeLose:
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.instant(pid, chromeTIDRequests, at, e.Kind.String(), argList{
			{"req", float64(e.Request)}, {"tokens", float64(e.Tokens)}, {"other", float64(e.A)},
		})
	case KindDirectoryUpdate:
		// The directory is gateway state — render on the router track even
		// when the location is a replica (or -1, the cold tier), which a
		// replica-keyed pid could not express.
		cw.instant(chromePIDGateway, chromeTIDRouter, at, "directory:"+e.Label, argList{
			{"loc", float64(e.Replica)}, {"delta", float64(e.Tokens)}, {"total", float64(e.A)},
		})
	case KindContentRoute:
		cw.instant(chromePIDGateway, chromeTIDRouter, at, "content-route", argList{
			{"req", float64(e.Request)}, {"dest", float64(e.Replica)},
			{"claim", float64(e.Tokens)}, {"queue", float64(e.A)}, {"eligible", float64(e.B)},
		})
	case KindColdSpill:
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.instant(pid, chromeTIDMigrations, at, "cold-spill", argList{
			{"tokens", float64(e.Tokens)}, {"cold_used", float64(e.A)}, {"cold_blocks", float64(e.B)},
		})
	case KindColdFetch:
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.instant(pid, chromeTIDMigrations, at, "cold-fetch", argList{
			{"req", float64(e.Request)}, {"tokens", float64(e.Tokens)},
			{"link_ns", float64(e.A)}, {"recompute_ns", float64(e.B)},
		})
	default: // engine-bridged kinds
		pid := chromePIDReplicaBase + int64(e.Replica)
		cw.instant(pid, chromeTIDEngine, at, e.Kind.String(), argList{
			{"group", float64(e.Group)}, {"tokens", float64(e.Tokens)},
			{"dop", float64(e.A)}, {"batch", float64(e.B)},
		})
	}
}

// quote renders a JSON string literal. Inputs are code-controlled labels;
// the escaper still covers the full set so no input can corrupt the JSON.
func quote(s string) string {
	return strconv.Quote(s)
}

// num renders a float deterministically: integral values print as
// integers, the rest in shortest round-trip form.
func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
