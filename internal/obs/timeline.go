package obs

import (
	"fmt"
	"io"
	"time"
)

// Timeline renders the event stream as a human-readable per-event log —
// the fleet-wide analogue of core.Tracer.Timeline, covering routing,
// caching, migrations, replica lifecycle and the bridged engine events in
// one chronological view. Events are assumed to already be in emission
// order (which is chronological: everything fires on one simulator clock).
func Timeline(w io.Writer, events []Event) {
	for _, e := range events {
		where := "fleet"
		if e.Replica >= 0 {
			where = fmt.Sprintf("r%d", e.Replica)
		}
		fmt.Fprintf(w, "%12v  %-5s %-13s %s\n",
			time.Duration(e.At).Round(time.Microsecond), where, e.Kind, detail(e))
	}
}

// detail renders the kind-specific fields of one event.
func detail(e Event) string {
	switch e.Kind {
	case KindEnqueue:
		return fmt.Sprintf("req=%d session=%d in=%d out=%d", e.Request, e.Session, e.Tokens, e.A)
	case KindRoute:
		if e.A >= 0 {
			return fmt.Sprintf("req=%d session=%d policy=%s migrate-from=r%d", e.Request, e.Session, e.Label, e.A)
		}
		return fmt.Sprintf("req=%d session=%d policy=%s", e.Request, e.Session, e.Label)
	case KindCacheLookup:
		if e.Tokens == 0 {
			return fmt.Sprintf("req=%d miss (input=%d)", e.Request, e.A)
		}
		return fmt.Sprintf("req=%d hit=%d/%d tokens", e.Request, e.Tokens, e.A)
	case KindMigrate:
		return fmt.Sprintf("session=%d %s: %d KV tokens -> r%d (link %v)",
			e.Session, e.Label, e.Tokens, e.A, time.Duration(e.B).Round(time.Microsecond))
	case KindFinish:
		return fmt.Sprintf("req=%d session=%d out=%d prefill=%v decode=%v",
			e.Request, e.Session, e.Tokens,
			time.Duration(e.A-e.B).Round(time.Microsecond),
			(time.Duration(e.At)-time.Duration(e.A)).Round(time.Microsecond))
	case KindProvision, KindActivate, KindDrain, KindRetire:
		if e.Label != "" {
			return fmt.Sprintf("kind=%s", e.Label)
		}
		return ""
	case KindAutoscale:
		return fmt.Sprintf("%s replica=%d outstanding=%d active=%d warming=%d",
			e.Label, e.Replica, e.Tokens, e.A, e.B)
	case KindDirectoryUpdate:
		return fmt.Sprintf("%s loc=%d delta=%+d total=%d", e.Label, e.Replica, e.Tokens, e.A)
	case KindContentRoute:
		return fmt.Sprintf("req=%d claim=%d queue=%d eligible=%d", e.Request, e.Tokens, e.A, e.B)
	case KindColdSpill:
		return fmt.Sprintf("tokens=%d cold_used=%d cold_blocks=%d", e.Tokens, e.A, e.B)
	case KindColdFetch:
		return fmt.Sprintf("req=%d tokens=%d link=%v recompute=%v", e.Request, e.Tokens,
			time.Duration(e.A).Round(time.Microsecond), time.Duration(e.B).Round(time.Microsecond))
	default: // engine-bridged kinds
		return fmt.Sprintf("group=%d dop=%d batch=%d tokens=%d", e.Group, e.A, e.B, e.Tokens)
	}
}
