package obs

import (
	"testing"

	"loongserve/internal/simevent"
)

// TestSamplerRingWrap: a cap-4 ring recording 10 samples keeps the last 4
// oldest-first and counts the 6 overwritten.
func TestSamplerRingWrap(t *testing.T) {
	s := &Sampler{Cap: 4}
	for i := 0; i < 10; i++ {
		s.Record(Sample{At: simevent.Time(i), Replica: i % 2, QueueDepth: i})
		s.RecordFleet(FleetSample{At: simevent.Time(i), Active: i})
	}
	if s.Len() != 4 || s.FleetLen() != 4 {
		t.Fatalf("len = %d/%d, want 4/4", s.Len(), s.FleetLen())
	}
	if s.Dropped() != 6 || s.FleetDropped() != 6 {
		t.Fatalf("dropped = %d/%d, want 6/6", s.Dropped(), s.FleetDropped())
	}
	got := s.Samples()
	for i, sm := range got {
		if want := simevent.Time(6 + i); sm.At != want || sm.QueueDepth != 6+i {
			t.Fatalf("sample %d = %+v, want At=%d (oldest-first tail)", i, sm, want)
		}
	}
	fgot := s.FleetSamples()
	for i, sm := range fgot {
		if sm.Active != 6+i {
			t.Fatalf("fleet sample %d = %+v, want Active=%d", i, sm, 6+i)
		}
	}

	s.Reset()
	if s.Len() != 0 || s.FleetLen() != 0 || s.Dropped() != 0 {
		t.Fatalf("reset left state: len=%d flen=%d dropped=%d", s.Len(), s.FleetLen(), s.Dropped())
	}
	s.Record(Sample{At: 99})
	if got := s.Samples(); len(got) != 1 || got[0].At != 99 {
		t.Fatalf("post-reset record lost: %+v", got)
	}
}

// TestSamplerPartialFill: below capacity, Samples returns exactly what was
// recorded in order.
func TestSamplerPartialFill(t *testing.T) {
	s := &Sampler{Cap: 8}
	for i := 0; i < 3; i++ {
		s.Record(Sample{At: simevent.Time(i * 10)})
	}
	got := s.Samples()
	if len(got) != 3 || got[0].At != 0 || got[2].At != 20 {
		t.Fatalf("partial fill: %+v", got)
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d before wrap", s.Dropped())
	}
}

// TestSamplerDefaultCap: an unset Cap falls back to DefaultSamplerCap on
// first record.
func TestSamplerDefaultCap(t *testing.T) {
	s := &Sampler{}
	s.Record(Sample{})
	if len(s.ring) != DefaultSamplerCap {
		t.Fatalf("default ring cap = %d, want %d", len(s.ring), DefaultSamplerCap)
	}
}

// TestSamplerRecordAllocFree: after the lazy ring allocation, Record and
// RecordFleet never allocate — the sampler can run every simulated second
// of a long fleet run without touching the heap.
func TestSamplerRecordAllocFree(t *testing.T) {
	s := &Sampler{Cap: 128}
	s.Record(Sample{})
	s.RecordFleet(FleetSample{})
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		s.Record(Sample{At: simevent.Time(i), Replica: i % 4, OutTokens: int64(i)})
		s.RecordFleet(FleetSample{At: simevent.Time(i), Active: i % 4})
		i++
	})
	if allocs != 0 {
		t.Fatalf("warm Record allocates %.1f per call, want 0", allocs)
	}
}
