package obs

import (
	"bytes"
	"strings"
	"testing"
)

// jsonlFixture renders a small valid event stream through the real
// exporter, so the validator is tested against what we actually write.
func jsonlFixture(t *testing.T) []byte {
	t.Helper()
	events := []Event{
		{At: 1e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 100, A: 20, B: 5e9},
		{At: 2e9, Kind: KindRoute, Replica: 2, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 2e9, Kind: KindCacheLookup, Replica: 2, Session: 7, Request: 1, Tokens: 50, A: 100},
		{At: 5e9, Kind: KindFinish, Replica: 2, Session: 7, Request: 1, Tokens: 20, A: 35e8, B: 1e9},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateJSONLAcceptsExporterOutput(t *testing.T) {
	if err := ValidateJSONL(jsonlFixture(t)); err != nil {
		t.Fatalf("exporter output rejected: %v", err)
	}
}

func TestValidateJSONLRejections(t *testing.T) {
	good := string(jsonlFixture(t))
	lines := strings.Split(strings.TrimSpace(good), "\n")
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty stream", "\n\n", "no events"},
		{"not json", "{broken\n", "not a valid JSON object"},
		{"missing at_ns", `{"kind":"route","replica":0}` + "\n", "missing at_ns"},
		{"negative at_ns", `{"at_ns":-5,"kind":"route","replica":0}` + "\n", "negative at_ns"},
		{"missing kind", `{"at_ns":1,"replica":0}` + "\n", "missing kind"},
		{"unknown kind", `{"at_ns":1,"kind":"warp-drive","replica":0}` + "\n", "unknown kind"},
		{"missing replica", `{"at_ns":1,"kind":"route"}` + "\n", "missing replica"},
		{"time regression", lines[1] + "\n" + lines[0] + "\n", "before previous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJSONL([]byte(tc.data))
			if err == nil {
				t.Fatalf("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
