package obs

import (
	"bytes"
	"strings"
	"testing"
)

// jsonlFixture renders a small valid event stream through the real
// exporter, so the validator is tested against what we actually write.
func jsonlFixture(t *testing.T) []byte {
	t.Helper()
	events := []Event{
		{At: 1e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 100, A: 20, B: 5e9},
		{At: 2e9, Kind: KindRoute, Replica: 2, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 2e9, Kind: KindCacheLookup, Replica: 2, Session: 7, Request: 1, Tokens: 50, A: 100},
		{At: 5e9, Kind: KindFinish, Replica: 2, Session: 7, Request: 1, Tokens: 20, A: 35e8, B: 1e9},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateJSONLAcceptsExporterOutput(t *testing.T) {
	if err := ValidateJSONL(jsonlFixture(t)); err != nil {
		t.Fatalf("exporter output rejected: %v", err)
	}
}

// faultFixtureEvents is a synthetic stream exercising every
// fault-tolerance kind (crash, recover, hedge launch/win/lose) alongside
// the ordinary request chain — the schema gates must pass traces from
// chaos runs unchanged.
func faultFixtureEvents() []Event {
	return []Event{
		{At: 1e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 100, A: 20},
		{At: 1e9, Kind: KindRoute, Replica: 0, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 1e9, Kind: KindCacheLookup, Replica: 0, Session: 7, Request: 1, Tokens: 0, A: 100},
		{At: 2e9, Kind: KindHedgeLaunch, Replica: 1, Session: 7, Request: 1, Tokens: 100, A: 0, B: 1e9},
		{At: 3e9, Kind: KindCrash, Replica: 0, Tokens: 1, A: 4096, Label: "default"},
		{At: 3e9, Kind: KindRecover, Replica: -1, Session: 7, Request: 1, Tokens: 64, A: 0},
		{At: 3e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 100, A: 20},
		{At: 3e9, Kind: KindRoute, Replica: 2, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 3e9, Kind: KindCacheLookup, Replica: 2, Session: 7, Request: 1, Tokens: 64, A: 100},
		{At: 4e9, Kind: KindHedgeWin, Replica: 1, Session: 7, Request: 1, A: 2},
		{At: 4e9, Kind: KindHedgeLose, Replica: 2, Session: 7, Request: 1, Tokens: 120, A: 1},
		{At: 4e9, Kind: KindFinish, Replica: 1, Session: 7, Request: 1, Tokens: 20, A: 35e8, B: 1e9},
	}
}

// TestValidateJSONLAcceptsFaultKinds: chaos-run streams (crash, recover,
// hedge events) pass the JSONL schema gate end to end.
func TestValidateJSONLAcceptsFaultKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, faultFixtureEvents()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(buf.Bytes()); err != nil {
		t.Fatalf("fault-kind stream rejected: %v", err)
	}
}

// TestValidateChromeTraceAcceptsFaultKinds: the Chrome exporter renders
// crash/recover/hedge events into instants the structural validator
// accepts.
func TestValidateChromeTraceAcceptsFaultKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, faultFixtureEvents(), nil, ChromeOptions{Policy: "affinity"}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("fault-kind trace rejected: %v", err)
	}
	for _, want := range []string{"crash:default", "recover", "hedge-launch", "hedge-win", "hedge-lose"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered trace missing %q event", want)
		}
	}
}

// TestFaultKindNames: the new kinds resolve through KindByName (the JSONL
// re-ingestion path) and unknown fault-ish names stay rejected.
func TestFaultKindNames(t *testing.T) {
	for name, want := range map[string]Kind{
		"crash": KindCrash, "recover": KindRecover,
		"hedge-launch": KindHedgeLaunch, "hedge-win": KindHedgeWin, "hedge-lose": KindHedgeLose,
		"directory-update": KindDirectoryUpdate, "content-route": KindContentRoute,
		"cold-spill": KindColdSpill, "cold-fetch": KindColdFetch,
	} {
		got, ok := KindByName(name)
		if !ok || got != want {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, want)
		}
	}
	if _, ok := KindByName("hedge-tie"); ok {
		t.Fatal("unknown kind name accepted")
	}
}

func TestValidateJSONLRejections(t *testing.T) {
	good := string(jsonlFixture(t))
	lines := strings.Split(strings.TrimSpace(good), "\n")
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty stream", "\n\n", "no events"},
		{"not json", "{broken\n", "not a valid JSON object"},
		{"missing at_ns", `{"kind":"route","replica":0}` + "\n", "missing at_ns"},
		{"negative at_ns", `{"at_ns":-5,"kind":"route","replica":0}` + "\n", "negative at_ns"},
		{"missing kind", `{"at_ns":1,"replica":0}` + "\n", "missing kind"},
		{"unknown kind", `{"at_ns":1,"kind":"warp-drive","replica":0}` + "\n", "unknown kind"},
		{"missing replica", `{"at_ns":1,"kind":"route"}` + "\n", "missing replica"},
		{"time regression", lines[1] + "\n" + lines[0] + "\n", "before previous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJSONL([]byte(tc.data))
			if err == nil {
				t.Fatalf("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
