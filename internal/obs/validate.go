package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace-event JSON of the shape WriteChromeTrace produces — the schema
// gate CI runs against the bench-smoke trace artifact. It verifies the
// envelope, every event's required fields per phase type, and that the
// trace carries the track metadata Perfetto needs to build swim lanes.
func ValidateChromeTrace(data []byte) error {
	var top struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(top.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no traceEvents")
	}
	var processNames, threadNames, spans, instants int
	for i, raw := range top.TraceEvents {
		var ev struct {
			Name *string         `json:"name"`
			Ph   *string         `json:"ph"`
			TS   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			PID  *float64        `json:"pid"`
			TID  *float64        `json:"tid"`
			Args json.RawMessage `json:"args"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("obs: traceEvents[%d]: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("obs: traceEvents[%d]: missing name", i)
		}
		if ev.Ph == nil {
			return fmt.Errorf("obs: traceEvents[%d] (%s): missing ph", i, *ev.Name)
		}
		if ev.PID == nil || ev.TID == nil {
			return fmt.Errorf("obs: traceEvents[%d] (%s): missing pid/tid", i, *ev.Name)
		}
		if ev.TS == nil || *ev.TS < 0 {
			return fmt.Errorf("obs: traceEvents[%d] (%s): missing or negative ts", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			var args struct {
				Name *string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == nil {
				return fmt.Errorf("obs: traceEvents[%d] (%s): metadata event without args.name", i, *ev.Name)
			}
			switch *ev.Name {
			case "process_name":
				processNames++
			case "thread_name":
				threadNames++
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%s): complete event without non-negative dur", i, *ev.Name)
			}
			spans++
		case "i":
			instants++
		case "C":
			if len(ev.Args) == 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%s): counter event without args", i, *ev.Name)
			}
		default:
			return fmt.Errorf("obs: traceEvents[%d] (%s): unexpected phase %q", i, *ev.Name, *ev.Ph)
		}
	}
	if processNames == 0 {
		return fmt.Errorf("obs: trace has no process_name metadata (no tracks)")
	}
	if threadNames == 0 {
		return fmt.Errorf("obs: trace has no thread_name metadata (no swim lanes)")
	}
	if spans+instants == 0 {
		return fmt.Errorf("obs: trace has no span or instant events")
	}
	return nil
}

// ValidateJSONL checks that data is a structurally valid event stream of
// the shape WriteEventsJSONL produces — the JSONL counterpart of
// ValidateChromeTrace, and the second schema gate CI runs against the
// bench-smoke artifacts. It verifies that every line is a JSON object with
// the required fields (at_ns, kind, replica), that every kind name is
// known, and that timestamps are non-negative and non-decreasing in stream
// order (the Collector retains arrival order, and the simulator never runs
// backwards).
func ValidateJSONL(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		line   int
		events int
		lastTS int64 = -1
	)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev struct {
			AtNS    *int64  `json:"at_ns"`
			Kind    *string `json:"kind"`
			Replica *int    `json:"replica"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("obs: jsonl line %d: not a valid JSON object: %w", line, err)
		}
		if ev.AtNS == nil {
			return fmt.Errorf("obs: jsonl line %d: missing at_ns", line)
		}
		if *ev.AtNS < 0 {
			return fmt.Errorf("obs: jsonl line %d: negative at_ns %d", line, *ev.AtNS)
		}
		if ev.Kind == nil || *ev.Kind == "" {
			return fmt.Errorf("obs: jsonl line %d: missing kind", line)
		}
		if _, ok := KindByName(*ev.Kind); !ok {
			return fmt.Errorf("obs: jsonl line %d: unknown kind %q", line, *ev.Kind)
		}
		if ev.Replica == nil {
			return fmt.Errorf("obs: jsonl line %d: missing replica", line)
		}
		if *ev.AtNS < lastTS {
			return fmt.Errorf("obs: jsonl line %d: at_ns %d before previous %d (stream must be time-ordered)", line, *ev.AtNS, lastTS)
		}
		lastTS = *ev.AtNS
		events++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: jsonl: %w", err)
	}
	if events == 0 {
		return fmt.Errorf("obs: jsonl stream has no events")
	}
	return nil
}
