// Package obs is the fleet-wide observability layer: a single event stream
// spanning gateway → fleet → engine, plus a periodic telemetry sampler,
// with exporters to Chrome trace-event JSON (Perfetto-loadable), JSONL and
// a textual timeline.
//
// The design constraint is the hot path: emitting one event must cost one
// interface call with a by-value, fixed-size Event — no allocation, no
// formatting, no map lookups — and a disabled stream (nil Sink) must cost
// exactly one nil check. Event therefore carries only scalars plus static
// string labels; all rendering (names, per-kind argument interpretation)
// happens in the exporters, after the run. Emitters that need dynamic
// detail encode it in the kind-specific A/B fields documented below.
//
// Everything here is simulation-clock time (simevent.Time); the sampler
// ticks on simulated seconds, not wall time.
package obs

import (
	"fmt"

	"loongserve/internal/simevent"
)

// Kind discriminates observability events. Gateway kinds cover the
// request lifecycle and replica lifecycle; engine kinds mirror the elastic
// scheduling events of core.Tracer with replica attribution.
type Kind uint8

// Event kinds. The request-lifecycle chain for a routed request is
// Enqueue → Route → CacheLookup → (Migrate)* → Finish; replica lifecycle
// is Provision → Activate → (Drain → Retire), with Crash the abnormal
// exit; Autoscale marks controller decisions; the engine kinds are
// bridged from core.TraceKind. The fault-tolerance kinds (Crash, Recover,
// HedgeLaunch, HedgeWin, HedgeLose) annotate the chain: a crashed
// request's Recover precedes its recovery re-enqueue, and a hedged
// request resolves with exactly one of HedgeWin/HedgeLose per launch.
const (
	// KindEnqueue: a request entered the gateway. Tokens = input length,
	// A = output length, B = SLO budget in nanoseconds (0 = no SLO) — so
	// post-run analysis can compute SLO burn without a join against the
	// driver's records. Replica is -1 (not yet routed). A request that is
	// re-routed after its migration destination drained mid-transfer
	// enqueues again — the second event marks the re-entry into routing.
	KindEnqueue Kind = iota
	// KindRoute: the policy picked a destination. Replica = chosen global
	// replica index, A = migration source replica (-1 = plain route),
	// Label = policy name.
	KindRoute
	// KindCacheLookup: the prefix-cache lookup on the serving replica.
	// Tokens = hit tokens (0 = miss), A = full input length.
	KindCacheLookup
	// KindMigrate: a session KV transfer. Replica = source, A = destination,
	// Tokens = KV tokens moved, B = link delay in nanoseconds,
	// Label = cause ("drain", "handoff", "route").
	KindMigrate
	// KindFinish: a request completed. Replica = serving replica,
	// Tokens = output length, A = first-token time (ns), B = arrival time
	// (ns) — so exporters rebuild the prefill span [B, A] and the decode
	// span [A, At] without a join.
	KindFinish
	// Replica lifecycle (Replica = index, Label = replica kind name).
	KindProvision
	KindActivate
	KindDrain
	KindRetire
	// KindAutoscale: a controller decision. Label = "scale-up" or
	// "scale-down", Replica = affected replica (-1 when unknown),
	// Tokens = outstanding requests at decision time, A = active replicas,
	// B = warming replicas.
	KindAutoscale
	// Engine elastic-scheduling kinds, bridged from core.Tracer with
	// replica attribution: Group = parallel group id, Tokens as the engine
	// recorded it, A = degree of parallelism (instances in the group),
	// B = group batch size.
	KindPrefillStart
	KindScaleDown
	KindScaleUp
	KindJoin
	KindShrink
	KindEvacuate
	KindPreempt
	KindDissolve
	KindPiggyback
	// KindEngineEvent is the fallback for engine trace kinds without a
	// dedicated mapping (future TraceKind values bridge here rather than
	// being dropped).
	KindEngineEvent
	// Fault-tolerance kinds (appended after the engine range so
	// EngineKind's contiguous check stays valid).
	//
	// KindCrash: a replica failed, destroying its resident KV and killing
	// its in-flight work. Replica = crashed replica, Tokens = in-flight
	// requests lost, A = resident prefix-KV tokens destroyed, Label =
	// replica kind name. No event attributed to the replica may follow.
	KindCrash
	// KindRecover: one crashed request re-entering routing. Replica = -1
	// (the re-route happens next), Tokens = salvaged KV tokens still warm
	// on surviving replicas, A = the crashed replica it was rescued from.
	// Emitted immediately before the request's recovery re-enqueue.
	KindRecover
	// KindHedgeLaunch: a straggling request was duplicated to a second
	// replica. Replica = hedge destination, Tokens = input length,
	// A = primary replica, B = elapsed ns since arrival at launch.
	KindHedgeLaunch
	// KindHedgeWin: the hedge copy finished first. Replica = winning hedge
	// replica, A = losing primary replica.
	KindHedgeWin
	// KindHedgeLose: the primary finished first (or the hedge replica
	// crashed). Replica = losing hedge replica, Tokens = tokens of work
	// the loser burns anyway (engines cannot cancel), A = winning replica.
	KindHedgeLose
	// Cache-directory kinds (appended for the global cache directory and
	// cold KV tier; see internal/fleet/directory.go).
	//
	// KindDirectoryUpdate: the gateway's global cache directory changed at
	// one location. Replica = location (replica index; -1 = cold tier),
	// Tokens = signed resident-token delta, A = resulting resident tokens
	// at the location, Label = cause ("add", "remove", "wipe",
	// "cold-evict"). A crash or drain wipe appears as one negative bulk
	// delta — the only event legally attributed to a crashed replica
	// after its crash.
	KindDirectoryUpdate
	// KindContentRoute: the content-affinity policy picked a destination
	// off the directory. Replica = destination, Tokens = directory-
	// resident overlap tokens claimed at pick time, A = destination queue
	// depth, B = eligible replica count.
	KindContentRoute
	// KindColdSpill: a capacity-evicted block was copied into the cold
	// tier. Replica = source replica, Tokens = block tokens spilled,
	// A = cold-tier used tokens after, B = cold-tier blocks after.
	KindColdSpill
	// KindColdFetch: cold KV was copied over the interconnect to a
	// replica ahead of a prefill. Replica = destination, Tokens = tokens
	// fetched, A = link transfer ns paid, B = recompute ns displaced.
	KindColdFetch

	numKinds
)

var kindNames = [numKinds]string{
	KindEnqueue:      "enqueue",
	KindRoute:        "route",
	KindCacheLookup:  "cache-lookup",
	KindMigrate:      "migrate",
	KindFinish:       "finish",
	KindProvision:    "provision",
	KindActivate:     "activate",
	KindDrain:        "drain",
	KindRetire:       "retire",
	KindAutoscale:    "autoscale",
	KindPrefillStart: "prefill-start",
	KindScaleDown:    "scale-down",
	KindScaleUp:      "scale-up",
	KindJoin:         "join",
	KindShrink:       "shrink",
	KindEvacuate:     "evacuate",
	KindPreempt:      "preempt",
	KindDissolve:     "dissolve",
	KindPiggyback:    "piggyback",
	KindEngineEvent:  "engine-event",
	KindCrash:        "crash",
	KindRecover:      "recover",
	KindHedgeLaunch:  "hedge-launch",
	KindHedgeWin:     "hedge-win",
	KindHedgeLose:    "hedge-lose",

	KindDirectoryUpdate: "directory-update",
	KindContentRoute:    "content-route",
	KindColdSpill:       "cold-spill",
	KindColdFetch:       "cold-fetch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName maps an exported kind name back to its Kind — the inverse of
// String, used when re-ingesting JSONL streams. The second result is false
// for unknown names.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// EngineKind reports whether k is an engine-bridged elastic event.
func (k Kind) EngineKind() bool { return k >= KindPrefillStart && k <= KindEngineEvent }

// Event is one observability event. It is a fixed-size value type: emitting
// one costs no allocation, and Label must be a static (or run-long-lived)
// string — emitters never format. The meaning of Tokens, A and B is
// kind-specific; see the Kind constants.
type Event struct {
	At      simevent.Time
	Kind    Kind
	Replica int   // global replica index; -1 = fleet-level
	Group   int   // engine parallel-group id; -1 = not engine-scoped
	Session int64 // workload session id; 0 = stateless
	Request int64 // request id; 0 = not request-scoped
	Tokens  int   // kind-specific primary token quantity
	A, B    int64 // kind-specific auxiliaries
	Label   string
}

// Sink receives the event stream. Emit is called synchronously on the
// simulation goroutine; implementations must not block. A nil Sink means
// observability is off — every emitter nil-checks before building an Event,
// which is the zero-overhead gate.
type Sink interface {
	Emit(Event)
}

// Collector is the standard Sink: it retains every event in arrival order
// for post-run export. The zero value is ready to use.
type Collector struct {
	Events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(e Event) { c.Events = append(c.Events, e) }

// Reset drops collected events but keeps the backing array, so a reused
// collector appends allocation-free up to its previous high-water mark.
func (c *Collector) Reset() { c.Events = c.Events[:0] }

// Counts tallies events per kind — the replay summary surface.
func Counts(events []Event) map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// Tee fans one stream out to several sinks, in order.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
