package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"loongserve/internal/simevent"
)

// traceFixture builds a synthetic run touching every exporter code path:
// session-attributed and stateless request chains, a migration, replica
// lifecycle, autoscale decisions and bridged engine events.
func traceFixture() []Event {
	return []Event{
		{At: 0, Kind: KindProvision, Replica: 0, Label: "gpu"},
		{At: 1e6, Kind: KindActivate, Replica: 0, Label: "gpu"},
		{At: 1e9, Kind: KindEnqueue, Replica: -1, Session: 7, Request: 1, Tokens: 120, A: 30},
		{At: 1e9, Kind: KindRoute, Replica: 0, Session: 7, Request: 1, A: -1, Label: "affinity"},
		{At: 1e9, Kind: KindCacheLookup, Replica: 0, Session: 7, Request: 1, Tokens: 0, A: 120},
		{At: 1e9, Kind: KindPrefillStart, Replica: 0, Group: 1, Tokens: 120, A: 4, B: 1},
		{At: 2e9, Kind: KindEnqueue, Replica: -1, Request: 2, Tokens: 64, A: 16},
		{At: 2e9, Kind: KindRoute, Replica: 1, Request: 2, A: -1, Label: "affinity"},
		{At: 2e9, Kind: KindCacheLookup, Replica: 1, Request: 2, Tokens: 32, A: 64},
		{At: 3e9, Kind: KindAutoscale, Replica: -1, Tokens: 5, A: 2, B: 1, Label: "scale-up"},
		{At: 4e9, Kind: KindMigrate, Replica: 0, A: 1, Session: 7, Tokens: 800, B: 2e6, Label: "drain"},
		{At: 5e9, Kind: KindFinish, Replica: 1, Session: 7, Request: 1, Tokens: 30, A: 2e9, B: 1e9},
		{At: 6e9, Kind: KindFinish, Replica: 1, Request: 2, Tokens: 16, A: 25e8, B: 2e9},
		{At: 7e9, Kind: KindDrain, Replica: 0, Label: "gpu"},
		{At: 8e9, Kind: KindRetire, Replica: 0, Label: "gpu"},
	}
}

func sampledFixture() *Sampler {
	s := &Sampler{Cap: 16}
	for i := 0; i < 4; i++ {
		s.Record(Sample{
			At: simevent.Time(i) * 1e9, Replica: i % 2, QueueDepth: i,
			OutTokens: int64(10 * i), KVTokens: int64(100 * i),
			CacheUsed: int64(50 * i), HitTokens: int64(i), InputTokens: int64(2 * i),
			CostUnits: float64(i) * 1.5,
		})
		s.RecordFleet(FleetSample{
			At: simevent.Time(i) * 1e9, Active: 2, Warming: 1,
			OutstandingReqs: i, CostUnits: float64(i) * 3.25,
		})
	}
	return s
}

// TestWriteChromeTraceValid: the export validates against its own schema
// checker and parses with encoding/json; tracks exist for the gateway, the
// sessions, and each replica that appears (including a migrate destination
// only named through A).
func TestWriteChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, traceFixture(), sampledFixture(), ChromeOptions{
		ReplicaKinds: []string{"loongserve"}, Policy: "affinity",
	})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	data := buf.Bytes()
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, data)
	}

	var top struct {
		OtherData   map[string]string `json:"otherData"`
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			PID  int64           `json:"pid"`
			TID  int64           `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if top.OtherData["policy"] != "affinity" {
		t.Fatalf("otherData = %v", top.OtherData)
	}

	procs := map[string]bool{}
	var spans, counters []string
	for _, ev := range top.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			var args struct {
				Name string `json:"name"`
			}
			json.Unmarshal(ev.Args, &args)
			procs[args.Name] = true
		case ev.Ph == "X":
			spans = append(spans, ev.Name)
		case ev.Ph == "C":
			counters = append(counters, ev.Name)
		}
	}
	for _, want := range []string{"gateway", "sessions", "replica 0 (loongserve)", "replica 1"} {
		if !procs[want] {
			t.Fatalf("missing process track %q, have %v", want, procs)
		}
	}
	wantSpans := map[string]int{"prefill": 2, "decode": 2, "migrate:drain": 1}
	for name, n := range wantSpans {
		got := 0
		for _, s := range spans {
			if s == name {
				got++
			}
		}
		if got != n {
			t.Fatalf("span %q appears %d times, want %d (spans: %v)", name, got, n, spans)
		}
	}
	for _, want := range []string{"load", "tokens", "cache_hit_rate", "replicas", "fleet"} {
		found := false
		for _, c := range counters {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing counter track %q (counters: %v)", want, counters)
		}
	}
}

// TestWriteChromeTraceDeterministic: identical inputs render byte-identical
// output — the property the serial-vs-parallel guard builds on.
func TestWriteChromeTraceDeterministic(t *testing.T) {
	opts := ChromeOptions{ReplicaKinds: []string{"a", "b"}, Policy: "p2c"}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, traceFixture(), sampledFixture(), opts); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, traceFixture(), sampledFixture(), opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same stream differ byte-wise")
	}
}

// TestWriteChromeTraceEmpty: an empty stream still produces a valid trace
// envelope or a diagnosable validation error — never malformed JSON.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil, ChromeOptions{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export is not valid JSON:\n%s", buf.Bytes())
	}
	// No events → no spans/instants; the validator must flag it, not accept.
	if err := ValidateChromeTrace(buf.Bytes()); err == nil {
		t.Fatal("validator accepted a trace with no span or instant events")
	}
}

// TestValidateChromeTraceRejects: corrupt inputs fail with targeted errors.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"not json", "{", "not valid JSON"},
		{"no events", `{"traceEvents":[]}`, "no traceEvents"},
		{"missing name", `{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":1}]}`, "missing name"},
		{"missing ph", `{"traceEvents":[{"name":"x","ts":0,"pid":1,"tid":1}]}`, "missing ph"},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1}]}`, "negative ts"},
		{"span without dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`, "non-negative dur"},
		{"counter without args", `{"traceEvents":[{"name":"x","ph":"C","ts":0,"pid":1,"tid":0}]}`, "without args"},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}`, "unexpected phase"},
		{"no tracks", `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":1,"tid":1}]}`, "no process_name"},
	}
	for _, tc := range cases {
		err := ValidateChromeTrace([]byte(tc.data))
		if err == nil {
			t.Fatalf("%s: validator accepted corrupt input", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestWriteEventsJSONL: one parseable object per event, round-tripping the
// scalar fields and kind names.
func TestWriteEventsJSONL(t *testing.T) {
	events := traceFixture()
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d JSONL lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		var got struct {
			AtNS    int64  `json:"at_ns"`
			Kind    string `json:"kind"`
			Replica int    `json:"replica"`
		}
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if got.AtNS != int64(events[i].At) || got.Kind != events[i].Kind.String() || got.Replica != events[i].Replica {
			t.Fatalf("line %d round-trip mismatch: %+v vs %+v", i, got, events[i])
		}
	}
}

// TestWriteSamplesJSONL: per-replica rows first, then fleet rows marked
// with the "fleet":true discriminator.
func TestWriteSamplesJSONL(t *testing.T) {
	s := sampledFixture()
	var buf bytes.Buffer
	if err := WriteSamplesJSONL(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != s.Len()+s.FleetLen() {
		t.Fatalf("%d lines for %d+%d samples", len(lines), s.Len(), s.FleetLen())
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		_, isFleet := got["fleet"]
		if wantFleet := i >= s.Len(); isFleet != wantFleet {
			t.Fatalf("line %d: fleet marker %v, want %v", i, isFleet, wantFleet)
		}
	}
}
