package obs

import (
	"time"

	"loongserve/internal/simevent"
)

// Sample is one per-replica telemetry reading.
type Sample struct {
	At      simevent.Time
	Replica int
	State   int // fleet.ReplicaState numeric value
	// Load.
	QueueDepth int // engine-reported total in-flight (queued + running)
	Queued     int // engine admission queue (0 when the engine has no LoadReporter)
	OutTokens  int64
	KVTokens   int64
	// Prefix cache.
	CacheUsed   int64 // resident prefix-KV tokens
	HitTokens   int64 // cumulative cache-served prompt tokens
	InputTokens int64 // cumulative routed prompt tokens (hit rate = Hit/Input)
	// Pricing.
	CostUnits float64
}

// HitRate returns the cumulative cache hit rate at sample time, in [0, 1].
func (s Sample) HitRate() float64 {
	if s.InputTokens == 0 {
		return 0
	}
	return float64(s.HitTokens) / float64(s.InputTokens)
}

// FleetSample is one fleet-level telemetry reading: the autoscaler-visible
// state of the whole deployment.
type FleetSample struct {
	At       simevent.Time
	Active   int
	Warming  int
	Draining int
	Retired  int
	// Failed counts crashed replicas (cumulative: a crashed replica never
	// leaves the Failed state).
	Failed int
	// OutstandingReqs counts routed, unfinished requests gateway-wide.
	OutstandingReqs int
	// CostUnits is the provisioned (non-retired) cost-unit total.
	CostUnits float64
}

// DefaultSamplerCap bounds each ring when Cap is unset: at a 1s period
// that is ~18 simulated hours per replica before the oldest samples drop.
const DefaultSamplerCap = 1 << 16

// Sampler records telemetry time series through two fixed-capacity rings —
// one for per-replica samples, one for fleet samples. Once warm (first
// Record allocates the ring), recording is allocation-free; when a ring is
// full the oldest samples are overwritten and Dropped counts them. The
// gateway drives it on an owned simulator event every Interval of simulated
// time; a zero-Interval sampler is never scheduled.
type Sampler struct {
	// Interval is the simulated-time sampling period.
	Interval time.Duration
	// Cap is the per-ring capacity in samples (DefaultSamplerCap when 0).
	Cap int

	ring      []Sample
	head, n   int
	dropped   int64
	fring     []FleetSample
	fhead, fn int
	fdropped  int64
}

// Record folds one per-replica sample into the ring.
func (s *Sampler) Record(sm Sample) {
	if s.ring == nil {
		c := s.Cap
		if c <= 0 {
			c = DefaultSamplerCap
		}
		s.ring = make([]Sample, c)
	}
	s.ring[s.head] = sm
	s.head++
	if s.head == len(s.ring) {
		s.head = 0
	}
	if s.n < len(s.ring) {
		s.n++
	} else {
		s.dropped++
	}
}

// RecordFleet folds one fleet-level sample into its ring.
func (s *Sampler) RecordFleet(sm FleetSample) {
	if s.fring == nil {
		c := s.Cap
		if c <= 0 {
			c = DefaultSamplerCap
		}
		s.fring = make([]FleetSample, c)
	}
	s.fring[s.fhead] = sm
	s.fhead++
	if s.fhead == len(s.fring) {
		s.fhead = 0
	}
	if s.fn < len(s.fring) {
		s.fn++
	} else {
		s.fdropped++
	}
}

// Len returns the retained per-replica sample count.
func (s *Sampler) Len() int { return s.n }

// FleetLen returns the retained fleet sample count.
func (s *Sampler) FleetLen() int { return s.fn }

// Dropped returns how many per-replica samples were overwritten.
func (s *Sampler) Dropped() int64 { return s.dropped }

// FleetDropped returns how many fleet samples were overwritten.
func (s *Sampler) FleetDropped() int64 { return s.fdropped }

// Samples returns the retained per-replica samples, oldest first.
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// FleetSamples returns the retained fleet samples, oldest first.
func (s *Sampler) FleetSamples() []FleetSample {
	out := make([]FleetSample, 0, s.fn)
	start := s.fhead - s.fn
	if start < 0 {
		start += len(s.fring)
	}
	for i := 0; i < s.fn; i++ {
		out = append(out, s.fring[(start+i)%len(s.fring)])
	}
	return out
}

// Reset drops all retained samples but keeps the rings.
func (s *Sampler) Reset() {
	s.head, s.n, s.dropped = 0, 0, 0
	s.fhead, s.fn, s.fdropped = 0, 0, 0
}
