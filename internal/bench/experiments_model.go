package bench

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/model"
	"loongserve/internal/seqparallel"
)

func defaultCM() (*costmodel.CostModel, cluster.Link) {
	m := model.LWM1MText()
	hw := cluster.A800()
	return costmodel.New(m, hw), cluster.Link{Bandwidth: hw.NVLinkBandwidth, Latency: hw.NVLinkLatency}
}

func repeat(l, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = l
	}
	return out
}

// Fig2 reproduces "Scalability of requests with different lengths in the
// different phases": normalized iteration time vs tensor-parallel degree,
// prefill (BS=1, Len in {100, 1K, 10K, 100K}) and decode (BS=16, Len in
// {10, 50, 100, 500}). Values are normalized to TP=2 per series, matching
// the figure's normalized y-axis; the 100K/1K anchor ratio is reported.
func Fig2() *Table {
	cm, link := defaultCM()
	t := &Table{
		Title:  "Figure 2: scalability vs TP degree (normalized iteration time)",
		Header: []string{"series", "TP=2", "TP=4", "TP=6", "TP=8"},
	}
	tps := []int{2, 4, 6, 8}
	for _, l := range []int{100, 1_000, 10_000, 100_000} {
		row := []string{fmt.Sprintf("prefill BS=1 Len=%d", l)}
		base := cm.PrefillIterTime([]int{l}, 1, 2, link).Seconds()
		for _, tp := range tps {
			v := cm.PrefillIterTime([]int{l}, 1, tp, link).Seconds()
			row = append(row, f3(v/base))
		}
		t.AddRow(row...)
	}
	for _, l := range []int{10, 50, 100, 500} {
		row := []string{fmt.Sprintf("decode BS=16 Len=%d", l)}
		base := cm.DecodeIterTime(16, 16*l, 1, 2, 1, link).Seconds()
		for _, tp := range tps {
			v := cm.DecodeIterTime(16, 16*l, 1, tp, 1, link).Seconds()
			row = append(row, f3(v/base))
		}
		t.AddRow(row...)
	}
	ratio := float64(cm.PrefillIterTime([]int{100_000}, 1, 8, link)) /
		float64(cm.PrefillIterTime([]int{1_000}, 1, 8, link))
	t.Notes = append(t.Notes,
		fmt.Sprintf("anchor: 100K-token prefill is %.2fx slower than 1K on 8 GPUs (paper: 105.97x)", ratio),
		"shape: long prefills scale near-linearly; short prefills and decoding barely benefit from more GPUs")
	return t
}

// Fig3 reproduces "Comparison between fixed sequence parallelism and tensor
// parallelism": normalized iteration time for (SP,TP) in {(1,8),(2,4),
// (4,2)} over the BS x Len grid of the figure, prefill and decode.
func Fig3() *Table {
	cm, link := defaultCM()
	t := &Table{
		Title:  "Figure 3: fixed SPxTP vs pure TP (normalized to SP=1,TP=8)",
		Header: []string{"phase", "BS", "Len", "SP1-TP8", "SP2-TP4", "SP4-TP2"},
	}
	grid := []struct{ bs, l int }{
		{512, 1_000}, {128, 5_000}, {64, 10_000}, {16, 50_000}, {4, 100_000}, {1, 500_000},
	}
	for _, g := range grid {
		lens := repeat(g.l, g.bs)
		base := cm.PrefillIterTime(lens, 1, 8, link).Seconds()
		row := []string{"prefill", fmt.Sprint(g.bs), fmt.Sprint(g.l)}
		for _, st := range []costmodel.Strategy{{SP: 1, TP: 8}, {SP: 2, TP: 4}, {SP: 4, TP: 2}} {
			v := cm.PrefillIterTime(lens, st.SP, st.TP, link).Seconds()
			row = append(row, f3(v/base))
		}
		t.AddRow(row...)
	}
	for _, g := range grid {
		base := cm.DecodeIterTime(g.bs, g.bs*g.l, 1, 8, 1, link).Seconds()
		row := []string{"decode", fmt.Sprint(g.bs), fmt.Sprint(g.l)}
		for _, st := range []costmodel.Strategy{{SP: 1, TP: 8}, {SP: 2, TP: 4}, {SP: 4, TP: 2}} {
			v := cm.DecodeIterTime(g.bs, g.bs*g.l, st.SP, st.TP, st.SP, link).Seconds()
			row = append(row, f3(v/base))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"shape: SPxTP hybrids match or beat pure TP, especially on long sequences (ring traffic overlaps attention; all-reduce volume shrinks)")
	return t
}

// Fig14 reproduces "Overhead of elastic scaling mechanisms": (a) prefill
// with vs without proactive scale-down across the BS x Len grid; (b)
// decoding with 1, 2 and 4 sequence-parallel masters.
func Fig14() *Table {
	cm, link := defaultCM()
	t := &Table{
		Title:  "Figure 14: elastic scaling overhead",
		Header: []string{"phase", "BS", "Len", "baseline(s)", "variant(s)", "delta"},
	}
	grid := []struct{ bs, l int }{
		{1024, 10}, {256, 100}, {64, 1_000}, {16, 10_000}, {4, 50_000}, {2, 100_000}, {1, 200_000},
	}
	// (a) scale-down overhead on a DoP=4, TP=2 prefill.
	for _, g := range grid {
		lens := repeat(g.l, g.bs)
		base := cm.PrefillIterTime(lens, 4, 2, link)
		with := base + cm.ScaleDownOverhead()
		t.AddRow("prefill w/ scale-down", fmt.Sprint(g.bs), fmt.Sprint(g.l),
			f4(base.Seconds()), f4(with.Seconds()),
			pct(float64(with-base)/float64(base)))
	}
	// (b) multi-master decode on a 4-instance TP=2 group.
	for _, g := range grid {
		base := cm.DecodeIterTime(g.bs, g.bs*g.l, 4, 2, 1, link)
		for _, masters := range []int{2, 4} {
			v := cm.DecodeIterTime(g.bs, g.bs*g.l, 4, 2, masters, link)
			t.AddRow(fmt.Sprintf("decode %d masters", masters), fmt.Sprint(g.bs), fmt.Sprint(g.l),
				f4(base.Seconds()), f4(v.Seconds()),
				pct(float64(v-base)/float64(base)))
		}
	}
	t.Notes = append(t.Notes,
		"shape: scale-down adds <2% at every point; multi-master decoding wins ~2x at large batch sizes and costs <10% at small ones")
	return t
}

// Fig15 reproduces "Accuracy of LoongServe analytical model": SIB-fitted
// Eq 7 predictions vs ground-truth iteration times for SP2TP4, SP4TP2 and
// SP8TP1 across batch sizes 1-8 and inputs up to 512K tokens, evaluated at
// points between the profiling grid's.
func Fig15() *Table {
	cm, link := defaultCM()
	t := &Table{
		Title:  "Figure 15: analytical model accuracy (predicted vs ground truth, seconds)",
		Header: []string{"strategy", "BS", "Len", "predicted", "measured", "deviation"},
	}
	prof := &costmodel.Profiler{CM: cm, Link: link, Jitter: 0.01, Seed: 1}
	sib := costmodel.NewSIB()
	maxDev := 0.0
	for _, st := range []costmodel.Strategy{{SP: 2, TP: 4}, {SP: 4, TP: 2}, {SP: 8, TP: 1}} {
		prof.ProfilePrefill(sib, st, costmodel.DefaultPrefillGrid(512_000))
		coeffs, err := sib.PrefillCoeffs(st)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("fit failed for %s: %v", st.Key(), err))
			continue
		}
		for _, bs := range []int{1, 2, 4, 8} {
			for _, l := range []int{3_000, 30_000, 80_000, 150_000, 400_000} {
				if bs*l > 512_000 {
					continue
				}
				lens := repeat(l, bs)
				pred := coeffs.Predict(lens).Seconds()
				real := cm.PrefillIterTime(lens, st.SP, st.TP, link).Seconds()
				dev := (pred - real) / real
				if d := abs(dev); d > maxDev {
					maxDev = d
				}
				t.AddRow(st.Key(), fmt.Sprint(bs), fmt.Sprint(l), f4(pred), f4(real), pct(dev))
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max |deviation| = %.1f%% (paper: <10%%)", maxDev*100))
	return t
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// AblationProactiveVsReactive quantifies what proactive migration saves: for
// each prompt length, the reactive baseline must move the whole KV cache
// after prefill while the proactive mechanism rides the existing ring
// traffic. Rows report the one-off migration cost and how many decode
// iterations it is worth.
func AblationProactiveVsReactive() *Table {
	cm, link := defaultCM()
	t := &Table{
		Title:  "Ablation: proactive vs reactive KV migration at scale-down",
		Header: []string{"prompt tokens", "reactive migration", "proactive overhead", "decode iters lost (reactive)"},
	}
	for _, l := range []int{10_000, 50_000, 100_000, 200_000, 500_000, 1_000_000} {
		mig := cm.ReactiveMigrationTime(l, link)
		pro := cm.ScaleDownOverhead()
		dec := cm.DecodeIterTime(8, 8*l, 2, 2, 1, link)
		t.AddRow(fmt.Sprint(l), fmtDur(mig), fmtDur(pro), f3(float64(mig)/float64(dec)))
	}
	t.Notes = append(t.Notes,
		"§4.1: reactive migration of a long request costs seconds — many decode iterations — while proactive migration is bookkeeping only")
	return t
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// AblationPartitioning compares the striped token permutation (§2.3,
// Striped Attention) with contiguous ring-attention chunks: identical
// outputs, different causal-work balance. The prefill finishes with the
// slowest instance, so the imbalance factor is the layout's slowdown.
func AblationPartitioning() *Table {
	t := &Table{
		Title:  "Ablation: striped vs contiguous sequence partitioning (causal work imbalance)",
		Header: []string{"tokens", "DoP", "striped max/mean", "contiguous max/mean", "contiguous slowdown"},
	}
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, sp := range []int{2, 4, 8} {
			striped := seqparallel.WorkImbalance(seqparallel.StripedAssign(n, sp))
			contig := seqparallel.WorkImbalance(seqparallel.ContiguousAssign(n, sp))
			t.AddRow(fmt.Sprint(n), fmt.Sprint(sp), f4(striped), f4(contig), f3(contig/striped))
		}
	}
	t.Notes = append(t.Notes,
		"striped permutation keeps every instance within ~1x of mean causal work; contiguous chunks slow the prefill by (2·DoP-1)/DoP",
		"this is why §2.3 extends Striped Attention rather than Ring Attention to serving")
	return t
}
