package bench

import (
	"fmt"

	"loongserve/internal/fleet"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
)

// FleetAttributionExperiment decomposes the fleet policy comparison's
// latency by critical-path phase: the same spec and session trace as
// FleetExperiment's highest-rate radix arms, re-run with the observability
// stream attached and fed through obs/analyze. Per policy it reports the
// mean seconds each phase contributes, the phase shares that matter for
// routing (queueing vs migration stalls vs prefill), the p99 end-to-end
// latency, and the stream auditor's verdict — so a policy that wins
// goodput by gambling on migration stalls is visible as such. It is a
// separate table (not extra FleetExperiment columns) so the long-standing
// golden output of the policy comparison stays byte-identical.
func FleetAttributionExperiment(sc Scale) *Table {
	rate := sc.FleetRates[len(sc.FleetRates)-1]
	t := &Table{
		Title: fmt.Sprintf("Fleet: critical-path attribution (%d replicas, %.3g sess/s, %s cache)",
			sc.FleetReplicas, rate, fleet.CacheRadix),
		Header: []string{"policy", "queue(ms)", "reenq(ms)", "migr(ms)", "pwait(ms)",
			"prefill(s)", "decode(s)", "decode-share", "p99-e2e(s)", "audit"},
		Notes: []string{
			"phases partition each request's latency exactly: queue (enqueue->route),",
			"re-enqueue (abandoned transfers), migration (routed KV moves), prefill-wait",
			"(engine queueing), prefill (to first token), decode (to last token).",
			"audit is the stream invariant verdict (lifecycle order + conservation).",
		},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	trace := FleetSessionTrace(rate, sc)
	numPolicies := len(fleet.AllPolicies(sc.Seed))
	rows := make([][]string, numPolicies)
	runArms(numPolicies, sc.workers(), func(arm int) {
		policy := fleet.AllPolicies(sc.Seed)[arm]
		col := &obs.Collector{}
		if _, err := fleet.Run(spec, trace, fleet.Config{
			Replicas: sc.FleetReplicas,
			Policy:   policy,
			Cache:    fleet.CacheRadix,
			Obs:      col,
		}); err != nil {
			rows[arm] = []string{policy.Name(), "ERR", "-", "-", "-", "-", "-", "-", "-", "-"}
			return
		}
		rep := analyze.Attribute(col.Events)
		verdict := "pass"
		if vs := analyze.Audit(col.Events); len(vs) > 0 {
			verdict = fmt.Sprintf("FAIL(%d)", len(vs))
		}
		ms := func(p analyze.Phase) string {
			return fmt.Sprintf("%.1f", rep.PhaseDist[p].Mean()*1e3)
		}
		rows[arm] = []string{
			policy.Name(),
			ms(analyze.PhaseQueue),
			ms(analyze.PhaseReenqueue),
			ms(analyze.PhaseMigration),
			ms(analyze.PhasePrefillWait),
			f3(rep.PhaseDist[analyze.PhasePrefill].Mean()),
			f3(rep.PhaseDist[analyze.PhaseDecode].Mean()),
			pct(rep.PhaseShare(analyze.PhaseDecode)),
			f3(rep.E2EDist.Quantile(0.99)),
			verdict,
		}
	})
	t.Rows = rows
	return t
}
