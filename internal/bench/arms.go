package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment arms — one (rate, policy, fleet size, system) point of a
// table — are independent simulations: each builds its own Sim, cluster,
// engines and cost model, shares only immutable inputs (traces, scripts,
// Spec constructors), and writes only its own result slot. runArms executes
// them across worker goroutines with the result order fixed by arm index,
// so a table renders byte-identically at any worker count; the serial path
// (workers <= 1) runs inline for exact single-threaded reproduction.

// Workers resolves the scale's experiment-arm concurrency: the explicit
// setting, or one worker per available CPU.
func (sc Scale) workers() int {
	if sc.Workers > 0 {
		return sc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runArms runs arm indices [0, n) through run, at most `workers`
// concurrently. run must confine its writes to per-index state.
func runArms(n, workers int, run func(arm int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
