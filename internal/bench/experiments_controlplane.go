package bench

import (
	"fmt"

	"loongserve/internal/controlplane"
	"loongserve/internal/kvcache"
)

// AblationControlPlane tabulates the §6 serialization claims: bytes on the
// wire for representative per-iteration commands, with and without the
// codec's delta/RLE machinery (the naive column prices one fixed int32 per
// plan entry plus 8 bytes per ID — what a schema-less encoder would ship).
func AblationControlPlane() *Table {
	t := &Table{
		Title:  "Control plane: bytes per command (§6 serialization)",
		Header: []string{"command", "payload", "encoded bytes", "naive bytes", "ratio"},
	}
	encode := func(msg controlplane.Message) int {
		b, err := controlplane.Encode(nil, msg)
		if err != nil {
			panic(err)
		}
		return len(b)
	}

	// Group config for a whole 8-instance node.
	insts := make([]kvcache.InstanceID, 8)
	for i := range insts {
		insts[i] = kvcache.InstanceID(i)
	}
	cfg := &controlplane.GroupConfig{
		Group:     controlplane.Epoched{ID: 1, Epoch: 1},
		Instances: insts,
		TP:        2,
	}
	t.AddRow("group config", "8 instances", fmt.Sprint(encode(cfg)), fmt.Sprint(8*8+8), ratio(encode(cfg), 8*8+8))

	// Prefill with a contiguous (scale-down) retention plan: RLE territory.
	for _, tokens := range []int{10_000, 100_000, 500_000} {
		plan := make([]int32, tokens)
		for i := tokens / 2; i < tokens; i++ {
			plan[i] = 1
		}
		msg := &controlplane.PrefillCommand{
			Group:     controlplane.Epoched{ID: 1, Epoch: 1},
			Seq:       9,
			Requests:  []controlplane.RequestSpec{{ID: 1, Len: tokens}},
			Retention: plan,
		}
		naive := tokens*4 + 24
		t.AddRow("prefill + scale-down plan", fmt.Sprintf("%d tokens", tokens),
			fmt.Sprint(encode(msg)), fmt.Sprint(naive), ratio(encode(msg), naive))
	}

	// Prefill with a striped plan: raw varints, still beats fixed int32.
	{
		const tokens = 100_000
		plan := make([]int32, tokens)
		for i := range plan {
			plan[i] = int32(i % 4)
		}
		msg := &controlplane.PrefillCommand{
			Group:     controlplane.Epoched{ID: 1, Epoch: 1},
			Seq:       9,
			Requests:  []controlplane.RequestSpec{{ID: 1, Len: tokens}},
			Retention: plan,
		}
		naive := tokens*4 + 24
		t.AddRow("prefill + striped plan", fmt.Sprintf("%d tokens", tokens),
			fmt.Sprint(encode(msg)), fmt.Sprint(naive), ratio(encode(msg), naive))
	}

	// Decode command for a large batch: the per-iteration steady state.
	{
		const bs = 256
		reqs := make([]controlplane.RequestSpec, bs)
		masters := make([]int32, bs)
		for i := range reqs {
			reqs[i] = controlplane.RequestSpec{ID: kvcache.RequestID(5000 + i), Len: 8000 + i}
			masters[i] = int32(i % 4)
		}
		msg := &controlplane.DecodeCommand{
			Group:    controlplane.Epoched{ID: 1, Epoch: 3},
			Seq:      77,
			Requests: reqs,
			Masters:  masters,
		}
		naive := bs*(8+4+4) + 24
		t.AddRow("decode batch", fmt.Sprintf("%d requests", bs),
			fmt.Sprint(encode(msg)), fmt.Sprint(naive), ratio(encode(msg), naive))
	}

	t.Notes = append(t.Notes,
		"metadata caching removes group membership from every command: only (group,epoch) travels",
		"scale-down retention plans run-length-encode to O(survivors) bytes regardless of length")
	return t
}

func ratio(got, naive int) string {
	return fmt.Sprintf("%.1fx", float64(naive)/float64(got))
}
