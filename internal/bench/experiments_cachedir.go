package bench

import (
	"fmt"
	"time"

	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/workload"
)

// CacheDirSessionScripts builds the cache-directory workload: branching
// session families (the shared-trunk shape where block-level reuse wins)
// mixed with long-document sessions (large private prefixes that churn a
// capacity-constrained cache), closed-loop so the fleet sees its own
// backpressure.
func CacheDirSessionScripts(sc Scale) []workload.SessionScript {
	cfg := workload.DefaultSessionConfig()
	cfg.SessionRate = sc.CacheDirRate
	cfg.Sessions = int(sc.CacheDirRate * sc.CacheDirDuration)
	if minSessions := sc.MinN / cfg.MinTurns; cfg.Sessions < minSessions {
		cfg.Sessions = minSessions
	}
	cfg.PromptGroups = 8
	cfg.BranchFactor = 4
	cfg.BranchTurns = 2
	cfg.LongFrac = 0.25
	cfg.LongDocTokens = 6000
	return workload.SessionScripts(cfg, sc.Seed)
}

// CacheDirFaultRates is the churn schedule of the cache-directory
// experiment: planned drains (a replica's KV evacuates and its directory
// entries retract), crashes (its KV and entries are destroyed), and
// link-degradation windows (transfers and cold fetches get honestly more
// expensive) — the regime where stale placement assumptions hurt and a
// coherent directory should pay.
func CacheDirFaultRates() workload.FaultRates {
	return workload.FaultRates{
		CrashPerMin:   0.5,
		DrainPerMin:   2,
		DegradePerMin: 1,
		DegradeMean:   5 * time.Second,
		DegradeFactor: 6,
	}
}

// cacheDirReplicas floors the fleet at six replicas: crashed replicas
// never rejoin and drained ones stay unroutable, the drain guard keeps two
// active, and the full-scale horizon draws about two crashes — a smaller
// fleet runs out of drainable replicas mid-run and the "under churn" claim
// would be vacuous.
func (sc Scale) cacheDirReplicas() int {
	if sc.FleetReplicas < 6 {
		return 6
	}
	return sc.FleetReplicas
}

// cacheDirCacheTokens is the per-replica radix-cache capacity of every
// arm — deliberately far below the working set, so residency churns and
// the arms differ only in where they route and whether evictions spill.
const cacheDirCacheTokens = 40 * workload.BlockTokens

// cacheDirColdTokens is the host-memory pool of the cold arm.
const cacheDirColdTokens = 160 * workload.BlockTokens

// CacheDirArmResult is one arm's outcome, exported so the acceptance test
// can compare policies structurally instead of parsing table cells.
type CacheDirArmResult struct {
	Name       string
	Err        error
	Goodput    float64
	MeanTTFT   float64
	P99TTFT    float64
	SLO        float64
	HitTokens  int64
	HitRatio   float64
	Faults     fleet.FaultStats
	Cold       fleet.ColdStats
	Violations []analyze.Violation
}

// RunCacheDirArms replays the same branching/long-doc workload and the
// same seeded drain/crash/degrade schedule across the placement arms:
// prefix-affinity (whole-key stickiness), modulo-hash and choose-2 (the
// degenerate baselines), ContentAffinity over the global cache directory,
// and ContentAffinity with the cold KV tier. Every arm runs at identical
// per-replica cache capacity and audits its full event stream.
func RunCacheDirArms(sc Scale) []CacheDirArmResult {
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	replicas := sc.cacheDirReplicas()
	scripts := CacheDirSessionScripts(sc)
	horizon := time.Duration(sc.CacheDirDuration * float64(time.Second))
	faults := workload.GenFaults(sc.Seed, CacheDirFaultRates(), horizon)
	arms := []struct {
		name      string
		policy    func() fleet.Policy
		directory bool
		cold      int
	}{
		{"prefix-affinity", func() fleet.Policy { return fleet.NewPrefixAffinity() }, false, 0},
		{"modulo-hash", func() fleet.Policy { return fleet.NewModuloHash() }, false, 0},
		{"choose-2", func() fleet.Policy { return fleet.NewPowerOfTwoChoices(sc.Seed) }, false, 0},
		{"content", func() fleet.Policy { return fleet.NewContentAffinity() }, true, 0},
		{"content+cold", func() fleet.Policy { return fleet.NewContentAffinity() }, true, cacheDirColdTokens},
	}
	out := make([]CacheDirArmResult, len(arms))
	runArms(len(arms), sc.workers(), func(arm int) {
		a := arms[arm]
		col := &obs.Collector{}
		cfg := fleet.Config{
			Groups:         []fleet.ReplicaGroup{{Kind: fleet.NewKind("vllm", spec), Count: replicas}},
			Policy:         a.policy(),
			Cache:          fleet.CacheRadix,
			CacheTokens:    cacheDirCacheTokens,
			Directory:      a.directory,
			ColdTierTokens: a.cold,
			Obs:            col,
		}
		r := CacheDirArmResult{Name: a.name}
		res, err := fleet.RunSessionsFaults(scripts, cfg, true, faults)
		if err != nil {
			r.Err = err
			out[arm] = r
			return
		}
		s := metrics.Summarize(res.Records)
		r.Goodput = metrics.Goodput(res.Records)
		r.MeanTTFT = MeanTTFT(res.Records)
		r.P99TTFT = p99TTFT(res.Records)
		r.SLO = s.SLOAttainment
		for _, rs := range res.Replicas {
			r.HitTokens += rs.HitTokens
		}
		r.HitRatio = res.TokenHitRatio()
		r.Faults = res.Faults
		r.Cold = res.Cold
		r.Violations = analyze.Audit(col.Events)
		out[arm] = r
	})
	return out
}

// FleetCacheDirExperiment is the cache-content-aware-routing scorecard:
// the directory arms against the degenerate baselines, at equal cache
// capacity, under drain/crash/link-degradation churn. The claim the table
// carries: routing on *real resident blocks* (not key stickiness or
// hashing) recovers more prefix reuse after churn invalidates placement,
// and spilling evictions to a cold host tier recovers more still —
// strictly higher hit-tokens and a no-worse p99 TTFT tail, with every
// arm's event stream auditing clean.
func FleetCacheDirExperiment(sc Scale) *Table {
	t := &Table{
		Title: fmt.Sprintf("Fleet: cache-content-aware routing over a global cache directory (%d replicas, %d-token caches, drains+crashes+link degradation, %.0fs)",
			sc.cacheDirReplicas(), cacheDirCacheTokens, sc.CacheDirDuration),
		Header: []string{"placement", "goodput(req/s)", "TTFT(s)", "p99TTFT(s)", "SLO",
			"hit-tokens", "hit-ratio", "drains", "crashes", "spill/fetch(tok)", "audit"},
	}
	for _, r := range RunCacheDirArms(sc) {
		if r.Err != nil {
			t.AddRow(r.Name, "ERR", "-", "-", "-", "-", "-", "-", "-", "-", r.Err.Error())
			continue
		}
		audit := "clean"
		if len(r.Violations) != 0 {
			audit = fmt.Sprintf("%d violations: %s", len(r.Violations), r.Violations[0])
		}
		coldCell := "-"
		if r.Cold != (fleet.ColdStats{}) {
			coldCell = fmt.Sprintf("%d/%d", int64(r.Cold.Spilled)*int64(workload.BlockTokens), r.Cold.FetchedTokens)
		}
		t.AddRow(r.Name,
			f3(r.Goodput), f3(r.MeanTTFT), f3(r.P99TTFT), pct(r.SLO),
			fmt.Sprint(r.HitTokens), pct(r.HitRatio),
			fmt.Sprint(r.Faults.Drains), fmt.Sprint(r.Faults.Crashes),
			coldCell, audit)
	}
	t.Notes = append(t.Notes,
		"all arms share one branching + long-document closed-loop workload and one seeded drain/crash/degrade schedule, at identical per-replica radix-cache capacity",
		"prefix-affinity sticks to whole-key homes, modulo-hash and choose-2 ignore content; content routes by directory-resident block overlap x queue depth with MaxContext headroom",
		"content+cold additionally spills capacity-evicted blocks to a fleet-shared host pool and fetches them back when the (possibly degraded) link beats recompute",
		"audit=clean replays each arm's stream through the invariant checker, directory coherence and cold-tier conservation invariants included")
	return t
}
