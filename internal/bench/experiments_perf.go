package bench

import (
	"fmt"
	"runtime"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/costmodel"
	"loongserve/internal/fleet"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// This file is the simulator's perf trajectory: RunPerf measures a fixed
// set of hot-path experiments (wall time, heap allocations, simulated
// events) and reports them against the recorded pre-optimization baseline,
// so regressions show up as a ratio in BENCH_SIM.json rather than as a
// vague "the benchmarks feel slower". Regenerate with:
//
//	go run ./cmd/loongserve-bench -exp perf
//
// which rewrites BENCH_SIM.json at the repository root.

// PerfSide is one measurement of one experiment.
type PerfSide struct {
	WallMS       float64 `json:"wall_ms"`
	Allocs       uint64  `json:"allocs"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// PerfEntry pairs an experiment's current measurement with its recorded
// baseline (absent for experiments the baseline tree could not run, e.g.
// parallel arms).
type PerfEntry struct {
	Name     string    `json:"name"`
	Baseline *PerfSide `json:"baseline,omitempty"`
	Current  PerfSide  `json:"current"`
	// Speedup is baseline wall / current wall; AllocsRatio is current
	// allocs / baseline allocs (lower is better for both columns' inputs).
	Speedup     float64 `json:"speedup,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
	// GoMaxProcs records the parallelism available when this entry was
	// measured — without it, wall times of multi-core experiments (the
	// bigfleet shard ladder especially) are uninterpretable across hosts.
	GoMaxProcs int `json:"gomaxprocs"`
}

// PerfReport is the BENCH_SIM.json schema.
type PerfReport struct {
	Schema         string      `json:"schema"`
	BaselineCommit string      `json:"baseline_commit"`
	Note           string      `json:"note"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	Experiments    []PerfEntry `json:"experiments"`
}

// perfBaseline holds the pre-optimization measurements, taken at commit
// 8152630 (the tree before the simulation hot-path overhaul) with the same
// measurePerf harness (best of 3, single-threaded). Baseline event counts
// are not recorded: the optimized tree replays the identical simulations
// (verified byte-identical experiment tables), so events/sec comparisons
// use the current event counts on both sides.
var perfBaseline = map[string]PerfSide{
	"fleet_experiment_quick":   {WallMS: 92.157, Allocs: 728858},
	"serving_loongserve_mixed": {WallMS: 32.414, Allocs: 324425},
	"qi_batching_naive":        {WallMS: 17.667, Allocs: 183337},
	"qi_batching_qi":           {WallMS: 18.918, Allocs: 183553},
}

// measurePerf runs f reps times and returns the best wall time with the
// allocation count of that run (GC'd before each rep so the numbers are
// heap-noise-free). events is whatever f's last run reported via the
// returned setter.
func measurePerf(reps int, f func() uint64) PerfSide {
	best := PerfSide{WallMS: 1 << 50}
	for i := 0; i < reps; i++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		events := f()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		ms := float64(wall.Nanoseconds()) / 1e6
		if ms < best.WallMS {
			best = PerfSide{WallMS: ms, Allocs: m1.Mallocs - m0.Mallocs, Events: events}
		}
	}
	if best.Events > 0 && best.WallMS > 0 {
		best.EventsPerSec = float64(best.Events) / (best.WallMS / 1e3)
	}
	return best
}

// RunPerf measures the perf-trajectory experiment set. The fleet arm is
// always QuickScale (the recorded acceptance metric); workers follows sc.
func RunPerf(sc Scale) *PerfReport {
	rep := &PerfReport{
		Schema:         "loongserve-bench-sim/v1",
		BaselineCommit: "8152630",
		Note:           "baseline measured pre-optimization with this harness (best of 3); optimized tree replays byte-identical simulations, so baseline events/sec uses current event counts",
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	add := func(name string, side PerfSide) {
		e := PerfEntry{Name: name, Current: side, GoMaxProcs: runtime.GOMAXPROCS(0)}
		if b, ok := perfBaseline[name]; ok {
			b := b
			if side.Events > 0 && b.WallMS > 0 {
				b.Events = side.Events
				b.EventsPerSec = float64(b.Events) / (b.WallMS / 1e3)
			}
			e.Baseline = &b
			if side.WallMS > 0 {
				e.Speedup = b.WallMS / side.WallMS
			}
			if b.Allocs > 0 {
				e.AllocsRatio = float64(side.Allocs) / float64(b.Allocs)
			}
		}
		rep.Experiments = append(rep.Experiments, e)
	}

	// The routing-policy comparison at quick scale, serial: the recorded
	// before/after acceptance metric.
	quick := QuickScale()
	quick.Workers = 1
	add("fleet_experiment_quick", measurePerf(3, func() uint64 {
		FleetExperiment(quick)
		return 0
	}))

	// The same experiment with parallel arms (one goroutine per CPU): the
	// scalability the serial baseline cannot express. On a single-CPU host
	// this matches the serial arm.
	par := QuickScale()
	par.Workers = sc.workers()
	add(fmt.Sprintf("fleet_experiment_quick_parallel_x%d", par.Workers), measurePerf(3, func() uint64 {
		FleetExperiment(par)
		return 0
	}))

	// One representative fleet run with its event count, for events/sec.
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	trace := FleetSessionTrace(6, QuickScale())
	add("fleet_run_rate6_migrating", measurePerf(3, func() uint64 {
		res, err := fleet.Run(spec, trace, fleet.Config{Replicas: QuickScale().FleetReplicas, Policy: fleet.NewMigratingAffinity()})
		if err != nil {
			panic(err)
		}
		return res.SimEvents
	}))

	// Full LoongServe engine on a Mixed trace — the end-to-end simulation
	// throughput benchmark (BenchmarkServingLoongServeMixed).
	m := model.LWM1MText()
	hw := cluster.A800()
	mixed := workload.PoissonTrace(workload.Mixed(), 0.5, 100, 42)
	add("serving_loongserve_mixed", measurePerf(3, func() uint64 {
		c, err := cluster.New(m, hw, 1, 8, 2)
		if err != nil {
			panic(err)
		}
		recs, stats, err := serving.RunWithStats(core.New(2, core.Options{}), c, costmodel.New(m, hw), mixed, serving.DefaultRunConfig())
		if err != nil || len(recs) != 100 {
			panic(fmt.Sprintf("serving run failed: %v (%d records)", err, len(recs)))
		}
		return stats.Events
	}))

	// The Eq 5 solver ablation pair (BenchmarkAblationQIBatching).
	qiTrace := workload.PoissonTrace(workload.Mixed(), 0.5, 60, 42)
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"qi_batching_naive", core.Options{}},
		{"qi_batching_qi", core.Options{UseQIBatching: true}},
	} {
		v := v
		add(v.name, measurePerf(3, func() uint64 {
			c, err := cluster.New(m, hw, 1, 8, 2)
			if err != nil {
				panic(err)
			}
			recs, stats, err := serving.RunWithStats(core.New(2, v.opts), c, costmodel.New(m, hw), qiTrace, serving.DefaultRunConfig())
			if err != nil || len(recs) != 60 {
				panic(fmt.Sprintf("qi run failed: %v (%d records)", err, len(recs)))
			}
			return stats.Events
		}))
	}

	// The bigfleet family: the day-long heterogeneous trace once per shard
	// ladder point (no best-of reps — each run is minutes long and the
	// ladder arms verify byte-identity against the serial point anyway).
	groups := BigFleetComposition(sc)
	var bigRef BigFleetArm
	for i, shards := range sc.BigFleetShards {
		arm := RunBigFleetArm(sc, groups, shards, sc.BigFleetFuse)
		if i == 0 {
			bigRef = arm
		} else {
			requireBigFleetIdentity(bigRef, arm, true)
		}
		if arm.Violations != 0 {
			panic(fmt.Sprintf("bigfleet perf: shards=%d stream audit found %d violations", shards, arm.Violations))
		}
		wallMS := float64(arm.Wall.Nanoseconds()) / 1e6
		add(fmt.Sprintf("bigfleet_shards%d", shards), PerfSide{
			WallMS:       wallMS,
			Allocs:       arm.Allocs,
			Events:       arm.Res.SimEvents,
			EventsPerSec: float64(arm.Res.SimEvents) / (wallMS / 1e3),
		})
	}
	return rep
}

// Table renders the report for the CLI.
func (r *PerfReport) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Simulator perf trajectory vs baseline %s (gomaxprocs=%d)", r.BaselineCommit, r.GoMaxProcs),
		Header: []string{"experiment", "base(ms)", "now(ms)", "speedup", "base allocs", "now allocs", "events/s"},
	}
	for _, e := range r.Experiments {
		baseMS, baseAllocs, speedup := "-", "-", "-"
		if e.Baseline != nil {
			baseMS = fmt.Sprintf("%.1f", e.Baseline.WallMS)
			baseAllocs = fmt.Sprint(e.Baseline.Allocs)
			speedup = fmt.Sprintf("%.2fx", e.Speedup)
		}
		eps := "-"
		if e.Current.EventsPerSec > 0 {
			eps = fmt.Sprintf("%.2fM", e.Current.EventsPerSec/1e6)
		}
		t.AddRow(e.Name, baseMS, fmt.Sprintf("%.1f", e.Current.WallMS), speedup,
			baseAllocs, fmt.Sprint(e.Current.Allocs), eps)
	}
	t.Notes = append(t.Notes,
		"wall times are best-of-3 on this host; allocs are exact heap allocation counts of the best run",
		"regenerates BENCH_SIM.json: go run ./cmd/loongserve-bench -exp perf")
	return t
}
