package bench

import (
	"testing"
)

// TestFleetCacheDirAcceptance is the cache-directory scorecard's
// acceptance, asserted structurally over the arm results rather than
// parsed table cells: under the shared drain/crash/degrade schedule, both
// directory arms recover strictly more prefix reuse than every baseline
// with a no-worse p99 TTFT tail, churn actually fired, the cold tier
// actually spilled and fetched, and every arm's event stream audits clean.
func TestFleetCacheDirAcceptance(t *testing.T) {
	arms := RunCacheDirArms(QuickScale())
	if len(arms) != 5 {
		t.Fatalf("%d arms, want 5", len(arms))
	}
	byName := map[string]CacheDirArmResult{}
	for _, a := range arms {
		if a.Err != nil {
			t.Fatalf("arm %s: %v", a.Name, a.Err)
		}
		if len(a.Violations) != 0 {
			t.Fatalf("arm %s: %d audit violations, first: %s", a.Name, len(a.Violations), a.Violations[0])
		}
		if a.Faults.Drains == 0 || a.Faults.Crashes == 0 || a.Faults.LinkDegrades == 0 {
			t.Fatalf("arm %s: churn did not fire (drains=%d crashes=%d degrades=%d)",
				a.Name, a.Faults.Drains, a.Faults.Crashes, a.Faults.LinkDegrades)
		}
		if a.SLO != 1 {
			t.Errorf("arm %s: SLO attainment %.3f, want 1", a.Name, a.SLO)
		}
		byName[a.Name] = a
	}
	baselines := []string{"prefix-affinity", "modulo-hash", "choose-2"}
	for _, name := range []string{"content", "content+cold"} {
		c := byName[name]
		for _, b := range baselines {
			base := byName[b]
			if c.HitTokens <= base.HitTokens {
				t.Errorf("%s hit-tokens %d not strictly above %s's %d",
					name, c.HitTokens, b, base.HitTokens)
			}
			if c.P99TTFT > base.P99TTFT {
				t.Errorf("%s p99 TTFT %.3fs worse than %s's %.3fs",
					name, c.P99TTFT, b, base.P99TTFT)
			}
		}
	}
	cold := byName["content+cold"]
	if cold.Cold.Spilled == 0 || cold.Cold.Fetches == 0 {
		t.Errorf("cold tier idle: spilled=%d fetches=%d", cold.Cold.Spilled, cold.Cold.Fetches)
	}
	if cold.HitTokens <= byName["content"].HitTokens {
		t.Errorf("cold tier did not add reuse: %d vs content's %d",
			cold.HitTokens, byName["content"].HitTokens)
	}
	for _, name := range baselines {
		if s := byName[name].Cold; s.Spilled != 0 || s.Fetches != 0 {
			t.Errorf("baseline %s has cold-tier activity: %+v", name, s)
		}
	}
}

// TestFleetCacheDirParallelDeterminism: the five arms — directory updates,
// cold spills and fetches, degraded-link transfers and all — replay
// byte-identically whether run single-threaded or across goroutines.
func TestFleetCacheDirParallelDeterminism(t *testing.T) {
	sc := QuickScale()

	serial := sc
	serial.Workers = 1
	parallel := sc
	parallel.Workers = 4

	a := renderTable(FleetCacheDirExperiment(serial))
	b := renderTable(FleetCacheDirExperiment(parallel))
	if a != b {
		t.Fatalf("serial and parallel cachedir tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
