package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"loongserve/internal/autoscale"
	"loongserve/internal/baselines"
	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/fleet"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// The heterogeneous-fleet experiment mixes two replica kinds behind one
// gateway, echoing a real deployment that pairs long-context-capable
// LoongServe nodes with cheaper small continuous-batching nodes:
//
//   - "loong": one 8-GPU node running the elastic TP=2 ESP core. Its
//     sequence parallelism shards one request's KV across all four
//     instances, so its context envelope is the whole ~930K-token pool —
//     the only kind that comfortably holds the long-document tail.
//   - "contbatch": a single-GPU node running plain continuous batching —
//     an eighth of the cost, a ~100K-token envelope (one GPU's HBM after
//     weights), and (per Fig 2's short-prefill scaling argument) more chat
//     throughput per GPU than any wide configuration.
//
// Capability sheets (node count, KV envelope, prefill rate, cost units)
// are derived by fleet.ReplicaKind from each kind's own cluster, engine
// and cost model — nothing here is hand-typed.

// FleetKindNames lists the replica kinds the hetero experiment and the
// fleet CLIs know, in presentation order.
func FleetKindNames() []string { return []string{"loong", "contbatch"} }

// FleetKind builds a fresh replica kind by name.
func FleetKind(name string) (*fleet.ReplicaKind, error) {
	m := model.LWM1MText()
	hw := cluster.A800()
	switch name {
	case "loong":
		return fleet.NewKind("loong", fleet.Spec{
			NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 8, 2)
			},
		}), nil
	case "contbatch":
		return fleet.NewKind("contbatch", fleet.Spec{
			NewEngine: func() serving.Engine { return baselines.NewVLLM(1) },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 1, 1)
			},
		}), nil
	}
	return nil, fmt.Errorf("bench: unknown replica kind %q (known kinds: %s)", name, strings.Join(FleetKindNames(), ", "))
}

// FleetKinds returns one fresh instance of every known kind, in order.
func FleetKinds() []*fleet.ReplicaKind {
	kinds := make([]*fleet.ReplicaKind, 0, len(FleetKindNames()))
	for _, name := range FleetKindNames() {
		k, err := FleetKind(name)
		if err != nil {
			panic(err) // unreachable: the names are our own
		}
		kinds = append(kinds, k)
	}
	return kinds
}

// FleetHeteroWorkload returns the mixed-length session workload of the
// hetero experiment: bursty closed-loop chat sessions (ShareGPT-shaped
// turns) of which LongFrac paste a private long document (L-Eval-shaped
// lengths) ahead of their first question — the length mix that gives each
// kind a regime to win.
func FleetHeteroWorkload(sc Scale) workload.SessionConfig {
	cfg := workload.DefaultSessionConfig()
	cfg.ClosedLoop = true
	cfg.SessionRate = sc.HeteroRate
	cfg.MinTurns, cfg.MaxTurns = 2, 5
	cfg.ThinkMean = 2
	cfg.UserTokens, cfg.ReplyTokens = 300, 250
	cfg.LongFrac = 0.12
	// Median ~45K-token documents (L-Eval's body), clamped below the
	// single-GPU kind's ~104K-token pool so even the homogeneous
	// small-replica fleet can structurally serve every request — it just
	// pays dearly in prefill time. The capability router keeps prompts
	// past half a small replica's envelope off the small kind entirely.
	cfg.LongDocTokens = 45_000
	cfg.LongDocMax = 90_000
	cfg.BurstFactor = 3
	cfg.BurstPeriod = sc.HeteroDuration / 3 // three burst cycles per run
	cfg.BurstDuty = 0.3
	mean := cfg.SessionRate * (cfg.BurstFactor*cfg.BurstDuty + (1-cfg.BurstDuty)/cfg.BurstFactor)
	cfg.Sessions = int(mean * sc.HeteroDuration)
	return cfg
}

// HeteroComposition is one static fleet arm of the comparison: a name and
// the groups that build it. All compositions of a scale provision the same
// total cost units.
type HeteroComposition struct {
	Name   string
	Groups []fleet.ReplicaGroup
}

// HeteroCompositions returns the equal-cost static arms: homogeneous
// LoongServe, homogeneous small continuous batching, and the mixed fleet.
// With the loong kind at 8 GPUs and contbatch at 1, cost parity means
// eight contbatch replicas per loong replica.
func HeteroCompositions(sc Scale, loong, cheap *fleet.ReplicaKind) []HeteroComposition {
	n := sc.HeteroLoong
	return []HeteroComposition{
		{Name: fmt.Sprintf("loong x%d", n), Groups: []fleet.ReplicaGroup{{Kind: loong, Count: n}}},
		{Name: fmt.Sprintf("contbatch x%d", 8*n), Groups: []fleet.ReplicaGroup{{Kind: cheap, Count: 8 * n}}},
		{Name: fmt.Sprintf("loong x%d + contbatch x8", n-1), Groups: []fleet.ReplicaGroup{
			{Kind: loong, Count: n - 1}, {Kind: cheap, Count: 8},
		}},
	}
}

// heteroSLOScale is the latency budget multiplier of the hetero arms: like
// the autoscale experiment, an interactive 5x budget (on the loong kind's
// reference config for every arm) makes queueing and slow long prefills
// actually cost SLOs.
const heteroSLOScale = 5

// longSessions returns the IDs of the long-document sessions.
func longSessions(scripts []workload.SessionScript) map[int64]bool {
	long := make(map[int64]bool)
	for i := range scripts {
		if scripts[i].DocTokens > 0 {
			long[scripts[i].ID] = true
		}
	}
	return long
}

// classSLO splits SLO attainment by request class: long-document sessions
// vs chat. The result trace joins record IDs back to sessions.
func classSLO(res *fleet.Result, long map[int64]bool) (longSLO, chatSLO float64) {
	var lMet, lN, cMet, cN int
	for _, rec := range res.Records {
		i := int(rec.ID) - 1
		if i < 0 || i >= len(res.Trace) {
			continue
		}
		if long[res.Trace[i].SessionID] {
			lN++
			if rec.MeetsSLO() {
				lMet++
			}
		} else {
			cN++
			if rec.MeetsSLO() {
				cMet++
			}
		}
	}
	if lN > 0 {
		longSLO = float64(lMet) / float64(lN)
	}
	if cN > 0 {
		chatSLO = float64(cMet) / float64(cN)
	}
	return longSLO, chatSLO
}

// heteroRow formats one arm's comparison row.
func heteroRow(rows [][]string, arm int, name, policy string, res *fleet.Result, long map[int64]bool, scaling string) {
	s := res.Summary()
	longSLO, chatSLO := classSLO(res, long)
	rows[arm] = []string{name, policy,
		f3(res.MeanCostUnits()),
		f3(res.Goodput()), f3(MeanTTFT(res.Records)),
		pct(s.SLOAttainment), pct(longSLO), pct(chatSLO),
		f4(res.GoodputPerCostUnit()), scaling}
}

// heteroErrRow formats a failed arm.
func heteroErrRow(rows [][]string, arm int, name, policy string, err error) {
	cell := "ERR"
	if _, oom := err.(*serving.ErrOOM); oom {
		cell = "OOM"
	}
	rows[arm] = []string{name, policy, "-", cell, "-", "-", "-", "-", "-", err.Error()}
}

// FleetHeteroExperiment is the heterogeneous-fleet comparison: equal-cost
// static compositions (homogeneous LoongServe, homogeneous small
// continuous batching, mixed) under capability-aware routing, the mixed
// fleet again under capability-blind MigratingAffinity (the ablation: the
// hardware alone does not win — the router must know per-replica
// capability), and the kind-picking autoscaler, all on one bursty
// closed-loop chat+long-document workload. The figure of merit is goodput
// per provisioned cost unit — the re-normalization that makes an 8-GPU
// replica and a 2-GPU replica comparable on one axis.
func FleetHeteroExperiment(sc Scale) *Table {
	wcfg := FleetHeteroWorkload(sc)
	scripts := workload.SessionScripts(wcfg, sc.Seed)
	long := longSessions(scripts)

	loong, err := FleetKind("loong")
	if err != nil {
		panic(err) // unreachable: the name is a constant
	}
	cheap, err := FleetKind("contbatch")
	if err != nil {
		panic(err) // unreachable: the name is a constant
	}
	// Resolve before the parallel arms: resolved kinds are read-only, so
	// sharing them across arms is race-free.
	if err := loong.Resolve(); err != nil {
		panic(err)
	}
	if err := cheap.Resolve(); err != nil {
		panic(err)
	}

	comps := HeteroCompositions(sc, loong, cheap)
	t := &Table{
		Title: fmt.Sprintf("Fleet: heterogeneous compositions at equal cost (%d cost units; %.0f%% long-document sessions, bursty closed loop, %d requests)",
			8*sc.HeteroLoong, 100*wcfg.LongFrac, workload.NumRequests(scripts)),
		Header: []string{"fleet", "policy", "cost-units(mean)", "goodput(req/s)", "TTFT(s)", "SLO", "SLO-long", "SLO-chat", "goodput/cost-unit", "scaling"},
	}

	acfg := autoscale.DefaultConfig()
	acfg.Min = 1
	acfg.Max = 8 * sc.HeteroLoong
	acfg.Warmup = time.Duration(sc.AutoscaleWarmup * float64(time.Second))
	// The base kind (first candidate, the Min-floor fleet) is the cheap
	// one: every request structurally fits it here, so the long-context
	// kind enters the fleet only when the controller decides the queue's
	// long tail is worth 8 GPUs — the kind decision under test.
	acfg.Kinds = []*fleet.ReplicaKind{cheap, loong}
	// The default pressure thresholds are calibrated for 8-GPU replicas
	// (a healthy continuous batch runs dozens of requests); most of this
	// fleet's replicas are single-GPU nodes with an eighth of the
	// comfortable batch, so the per-replica triggers shrink accordingly.
	acfg.UpAt, acfg.DownAt = 8, 5
	acfg.Cooldown = 2 * time.Second

	// Arms: the static compositions under CapabilityAffinity, the mixed
	// composition under capability-blind MigratingAffinity, then the
	// kind-picking autoscaler.
	mixed := comps[len(comps)-1]
	rows := make([][]string, len(comps)+2)
	runArms(len(rows), sc.workers(), func(arm int) {
		switch {
		case arm < len(comps):
			c := comps[arm]
			res, err := fleet.RunSessionsGroups(scripts, fleet.Config{
				Groups:   c.Groups,
				SLOKind:  loong,
				Policy:   fleet.NewCapabilityAffinity(),
				SLOScale: heteroSLOScale,
			}, true)
			if err != nil {
				heteroErrRow(rows, arm, c.Name, "capability", err)
				return
			}
			heteroRow(rows, arm, c.Name, "capability", res, long, "-")
		case arm == len(comps):
			res, err := fleet.RunSessionsGroups(scripts, fleet.Config{
				Groups:   mixed.Groups,
				SLOKind:  loong,
				Policy:   fleet.NewMigratingAffinity(),
				SLOScale: heteroSLOScale,
			}, true)
			if err != nil {
				heteroErrRow(rows, arm, mixed.Name, "migrate (capability-blind)", err)
				return
			}
			heteroRow(rows, arm, mixed.Name, "migrate (capability-blind)", res, long, "-")
		default:
			ares, err := autoscale.RunKinds(scripts, fleet.Config{
				SLOKind:  loong,
				Policy:   fleet.NewCapabilityAffinity(),
				SLOScale: heteroSLOScale,
			}, acfg, true)
			if err != nil {
				heteroErrRow(rows, arm, "autoscale(kinds)", "capability", err)
				return
			}
			heteroRow(rows, arm, "autoscale(kinds)", "capability", ares.Result, long,
				fmt.Sprintf("%d up (%s) / %d down, peak %d", ares.ScaleUps, FormatKindUps(ares.ScaleUpsByKind), ares.ScaleDowns, ares.PeakReplicas))
		}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"equal-cost arms: 1 loong (8-GPU ESP node) trades for 8 contbatch (single-GPU continuous-batching nodes); cost units are provisioned GPU-seconds",
		fmt.Sprintf("capability routing keeps prompts past %.0f%% of a replica's KV envelope off small replicas; long documents land on the loong kind",
			100*fleet.DefaultCapabilityHeadroom),
		"expected shape: the homogeneous small fleet bleeds SLO on the long tail, the homogeneous loong fleet overpays for chat, and the mixed fleet (or the kind-picking autoscaler) wins goodput per cost unit",
		fmt.Sprintf("autoscaler: kinds picked per scale-up by marginal goodput per cost unit against the queue's length mix; warm-up %v, ceiling %d replicas", acfg.Warmup, acfg.Max))
	return t
}

// FormatKindUps renders per-kind scale-up counts deterministically
// (sorted by kind name) — shared with the loongserve-fleet CLI.
func FormatKindUps(ups map[string]int) string {
	if len(ups) == 0 {
		return "none"
	}
	names := make([]string, 0, len(ups))
	for name := range ups {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%d %s", ups[name], name))
	}
	return strings.Join(parts, ", ")
}
