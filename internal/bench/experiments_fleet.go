package bench

import (
	"fmt"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// FleetSpec returns the replica blueprint of the fleet experiments: each
// replica is one 8-GPU node. engine selects what runs on it — "vllm"
// (static TP=8 continuous batching, the cheap default) or "loongserve"
// (the elastic TP=2 core).
func FleetSpec(engine string) (fleet.Spec, error) {
	m := model.LWM1MText()
	hw := cluster.A800()
	switch engine {
	case "vllm":
		return fleet.Spec{
			NewEngine: func() serving.Engine { return baselinesVLLM() },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 8, 8)
			},
		}, nil
	case "loongserve":
		return fleet.Spec{
			NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 8, 2)
			},
		}, nil
	}
	return fleet.Spec{}, fmt.Errorf("bench: unknown fleet engine %q (want vllm or loongserve)", engine)
}

// FleetSessionTrace builds the multi-turn session trace for one arrival
// rate: session count scales with rate x duration so every point reaches
// steady state.
func FleetSessionTrace(rate float64, sc Scale) []workload.TimedRequest {
	cfg := workload.DefaultSessionConfig()
	cfg.SessionRate = rate
	cfg.Sessions = int(rate * sc.Duration)
	if minSessions := sc.MinN / cfg.MinTurns; cfg.Sessions < minSessions {
		cfg.Sessions = minSessions
	}
	return workload.SessionTrace(cfg, sc.Seed)
}

// MeanTTFT returns the mean client-observed time to first token, seconds.
func MeanTTFT(recs []metrics.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.InputLatency().Seconds()
	}
	return sum / float64(len(recs))
}

// FleetExperiment compares the routing policies on a multi-replica fleet
// serving multi-turn chat sessions: per policy and session arrival rate it
// reports goodput, mean TTFT, normalized input latency, the prefix-cache
// token hit ratio, and SLO attainment. The cache-affinity-vs-load tension
// is the whole story of the table: round-robin and pure load balancing
// scatter each conversation across replicas and recompute its history
// every turn, while prefix-affinity routing keeps sessions warm and turns
// the saved prefill into lower TTFT — until load imbalance would cost more
// than the cache saves.
func FleetExperiment(sc Scale) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fleet: routing policy comparison (%d replicas x 8 GPUs, multi-turn sessions)", sc.FleetReplicas),
		Header: []string{"rate(sess/s)", "policy", "goodput(req/s)", "TTFT(s)", "input(ms/t)", "hit-ratio", "SLO"},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	// Arms are (rate, policy) points. Traces are built once per rate and
	// shared read-only; each arm constructs its own (stateful) policy and
	// fleet, and fills its own row.
	traces := make([][]workload.TimedRequest, len(sc.FleetRates))
	for i, rate := range sc.FleetRates {
		traces[i] = FleetSessionTrace(rate, sc)
	}
	numPolicies := len(fleet.AllPolicies(sc.Seed))
	rows := make([][]string, len(sc.FleetRates)*numPolicies)
	runArms(len(rows), sc.workers(), func(arm int) {
		rate := sc.FleetRates[arm/numPolicies]
		policy := fleet.AllPolicies(sc.Seed)[arm%numPolicies]
		res, err := fleet.Run(spec, traces[arm/numPolicies], fleet.Config{
			Replicas: sc.FleetReplicas,
			Policy:   policy,
		})
		if err != nil {
			cell := "ERR"
			if _, oom := err.(*serving.ErrOOM); oom {
				cell = "OOM"
			}
			rows[arm] = []string{fmt.Sprint(rate), policy.Name(), cell, "-", "-", "-", "-"}
			return
		}
		s := metrics.Summarize(res.Records)
		rows[arm] = []string{fmt.Sprint(rate), policy.Name(),
			f3(metrics.Goodput(res.Records)), f3(MeanTTFT(res.Records)),
			f4(s.MeanInput * 1e3), pct(res.TokenHitRatio()), pct(s.SLOAttainment)}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"expected shape: PrefixAffinity leads the hit-ratio column and converts it into the lowest TTFT; RoundRobin recomputes conversation history every turn",
		"goodput counts requests finishing within the paper's 25x SLO over the arrival window")
	return t
}
