package bench

import (
	"fmt"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// FleetSpec returns the replica blueprint of the fleet experiments: each
// replica is one 8-GPU node. engine selects what runs on it — "vllm"
// (static TP=8 continuous batching, the cheap default) or "loongserve"
// (the elastic TP=2 core).
func FleetSpec(engine string) (fleet.Spec, error) {
	m := model.LWM1MText()
	hw := cluster.A800()
	switch engine {
	case "vllm":
		return fleet.Spec{
			NewEngine: func() serving.Engine { return baselinesVLLM() },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 8, 8)
			},
		}, nil
	case "loongserve":
		return fleet.Spec{
			NewEngine: func() serving.Engine { return core.New(2, core.Options{}) },
			NewCluster: func() (*cluster.Cluster, error) {
				return cluster.New(m, hw, 1, 8, 2)
			},
		}, nil
	}
	return fleet.Spec{}, fmt.Errorf("bench: unknown fleet engine %q (want vllm or loongserve)", engine)
}

// FleetSessionTrace builds the multi-turn session trace for one arrival
// rate: session count scales with rate x duration so every point reaches
// steady state.
func FleetSessionTrace(rate float64, sc Scale) []workload.TimedRequest {
	cfg := workload.DefaultSessionConfig()
	cfg.SessionRate = rate
	cfg.Sessions = int(rate * sc.Duration)
	if minSessions := sc.MinN / cfg.MinTurns; cfg.Sessions < minSessions {
		cfg.Sessions = minSessions
	}
	return workload.SessionTrace(cfg, sc.Seed)
}

// MeanTTFT returns the mean client-observed time to first token, seconds.
func MeanTTFT(recs []metrics.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.InputLatency().Seconds()
	}
	return sum / float64(len(recs))
}

// FleetCaches is the cache-implementation axis of the fleet experiments,
// in presentation order.
var FleetCaches = []string{fleet.CacheWholeKey, fleet.CacheRadix}

// FleetExperiment compares the routing policies on a multi-replica fleet
// serving multi-turn chat sessions, under both prefix-cache
// implementations (whole-key LRU vs token-block radix): per (rate, cache,
// policy) point it reports goodput, mean TTFT, normalized input latency,
// the prefix-cache token hit ratio, and SLO attainment. The
// cache-affinity-vs-load tension is the whole story of the table:
// round-robin and pure load balancing scatter each conversation across
// replicas and recompute its history every turn, while prefix-affinity
// routing keeps sessions warm and turns the saved prefill into lower TTFT
// — until load imbalance would cost more than the cache saves. On this
// non-branching trace the two caches score close to each other (radix
// pays block quantization at every hit); FleetCacheExperiment shows where
// radix structurally wins.
func FleetExperiment(sc Scale) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fleet: routing policy comparison (%d replicas x 8 GPUs, multi-turn sessions)", sc.FleetReplicas),
		Header: []string{"rate(sess/s)", "cache", "policy", "goodput(req/s)", "TTFT(s)", "input(ms/t)", "hit-ratio", "SLO"},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	// Arms are (rate, cache, policy) points. Traces are built once per rate
	// and shared read-only; each arm constructs its own (stateful) policy
	// and fleet, and fills its own row.
	traces := make([][]workload.TimedRequest, len(sc.FleetRates))
	for i, rate := range sc.FleetRates {
		traces[i] = FleetSessionTrace(rate, sc)
	}
	numPolicies := len(fleet.AllPolicies(sc.Seed))
	perRate := len(FleetCaches) * numPolicies
	rows := make([][]string, len(sc.FleetRates)*perRate)
	runArms(len(rows), sc.workers(), func(arm int) {
		rate := sc.FleetRates[arm/perRate]
		cache := FleetCaches[arm%perRate/numPolicies]
		policy := fleet.AllPolicies(sc.Seed)[arm%numPolicies]
		res, err := fleet.Run(spec, traces[arm/perRate], fleet.Config{
			Replicas: sc.FleetReplicas,
			Policy:   policy,
			Cache:    cache,
		})
		if err != nil {
			cell := "ERR"
			if _, oom := err.(*serving.ErrOOM); oom {
				cell = "OOM"
			}
			rows[arm] = []string{fmt.Sprint(rate), cache, policy.Name(), cell, "-", "-", "-", "-"}
			return
		}
		s := metrics.Summarize(res.Records)
		rows[arm] = []string{fmt.Sprint(rate), cache, policy.Name(),
			f3(metrics.Goodput(res.Records)), f3(MeanTTFT(res.Records)),
			f4(s.MeanInput * 1e3), pct(res.TokenHitRatio()), pct(s.SLOAttainment)}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"expected shape: PrefixAffinity leads the hit-ratio column and converts it into the lowest TTFT; RoundRobin recomputes conversation history every turn",
		"goodput counts requests finishing within the paper's 25x SLO over the arrival window")
	return t
}

// FleetCacheTrace builds the branching-session trace of the cache
// comparison: families of sessions that share a system prompt and a
// conversation trunk, then diverge — the workload shape whole-key caching
// structurally cannot exploit (every branch has its own session key) and
// radix caching can (the trunk's blocks are one shared tree path).
func FleetCacheTrace(sc Scale) []workload.TimedRequest {
	cfg := workload.DefaultSessionConfig()
	cfg.SessionRate = 3
	cfg.Sessions = int(cfg.SessionRate * sc.Duration)
	if minSessions := sc.MinN / cfg.MinTurns; cfg.Sessions < minSessions {
		cfg.Sessions = minSessions
	}
	cfg.BranchFactor = 4
	cfg.BranchTurns = 3
	return workload.SessionTrace(cfg, sc.Seed)
}

// FleetCacheExperiment is the whole-key vs radix head-to-head: the same
// branching-session trace, the same PrefixAffinity routing, the same
// deliberately tight per-replica cache capacity — only the cache
// implementation differs. Hit-tokens is the headline column: the radix
// cache shares each family's trunk block-for-block and prices eviction by
// recompute cost, so it must convert strictly more prompt tokens into
// cache hits at equal capacity.
func FleetCacheExperiment(sc Scale) *Table {
	trace := FleetCacheTrace(sc)
	st := workload.SummarizeSessions(trace)
	// Capacity is set well below the trace's reusable footprint so both
	// caches run under genuine eviction pressure.
	capTokens := int(st.PrefixTokens / int64(4*sc.FleetReplicas))
	if capTokens < 4*workload.BlockTokens {
		capTokens = 4 * workload.BlockTokens
	}
	t := &Table{
		Title: fmt.Sprintf("Fleet: whole-key vs radix prefix cache (branching sessions, %d replicas, %dK-token caches)",
			sc.FleetReplicas, capTokens/1000),
		Header: []string{"cache", "goodput(req/s)", "TTFT(s)", "hit-tokens", "hit-ratio", "hit-req", "evicted", "rejected", "SLO"},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	rows := make([][]string, len(FleetCaches))
	runArms(len(rows), sc.workers(), func(arm int) {
		cache := FleetCaches[arm]
		res, err := fleet.Run(spec, trace, fleet.Config{
			Replicas:    sc.FleetReplicas,
			Policy:      fleet.NewPrefixAffinity(),
			Cache:       cache,
			CacheTokens: capTokens,
		})
		if err != nil {
			cell := "ERR"
			if _, oom := err.(*serving.ErrOOM); oom {
				cell = "OOM"
			}
			rows[arm] = []string{cache, cell, "-", "-", "-", "-", "-", "-", "-"}
			return
		}
		s := metrics.Summarize(res.Records)
		evicted, rejected := 0, 0
		for _, rs := range res.Replicas {
			evicted += rs.CacheEvicted
			rejected += rs.CacheRejected
		}
		rows[arm] = []string{cache,
			f3(metrics.Goodput(res.Records)), f3(MeanTTFT(res.Records)),
			fmt.Sprint(res.ComputeSavedTokens()), pct(res.TokenHitRatio()), pct(res.HitRequestRatio()),
			fmt.Sprint(evicted), fmt.Sprint(rejected), pct(s.SLOAttainment)}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		fmt.Sprintf("trace: %d requests, %d sessions in families of 4 sharing a 3-turn trunk; %.0f%% of input tokens prefix-reusable",
			st.Requests, st.Sessions, 100*float64(st.PrefixTokens)/float64(st.InputTokens)),
		"whole-key caching cannot share a trunk across branches (distinct session keys); the radix tree stores it once and every branch hits it",
		"radix eviction drops leaf blocks priced by the cost model's recompute time, not raw token counts")
	return t
}
