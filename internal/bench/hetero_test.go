package bench

import (
	"bytes"
	"os"
	"testing"

	"loongserve/internal/fleet"
	"loongserve/internal/workload"
)

// TestFleetQuickGolden is the backward-compat anchor of the composition
// refactor: the two pre-existing -exp fleet tables, rendered serially at
// quick scale, must stay byte-identical to the output of the
// pre-refactor tree (testdata/fleet_quick.golden, captured before
// ReplicaKind/Groups existed). The homogeneous Spec+Replicas path is a
// shim over the heterogeneous composition API, and this test is what
// "bit-identical" means.
func TestFleetQuickGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fleet_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	sc := QuickScale()
	sc.Workers = 1
	var buf bytes.Buffer
	FleetExperiment(sc).Fprint(&buf)
	FleetCacheExperiment(sc).Fprint(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("quick -exp fleet output diverged from the pre-refactor golden\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFleetKinds covers the kind registry and derived capability sheets.
func TestFleetKinds(t *testing.T) {
	if _, err := FleetKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	kinds := FleetKinds()
	if len(kinds) != len(FleetKindNames()) {
		t.Fatalf("FleetKinds returned %d kinds, names list %d", len(kinds), len(FleetKindNames()))
	}
	for _, k := range kinds {
		if err := k.Resolve(); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
	}
	loong, cheap := kinds[0], kinds[1]
	// The sheets are derived, not typed: the 8-GPU ESP node must report 8x
	// the cost and a strictly larger context envelope (its engine shards
	// one sequence across instances; the single-GPU engine is bounded by
	// one pool).
	if loong.GPUs != 8 || cheap.GPUs != 1 {
		t.Fatalf("GPUs: loong %d, contbatch %d", loong.GPUs, cheap.GPUs)
	}
	if loong.CostUnits != 8 || cheap.CostUnits != 1 {
		t.Fatalf("cost units: loong %v, contbatch %v", loong.CostUnits, cheap.CostUnits)
	}
	if loong.MaxContext <= 4*cheap.MaxContext {
		t.Fatalf("loong MaxContext %d not well above contbatch %d", loong.MaxContext, cheap.MaxContext)
	}
	if loong.MaxContext != loong.KVCapacity {
		t.Fatalf("loong (ESP, KV sharding) MaxContext %d != pool %d", loong.MaxContext, loong.KVCapacity)
	}
	if cheap.PrefillRate >= loong.PrefillRate {
		t.Fatalf("prefill rates: contbatch %v >= loong %v", cheap.PrefillRate, loong.PrefillRate)
	}
	if loong.PrefillSeconds(100_000) >= cheap.PrefillSeconds(100_000) {
		t.Fatal("100K prefill not faster on the 8-GPU kind")
	}
}

// TestFleetHeteroMixedWins is the acceptance property: on the quick-scale
// mixed-length workload, the mixed composition beats every same-cost
// homogeneous fleet on goodput per provisioned cost unit, deterministically.
func TestFleetHeteroMixedWins(t *testing.T) {
	sc := QuickScale()
	sc.Workers = 1
	wcfg := FleetHeteroWorkload(sc)
	scripts := workload.SessionScripts(wcfg, sc.Seed)

	loong, _ := FleetKind("loong")
	cheap, _ := FleetKind("contbatch")
	comps := HeteroCompositions(sc, loong, cheap)
	gcu := make(map[string]float64, len(comps))
	var costUnits float64
	for _, c := range comps {
		res, err := fleet.RunSessionsGroups(scripts, fleet.Config{
			Groups:   c.Groups,
			SLOKind:  loong,
			Policy:   fleet.NewCapabilityAffinity(),
			SLOScale: heteroSLOScale,
		}, true)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		gcu[c.Name] = res.GoodputPerCostUnit()
		if costUnits == 0 {
			costUnits = res.MeanCostUnits()
		} else if d := res.MeanCostUnits() - costUnits; d > 1e-6 || d < -1e-6 {
			t.Fatalf("%s provisions %.6f cost units, want %.6f (arms must be same-cost)", c.Name, res.MeanCostUnits(), costUnits)
		}
		t.Logf("%-26s goodput/cost-unit %.4f", c.Name, gcu[c.Name])
	}
	mixed := comps[len(comps)-1].Name
	for _, c := range comps[:len(comps)-1] {
		if gcu[mixed] <= gcu[c.Name] {
			t.Fatalf("mixed fleet %.4f goodput/cost-unit does not beat homogeneous %s at %.4f", gcu[mixed], c.Name, gcu[c.Name])
		}
	}
}

// TestFleetHeteroExperimentShape runs the full quick experiment (including
// the capability-blind ablation and the kind-picking autoscaler arms) and
// checks every row rendered with real numbers.
func TestFleetHeteroExperimentShape(t *testing.T) {
	sc := QuickScale()
	sc.Workers = 1
	tab := FleetHeteroExperiment(sc)
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(tab.Header))
		}
		if row[3] == "ERR" || row[3] == "OOM" {
			t.Fatalf("arm %s/%s failed: %v", row[0], row[1], row[len(row)-1])
		}
	}
	// The autoscaler must have scaled, and must report its kind decisions.
	scaling := tab.Rows[4][len(tab.Rows[4])-1]
	if scaling == "-" || scaling == "" {
		t.Fatalf("autoscale row reports no scaling activity: %q", scaling)
	}
}

// TestFleetHeteroExperimentParallelDeterminism mirrors the other
// experiments' serial-vs-parallel byte-identity property for the hetero
// table.
func TestFleetHeteroExperimentParallelDeterminism(t *testing.T) {
	serial := QuickScale()
	serial.Workers = 1
	par := QuickScale()
	par.Workers = 4

	var a, b bytes.Buffer
	FleetHeteroExperiment(serial).Fprint(&a)
	FleetHeteroExperiment(par).Fprint(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("hetero table differs between serial and parallel arms\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
}
