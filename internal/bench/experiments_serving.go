package bench

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/costmodel"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// Scale controls experiment sizes so the same code serves quick CI
// benchmarks and the full EXPERIMENTS.md regeneration. Traces are sized by
// duration (n = rate x Duration, floored at MinN) so every rate point runs
// long enough to reach steady state instead of measuring a transient burst.
type Scale struct {
	MinN     int     // minimum requests per run
	Duration float64 // seconds of arrivals per run
	// Rate ladders (req/s), calibrated to this simulator's saturation
	// points; the paper's absolute rates belong to its testbed, the curve
	// shapes are what must match.
	Fig10Rates map[string][]float64 // per dataset
	Fig12Rates map[string][]float64 // per zipf parameter label
	Fig13Rates []float64            // ShareGPT ladder for the scale-up ablation
	// Fleet experiment: session arrival rates (sessions/s) and replica
	// count for the routing-policy comparison.
	FleetRates    []float64
	FleetReplicas int
	// Autoscale experiment: bursty closed-loop arrival horizon (seconds),
	// replica warm-up (seconds) and the fleet-size ceiling the static
	// ladder and the controller both use.
	AutoscaleDuration float64
	AutoscaleWarmup   float64
	AutoscaleMax      int
	// Heterogeneous-fleet experiment: arrival horizon (seconds), session
	// rate (sessions/s) and the long-context replica count of the
	// homogeneous-LoongServe arm, from which the equal-cost compositions
	// derive (see HeteroCompositions).
	HeteroDuration float64
	HeteroRate     float64
	HeteroLoong    int
	// Chaos experiment: session arrival horizon (seconds), session rate
	// (sessions/s) and the crash-rate ladder (crashes per simulated
	// minute; stall and cache-drop rates derive from each point).
	ChaosDuration   float64
	ChaosRate       float64
	ChaosCrashRates []float64
	// Cache-directory experiment: session arrival horizon (seconds) and
	// session rate (sessions/s) for the placement-policy comparison under
	// drain/crash/link-degradation churn.
	CacheDirDuration float64
	CacheDirRate     float64
	// Big-fleet sharding experiment: heterogeneous composition (loong +
	// contbatch replica counts), session count and arrival rate of the
	// day-long trace, the shard ladder (must start at 1, the serial
	// reference), and whether to run the fusion-off identity arm (cheap at
	// quick scale, prohibitive on the full trace).
	BigFleetLoong      int
	BigFleetSmall      int
	BigFleetSessions   int
	BigFleetRate       float64
	BigFleetShards     []int
	BigFleetFuse       bool // decode-iteration fusion on the ladder arms
	BigFleetUnfusedArm bool
	Seed               int64
	// Workers bounds how many independent experiment arms run concurrently
	// (each arm owns a full simulator); 0 means one per available CPU, 1
	// forces serial execution. Results are ordered by arm index either way,
	// so tables are byte-identical at any setting.
	Workers int
}

// FullScale returns the configuration used to regenerate EXPERIMENTS.md.
func FullScale() Scale {
	return Scale{
		MinN:     100,
		Duration: 30,
		Fig10Rates: map[string][]float64{
			"ShareGPT": {30, 100, 200, 300, 400},
			"L-Eval":   {0.5, 1, 2, 4, 6},
			"LV-Eval":  {0.1, 0.2, 0.4, 0.8},
			"Mixed":    {0.2, 0.5, 1, 2, 3},
		},
		Fig12Rates: map[string][]float64{
			"1.00": {0.4, 0.6, 0.8, 1.0, 1.3},
			"1.20": {2, 3, 4, 5, 6, 8},
			"1.40": {6, 8, 9, 11, 14},
		},
		Fig13Rates:        []float64{5, 15, 30, 50, 80},
		FleetRates:        []float64{1, 3, 6, 10},
		FleetReplicas:     4,
		AutoscaleDuration: 360,
		AutoscaleWarmup:   15,
		AutoscaleMax:      4,
		HeteroDuration:    240,
		HeteroRate:        2.8,
		HeteroLoong:       3,
		ChaosDuration:     120,
		ChaosRate:         2.5,
		ChaosCrashRates:   []float64{0, 0.5, 2},
		CacheDirDuration:  180,
		CacheDirRate:      2.5,
		// The day-long trace: ~1M sessions over ~24 simulated hours through
		// 64 replicas, sharded at the full acceptance ladder.
		BigFleetLoong:    8,
		BigFleetSmall:    56,
		BigFleetSessions: 1_000_000,
		BigFleetRate:     11.6,
		BigFleetShards:   []int{1, 4, 8},
		BigFleetFuse:     true,
		Seed:             42,
	}
}

// QuickScale returns a reduced configuration for unit tests and -bench
// runs.
func QuickScale() Scale {
	return Scale{
		MinN:     50,
		Duration: 6,
		Fig10Rates: map[string][]float64{
			"ShareGPT": {50, 250},
			"L-Eval":   {1, 4},
			"LV-Eval":  {0.1, 0.4},
			"Mixed":    {0.5, 2},
		},
		Fig12Rates: map[string][]float64{
			"1.00": {1, 2},
			"1.20": {2, 4},
			"1.40": {4, 9},
		},
		Fig13Rates:        []float64{20, 60},
		FleetRates:        []float64{1, 3, 6},
		FleetReplicas:     3,
		AutoscaleDuration: 120,
		AutoscaleWarmup:   5,
		AutoscaleMax:      3,
		HeteroDuration:    90,
		HeteroRate:        2.8,
		HeteroLoong:       2,
		ChaosDuration:     40,
		ChaosRate:         3,
		ChaosCrashRates:   []float64{0, 3},
		CacheDirDuration:  90,
		CacheDirRate:      2.5,
		// Same 64-replica fleet, a few simulated minutes of trace: the CI
		// smoke shape, with the fusion-off identity arm included.
		BigFleetLoong:      8,
		BigFleetSmall:      56,
		BigFleetSessions:   2_000,
		BigFleetRate:       8,
		BigFleetShards:     []int{1, 4},
		BigFleetFuse:       true,
		BigFleetUnfusedArm: true,
		Seed:               42,
	}
}

// traceFor builds a steady-state-length trace for one rate point.
func (sc Scale) traceFor(ds workload.Dataset, rate float64) []workload.TimedRequest {
	n := int(rate * sc.Duration)
	if n < sc.MinN {
		n = sc.MinN
	}
	return workload.PoissonTrace(ds, rate, n, sc.Seed)
}

func dataset(name string) workload.Dataset {
	switch name {
	case "ShareGPT":
		return workload.ShareGPT()
	case "L-Eval":
		return workload.LEval()
	case "LV-Eval":
		return workload.LVEval()
	case "Mixed":
		return workload.Mixed()
	}
	panic("bench: unknown dataset " + name)
}

// fig10Systems returns the Fig 10 comparison set for one dataset.
// DeepSpeed-MII appears only for ShareGPT (it cannot serve >32K requests,
// as in the paper).
func fig10Systems(ds string) []System {
	systems := []System{
		LoongServeSys(1, core.Options{}),
		VLLMSys(1),
	}
	if ds == "ShareGPT" {
		systems = append(systems, DeepSpeedMIISys())
	}
	systems = append(systems, LightLLMSys(1, dataset(ds)), DistServeSys())
	return systems
}

// Fig10 reproduces the end-to-end comparison: normalized per-token, input
// and output latency for every system over every dataset's rate ladder.
// Each (rate, system) point is an independent simulation and runs as its
// own arm; traces are shared read-only per rate.
func Fig10(sc Scale) []*Table {
	var tables []*Table
	for _, ds := range []string{"ShareGPT", "L-Eval", "LV-Eval", "Mixed"} {
		t := &Table{
			Title:  fmt.Sprintf("Figure 10 (%s): normalized latency vs request rate", ds),
			Header: []string{"rate(req/s)", "system", "per-token(s/t)", "input(s/t)", "output(s/t)", "SLO"},
		}
		rates := sc.Fig10Rates[ds]
		systems := fig10Systems(ds)
		traces := make([][]workload.TimedRequest, len(rates))
		for i, rate := range rates {
			traces[i] = sc.traceFor(dataset(ds), rate)
		}
		rows := make([][]string, len(rates)*len(systems))
		runArms(len(rows), sc.workers(), func(arm int) {
			rate := rates[arm/len(systems)]
			sys := systems[arm%len(systems)]
			recs, err := RunTrace(sys, traces[arm/len(systems)])
			if err != nil {
				rows[arm] = []string{fmt.Sprint(rate), sys.Name, "OOM", "OOM", "OOM", "-"}
				return
			}
			s := metrics.Summarize(recs)
			rows[arm] = []string{fmt.Sprint(rate), sys.Name,
				f4(s.MeanPerToken), f4(s.MeanInput), f4(s.MeanOutput), pct(s.SLOAttainment)}
		})
		t.Rows = rows
		t.Notes = append(t.Notes,
			"paper shapes: LoongServe keeps output latency low at every rate; DistServe OOMs on LV-Eval/Mixed; chunked prefill suffers on high P:D datasets")
		tables = append(tables, t)
	}
	return tables
}

// Fig11 reproduces the multi-node comparison: 16 GPUs over two servers,
// Mixed dataset; baselines deploy one engine per server behind a router,
// LoongServe extends ESP to 8.
func Fig11(sc Scale) *Table {
	t := &Table{
		Title:  "Figure 11: multi-node (2x8 GPUs) performance on Mixed",
		Header: []string{"rate(req/s)", "system", "per-token(s/t)", "input(s/t)", "output(s/t)", "SLO"},
	}
	systems := []System{
		LoongServeSys(2, core.Options{}),
		VLLMSys(2),
		LightLLMSys(2, workload.Mixed()),
	}
	for _, rate := range sc.Fig10Rates["Mixed"] {
		// Twice the hardware serves twice the rate range.
		rate *= 2
		trace := sc.traceFor(workload.Mixed(), rate)
		for _, sys := range systems {
			recs, err := RunTrace(sys, trace)
			if err != nil {
				t.AddRow(fmt.Sprint(rate), sys.Name, "OOM", "OOM", "OOM", "-")
				continue
			}
			s := metrics.Summarize(recs)
			t.AddRow(fmt.Sprint(rate), sys.Name,
				f4(s.MeanPerToken), f4(s.MeanInput), f4(s.MeanOutput), pct(s.SLOAttainment))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: LoongServe scales across nodes by picking per-request DoPs; per-server baselines cannot")
	return t
}

// P90Goodput sweeps a rate ladder and returns the best goodput achieved
// with >=90% SLO attainment (the DistServe/paper metric used by Figs 12 and
// 13a).
func P90Goodput(sys System, ds workload.Dataset, rates []float64, sc Scale) float64 {
	best := 0.0
	for _, rate := range rates {
		trace := sc.traceFor(ds, rate)
		recs, err := RunTrace(sys, trace)
		if err != nil {
			continue
		}
		s := metrics.Summarize(recs)
		if s.SLOAttainment >= 0.90 {
			if g := metrics.Goodput(recs); g > best {
				best = g
			}
		}
	}
	return best
}

// Fig12 reproduces the ESP ablation: P90 goodput of LoongServe vs the
// without-ESP variants under Zipf-skewed Mixed workloads (lengths capped at
// 200K so the replicated baseline can serve every request).
func Fig12(sc Scale) *Table {
	t := &Table{
		Title:  "Figure 12: P90 goodput under Zipf sequence-length skews (req/s)",
		Header: []string{"zipf", "LoongServe", "w/o ESP (TP=8)", "w/o ESP (TP=2,SP=4)", "w/o ESP (TP=2)x4", "best gain"},
	}
	systems := []System{LoongServeSys(1, core.Options{}), TP8Sys(), StaticHybridSys(), ReplicatedSys()}
	for _, zipf := range []float64{1.0, 1.2, 1.4} {
		ds := workload.NewZipf(workload.Mixed(), zipf, 200_000, sc.Seed)
		rates := sc.Fig12Rates[fmt.Sprintf("%.2f", zipf)]
		row := []string{fmt.Sprintf("%.2f", zipf)}
		vals := make([]float64, len(systems))
		for i, sys := range systems {
			vals[i] = P90Goodput(sys, ds, rates, sc)
			row = append(row, f3(vals[i]))
		}
		bestBase := 0.0
		for _, v := range vals[1:] {
			if v > bestBase {
				bestBase = v
			}
		}
		if bestBase > 0 {
			row = append(row, fmt.Sprintf("%.2fx", vals[0]/bestBase))
		} else {
			row = append(row, "inf")
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: ESP beats every static parallelism at every skew (paper gains 2.33x/1.98x/1.53x over the best baseline)")
	return t
}

// Fig13 reproduces the elastic scale-up ablation on the generation-heavy
// chat workload (ShareGPT prompts, long outputs — the regime §7.4 motivates
// scale-up with): (a) SLO attainment and output latency with and without
// scale-up over the rate ladder; (b) scale-up operations per 10-second
// window at the highest rate.
func Fig13(sc Scale) (*Table, *Table) {
	a := &Table{
		Title:  "Figure 13a: elastic scale-up ablation (ShareGPT-long)",
		Header: []string{"rate(req/s)", "SLO w/ scale-up", "SLO w/o", "output w/ (s/t)", "output w/o (s/t)"},
	}
	rates := sc.Fig13Rates
	for _, rate := range rates {
		trace := sc.traceFor(workload.ShareGPTLong(), rate)
		with, err1 := RunTrace(LoongServeSys(1, core.Options{}), trace)
		without, err2 := RunTrace(LoongServeSys(1, core.Options{DisableScaleUp: true}), trace)
		c1, c2, o1, o2 := "ERR", "ERR", "-", "-"
		if err1 == nil {
			s := metrics.Summarize(with)
			c1, o1 = pct(s.SLOAttainment), f4(s.MeanOutput)
		}
		if err2 == nil {
			s := metrics.Summarize(without)
			c2, o2 = pct(s.SLOAttainment), f4(s.MeanOutput)
		}
		a.AddRow(fmt.Sprint(rate), c1, c2, o1, o2)
	}
	a.Notes = append(a.Notes, "paper shape: scale-up sustains attainment to higher rates (paper: 2.87x P90 goodput on its testbed)")

	b := &Table{
		Title:  "Figure 13b: elastic scale-up operations per 10s window (ShareGPT-long, highest rate)",
		Header: []string{"window", "scale-ups"},
	}
	rate := rates[len(rates)-1]
	trace := sc.traceFor(workload.ShareGPTLong(), rate)
	eng, recs, err := runLoongServe(core.Options{}, 1, trace)
	if err != nil {
		b.Notes = append(b.Notes, "run failed: "+err.Error())
		return a, b
	}
	makespan := metrics.Summarize(recs).Duration
	buckets := int(makespan/(10*time.Second)) + 1
	counts := make([]int, buckets)
	for _, at := range eng.ScaleUps {
		idx := int(time.Duration(at) / (10 * time.Second))
		if idx >= 0 && idx < buckets {
			counts[idx]++
		}
	}
	total := 0
	for i, c := range counts {
		b.AddRow(fmt.Sprintf("%d-%ds", i*10, (i+1)*10), fmt.Sprint(c))
		total += c
	}
	b.Notes = append(b.Notes,
		fmt.Sprintf("mean %.2f scale-ups per 10s at %.0f req/s (paper: 7.12 at 25 req/s on its testbed)",
			float64(total)/float64(buckets), rate))
	return a, b
}

// runLoongServe runs a LoongServe engine directly so instrumentation
// (scale-up timestamps, counters) stays accessible.
func runLoongServe(opts core.Options, nodes int, trace []workload.TimedRequest) (*core.Engine, []metrics.Record, error) {
	m := model.LWM1MText()
	hw := cluster.A800()
	c, err := cluster.New(m, hw, nodes, 8, 2)
	if err != nil {
		return nil, nil, err
	}
	eng := core.New(2, opts)
	recs, err := serving.Run(eng, c, costmodel.New(m, hw), trace, serving.DefaultRunConfig())
	return eng, recs, err
}

// AblationDPBatching compares the Eq 5 dynamic-programming batcher against
// the greedy single-batch fallback on a mixed-length workload.
func AblationDPBatching(sc Scale) *Table {
	t := &Table{
		Title:  "Ablation: Eq 5 DP batching vs greedy single batch (Mixed)",
		Header: []string{"rate(req/s)", "variant", "input(s/t)", "per-token(s/t)", "SLO"},
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"DP batching", core.Options{}},
		{"greedy", core.Options{DisableDPBatching: true}},
	}
	rates := sc.Fig10Rates["Mixed"]
	traces := make([][]workload.TimedRequest, len(rates))
	for i, rate := range rates {
		traces[i] = sc.traceFor(workload.Mixed(), rate)
	}
	rows := make([][]string, len(rates)*len(variants))
	runArms(len(rows), sc.workers(), func(arm int) {
		rate := rates[arm/len(variants)]
		v := variants[arm%len(variants)]
		recs, err := RunTrace(LoongServeSys(1, v.opts), traces[arm/len(variants)])
		if err != nil {
			rows[arm] = []string{fmt.Sprint(rate), v.name, "ERR", "ERR", "-"}
			return
		}
		s := metrics.Summarize(recs)
		rows[arm] = []string{fmt.Sprint(rate), v.name, f4(s.MeanInput), f4(s.MeanPerToken), pct(s.SLOAttainment)}
	})
	t.Rows = rows
	return t
}
