package bench

import (
	"fmt"
	"strings"
	"testing"

	"loongserve/internal/baselines"
	"loongserve/internal/core"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/workload"
)

func TestTableFprint(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"=== t ===", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig2TableShape(t *testing.T) {
	tb := Fig2()
	if len(tb.Rows) != 8 {
		t.Fatalf("Fig2 rows = %d, want 8", len(tb.Rows))
	}
	// Long prefill row ends well below 0.5 at TP=8; decode rows stay above.
	longRow := tb.Rows[3]
	if longRow[4] >= "0.50" {
		t.Fatalf("100K prefill at TP=8 not scaling: %v", longRow)
	}
	if !strings.Contains(tb.Notes[0], "105.97") {
		t.Fatal("anchor note missing")
	}
}

func TestFig3TableShape(t *testing.T) {
	tb := Fig3()
	if len(tb.Rows) != 12 {
		t.Fatalf("Fig3 rows = %d, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[3] != "1.000" {
			t.Fatalf("baseline column not normalized: %v", row)
		}
	}
}

func TestFig14OverheadBounds(t *testing.T) {
	tb := Fig14()
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "prefill") {
			// scale-down delta column like "0.3%" must stay below 2%.
			d := row[5]
			if !strings.HasSuffix(d, "%") {
				t.Fatalf("bad delta cell %q", d)
			}
			if d >= "2.0%" && !strings.HasPrefix(d, "0.") && !strings.HasPrefix(d, "1.") {
				t.Fatalf("scale-down overhead too high: %v", row)
			}
		}
	}
}

func TestFig15DeviationBound(t *testing.T) {
	tb := Fig15()
	note := tb.Notes[len(tb.Notes)-1]
	var v float64
	if _, err := fmt.Sscanf(note, "max |deviation| = %f%%", &v); err != nil {
		t.Fatalf("unparseable deviation note %q: %v", note, err)
	}
	if v > 15 {
		t.Fatalf("analytical model deviation %.1f%% > 15%%", v)
	}
}

func TestRunTraceCompletes(t *testing.T) {
	trace := workload.PoissonTrace(workload.ShareGPT(), 5, 20, 1)
	recs, err := RunTrace(LoongServeSys(1, core.Options{}), trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("completed %d", len(recs))
	}
}

func TestFig10QuickShapes(t *testing.T) {
	sc := QuickScale()
	// LV-Eval at the lowest rate: LoongServe completes, DistServe OOMs.
	trace := sc.traceFor(dataset("LV-Eval"), sc.Fig10Rates["LV-Eval"][0])
	if _, err := RunTrace(DistServeSys(), trace); err == nil {
		t.Fatal("DistServe should OOM on LV-Eval")
	}
	lsRecs, err := RunTrace(LoongServeSys(1, core.Options{}), trace)
	if err != nil {
		t.Fatal(err)
	}
	vlRecs, err := RunTrace(VLLMSys(1), trace)
	if err != nil {
		t.Fatal(err)
	}
	ls := metrics.Summarize(lsRecs)
	vl := metrics.Summarize(vlRecs)
	if ls.MeanOutput >= vl.MeanOutput {
		t.Fatalf("LoongServe output %.4f should beat vLLM %.4f on LV-Eval", ls.MeanOutput, vl.MeanOutput)
	}
}

func TestDeepSpeedMIIOOMBeyond32K(t *testing.T) {
	trace := []workload.TimedRequest{{Entry: workload.Entry{InputLen: 40_000, OutputLen: 64}}}
	if _, err := RunTrace(DeepSpeedMIISys(), trace); err == nil {
		t.Fatal("DeepSpeed-MII should fail beyond 32K tokens")
	}
}

func TestLightLLMChunkPerDataset(t *testing.T) {
	// The P:D-ratio chunk for L-Eval must be much larger than ShareGPT's.
	sg, ok := LightLLMSys(1, workload.ShareGPT()).NewEngine().(*baselines.SplitFuse)
	if !ok {
		t.Fatal("LightLLM engine is not a SplitFuse")
	}
	le := LightLLMSys(1, workload.LEval()).NewEngine().(*baselines.SplitFuse)
	if le.ChunkSize <= sg.ChunkSize {
		t.Fatalf("L-Eval chunk %d should exceed ShareGPT chunk %d", le.ChunkSize, sg.ChunkSize)
	}
}

func TestP90GoodputMonotoneInput(t *testing.T) {
	// A system that always meets SLO at rate r yields goodput >= r * 0.9.
	sc := QuickScale()
	ds := workload.ShareGPT()
	g := P90Goodput(LoongServeSys(1, core.Options{}), ds, []float64{5}, sc)
	if g < 4 {
		t.Fatalf("goodput %.2f at offered 5 req/s under light load", g)
	}
}

func TestFleetExperimentShape(t *testing.T) {
	sc := QuickScale()
	sc.FleetRates = sc.FleetRates[:2] // keep the unit test fast
	tbl := FleetExperiment(sc)
	// One row per (rate, cache, policy).
	wantRows := len(sc.FleetRates) * len(FleetCaches) * len(fleet.AllPolicies(sc.Seed))
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %v does not match header %v", row, tbl.Header)
		}
		if row[3] == "OOM" {
			t.Fatalf("fleet run OOMed on a chat workload: %v", row)
		}
	}
	// PrefixAffinity must report a strictly higher hit ratio than
	// RoundRobin at every rate, under both cache implementations (the
	// routing claim is cache-independent).
	hitRatio := func(rate, cache, policy string) string {
		for _, row := range tbl.Rows {
			if row[0] == rate && row[1] == cache && row[2] == policy {
				return row[6]
			}
		}
		t.Fatalf("no row for %s/%s/%s", rate, cache, policy)
		return ""
	}
	for _, rate := range sc.FleetRates {
		for _, cache := range FleetCaches {
			rs := fmt.Sprint(rate)
			var rr, aff float64
			if _, err := fmt.Sscanf(hitRatio(rs, cache, "RoundRobin"), "%f%%", &rr); err != nil {
				t.Fatal(err)
			}
			if _, err := fmt.Sscanf(hitRatio(rs, cache, "PrefixAffinity"), "%f%%", &aff); err != nil {
				t.Fatal(err)
			}
			if aff <= rr {
				t.Errorf("rate %s cache %s: PrefixAffinity hit ratio %.1f%% <= RoundRobin %.1f%%", rs, cache, aff, rr)
			}
		}
	}
}

// TestFleetCacheExperimentRadixWins is the tentpole acceptance test: on
// the branching-session workload at equal (tight) capacity, the radix
// cache converts strictly more prompt tokens into cache hits than the
// whole-key cache, and the table is deterministic run to run.
func TestFleetCacheExperimentRadixWins(t *testing.T) {
	sc := QuickScale()
	tbl := FleetCacheExperiment(sc)
	if len(tbl.Rows) != len(FleetCaches) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(FleetCaches))
	}
	hitTokens := make(map[string]int64)
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %v does not match header %v", row, tbl.Header)
		}
		var v int64
		if _, err := fmt.Sscanf(row[3], "%d", &v); err != nil {
			t.Fatalf("hit-tokens cell %q: %v", row[3], err)
		}
		hitTokens[row[0]] = v
	}
	if hitTokens["radix"] <= hitTokens["wholekey"] {
		t.Fatalf("radix hit-tokens %d not strictly above whole-key %d", hitTokens["radix"], hitTokens["wholekey"])
	}
	// Determinism: regenerating the table yields byte-identical content.
	if a, b := renderTable(tbl), renderTable(FleetCacheExperiment(sc)); a != b {
		t.Fatalf("cache comparison not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestAutoscaleExperimentWins is the acceptance test of the autoscale
// subsystem: on the bursty closed-loop trace the elastic controller's
// cost-normalized goodput (goodput per provisioned replica) is at least
// that of the best static fleet, scaling events are visible in the output,
// and at least one drain migrated live sessions with every request still
// completing.
func TestAutoscaleExperimentWins(t *testing.T) {
	tables := AutoscaleExperiment(QuickScale())
	if len(tables) != 2 {
		t.Fatalf("expected comparison + timeline tables, got %d", len(tables))
	}
	cmp, timeline := tables[0], tables[1]

	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatalf("unparsable cell %q: %v", s, err)
		}
		return v
	}
	bestStatic, autoScale := 0.0, -1.0
	for _, row := range cmp.Rows {
		if len(row) != len(cmp.Header) {
			t.Fatalf("row %v does not match header %v", row, cmp.Header)
		}
		if row[1] == "ERR" || row[1] == "OOM" {
			t.Fatalf("system %s failed: %v", row[0], row)
		}
		gpr := parse(row[6])
		if row[0] == "autoscale" {
			autoScale = gpr
			if !strings.Contains(row[8], "up") || !strings.Contains(row[8], "down") {
				t.Errorf("autoscale row reports no scaling: %v", row)
			}
		} else if gpr > bestStatic {
			bestStatic = gpr
		}
	}
	if autoScale < 0 {
		t.Fatal("no autoscale row")
	}
	if autoScale < bestStatic {
		t.Errorf("autoscaler goodput/replica %.4f below best static %.4f", autoScale, bestStatic)
	}

	// The timeline must show the full lifecycle, including at least one
	// drain that migrated a replica with live (in-flight) sessions.
	kinds := map[string]int{}
	liveDrain := false
	for _, row := range timeline.Rows {
		kinds[row[1]]++
		if row[1] == "drain" {
			var inflight int
			if _, err := fmt.Sscanf(row[3], "%d in-flight", &inflight); err == nil && inflight > 0 {
				liveDrain = true
			}
		}
	}
	for _, k := range []string{"provision", "active", "drain", "retire"} {
		if kinds[k] == 0 {
			t.Errorf("timeline has no %q events: %v", k, kinds)
		}
	}
	if !liveDrain {
		t.Error("no drain caught a replica with live in-flight sessions")
	}
}

// renderTable gives the byte-exact text a table prints.
func renderTable(tb *Table) string {
	var sb strings.Builder
	tb.Fprint(&sb)
	return sb.String()
}

// TestFleetExperimentParallelDeterminism is the parallel-arms acceptance
// test: the same seeded experiment must produce byte-identical tables
// whether its arms run single-threaded or across goroutines.
func TestFleetExperimentParallelDeterminism(t *testing.T) {
	sc := QuickScale()
	sc.FleetRates = sc.FleetRates[:2] // keep the unit test fast

	serial := sc
	serial.Workers = 1
	parallel := sc
	parallel.Workers = 4

	a := renderTable(FleetExperiment(serial))
	b := renderTable(FleetExperiment(parallel))
	if a != b {
		t.Fatalf("serial and parallel fleet tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestAutoscaleExperimentParallelDeterminism runs the static-ladder +
// controller arms both ways; the closed-loop drivers share the (immutable)
// session scripts, so any hidden mutation would show up here (and under
// -race in CI).
func TestAutoscaleExperimentParallelDeterminism(t *testing.T) {
	sc := QuickScale()

	serial := sc
	serial.Workers = 1
	parallel := sc
	parallel.Workers = 4

	var a, b strings.Builder
	for _, tb := range AutoscaleExperiment(serial) {
		tb.Fprint(&a)
	}
	for _, tb := range AutoscaleExperiment(parallel) {
		tb.Fprint(&b)
	}
	if a.String() != b.String() {
		t.Fatal("serial and parallel autoscale tables differ")
	}
}

func TestControlPlaneTableShape(t *testing.T) {
	tbl := AblationControlPlane()
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %v does not match header %v", row, tbl.Header)
		}
	}
	// The 500K scale-down plan row must stay tiny (RLE claim).
	var got500k string
	for _, row := range tbl.Rows {
		if row[1] == "500000 tokens" {
			got500k = row[2]
		}
	}
	if got500k == "" {
		t.Fatal("missing 500K row")
	}
	var n int
	if _, err := fmt.Sscan(got500k, &n); err != nil || n > 64 {
		t.Errorf("500K-token scale-down plan encodes to %q bytes, want <= 64", got500k)
	}
}
