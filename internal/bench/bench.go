// Package bench is the experiment harness: it wires clusters, engines,
// workloads and metrics into the exact table/figure reproductions of the
// paper's evaluation (§2 Figs 2-3, §7 Figs 10-15), shared by
// cmd/loongserve-bench and the repository-level Go benchmarks.
//
// Figures are rendered as text tables: one row per plotted point, one
// column per series, so the shape of every curve (who wins, by what
// factor, where crossovers fall) can be read directly.
package bench

import (
	"fmt"
	"io"
	"strings"

	"loongserve/internal/cluster"
	"loongserve/internal/core"
	"loongserve/internal/costmodel"
	"loongserve/internal/metrics"
	"loongserve/internal/model"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// System describes one runnable serving configuration.
type System struct {
	Name        string
	Nodes       int
	GPUsPerNode int
	TP          int
	NewEngine   func() serving.Engine
}

// LoongServeSys returns the paper's LoongServe configuration: TP=2 elastic
// instances, ESP up to the cluster size.
func LoongServeSys(nodes int, opts core.Options) System {
	return System{
		Name:  "LoongServe",
		Nodes: nodes, GPUsPerNode: 8, TP: 2,
		NewEngine: func() serving.Engine { return core.New(2, opts) },
	}
}

// VLLMSys returns the vLLM baseline (TP=8 over one node, or one TP=8
// replica per node routed by load).
func VLLMSys(nodes int) System {
	return System{
		Name:  "vLLM",
		Nodes: nodes, GPUsPerNode: 8, TP: 8,
		NewEngine: func() serving.Engine {
			if nodes == 1 {
				return baselinesVLLM()
			}
			return baselinesReplicatedVLLM()
		},
	}
}

// DistServeSys returns the prefill-decoding disaggregation baseline: four
// GPUs per phase, DoP=4 each, as §7.1 configures it.
func DistServeSys() System {
	return System{
		Name:  "DistServe",
		Nodes: 1, GPUsPerNode: 8, TP: 4,
		NewEngine: func() serving.Engine { return baselinesDistServe() },
	}
}

// RunTrace builds the system's cluster and replays the trace.
func RunTrace(sys System, trace []workload.TimedRequest) ([]metrics.Record, error) {
	m := model.LWM1MText()
	hw := cluster.A800()
	c, err := cluster.New(m, hw, sys.Nodes, sys.GPUsPerNode, sys.TP)
	if err != nil {
		return nil, err
	}
	return serving.Run(sys.NewEngine(), c, costmodel.New(m, hw), trace, serving.DefaultRunConfig())
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
