package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"loongserve/internal/fleet"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/workload"
)

// The big-fleet sharding experiment is the tentpole scaling demonstration:
// one day-long session trace through a 64-replica heterogeneous fleet, run
// at every point of a shard ladder, with the serial arm (Shards=1, the
// same barrier algorithm inline) as the reference. Every sharded arm must
// reproduce the serial arm byte-for-byte — same obs event stream, same
// metrics summary, same simulated makespan, same audit verdict — so the
// only thing the ladder is allowed to change is wall-clock time. A quick
// variant additionally runs one fusion-off arm to show decode-iteration
// fusion changes event counts and nothing else.
//
// Wall-clock speedup is hardware-honest: each arm records GOMAXPROCS, and
// on a single-core host the ladder degenerates to overhead measurement —
// which is why BENCH_SIM.json carries gomaxprocs per entry.

// streamDigest is an O(1)-memory obs.Sink: an order-sensitive FNV-1a fold
// over every field of every event. Two runs with equal digests and equal
// counts emitted the same event stream in the same order — the streaming
// stand-in for retaining and byte-comparing millions of events.
type streamDigest struct {
	h uint64
	n uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newStreamDigest() *streamDigest { return &streamDigest{h: fnvOffset} }

func (d *streamDigest) mix(v uint64) { d.h = (d.h ^ v) * fnvPrime }

// Emit implements obs.Sink.
func (d *streamDigest) Emit(e obs.Event) {
	d.n++
	d.mix(uint64(e.At))
	d.mix(uint64(e.Kind))
	d.mix(uint64(int64(e.Replica)))
	d.mix(uint64(int64(e.Group)))
	d.mix(uint64(e.Session))
	d.mix(uint64(e.Request))
	d.mix(uint64(int64(e.Tokens)))
	d.mix(uint64(e.A))
	d.mix(uint64(e.B))
	for i := 0; i < len(e.Label); i++ {
		d.mix(uint64(e.Label[i]))
	}
	d.mix(0x9e3779b97f4a7c15) // event separator
}

// teeSink fans one stream out to two sinks in order.
type teeSink struct{ a, b obs.Sink }

func (t teeSink) Emit(e obs.Event) { t.a.Emit(e); t.b.Emit(e) }

// resultDigest folds everything observable about a finished run except its
// simulator event count (which decode fusion legitimately changes) into
// one hash: makespan, streamed metrics summary, per-replica accounting,
// cold-tier/fault/hedge stats and the derived ratios.
func resultDigest(res *fleet.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%+v|%+v|%+v|%+v|%+v|%v|%v",
		res.End, res.Summary(), res.Replicas, res.Cold, res.Faults, res.Hedge,
		res.TokenHitRatio(), res.Goodput())
	return h.Sum64()
}

// BigFleetWorkload returns the day-long-trace session shape: short chat
// sessions at a high sustained arrival rate, a small long-document tail so
// the heterogeneous fleet's capability routing matters, many prompt groups
// so the radix caches see real churn.
func BigFleetWorkload(sc Scale) workload.SessionConfig {
	cfg := workload.DefaultSessionConfig()
	cfg.Sessions = sc.BigFleetSessions
	cfg.SessionRate = sc.BigFleetRate
	cfg.MinTurns, cfg.MaxTurns = 2, 3
	cfg.ThinkMean = 6
	cfg.PromptGroups = 16
	cfg.UserTokens, cfg.ReplyTokens = 200, 220
	cfg.LongFrac = 0.05
	cfg.LongDocTokens = 30_000
	cfg.LongDocMax = 60_000
	return cfg
}

// BigFleetComposition builds the 64-replica heterogeneous fleet: a block
// of 8-GPU LoongServe replicas for the long-document tail plus a large
// population of single-GPU continuous-batching replicas for chat.
func BigFleetComposition(sc Scale) []fleet.ReplicaGroup {
	loong, err := FleetKind("loong")
	if err != nil {
		panic(err) // unreachable: the name is a constant
	}
	cheap, err := FleetKind("contbatch")
	if err != nil {
		panic(err) // unreachable: the name is a constant
	}
	if err := loong.Resolve(); err != nil {
		panic(err)
	}
	if err := cheap.Resolve(); err != nil {
		panic(err)
	}
	return []fleet.ReplicaGroup{
		{Kind: loong, Count: sc.BigFleetLoong},
		{Kind: cheap, Count: sc.BigFleetSmall},
	}
}

// BigFleetArm is one measured point of the shard ladder.
type BigFleetArm struct {
	Shards     int
	Fused      bool
	Wall       time.Duration
	Allocs     uint64
	Res        *fleet.Result
	Stream     uint64 // obs event stream digest
	ObsEvents  uint64
	ResDigest  uint64
	Violations int
}

// RunBigFleetArm runs the big-fleet trace once at the given shard count,
// auditing and digesting the full observability stream online.
func RunBigFleetArm(sc Scale, groups []fleet.ReplicaGroup, shards int, fused bool) BigFleetArm {
	dig := newStreamDigest()
	aud := analyze.NewAuditor()
	cfg := fleet.Config{
		Groups:        groups,
		SLOKind:       groups[0].Kind,
		Policy:        fleet.NewCapabilityAffinity(),
		Cache:         fleet.CacheRadix,
		StreamMetrics: true,
		Shards:        shards,
		FuseDecode:    fused,
		Obs:           teeSink{dig, aud},
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res, err := fleet.RunSessionStream(workload.StreamSessions(BigFleetWorkload(sc), sc.Seed), cfg)
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		panic(fmt.Sprintf("bigfleet: shards=%d run failed: %v", shards, err))
	}
	return BigFleetArm{
		Shards:     shards,
		Fused:      fused,
		Wall:       wall,
		Allocs:     m1.Mallocs - m0.Mallocs,
		Res:        res,
		Stream:     dig.h,
		ObsEvents:  dig.n,
		ResDigest:  resultDigest(res),
		Violations: len(aud.Finalize()),
	}
}

// requireBigFleetIdentity panics unless arm reproduced the reference
// byte-for-byte on every observable axis; sameEvents additionally pins the
// simulator event count (shard-ladder arms) — fusion arms relax it because
// fusing legitimately removes events without changing observable output.
func requireBigFleetIdentity(ref, arm BigFleetArm, sameEvents bool) {
	if arm.Stream != ref.Stream || arm.ObsEvents != ref.ObsEvents {
		panic(fmt.Sprintf("bigfleet: shards=%d fused=%v obs stream diverged from serial (digest %x/%d vs %x/%d)",
			arm.Shards, arm.Fused, arm.Stream, arm.ObsEvents, ref.Stream, ref.ObsEvents))
	}
	if arm.ResDigest != ref.ResDigest {
		panic(fmt.Sprintf("bigfleet: shards=%d fused=%v result diverged from serial (digest %x vs %x)",
			arm.Shards, arm.Fused, arm.ResDigest, ref.ResDigest))
	}
	if sameEvents && arm.Res.SimEvents != ref.Res.SimEvents {
		panic(fmt.Sprintf("bigfleet: shards=%d fired %d simulator events, serial fired %d",
			arm.Shards, arm.Res.SimEvents, ref.Res.SimEvents))
	}
}

// BigFleetArms runs the configured shard ladder (plus the fusion-off arm
// when the scale asks for it), verifying every arm against the serial
// reference. The ladder's first entry must be 1.
func BigFleetArms(sc Scale) []BigFleetArm {
	groups := BigFleetComposition(sc)
	arms := make([]BigFleetArm, 0, len(sc.BigFleetShards)+1)
	for _, shards := range sc.BigFleetShards {
		arms = append(arms, RunBigFleetArm(sc, groups, shards, sc.BigFleetFuse))
	}
	ref := arms[0]
	if ref.Shards != 1 {
		panic(fmt.Sprintf("bigfleet: shard ladder must start at the serial reference (shards=1), got %d", ref.Shards))
	}
	for _, arm := range arms[1:] {
		requireBigFleetIdentity(ref, arm, true)
	}
	if sc.BigFleetUnfusedArm && sc.BigFleetFuse {
		arm := RunBigFleetArm(sc, groups, 1, false)
		requireBigFleetIdentity(ref, arm, false)
		if arm.Res.SimEvents <= ref.Res.SimEvents {
			panic(fmt.Sprintf("bigfleet: fusion-off arm fired %d simulator events, fused fired %d — fusion saved nothing",
				arm.Res.SimEvents, ref.Res.SimEvents))
		}
		arms = append(arms, arm)
	}
	for _, arm := range arms {
		if arm.Violations != 0 {
			panic(fmt.Sprintf("bigfleet: shards=%d fused=%v stream audit found %d violations", arm.Shards, arm.Fused, arm.Violations))
		}
	}
	return arms
}

// BigFleetExperiment renders the shard ladder. It panics on any identity
// or audit failure (a determinism bug must fail the run, not footnote it),
// and — when the host has at least BigFleetMinSpeedupProcs cores — on a
// sharded arm slower than BigFleetMinSpeedup over serial.
func BigFleetExperiment(sc Scale) *Table {
	arms := BigFleetArms(sc)
	ref := arms[0]
	procs := runtime.GOMAXPROCS(0)

	t := &Table{
		Title: fmt.Sprintf("Big fleet: single-run sharding ladder (%d replicas, %d sessions over %s simulated, %d requests, gomaxprocs=%d)",
			sc.BigFleetLoong+sc.BigFleetSmall, sc.BigFleetSessions, ref.Res.End.Round(time.Minute), ref.Res.Summary().N, procs),
		Header: []string{"shards", "fused", "wall", "speedup", "sim-events", "events/s", "allocs", "obs-events", "audit", "identical"},
	}
	bestSpeedup := 1.0
	for i, arm := range arms {
		speedup := ref.Wall.Seconds() / arm.Wall.Seconds()
		if arm.Shards > 1 && arm.Fused && speedup > bestSpeedup {
			bestSpeedup = speedup
		}
		ident := "ref"
		if i > 0 {
			ident = "yes" // requireBigFleetIdentity already panicked otherwise
		}
		t.AddRow(
			fmt.Sprint(arm.Shards), fmt.Sprint(arm.Fused),
			arm.Wall.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", speedup),
			fmt.Sprint(arm.Res.SimEvents),
			fmt.Sprintf("%.2fM", float64(arm.Res.SimEvents)/arm.Wall.Seconds()/1e6),
			fmt.Sprint(arm.Allocs), fmt.Sprint(arm.ObsEvents),
			"clean", ident)
	}
	if procs >= BigFleetMinSpeedupProcs && bestSpeedup < BigFleetMinSpeedup {
		panic(fmt.Sprintf("bigfleet: best sharded speedup %.2fx < %.1fx with %d cores available", bestSpeedup, BigFleetMinSpeedup, procs))
	}
	t.Notes = append(t.Notes,
		"shards=1 is the serial reference: the identical barrier algorithm run inline; every sharded arm is verified byte-identical to it (obs stream digest, metrics summary, makespan, per-replica stats, audit verdict)",
		"the fusion-off arm (when present) must match every observable output and fire strictly more simulator events",
		fmt.Sprintf("wall-clock speedup is hardware-bound: the >=%.0fx acceptance gate applies only when gomaxprocs >= %d", BigFleetMinSpeedup, BigFleetMinSpeedupProcs))
	return t
}

// The speedup acceptance gate: sharded arms must beat serial by
// BigFleetMinSpeedup when the host actually has BigFleetMinSpeedupProcs
// cores to run them on. On smaller hosts the ladder still proves identity;
// it just cannot prove scaling.
const (
	BigFleetMinSpeedup      = 3.0
	BigFleetMinSpeedupProcs = 4
)
