package bench

import (
	"loongserve/internal/baselines"
	"loongserve/internal/serving"
	"loongserve/internal/workload"
)

// Engine constructors live here so bench.go stays declarative.

func baselinesVLLM() serving.Engine { return baselines.NewVLLM(8) }

func baselinesReplicatedVLLM() serving.Engine { return baselines.NewReplicated(8) }

func baselinesDistServe() serving.Engine { return baselines.NewDistServe(4) }

// DeepSpeedMIISys models DeepSpeed-MII's Dynamic SplitFuse: a fixed chunk
// size on TP=8. The paper could only evaluate it on ShareGPT (it crashed
// beyond 32K-token requests), and MaxLen mirrors that limitation: traces
// containing longer requests report OOM.
func DeepSpeedMIISys() System {
	return System{
		Name:  "DeepSpeed-MII",
		Nodes: 1, GPUsPerNode: 8, TP: 8,
		NewEngine: func() serving.Engine {
			e := baselines.NewSplitFuse(8, 1024)
			e.Label = "DeepSpeed-MII (Dynamic SplitFuse)"
			e.MaxLen = 32_768
			return e
		},
	}
}

// LightLLMSys models LightLLM w/ SplitFuse with the SARATHI ideal
// P:D-ratio chunk computed from the dataset's mean lengths (§7.1), on one
// or more nodes (multi-node deploys one engine per node behind a router,
// as the paper does).
func LightLLMSys(nodes int, ds workload.Dataset) System {
	st := datasetStats(ds)
	return System{
		Name:  "LightLLM-SplitFuse",
		Nodes: nodes, GPUsPerNode: 8, TP: 8,
		NewEngine: func() serving.Engine {
			mk := func(i int) *baselines.SplitFuse {
				e := baselines.NewSplitFuse(8, 0)
				e.SetChunkFromPD(st.MeanInput, st.MeanOutput)
				e.InstanceIndex = i
				return e
			}
			if nodes == 1 {
				e := mk(-1)
				return e
			}
			subs := make([]serving.Engine, nodes)
			for i := range subs {
				subs[i] = mk(i)
			}
			return baselines.NewRouter("LightLLM-SplitFuse x2", subs)
		},
	}
}

// StaticHybridSys is the "LoongServe w/o ESP (TP=2, SP=4)" ablation.
func StaticHybridSys() System {
	return System{
		Name:  "w/o ESP (TP=2,SP=4)",
		Nodes: 1, GPUsPerNode: 8, TP: 2,
		NewEngine: func() serving.Engine { return baselines.NewStaticHybrid(4, 2) },
	}
}

// ReplicatedSys is the "LoongServe w/o ESP (TP=2) x 4" ablation.
func ReplicatedSys() System {
	return System{
		Name:  "w/o ESP (TP=2)x4",
		Nodes: 1, GPUsPerNode: 8, TP: 2,
		NewEngine: func() serving.Engine { return baselines.NewReplicated(2) },
	}
}

// TP8Sys is the "LoongServe w/o ESP (TP=8)" ablation: identical policy to
// vLLM under a different label.
func TP8Sys() System {
	s := VLLMSys(1)
	s.Name = "w/o ESP (TP=8)"
	return s
}

// datasetStats samples a dataset to estimate its mean lengths (for
// P:D-ratio chunk selection), deterministically.
func datasetStats(ds workload.Dataset) workload.Stats {
	trace := workload.PoissonTrace(ds, 1, 2000, 99)
	entries := make([]workload.Entry, len(trace))
	for i, tr := range trace {
		entries[i] = tr.Entry
	}
	return workload.Summarize(entries)
}
