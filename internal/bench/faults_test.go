package bench

import (
	"strconv"
	"testing"
)

// chaosCell indices into FleetChaosExperiment rows.
const (
	chaosColRate    = 0
	chaosColHedge   = 1
	chaosColP99     = 4
	chaosColCrashes = 6
	chaosColLost    = 11
	chaosColAudit   = 12
)

// TestFleetChaosExperimentZeroLostCleanAudit is the chaos scorecard's
// acceptance: at every failure rate — including nonzero crash rates — no
// request is lost, the full event stream audits clean, crashes actually
// fired, and within the faulty pair hedging improves the p99 TTFT tail.
func TestFleetChaosExperimentZeroLostCleanAudit(t *testing.T) {
	sc := QuickScale()
	tb := FleetChaosExperiment(sc)
	if len(tb.Rows) != len(sc.ChaosCrashRates)*2 {
		t.Fatalf("%d rows, want %d (rate ladder x hedge on/off)", len(tb.Rows), len(sc.ChaosCrashRates)*2)
	}
	p99 := make(map[string]float64) // "rate/hedge" -> p99 TTFT
	for _, row := range tb.Rows {
		if row[chaosColLost] != "0" {
			t.Fatalf("row %v lost requests", row)
		}
		if row[chaosColAudit] != "clean" {
			t.Fatalf("row %v failed the stream audit", row)
		}
		if row[chaosColRate] != "0" && row[chaosColCrashes] == "0" {
			t.Fatalf("row %v scheduled crashes but none fired", row)
		}
		v, err := strconv.ParseFloat(row[chaosColP99], 64)
		if err != nil {
			t.Fatalf("row %v: bad p99 cell: %v", row, err)
		}
		p99[row[chaosColRate]+"/"+row[chaosColHedge]] = v
	}
	// The faultiest ladder point: hedging must beat the unhedged tail.
	top := tb.Rows[len(tb.Rows)-1][chaosColRate]
	if top == "0" {
		t.Fatal("ladder has no nonzero failure rate")
	}
	if hedged, plain := p99[top+"/on"], p99[top+"/off"]; hedged >= plain {
		t.Fatalf("hedging did not improve p99 TTFT at %s crashes/min: %.3fs hedged vs %.3fs unhedged", top, hedged, plain)
	}
}

// TestFleetChaosParallelDeterminism: the chaos arms — crashes, recovery
// re-routing, hedge launches and all — replay byte-identically whether run
// single-threaded or across goroutines.
func TestFleetChaosParallelDeterminism(t *testing.T) {
	sc := QuickScale()

	serial := sc
	serial.Workers = 1
	parallel := sc
	parallel.Workers = 4

	a := renderTable(FleetChaosExperiment(serial))
	b := renderTable(FleetChaosExperiment(parallel))
	if a != b {
		t.Fatalf("serial and parallel chaos tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
