package bench

import (
	"bytes"
	"testing"

	"loongserve/internal/fleet"
)

// TestFleetAttributionExperimentShape: one row per policy, every arm
// healthy, and every arm's stream passing the invariant audit — the
// acceptance gate that existing experiments produce auditor-clean streams.
func TestFleetAttributionExperimentShape(t *testing.T) {
	sc := QuickScale()
	sc.Workers = 1
	tab := FleetAttributionExperiment(sc)
	want := len(fleet.AllPolicies(sc.Seed))
	if len(tab.Rows) != want {
		t.Fatalf("%d rows, want %d (one per policy)", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(tab.Header))
		}
		if row[1] == "ERR" {
			t.Fatalf("arm %s failed", row[0])
		}
		if audit := row[len(row)-1]; audit != "pass" {
			t.Fatalf("policy %s stream failed the audit: %s", row[0], audit)
		}
	}
}

// TestFleetAttributionExperimentParallelDeterminism mirrors the other
// experiments' serial-vs-parallel byte-identity property.
func TestFleetAttributionExperimentParallelDeterminism(t *testing.T) {
	serial := QuickScale()
	serial.Workers = 1
	par := QuickScale()
	par.Workers = 4

	var a, b bytes.Buffer
	FleetAttributionExperiment(serial).Fprint(&a)
	FleetAttributionExperiment(par).Fprint(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("attribution table differs between serial and parallel arms\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
}
