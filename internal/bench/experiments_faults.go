package bench

import (
	"fmt"
	"time"

	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/obs/analyze"
	"loongserve/internal/workload"
)

// ChaosSessionScripts builds the closed-loop session workload of the chaos
// experiment: the completion check of closed-loop replay is itself the
// zero-lost-requests proof each table row reports.
func ChaosSessionScripts(sc Scale) []workload.SessionScript {
	cfg := workload.DefaultSessionConfig()
	cfg.SessionRate = sc.ChaosRate
	cfg.Sessions = int(sc.ChaosRate * sc.ChaosDuration)
	if minSessions := sc.MinN / cfg.MinTurns; cfg.Sessions < minSessions {
		cfg.Sessions = minSessions
	}
	return workload.SessionScripts(cfg, sc.Seed)
}

// ChaosFaultRates derives the full fault mix from one crash-rate ladder
// point: stalls (the straggler pathology hedging defends against) come
// three times as often as crashes, control-cache drops as often. Zero is
// the clean baseline row.
func ChaosFaultRates(crashPerMin float64) workload.FaultRates {
	return workload.FaultRates{
		CrashPerMin:     crashPerMin,
		StallPerMin:     3 * crashPerMin,
		CacheDropPerMin: crashPerMin,
		StallMean:       2500 * time.Millisecond,
	}
}

// p99TTFT returns the 99th-percentile client-observed time to first
// token, seconds — the tail the hedging column is judged on.
func p99TTFT(recs []metrics.Record) float64 {
	var d metrics.Dist
	for _, r := range recs {
		d.Add(r.InputLatency().Seconds())
	}
	return d.Quantile(0.99)
}

// FleetChaosExperiment is the fault-tolerance scorecard: the same
// closed-loop session workload replayed across a ladder of failure rates
// (replica crashes, intake stalls, control-metadata drops — one seeded
// schedule per ladder point, shared by both hedge arms), with request
// hedging off and on. Every row re-audits its full event stream through
// the invariant checker, so "lost" and "audit" are measured, not assumed:
// crashes destroy KV and in-flight work, yet no request may be lost, no
// token double-counted, and no event may escape a dead replica. The
// hedging pair of each nonzero-fault row shows the tail trade: hedges burn
// duplicate prefill tokens (the wasted column) to pull p99 TTFT back
// toward the clean baseline.
func FleetChaosExperiment(sc Scale) *Table {
	t := &Table{
		Title: fmt.Sprintf("Fleet: fault tolerance under crash/stall/cache-drop chaos (%d replicas, closed-loop sessions, %.0fs)",
			sc.FleetReplicas, sc.ChaosDuration),
		Header: []string{"crash/min", "hedge", "goodput(req/s)", "TTFT(s)", "p99TTFT(s)", "SLO",
			"crashes", "recovered", "hedged", "wins", "wasted(tok)", "lost", "audit"},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	scripts := ChaosSessionScripts(sc)
	horizon := time.Duration(sc.ChaosDuration * float64(time.Second))
	hedges := []bool{false, true}
	rows := make([][]string, len(sc.ChaosCrashRates)*len(hedges))
	runArms(len(rows), sc.workers(), func(arm int) {
		crashRate := sc.ChaosCrashRates[arm/len(hedges)]
		hedged := hedges[arm%len(hedges)]
		// One schedule per ladder point: both hedge arms absorb the
		// identical fault sequence.
		faults := workload.GenFaults(sc.Seed+int64(arm/len(hedges)), ChaosFaultRates(crashRate), horizon)
		col := &obs.Collector{}
		cfg := fleet.Config{
			Groups: []fleet.ReplicaGroup{{Kind: fleet.NewKind("vllm", spec), Count: sc.FleetReplicas}},
			Policy: fleet.NewPrefixAffinity(),
			Obs:    col,
		}
		if hedged {
			cfg.Hedge = fleet.HedgeConfig{Quantile: 0.95}
		}
		hcell := "off"
		if hedged {
			hcell = "on"
		}
		res, err := fleet.RunSessionsFaults(scripts, cfg, true, faults)
		if err != nil {
			// runSessions' completion check failed (or the run OOMed):
			// requests were lost — the one verdict this table exists to
			// rule out.
			rows[arm] = []string{fmt.Sprint(crashRate), hcell, "ERR", "-", "-", "-", "-", "-", "-", "-", "-", "LOST", err.Error()}
			return
		}
		audit := "clean"
		if vs := analyze.Audit(col.Events); len(vs) != 0 {
			audit = fmt.Sprintf("%d violations: %s", len(vs), vs[0])
		}
		s := metrics.Summarize(res.Records)
		rows[arm] = []string{fmt.Sprint(crashRate), hcell,
			f3(metrics.Goodput(res.Records)), f3(MeanTTFT(res.Records)), f3(p99TTFT(res.Records)), pct(s.SLOAttainment),
			fmt.Sprint(res.Faults.Crashes), fmt.Sprint(res.Faults.RecoveredRequests),
			fmt.Sprint(res.Hedge.Launched), fmt.Sprint(res.Hedge.Wins), fmt.Sprint(res.Hedge.WastedTokens),
			"0", audit}
	})
	t.Rows = rows
	t.Notes = append(t.Notes,
		"each ladder point injects one seeded schedule of crashes (replica + its KV destroyed mid-decode), stalls (3x rate, intake frozen) and control-cache drops, identical for both hedge arms",
		"lost=0 is the closed-loop completion check: every crashed replica's in-flight requests were recovered onto survivors, re-prefilling only what no surviving cache held",
		"audit=clean replays the run's full event stream through the invariant checker (conservation, no event after crash, exactly one hedge winner)",
		"hedging trades wasted duplicate tokens for tail latency: compare p99TTFT within a nonzero-fault pair")
	return t
}
