package bench

import (
	"fmt"
	"time"

	"loongserve/internal/autoscale"
	"loongserve/internal/fleet"
	"loongserve/internal/metrics"
	"loongserve/internal/workload"
)

// AutoscaleWorkload returns the bursty closed-loop session workload the
// autoscale experiment runs: chat sessions whose arrival rate swings
// between 4x and 1/4x of the base rate every half burst period, with each
// turn gated on the previous turn's completion (closed loop), so every
// system sees exactly the backpressure its own latency creates.
func AutoscaleWorkload(sc Scale) workload.SessionConfig {
	cfg := workload.DefaultSessionConfig()
	cfg.ClosedLoop = true
	cfg.SessionRate = 4.5
	cfg.BurstFactor = 6
	cfg.BurstPeriod = sc.AutoscaleDuration / 3 // three burst cycles per run
	cfg.BurstDuty = 0.3                        // spiky: short peaks, long valleys
	// Sessions must be short next to the burst period, or each burst's
	// conversations outlive the following lull and fill in the trough the
	// controller needs to see to scale down.
	cfg.MinTurns, cfg.MaxTurns = 2, 5
	cfg.ThinkMean = 2
	// Heavier turns than the chat default: long pasted-context questions
	// and detailed answers. Prefix caching discounts the history, so the
	// per-turn suffix and the reply length are what size each request's
	// work — and what make fleet capacity a real constraint.
	cfg.UserTokens, cfg.ReplyTokens = 400, 300
	// The on/off burst changes the mean arrival rate; size the session
	// count by it so the arrivals actually span the configured horizon
	// (and its three burst cycles).
	mean := cfg.SessionRate * (cfg.BurstFactor*cfg.BurstDuty + (1-cfg.BurstDuty)/cfg.BurstFactor)
	cfg.Sessions = int(mean * sc.AutoscaleDuration)
	return cfg
}

// autoscaleController returns the control-loop settings the experiment
// uses: the default pressure thresholds with the scale's fleet ceiling and
// warm-up delay. The floor is deployment tuning: with a long warm-up the
// whole leading edge of a burst lands on the shrunken fleet, so the floor
// must hold enough capacity to absorb it while reinforcements load —
// half the ceiling when warm-up runs long, a single replica otherwise.
func autoscaleController(sc Scale) autoscale.Config {
	cfg := autoscale.DefaultConfig()
	cfg.Min = 1
	if sc.AutoscaleWarmup >= 10 {
		cfg.Min = sc.AutoscaleMax / 2
	}
	cfg.Max = sc.AutoscaleMax
	cfg.Warmup = time.Duration(sc.AutoscaleWarmup * float64(time.Second))
	return cfg
}

// autoscaleRow formats one system's comparison row.
func autoscaleRow(t *Table, system string, res *fleet.Result, extra string) {
	s := metrics.Summarize(res.Records)
	t.AddRow(system,
		f3(metrics.Goodput(res.Records)),
		f3(MeanTTFT(res.Records)),
		pct(s.SLOAttainment),
		f3(res.MeanReplicas()),
		f3(res.ReplicaSeconds),
		f4(res.GoodputPerReplica()),
		fmt.Sprint(res.Migrations.Count),
		extra)
}

// AutoscaleExperiment compares static fleets of every size against the
// elastic autoscaler on one bursty closed-loop session trace. The figure
// of merit is cost-normalized goodput — SLO-met requests per second per
// provisioned replica: small static fleets drown in the bursts (goodput
// collapses), large ones burn replica-seconds through every lull, and the
// controller tracks the burst cycle, paying warm-up on the way up and
// drain migrations (live session KV moved over the inter-node link, no
// requests dropped) on the way down.
func AutoscaleExperiment(sc Scale) []*Table {
	wcfg := AutoscaleWorkload(sc)
	acfg := autoscaleController(sc)
	scripts := workload.SessionScripts(wcfg, sc.Seed)

	t := &Table{
		Title: fmt.Sprintf("Autoscale: static fleets vs elastic controller (bursty %vx sessions, closed loop, %d requests)",
			wcfg.BurstFactor, workload.NumRequests(scripts)),
		Header: []string{"system", "goodput(req/s)", "TTFT(s)", "SLO", "replicas(mean)", "replica-sec", "goodput/replica", "migrations", "scaling"},
	}
	spec, err := FleetSpec("vllm")
	if err != nil {
		panic(err) // unreachable: the engine name is a constant
	}
	policy := func() fleet.Policy { return fleet.NewMigratingAffinity() }
	// Bursts are a latency phenomenon: the paper's 25x budget absorbs any
	// queue a closed-loop workload can build, so the experiment runs under
	// an interactive 5x budget, where burst queueing actually costs SLOs.
	const sloScale = 5

	// The static-fleet ladder and the autoscaled run are independent arms:
	// scripts are immutable (each driver keeps its own cursor state), every
	// arm builds its own gateway and replicas. Arm i < AutoscaleMax is
	// static-(i+1); the last arm is the controller.
	staticRes := make([]*fleet.Result, sc.AutoscaleMax)
	staticErr := make([]error, sc.AutoscaleMax)
	var ares *autoscale.Result
	var aerr error
	runArms(sc.AutoscaleMax+1, sc.workers(), func(arm int) {
		if arm < sc.AutoscaleMax {
			n := arm + 1
			staticRes[arm], staticErr[arm] = fleet.RunSessions(spec, scripts,
				fleet.Config{Replicas: n, Policy: policy(), SLOScale: sloScale}, true)
			return
		}
		ares, aerr = autoscale.Run(spec, scripts, fleet.Config{Policy: policy(), SLOScale: sloScale}, acfg, true)
	})

	for n := 1; n <= sc.AutoscaleMax; n++ {
		res, err := staticRes[n-1], staticErr[n-1]
		if err != nil {
			t.AddRow(fmt.Sprintf("static-%d", n), "ERR", "-", "-", "-", "-", "-", "-", err.Error())
			continue
		}
		autoscaleRow(t, fmt.Sprintf("static-%d", n), res, "-")
	}

	var events *Table
	if err := aerr; err != nil {
		t.AddRow("autoscale", "ERR", "-", "-", "-", "-", "-", "-", err.Error())
	} else {
		autoscaleRow(t, "autoscale", ares.Result,
			fmt.Sprintf("%d up / %d down, peak %d", ares.ScaleUps, ares.ScaleDowns, ares.PeakReplicas))
		events = &Table{
			Title:  "Autoscale: scaling timeline (provision / active / drain / migrate / retire)",
			Header: []string{"t", "event", "replica", "detail"},
		}
		// Lifecycle and drain-time migrations are the story; routed
		// rebalancing migrations are frequent and summarized instead.
		routed := 0
		for _, ev := range ares.Events {
			if ev.RoutedMigration() {
				routed++
				continue
			}
			events.AddRow(fmt.Sprint(ev.At.Round(time.Millisecond)), ev.Kind, fmt.Sprint(ev.Replica), ev.Detail)
		}
		if routed > 0 {
			events.Notes = append(events.Notes,
				fmt.Sprintf("%d policy-routed rebalancing migrations elided (%d KV transfers total, %v link time)",
					routed, ares.Migrations.Count, ares.Migrations.Time.Round(time.Millisecond)))
		}
	}
	t.Notes = append(t.Notes,
		"goodput/replica = SLO-met requests per second per provisioned replica (replica-seconds include warm-up and drain time)",
		"expected shape: the autoscaler matches the big static fleet's SLO attainment at a fraction of its replica-seconds, beating every static size on goodput/replica",
		fmt.Sprintf("controller: scale up above %.0f outstanding reqs/replica, consolidate when survivors stay under %.0f, warm-up %v, cooldown %v",
			acfg.UpAt, acfg.DownAt, acfg.Warmup, acfg.Cooldown))

	out := []*Table{t}
	if events != nil {
		out = append(out, events)
	}
	return out
}
