package serving

import (
	"testing"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/model"
	"loongserve/internal/workload"
)

// fifoEngine is a trivial single-slot engine used to exercise the driver:
// it serves requests one at a time, charging one prefill iteration plus one
// decode iteration per output token.
type fifoEngine struct {
	env   *Env
	queue []*Request
	busy  bool
}

func (f *fifoEngine) Name() string { return "fifo-test" }
func (f *fifoEngine) Init(env *Env) error {
	f.env = env
	return nil
}
func (f *fifoEngine) Arrive(r *Request) {
	f.queue = append(f.queue, r)
	f.pump()
}
func (f *fifoEngine) pump() {
	if f.busy || len(f.queue) == 0 {
		return
	}
	r := f.queue[0]
	f.queue = f.queue[1:]
	f.busy = true
	link := cluster.Link{Bandwidth: 1e12}
	d := f.env.CM.PrefillIterTime([]int{r.InputLen}, 1, 8, link)
	f.env.Sim.After(d, func() {
		r.FirstToken = f.env.Sim.Now()
		r.Generated = 1
		r.Phase = Decoding
		step := f.env.CM.DecodeIterTime(1, r.KVNow(), 1, 8, 1, link)
		f.env.Sim.After(time.Duration(r.OutputLen-1)*step, func() {
			r.Generated = r.OutputLen
			r.Phase = Finished
			r.Finish = f.env.Sim.Now()
			f.env.Complete(r)
			f.busy = false
			f.pump()
		})
	})
}

func testSetup(t *testing.T) (*cluster.Cluster, *costmodel.CostModel) {
	t.Helper()
	m := model.LWM1MText()
	hw := cluster.A800()
	c, err := cluster.New(m, hw, 1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c, costmodel.New(m, hw)
}

func TestRunCompletesAllRequests(t *testing.T) {
	c, cm := testSetup(t)
	trace := workload.PoissonTrace(workload.ShareGPT(), 1.0, 20, 1)
	recs, err := Run(&fifoEngine{}, c, cm, trace, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("completed %d of 20", len(recs))
	}
	for _, r := range recs {
		if r.Finish <= r.Arrival {
			t.Fatalf("request %d finished before arriving", r.ID)
		}
		if r.FirstToken < r.Arrival || r.Finish < r.FirstToken {
			t.Fatalf("request %d: broken timeline %v %v %v", r.ID, r.Arrival, r.FirstToken, r.Finish)
		}
		if r.SLOBudget <= 0 {
			t.Fatalf("request %d: SLO budget not set", r.ID)
		}
	}
}

func TestRunAssignsSequentialIDsAndArrivals(t *testing.T) {
	c, cm := testSetup(t)
	trace := workload.PoissonTrace(workload.ShareGPT(), 2.0, 5, 2)
	recs, err := Run(&fifoEngine{}, c, cm, trace, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range recs {
		seen[r.ID] = true
	}
	for i := int64(1); i <= 5; i++ {
		if !seen[i] {
			t.Fatalf("missing request id %d", i)
		}
	}
}

func TestRunOOMPropagates(t *testing.T) {
	c, cm := testSetup(t)
	oom := &oomEngine{}
	trace := workload.PoissonTrace(workload.ShareGPT(), 1.0, 3, 3)
	recs, err := Run(oom, c, cm, trace, DefaultRunConfig())
	if err == nil {
		t.Fatal("OOM did not propagate")
	}
	if _, ok := err.(*ErrOOM); !ok {
		t.Fatalf("error type %T", err)
	}
	if recs != nil {
		t.Fatal("records returned despite OOM")
	}
}

type oomEngine struct{ env *Env }

func (o *oomEngine) Name() string { return "oom-test" }
func (o *oomEngine) Init(env *Env) error {
	o.env = env
	return nil
}
func (o *oomEngine) Arrive(r *Request) {
	panic(&ErrOOM{System: o.Name(), Req: r.ID, Tokens: r.Tokens(), Limit: 1})
}

func TestRunNonOOMPanicsPropagate(t *testing.T) {
	c, cm := testSetup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unexpected panic was swallowed")
		}
	}()
	_, _ = Run(&panicEngine{}, c, cm, workload.PoissonTrace(workload.ShareGPT(), 1.0, 1, 4), DefaultRunConfig())
}

type panicEngine struct{}

func (p *panicEngine) Name() string        { return "panic-test" }
func (p *panicEngine) Init(env *Env) error { return nil }
func (p *panicEngine) Arrive(r *Request)   { panic("boom") }

func TestIdealLatencyScalesWithLengths(t *testing.T) {
	_, cm := testSetup(t)
	short := IdealLatency(cm, 8, 100, 10)
	long := IdealLatency(cm, 8, 100_000, 10)
	if long <= short {
		t.Fatal("ideal latency not increasing in input length")
	}
	fewTok := IdealLatency(cm, 8, 1000, 2)
	manyTok := IdealLatency(cm, 8, 1000, 500)
	if manyTok <= fewTok {
		t.Fatal("ideal latency not increasing in output length")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		Pending: "pending", Prefilling: "prefilling", Decoding: "decoding", Finished: "finished",
	} {
		if p.String() != want {
			t.Fatalf("Phase(%d).String() = %q", int(p), p.String())
		}
	}
	if Phase(42).String() == "" {
		t.Fatal("unknown phase has empty string")
	}
}

func TestRequestAccessors(t *testing.T) {
	r := &Request{InputLen: 100, OutputLen: 10, Generated: 3}
	if r.Tokens() != 110 || r.KVNow() != 103 {
		t.Fatalf("Tokens=%d KVNow=%d", r.Tokens(), r.KVNow())
	}
	r.Phase = Finished
	rec := r.Record()
	if rec.InputLen != 100 || rec.OutputLen != 10 {
		t.Fatalf("record %+v", rec)
	}
}

func TestCompleteWrongPhasePanics(t *testing.T) {
	c, cm := testSetup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Complete in wrong phase accepted")
		}
	}()
	_, _ = Run(&badCompleteEngine{}, c, cm, workload.PoissonTrace(workload.ShareGPT(), 1.0, 1, 5), DefaultRunConfig())
}

type badCompleteEngine struct{ env *Env }

func (b *badCompleteEngine) Name() string { return "bad-complete" }
func (b *badCompleteEngine) Init(env *Env) error {
	b.env = env
	return nil
}
func (b *badCompleteEngine) Arrive(r *Request) {
	b.env.Complete(r) // still Pending: must panic
}
