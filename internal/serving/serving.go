// Package serving defines the pieces shared by every serving engine in the
// simulator: the request lifecycle, the engine interface, and the driver
// that replays a workload trace against an engine on the discrete-event
// kernel.
//
// All engines — LoongServe (internal/core) and the baselines
// (internal/baselines) — advance simulated time exclusively through
// iteration durations computed by the ground-truth cost model, and account
// KV memory through kvcache.DistributedPool. They differ only in policy,
// which is exactly the comparison the paper's §7 makes.
package serving

import (
	"fmt"
	"time"

	"loongserve/internal/cluster"
	"loongserve/internal/costmodel"
	"loongserve/internal/kvcache"
	"loongserve/internal/metrics"
	"loongserve/internal/obs"
	"loongserve/internal/simevent"
	"loongserve/internal/workload"
)

// Phase is a request's lifecycle phase.
type Phase int

// Request phases, in lifecycle order.
const (
	Pending Phase = iota
	Prefilling
	Decoding
	Finished
)

func (p Phase) String() string {
	switch p {
	case Pending:
		return "pending"
	case Prefilling:
		return "prefilling"
	case Decoding:
		return "decoding"
	case Finished:
		return "finished"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Request is one serving request flowing through an engine.
type Request struct {
	ID        kvcache.RequestID
	InputLen  int
	OutputLen int
	Arrival   simevent.Time
	SLOBudget time.Duration

	Phase      Phase
	Generated  int // output tokens produced so far
	FirstToken simevent.Time
	Finish     simevent.Time
}

// Tokens returns the total sequence length at completion.
func (r *Request) Tokens() int { return r.InputLen + r.OutputLen }

// KVNow returns the KV tokens the request occupies right now.
func (r *Request) KVNow() int { return r.InputLen + r.Generated }

// Record converts a finished request into a metrics record.
func (r *Request) Record() metrics.Record {
	return metrics.Record{
		ID:         int64(r.ID),
		InputLen:   r.InputLen,
		OutputLen:  r.OutputLen,
		Arrival:    time.Duration(r.Arrival),
		FirstToken: time.Duration(r.FirstToken),
		Finish:     time.Duration(r.Finish),
		SLOBudget:  r.SLOBudget,
	}
}

// Env is the simulation environment handed to an engine.
type Env struct {
	Sim     *simevent.Sim
	Cluster *cluster.Cluster
	CM      *costmodel.CostModel
	Pool    *kvcache.DistributedPool
	// Complete must be called exactly once per finished request.
	Complete func(*Request)
}

// Engine is a serving system policy.
type Engine interface {
	Name() string
	// Init binds the engine to a fresh environment before any arrival.
	Init(env *Env) error
	// Arrive delivers a request at its arrival time.
	Arrive(r *Request)
}

// LoadStats is a point-in-time snapshot of an engine's load, the
// introspection surface fleet routing policies key off. Counts are in
// requests; KVTokens is the resident KV footprint of admitted requests.
type LoadStats struct {
	Queued   int // arrived, not yet admitted into any batch
	Running  int // admitted (prefilling or decoding)
	KVTokens int // KV tokens held by admitted requests
}

// Outstanding returns the total in-flight request count.
func (s LoadStats) Outstanding() int { return s.Queued + s.Running }

// LoadReporter is implemented by engines that expose their internal queue
// state. Engines that do not implement it are still routable — the fleet
// gateway falls back to its own arrival/completion accounting — but
// policies see admission-queue depth only through this interface.
type LoadReporter interface {
	Load() LoadStats
}

// Capability is an engine's static serving envelope — what it *could*
// serve, as opposed to LoadStats' what it is serving right now. It is the
// per-replica half of heterogeneous-fleet routing: policies compare an
// arriving request against each replica's envelope before weighing load.
type Capability struct {
	// MaxSeqTokens is the largest single sequence (input + output KV) the
	// engine can ever hold under its placement discipline; a longer request
	// is structurally unservable (ErrOOM). Engines that shard one
	// sequence's KV across instances (elastic sequence parallelism) report
	// their whole pool; single-instance-locality engines report one
	// instance's capacity.
	MaxSeqTokens int
}

// CapabilityReporter is implemented by engines that can describe their
// serving envelope. Valid only after Init (the envelope depends on the
// bound cluster). Engines without it get a conservative default from the
// fleet layer: the largest single KV pool instance, i.e. no cross-instance
// sequence sharding.
type CapabilityReporter interface {
	Capability() Capability
}

// Traceable is implemented by engines that can mirror their internal
// elastic-scheduling events into an observability sink with replica
// attribution. The fleet gateway attaches its configured sink to every
// replica engine that implements it, so engine-level events (prefill
// scale-down, decode scale-up, preemption, ...) land in the same stream as
// the gateway's routing and migration events. Attach before Init; a nil
// sink detaches.
type Traceable interface {
	AttachObsSink(sink obs.Sink, replica int)
}

// DecodeFuser is implemented by engines that can collapse provably
// identical consecutive decode iterations into one simulator event
// (decode-iteration fusion). Fusion must be observationally exact: request
// records, load reports and emitted trace events are identical with it on
// or off — only the simulator event count drops. The fleet layer enables
// it on every capable replica when Config.FuseDecode is set.
type DecodeFuser interface {
	SetDecodeFusion(on bool)
}

// ErrOOM is returned by Run when the engine declares the workload
// unservable (a request can never fit), reproducing the paper's DistServe
// OOM rows in Fig 10.
type ErrOOM struct {
	System string
	Req    kvcache.RequestID
	Tokens int
	Limit  int
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("%s: request %d needs %d KV tokens, pool limit %d: out of memory",
		e.System, e.Req, e.Tokens, e.Limit)
}

// RunConfig controls a driver run.
type RunConfig struct {
	SLOScale float64 // latency budget = SLOScale x unloaded latency; 25 in the paper
	// MaxEvents bounds the simulation as a divergence backstop (0 = default).
	MaxEvents uint64
}

// DefaultRunConfig returns the paper's settings.
func DefaultRunConfig() RunConfig { return RunConfig{SLOScale: 25} }

// IdealLatency returns the unloaded end-to-end latency of a request on the
// reference configuration (all GPUs, pure tensor parallelism): the SLO
// denominator. The decode term uses the request's mean resident KV length.
func IdealLatency(cm *costmodel.CostModel, gpus int, in, out int) time.Duration {
	link := cluster.Link{Bandwidth: cm.HW.NVLinkBandwidth, Latency: cm.HW.NVLinkLatency}
	d := cm.PrefillIterTime([]int{in}, 1, gpus, link)
	if out > 1 {
		meanKV := in + out/2
		d += time.Duration(out-1) * cm.DecodeIterTime(1, meanKV, 1, gpus, 1, link)
	}
	return d
}

// SLOBudget returns a request's latency budget: scale times its unloaded
// latency on the reference configuration. Shared by Run and the fleet
// gateway so budgets agree across deployment shapes.
func SLOBudget(cm *costmodel.CostModel, gpus, in, out int, scale float64) time.Duration {
	return time.Duration(scale * float64(IdealLatency(cm, gpus, in, out)))
}

// RunStats reports simulator-level statistics of one Run — the events/sec
// currency the perf trajectory (BENCH_SIM.json) tracks.
type RunStats struct {
	Events uint64 // discrete events fired by the simulation
}

// Run replays a trace against an engine and returns one metrics record per
// completed request. Engines signal unservable workloads by panicking with
// *ErrOOM, which Run converts to an error (the discrete-event kernel has no
// error channel through event callbacks, and an OOM aborts the whole run,
// matching the paper's missing DistServe curves).
func Run(eng Engine, c *cluster.Cluster, cm *costmodel.CostModel, trace []workload.TimedRequest, cfg RunConfig) ([]metrics.Record, error) {
	recs, _, err := RunWithStats(eng, c, cm, trace, cfg)
	return recs, err
}

// RunWithStats is Run, additionally reporting simulator statistics.
func RunWithStats(eng Engine, c *cluster.Cluster, cm *costmodel.CostModel, trace []workload.TimedRequest, cfg RunConfig) (recs []metrics.Record, stats RunStats, err error) {
	sim := simevent.New()
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200_000_000
	}
	sim.MaxEvents = cfg.MaxEvents

	totalGPUs := 0
	for _, inst := range c.Instances {
		totalGPUs += inst.TP
	}

	env := &Env{
		Sim:     sim,
		Cluster: c,
		CM:      cm,
		Pool:    c.NewPool(),
	}
	env.Complete = func(r *Request) {
		if r.Phase != Finished {
			panic(fmt.Sprintf("serving: Complete(%d) in phase %v", r.ID, r.Phase))
		}
		recs = append(recs, r.Record())
	}
	if err := eng.Init(env); err != nil {
		return nil, RunStats{}, err
	}

	for i, tr := range trace {
		r := &Request{
			ID:        kvcache.RequestID(i + 1),
			InputLen:  tr.InputLen,
			OutputLen: tr.OutputLen,
			Arrival:   simevent.Time(tr.Arrival),
		}
		if cfg.SLOScale > 0 {
			r.SLOBudget = SLOBudget(cm, totalGPUs, r.InputLen, r.OutputLen, cfg.SLOScale)
		}
		// Arrivals ride the staged timeline: the whole trace stays out of
		// the heap, so engine-event scheduling costs O(log active).
		sim.Stage(r.Arrival, func() { eng.Arrive(r) })
	}

	defer func() {
		stats.Events = sim.Fired()
		if p := recover(); p != nil {
			if oom, ok := p.(*ErrOOM); ok {
				err = oom
				recs = nil
				return
			}
			panic(p)
		}
	}()
	sim.Run()
	return recs, stats, nil
}
