package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleN(ds Dataset, n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		out[i] = ds.Sample(rng)
	}
	return out
}

// §7.1 dataset ranges: ShareGPT 4-2.3K, L-Eval 2.7K-210.5K, LV-Eval
// 15.1K-497.3K.
func TestDatasetRanges(t *testing.T) {
	cases := []struct {
		ds     Dataset
		lo, hi int
	}{
		{ShareGPT(), 4, 2_300},
		{LEval(), 2_700, 210_500},
		{LVEval(), 15_100, 497_300},
	}
	for _, tc := range cases {
		entries := sampleN(tc.ds, 3000, 1)
		st := Summarize(entries)
		if st.MinInput < tc.lo || st.MaxInput > tc.hi {
			t.Fatalf("%s: input range [%d, %d] outside [%d, %d]",
				tc.ds.Name(), st.MinInput, st.MaxInput, tc.lo, tc.hi)
		}
		// The tails should actually reach near both ends.
		if float64(st.MaxInput) < 0.5*float64(tc.hi) {
			t.Fatalf("%s: max input %d never approaches range cap %d", tc.ds.Name(), st.MaxInput, tc.hi)
		}
		for _, e := range entries {
			if e.OutputLen <= 0 {
				t.Fatalf("%s: non-positive output length", tc.ds.Name())
			}
		}
	}
}

func TestDatasetMeansOrdered(t *testing.T) {
	// Mean input length must be strongly ordered ShareGPT << L-Eval <<
	// LV-Eval; ShareGPT outputs are the longest relative to inputs.
	sg := Summarize(sampleN(ShareGPT(), 3000, 2))
	le := Summarize(sampleN(LEval(), 3000, 2))
	lv := Summarize(sampleN(LVEval(), 3000, 2))
	if !(sg.MeanInput < le.MeanInput/10 && le.MeanInput < lv.MeanInput) {
		t.Fatalf("mean inputs not ordered: %f %f %f", sg.MeanInput, le.MeanInput, lv.MeanInput)
	}
	if sg.MeanOutput < sg.MeanInput/3 {
		t.Fatalf("ShareGPT outputs too short: in=%f out=%f", sg.MeanInput, sg.MeanOutput)
	}
	if lv.MeanOutput > lv.MeanInput/50 {
		t.Fatalf("LV-Eval outputs too long relative to inputs: in=%f out=%f", lv.MeanInput, lv.MeanOutput)
	}
}

func TestMixedCoversAllRanges(t *testing.T) {
	entries := sampleN(Mixed(), 6000, 3)
	var short, mid, long int
	for _, e := range entries {
		switch {
		case e.InputLen <= 2_300:
			short++
		case e.InputLen <= 210_500:
			mid++
		default:
			long++
		}
	}
	if short == 0 || mid == 0 || long == 0 {
		t.Fatalf("mixed does not cover all ranges: %d/%d/%d", short, mid, long)
	}
	// Roughly one third each (short bucket = exactly the ShareGPT share).
	if frac := float64(short) / 6000; frac < 0.25 || frac > 0.42 {
		t.Fatalf("ShareGPT share %.2f, want ≈1/3", frac)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := sampleN(Mixed(), 100, 7)
	b := sampleN(Mixed(), 100, 7)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestZipfSkewsShort(t *testing.T) {
	base := Mixed()
	weak := NewZipf(base, 1.0, 200_000, 5)
	strong := NewZipf(base, 1.4, 200_000, 5)
	sWeak := Summarize(sampleN(weak, 4000, 11))
	sStrong := Summarize(sampleN(strong, 4000, 11))
	if sStrong.MeanInput >= sWeak.MeanInput {
		t.Fatalf("zipf 1.4 mean %f should be < zipf 1.0 mean %f", sStrong.MeanInput, sWeak.MeanInput)
	}
	if sWeak.MaxInput > 200_000 || sStrong.MaxInput > 200_000 {
		t.Fatal("zipf cap violated")
	}
}

func TestZipfRejectsBadS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("s=0 accepted")
		}
	}()
	NewZipf(Mixed(), 0, 200_000, 1)
}

func TestPoissonTraceProperties(t *testing.T) {
	trace := PoissonTrace(ShareGPT(), 2.0, 5000, 13)
	if len(trace) != 5000 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Arrivals strictly increasing.
	for i := 1; i < len(trace); i++ {
		if trace[i].Arrival <= trace[i-1].Arrival {
			t.Fatal("arrivals not increasing")
		}
	}
	// Mean rate ≈ 2 req/s.
	total := trace[len(trace)-1].Arrival.Seconds()
	rate := float64(len(trace)) / total
	if math.Abs(rate-2.0) > 0.15 {
		t.Fatalf("empirical rate %.3f, want ≈2.0", rate)
	}
}

func TestPoissonTraceRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 accepted")
		}
	}()
	PoissonTrace(ShareGPT(), 0, 10, 1)
}

func TestPoissonTraceDeterministic(t *testing.T) {
	a := PoissonTrace(LEval(), 0.5, 50, 21)
	b := PoissonTrace(LEval(), 0.5, 50, 21)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.N != 0 || st.TotalTokens != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	st := Summarize([]Entry{{InputLen: 10, OutputLen: 2}, {InputLen: 30, OutputLen: 4}})
	if st.MinInput != 10 || st.MaxInput != 30 || st.MeanInput != 20 || st.MeanOutput != 3 || st.TotalTokens != 46 {
		t.Fatalf("summary wrong: %+v", st)
	}
}

// Property: every sample from every dataset stays within its documented
// range and has positive output length.
func TestPropertyDatasetRangeInvariant(t *testing.T) {
	sets := []struct {
		ds     Dataset
		lo, hi int
	}{
		{ShareGPT(), 4, 2_300},
		{LEval(), 2_700, 210_500},
		{LVEval(), 15_100, 497_300},
	}
	f := func(seed int64, which uint8) bool {
		tc := sets[int(which)%len(sets)]
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			e := tc.ds.Sample(rng)
			if e.InputLen < tc.lo || e.InputLen > tc.hi || e.OutputLen <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
