package workload

import (
	"math/rand"
	"sort"
	"time"
)

// FaultKind names an injectable fleet fault.
type FaultKind string

// Fault kinds. Crash destroys a replica's resident KV and kills its
// in-flight work; Stall freezes a replica's arrivals for a while (the
// straggler model request hedging defends against); CacheDrop wipes one
// instance's control-plane metadata cache (the partial failure the
// manager's Nak/resend path repairs); Drain scales a replica in mid-run
// (planned churn: its sessions evacuate over the link); Degrade slows
// every inter-replica link transfer by Factor for Window (congested or
// flapping interconnect — drains, migrations and cold-tier fetches all
// pay it).
const (
	FaultCrash     FaultKind = "crash"
	FaultStall     FaultKind = "stall"
	FaultCacheDrop FaultKind = "cachedrop"
	FaultDrain     FaultKind = "drain"
	FaultDegrade   FaultKind = "degrade"
)

// Fault is one scheduled fault. Slot is an abstract target selector: the
// injector resolves it against the replicas alive at fire time (slot mod
// live count), so a schedule stays meaningful whatever the fleet has scaled
// to — and stays deterministic, because resolution depends only on
// simulated state.
type Fault struct {
	At    time.Duration
	Kind  FaultKind
	Slot  int
	Stall time.Duration // stall duration; zero for other kinds
	// Link-degradation window (FaultDegrade only): transfers cost Factor
	// times their nominal link time until Window elapses.
	Window time.Duration
	Factor float64
}

// FaultRates parameterizes a generated fault schedule as mean events per
// simulated minute, the operator-facing unit (CLI -faults flag).
type FaultRates struct {
	CrashPerMin     float64
	StallPerMin     float64
	CacheDropPerMin float64
	DrainPerMin     float64
	DegradePerMin   float64
	// StallMean is the mean of the exponentially distributed stall length
	// (default 3s).
	StallMean time.Duration
	// DegradeMean is the mean of the exponentially distributed
	// link-degradation window (default 10s); DegradeFactor is the slowdown
	// applied inside it (default 4x).
	DegradeMean   time.Duration
	DegradeFactor float64
}

// GenFaults draws a deterministic fault schedule over [0, horizon): for
// each kind, a count matching the configured rate in expectation (the
// fractional part resolved by one Bernoulli draw), fire times uniform over
// the horizon, targets uniform over slots. Sorted by time so injection can
// stage the schedule directly.
func GenFaults(seed int64, r FaultRates, horizon time.Duration) []Fault {
	rng := rand.New(rand.NewSource(seed))
	stallMean := r.StallMean
	if stallMean <= 0 {
		stallMean = 3 * time.Second
	}
	degradeMean := r.DegradeMean
	if degradeMean <= 0 {
		degradeMean = 10 * time.Second
	}
	degradeFactor := r.DegradeFactor
	if degradeFactor <= 1 {
		degradeFactor = 4
	}
	minutes := horizon.Minutes()
	var out []Fault
	gen := func(kind FaultKind, perMin float64) {
		expected := perMin * minutes
		n := int(expected)
		if rng.Float64() < expected-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			f := Fault{
				At:   time.Duration(rng.Float64() * float64(horizon)),
				Kind: kind,
				Slot: rng.Intn(1 << 16),
			}
			if kind == FaultStall {
				f.Stall = time.Duration(rng.ExpFloat64() * float64(stallMean))
			}
			if kind == FaultDegrade {
				f.Window = time.Duration(rng.ExpFloat64() * float64(degradeMean))
				f.Factor = degradeFactor
			}
			out = append(out, f)
		}
	}
	gen(FaultCrash, r.CrashPerMin)
	gen(FaultStall, r.StallPerMin)
	gen(FaultCacheDrop, r.CacheDropPerMin)
	gen(FaultDrain, r.DrainPerMin)
	gen(FaultDegrade, r.DegradePerMin)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Slot < b.Slot
	})
	return out
}
