// Package workload generates the request traces of the paper's §7.1:
// request arrivals follow a Poisson process, and (input length, output
// length) pairs are sampled from synthetic equivalents of the four
// evaluation datasets.
//
// The real datasets are conversation/benchmark dumps we cannot ship; what
// the evaluation actually consumes from them is the joint length
// distribution, which the paper characterizes precisely enough to
// reproduce: ShareGPT spans 4-2.3K tokens (chat: short prompts, longer
// generations), L-Eval 2.7K-210.5K (long-document QA/summarization: long
// prompts, short answers), LV-Eval 15.1K-497.3K (the longest benchmark),
// and Mixed samples the three with equal probability. Log-normal bodies
// with hard range clamps reproduce the heavy right tails such corpora
// exhibit. Fig 12 additionally resamples Mixed through a Zipf rank
// distribution to sweep skew.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Entry is one request's length pair, plus optional session metadata for
// multi-turn traces (zero values describe the stateless single-shot
// requests the paper's §7 traces consist of).
type Entry struct {
	InputLen  int
	OutputLen int

	// Session metadata for multi-turn conversations (see SessionTrace).
	// The input of a session request decomposes head-first as
	//
	//	[ shared system prompt | conversation history | new user turn ]
	//	  `-- SharedLen --'
	//	  `-------------- PrefixLen --------------'
	//
	// so PrefixLen tokens are recomputable-free on a replica that still
	// holds the session's previous-turn KV, and SharedLen tokens on any
	// replica that has served the same PromptGroup.
	SessionID   int64 // 1-based session identity; 0 = stateless request
	Turn        int   // 0-based turn index within the session
	PromptGroup int   // shared-system-prompt family; 0 = none
	SharedLen   int   // head tokens shared by every session of PromptGroup
	PrefixLen   int   // head tokens reusable from this session's previous turn

	// Blocks is the content-addressed block-hash chain of the request's
	// token stream at BlockTokens granularity, covering InputLen+OutputLen
	// tokens (the conversation state after the reply; the trailing partial
	// block is dropped). Hash k covers tokens [k*BlockTokens,
	// (k+1)*BlockTokens) and folds in hash k-1, so a single hash identifies
	// its entire prefix — the key property radix prefix-KV caches index on.
	// Two sessions sharing content (a system prompt, a branched
	// conversation prefix) emit identical leading hashes and diverge at the
	// first block containing distinct tokens. nil for stateless requests.
	//
	// Note: Blocks makes Entry non-comparable; compare entries with
	// reflect.DeepEqual or field-by-field.
	Blocks []uint64
}

// Dataset samples request length pairs.
type Dataset interface {
	Name() string
	Sample(rng *rand.Rand) Entry
}

// logNormalClamped draws from exp(N(ln(median), sigma)) clamped to
// [lo, hi].
func logNormalClamped(rng *rand.Rand, median float64, sigma float64, lo, hi int) int {
	v := int(math.Round(median * math.Exp(rng.NormFloat64()*sigma)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

type lengthDist struct {
	median float64
	sigma  float64
	lo, hi int
}

func (d lengthDist) sample(rng *rand.Rand) int {
	return logNormalClamped(rng, d.median, d.sigma, d.lo, d.hi)
}

type synthetic struct {
	name   string
	input  lengthDist
	output lengthDist
}

func (s *synthetic) Name() string { return s.name }
func (s *synthetic) Sample(rng *rand.Rand) Entry {
	return Entry{InputLen: s.input.sample(rng), OutputLen: s.output.sample(rng)}
}

// ShareGPT returns the chat workload: inputs 4-2.3K tokens, relatively long
// outputs. Short prompts with long generations are what make elastic
// scale-*up* matter (Fig 13).
func ShareGPT() Dataset {
	return &synthetic{
		name:   "ShareGPT",
		input:  lengthDist{median: 320, sigma: 1.1, lo: 4, hi: 2300},
		output: lengthDist{median: 220, sigma: 0.9, lo: 4, hi: 2000},
	}
}

// ShareGPTLong returns the generation-heavy chat variant used for the
// elastic scale-up ablation (Fig 13): ShareGPT prompts with long
// generations, the regime the paper motivates scale-up with ("requests
// from ShareGPT have a relatively short input length and long output
// length, which requires frequent scaling up as the output length
// continuously increases"). Our simulated decode path is relatively faster
// than the paper's testbed, so reaching the same decode-bound operating
// point needs the longer-generation end of the chat distribution.
func ShareGPTLong() Dataset {
	return &synthetic{
		name:   "ShareGPT-long",
		input:  lengthDist{median: 320, sigma: 1.1, lo: 4, hi: 2300},
		output: lengthDist{median: 1200, sigma: 0.6, lo: 64, hi: 4000},
	}
}

// LEval returns the long-document workload: inputs 2.7K-210.5K tokens,
// short answers.
func LEval() Dataset {
	return &synthetic{
		name:   "L-Eval",
		input:  lengthDist{median: 18_000, sigma: 1.0, lo: 2_700, hi: 210_500},
		output: lengthDist{median: 180, sigma: 0.8, lo: 16, hi: 1_024},
	}
}

// LVEval returns the longest-context workload: inputs 15.1K-497.3K tokens.
func LVEval() Dataset {
	return &synthetic{
		name:   "LV-Eval",
		input:  lengthDist{median: 110_000, sigma: 0.85, lo: 15_100, hi: 497_300},
		output: lengthDist{median: 120, sigma: 0.7, lo: 16, hi: 512},
	}
}

// Mixed samples ShareGPT, L-Eval and LV-Eval with equal probability
// ("the sampling probability of each dataset is the same", §7.1).
func Mixed() Dataset {
	return &mixed{parts: []Dataset{ShareGPT(), LEval(), LVEval()}}
}

type mixed struct {
	parts []Dataset
}

func (m *mixed) Name() string { return "Mixed" }
func (m *mixed) Sample(rng *rand.Rand) Entry {
	return m.parts[rng.Intn(len(m.parts))].Sample(rng)
}

// Zipf resamples a base dataset's *input-length distribution* through a
// Zipf rank law: the empirical length quantiles are ranked shortest first
// and rank k is drawn with probability proportional to (k+1)^-s. Larger s
// skews the workload toward short requests; s around 1 keeps substantial
// long-tail mass — the knob Fig 12 sweeps (1.0, 1.2, 1.4). MaxLen caps
// lengths (Fig 12 caps at 200K so the replicated baseline can serve every
// request). Output lengths are drawn from the base dataset unchanged.
type Zipf struct {
	name      string
	base      Dataset
	quantiles []int     // ascending empirical input-length quantiles
	cdf       []float64 // cumulative rank weights
	maxLen    int
}

// NewZipf builds a Zipf-skewed view of base with parameter s (> 0).
func NewZipf(base Dataset, s float64, maxLen int, seed int64) *Zipf {
	if s <= 0 {
		panic(fmt.Sprintf("workload: zipf s must be > 0, got %v", s))
	}
	const nq = 2048
	rng := rand.New(rand.NewSource(seed))
	q := make([]int, 0, nq)
	for i := 0; i < nq; i++ {
		l := base.Sample(rng).InputLen
		if l > maxLen {
			l = maxLen
		}
		q = append(q, l)
	}
	sort.Ints(q)
	cdf := make([]float64, nq)
	sum := 0.0
	for k := 0; k < nq; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{
		name:      fmt.Sprintf("%s-zipf%.1f", base.Name(), s),
		base:      base,
		quantiles: q,
		cdf:       cdf,
		maxLen:    maxLen,
	}
}

func (z *Zipf) Name() string { return z.name }

// Sample draws a Zipf rank by inverse-CDF lookup and maps it to the
// corresponding input-length quantile.
func (z *Zipf) Sample(rng *rand.Rand) Entry {
	u := rng.Float64()
	rank := sort.SearchFloat64s(z.cdf, u)
	if rank >= len(z.quantiles) {
		rank = len(z.quantiles) - 1
	}
	out := z.base.Sample(rng).OutputLen
	if out > z.maxLen {
		out = z.maxLen
	}
	return Entry{InputLen: z.quantiles[rank], OutputLen: out}
}

// TimedRequest is one request in a trace.
type TimedRequest struct {
	Entry
	Arrival time.Duration // offset from trace start
}

// PoissonTrace draws n requests from ds with exponentially distributed
// inter-arrival gaps at `rate` requests/second. Deterministic in seed.
func PoissonTrace(ds Dataset, rate float64, n int, seed int64) []TimedRequest {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive rate %v", rate))
	}
	rng := rand.New(rand.NewSource(seed))
	trace := make([]TimedRequest, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / rate
		trace = append(trace, TimedRequest{
			Entry:   ds.Sample(rng),
			Arrival: time.Duration(t * 1e9),
		})
	}
	return trace
}

// Stats summarizes a set of entries for calibration tests and reports.
type Stats struct {
	N                  int
	MinInput, MaxInput int
	MeanInput          float64
	MeanOutput         float64
	TotalTokens        int64
}

// Summarize computes Stats over entries.
func Summarize(entries []Entry) Stats {
	s := Stats{N: len(entries)}
	if len(entries) == 0 {
		return s
	}
	s.MinInput = entries[0].InputLen
	for _, e := range entries {
		if e.InputLen < s.MinInput {
			s.MinInput = e.InputLen
		}
		if e.InputLen > s.MaxInput {
			s.MaxInput = e.InputLen
		}
		s.MeanInput += float64(e.InputLen)
		s.MeanOutput += float64(e.OutputLen)
		s.TotalTokens += int64(e.InputLen) + int64(e.OutputLen)
	}
	s.MeanInput /= float64(len(entries))
	s.MeanOutput /= float64(len(entries))
	return s
}
