package workload

// BlockTokens is the granularity of prefix-KV block hashing: conversation
// token streams are cut into BlockTokens-sized blocks and each block gets a
// chained content hash (Entry.Blocks). Radix prefix caches index KV at this
// granularity, so two requests share cached KV in whole-block units. The
// value trades reuse resolution (smaller blocks waste fewer tokens at the
// divergence boundary) against chain length (hashes per request).
const BlockTokens = 256

// chainSeed is the initial value of every block-hash chain, so that a
// chain's first hash already differs from the raw fingerprint of its
// content.
const chainSeed = 0xb10c_ca11_ab1e_5eed

// Segment kinds folded into block fingerprints. Each segment of a
// conversation stream — the system prompt, one turn's user message, one
// turn's model reply — is identified by (kind, owner, index); identical
// identities mean identical token content, which is what makes the hashes
// content-addressed without shipping token text.
const (
	segSystem = 1 + iota // owner = prompt group
	segUser              // owner = session ID, index = turn
	segReply             // owner = session ID, index = turn
	segDoc               // owner = session ID (branch: trunk ID) of the pasted document
)

// mix64 is the splitmix64 finalizer (the same hash the fleet layer uses for
// cache keys): cheap, well distributed, deterministic.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// segID condenses a segment identity into one 64-bit content id.
func segID(kind int, owner int64, index int) uint64 {
	return mix64(mix64(mix64(uint64(kind))^uint64(owner)) ^ uint64(index))
}

// chainBuilder accumulates a token stream segment by segment and emits the
// block-hash chain. Each block's fingerprint folds, in order, every
// (segment id, span) pair overlapping the block — so streams that differ in
// any segment identity or length diverge at the first block containing the
// difference — and each emitted hash folds the previous hash, so one hash
// identifies its whole prefix.
type chainBuilder struct {
	out  []uint64
	prev uint64
	fp   uint64
	fill int
}

func newChainBuilder(totalTokens int) *chainBuilder {
	return &chainBuilder{
		out:  make([]uint64, 0, totalTokens/BlockTokens),
		prev: chainSeed,
	}
}

// add appends n tokens of the segment with content id to the stream.
func (b *chainBuilder) add(id uint64, n int) {
	for n > 0 {
		span := BlockTokens - b.fill
		if span > n {
			span = n
		}
		b.fp = mix64(b.fp ^ mix64(id^mix64(uint64(span))))
		b.fill += span
		n -= span
		if b.fill == BlockTokens {
			b.prev = mix64(b.prev ^ b.fp)
			b.out = append(b.out, b.prev)
			b.fp, b.fill = 0, 0
		}
	}
}

// chain returns the completed block-hash chain; a trailing partial block is
// dropped (its KV is not reusable at block granularity).
func (b *chainBuilder) chain() []uint64 {
	if len(b.out) == 0 {
		return nil
	}
	return b.out
}

// blockChain hashes the conversation stream of script s through turn t,
// inclusive of turn t's reply: system prompt, the session's pasted document
// (owned by the parent session in branching workloads, like base turns),
// inherited base turns, then the script's own turns 0..t. The stream length
// is exactly Entry(t).InputLen + OutputLen.
func (s *SessionScript) blockChain(t int) []uint64 {
	total := s.SystemTokens + s.DocTokens
	for i := range s.BaseTurns {
		total += s.BaseTurns[i].UserTokens + s.BaseTurns[i].ReplyTokens
	}
	for i := 0; i <= t; i++ {
		total += s.Turns[i].UserTokens + s.Turns[i].ReplyTokens
	}
	if total < BlockTokens {
		return nil
	}
	b := newChainBuilder(total)
	b.add(segID(segSystem, int64(s.Group), 0), s.SystemTokens)
	owner := s.ParentID
	if owner == 0 {
		owner = s.ID
	}
	b.add(segID(segDoc, owner, 0), s.DocTokens)
	for i := range s.BaseTurns {
		b.add(segID(segUser, owner, i), s.BaseTurns[i].UserTokens)
		b.add(segID(segReply, owner, i), s.BaseTurns[i].ReplyTokens)
	}
	for i := 0; i <= t; i++ {
		idx := len(s.BaseTurns) + i
		b.add(segID(segUser, s.ID, idx), s.Turns[i].UserTokens)
		b.add(segID(segReply, s.ID, idx), s.Turns[i].ReplyTokens)
	}
	return b.chain()
}

// InputBlocks returns the leading portion of e.Blocks fully covered by the
// request's input — the chain a prefix lookup may match (the remaining
// hashes cover the reply, which exists only after the request completes).
func (e Entry) InputBlocks() []uint64 {
	n := e.InputLen / BlockTokens
	if n > len(e.Blocks) {
		n = len(e.Blocks)
	}
	return e.Blocks[:n]
}
