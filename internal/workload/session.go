package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// SessionConfig parameterizes a multi-turn chat trace: a population of
// conversations, each opening with a system prompt drawn from a small
// family of shared prompts and growing by one (user turn, model reply)
// pair per turn. Multi-turn traffic is what makes prefix-KV reuse matter
// for fleet routing: every turn after the first re-submits the whole
// conversation so far, and turn 0 re-submits a system prompt shared with
// every other session of the same PromptGroup.
type SessionConfig struct {
	Sessions     int     // number of conversations in the trace
	MinTurns     int     // turns per session drawn uniformly in [MinTurns, MaxTurns]
	MaxTurns     int     //
	PromptGroups int     // distinct shared system prompts (>= 1)
	SystemTokens int     // median system-prompt length (tokens)
	UserTokens   int     // median new-user-turn length (tokens)
	ReplyTokens  int     // median model-reply length (tokens)
	SessionRate  float64 // new-session Poisson arrival rate (sessions/s)
	ThinkMean    float64 // mean think time between turns (seconds, exponential)
}

// DefaultSessionConfig returns a chat-scale configuration: ShareGPT-length
// user turns and replies on top of a ~1.5K-token system prompt, sessions
// of 3-8 turns.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Sessions:     64,
		MinTurns:     3,
		MaxTurns:     8,
		PromptGroups: 4,
		SystemTokens: 1500,
		UserTokens:   160,
		ReplyTokens:  220,
		SessionRate:  2,
		ThinkMean:    4,
	}
}

// Validate reports the first configuration error, so CLI front ends can
// reject bad flag combinations cleanly instead of hitting SessionTrace's
// panic.
func (cfg SessionConfig) Validate() error {
	switch {
	case cfg.Sessions <= 0:
		return fmt.Errorf("workload: SessionConfig.Sessions must be > 0, got %d", cfg.Sessions)
	case cfg.MinTurns <= 0 || cfg.MaxTurns < cfg.MinTurns:
		return fmt.Errorf("workload: bad turn range [%d, %d]", cfg.MinTurns, cfg.MaxTurns)
	case cfg.PromptGroups <= 0:
		return fmt.Errorf("workload: SessionConfig.PromptGroups must be > 0, got %d", cfg.PromptGroups)
	case cfg.SessionRate <= 0:
		return fmt.Errorf("workload: SessionConfig.SessionRate must be > 0, got %v", cfg.SessionRate)
	case cfg.ThinkMean < 0:
		return fmt.Errorf("workload: SessionConfig.ThinkMean must be >= 0, got %v", cfg.ThinkMean)
	}
	return nil
}

// SessionTrace generates a multi-turn conversation trace, deterministic in
// seed. Sessions open as a Poisson process at SessionRate; within a
// session, turn t+1 arrives an exponential think time after turn t (the
// trace is open-loop: a turn's arrival does not wait for the previous
// turn's completion, so an overloaded server sees the next turn before its
// cache entry exists — exactly the miss a router must tolerate). Requests
// from all sessions are merged and sorted by arrival.
//
// Each turn's Entry carries the session metadata documented on Entry:
// InputLen is the full re-submitted context, PrefixLen the portion a
// prefix cache can serve, SharedLen the system-prompt head shared across
// the session's PromptGroup.
func SessionTrace(cfg SessionConfig, seed int64) []TimedRequest {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))

	sysLens := make([]int, cfg.PromptGroups)
	for g := range sysLens {
		sysLens[g] = logNormalClamped(rng, float64(cfg.SystemTokens), 0.3, 64, 8*cfg.SystemTokens)
	}

	user := lengthDist{median: float64(cfg.UserTokens), sigma: 0.8, lo: 8, hi: 16 * cfg.UserTokens}
	reply := lengthDist{median: float64(cfg.ReplyTokens), sigma: 0.8, lo: 8, hi: 16 * cfg.ReplyTokens}

	var trace []TimedRequest
	start := 0.0
	for s := 0; s < cfg.Sessions; s++ {
		start += rng.ExpFloat64() / cfg.SessionRate
		group := rng.Intn(cfg.PromptGroups)
		turns := cfg.MinTurns + rng.Intn(cfg.MaxTurns-cfg.MinTurns+1)
		context := sysLens[group] // tokens accumulated before the new user turn
		at := start
		for t := 0; t < turns; t++ {
			in := user.sample(rng)
			out := reply.sample(rng)
			trace = append(trace, TimedRequest{
				Entry: Entry{
					InputLen:    context + in,
					OutputLen:   out,
					SessionID:   int64(s + 1),
					Turn:        t,
					PromptGroup: group + 1,
					SharedLen:   sysLens[group],
					PrefixLen:   context,
				},
				Arrival: time.Duration(at * 1e9),
			})
			context += in + out
			if cfg.ThinkMean > 0 {
				at += rng.ExpFloat64() * cfg.ThinkMean
			}
		}
	}
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].Arrival < trace[j].Arrival })
	return trace
}

// SessionStats summarizes the reuse structure of a trace for tests and
// reports: how many requests belong to sessions and how much of the total
// input is prefix-reusable in the best case (an infinite, perfectly warm
// cache).
type SessionStats struct {
	Requests        int
	SessionRequests int   // requests with SessionID != 0
	Sessions        int   // distinct sessions
	InputTokens     int64 // total input tokens
	PrefixTokens    int64 // total reusable-head tokens (upper bound on cache savings)
}

// SummarizeSessions computes SessionStats over a trace.
func SummarizeSessions(trace []TimedRequest) SessionStats {
	st := SessionStats{Requests: len(trace)}
	seen := make(map[int64]bool)
	for _, tr := range trace {
		st.InputTokens += int64(tr.InputLen)
		st.PrefixTokens += int64(tr.PrefixLen)
		if tr.SessionID != 0 {
			st.SessionRequests++
			seen[tr.SessionID] = true
		}
	}
	st.Sessions = len(seen)
	return st
}
