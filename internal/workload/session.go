package workload

import "fmt"

// SessionConfig parameterizes a multi-turn chat trace: a population of
// conversations, each opening with a system prompt drawn from a small
// family of shared prompts and growing by one (user turn, model reply)
// pair per turn. Multi-turn traffic is what makes prefix-KV reuse matter
// for fleet routing: every turn after the first re-submits the whole
// conversation so far, and turn 0 re-submits a system prompt shared with
// every other session of the same PromptGroup.
type SessionConfig struct {
	Sessions     int     // number of conversations in the trace
	MinTurns     int     // turns per session drawn uniformly in [MinTurns, MaxTurns]
	MaxTurns     int     //
	PromptGroups int     // distinct shared system prompts (>= 1)
	SystemTokens int     // median system-prompt length (tokens)
	UserTokens   int     // median new-user-turn length (tokens)
	ReplyTokens  int     // median model-reply length (tokens)
	SessionRate  float64 // new-session Poisson arrival rate (sessions/s)
	ThinkMean    float64 // mean think time between turns (seconds, exponential)

	// ClosedLoop switches the workload's feedback semantics: turn t+1
	// triggers its think time after turn t *completes* rather than after it
	// arrives. A closed-loop trace cannot be pre-materialized — arrivals
	// depend on serving latency — so consumers use SessionScripts with a
	// session-driving runner (fleet.RunSessions, autoscale.Run) instead of
	// SessionTrace. Open-loop (the default, false) preserves the historical
	// behavior exactly.
	ClosedLoop bool
	// BurstFactor > 1 makes session arrivals bursty: each BurstPeriod
	// seconds open at SessionRate*BurstFactor for BurstDuty of the period,
	// then fall to SessionRate/BurstFactor for the rest. 0 (or 1) keeps
	// the homogeneous Poisson process.
	BurstFactor float64
	BurstPeriod float64 // seconds per burst cycle; required when BurstFactor > 1
	BurstDuty   float64 // high-rate fraction of each cycle, (0,1); 0 = 0.5

	// LongFrac > 0 makes that fraction of sessions long-document
	// conversations: the session pastes a private document (median
	// LongDocTokens, log-normal) between its system prompt and its first
	// user turn, and every subsequent turn re-submits it — the L-Eval-shaped
	// long-prompt/short-answer traffic that gives heterogeneous fleets their
	// length mix. The document is session-private context: it counts toward
	// PrefixLen (a warm replica skips it) but not SharedLen. 0 keeps the
	// pure chat workload with the RNG draw sequence — and therefore every
	// existing trace — unchanged.
	LongFrac      float64
	LongDocTokens int // median pasted-document tokens; required when LongFrac > 0
	LongDocMax    int // document length clamp; 0 = 4x the median

	// BranchFactor >= 2 groups sessions into families sharing a
	// conversation prefix: consecutive runs of BranchFactor sessions form
	// one family whose first member is the trunk; the others are branches
	// that fork off the trunk after its first BranchTurns turns (clamped to
	// the trunk's length), inheriting the trunk's prompt group, system
	// prompt and those turns as context. Branches submit only their own
	// divergent turns. This is the workload shape where block-level (radix)
	// prefix caching beats whole-session keying: the shared trunk prefix is
	// reusable across the family, but no branch's session key ever matches
	// another's. 0 (or 1) keeps independent sessions, with the RNG draw
	// sequence — and therefore every existing trace — unchanged.
	BranchFactor int
	BranchTurns  int // trunk turns shared by a family; required when BranchFactor >= 2
}

// DefaultSessionConfig returns a chat-scale configuration: ShareGPT-length
// user turns and replies on top of a ~1.5K-token system prompt, sessions
// of 3-8 turns.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Sessions:     64,
		MinTurns:     3,
		MaxTurns:     8,
		PromptGroups: 4,
		SystemTokens: 1500,
		UserTokens:   160,
		ReplyTokens:  220,
		SessionRate:  2,
		ThinkMean:    4,
	}
}

// Validate reports the first configuration error, so CLI front ends can
// reject bad flag combinations cleanly instead of hitting SessionTrace's
// panic.
func (cfg SessionConfig) Validate() error {
	switch {
	case cfg.Sessions <= 0:
		return fmt.Errorf("workload: SessionConfig.Sessions must be > 0, got %d", cfg.Sessions)
	case cfg.MinTurns <= 0 || cfg.MaxTurns < cfg.MinTurns:
		return fmt.Errorf("workload: bad turn range [%d, %d]", cfg.MinTurns, cfg.MaxTurns)
	case cfg.PromptGroups <= 0:
		return fmt.Errorf("workload: SessionConfig.PromptGroups must be > 0, got %d", cfg.PromptGroups)
	case cfg.SessionRate <= 0:
		return fmt.Errorf("workload: SessionConfig.SessionRate must be > 0, got %v", cfg.SessionRate)
	case cfg.ThinkMean < 0:
		return fmt.Errorf("workload: SessionConfig.ThinkMean must be >= 0, got %v", cfg.ThinkMean)
	case cfg.BurstFactor < 0:
		return fmt.Errorf("workload: SessionConfig.BurstFactor must be >= 0, got %v", cfg.BurstFactor)
	case cfg.BurstFactor > 1 && cfg.BurstPeriod <= 0:
		return fmt.Errorf("workload: BurstFactor %v needs BurstPeriod > 0, got %v", cfg.BurstFactor, cfg.BurstPeriod)
	case cfg.BurstDuty < 0 || cfg.BurstDuty >= 1:
		return fmt.Errorf("workload: BurstDuty must be in [0, 1), got %v", cfg.BurstDuty)
	case cfg.LongFrac < 0 || cfg.LongFrac > 1:
		return fmt.Errorf("workload: LongFrac must be in [0, 1], got %v", cfg.LongFrac)
	case cfg.LongFrac > 0 && cfg.LongDocTokens <= 0:
		return fmt.Errorf("workload: LongFrac %v needs LongDocTokens > 0, got %d", cfg.LongFrac, cfg.LongDocTokens)
	case cfg.LongDocMax < 0:
		return fmt.Errorf("workload: LongDocMax must be >= 0, got %d", cfg.LongDocMax)
	case cfg.BranchFactor < 0:
		return fmt.Errorf("workload: SessionConfig.BranchFactor must be >= 0, got %d", cfg.BranchFactor)
	case cfg.BranchFactor >= 2 && cfg.BranchTurns < 1:
		return fmt.Errorf("workload: BranchFactor %d needs BranchTurns >= 1, got %d", cfg.BranchFactor, cfg.BranchTurns)
	}
	return nil
}

// SessionTrace generates a multi-turn conversation trace, deterministic in
// seed. Sessions open as a Poisson process at SessionRate; within a
// session, turn t+1 arrives an exponential think time after turn t (the
// trace is open-loop: a turn's arrival does not wait for the previous
// turn's completion, so an overloaded server sees the next turn before its
// cache entry exists — exactly the miss a router must tolerate). Requests
// from all sessions are merged and sorted by arrival.
//
// Each turn's Entry carries the session metadata documented on Entry:
// InputLen is the full re-submitted context, PrefixLen the portion a
// prefix cache can serve, SharedLen the system-prompt head shared across
// the session's PromptGroup.
//
// SessionTrace is the open-loop materialization and panics on a
// cfg.ClosedLoop configuration: closed-loop arrivals depend on completion
// times only a serving simulation knows, so closed-loop consumers drive
// SessionScripts through a session-aware runner instead.
func SessionTrace(cfg SessionConfig, seed int64) []TimedRequest {
	if cfg.ClosedLoop {
		panic("workload: a closed-loop session workload cannot be pre-materialized; drive SessionScripts through fleet.RunSessions or autoscale.Run")
	}
	return OpenLoopTrace(SessionScripts(cfg, seed))
}

// SessionStats summarizes the reuse structure of a trace for tests and
// reports: how many requests belong to sessions and how much of the total
// input is prefix-reusable in the best case (an infinite, perfectly warm
// cache).
type SessionStats struct {
	Requests        int
	SessionRequests int   // requests with SessionID != 0
	Sessions        int   // distinct sessions
	InputTokens     int64 // total input tokens
	PrefixTokens    int64 // total reusable-head tokens (upper bound on cache savings)
}

// SummarizeSessions computes SessionStats over a trace.
func SummarizeSessions(trace []TimedRequest) SessionStats {
	st := SessionStats{Requests: len(trace)}
	seen := make(map[int64]bool)
	for _, tr := range trace {
		st.InputTokens += int64(tr.InputLen)
		st.PrefixTokens += int64(tr.PrefixLen)
		if tr.SessionID != 0 {
			st.SessionRequests++
			seen[tr.SessionID] = true
		}
	}
	st.Sessions = len(seen)
	return st
}
