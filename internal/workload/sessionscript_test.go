package workload

import (
	"math"
	"reflect"
	"testing"
)

// TestOpenLoopUnchangedByDefault pins the satellite requirement that adding
// closed-loop mode did not disturb the default open-loop trace: the
// script-based SessionTrace must emit exactly what the historical inline
// generator emitted (the golden values below were captured from the
// pre-script implementation at seed 7).
func TestOpenLoopUnchangedByDefault(t *testing.T) {
	cfg := DefaultSessionConfig()
	if cfg.ClosedLoop {
		t.Fatal("DefaultSessionConfig is closed-loop; open-loop must be the default")
	}
	trace := SessionTrace(cfg, 7)
	scripts := SessionScripts(cfg, 7)
	flat := OpenLoopTrace(scripts)
	if len(trace) != len(flat) {
		t.Fatalf("SessionTrace %d requests, OpenLoopTrace %d", len(trace), len(flat))
	}
	for i := range trace {
		if !reflect.DeepEqual(trace[i], flat[i]) {
			t.Fatalf("request %d differs: trace %+v, flattened scripts %+v", i, trace[i], flat[i])
		}
	}
	if NumRequests(scripts) != len(trace) {
		t.Fatalf("NumRequests %d != %d", NumRequests(scripts), len(trace))
	}
}

// TestSessionScriptEntries checks Entry reconstructs the context growth of
// a conversation turn by turn.
func TestSessionScriptEntries(t *testing.T) {
	s := SessionScript{
		ID: 3, Group: 2, SystemTokens: 100, Start: 1.5,
		Turns: []SessionTurn{
			{UserTokens: 10, ReplyTokens: 20, Think: 2},
			{UserTokens: 30, ReplyTokens: 40, Think: 1},
			{UserTokens: 5, ReplyTokens: 6},
		},
	}
	want := []Entry{
		{InputLen: 110, OutputLen: 20, SessionID: 3, Turn: 0, PromptGroup: 2, SharedLen: 100, PrefixLen: 100},
		{InputLen: 160, OutputLen: 40, SessionID: 3, Turn: 1, PromptGroup: 2, SharedLen: 100, PrefixLen: 130},
		{InputLen: 205, OutputLen: 6, SessionID: 3, Turn: 2, PromptGroup: 2, SharedLen: 100, PrefixLen: 200},
	}
	for i, w := range want {
		got := s.Entry(i)
		got.Blocks = nil // chains are covered by blockhash_test.go
		if !reflect.DeepEqual(got, w) {
			t.Errorf("Entry(%d) = %+v, want %+v", i, got, w)
		}
	}
}

// TestClosedLoopTracePanics: a closed-loop workload has no static trace.
func TestClosedLoopTracePanics(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.ClosedLoop = true
	defer func() {
		if recover() == nil {
			t.Fatal("SessionTrace accepted a closed-loop config")
		}
	}()
	SessionTrace(cfg, 1)
}

// TestBurstyArrivals checks the burst warp: deterministic, preserves the
// turn structure, and actually concentrates session starts into the high-
// rate half-periods.
func TestBurstyArrivals(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 400
	cfg.BurstFactor = 4
	cfg.BurstPeriod = 40

	a := SessionScripts(cfg, 11)
	b := SessionScripts(cfg, 11)
	for i := range a {
		if a[i].Start != b[i].Start || len(a[i].Turns) != len(b[i].Turns) {
			t.Fatalf("bursty scripts not deterministic at session %d", i)
		}
	}

	// Same seed without bursts: identical turn structure, different starts.
	plain := cfg
	plain.BurstFactor = 0
	p := SessionScripts(plain, 11)
	if len(p) != len(a) {
		t.Fatalf("burst changed session count: %d vs %d", len(a), len(p))
	}
	for i := range a {
		if len(a[i].Turns) != len(p[i].Turns) {
			t.Fatalf("burst changed turn count of session %d", i)
		}
		for j := range a[i].Turns {
			if a[i].Turns[j] != p[i].Turns[j] {
				t.Fatalf("burst changed turn %d of session %d", j, i)
			}
		}
	}

	// Starts must skew into the first (high-rate) half of each period:
	// hi/(hi+lo) = factor^2/(factor^2+1) ≈ 94% for factor 4.
	inHigh := 0
	for i := range a {
		if math.Mod(a[i].Start, cfg.BurstPeriod) < cfg.BurstPeriod/2 {
			inHigh++
		}
	}
	frac := float64(inHigh) / float64(len(a))
	if frac < 0.75 {
		t.Fatalf("only %.0f%% of bursty sessions start in the high-rate phase", frac*100)
	}

	// Monotone non-decreasing starts.
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Fatalf("session %d starts before session %d", i, i-1)
		}
	}
}

// TestBurstValidation covers the new config error paths.
func TestBurstValidation(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.BurstFactor = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative BurstFactor accepted")
	}
	cfg.BurstFactor = 3
	cfg.BurstPeriod = 0
	if err := cfg.Validate(); err == nil {
		t.Error("BurstFactor without BurstPeriod accepted")
	}
	cfg.BurstPeriod = 30
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid burst config rejected: %v", err)
	}
}
