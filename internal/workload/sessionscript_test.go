package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"testing"
)

// TestOpenLoopUnchangedByDefault pins the satellite requirement that adding
// closed-loop mode did not disturb the default open-loop trace: the
// script-based SessionTrace must emit exactly what the historical inline
// generator emitted (the golden values below were captured from the
// pre-script implementation at seed 7).
func TestOpenLoopUnchangedByDefault(t *testing.T) {
	cfg := DefaultSessionConfig()
	if cfg.ClosedLoop {
		t.Fatal("DefaultSessionConfig is closed-loop; open-loop must be the default")
	}
	trace := SessionTrace(cfg, 7)
	scripts := SessionScripts(cfg, 7)
	flat := OpenLoopTrace(scripts)
	if len(trace) != len(flat) {
		t.Fatalf("SessionTrace %d requests, OpenLoopTrace %d", len(trace), len(flat))
	}
	for i := range trace {
		if !reflect.DeepEqual(trace[i], flat[i]) {
			t.Fatalf("request %d differs: trace %+v, flattened scripts %+v", i, trace[i], flat[i])
		}
	}
	if NumRequests(scripts) != len(trace) {
		t.Fatalf("NumRequests %d != %d", NumRequests(scripts), len(trace))
	}
}

// TestSessionScriptEntries checks Entry reconstructs the context growth of
// a conversation turn by turn.
func TestSessionScriptEntries(t *testing.T) {
	s := SessionScript{
		ID: 3, Group: 2, SystemTokens: 100, Start: 1.5,
		Turns: []SessionTurn{
			{UserTokens: 10, ReplyTokens: 20, Think: 2},
			{UserTokens: 30, ReplyTokens: 40, Think: 1},
			{UserTokens: 5, ReplyTokens: 6},
		},
	}
	want := []Entry{
		{InputLen: 110, OutputLen: 20, SessionID: 3, Turn: 0, PromptGroup: 2, SharedLen: 100, PrefixLen: 100},
		{InputLen: 160, OutputLen: 40, SessionID: 3, Turn: 1, PromptGroup: 2, SharedLen: 100, PrefixLen: 130},
		{InputLen: 205, OutputLen: 6, SessionID: 3, Turn: 2, PromptGroup: 2, SharedLen: 100, PrefixLen: 200},
	}
	for i, w := range want {
		got := s.Entry(i)
		got.Blocks = nil // chains are covered by blockhash_test.go
		if !reflect.DeepEqual(got, w) {
			t.Errorf("Entry(%d) = %+v, want %+v", i, got, w)
		}
	}
}

// TestClosedLoopTracePanics: a closed-loop workload has no static trace.
func TestClosedLoopTracePanics(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.ClosedLoop = true
	defer func() {
		if recover() == nil {
			t.Fatal("SessionTrace accepted a closed-loop config")
		}
	}()
	SessionTrace(cfg, 1)
}

// TestBurstyArrivals checks the burst warp: deterministic, preserves the
// turn structure, and actually concentrates session starts into the high-
// rate half-periods.
func TestBurstyArrivals(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 400
	cfg.BurstFactor = 4
	cfg.BurstPeriod = 40

	a := SessionScripts(cfg, 11)
	b := SessionScripts(cfg, 11)
	for i := range a {
		if a[i].Start != b[i].Start || len(a[i].Turns) != len(b[i].Turns) {
			t.Fatalf("bursty scripts not deterministic at session %d", i)
		}
	}

	// Same seed without bursts: identical turn structure, different starts.
	plain := cfg
	plain.BurstFactor = 0
	p := SessionScripts(plain, 11)
	if len(p) != len(a) {
		t.Fatalf("burst changed session count: %d vs %d", len(a), len(p))
	}
	for i := range a {
		if len(a[i].Turns) != len(p[i].Turns) {
			t.Fatalf("burst changed turn count of session %d", i)
		}
		for j := range a[i].Turns {
			if a[i].Turns[j] != p[i].Turns[j] {
				t.Fatalf("burst changed turn %d of session %d", j, i)
			}
		}
	}

	// Starts must skew into the first (high-rate) half of each period:
	// hi/(hi+lo) = factor^2/(factor^2+1) ≈ 94% for factor 4.
	inHigh := 0
	for i := range a {
		if math.Mod(a[i].Start, cfg.BurstPeriod) < cfg.BurstPeriod/2 {
			inHigh++
		}
	}
	frac := float64(inHigh) / float64(len(a))
	if frac < 0.75 {
		t.Fatalf("only %.0f%% of bursty sessions start in the high-rate phase", frac*100)
	}

	// Monotone non-decreasing starts.
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Fatalf("session %d starts before session %d", i, i-1)
		}
	}
}

// TestBurstValidation covers the new config error paths.
func TestBurstValidation(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.BurstFactor = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative BurstFactor accepted")
	}
	cfg.BurstFactor = 3
	cfg.BurstPeriod = 0
	if err := cfg.Validate(); err == nil {
		t.Error("BurstFactor without BurstPeriod accepted")
	}
	cfg.BurstPeriod = 30
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid burst config rejected: %v", err)
	}
}

// TestLongDocSessions covers the long-document mix: the drawn share, the
// Entry decomposition (the document counts toward the session-private
// prefix but not the shared head), and the hash chain.
func TestLongDocSessions(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 200
	cfg.LongFrac = 0.3
	cfg.LongDocTokens = 20_000
	cfg.LongDocMax = 50_000
	scripts := SessionScripts(cfg, 7)

	long := 0
	for i := range scripts {
		s := &scripts[i]
		if s.DocTokens == 0 {
			continue
		}
		long++
		if s.DocTokens < BlockTokens || s.DocTokens > cfg.LongDocMax {
			t.Fatalf("session %d: doc %d outside [%d, %d]", s.ID, s.DocTokens, BlockTokens, cfg.LongDocMax)
		}
		e := s.Entry(0)
		if e.SharedLen != s.SystemTokens {
			t.Fatalf("session %d: SharedLen %d includes the private document", s.ID, e.SharedLen)
		}
		if e.PrefixLen != s.SystemTokens+s.DocTokens {
			t.Fatalf("session %d: turn-0 PrefixLen %d, want system %d + doc %d", s.ID, e.PrefixLen, s.SystemTokens, s.DocTokens)
		}
		if e.InputLen != s.SystemTokens+s.DocTokens+s.Turns[0].UserTokens {
			t.Fatalf("session %d: turn-0 InputLen %d", s.ID, e.InputLen)
		}
		if want := (e.InputLen + e.OutputLen) / BlockTokens; len(e.Blocks) != want {
			t.Fatalf("session %d: %d chain blocks, want %d", s.ID, len(e.Blocks), want)
		}
	}
	// The drawn share concentrates near LongFrac.
	if frac := float64(long) / float64(len(scripts)); frac < 0.18 || frac > 0.45 {
		t.Fatalf("long-document share %.2f far from configured 0.30", frac)
	}
}

// TestLongDocDefaultClamp: LongDocMax 0 falls back to 4x the median.
func TestLongDocDefaultClamp(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 300
	cfg.LongFrac = 1
	cfg.LongDocTokens = 1_000
	scripts := SessionScripts(cfg, 3)
	for i := range scripts {
		if d := scripts[i].DocTokens; d < BlockTokens || d > 4_000 {
			t.Fatalf("session %d: doc %d outside default clamp", scripts[i].ID, d)
		}
	}
}

// TestLongDocDisabledPathGolden guards the "RNG-stable when off"
// invariant for real: the fingerprint literal below was computed on the
// tree *before* the long-document feature existed (same config, same
// seed, same fields). If the LongFrac==0 path ever consumes an extra RNG
// draw — say the doc-length sample moves outside its enable guard —
// every historical trace silently changes and this hash catches it.
func TestLongDocDisabledPathGolden(t *testing.T) {
	const preLongDocFingerprint = uint64(0x68e21f34e3045c8d)
	cfg := DefaultSessionConfig()
	cfg.Sessions = 50
	h := fnv.New64a()
	for _, tr := range SessionTrace(cfg, 42) {
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d\n", tr.Arrival, tr.InputLen, tr.OutputLen, tr.SessionID, tr.Turn, tr.PrefixLen, tr.SharedLen)
	}
	if got := h.Sum64(); got != preLongDocFingerprint {
		t.Fatalf("disabled-path trace fingerprint %#x != pre-feature golden %#x: the LongFrac==0 draw sequence changed", got, preLongDocFingerprint)
	}
}

// TestLongDocFirstSessionDrawPosition pins where a session's doc draws
// sit in the RNG stream: after its start/group/turn-count draws. The
// first session's pre-doc fields therefore match the LongFrac=0 stream
// exactly (later sessions shift — their draws follow session 0's doc
// samples).
func TestLongDocFirstSessionDrawPosition(t *testing.T) {
	base := DefaultSessionConfig()
	base.Sessions = 50
	with := base
	with.LongFrac = 1
	with.LongDocTokens = 10_000
	a, b := SessionScripts(base, 42), SessionScripts(with, 42)
	if b[0].DocTokens == 0 {
		t.Fatal("LongFrac 1 drew no document for session 0")
	}
	if a[0].Start != b[0].Start || a[0].Group != b[0].Group ||
		a[0].SystemTokens != b[0].SystemTokens || len(a[0].Turns) != len(b[0].Turns) {
		t.Fatalf("session 0 pre-doc draws shifted:\nwithout %+v\nwith    %+v", a[0], b[0])
	}
}

// TestLongDocBranchInheritance: a branch inherits its trunk's document,
// and their chains share the document blocks (the trunk hashes it under
// its own identity for both).
func TestLongDocBranchInheritance(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 8
	cfg.LongFrac = 1
	cfg.LongDocTokens = 10_000
	cfg.BranchFactor = 4
	cfg.BranchTurns = 2
	scripts := SessionScripts(cfg, 5)

	trunk := &scripts[0]
	for i := 1; i < 4; i++ {
		br := &scripts[i]
		if br.ParentID != trunk.ID {
			t.Fatalf("script %d not branched off trunk", i)
		}
		if br.DocTokens != trunk.DocTokens {
			t.Fatalf("branch doc %d != trunk doc %d", br.DocTokens, trunk.DocTokens)
		}
		// Shared blocks: system + doc + inherited turns are identical
		// hashes, so the branch's first-turn chain must share the trunk's
		// prefix through the document.
		te, be := trunk.Entry(0), br.Entry(0)
		shared := (trunk.SystemTokens + trunk.DocTokens) / BlockTokens
		if len(te.Blocks) < shared || len(be.Blocks) < shared {
			t.Fatalf("chains shorter than the shared head (%d blocks)", shared)
		}
		for k := 0; k < shared; k++ {
			if te.Blocks[k] != be.Blocks[k] {
				t.Fatalf("branch diverges from trunk at shared block %d", k)
			}
		}
	}
}

// TestStreamSessionsMatchesEager is the lazy-sampling contract: pulling the
// whole stream reproduces SessionScripts element for element (IDs, draws,
// lineage, block chains), across plain, long-document, bursty and branching
// configurations — so a streaming driver samples the same workload it would
// have loaded eagerly.
func TestStreamSessionsMatchesEager(t *testing.T) {
	cases := map[string]SessionConfig{}
	plain := DefaultSessionConfig()
	plain.Sessions = 97
	cases["plain"] = plain
	long := plain
	long.LongFrac = 0.3
	long.LongDocTokens = 20_000
	cases["long-doc"] = long
	burst := plain
	burst.BurstFactor = 3
	burst.BurstPeriod = 40
	cases["bursty"] = burst
	branch := long
	branch.BranchFactor = 4
	branch.BranchTurns = 2
	cases["branching"] = branch

	for name, cfg := range cases {
		eager := SessionScripts(cfg, 23)
		st := StreamSessions(cfg, 23)
		if st.Sessions() != cfg.Sessions {
			t.Fatalf("%s: stream advertises %d sessions, want %d", name, st.Sessions(), cfg.Sessions)
		}
		var got []SessionScript
		families := 0
		for fam := st.Next(); fam != nil; fam = st.Next() {
			families++
			got = append(got, fam...)
		}
		if st.Next() != nil {
			t.Fatalf("%s: exhausted stream yielded another family", name)
		}
		if len(got) != len(eager) {
			t.Fatalf("%s: stream produced %d scripts, eager %d", name, len(got), len(eager))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], eager[i]) {
				t.Fatalf("%s: script %d differs:\nstream %+v\neager  %+v", name, i, got[i], eager[i])
			}
		}
		want := cfg.Sessions
		if cfg.BranchFactor >= 2 {
			want = (cfg.Sessions + cfg.BranchFactor - 1) / cfg.BranchFactor
		}
		if families != want {
			t.Fatalf("%s: %d families, want %d", name, families, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Start < got[i-1].Start {
				t.Fatalf("%s: session %d starts at %.3f before session %d at %.3f",
					name, i+1, got[i].Start, i, got[i-1].Start)
			}
		}
	}
}
