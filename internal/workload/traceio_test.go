package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := PoissonTrace(Mixed(), 0.5, 50, 9)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("read %d entries, wrote %d", len(got), len(orig))
	}
	for i := range orig {
		if !reflect.DeepEqual(got[i], orig[i]) {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	orig := PoissonTrace(ShareGPT(), 3, 25, 4)
	if err := SaveTraceFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("read %d entries, wrote %d", len(got), len(orig))
	}
}

func TestReadTraceSortsByArrival(t *testing.T) {
	in := strings.Join([]string{
		`{"input":10,"output":5,"arrival_ns":3000}`,
		`{"input":20,"output":5,"arrival_ns":1000}`,
		`{"input":30,"output":5,"arrival_ns":2000}`,
	}, "\n")
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].InputLen != 20 || got[1].InputLen != 30 || got[2].InputLen != 10 {
		t.Errorf("not sorted by arrival: %+v", got)
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"input":1,"output":1,"arrival_ns":0}` + "\n\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d entries, err %v", len(got), err)
	}
}

func TestReadTraceValidation(t *testing.T) {
	for name, in := range map[string]string{
		"bad json":         `{"input": }`,
		"zero input":       `{"input":0,"output":5,"arrival_ns":0}`,
		"negative output":  `{"input":5,"output":-1,"arrival_ns":0}`,
		"negative arrival": `{"input":5,"output":5,"arrival_ns":-3}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(in)); err == nil {
				t.Error("malformed trace accepted")
			} else if !strings.Contains(err.Error(), "line 1") {
				t.Errorf("error lacks line number: %v", err)
			}
		})
	}
}

func TestReadTraceEmpty(t *testing.T) {
	got, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %d entries, err %v", len(got), err)
	}
}

func TestWriteTracePreservesNanosecondArrivals(t *testing.T) {
	tr := []TimedRequest{{Entry: Entry{InputLen: 1, OutputLen: 1}, Arrival: 123456789 * time.Nanosecond}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Arrival != tr[0].Arrival {
		t.Errorf("arrival %v != %v", got[0].Arrival, tr[0].Arrival)
	}
}
