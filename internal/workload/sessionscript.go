package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// SessionTurn is one turn of a scripted conversation: the new user tokens
// it submits, the reply tokens the model generates, and the think time the
// user spends before triggering the next turn. In an open-loop replay the
// think time counts from this turn's *arrival*; in a closed-loop replay it
// counts from this turn's *completion* — the difference is the whole point
// of closed-loop mode (see SessionConfig.ClosedLoop).
type SessionTurn struct {
	UserTokens  int
	ReplyTokens int
	Think       float64 // seconds until the session's next turn triggers
}

// SessionScript is one conversation's full plan: identity, shared-prompt
// family, start time and per-turn token counts. Scripts carry everything a
// driver needs to emit the session's requests either open-loop (arrivals
// from the script alone) or closed-loop (each turn's arrival depends on the
// previous turn's completion, which only the serving simulation knows).
type SessionScript struct {
	ID           int64 // 1-based SessionID
	Group        int   // 1-based PromptGroup
	SystemTokens int   // shared system-prompt length (SharedLen)
	// DocTokens is a private pasted document between the system prompt and
	// the first turn (0 for pure chat sessions): session-owned context that
	// every turn re-submits, reusable from the session's previous turn
	// (PrefixLen) but shared with no other session — the long-document
	// workload shape of SessionConfig.LongFrac.
	DocTokens int
	Start     float64
	Turns     []SessionTurn

	// Branching lineage (zero-valued for independent sessions): the session
	// forked off session ParentID and inherits BaseTurns — conversation
	// turns whose content belongs to the parent — as context preceding its
	// own Turns. The branch never re-submits the inherited turns; its first
	// request already carries them as re-submitted context, so their KV is
	// reusable from any replica that served the parent (a radix cache
	// shares them block-for-block; whole-session keying cannot).
	ParentID  int64
	BaseTurns []SessionTurn

	// chain is the precomputed block-hash chain of the whole conversation
	// (through the last turn's reply). Every turn's chain is a prefix of
	// it — hashes are chained and the turn-t stream is a prefix of the
	// full stream — so Entry slices instead of re-hashing (hand-built
	// scripts without it fall back to hashing per call). Filled by
	// SessionScripts; read-only afterwards, so scripts stay safe to share
	// across parallel experiment arms.
	chain []uint64
}

// Entry builds the workload Entry for turn t (0-based over the script's own
// Turns): the re-submitted context plus the new user turn, with the
// prefix-reuse structure filled in exactly as SessionTrace emits it.
func (s *SessionScript) Entry(t int) Entry {
	context := s.SystemTokens + s.DocTokens
	for i := range s.BaseTurns {
		context += s.BaseTurns[i].UserTokens + s.BaseTurns[i].ReplyTokens
	}
	for i := 0; i < t; i++ {
		context += s.Turns[i].UserTokens + s.Turns[i].ReplyTokens
	}
	e := Entry{
		InputLen:    context + s.Turns[t].UserTokens,
		OutputLen:   s.Turns[t].ReplyTokens,
		SessionID:   s.ID,
		Turn:        t,
		PromptGroup: s.Group,
		SharedLen:   s.SystemTokens,
		PrefixLen:   context,
	}
	if n := (e.InputLen + e.OutputLen) / BlockTokens; n > 0 {
		if s.chain != nil {
			if n > len(s.chain) {
				n = len(s.chain)
			}
			e.Blocks = s.chain[:n:n]
		} else {
			e.Blocks = s.blockChain(t)
		}
	}
	return e
}

// NumRequests returns the total request count a script set will emit.
func NumRequests(scripts []SessionScript) int {
	n := 0
	for i := range scripts {
		n += len(scripts[i].Turns)
	}
	return n
}

// burstClock warps unit-exponential arrival mass through a square-wave rate
// profile: the first `duty` fraction of every period runs at hi sessions/s,
// the rest at lo. It is how SessionScripts turns a Poisson session process
// into the bursty on/off arrivals the autoscaling experiments need, without
// changing the RNG draw count (one exponential per session either way).
type burstClock struct {
	t      float64
	period float64
	duty   float64
	hi, lo float64
}

// advance consumes `mass` units of exponential arrival mass and returns the
// wall-clock time at which the next session starts.
func (b *burstClock) advance(mass float64) float64 {
	for {
		pos := math.Mod(b.t, b.period)
		rate, boundary := b.hi, b.duty*b.period
		if pos >= b.duty*b.period {
			rate, boundary = b.lo, b.period
		}
		span := boundary - pos
		if need := mass / rate; need <= span {
			b.t += need
			return b.t
		}
		mass -= span * rate
		b.t += span
	}
}

// sessionSampler holds the generator state one session draw advances: the
// RNG, the shared length distributions, the per-group system-prompt
// lengths, and the arrival clock. SessionScripts and SessionStream share it,
// which is what makes the stream RNG-identical to the eager generator — the
// draw code exists exactly once.
type sessionSampler struct {
	cfg              SessionConfig
	rng              *rand.Rand
	sysLens          []int
	user, reply, doc lengthDist
	burst            *burstClock
	start            float64
}

func newSessionSampler(cfg SessionConfig, seed int64) *sessionSampler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sp := &sessionSampler{cfg: cfg, rng: rand.New(rand.NewSource(seed))}

	sp.sysLens = make([]int, cfg.PromptGroups)
	for g := range sp.sysLens {
		sp.sysLens[g] = logNormalClamped(sp.rng, float64(cfg.SystemTokens), 0.3, 64, 8*cfg.SystemTokens)
	}

	sp.user = lengthDist{median: float64(cfg.UserTokens), sigma: 0.8, lo: 8, hi: 16 * cfg.UserTokens}
	sp.reply = lengthDist{median: float64(cfg.ReplyTokens), sigma: 0.8, lo: 8, hi: 16 * cfg.ReplyTokens}
	docMax := cfg.LongDocMax
	if docMax == 0 {
		docMax = 4 * cfg.LongDocTokens
	}
	sp.doc = lengthDist{median: float64(cfg.LongDocTokens), sigma: 0.6, lo: BlockTokens, hi: docMax}

	if cfg.BurstFactor > 1 {
		duty := cfg.BurstDuty
		if duty == 0 {
			duty = 0.5
		}
		sp.burst = &burstClock{
			period: cfg.BurstPeriod,
			duty:   duty,
			hi:     cfg.SessionRate * cfg.BurstFactor,
			lo:     cfg.SessionRate / cfg.BurstFactor,
		}
	}
	return sp
}

// draw samples session number s (0-based). Successive draws have
// non-decreasing Start times — the property the lazy fleet feed rests on.
func (sp *sessionSampler) draw(s int) SessionScript {
	cfg := sp.cfg
	mass := sp.rng.ExpFloat64()
	if sp.burst != nil {
		sp.start = sp.burst.advance(mass)
	} else {
		sp.start += mass / cfg.SessionRate
	}
	group := sp.rng.Intn(cfg.PromptGroups)
	turns := cfg.MinTurns + sp.rng.Intn(cfg.MaxTurns-cfg.MinTurns+1)
	sc := SessionScript{
		ID:           int64(s + 1),
		Group:        group + 1,
		SystemTokens: sp.sysLens[group],
		Start:        sp.start,
		Turns:        make([]SessionTurn, turns),
	}
	// Long-document draws happen only when the feature is enabled, so a
	// LongFrac == 0 configuration consumes the RNG exactly as before.
	if cfg.LongFrac > 0 && sp.rng.Float64() < cfg.LongFrac {
		sc.DocTokens = sp.doc.sample(sp.rng)
	}
	for t := 0; t < turns; t++ {
		sc.Turns[t] = SessionTurn{UserTokens: sp.user.sample(sp.rng), ReplyTokens: sp.reply.sample(sp.rng)}
		if cfg.ThinkMean > 0 {
			sc.Turns[t].Think = sp.rng.ExpFloat64() * cfg.ThinkMean
		}
	}
	return sc
}

// SessionScripts generates the conversation plans of a session workload,
// deterministic in seed. It draws from the RNG in exactly the order
// SessionTrace historically did, so for a burst-free configuration
// OpenLoopTrace(SessionScripts(cfg, seed)) reproduces SessionTrace(cfg,
// seed) bit for bit.
//
// With BurstFactor > 1 session start times follow a non-homogeneous Poisson
// process alternating between SessionRate*BurstFactor and
// SessionRate/BurstFactor every BurstPeriod/2 seconds — bursty arrivals for
// elasticity experiments. Turn structure is unaffected.
func SessionScripts(cfg SessionConfig, seed int64) []SessionScript {
	sp := newSessionSampler(cfg, seed)
	scripts := make([]SessionScript, 0, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		scripts = append(scripts, sp.draw(s))
	}
	if cfg.BranchFactor >= 2 {
		branchScripts(scripts, cfg.BranchFactor, cfg.BranchTurns)
	}
	// Hash each conversation once (after branching rewires lineage): every
	// turn's chain is a prefix of the full chain, so Entry can slice it.
	for i := range scripts {
		s := &scripts[i]
		s.chain = s.blockChain(len(s.Turns) - 1)
	}
	return scripts
}

// SessionStream is the lazy spelling of SessionScripts: the same RNG draw
// sequence, surfaced one branching family at a time instead of as one
// O(sessions) slice. Concatenating every Next() reproduces
// SessionScripts(cfg, seed) element for element, so a streaming driver can
// run day-long million-session workloads holding only the live sessions in
// memory.
type SessionStream struct {
	sp     *sessionSampler
	factor int // family size: BranchFactor, or 1 when branching is off
	drawn  int
}

// StreamSessions opens a lazy session-script stream.
func StreamSessions(cfg SessionConfig, seed int64) *SessionStream {
	factor := 1
	if cfg.BranchFactor >= 2 {
		factor = cfg.BranchFactor
	}
	return &SessionStream{sp: newSessionSampler(cfg, seed), factor: factor}
}

// Sessions returns the total session count the stream will produce.
func (st *SessionStream) Sessions() int { return st.sp.cfg.Sessions }

// Next samples and returns the next branching family — BranchFactor
// consecutive sessions sharing a trunk, or a single session when branching
// is off (the trailing family may be shorter). Returns nil when the stream
// is exhausted. Families are self-contained: branch lineage never crosses a
// family boundary, so sampling family by family is exact.
func (st *SessionStream) Next() []SessionScript {
	cfg := st.sp.cfg
	if st.drawn >= cfg.Sessions {
		return nil
	}
	n := st.factor
	if rem := cfg.Sessions - st.drawn; n > rem {
		n = rem
	}
	family := make([]SessionScript, 0, n)
	for i := 0; i < n; i++ {
		family = append(family, st.sp.draw(st.drawn+i))
	}
	st.drawn += n
	if st.factor >= 2 {
		branchScripts(family, st.factor, cfg.BranchTurns)
	}
	for i := range family {
		s := &family[i]
		s.chain = s.blockChain(len(s.Turns) - 1)
	}
	return family
}

// branchScripts rewires independently drawn scripts into branching
// families: consecutive runs of `factor` scripts share the first script as
// trunk, and every other member becomes a branch forking after the trunk's
// first `turns` turns (clamped to the trunk's length). The branch keeps its
// own drawn start time, think times and divergent turns — only its lineage,
// prompt group and system prompt are rewritten — so the transformation is a
// pure post-pass over the unchanged RNG draw sequence.
func branchScripts(scripts []SessionScript, factor, turns int) {
	for i := range scripts {
		trunk := &scripts[i-i%factor]
		if trunk == &scripts[i] {
			continue
		}
		shared := turns
		if shared > len(trunk.Turns) {
			shared = len(trunk.Turns)
		}
		br := &scripts[i]
		br.ParentID = trunk.ID
		br.BaseTurns = trunk.Turns[:shared:shared]
		br.Group = trunk.Group
		br.SystemTokens = trunk.SystemTokens
		// The trunk's pasted document precedes the shared turns, so a branch
		// inherits it (hashed under the trunk's identity — see blockChain).
		br.DocTokens = trunk.DocTokens
	}
}

// OpenLoopTrace flattens scripts into a static arrival-sorted trace: turn
// t+1 arrives Think seconds after turn t's *arrival*, regardless of when
// (or whether) turn t completed. This is the open-loop projection — the
// semantics SessionTrace has always had.
func OpenLoopTrace(scripts []SessionScript) []TimedRequest {
	trace := make([]TimedRequest, 0, NumRequests(scripts))
	for i := range scripts {
		s := &scripts[i]
		at := s.Start
		for t := range s.Turns {
			trace = append(trace, TimedRequest{
				Entry:   s.Entry(t),
				Arrival: time.Duration(at * 1e9),
			})
			at += s.Turns[t].Think
		}
	}
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].Arrival < trace[j].Arrival })
	return trace
}
