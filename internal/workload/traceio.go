package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Trace I/O: serving experiments must be replayable byte-for-byte. A trace
// file is JSON-lines — one TimedRequest per line — so multi-gigabyte traces
// stream without loading whole arrays, and diffs stay line-oriented.

// traceRecord is the on-disk form of TimedRequest. Arrival is nanoseconds
// from trace start.
type traceRecord struct {
	Input   int   `json:"input"`
	Output  int   `json:"output"`
	Arrival int64 `json:"arrival_ns"`
}

// WriteTrace streams a trace as JSON lines.
func WriteTrace(w io.Writer, trace []TimedRequest) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, tr := range trace {
		rec := traceRecord{
			Input:   tr.InputLen,
			Output:  tr.OutputLen,
			Arrival: tr.Arrival.Nanoseconds(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("workload: writing trace entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON-lines trace, validating every entry and sorting
// by arrival (the driver requires monotone arrivals).
func ReadTrace(r io.Reader) ([]TimedRequest, error) {
	var out []TimedRequest
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if rec.Input <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: input %d must be positive", line, rec.Input)
		}
		if rec.Output <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: output %d must be positive", line, rec.Output)
		}
		if rec.Arrival < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative arrival %d", line, rec.Arrival)
		}
		out = append(out, TimedRequest{
			Entry:   Entry{InputLen: rec.Input, OutputLen: rec.Output},
			Arrival: time.Duration(rec.Arrival),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}

// SaveTraceFile writes a trace to path.
func SaveTraceFile(path string, trace []TimedRequest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTraceFile reads a trace from path.
func LoadTraceFile(path string) ([]TimedRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
