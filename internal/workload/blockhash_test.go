package workload

import (
	"reflect"
	"testing"
)

// sharedPrefixBlocks counts the leading hashes two chains agree on.
func sharedPrefixBlocks(a, b []uint64) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// TestBlockChainCoversInputPlusOutput: every emitted entry's chain has
// exactly (InputLen+OutputLen)/BlockTokens hashes, and InputBlocks cuts it
// at the input boundary.
func TestBlockChainCoversInputPlusOutput(t *testing.T) {
	for _, tr := range SessionTrace(DefaultSessionConfig(), 3) {
		want := (tr.InputLen + tr.OutputLen) / BlockTokens
		if len(tr.Blocks) != want {
			t.Fatalf("session %d turn %d: %d blocks, want %d (input %d output %d)",
				tr.SessionID, tr.Turn, len(tr.Blocks), want, tr.InputLen, tr.OutputLen)
		}
		in := tr.InputBlocks()
		if len(in) != tr.InputLen/BlockTokens {
			t.Fatalf("InputBlocks %d, want %d", len(in), tr.InputLen/BlockTokens)
		}
	}
}

// TestBlockChainDeterministicAndDistinct: identical generations produce
// identical chains; all hashes within one chain are distinct (they identify
// distinct prefixes).
func TestBlockChainDeterministicAndDistinct(t *testing.T) {
	a := SessionTrace(DefaultSessionConfig(), 11)
	b := SessionTrace(DefaultSessionConfig(), 11)
	for i := range a {
		if !reflect.DeepEqual(a[i].Blocks, b[i].Blocks) {
			t.Fatalf("request %d chains differ across identical generations", i)
		}
		seen := make(map[uint64]bool)
		for _, h := range a[i].Blocks {
			if seen[h] {
				t.Fatalf("request %d repeats block hash %x", i, h)
			}
			seen[h] = true
		}
	}
}

// TestBlockChainTurnsExtend: within a session, turn t+1's chain extends
// turn t's — later turns only append blocks, the radix-tree growth pattern.
func TestBlockChainTurnsExtend(t *testing.T) {
	for _, s := range SessionScripts(DefaultSessionConfig(), 5) {
		prev := []uint64(nil)
		for turn := range s.Turns {
			chain := s.Entry(turn).Blocks
			if len(chain) < len(prev) {
				t.Fatalf("session %d turn %d chain shrank: %d -> %d blocks", s.ID, turn, len(prev), len(chain))
			}
			if got := sharedPrefixBlocks(prev, chain); got != len(prev) {
				t.Fatalf("session %d turn %d rewrote block %d of its own history", s.ID, turn, got)
			}
			prev = chain
		}
	}
}

// TestBlockChainSharesSystemPrompt: sessions of the same prompt group share
// exactly the blocks fully covered by the system prompt and diverge at the
// first block containing session-private tokens; sessions of different
// groups share nothing.
func TestBlockChainSharesSystemPrompt(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 32
	scripts := SessionScripts(cfg, 9)
	byGroup := make(map[int][]*SessionScript)
	for i := range scripts {
		byGroup[scripts[i].Group] = append(byGroup[scripts[i].Group], &scripts[i])
	}
	checked := 0
	for _, fam := range byGroup {
		for i := 1; i < len(fam); i++ {
			a, b := fam[0].Entry(0), fam[i].Entry(0)
			if want := fam[0].SystemTokens / BlockTokens; sharedPrefixBlocks(a.Blocks, b.Blocks) != want {
				t.Fatalf("group %d sessions share %d blocks, want %d (system %d tokens)",
					fam[0].Group, sharedPrefixBlocks(a.Blocks, b.Blocks), want, fam[0].SystemTokens)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no same-group session pair in the draw")
	}
	var cross [2]*SessionScript
	for _, fam := range byGroup {
		if cross[0] == nil {
			cross[0] = fam[0]
		} else if cross[1] == nil {
			cross[1] = fam[0]
		}
	}
	if n := sharedPrefixBlocks(cross[0].Entry(0).Blocks, cross[1].Entry(0).Blocks); n != 0 {
		t.Fatalf("different prompt groups share %d leading blocks", n)
	}
}

// TestBranchingSharesTrunkPrefix is the branching-workload contract: a
// branch's first request re-submits the trunk's shared turns as context
// (PrefixLen includes them), and its block chain is identical to the
// trunk's through every block fully covered by the shared prefix.
func TestBranchingSharesTrunkPrefix(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.Sessions = 24
	cfg.BranchFactor = 4
	cfg.BranchTurns = 2
	scripts := SessionScripts(cfg, 7)

	branches := 0
	for i := range scripts {
		br := &scripts[i]
		if br.ParentID == 0 {
			continue
		}
		branches++
		trunk := &scripts[br.ParentID-1]
		if trunk.ID != br.ParentID {
			t.Fatalf("branch %d parent %d resolves to script %d", br.ID, br.ParentID, trunk.ID)
		}
		if br.Group != trunk.Group || br.SystemTokens != trunk.SystemTokens {
			t.Fatalf("branch %d does not inherit trunk %d's prompt group", br.ID, trunk.ID)
		}
		if len(br.BaseTurns) != cfg.BranchTurns {
			t.Fatalf("branch %d inherits %d turns, want %d", br.ID, len(br.BaseTurns), cfg.BranchTurns)
		}
		sharedTokens := trunk.SystemTokens
		for _, bt := range br.BaseTurns {
			sharedTokens += bt.UserTokens + bt.ReplyTokens
		}
		e := br.Entry(0)
		if e.PrefixLen != sharedTokens {
			t.Fatalf("branch %d turn 0 PrefixLen %d, want inherited context %d", br.ID, e.PrefixLen, sharedTokens)
		}
		// The trunk's entry covering the shared turns carries the same
		// leading blocks.
		te := trunk.Entry(cfg.BranchTurns - 1)
		if want := sharedTokens / BlockTokens; sharedPrefixBlocks(e.Blocks, te.Blocks) < want {
			t.Fatalf("branch %d shares %d blocks with trunk, want >= %d",
				br.ID, sharedPrefixBlocks(e.Blocks, te.Blocks), want)
		}
		// Divergence: the chains must not agree past the first block that
		// contains branch-private tokens.
		if max := sharedTokens/BlockTokens + 1; sharedPrefixBlocks(e.Blocks, te.Blocks) > max {
			t.Fatalf("branch %d shares %d blocks with trunk beyond the shared prefix (max %d)",
				br.ID, sharedPrefixBlocks(e.Blocks, te.Blocks), max)
		}
	}
	if branches != cfg.Sessions-cfg.Sessions/cfg.BranchFactor {
		t.Fatalf("%d branches, want %d", branches, cfg.Sessions-cfg.Sessions/cfg.BranchFactor)
	}

	// Branching must not disturb the RNG draw sequence: the same seed
	// without branching yields the same starts and turn draws.
	plain := cfg
	plain.BranchFactor, plain.BranchTurns = 0, 0
	p := SessionScripts(plain, 7)
	for i := range p {
		if p[i].Start != scripts[i].Start || !reflect.DeepEqual(p[i].Turns, scripts[i].Turns) {
			t.Fatalf("branching changed the draws of session %d", i)
		}
	}
}

// TestBranchValidation covers the new config error paths.
func TestBranchValidation(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.BranchFactor = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative BranchFactor accepted")
	}
	cfg.BranchFactor = 3
	cfg.BranchTurns = 0
	if err := cfg.Validate(); err == nil {
		t.Error("BranchFactor without BranchTurns accepted")
	}
	cfg.BranchTurns = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid branching config rejected: %v", err)
	}
}
