package workload

import (
	"reflect"
	"testing"
	"time"
)

func TestSessionTraceDeterministic(t *testing.T) {
	a := SessionTrace(DefaultSessionConfig(), 7)
	b := SessionTrace(DefaultSessionConfig(), 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := SessionTrace(DefaultSessionConfig(), 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !reflect.DeepEqual(a[i], c[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSessionTraceStructure(t *testing.T) {
	cfg := DefaultSessionConfig()
	trace := SessionTrace(cfg, 1)

	// Sorted by arrival.
	for i := 1; i < len(trace); i++ {
		if trace[i].Arrival < trace[i-1].Arrival {
			t.Fatalf("trace not sorted at %d: %v < %v", i, trace[i].Arrival, trace[i-1].Arrival)
		}
	}

	// Reconstruct each session and check the turn-by-turn invariants.
	bySession := make(map[int64][]TimedRequest)
	for _, tr := range trace {
		if tr.SessionID == 0 {
			t.Fatal("session trace produced a stateless request")
		}
		bySession[tr.SessionID] = append(bySession[tr.SessionID], tr)
	}
	if len(bySession) != cfg.Sessions {
		t.Fatalf("%d sessions, want %d", len(bySession), cfg.Sessions)
	}
	for id, turns := range bySession {
		if len(turns) < cfg.MinTurns || len(turns) > cfg.MaxTurns {
			t.Fatalf("session %d has %d turns, want [%d, %d]", id, len(turns), cfg.MinTurns, cfg.MaxTurns)
		}
		var prevArrival time.Duration
		prevContext := 0
		for i, tr := range turns {
			if tr.Turn != i {
				t.Fatalf("session %d turn %d labeled %d", id, i, tr.Turn)
			}
			if tr.PromptGroup != turns[0].PromptGroup || tr.SharedLen != turns[0].SharedLen {
				t.Fatalf("session %d changed prompt group mid-conversation", id)
			}
			if tr.PrefixLen >= tr.InputLen {
				t.Fatalf("session %d turn %d: PrefixLen %d >= InputLen %d", id, i, tr.PrefixLen, tr.InputLen)
			}
			if i == 0 {
				if tr.PrefixLen != tr.SharedLen {
					t.Fatalf("session %d turn 0: PrefixLen %d != SharedLen %d", id, tr.PrefixLen, tr.SharedLen)
				}
			} else {
				// The context grows by exactly the previous turn's new
				// user tokens plus its reply.
				want := prevContext + (turns[i-1].InputLen - turns[i-1].PrefixLen) + turns[i-1].OutputLen
				if tr.PrefixLen != want {
					t.Fatalf("session %d turn %d: PrefixLen %d, want %d", id, i, tr.PrefixLen, want)
				}
				if tr.Arrival < prevArrival {
					t.Fatalf("session %d turn %d arrives before turn %d", id, i, i-1)
				}
			}
			prevArrival = tr.Arrival
			prevContext = tr.PrefixLen
		}
	}

	// Sessions of the same prompt group share the system prompt length.
	sharedByGroup := make(map[int]int)
	for _, tr := range trace {
		if prev, ok := sharedByGroup[tr.PromptGroup]; ok && prev != tr.SharedLen {
			t.Fatalf("prompt group %d has two shared lengths %d and %d", tr.PromptGroup, prev, tr.SharedLen)
		}
		sharedByGroup[tr.PromptGroup] = tr.SharedLen
	}

	st := SummarizeSessions(trace)
	if st.Sessions != cfg.Sessions || st.SessionRequests != st.Requests {
		t.Fatalf("stats %+v inconsistent with trace", st)
	}
	if st.PrefixTokens == 0 || st.PrefixTokens >= st.InputTokens {
		t.Fatalf("reusable prefix tokens %d out of range (input %d)", st.PrefixTokens, st.InputTokens)
	}
	// Multi-turn context growth should make reuse substantial: with 3+
	// turns per session most input tokens are re-submitted history.
	if ratio := float64(st.PrefixTokens) / float64(st.InputTokens); ratio < 0.5 {
		t.Fatalf("prefix-reusable fraction %.2f too low for a multi-turn trace", ratio)
	}
}

func TestSessionTraceValidation(t *testing.T) {
	bad := []SessionConfig{
		{},
		{Sessions: 1, MinTurns: 2, MaxTurns: 1, PromptGroups: 1, SessionRate: 1},
		{Sessions: 1, MinTurns: 1, MaxTurns: 1, PromptGroups: 0, SessionRate: 1},
		{Sessions: 1, MinTurns: 1, MaxTurns: 1, PromptGroups: 1, SessionRate: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			SessionTrace(cfg, 1)
		}()
	}
}
