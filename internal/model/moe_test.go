package model

import (
	"math"
	"math/rand"
	"testing"

	"loongserve/internal/tensor"
)

func TestMoEConfigValidate(t *testing.T) {
	cfg := TinyMoE()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("TinyMoE invalid: %v", err)
	}
	bad := cfg
	bad.TopK = 0
	if bad.Validate() == nil {
		t.Error("TopK=0 with experts accepted")
	}
	bad = cfg
	bad.TopK = cfg.NumExperts + 1
	if bad.Validate() == nil {
		t.Error("TopK > NumExperts accepted")
	}
	bad = cfg
	bad.NumExperts = -1
	if bad.Validate() == nil {
		t.Error("negative NumExperts accepted")
	}
	dense := cfg
	dense.NumExperts, dense.TopK = 0, 0
	if err := dense.Validate(); err != nil {
		t.Errorf("dense config rejected: %v", err)
	}
}

func TestMoESingleExpertEqualsDense(t *testing.T) {
	// A 1-expert top-1 MoE layer whose expert copies the dense weights
	// must compute exactly the dense FFN (the router softmax over one
	// expert is 1).
	cfg := TinyGQA()
	w := NewWeights(cfg, 3)
	lw := w.Layers[0]
	moe := &LayerWeights{
		FFNNorm: lw.FFNNorm,
		MoE: &MoELayer{
			Router:  tensor.NewMatrix(cfg.Hidden, 1),
			Experts: []*Expert{{W1: lw.W1, W3: lw.W3, W2: lw.W2}},
			TopK:    1,
		},
	}
	rng := rand.New(rand.NewSource(9))
	h := tensor.RandMatrix(rng, 5, cfg.Hidden, 1)
	dense := lw.FFN(h)
	mixed := moe.FFN(h)
	if d := tensor.MaxAbsDiff(dense, mixed); d > 1e-6 {
		t.Fatalf("single-expert MoE differs from dense by %g", d)
	}
}

func TestMoERouteTopKWeights(t *testing.T) {
	cfg := TinyMoE()
	w := NewWeights(cfg, 1)
	moe := w.Layers[0].MoE
	if moe == nil {
		t.Fatal("TinyMoE weights missing MoE layer")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		row := make([]float32, cfg.Hidden)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		sel, weights := moe.Route(row)
		if len(sel) != cfg.TopK || len(weights) != cfg.TopK {
			t.Fatalf("Route returned %d experts, want %d", len(sel), cfg.TopK)
		}
		seen := map[int]bool{}
		var sum float64
		for k, e := range sel {
			if e < 0 || e >= cfg.NumExperts || seen[e] {
				t.Fatalf("Route selected invalid or duplicate expert %d", e)
			}
			seen[e] = true
			if weights[k] <= 0 || weights[k] > 1 {
				t.Fatalf("gate weight %g outside (0,1]", weights[k])
			}
			sum += float64(weights[k])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("gate weights sum to %g", sum)
		}
		// Weights must be sorted descending: top expert first.
		for k := 1; k < len(weights); k++ {
			if weights[k] > weights[k-1]+1e-7 {
				t.Fatalf("gate weights not descending: %v", weights)
			}
		}
	}
}

func TestMoERoutingUsesMultipleExperts(t *testing.T) {
	cfg := TinyMoE()
	w := NewWeights(cfg, 1)
	moe := w.Layers[0].MoE
	rng := rand.New(rand.NewSource(5))
	used := map[int]bool{}
	for i := 0; i < 200; i++ {
		row := make([]float32, cfg.Hidden)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		sel, _ := moe.Route(row)
		for _, e := range sel {
			used[e] = true
		}
	}
	if len(used) < 3 {
		t.Errorf("routing collapsed to %d experts over 200 random tokens", len(used))
	}
}

func TestMoEForwardDeterministic(t *testing.T) {
	cfg := TinyMoE()
	w := NewWeights(cfg, 7)
	ref1 := NewReference(w)
	ref2 := NewReference(w)
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandMatrix(rng, 6, cfg.Hidden, 1)
	pos := []int{0, 1, 2, 3, 4, 5}
	a := ref1.Forward(x, pos)
	b := ref2.Forward(x, pos)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("MoE forward not deterministic: diff %g", d)
	}
}

func TestMoEParamAndFLOPAccounting(t *testing.T) {
	dense := TinyGQA()
	moe := dense
	moe.NumExperts, moe.TopK = 4, 2

	if moe.NumParams() <= dense.NumParams() {
		t.Errorf("4-expert MoE params %d <= dense %d", moe.NumParams(), dense.NumParams())
	}
	// More experts at fixed TopK: more params, same per-token compute
	// (modulo the router term).
	bigger := moe
	bigger.NumExperts = 8
	if bigger.NumParams() <= moe.NumParams() {
		t.Error("8-expert MoE not larger than 4-expert")
	}
	extra := bigger.FLOPsPerToken() - moe.FLOPsPerToken()
	routerDelta := 2 * float64(bigger.Layers) * float64(bigger.Hidden) * 4 // 4 extra router cols
	if math.Abs(extra-routerDelta) > 1e-6*bigger.FLOPsPerToken() {
		t.Errorf("FLOPs grew by %g with TopK fixed, want only the router delta %g", extra, routerDelta)
	}
	// Higher TopK: same params, more compute.
	top4 := moe
	top4.TopK = 4
	if top4.NumParams() != moe.NumParams() {
		t.Error("TopK change altered parameter count")
	}
	if top4.FLOPsPerToken() <= moe.FLOPsPerToken() {
		t.Error("TopK=4 not more FLOPs than TopK=2")
	}
	// A TopK=k MoE computes less than a dense model with k·FFNHidden.
	wide := dense
	wide.FFNHidden = dense.FFNHidden * moe.NumExperts
	if moe.FLOPsPerToken() >= wide.FLOPsPerToken() {
		t.Errorf("top-2-of-4 MoE FLOPs %g >= 4x-wide dense %g — sparsity lost",
			moe.FLOPsPerToken(), wide.FLOPsPerToken())
	}
}

func TestMoEWeightsShape(t *testing.T) {
	cfg := TinyMoE()
	w := NewWeights(cfg, 1)
	for l, lw := range w.Layers {
		if lw.MoE == nil {
			t.Fatalf("layer %d missing MoE", l)
		}
		if lw.W1 != nil || lw.W2 != nil || lw.W3 != nil {
			t.Fatalf("layer %d has both dense and MoE FFN weights", l)
		}
		if len(lw.MoE.Experts) != cfg.NumExperts {
			t.Fatalf("layer %d has %d experts", l, len(lw.MoE.Experts))
		}
		if lw.MoE.Router.Rows != cfg.Hidden || lw.MoE.Router.Cols != cfg.NumExperts {
			t.Fatalf("layer %d router %dx%d", l, lw.MoE.Router.Rows, lw.MoE.Router.Cols)
		}
		for e, ex := range lw.MoE.Experts {
			if ex.W1.Cols != cfg.FFNHidden || ex.W2.Rows != cfg.FFNHidden {
				t.Fatalf("layer %d expert %d has wrong FFN width", l, e)
			}
		}
	}
}
