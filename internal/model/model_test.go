package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loongserve/internal/tensor"
)

func TestLWM1MTextValid(t *testing.T) {
	cfg := LWM1MText()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxContext != 1<<20 {
		t.Fatalf("context %d, want 1M", cfg.MaxContext)
	}
}

func TestTinyConfigsValid(t *testing.T) {
	for _, cfg := range []Config{TinyGQA(), TinyMHA()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := LWM1MText()
	bad.HeadDim = 64 // NumHeads*HeadDim != Hidden
	if err := bad.Validate(); err == nil {
		t.Fatal("expected head-dim mismatch error")
	}
	bad2 := LWM1MText()
	bad2.Layers = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected non-positive layers error")
	}
	bad3 := LWM1MText()
	bad3.NumKVHeads = 5 // 32 % 5 != 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected kv-head divisibility error")
	}
}

// Paper anchor (§1): the KV cache of a single 1M-token request on the 7B
// LWM model amounts to 488 GB.
func TestPaperAnchorKVCache1MTokens(t *testing.T) {
	cfg := LWM1MText()
	perToken := cfg.KVBytesPerToken()
	if perToken != 2*32*4096*2 {
		t.Fatalf("KV bytes/token = %d, want 524288", perToken)
	}
	totalGiB := float64(perToken) * (1 << 20) / (1 << 30)
	if math.Abs(totalGiB-488) > 25 {
		t.Fatalf("1M-token KV cache = %.1f GiB, want ≈488", totalGiB)
	}
}

// Paper anchor: the model is the Llama-2-7B architecture, so the parameter
// count must be ≈7B and the fp16 weights ≈14 GB.
func TestPaperAnchor7BParams(t *testing.T) {
	cfg := LWM1MText()
	p := cfg.NumParams()
	if p < 6_400_000_000 || p > 7_200_000_000 {
		t.Fatalf("params = %d, want ≈6.7B", p)
	}
	gb := float64(cfg.WeightBytes()) / 1e9
	if gb < 12.5 || gb > 14.5 {
		t.Fatalf("weights = %.1f GB, want ≈13.5", gb)
	}
}

func TestFLOPsPerTokenMagnitude(t *testing.T) {
	cfg := LWM1MText()
	// Dense FLOPs/token should be ≈ 2 * params (minus embeddings).
	f := cfg.FLOPsPerToken()
	if f < 1.2e10 || f > 1.4e10 {
		t.Fatalf("FLOPs/token = %g, want ≈1.3e10", f)
	}
	if cfg.AttnFLOPsPerTokenPair() != 4*32*4096 {
		t.Fatalf("attn FLOPs/pair = %g", cfg.AttnFLOPsPerTokenPair())
	}
}

func TestNewWeightsDeterministic(t *testing.T) {
	cfg := TinyGQA()
	a := NewWeights(cfg, 42)
	b := NewWeights(cfg, 42)
	if d := tensor.MaxAbsDiff(a.Layers[0].Wq, b.Layers[0].Wq); d != 0 {
		t.Fatalf("same seed differs by %g", d)
	}
	c := NewWeights(cfg, 43)
	if d := tensor.MaxAbsDiff(a.Layers[0].Wq, c.Layers[0].Wq); d == 0 {
		t.Fatal("different seeds produced identical weights")
	}
	if len(a.Layers) != cfg.Layers {
		t.Fatalf("layers %d, want %d", len(a.Layers), cfg.Layers)
	}
}

func TestRMSNormUnitScale(t *testing.T) {
	gain := []float32{1, 1, 1, 1}
	x := tensor.FromRows([][]float32{{2, 2, 2, 2}})
	out := RMSNorm(x, gain)
	// RMS of (2,2,2,2) is 2, so normalized values should be ≈1.
	for _, v := range out.Row(0) {
		if math.Abs(float64(v)-1) > 1e-3 {
			t.Fatalf("normalized value %v, want ≈1", v)
		}
	}
}

func TestRMSNormZeroRowStable(t *testing.T) {
	out := RMSNorm(tensor.NewMatrix(1, 4), []float32{1, 1, 1, 1})
	for _, v := range out.Row(0) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("RMSNorm of zero row is not finite")
		}
	}
}

func TestApplyRoPEPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := tensor.RandMatrix(rng, 3, 8, 1)
	before := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for _, v := range m.Row(i) {
			before[i] += float64(v) * float64(v)
		}
	}
	ApplyRoPE(m, 4, []int{0, 7, 123})
	for i := 0; i < 3; i++ {
		var after float64
		for _, v := range m.Row(i) {
			after += float64(v) * float64(v)
		}
		if math.Abs(after-before[i]) > 1e-3 {
			t.Fatalf("row %d: rotation changed norm %v -> %v", i, before[i], after)
		}
	}
}

func TestApplyRoPEPositionZeroIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := tensor.RandMatrix(rng, 1, 8, 1)
	orig := m.Clone()
	ApplyRoPE(m, 4, []int{0})
	if d := tensor.MaxAbsDiff(m, orig); d > 1e-6 {
		t.Fatalf("RoPE at position 0 changed values by %g", d)
	}
}

// RoPE relative-position property: dot(q_rot(p1), k_rot(p2)) depends only on
// p2 - p1 (per head). Verified by shifting both positions.
func TestRoPERelativePositionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	headDim := 8
	q := tensor.RandMatrix(rng, 1, headDim, 1)
	k := tensor.RandMatrix(rng, 1, headDim, 1)
	dotAt := func(p1, p2 int) float32 {
		qc, kc := q.Clone(), k.Clone()
		ApplyRoPE(qc, headDim, []int{p1})
		ApplyRoPE(kc, headDim, []int{p2})
		return tensor.Dot(qc.Row(0), kc.Row(0))
	}
	a := dotAt(3, 10)
	b := dotAt(100, 107)
	if math.Abs(float64(a-b)) > 1e-3 {
		t.Fatalf("relative position violated: %v vs %v", a, b)
	}
}

func TestReferencePrefillThenDecodeEqualsOneShot(t *testing.T) {
	// Processing [x0..x4] in one Forward must equal prefilling [x0..x2] and
	// then decoding x3, x4 one at a time — the incremental-KV-cache
	// invariant every serving system relies on.
	for _, cfg := range []Config{TinyGQA(), TinyMHA()} {
		w := NewWeights(cfg, 1)
		rng := rand.New(rand.NewSource(2))
		x := tensor.RandMatrix(rng, 5, cfg.Hidden, 1)
		pos := []int{0, 1, 2, 3, 4}

		oneShot := NewReference(w).Forward(x, pos)

		inc := NewReference(w)
		outPrefill := inc.Forward(x.SliceRows(0, 3), pos[:3])
		out3 := inc.Forward(x.SliceRows(3, 4), pos[3:4])
		out4 := inc.Forward(x.SliceRows(4, 5), pos[4:5])

		if d := tensor.MaxAbsDiff(oneShot.SliceRows(0, 3), outPrefill); d > 1e-4 {
			t.Fatalf("%s: prefill mismatch %g", cfg.Name, d)
		}
		if d := tensor.MaxAbsDiff(oneShot.SliceRows(3, 4), out3); d > 1e-4 {
			t.Fatalf("%s: decode step 1 mismatch %g", cfg.Name, d)
		}
		if d := tensor.MaxAbsDiff(oneShot.SliceRows(4, 5), out4); d > 1e-4 {
			t.Fatalf("%s: decode step 2 mismatch %g", cfg.Name, d)
		}
	}
}

func TestReferenceCacheGrows(t *testing.T) {
	cfg := TinyGQA()
	r := NewReference(NewWeights(cfg, 3))
	rng := rand.New(rand.NewSource(4))
	r.Forward(tensor.RandMatrix(rng, 4, cfg.Hidden, 1), []int{0, 1, 2, 3})
	if r.Cache.Len() != 4 {
		t.Fatalf("cache len %d, want 4", r.Cache.Len())
	}
	r.Forward(tensor.RandMatrix(rng, 1, cfg.Hidden, 1), []int{4})
	if r.Cache.Len() != 5 {
		t.Fatalf("cache len %d, want 5", r.Cache.Len())
	}
	for l := 0; l < cfg.Layers; l++ {
		if r.Cache.Keys[l].Rows != 5 || r.Cache.Values[l].Rows != 5 {
			t.Fatalf("layer %d cache rows %d/%d, want 5", l, r.Cache.Keys[l].Rows, r.Cache.Values[l].Rows)
		}
	}
}

func TestReferenceOutputFinite(t *testing.T) {
	cfg := TinyMHA()
	r := NewReference(NewWeights(cfg, 9))
	rng := rand.New(rand.NewSource(10))
	out := r.Forward(tensor.RandMatrix(rng, 8, cfg.Hidden, 1), []int{0, 1, 2, 3, 4, 5, 6, 7})
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite activation")
		}
	}
}

// Property: KV bytes per token scales linearly with layers and KV heads.
func TestPropertyKVBytesLinear(t *testing.T) {
	f := func(layersRaw, headsRaw uint8) bool {
		layers := int(layersRaw%31) + 1
		kvHeads := int(headsRaw%7) + 1
		cfg := Config{
			Name: "p", Layers: layers, Hidden: kvHeads * 4 * 8,
			NumHeads: kvHeads * 4, NumKVHeads: kvHeads, HeadDim: 8,
			FFNHidden: 16, VocabSize: 16, MaxContext: 128, BytesParam: 2,
		}
		want := int64(2 * layers * kvHeads * 8 * 2)
		return cfg.KVBytesPerToken() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
