// Package model defines transformer model configurations and a serial
// reference implementation of the forward pass (prefill and decode).
//
// Two distinct consumers use this package:
//
//   - The cost model and serving simulator read only shape-derived
//     quantities from Config (parameter count, FLOPs per token, KV bytes per
//     token). LWM1MText matches the LWM-1M-Text / Llama-2-7B architecture
//     used throughout the paper's evaluation.
//   - The functional elastic-sequence-parallelism runtime
//     (internal/seqparallel) executes real layer math on tiny
//     configurations with deterministic synthetic weights, validated
//     against the serial Reference in this package.
package model

import (
	"fmt"

	"loongserve/internal/attention"
)

// Config describes a transformer architecture.
type Config struct {
	Name       string
	Layers     int
	Hidden     int // model (embedding) dimension
	NumHeads   int // query heads
	NumKVHeads int // key/value heads (GQA groups; == NumHeads for MHA)
	HeadDim    int // per-head dimension; NumHeads*HeadDim == Hidden for Llama-family
	FFNHidden  int // SwiGLU intermediate dimension
	VocabSize  int // used only for parameter counting
	MaxContext int // context window (tokens)
	BytesParam int // bytes per parameter / activation element (2 for fp16/bf16)

	// Mixture-of-experts FFN (§8: ESP "is compatible with ... MoE to
	// reduce the memory footprint and computational complexity"). Zero
	// NumExperts means a dense SwiGLU FFN; otherwise each layer holds
	// NumExperts expert FFNs of width FFNHidden and routes every token to
	// its TopK highest-scoring experts.
	NumExperts int
	TopK       int
}

// Attention returns the attention head layout of the model.
func (c Config) Attention() attention.Config {
	return attention.Config{NumHeads: c.NumHeads, NumKVHeads: c.NumKVHeads, HeadDim: c.HeadDim}
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.Hidden <= 0 || c.FFNHidden <= 0 || c.BytesParam <= 0 {
		return fmt.Errorf("model %q: non-positive dimension in %+v", c.Name, c)
	}
	if err := c.Attention().Validate(); err != nil {
		return fmt.Errorf("model %q: %w", c.Name, err)
	}
	if c.NumHeads*c.HeadDim != c.Hidden {
		return fmt.Errorf("model %q: NumHeads*HeadDim = %d != Hidden %d", c.Name, c.NumHeads*c.HeadDim, c.Hidden)
	}
	if c.NumExperts < 0 || (c.NumExperts > 0 && (c.TopK < 1 || c.TopK > c.NumExperts)) {
		return fmt.Errorf("model %q: MoE wants 1 <= TopK (%d) <= NumExperts (%d)", c.Name, c.TopK, c.NumExperts)
	}
	return nil
}

// MoE reports whether the FFN is a mixture of experts.
func (c Config) MoE() bool { return c.NumExperts > 0 }

// QDim returns the flattened query projection width.
func (c Config) QDim() int { return c.NumHeads * c.HeadDim }

// KVDim returns the flattened key (or value) projection width.
func (c Config) KVDim() int { return c.NumKVHeads * c.HeadDim }

// NumParams returns the approximate parameter count: embeddings (input +
// output head) plus per-layer attention and SwiGLU FFN weights. Norm vectors
// are negligible and ignored.
func (c Config) NumParams() int64 {
	embed := int64(2) * int64(c.VocabSize) * int64(c.Hidden)
	attn := int64(c.Hidden)*int64(c.QDim())*2 + // Wq, Wo
		int64(c.Hidden)*int64(c.KVDim())*2 // Wk, Wv
	ffn := int64(3) * int64(c.Hidden) * int64(c.FFNHidden) // W1, W2, W3
	if c.MoE() {
		// One router plus NumExperts expert FFNs per layer.
		ffn = int64(c.Hidden)*int64(c.NumExperts) + int64(c.NumExperts)*ffn
	}
	return embed + int64(c.Layers)*(attn+ffn)
}

// WeightBytes returns the total model weight footprint in bytes.
func (c Config) WeightBytes() int64 { return c.NumParams() * int64(c.BytesParam) }

// KVBytesPerToken returns the key-value cache footprint of one token across
// all layers: 2 tensors (K and V) x Layers x KVDim x BytesParam. For the
// LWM-1M-Text (Llama-2-7B) architecture this is 512 KiB/token, so a 1M-token
// request needs 488 GiB — the paper's §1 anchor.
func (c Config) KVBytesPerToken() int64 {
	return 2 * int64(c.Layers) * int64(c.KVDim()) * int64(c.BytesParam)
}

// FLOPsPerToken returns the dense (non-attention) forward FLOPs for one
// token: roughly 2 FLOPs per weight parameter touched (multiply +
// accumulate), excluding embeddings.
func (c Config) FLOPsPerToken() float64 {
	attn := float64(c.Hidden)*float64(c.QDim())*2 + float64(c.Hidden)*float64(c.KVDim())*2
	ffn := 3 * float64(c.Hidden) * float64(c.FFNHidden)
	if c.MoE() {
		// Each token activates only TopK experts plus the router — the
		// sparsity that makes MoE cheaper than an equal-parameter dense
		// model.
		ffn = float64(c.Hidden)*float64(c.NumExperts) + float64(c.TopK)*ffn
	}
	return 2 * float64(c.Layers) * (attn + ffn)
}

// AttnFLOPsPerTokenPair returns attention-score FLOPs for one
// (query, key) interaction summed over all layers: QK^T and AV each cost
// 2*Hidden multiply-accumulates per pair per layer.
func (c Config) AttnFLOPsPerTokenPair() float64 {
	return 4 * float64(c.Layers) * float64(c.Hidden)
}

// LWM1MText returns the LWM-1M-Text configuration: the Llama-2-7B
// architecture with a 1M-token context window, the model used in every
// experiment of the paper.
func LWM1MText() Config {
	return Config{
		Name:       "LWM-1M-Text",
		Layers:     32,
		Hidden:     4096,
		NumHeads:   32,
		NumKVHeads: 32,
		HeadDim:    128,
		FFNHidden:  11008,
		VocabSize:  32000,
		MaxContext: 1 << 20,
		BytesParam: 2,
	}
}

// TinyGQA returns a small GQA model for functional tests: real math at toy
// scale.
func TinyGQA() Config {
	return Config{
		Name:       "tiny-gqa",
		Layers:     2,
		Hidden:     16,
		NumHeads:   4,
		NumKVHeads: 2,
		HeadDim:    4,
		FFNHidden:  24,
		VocabSize:  64,
		MaxContext: 1 << 12,
		BytesParam: 2,
	}
}

// TinyMQA returns a small multi-query-attention model (one KV head shared
// by all query heads) for functional tests; MQA shrinks the KV cache by
// NumHeads x, which the paper lists among the compatible memory
// optimizations (§8).
func TinyMQA() Config {
	return Config{
		Name:       "tiny-mqa",
		Layers:     2,
		Hidden:     16,
		NumHeads:   4,
		NumKVHeads: 1,
		HeadDim:    4,
		FFNHidden:  24,
		VocabSize:  64,
		MaxContext: 1 << 12,
		BytesParam: 2,
	}
}

// TinyMoE returns a small mixture-of-experts model: 4 experts, top-2
// routing (§8 compatibility).
func TinyMoE() Config {
	return Config{
		Name:       "tiny-moe",
		Layers:     2,
		Hidden:     16,
		NumHeads:   4,
		NumKVHeads: 2,
		HeadDim:    4,
		FFNHidden:  20,
		VocabSize:  64,
		MaxContext: 1 << 12,
		BytesParam: 2,
		NumExperts: 4,
		TopK:       2,
	}
}

// TinyMHA returns a small MHA model for functional tests.
func TinyMHA() Config {
	return Config{
		Name:       "tiny-mha",
		Layers:     3,
		Hidden:     12,
		NumHeads:   3,
		NumKVHeads: 3,
		HeadDim:    4,
		FFNHidden:  20,
		VocabSize:  64,
		MaxContext: 1 << 12,
		BytesParam: 2,
	}
}
