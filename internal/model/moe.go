package model

import (
	"math"
	"math/rand"
	"sort"

	"loongserve/internal/tensor"
)

// Expert is one feed-forward expert of a mixture-of-experts layer, with the
// same SwiGLU shape as the dense FFN.
type Expert struct {
	W1 *tensor.Matrix // Hidden x FFNHidden (gate)
	W3 *tensor.Matrix // Hidden x FFNHidden (up)
	W2 *tensor.Matrix // FFNHidden x Hidden (down)
}

// MoELayer replaces the dense FFN with routed experts. Routing is
// token-wise, which is why ESP composes with MoE for free: the FFN (and
// therefore the router) only ever sees local tokens, so striped prefill and
// multi-master decoding need no MoE-specific communication (§8).
type MoELayer struct {
	Router  *tensor.Matrix // Hidden x NumExperts
	Experts []*Expert
	TopK    int
}

// newMoELayer draws deterministic expert weights.
func newMoELayer(cfg Config, rng *rand.Rand) *MoELayer {
	scaleIn := float32(1.0 / math.Sqrt(float64(cfg.Hidden)))
	scaleFFN := float32(1.0 / math.Sqrt(float64(cfg.FFNHidden)))
	m := &MoELayer{
		Router: tensor.RandMatrix(rng, cfg.Hidden, cfg.NumExperts, scaleIn),
		TopK:   cfg.TopK,
	}
	for e := 0; e < cfg.NumExperts; e++ {
		m.Experts = append(m.Experts, &Expert{
			W1: tensor.RandMatrix(rng, cfg.Hidden, cfg.FFNHidden, scaleIn),
			W3: tensor.RandMatrix(rng, cfg.Hidden, cfg.FFNHidden, scaleIn),
			W2: tensor.RandMatrix(rng, cfg.FFNHidden, cfg.Hidden, scaleFFN),
		})
	}
	return m
}

// Route returns the TopK expert indices and their softmax-renormalized
// gate weights for one normed hidden row. Selection order is by descending
// score with index tiebreak, so routing is deterministic.
func (m *MoELayer) Route(normed []float32) ([]int, []float32) {
	scores := make([]float32, len(m.Experts))
	for e := range m.Experts {
		var s float32
		for j, v := range normed {
			s += v * m.Router.At(j, e)
		}
		scores[e] = s
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	sel := idx[:m.TopK]
	// Softmax over the selected scores only (the Mixtral convention).
	maxS := scores[sel[0]]
	weights := make([]float32, len(sel))
	var sum float64
	for i, e := range sel {
		w := math.Exp(float64(scores[e] - maxS))
		weights[i] = float32(w)
		sum += w
	}
	for i := range weights {
		weights[i] = float32(float64(weights[i]) / sum)
	}
	return sel, weights
}

// expertForward runs one expert's SwiGLU on a single normed row.
func (ex *Expert) forward(normed []float32) []float32 {
	in := tensor.FromRows([][]float32{normed})
	gate := tensor.MatMul(in, ex.W1)
	up := tensor.MatMul(in, ex.W3)
	for i := range gate.Data {
		gate.Data[i] = silu(gate.Data[i]) * up.Data[i]
	}
	return tensor.MatMul(gate, ex.W2).Row(0)
}

// Forward applies the routed-experts FFN with residual, row-wise.
func (m *MoELayer) Forward(h *tensor.Matrix, norm []float32) *tensor.Matrix {
	f := RMSNorm(h, norm)
	out := h.Clone()
	for r := 0; r < h.Rows; r++ {
		sel, weights := m.Route(f.Row(r))
		orow := out.Row(r)
		for i, e := range sel {
			ev := m.Experts[e].forward(f.Row(r))
			w := weights[i]
			for j, v := range ev {
				orow[j] += w * v
			}
		}
	}
	return out
}
