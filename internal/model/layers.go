package model

import (
	"math"
	"math/rand"

	"loongserve/internal/attention"
	"loongserve/internal/tensor"
)

// LayerWeights holds the weights of one transformer layer.
type LayerWeights struct {
	AttnNorm []float32      // RMSNorm gain before attention
	Wq       *tensor.Matrix // Hidden x QDim
	Wk       *tensor.Matrix // Hidden x KVDim
	Wv       *tensor.Matrix // Hidden x KVDim
	Wo       *tensor.Matrix // QDim x Hidden
	FFNNorm  []float32      // RMSNorm gain before FFN
	W1       *tensor.Matrix // Hidden x FFNHidden (gate)
	W3       *tensor.Matrix // Hidden x FFNHidden (up)
	W2       *tensor.Matrix // FFNHidden x Hidden (down)
	// MoE replaces the dense W1/W3/W2 path when non-nil (Config.MoE).
	MoE *MoELayer
}

// Weights holds all layers of a model instance.
type Weights struct {
	Cfg       Config
	Layers    []*LayerWeights
	FinalNorm []float32
}

// NewWeights generates deterministic synthetic weights from seed. The scale
// is chosen so activations stay well-conditioned through several layers
// (roughly unit variance in, unit variance out).
func NewWeights(cfg Config, seed int64) *Weights {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Weights{Cfg: cfg}
	scaleIn := float32(1.0 / math.Sqrt(float64(cfg.Hidden)))
	scaleFFN := float32(1.0 / math.Sqrt(float64(cfg.FFNHidden)))
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1 + (rng.Float32()-0.5)*0.1
		}
		return v
	}
	for l := 0; l < cfg.Layers; l++ {
		lw := &LayerWeights{
			AttnNorm: ones(cfg.Hidden),
			Wq:       tensor.RandMatrix(rng, cfg.Hidden, cfg.QDim(), scaleIn),
			Wk:       tensor.RandMatrix(rng, cfg.Hidden, cfg.KVDim(), scaleIn),
			Wv:       tensor.RandMatrix(rng, cfg.Hidden, cfg.KVDim(), scaleIn),
			Wo:       tensor.RandMatrix(rng, cfg.QDim(), cfg.Hidden, scaleIn),
			FFNNorm:  ones(cfg.Hidden),
		}
		if cfg.MoE() {
			lw.MoE = newMoELayer(cfg, rng)
		} else {
			lw.W1 = tensor.RandMatrix(rng, cfg.Hidden, cfg.FFNHidden, scaleIn)
			lw.W3 = tensor.RandMatrix(rng, cfg.Hidden, cfg.FFNHidden, scaleIn)
			lw.W2 = tensor.RandMatrix(rng, cfg.FFNHidden, cfg.Hidden, scaleFFN)
		}
		w.Layers = append(w.Layers, lw)
	}
	w.FinalNorm = ones(cfg.Hidden)
	return w
}

// RMSNorm applies root-mean-square layer normalization row-wise with gain.
func RMSNorm(x *tensor.Matrix, gain []float32) *tensor.Matrix {
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(len(row))+1e-6))
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v * inv * gain[j]
		}
	}
	return out
}

// silu is the sigmoid-weighted linear unit used by SwiGLU.
func silu(x float32) float32 {
	return x / (1 + float32(math.Exp(float64(-x))))
}

// ApplyRoPE applies rotary position embedding in place: rows of m are
// (heads x headDim) flattened, rotated pairwise by angle pos/base^(2i/dim).
// The same rotation is used for queries and keys, so dot products depend
// only on relative position — which is why tokens can be permuted across
// instances as long as their absolute positions travel with them.
func ApplyRoPE(m *tensor.Matrix, headDim int, positions []int) {
	if m.Rows != len(positions) {
		panic("model: RoPE positions length mismatch")
	}
	const base = 10000.0
	half := headDim / 2
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		pos := float64(positions[r])
		for hStart := 0; hStart+headDim <= m.Cols; hStart += headDim {
			for i := 0; i < half; i++ {
				theta := pos / math.Pow(base, float64(2*i)/float64(headDim))
				sin, cos := math.Sincos(theta)
				a := row[hStart+2*i]
				b := row[hStart+2*i+1]
				row[hStart+2*i] = a*float32(cos) - b*float32(sin)
				row[hStart+2*i+1] = a*float32(sin) + b*float32(cos)
			}
		}
	}
}

// ProjectQKV computes the position-encoded query/key/value projections of
// hidden states h (already containing the residual stream) for one layer:
// pre-norm, linear projections, RoPE on q and k.
func (lw *LayerWeights) ProjectQKV(h *tensor.Matrix, positions []int, cfg Config) (q, k, v *tensor.Matrix) {
	a := RMSNorm(h, lw.AttnNorm)
	q = tensor.MatMul(a, lw.Wq)
	k = tensor.MatMul(a, lw.Wk)
	v = tensor.MatMul(a, lw.Wv)
	ApplyRoPE(q, cfg.HeadDim, positions)
	ApplyRoPE(k, cfg.HeadDim, positions)
	return q, k, v
}

// AttnOutput folds the attention result back into the residual stream:
// h + attn @ Wo.
func (lw *LayerWeights) AttnOutput(h, attnResult *tensor.Matrix) *tensor.Matrix {
	return h.Clone().Add(tensor.MatMul(attnResult, lw.Wo))
}

// FFN applies the feed-forward block with residual: dense SwiGLU
// h + (silu(norm(h)@W1) ⊙ (norm(h)@W3)) @ W2, or the routed-experts MoE
// path when configured. Either way it is token-wise local, so the ESP
// runtime calls it identically.
func (lw *LayerWeights) FFN(h *tensor.Matrix) *tensor.Matrix {
	if lw.MoE != nil {
		return lw.MoE.Forward(h, lw.FFNNorm)
	}
	f := RMSNorm(h, lw.FFNNorm)
	gate := tensor.MatMul(f, lw.W1)
	up := tensor.MatMul(f, lw.W3)
	for i := range gate.Data {
		gate.Data[i] = silu(gate.Data[i]) * up.Data[i]
	}
	return h.Clone().Add(tensor.MatMul(gate, lw.W2))
}

// KVCache holds the per-layer key/value tensors of a contiguous run of
// tokens together with their absolute positions, in the order they were
// appended (which need not be position order).
type KVCache struct {
	Keys      []*tensor.Matrix // per layer: n x KVDim
	Values    []*tensor.Matrix // per layer: n x KVDim
	Positions []int
}

// NewKVCache returns an empty cache for a model with the given layer count
// and KV width.
func NewKVCache(layers, kvDim int) *KVCache {
	c := &KVCache{}
	for l := 0; l < layers; l++ {
		c.Keys = append(c.Keys, tensor.NewMatrix(0, kvDim))
		c.Values = append(c.Values, tensor.NewMatrix(0, kvDim))
	}
	return c
}

// Len returns the number of cached tokens.
func (c *KVCache) Len() int { return len(c.Positions) }

// AppendLayer appends k/v rows for layer l. Positions are appended once via
// AppendPositions; callers must keep layers consistent.
func (c *KVCache) AppendLayer(l int, k, v *tensor.Matrix) {
	c.Keys[l].AppendRows(k)
	c.Values[l].AppendRows(v)
}

// AppendPositions records the absolute positions of newly appended tokens.
func (c *KVCache) AppendPositions(pos []int) {
	c.Positions = append(c.Positions, pos...)
}

// Reference is the serial ground-truth model: single instance, full
// sequence, ordinary causal attention. The distributed ESP runtime must
// produce bit-comparable outputs (up to float32 accumulation order).
type Reference struct {
	W     *Weights
	Cache *KVCache
}

// NewReference builds a reference model with an empty cache.
func NewReference(w *Weights) *Reference {
	return &Reference{W: w, Cache: NewKVCache(w.Cfg.Layers, w.Cfg.KVDim())}
}

// Forward processes hidden-state rows x at absolute positions pos,
// appending their KV to the cache and returning the final hidden states.
// It serves both phases: the prefill phase passes the whole input, a decode
// step passes a single row per sequence.
func (r *Reference) Forward(x *tensor.Matrix, pos []int) *tensor.Matrix {
	cfg := r.W.Cfg
	h := x.Clone()
	kPos := make([]int, 0, len(r.Cache.Positions)+len(pos))
	kPos = append(kPos, r.Cache.Positions...)
	kPos = append(kPos, pos...)
	for l, lw := range r.W.Layers {
		q, k, v := lw.ProjectQKV(h, pos, cfg)
		r.Cache.AppendLayer(l, k, v)
		attnOut := attention.Causal(cfg.Attention(), q, r.Cache.Keys[l], r.Cache.Values[l], pos, kPos)
		h = lw.AttnOutput(h, attnOut)
		h = lw.FFN(h)
	}
	r.Cache.AppendPositions(pos)
	return RMSNorm(h, r.W.FinalNorm)
}
